// Basic-tree workbench: record, generate, persist, and inspect the search
// trees that drive the simulator (paper Section 6.2), and demonstrate the
// code compression at the heart of the fault-tolerance mechanism.
#include <cstdio>
#include <string>

#include "bnb/basic_tree.hpp"
#include "bnb/knapsack.hpp"
#include "bnb/sequential.hpp"
#include "core/code_set.hpp"

namespace {

void collect_leaf_codes(const ftbb::bnb::BasicTree& tree, std::int32_t idx,
                        const ftbb::core::PathCode& code,
                        std::vector<ftbb::core::PathCode>& out) {
  const auto& n = tree.node(static_cast<std::size_t>(idx));
  if (n.is_leaf()) {
    out.push_back(code);
    return;
  }
  for (int bit = 0; bit < 2; ++bit) {
    collect_leaf_codes(tree, n.child[bit], code.child(n.var, bit != 0), out);
  }
}

}  // namespace

int main() {
  using namespace ftbb;

  // 1. Record a basic tree from an instrumented knapsack run (no pruning).
  const auto instance = bnb::KnapsackInstance::strongly_correlated(14, 60, 0.5, 3);
  bnb::NodeCostModel cost;
  cost.mean = 0.01;
  bnb::KnapsackModel live(instance, cost);
  const bnb::BasicTree recorded = bnb::BasicTree::record(live, 1000000);
  std::printf("recorded knapsack tree : %zu nodes, depth %zu, %.1fs total work\n",
              recorded.size(), recorded.max_depth(), recorded.total_cost());

  // 2. Replaying the tree prunes exactly like the live model.
  bnb::TreeProblem replay(&recorded);
  const bnb::SeqResult live_run = bnb::solve_sequential(live);
  const bnb::SeqResult tree_run = bnb::solve_sequential(replay);
  std::printf("live B&B               : %llu expanded, optimum %.0f\n",
              static_cast<unsigned long long>(live_run.expanded), -live_run.best_value);
  std::printf("replayed B&B           : %llu expanded, optimum %.0f (%s)\n",
              static_cast<unsigned long long>(tree_run.expanded), -tree_run.best_value,
              tree_run.expanded == live_run.expanded ? "identical" : "DIFFERENT");

  // 3. Persist and reload.
  const std::string path = "/tmp/ftbb_workbench_tree.bin";
  recorded.save(path);
  const bnb::BasicTree loaded = bnb::BasicTree::load(path);
  std::printf("save/load roundtrip    : %zu nodes (%s)\n", loaded.size(),
              loaded.size() == recorded.size() ? "ok" : "CORRUPT");

  // 4. Synthetic trees of arbitrary size.
  bnb::RandomTreeConfig synth;
  synth.target_nodes = 50001;
  synth.cost_mean = 0.5;
  synth.seed = 5;
  const bnb::BasicTree random_tree = bnb::BasicTree::random(synth);
  std::printf("random tree            : %zu nodes, depth %zu, %zu leaves\n",
              random_tree.size(), random_tree.max_depth(), random_tree.leaf_count());

  // 5. Code compression demo: completing all leaves of the recorded tree one
  //    by one contracts the table down to the single root code.
  std::vector<core::PathCode> leaves;
  collect_leaf_codes(recorded, 0, core::PathCode::root(), leaves);
  core::CodeSet table;
  std::size_t peak = 0;
  for (const core::PathCode& leaf : leaves) {
    table.insert(leaf);
    peak = std::max(peak, table.code_count());
  }
  std::printf("completion table       : %zu leaf insertions, peak %zu codes, "
              "final %zu (root%s)\n",
              leaves.size(), peak, table.code_count(),
              table.root_complete() ? ", termination detected" : "");
  std::printf("encoded table size     : %zu bytes at peak vs %zu uncompressed "
              "leaf codes bytes\n",
              table.encoded_bytes(), [&] {
                std::size_t total = 0;
                for (const auto& leaf : leaves) total += leaf.encoded_size();
                return total;
              }());
  return table.root_complete() ? 0 : 1;
}
