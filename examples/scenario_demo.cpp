// Scenario-engine demonstration: one declarative FaultPlan replayed against
// all four backends — the paper's decentralized protocol, the centralized
// manager/worker baseline, DIB, and the thread-backed real-time runtime —
// plus a kitchen-sink schedule showing every fault kind at once. Run twice
// with the same seed and the printed *simulated* fingerprints match bit for
// bit — every fault schedule is a regression artifact (rt runs on real
// threads and is deliberately not deterministic; its invariant is the
// optimum).
// `--threads=N` (or FTBB_SIM_THREADS) shards the simulation kernel across N
// OS threads; the printed simulated fingerprints are identical either way.
#include <cstdio>

#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ftbb;

  const std::uint32_t threads = sim::parse_threads_flag(argc, argv);

  sim::ScenarioSpec spec;
  spec.name = "demo";
  spec.sim_threads = threads;
  spec.workers = 4;
  spec.seed = 7;
  spec.workload.kind = sim::WorkloadKind::kKnapsack;
  spec.workload.size = 14;
  spec.workload.seed = 7;
  spec.workload.cost_mean = 2e-3;
  spec.tune_for_small_problems();
  spec.faults.crash(2, 0.06)
      .loss(0.0, 1e9, 0.08)
      .split_halves(0.1, 0.25);

  std::printf("=== one fault plan, four backends ===\n");
  std::printf("%s\n", spec.faults.describe().c_str());
  for (const sim::Backend backend :
       {sim::Backend::kFtbb, sim::Backend::kCentral, sim::Backend::kDib,
        sim::Backend::kRt}) {
    spec.backend = backend;
    const sim::ScenarioReport report = sim::ScenarioRunner::run(spec);
    if (backend == sim::Backend::kRt) {
      std::printf("(rt replays the same schedule on real threads against "
                  "wall-clock deadlines;\n its makespan is wall seconds and "
                  "its report is not a regression artifact)\n");
    }
    std::printf("%s\n", report.to_string().c_str());
    if (!report.completed || !report.optimum_matched) return 1;
  }

  std::printf("=== kitchen sink: crash + rejoin + partition + loss + churn ===\n");
  sim::ScenarioSpec sink;
  sink.name = "kitchen-sink";
  sink.sim_threads = threads;
  sink.workers = 3;
  sink.seed = 11;
  sink.workload.kind = sim::WorkloadKind::kSyntheticTree;
  sink.workload.size = 601;
  sink.workload.seed = 11;
  sink.workload.cost_mean = 2e-3;
  sink.tune_for_small_problems();
  sink.faults.bounce(1, 0.08, 0.35)
      .split_halves(0.15, 0.3)
      .loss(0.0, 1e9, 0.05)
      .link_loss(0, 2, 0.2, 0.5, 0.5)
      .churn(3, 2, 0.1, 0.05);
  std::printf("fault kinds exercised: %d of %d\n\n",
              sink.faults.distinct_fault_kinds(), sim::kFaultKinds);
  const sim::ScenarioReport report = sim::ScenarioRunner::run(sink);
  std::printf("%s", report.to_string().c_str());
  return report.completed && report.optimum_matched ? 0 : 1;
}
