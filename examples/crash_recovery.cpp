// Crash-recovery demonstration (the paper's Figures 5 and 6 scenario).
//
// Runs the same small problem twice on three simulated processors:
//  - failure free,
//  - with two of the three processors crashing at ~85% of the execution.
// The survivor recovers the lost work by complementing its completion table
// and still terminates with the exact optimum. Both runs are rendered as
// Jumpshot-style ASCII timelines.
#include <cstdio>

#include "bnb/basic_tree.hpp"
#include "sim/cluster.hpp"

int main() {
  using namespace ftbb;

  bnb::RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = 301;
  tree_cfg.cost_mean = 0.02;
  tree_cfg.seed = 7;
  const bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
  bnb::TreeProblem problem(&tree);

  sim::ClusterConfig cfg;
  cfg.workers = 3;
  cfg.seed = 7;
  cfg.record_trace = true;
  cfg.worker.report_batch = 4;
  cfg.worker.report_flush_interval = 0.1;
  cfg.worker.table_gossip_interval = 0.4;
  cfg.worker.work_request_timeout = 0.02;

  std::printf("=== run 1: no failures ===\n");
  const sim::ClusterResult ok = sim::SimCluster::run(problem, cfg);
  std::printf("%s", ok.timeline.render_ascii(3, 100).c_str());
  std::printf("solution %.3f (optimum %.3f), makespan %.2fs\n\n", ok.solution,
              tree.optimal_value(), ok.makespan);

  std::printf("=== run 2: processors 1 and 2 crash at 85%% of the execution ===\n");
  sim::ClusterConfig crash_cfg = cfg;
  const double when = ok.makespan * 0.85;
  crash_cfg.crashes = {{1, when}, {2, when}};
  const sim::ClusterResult rec = sim::SimCluster::run(problem, crash_cfg);
  std::printf("%s", rec.timeline.render_ascii(3, 100).c_str());
  std::printf("crash time        : %.2fs\n", when);
  std::printf("survivor solution : %.3f (%s)\n", rec.solution,
              rec.solution == tree.optimal_value() ? "exact optimum" : "WRONG");
  std::printf("makespan          : %.2fs (+%.0f%% over failure-free)\n", rec.makespan,
              100.0 * (rec.makespan / ok.makespan - 1.0));
  std::printf("recoveries        : %llu complement picks, %llu redundant expansions\n",
              static_cast<unsigned long long>(rec.workers[0].recoveries),
              static_cast<unsigned long long>(rec.redundant_expansions));
  return rec.all_live_halted && rec.solution == tree.optimal_value() ? 0 : 1;
}
