// Gossip membership under churn (paper Section 5.2).
//
// A group bootstraps through two gossip servers; members join late, crash,
// and leave; the demo reports how fast views converge, how quickly failures
// are detected, and what the protocol costs on the wire.
#include <cstdio>

#include "gossip/membership.hpp"

int main() {
  using namespace ftbb;

  std::vector<gossip::MemberScript> scripts;
  // 2 gossip servers + 10 initial members.
  for (std::uint32_t i = 0; i < 12; ++i) {
    gossip::MemberScript script;
    script.id = i;
    scripts.push_back(script);
  }
  // Churn: two late joiners, one crash, one graceful leave.
  for (const std::uint32_t id : {12u, 13u}) {
    gossip::MemberScript joiner;
    joiner.id = id;
    joiner.join_time = id == 12 ? 8.0 : 12.0;
    scripts.push_back(joiner);
  }
  scripts[5].crash_time = 15.0;
  scripts[9].leave_time = 20.0;

  gossip::MembershipConfig cfg;
  cfg.gossip_interval = 0.5;
  cfg.fail_timeout = 4.0;
  cfg.fanout = 2;

  sim::NetConfig net;
  net.loss_prob = 0.05;  // a mildly lossy wide-area network

  const auto result = gossip::MembershipSim::run(scripts, cfg, net, 40.0, 99);

  std::printf("group with churn: 12 initial + 2 joiners, 1 crash, 1 leave, "
              "5%% message loss\n\n");
  std::printf("join propagation  : mean %.2fs, max %.2fs (%llu joins tracked)\n",
              result.metrics.join_latency.mean(), result.metrics.join_latency.max(),
              static_cast<unsigned long long>(result.metrics.join_latency.count()));
  std::printf("failure detection : mean %.2fs, max %.2fs after the crash\n",
              result.metrics.detection_latency.mean(),
              result.metrics.detection_latency.max());
  std::printf("false positives   : %llu\n",
              static_cast<unsigned long long>(result.metrics.false_positives));
  std::printf("view accuracy     : %.1f%% (Jaccard vs live set, averaged)\n",
              100.0 * result.metrics.accuracy.mean());
  std::printf("gossip traffic    : %llu digests, %.1f KB total\n",
              static_cast<unsigned long long>(result.metrics.digests_sent),
              static_cast<double>(result.metrics.digest_bytes) / 1024.0);

  std::printf("\nfinal views of live members:\n");
  for (const auto& [id, view] : result.final_views) {
    std::printf("  member %2u sees {", id);
    for (std::size_t i = 0; i < view.size(); ++i) {
      std::printf("%s%u", i ? "," : "", view[i]);
    }
    std::printf("}\n");
  }
  return 0;
}
