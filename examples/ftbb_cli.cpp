// Generic command-line driver: solve any built-in problem on the simulated
// cluster with configurable failures — no code required.
//
//   ftbb_cli --problem knapsack|vertex-cover|partition|tree
//            [--workers N] [--seed S] [--size N]
//            [--crash FRACTION ...]   kill one worker at FRACTION of the
//                                     failure-free makespan (repeatable)
//            [--loss P]               i.i.d. message loss probability
//            [--adaptive]             adaptive timeouts (Section 7)
//            [--trace]                print the activity timeline
//
// Example: ./ftbb_cli --problem partition --workers 6 --crash 0.4 --crash 0.6
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bnb/basic_tree.hpp"
#include "bnb/knapsack.hpp"
#include "bnb/partition.hpp"
#include "bnb/vertex_cover.hpp"
#include "sim/cluster.hpp"
#include "support/table.hpp"

namespace {

struct Options {
  std::string problem = "knapsack";
  std::uint32_t workers = 4;
  std::uint64_t seed = 1;
  std::size_t size = 0;  // 0 = per-problem default
  std::vector<double> crash_fractions;
  double loss = 0.0;
  bool adaptive = false;
  bool trace = false;
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--problem") {
      const char* v = next();
      if (!v) return false;
      opt.problem = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return false;
      opt.workers = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--size") {
      const char* v = next();
      if (!v) return false;
      opt.size = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--crash") {
      const char* v = next();
      if (!v) return false;
      opt.crash_fractions.push_back(std::atof(v));
    } else if (arg == "--loss") {
      const char* v = next();
      if (!v) return false;
      opt.loss = std::atof(v);
    } else if (arg == "--adaptive") {
      opt.adaptive = true;
    } else if (arg == "--trace") {
      opt.trace = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftbb;
  Options opt;
  if (!parse(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: %s [--problem knapsack|vertex-cover|partition|tree] "
                 "[--workers N] [--seed S] [--size N] [--crash F]... "
                 "[--loss P] [--adaptive] [--trace]\n",
                 argv[0]);
    return 2;
  }

  // Build the requested problem. Tree problems own their BasicTree.
  std::unique_ptr<bnb::IProblemModel> model;
  std::unique_ptr<bnb::BasicTree> tree;
  bnb::NodeCostModel cost;
  cost.mean = 5e-3;
  cost.seed = opt.seed;
  if (opt.problem == "knapsack") {
    const std::size_t items = opt.size ? opt.size : 18;
    model = std::make_unique<bnb::KnapsackModel>(
        bnb::KnapsackInstance::strongly_correlated(items, 100, 0.5, opt.seed),
        cost);
  } else if (opt.problem == "vertex-cover") {
    const auto n = static_cast<std::uint32_t>(opt.size ? opt.size : 22);
    model = std::make_unique<bnb::VertexCoverModel>(
        bnb::Graph::gnp(n, 0.3, opt.seed), cost);
  } else if (opt.problem == "partition") {
    const std::size_t n = opt.size ? opt.size : 16;
    model = std::make_unique<bnb::PartitionModel>(
        bnb::PartitionInstance::random(n, 300, opt.seed), cost);
  } else if (opt.problem == "tree") {
    bnb::RandomTreeConfig tc;
    tc.target_nodes = opt.size ? opt.size : 4001;
    tc.seed = opt.seed;
    tc.cost_mean = cost.mean;
    tree = std::make_unique<bnb::BasicTree>(bnb::BasicTree::random(tc));
    model = std::make_unique<bnb::TreeProblem>(tree.get(), false);
  } else {
    std::fprintf(stderr, "unknown problem: %s\n", opt.problem.c_str());
    return 2;
  }

  sim::ClusterConfig cfg;
  cfg.workers = opt.workers;
  cfg.seed = opt.seed;
  cfg.worker.report_batch = 8;
  cfg.worker.report_flush_interval = 0.1;
  cfg.worker.table_gossip_interval = 0.5;
  cfg.worker.work_request_timeout = 0.02;
  cfg.worker.idle_backoff = 0.01;
  cfg.worker.adaptive_timeouts = opt.adaptive;
  cfg.net.loss_prob = opt.loss;
  cfg.record_trace = opt.trace;
  cfg.time_limit = 1e5;

  // Crash fractions are relative to the failure-free makespan.
  if (!opt.crash_fractions.empty()) {
    const sim::ClusterResult baseline = sim::SimCluster::run(*model, cfg);
    if (!baseline.all_live_halted) {
      std::fprintf(stderr, "baseline run did not terminate\n");
      return 1;
    }
    core::NodeId victim = 1 % opt.workers;
    for (const double fraction : opt.crash_fractions) {
      cfg.crashes.push_back({victim, baseline.makespan * fraction});
      victim = (victim + 1) % opt.workers;
      if (victim == 0) victim = 1 % opt.workers;  // keep one stable survivor
    }
  }

  const sim::ClusterResult res = sim::SimCluster::run(*model, cfg);
  if (opt.trace) std::printf("%s\n", res.timeline.render_ascii(opt.workers, 100).c_str());

  std::printf("problem     : %s (seed %llu)\n", model->name().c_str(),
              static_cast<unsigned long long>(opt.seed));
  std::printf("workers     : %u (%zu crash injections, %.0f%% loss)\n", opt.workers,
              cfg.crashes.size(), opt.loss * 100.0);
  std::printf("terminated  : %s\n", res.all_live_halted ? "yes" : "NO");
  std::printf("solution    : %g", res.solution);
  if (model->known_optimal().has_value()) {
    std::printf(" (optimum %g, %s)", *model->known_optimal(),
                res.solution == *model->known_optimal() ? "match" : "MISMATCH");
  }
  std::printf("\nmakespan    : %.3f virtual seconds\n", res.makespan);
  std::printf("expanded    : %llu (%llu redundant)\n",
              static_cast<unsigned long long>(res.total_expanded),
              static_cast<unsigned long long>(res.redundant_expansions));
  std::printf("messages    : %llu (%.1f KB, %llu lost)\n",
              static_cast<unsigned long long>(res.net.messages_sent),
              static_cast<double>(res.net.bytes_sent) / 1024.0,
              static_cast<unsigned long long>(res.net.messages_lost));
  return res.all_live_halted ? 0 : 1;
}
