// Quickstart: solve a knapsack instance with the decentralized
// fault-tolerant branch-and-bound algorithm on the simulator.
//
//   $ ./quickstart [workers] [items] [seed]
//
// Walks through the whole public API surface: build a problem model, pick a
// worker configuration, run a simulated cluster, inspect the result.
#include <cstdio>
#include <cstdlib>

#include "bnb/knapsack.hpp"
#include "sim/cluster.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ftbb;
  const std::uint32_t workers = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t items = argc > 2 ? std::atoi(argv[2]) : 22;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 2;

  // 1. A problem: strongly correlated 0/1 knapsack (hard for B&B).
  const auto instance =
      bnb::KnapsackInstance::strongly_correlated(items, 100, 0.5, seed);
  bnb::NodeCostModel cost;
  cost.mean = 0.01;  // 10 ms of (virtual) work per node
  bnb::KnapsackModel model(instance, cost);

  // 2. A worker configuration: the paper's knobs.
  core::WorkerConfig worker;
  worker.report_batch = 8;        // c: completions per work report
  worker.report_fanout = 2;       // m: random recipients per report
  worker.report_flush_interval = 0.25;
  worker.table_gossip_interval = 1.0;
  worker.work_request_timeout = 0.02;
  worker.recovery = core::RecoveryPolicy::kNearLastLocal;

  // 3. A cluster: network follows the paper's 1.5 + 0.005*L ms model.
  sim::ClusterConfig cluster;
  cluster.workers = workers;
  cluster.worker = worker;
  cluster.seed = seed;

  const sim::ClusterResult result = sim::SimCluster::run(model, cluster);

  // 4. Results.
  std::printf("problem        : %s, %zu items, capacity %lld\n",
              model.name().c_str(), instance.items(),
              static_cast<long long>(instance.capacity));
  std::printf("workers        : %u\n", workers);
  std::printf("terminated     : %s\n", result.all_live_halted ? "yes" : "NO");
  std::printf("best profit    : %.0f\n", -result.solution);
  if (model.known_optimal().has_value()) {
    std::printf("optimal profit : %.0f (%s)\n", -*model.known_optimal(),
                result.solution == *model.known_optimal() ? "match" : "MISMATCH");
  }
  std::printf("makespan       : %.2f virtual seconds\n", result.makespan);
  std::printf("nodes expanded : %llu (%llu unique, %llu redundant)\n",
              static_cast<unsigned long long>(result.total_expanded),
              static_cast<unsigned long long>(result.unique_expanded),
              static_cast<unsigned long long>(result.redundant_expansions));
  std::printf("messages       : %llu (%.1f KB)\n",
              static_cast<unsigned long long>(result.net.messages_sent),
              static_cast<double>(result.net.bytes_sent) / 1024.0);

  support::TextTable table({"category", "time (s)", "share"});
  const double total = result.time_all();
  for (int k = 0; k < core::kCostKinds; ++k) {
    table.row({to_string(static_cast<core::CostKind>(k)),
               support::TextTable::num(result.total_time[k], 2),
               support::TextTable::pct(result.total_time[k] / total, 1)});
  }
  std::printf("\nper-category time across all workers:\n%s", table.render().c_str());
  return result.all_live_halted ? 0 : 1;
}
