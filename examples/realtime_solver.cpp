// Real-time distributed solve on the thread-backed runtime.
//
// The identical worker protocol that the simulator hosts in virtual time
// runs here on real threads with real message queues (the MPI-on-one-box
// equivalent), solving a minimum-vertex-cover instance while two workers
// are killed mid-run.
#include <cstdio>
#include <cstdlib>

#include "bnb/vertex_cover.hpp"
#include "rt/runtime.hpp"

int main(int argc, char** argv) {
  using namespace ftbb;
  const std::uint32_t workers = argc > 1 ? std::atoi(argv[1]) : 6;

  // A G(n, p) graph; vertex cover branches on vertices, excluding a vertex
  // forces its neighbors into the cover.
  const bnb::Graph graph = bnb::Graph::gnp(26, 0.25, 11);
  bnb::NodeCostModel cost;
  cost.mean = 5e-3;  // ~5 ms per node: long enough that the faults land
                     // mid-search, short enough to stay a demo
  bnb::VertexCoverModel model(graph, cost);

  rt::RtConfig cfg;
  cfg.workers = workers;
  cfg.seed = 11;
  cfg.wall_timeout = 60.0;
  cfg.net.latency_fixed = 0.0005;
  cfg.net.latency_per_byte = 0.0;
  cfg.net.loss_prob = 0.02;  // a slightly lossy "network"
  cfg.worker.report_batch = 4;
  cfg.worker.report_flush_interval = 0.02;
  cfg.worker.table_gossip_interval = 0.05;
  cfg.worker.work_request_timeout = 0.01;
  cfg.worker.idle_backoff = 0.004;
  // One worker dies for good shortly after start; another bounces — its
  // fresh incarnation re-enters through the normal load-balancing path.
  cfg.faults.crashes = {{1, 0.02}, {2, 0.04}};
  cfg.faults.revives = {{2, 0.12}};

  std::printf("solving vertex cover on %u threads (2 crash, 1 rejoins)...\n",
              workers);
  const rt::RtResult res = rt::Cluster::run(model, cfg);

  std::printf("terminated    : %s in %.2fs wall\n",
              res.all_live_halted ? "yes" : "NO", res.wall_seconds);
  std::printf("cover size    : %.0f", res.solution);
  if (model.known_optimal().has_value()) {
    std::printf(" (optimum %.0f, %s)", *model.known_optimal(),
                res.solution == *model.known_optimal() ? "match" : "MISMATCH");
  }
  std::printf("\nmessages      : %llu delivered, %llu lost\n",
              static_cast<unsigned long long>(res.net.messages_delivered),
              static_cast<unsigned long long>(res.net.messages_lost));
  std::printf("incarnations  : %u spawned, %u reaped, %llu nodes re-expanded\n",
              res.incarnations, res.reaped,
              static_cast<unsigned long long>(res.redundant_expansions));
  for (std::size_t i = 0; i < res.workers.size(); ++i) {
    std::printf("worker %zu      : expanded=%llu recoveries=%llu%s\n", i,
                static_cast<unsigned long long>(res.workers[i].expanded),
                static_cast<unsigned long long>(res.workers[i].recoveries),
                res.crashed[i] ? " [crashed]" : "");
  }
  return res.all_live_halted ? 0 : 1;
}
