#include "support/bytes.hpp"

// All members are defined inline in the header; this translation unit exists
// so the library has a home for the header's symbols under some linkers and
// to keep a stable place for future out-of-line growth.
namespace ftbb::support {}
