#include "support/rng.hpp"

#include <cmath>
#include <unordered_set>

namespace ftbb::support {

std::uint64_t Rng::below(std::uint64_t bound) {
  FTBB_CHECK(bound > 0);
  // Lemire's nearly-divisionless method: widen-multiply and reject the
  // biased low region. The rejection loop terminates quickly for any bound.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  FTBB_CHECK(mean > 0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal(double mean, double stddev) {
  double u;
  double v;
  double s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  return mean + stddev * u * factor;
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  FTBB_CHECK(mean > 0);
  FTBB_CHECK(cv >= 0);
  if (cv == 0.0) return mean;
  // For LogNormal(mu, sigma): E = exp(mu + sigma^2/2), CV^2 = exp(sigma^2)-1.
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  FTBB_CHECK(k <= n);
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an explicit index vector.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(below(n - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: rejection sampling into a hash set.
  std::unordered_set<std::size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    const std::size_t candidate = static_cast<std::size_t>(below(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

}  // namespace ftbb::support
