// Compact binary serialization.
//
// Every FTBB wire message is encoded through ByteWriter/ByteReader so that
// the simulator's communication-cost model (latency = alpha + beta * bytes,
// exactly the paper's 1.5 + 0.005*L ms) and the storage-space measurements
// (Table 1) are computed from honest on-the-wire byte counts rather than
// sizeof() guesses. Integers use LEB128 varints because subproblem codes are
// dominated by small variable indices; this is also what makes the paper's
// work-report compression observable in bytes, not just in code counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/check.hpp"

namespace ftbb::support {

/// Append-only encoder producing a byte vector.
///
/// A counting() writer accepts the same encode calls but accumulates size()
/// only, never touching a buffer — the allocation-free path behind every
/// per-send wire_size() / frame_size() latency charge.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Counting-only writer: size() without bytes. data()/take() are invalid.
  static ByteWriter counting() { return ByteWriter(true); }
  [[nodiscard]] bool counting_only() const { return counting_; }

  void u8(std::uint8_t v) {
    if (counting_) {
      ++count_;
      return;
    }
    buf_.push_back(v);
  }

  /// Unsigned LEB128 varint, 1..10 bytes.
  void varint(std::uint64_t v) {
    if (counting_) {
      while (v >= 0x80) {
        ++count_;
        v >>= 7;
      }
      ++count_;
      return;
    }
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Signed values via zigzag so small negatives stay small.
  void svarint(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }

  /// IEEE-754 doubles verbatim (bounds, incumbents, timestamps).
  void f64(double v) {
    if (counting_) {
      count_ += 8;
      return;
    }
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }

  void bytes(const void* data, std::size_t n) {
    if (counting_) {
      count_ += n;
      return;
    }
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  void str(std::string_view s) {
    varint(s.size());
    bytes(s.data(), s.size());
  }

  [[nodiscard]] std::size_t size() const {
    return counting_ ? count_ : buf_.size();
  }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const {
    FTBB_CHECK_MSG(!counting_, "counting ByteWriter holds no bytes");
    return buf_;
  }
  std::vector<std::uint8_t> take() {
    FTBB_CHECK_MSG(!counting_, "counting ByteWriter holds no bytes");
    return std::move(buf_);
  }

 private:
  explicit ByteWriter(bool counting) : counting_(counting) {}

  std::vector<std::uint8_t> buf_;
  std::size_t count_ = 0;
  bool counting_ = false;
};

/// Sequential decoder over a byte span, in one of two failure disciplines:
///
///  * kTrusted (default): decoding errors abort via FTBB_CHECK. Inside the
///    simulator a malformed message is an implementation bug, never an
///    environmental condition (the network model does not corrupt payloads,
///    matching the paper's assumption that links do not corrupt messages).
///  * kTolerant: errors latch a failure flag instead of aborting; every
///    subsequent read returns a zero value and ok() turns false. This is the
///    discipline for bytes that crossed a real transport — a corrupt or
///    truncated frame must surface as a droppable decode error, not a
///    process abort.
class ByteReader {
 public:
  enum class Policy : std::uint8_t { kTrusted = 0, kTolerant = 1 };

  ByteReader(const std::uint8_t* data, std::size_t size,
             Policy policy = Policy::kTrusted)
      : data_(data), size_(size), policy_(policy) {}
  explicit ByteReader(const std::vector<std::uint8_t>& v,
                      Policy policy = Policy::kTrusted)
      : ByteReader(v.data(), v.size(), policy) {}

  /// False once any read failed (tolerant mode only; trusted mode aborts).
  [[nodiscard]] bool ok() const { return !failed_; }

  /// Marks the stream corrupt — tolerant readers latch the failure, trusted
  /// readers abort. For decoders that discover semantically impossible
  /// values (implausible depths, counts exceeding the input).
  void mark_corrupt(const char* why) { fail(why); }

  /// True when a collection of `n` elements, each occupying at least
  /// `min_bytes_each` input bytes, could still fit in the remaining input.
  /// Decoders MUST gate reserve() on attacker-controlled counts with this —
  /// a hostile varint count must not allocate beyond the input size.
  [[nodiscard]] bool fits_count(std::uint64_t n, std::size_t min_bytes_each = 1) {
    if (failed_) return false;
    if (min_bytes_each == 0 ||
        n <= static_cast<std::uint64_t>(remaining() / min_bytes_each)) {
      return true;
    }
    fail("ByteReader: collection count exceeds remaining bytes");
    return false;
  }

  std::uint8_t u8() {
    if (failed_ || pos_ >= size_) {
      fail("ByteReader: truncated u8");
      return 0;
    }
    return data_[pos_++];
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (failed_ || pos_ >= size_) {
        fail("ByteReader: truncated varint");
        return 0;
      }
      const std::uint8_t byte = data_[pos_++];
      if (shift >= 64) {
        fail("ByteReader: varint overflow");
        return 0;
      }
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) return v;
      shift += 7;
    }
  }

  std::int64_t svarint() {
    const std::uint64_t z = varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  double f64() {
    if (failed_ || size_ - pos_ < 8) {
      fail("ByteReader: truncated f64");
      return 0.0;
    }
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint64_t n = varint();
    // remaining() comparison, not pos_ + n: a huge n must not wrap the sum.
    if (failed_ || n > size_ - pos_) {
      fail("ByteReader: truncated string");
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  [[nodiscard]] bool done() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  void fail(const char* why) {
    if (policy_ == Policy::kTrusted && !failed_) {
      FTBB_CHECK_MSG(false, why);
    }
    failed_ = true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  Policy policy_ = Policy::kTrusted;
  bool failed_ = false;
};

/// Number of bytes varint(v) would occupy; used for size estimation without
/// materializing a buffer (storage accounting of completion tables).
constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace ftbb::support
