// Compact binary serialization.
//
// Every FTBB wire message is encoded through ByteWriter/ByteReader so that
// the simulator's communication-cost model (latency = alpha + beta * bytes,
// exactly the paper's 1.5 + 0.005*L ms) and the storage-space measurements
// (Table 1) are computed from honest on-the-wire byte counts rather than
// sizeof() guesses. Integers use LEB128 varints because subproblem codes are
// dominated by small variable indices; this is also what makes the paper's
// work-report compression observable in bytes, not just in code counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/check.hpp"

namespace ftbb::support {

/// Append-only encoder producing a byte vector.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  /// Unsigned LEB128 varint, 1..10 bytes.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Signed values via zigzag so small negatives stay small.
  void svarint(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }

  /// IEEE-754 doubles verbatim (bounds, incumbents, timestamps).
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  void str(std::string_view s) {
    varint(s.size());
    bytes(s.data(), s.size());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential decoder over a byte span. Decoding errors abort via FTBB_CHECK:
/// inside the simulator a malformed message is an implementation bug, never
/// an environmental condition (the network model does not corrupt payloads,
/// matching the paper's assumption that links do not corrupt messages).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& v) : ByteReader(v.data(), v.size()) {}

  std::uint8_t u8() {
    FTBB_CHECK_MSG(pos_ < size_, "ByteReader: truncated u8");
    return data_[pos_++];
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      FTBB_CHECK_MSG(pos_ < size_, "ByteReader: truncated varint");
      const std::uint8_t byte = data_[pos_++];
      FTBB_CHECK_MSG(shift < 64, "ByteReader: varint overflow");
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) return v;
      shift += 7;
    }
  }

  std::int64_t svarint() {
    const std::uint64_t z = varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  double f64() {
    FTBB_CHECK_MSG(pos_ + 8 <= size_, "ByteReader: truncated f64");
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint64_t n = varint();
    FTBB_CHECK_MSG(pos_ + n <= size_, "ByteReader: truncated string");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] bool done() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Number of bytes varint(v) would occupy; used for size estimation without
/// materializing a buffer (storage accounting of completion tables).
constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace ftbb::support
