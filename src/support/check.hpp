// Lightweight runtime assertions that stay enabled in release builds.
//
// Internal invariant violations in a distributed protocol are exactly the
// bugs that silent `assert`-in-debug-only misses; FTBB_CHECK aborts with a
// location-stamped message in every build type.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ftbb::support {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "FTBB_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace ftbb::support

#define FTBB_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::ftbb::support::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define FTBB_CHECK_MSG(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) ::ftbb::support::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)
