#include "support/stats.hpp"

#include "support/check.hpp"

namespace ftbb::support {

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge formulas.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  FTBB_CHECK_MSG(!bounds_.empty(), "Histogram needs at least one bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    FTBB_CHECK_MSG(bounds_[i - 1] < bounds_[i], "Histogram bounds must increase");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::add(double x) {
  if (total_ == 0) {
    lowest_seen_ = x;
    highest_seen_ = x;
  } else {
    lowest_seen_ = std::min(lowest_seen_, x);
    highest_seen_ = std::max(highest_seen_, x);
  }
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
  ++total_;
}

double Histogram::quantile(double q) const {
  FTBB_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      // Interpolate within the bucket; treat the first/last buckets as
      // pinned at the observed extremes.
      const double lo = (i == 0) ? lowest_seen_ : bounds_[i - 1];
      const double hi = (i == counts_.size() - 1) ? highest_seen_ : bounds_[i];
      if (counts_[i] == 0) return lo;
      const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
      return lo + (hi - lo) * frac;
    }
    cumulative = next;
  }
  return highest_seen_;
}

}  // namespace ftbb::support
