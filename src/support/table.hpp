// Plain-text table rendering for benchmark harness output.
//
// Every bench binary prints the rows/series of the paper table or figure it
// regenerates; TextTable keeps that output aligned and diff-friendly without
// dragging in a formatting dependency.
#pragma once

#include <string>
#include <vector>

namespace ftbb::support {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must match the header arity.
  void row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 2);

  /// Renders with column alignment and a rule under the header.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftbb::support
