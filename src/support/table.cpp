#include "support/table.hpp"

#include <cstdio>

#include "support/check.hpp"

namespace ftbb::support {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  FTBB_CHECK(!header_.empty());
}

void TextTable::row(std::vector<std::string> cells) {
  FTBB_CHECK_MSG(cells.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      out += "| ";
      out += r[c];
      out.append(width[c] - r[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& r : rows_) emit_row(r);
  return out;
}

}  // namespace ftbb::support
