// Streaming statistics accumulators used by the measurement layer.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ftbb::support {

/// Welford mean/variance accumulator with min/max tracking.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  void merge(const Accumulator& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-boundary histogram for latency/size distributions in reports.
class Histogram {
 public:
  /// Buckets are [b0,b1), [b1,b2), ... plus an overflow bucket.
  explicit Histogram(std::vector<double> bounds);

  void add(double x);
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Linear-interpolated quantile estimate in [0,1].
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 entries
  std::uint64_t total_ = 0;
  double lowest_seen_ = 0.0;
  double highest_seen_ = 0.0;
};

}  // namespace ftbb::support
