// Deterministic, splittable random number generation.
//
// All randomness in FTBB (network jitter, peer selection, workload
// generation, failure schedules) flows from seeded Rng streams so that every
// simulation run is exactly reproducible from its seed. The generator is
// xoshiro256** seeded through splitmix64, following the reference
// implementations by Blackman & Vigna; both are tiny, fast, and have no
// global state, which matters when thousands of simulated entities each own
// an independent stream.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace ftbb::support {

/// splitmix64 step; used for seeding and for hashing small integers into
/// well-mixed 64-bit values (e.g. deriving per-entity seeds from a master
/// seed and an entity id).
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of two 64-bit values; handy for deriving child seeds.
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** pseudo-random generator.
///
/// Satisfies the std UniformRandomBitGenerator requirements so it can be
/// used with <random> distributions, but FTBB mostly uses the built-in
/// helpers below to avoid libstdc++ distribution implementation differences
/// sneaking into "deterministic" results.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent stream for entity `id`; streams from distinct
  /// ids are decorrelated by the splitmix64 avalanche.
  [[nodiscard]] Rng split(std::uint64_t id) const {
    return Rng(mix64(state_[0] ^ state_[3], id));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    FTBB_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with the given mean (inverse-CDF method).
  double exponential(double mean);

  /// Standard normal via Marsaglia polar method (no cached spare, keeps the
  /// generator state a pure function of draw count).
  double normal(double mean, double stddev);

  /// Lognormal such that the *mean of the produced values* is `mean` and the
  /// coefficient of variation is `cv` — convenient for node-cost models where
  /// the paper reports mean cost per node.
  double lognormal_mean_cv(double mean, double cv);

  /// Picks a uniformly random element index of a non-empty container size.
  std::size_t pick(std::size_t size) {
    FTBB_CHECK(size > 0);
    return static_cast<std::size_t>(below(size));
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), uniformly, in
  /// O(k) expected time; order of results is unspecified but deterministic.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ftbb::support
