// Minimum vertex cover as a B&B problem model.
//
// Branching fixes a vertex into the cover (bit 1) or out of it (bit 0);
// excluding a vertex forces all of its neighbors into the cover, so the two
// children differ structurally — and, like knapsack, the next branching
// vertex depends on the partial assignment, producing subtree-dependent
// variable orders (paper Section 5.3.1).
//
// The lower bound is |partial cover| plus a greedy maximal matching on the
// still-uncovered subgraph (every matching edge needs at least one more
// cover vertex).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bnb/knapsack.hpp"  // NodeCostModel
#include "bnb/problem.hpp"

namespace ftbb::bnb {

/// Simple undirected graph with adjacency lists.
struct Graph {
  std::uint32_t n = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::vector<std::vector<std::uint32_t>> adj;

  void finalize();  // builds adjacency from the edge list

  /// Erdos-Renyi G(n, p).
  static Graph gnp(std::uint32_t n, double p, std::uint64_t seed);
  /// Cycle C_n (optimum cover = ceil(n/2)).
  static Graph cycle(std::uint32_t n);
  /// Complete graph K_n (optimum cover = n-1).
  static Graph complete(std::uint32_t n);
};

class VertexCoverModel final : public IProblemModel {
 public:
  explicit VertexCoverModel(Graph g, NodeCostModel cost = {});

  [[nodiscard]] double root_bound() const override;
  [[nodiscard]] NodeEval eval(const core::PathCode& code) const override;
  [[nodiscard]] std::string name() const override { return "vertex-cover"; }
  [[nodiscard]] double bound_of(const core::PathCode& code) const override;
  [[nodiscard]] std::optional<double> known_optimal() const override;

  [[nodiscard]] const Graph& graph() const { return graph_; }

 private:
  enum : std::int8_t { kUnset = -1, kOut = 0, kIn = 1 };

  struct State {
    std::vector<std::int8_t> status;
    std::uint32_t in_count = 0;
  };

  [[nodiscard]] State replay(const core::PathCode& code) const;
  /// Puts `v` in/out and applies the exclusion-forces-neighbors rule.
  static void apply(State& s, const Graph& g, std::uint32_t v, std::uint8_t bit);
  /// Next branching vertex: the undecided vertex with the most undecided
  /// neighbors; nullopt when every edge is covered (leaf).
  [[nodiscard]] std::optional<std::uint32_t> next_var(const State& s) const;
  [[nodiscard]] double bound_of(const State& s) const;

  Graph graph_;
  NodeCostModel cost_;
  std::optional<double> known_optimal_;  // brute force for small graphs
};

}  // namespace ftbb::bnb
