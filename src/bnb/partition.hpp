// Two-way number partitioning as a B&B problem model.
//
// Split a multiset of positive integers into two sets minimizing the
// absolute difference of their sums — the textbook "easiest hard problem".
// Branching assigns one item per level (items pre-sorted descending, so the
// branching variable is simply the depth index); bit 1 puts the item in set
// A, bit 0 in set B. The lower bound is the Karmarkar-Karp style residual
// bound max(0, |difference| - sum(remaining)): the unassigned items can at
// best cancel the current imbalance.
//
// Unlike knapsack/vertex cover, the variable order here is fixed across
// subtrees, which exercises the degenerate case of the paper's encoding
// (codes still carry the variable, it just never varies per depth).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bnb/knapsack.hpp"  // NodeCostModel
#include "bnb/problem.hpp"

namespace ftbb::bnb {

struct PartitionInstance {
  std::vector<std::int64_t> values;  // positive; stored sorted descending

  [[nodiscard]] std::int64_t total() const;

  /// Uniform values in [1, max_value].
  static PartitionInstance random(std::size_t n, std::int64_t max_value,
                                  std::uint64_t seed);

  /// Exact optimum |sum(A) - sum(B)| by subset-sum DP; requires total() to
  /// be small enough to enumerate.
  [[nodiscard]] std::int64_t dp_optimal_difference() const;
};

class PartitionModel final : public IProblemModel {
 public:
  explicit PartitionModel(PartitionInstance instance, NodeCostModel cost = {});

  [[nodiscard]] double root_bound() const override;
  [[nodiscard]] NodeEval eval(const core::PathCode& code) const override;
  [[nodiscard]] std::string name() const override { return "number-partition"; }
  [[nodiscard]] double bound_of(const core::PathCode& code) const override;
  [[nodiscard]] std::optional<double> known_optimal() const override;

  [[nodiscard]] const PartitionInstance& instance() const { return instance_; }

 private:
  struct State {
    std::int64_t diff = 0;       // sum(A) - sum(B)
    std::size_t assigned = 0;    // items 0..assigned-1 are placed
    std::int64_t remaining = 0;  // sum of unassigned values
  };

  [[nodiscard]] State replay(const core::PathCode& code) const;
  [[nodiscard]] static double bound_of(const State& s);

  PartitionInstance instance_;
  NodeCostModel cost_;
  std::optional<double> known_optimal_;
};

}  // namespace ftbb::bnb
