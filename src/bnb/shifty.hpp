// Adversarial synthetic problem whose branching factor — and per-node cost —
// shift mid-solve (ROADMAP: "an adversarial synthetic whose branching factor
// shifts mid-solve").
//
// The tree alternates depth bands of width `phase_period`: *bushy* bands
// where every node has two live children and expansions are cheap, and
// *skinny* bands where most nodes lose their non-preferred child (one
// deterministic hash draw against `skinny_kill_bias`) and expansions cost
// `cost_shift` times more. A search that tunes itself to one band's
// granularity is immediately wrong in the next — exactly the workload the
// cost model's EWMA + hysteresis must track without thrashing.
//
// Like every model here it is a pure function of the path code: node
// identity is a splitmix64 fold over the branch steps, bounds are the
// monotone prefix sum of per-step increments derived from that hash, and a
// step that the kill draw removed marks the whole suffix infeasible — so
// eval() answers consistently even for codes resurrected by failure
// recovery's complement. The constructor enumerates the (small) tree once
// to pin the true optimum for verification.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "bnb/problem.hpp"

namespace ftbb::bnb {

struct ShiftyOptions {
  std::uint32_t depth_limit = 14;   // leaves live here
  std::uint32_t phase_period = 4;   // band width; bands alternate bushy/skinny
  double cost_mean = 1e-3;          // bushy-band expansion cost scale
  double cost_shift = 8.0;          // skinny-band cost multiplier
  double skinny_kill_bias = 0.85;   // P(non-preferred child dies) in a skinny band
  double bound_step = 1.0;          // max per-level bound increment
  double leaf_slack = 4.0;          // max leaf value above its bound
};

class ShiftyProblem : public IProblemModel {
 public:
  explicit ShiftyProblem(std::uint64_t seed, ShiftyOptions opts = {});

  [[nodiscard]] double root_bound() const override { return 0.0; }
  [[nodiscard]] NodeEval eval(const core::PathCode& code) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double bound_of(const core::PathCode& code) const override;
  [[nodiscard]] std::optional<double> known_optimal() const override {
    return optimal_;
  }

  /// True when depth sits in a high-cost, low-branching band.
  [[nodiscard]] bool in_skinny_band(std::size_t depth) const;

  // Introspection for tests and benches (full-enumeration totals).
  [[nodiscard]] std::uint64_t total_nodes() const { return total_nodes_; }
  [[nodiscard]] std::uint64_t total_leaves() const { return total_leaves_; }
  [[nodiscard]] double total_cost() const { return total_cost_; }

 private:
  struct NodeInfo {
    double bound = 0.0;
    std::uint64_t hash = 0;
    bool dead = false;  // some step along the path was a killed branch
  };
  [[nodiscard]] NodeInfo info_of(const core::PathCode& code) const;
  [[nodiscard]] NodeInfo child_info(const NodeInfo& parent, std::size_t parent_depth,
                                    std::uint32_t var, std::uint8_t bit) const;
  [[nodiscard]] double node_cost(std::size_t depth, std::uint64_t hash) const;
  void enumerate(const NodeInfo& node, std::size_t depth);

  std::uint64_t seed_;
  ShiftyOptions opts_;
  double optimal_ = kInfinity;
  std::uint64_t total_nodes_ = 0;
  std::uint64_t total_leaves_ = 0;
  double total_cost_ = 0.0;
};

}  // namespace ftbb::bnb
