#include "bnb/partition.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <numeric>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace ftbb::bnb {

std::int64_t PartitionInstance::total() const {
  return std::accumulate(values.begin(), values.end(), std::int64_t{0});
}

PartitionInstance PartitionInstance::random(std::size_t n, std::int64_t max_value,
                                            std::uint64_t seed) {
  FTBB_CHECK(max_value >= 1);
  support::Rng rng(seed);
  PartitionInstance inst;
  inst.values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) inst.values.push_back(rng.range(1, max_value));
  std::sort(inst.values.begin(), inst.values.end(), std::greater<>());
  return inst;
}

std::int64_t PartitionInstance::dp_optimal_difference() const {
  const std::int64_t sum = total();
  FTBB_CHECK_MSG(sum <= 50'000'000, "dp_optimal_difference: instance too large");
  // Reachable subset sums up to sum/2.
  const auto half = static_cast<std::size_t>(sum / 2);
  std::vector<char> reachable(half + 1, 0);
  reachable[0] = 1;
  for (const std::int64_t v : values) {
    const auto value = static_cast<std::size_t>(v);
    for (std::size_t s = half + 1; s-- > value;) {
      if (reachable[s - value]) reachable[s] = 1;
    }
  }
  for (std::size_t s = half + 1; s-- > 0;) {
    if (reachable[s]) return sum - 2 * static_cast<std::int64_t>(s);
  }
  return sum;
}

PartitionModel::PartitionModel(PartitionInstance instance, NodeCostModel cost)
    : instance_(std::move(instance)), cost_(cost) {
  std::sort(instance_.values.begin(), instance_.values.end(), std::greater<>());
  if (instance_.total() <= 5'000'000) {
    known_optimal_ = static_cast<double>(instance_.dp_optimal_difference());
  }
}

PartitionModel::State PartitionModel::replay(const core::PathCode& code) const {
  State s;
  s.remaining = instance_.total();
  for (std::size_t i = 0; i < code.depth(); ++i) {
    const core::Branch step = code.step(i);
    FTBB_CHECK_MSG(step.var == s.assigned, "partition code: out-of-order variable");
    FTBB_CHECK_MSG(step.var < instance_.values.size(), "partition code: bad variable");
    const std::int64_t v = instance_.values[step.var];
    s.diff += step.bit ? v : -v;
    s.remaining -= v;
    ++s.assigned;
  }
  return s;
}

double PartitionModel::bound_of(const State& s) {
  const std::int64_t imbalance = std::abs(s.diff);
  return static_cast<double>(std::max<std::int64_t>(0, imbalance - s.remaining));
}

double PartitionModel::root_bound() const {
  return bound_of(replay(core::PathCode::root()));
}

double PartitionModel::bound_of(const core::PathCode& code) const {
  return bound_of(replay(code));
}

NodeEval PartitionModel::eval(const core::PathCode& code) const {
  const State s = replay(code);
  NodeEval out;
  out.cost = cost_.cost_for(code);
  if (s.assigned == instance_.values.size()) {
    out.feasible_leaf = true;
    out.value = static_cast<double>(std::abs(s.diff));
    return out;
  }
  const auto var = static_cast<std::uint32_t>(s.assigned);
  const std::int64_t v = instance_.values[var];
  for (const std::uint8_t bit : {std::uint8_t{1}, std::uint8_t{0}}) {
    State child = s;
    child.diff += bit ? v : -v;
    child.remaining -= v;
    ++child.assigned;
    out.children.push_back(ChildOut{var, bit, bound_of(child), false});
  }
  return out;
}

std::optional<double> PartitionModel::known_optimal() const { return known_optimal_; }

}  // namespace ftbb::bnb
