// Branch-and-bound problem model (paper Section 2).
//
// FTBB treats every search problem as MINIMIZATION: Bound computes a lower
// bound l(v) on the best solution inside subproblem v, and Eliminate prunes
// v when l(v) >= U for the incumbent U (maximization problems negate their
// objective; see KnapsackModel).
//
// A model is a *pure function of the subproblem code*: eval(code) must
// return identical results on every processor and every call. This is the
// paper's "self-contained code" property (Section 5.3.1) — a code plus the
// initial data reconstructs the subproblem anywhere — and it is also what
// makes redundant re-execution after failures harmless.
//
// Timing: eval(code).cost is the virtual time "needed for computing the
// bound value and expanding the node or determining infeasibility" (Section
// 6.2); the simulator charges it as B&B time. Expanding a node yields its
// children *with bounds already computed* (bounds are needed for best-first
// selection and elimination at insertion, exactly as in the paper's
// operator list), so a node's cost covers decomposing it and bounding its
// children.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/path_code.hpp"

namespace ftbb::bnb {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A child subproblem produced by Decompose, with its Bound already applied.
struct ChildOut {
  std::uint32_t var = 0;  // condition variable branched on (code step)
  std::uint8_t bit = 0;   // branch taken
  double bound = 0.0;     // lower bound l(child)
  bool infeasible = false;  // known-empty child: completed immediately, no cost
};

/// Result of expanding one subproblem.
struct NodeEval {
  double cost = 0.0;          // virtual seconds consumed by this expansion
  bool feasible_leaf = false;  // bounding produced a feasible solution
  double value = kInfinity;    // that solution's objective (when feasible_leaf)
  std::vector<ChildOut> children;  // empty and !feasible_leaf => dead end
};

/// A subproblem in flight: its code plus the bound computed at creation.
struct Subproblem {
  core::PathCode code;
  double bound = 0.0;

  friend bool operator==(const Subproblem&, const Subproblem&) = default;
};

/// Abstract search problem. Implementations must be deterministic,
/// side-effect free, and safe to call concurrently (the real-time runtime
/// shares one model across worker threads).
class IProblemModel {
 public:
  virtual ~IProblemModel() = default;

  /// Lower bound of the root problem.
  [[nodiscard]] virtual double root_bound() const = 0;

  /// Expand the subproblem identified by `code`.
  [[nodiscard]] virtual NodeEval eval(const core::PathCode& code) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Recomputes the lower bound of an arbitrary subproblem from its code.
  /// Used by failure recovery, which reconstructs subproblems from
  /// complement codes alone (the paper's self-containment property). The
  /// default is conservative: never eliminable.
  [[nodiscard]] virtual double bound_of(const core::PathCode& code) const {
    (void)code;
    return -kInfinity;
  }

  /// True optimum when the instance has been solved offline, for
  /// verification in tests and benches.
  [[nodiscard]] virtual std::optional<double> known_optimal() const {
    return std::nullopt;
  }
};

}  // namespace ftbb::bnb
