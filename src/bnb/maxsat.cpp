#include "bnb/maxsat.hpp"

#include "support/check.hpp"

namespace ftbb::bnb {

namespace {

/// splitmix64 finalizer: the formula and every derived draw come from this,
/// so the instance is a pure deterministic function of the seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform [0,1) from the top 53 bits — bit-stable across platforms.
double u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

// Domain-separation salts for the independent draws off one hash stream.
constexpr std::uint64_t kSaltVar = 0x8f1bbcdcu;
constexpr std::uint64_t kSaltSign = 0xca62c1d6u;
constexpr std::uint64_t kSaltWeight = 0x6ed9eba1u;
constexpr std::uint64_t kSaltCost = 0x1f83d9abu;

}  // namespace

MaxSatProblem::MaxSatProblem(std::uint64_t seed, MaxSatOptions opts)
    : seed_(seed), opts_(opts) {
  FTBB_CHECK(opts_.vars >= 3);
  FTBB_CHECK_MSG(opts_.vars <= 22,
                 "constructor enumerates 2^vars assignments to pin the optimum");
  FTBB_CHECK(opts_.clause_ratio > 0.0);
  const auto n_clauses = static_cast<std::size_t>(
      opts_.clause_ratio * static_cast<double>(opts_.vars));
  const std::uint64_t base = mix(seed_ ^ 0x6d61787361745f31ull);  // "maxsat_1"
  clauses_.reserve(n_clauses);
  for (std::size_t c = 0; c < n_clauses; ++c) {
    Clause cl{};
    const std::uint64_t ch = mix(base + c);
    // Three distinct variables by deterministic re-draw on collision.
    for (int lit = 0, draw = 0; lit < 3; ++draw) {
      const auto v = static_cast<std::uint32_t>(
          mix(ch ^ (kSaltVar + static_cast<std::uint64_t>(draw))) % opts_.vars);
      bool dup = false;
      for (int k = 0; k < lit; ++k) dup = dup || cl.var[k] == v;
      if (dup) continue;
      cl.var[lit] = v;
      cl.sign[lit] = static_cast<std::uint8_t>(
          mix(ch ^ (kSaltSign + static_cast<std::uint64_t>(lit))) & 1);
      ++lit;
    }
    cl.weight = 1.0 + 9.0 * u01(mix(ch ^ kSaltWeight));
    total_weight_ += cl.weight;
    clauses_.push_back(cl);
  }
  std::vector<std::int8_t> assign(opts_.vars, -1);
  enumerate(assign, 0);
}

std::vector<std::int8_t> MaxSatProblem::assignment_of(
    const core::PathCode& code) const {
  std::vector<std::int8_t> assign(opts_.vars, -1);
  for (std::size_t i = 0; i < code.depth(); ++i) {
    const core::Branch b = code.step(i);
    FTBB_CHECK(b.var < opts_.vars);
    assign[b.var] = static_cast<std::int8_t>(b.bit);
  }
  return assign;
}

double MaxSatProblem::falsified_weight(
    const std::vector<std::int8_t>& assign) const {
  double falsified = 0.0;
  for (const Clause& cl : clauses_) {
    bool dead = true;
    for (int lit = 0; lit < 3; ++lit) {
      const std::int8_t a = assign[cl.var[lit]];
      if (a == -1 || a == static_cast<std::int8_t>(cl.sign[lit])) {
        dead = false;
        break;
      }
    }
    if (dead) falsified += cl.weight;
  }
  return falsified;
}

std::uint64_t MaxSatProblem::path_hash(const core::PathCode& code) const {
  std::uint64_t h = mix(seed_ ^ 0x6d61787361745f32ull);  // "maxsat_2"
  for (std::size_t i = 0; i < code.depth(); ++i) {
    h = mix(h ^ (static_cast<std::uint64_t>(code.word(i)) + 0x100ull));
  }
  return h;
}

NodeEval MaxSatProblem::eval(const core::PathCode& code) const {
  const std::size_t depth = code.depth();
  const std::vector<std::int8_t> assign = assignment_of(code);
  const double bound = falsified_weight(assign);
  NodeEval out;
  // Same deterministic jitter shape as the other synthetic models.
  out.cost = opts_.cost_mean * (0.75 + 0.5 * u01(mix(path_hash(code) ^ kSaltCost)));
  if (depth >= opts_.vars) {
    // Every clause is decided: the falsified weight IS the objective.
    out.feasible_leaf = true;
    out.value = bound;
    return out;
  }
  const auto var = static_cast<std::uint32_t>(depth);
  for (std::uint8_t bit = 0; bit < 2; ++bit) {
    std::vector<std::int8_t> child = assign;
    child[var] = static_cast<std::int8_t>(bit);
    ChildOut c;
    c.var = var;
    c.bit = bit;
    c.bound = falsified_weight(child);
    out.children.push_back(c);
  }
  return out;
}

double MaxSatProblem::bound_of(const core::PathCode& code) const {
  return falsified_weight(assignment_of(code));
}

std::string MaxSatProblem::name() const {
  return "max-sat(v=" + std::to_string(opts_.vars) +
         ",c=" + std::to_string(clauses_.size()) +
         ",seed=" + std::to_string(seed_) + ")";
}

void MaxSatProblem::enumerate(std::vector<std::int8_t>& assign,
                              std::size_t depth) {
  if (depth >= opts_.vars) {
    const double value = falsified_weight(assign);
    if (value < optimal_) optimal_ = value;
    return;
  }
  // Prune against the incumbent: the falsified weight is monotone in the
  // assignment, so a partial already at/above the best leaf cannot improve.
  if (falsified_weight(assign) >= optimal_) return;
  for (std::int8_t bit = 0; bit < 2; ++bit) {
    assign[depth] = bit;
    enumerate(assign, depth + 1);
  }
  assign[depth] = -1;
}

}  // namespace ftbb::bnb
