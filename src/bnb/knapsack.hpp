// 0/1 knapsack as a B&B problem model.
//
// Knapsack is the classic binary-branching optimization problem: each
// decision fixes one item in (bit 1) or out (bit 0) of the knapsack. The
// framework minimizes, so the objective is the negated packed profit, and
// the bound is the negated Dantzig fractional relaxation.
//
// Branching order is *state dependent*: the next branching variable is the
// first (highest profit-density) undecided item that still fits the residual
// capacity; items that no longer fit are implicitly fixed out. Different
// subtrees therefore branch on different variables at the same depth, which
// exercises the paper's requirement (Section 5.3.1) that codes carry the
// condition variable, not just the branch bit.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bnb/problem.hpp"
#include "support/rng.hpp"

namespace ftbb::bnb {

/// An immutable knapsack instance. Items are stored sorted by decreasing
/// profit density; variable indices in path codes refer to this order.
struct KnapsackInstance {
  std::vector<std::int64_t> weight;
  std::vector<std::int64_t> profit;
  std::int64_t capacity = 0;

  [[nodiscard]] std::size_t items() const { return weight.size(); }

  /// Uniform weights/profits in [1, max_coeff]; easy instances.
  static KnapsackInstance random_uncorrelated(std::size_t n, std::int64_t max_coeff,
                                              double capacity_fraction,
                                              std::uint64_t seed);

  /// Strongly correlated: profit = weight + max_coeff/10. These produce the
  /// large, bushy search trees used to drive the experiments.
  static KnapsackInstance strongly_correlated(std::size_t n, std::int64_t max_coeff,
                                              double capacity_fraction,
                                              std::uint64_t seed);

  /// Exact optimum (maximum packable profit) by dynamic programming; only
  /// callable when items()*capacity is small enough to be practical.
  [[nodiscard]] std::int64_t dp_optimal_profit() const;
};

/// Cost model attached to live problems: virtual seconds per node expansion,
/// drawn deterministically per code from a lognormal distribution so reruns
/// and re-executions after failures observe identical costs.
struct NodeCostModel {
  double mean = 0.01;  // paper Figure 3 uses 0.01 s/node
  double cv = 0.3;     // coefficient of variation
  std::uint64_t seed = 1;

  [[nodiscard]] double cost_for(const core::PathCode& code) const {
    if (cv == 0.0) return mean;
    support::Rng rng(support::mix64(seed, code.hash()));
    return rng.lognormal_mean_cv(mean, cv);
  }
};

class KnapsackModel final : public IProblemModel {
 public:
  KnapsackModel(KnapsackInstance instance, NodeCostModel cost = {});

  [[nodiscard]] double root_bound() const override;
  [[nodiscard]] NodeEval eval(const core::PathCode& code) const override;
  [[nodiscard]] std::string name() const override { return "knapsack"; }
  [[nodiscard]] double bound_of(const core::PathCode& code) const override;
  [[nodiscard]] std::optional<double> known_optimal() const override;

  [[nodiscard]] const KnapsackInstance& instance() const { return instance_; }

 private:
  struct State {
    std::vector<std::int8_t> decided;  // -1 unset, 0 out, 1 in
    std::int64_t cap_left = 0;
    std::int64_t profit = 0;
  };

  /// Replays the decision sequence; aborts on codes that are not valid for
  /// this instance (they cannot be produced by a correct run).
  [[nodiscard]] State replay(const core::PathCode& code) const;

  /// First undecided item that still fits, or nullopt when the node is a
  /// leaf (every remaining item is implicitly out).
  [[nodiscard]] std::optional<std::uint32_t> next_var(const State& s) const;

  /// Lower bound (negated fractional-relaxation profit) for a state.
  [[nodiscard]] double bound_of(const State& s) const;

  KnapsackInstance instance_;  // sorted by density desc
  NodeCostModel cost_;
  std::optional<double> known_optimal_;
};

}  // namespace ftbb::bnb
