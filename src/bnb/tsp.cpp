#include "bnb/tsp.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ftbb::bnb {

namespace {

/// splitmix64 finalizer: the matrix and every derived draw come from this,
/// so the instance is a pure deterministic function of the seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform [0,1) from the top 53 bits — bit-stable across platforms.
double u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

constexpr std::uint64_t kSaltWeight = 0x5be0cd19u;
constexpr std::uint64_t kSaltCost = 0x9b05688cu;

}  // namespace

TspProblem::TspProblem(std::uint64_t seed, TspOptions opts)
    : seed_(seed), opts_(opts) {
  FTBB_CHECK_MSG(opts_.cities >= 4, "a tour needs at least 4 cities");
  FTBB_CHECK_MSG(opts_.cities <= 10,
                 "constructor enumerates (cities-1)! tours to pin the optimum");
  const std::uint32_t n = opts_.cities;
  const std::uint64_t base = mix(seed_ ^ 0x7473705f65646765ull);  // "tsp_edge"
  dist_.assign(std::size_t{n} * n, 0.0);
  incident_.assign(n, {});
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      const double w =
          1.0 + 9.0 * u01(mix(base ^ (std::uint64_t{a} * n + b) ^ kSaltWeight));
      dist_[std::size_t{a} * n + b] = w;
      dist_[std::size_t{b} * n + a] = w;
      incident_[a].push_back(static_cast<std::uint32_t>(edges_.size()));
      incident_[b].push_back(static_cast<std::uint32_t>(edges_.size()));
      edges_.push_back(Edge{a, b, w});
    }
  }

  // Pin the optimum by enumerating every fixed-origin tour — an independent
  // oracle that shares no code with the branch-and-bound machinery. Each
  // tour's length is summed in ascending edge-index order, the same order
  // the search accumulates included_w in, so the report's exact-equality
  // optimum check is not at the mercy of float addition order.
  const auto edge_index = [n](std::uint32_t a, std::uint32_t b) {
    if (a > b) std::swap(a, b);
    return std::size_t{a} * (2 * n - a - 1) / 2 + (b - a - 1);
  };
  std::vector<std::uint32_t> perm;
  for (std::uint32_t c = 1; c < n; ++c) perm.push_back(c);
  std::vector<char> in_tour(edges_.size());
  do {
    std::fill(in_tour.begin(), in_tour.end(), 0);
    std::uint32_t prev = 0;
    for (const std::uint32_t c : perm) {
      in_tour[edge_index(prev, c)] = 1;
      prev = c;
    }
    in_tour[edge_index(prev, 0)] = 1;
    double len = 0.0;
    for (std::size_t k = 0; k < edges_.size(); ++k) {
      if (in_tour[k] != 0) len += edges_[k].w;
    }
    if (len < optimal_) optimal_ = len;
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TspProblem::State TspProblem::state_of(const core::PathCode& code) const {
  State s;
  s.decision.assign(edges_.size(), -1);
  s.deg.assign(opts_.cities, 0);
  s.link.resize(opts_.cities);
  for (std::uint32_t c = 0; c < opts_.cities; ++c) s.link[c] = c;
  FTBB_CHECK_MSG(code.depth() <= edges_.size(),
                 "TSP code deeper than the edge list");
  for (std::size_t i = 0; i < code.depth(); ++i) {
    FTBB_CHECK_MSG(code.var(i) == edge_var(edges_[i]),
                   "TSP code branches on an unexpected edge");
    if (code.bit(i) != 0) {
      FTBB_CHECK_MSG(can_include(s, i), "TSP code includes an invalid edge");
      include(s, i);
    } else {
      s.decision[i] = 0;
    }
  }
  return s;
}

bool TspProblem::can_include(const State& s, std::size_t k) const {
  const Edge& e = edges_[k];
  if (s.deg[e.a] >= 2 || s.deg[e.b] >= 2) return false;
  // Closing a cycle is only the final (cities-th) edge's privilege; before
  // that the two endpoints joining the same included path is a subtour.
  if (s.link[e.a] == e.b && s.included + 1 < opts_.cities) return false;
  return true;
}

void TspProblem::include(State& s, std::size_t k) const {
  const Edge& e = edges_[k];
  s.decision[k] = 1;
  s.included_w += e.w;
  ++s.included;
  ++s.deg[e.a];
  ++s.deg[e.b];
  const std::uint32_t far_a = s.link[e.a];
  const std::uint32_t far_b = s.link[e.b];
  s.link[far_a] = far_b;
  s.link[far_b] = far_a;
}

double TspProblem::completion_bound(const State& s) const {
  // Each city still needs (2 - deg) incident edges; counting the cheapest
  // candidates half each (every tour edge serves two cities) stays below any
  // completion. A city that cannot reach degree 2 proves the region empty.
  double half_sum = 0.0;
  for (std::uint32_t c = 0; c < opts_.cities; ++c) {
    int need = 2 - static_cast<int>(s.deg[c]);
    if (need <= 0) continue;
    double best = kInfinity;
    double second = kInfinity;
    for (const std::uint32_t k : incident_[c]) {
      if (s.decision[k] != -1) continue;
      const double w = edges_[k].w;
      if (w < best) {
        second = best;
        best = w;
      } else if (w < second) {
        second = w;
      }
    }
    if (need >= 1) {
      if (best == kInfinity) return kInfinity;
      half_sum += best;
    }
    if (need == 2) {
      if (second == kInfinity) return kInfinity;
      half_sum += second;
    }
  }
  return s.included_w + 0.5 * half_sum;
}

std::uint64_t TspProblem::path_hash(const core::PathCode& code) const {
  std::uint64_t h = mix(seed_ ^ 0x7473705f70617468ull);  // "tsp_path"
  for (std::size_t i = 0; i < code.depth(); ++i) {
    h = mix(h ^ (static_cast<std::uint64_t>(code.word(i)) + 0x100ull));
  }
  return h;
}

double TspProblem::root_bound() const {
  State s;
  s.decision.assign(edges_.size(), -1);
  s.deg.assign(opts_.cities, 0);
  s.link.resize(opts_.cities);
  for (std::uint32_t c = 0; c < opts_.cities; ++c) s.link[c] = c;
  return completion_bound(s);
}

NodeEval TspProblem::eval(const core::PathCode& code) const {
  State s = state_of(code);
  NodeEval out;
  // Same deterministic jitter shape as the other synthetic models.
  out.cost = opts_.cost_mean * (0.75 + 0.5 * u01(mix(path_hash(code) ^ kSaltCost)));
  if (s.included == opts_.cities) {
    // Degree and subtour invariants make n included edges a Hamiltonian
    // cycle; the remaining edges are implicitly excluded.
    out.feasible_leaf = true;
    out.value = s.included_w;
    return out;
  }
  const std::size_t k = code.depth();
  if (k >= edges_.size()) return out;  // every edge decided, no tour: dead end
  const Edge& e = edges_[k];

  // bit 0: exclude edge k. Infeasible when an endpoint can no longer reach
  // degree 2 (the completion bound of the child detects exactly that).
  {
    ChildOut c;
    c.var = edge_var(e);
    c.bit = 0;
    s.decision[k] = 0;
    c.bound = completion_bound(s);
    s.decision[k] = -1;
    c.infeasible = c.bound == kInfinity;
    out.children.push_back(c);
  }
  // bit 1: include edge k.
  {
    ChildOut c;
    c.var = edge_var(e);
    c.bit = 1;
    if (!can_include(s, k)) {
      c.infeasible = true;
      c.bound = kInfinity;
    } else {
      State child = s;
      include(child, k);
      c.bound = completion_bound(child);
      c.infeasible = c.bound == kInfinity;
    }
    out.children.push_back(c);
  }
  return out;
}

double TspProblem::bound_of(const core::PathCode& code) const {
  return completion_bound(state_of(code));
}

std::string TspProblem::name() const {
  return "tsp(n=" + std::to_string(opts_.cities) +
         ",seed=" + std::to_string(seed_) + ")";
}

}  // namespace ftbb::bnb
