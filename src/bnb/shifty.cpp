#include "bnb/shifty.hpp"

#include "support/check.hpp"

namespace ftbb::bnb {

namespace {

/// splitmix64 finalizer: the per-node hash and every derived draw come from
/// this, so the tree is a pure deterministic function of (seed, code).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform [0,1) from the top 53 bits — bit-stable across platforms.
double u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

// Domain-separation salts for the independent draws off one node hash.
constexpr std::uint64_t kSaltBound = 0x42a5a3b1u;
constexpr std::uint64_t kSaltKill = 0x7b19d0c7u;
constexpr std::uint64_t kSaltCost = 0x1f83d9abu;
constexpr std::uint64_t kSaltLeaf = 0x5be0cd19u;

}  // namespace

ShiftyProblem::ShiftyProblem(std::uint64_t seed, ShiftyOptions opts)
    : seed_(seed), opts_(opts) {
  FTBB_CHECK(opts_.phase_period >= 1);
  FTBB_CHECK(opts_.skinny_kill_bias >= 0.0 && opts_.skinny_kill_bias <= 1.0);
  NodeInfo root;
  root.bound = 0.0;
  root.hash = mix(seed_ ^ 0x7368696674795f31ull);  // "shifty_1"
  enumerate(root, 0);
}

bool ShiftyProblem::in_skinny_band(std::size_t depth) const {
  return (depth / opts_.phase_period) % 2 == 1;
}

double ShiftyProblem::node_cost(std::size_t depth, std::uint64_t hash) const {
  const double base =
      in_skinny_band(depth) ? opts_.cost_mean * opts_.cost_shift : opts_.cost_mean;
  // Mild deterministic jitter so same-band costs aren't a single spike.
  return base * (0.75 + 0.5 * u01(mix(hash ^ kSaltCost)));
}

ShiftyProblem::NodeInfo ShiftyProblem::child_info(const NodeInfo& parent,
                                                  std::size_t parent_depth,
                                                  std::uint32_t var,
                                                  std::uint8_t bit) const {
  NodeInfo c;
  c.hash = mix(parent.hash ^
               (((static_cast<std::uint64_t>(var) << 1) | bit) + 0x100ull));
  c.bound = parent.bound + opts_.bound_step * u01(mix(c.hash ^ kSaltBound));
  c.dead = parent.dead;
  if (!c.dead && in_skinny_band(parent_depth)) {
    // The preferred branch (parent hash parity) always survives; the other
    // one dies with probability skinny_kill_bias. At least one child of
    // every node is therefore live, and the all-preferred path reaches the
    // leaf depth — the instance always has a feasible solution.
    const std::uint8_t preferred = static_cast<std::uint8_t>(parent.hash & 1);
    if (bit != preferred &&
        u01(mix(parent.hash ^ kSaltKill)) < opts_.skinny_kill_bias) {
      c.dead = true;
    }
  }
  return c;
}

ShiftyProblem::NodeInfo ShiftyProblem::info_of(const core::PathCode& code) const {
  NodeInfo n;
  n.bound = 0.0;
  n.hash = mix(seed_ ^ 0x7368696674795f31ull);
  for (std::size_t depth = 0; depth < code.depth(); ++depth) {
    n = child_info(n, depth, code.var(depth), code.bit(depth));
  }
  return n;
}

NodeEval ShiftyProblem::eval(const core::PathCode& code) const {
  const std::size_t depth = code.depth();
  const NodeInfo n = info_of(code);
  NodeEval out;
  if (n.dead) {
    // A killed branch somewhere on the path: the whole suffix is infeasible.
    // Recovery can resurrect such codes from a lost completion's complement;
    // answering "dead end" keeps eval consistent with the original verdict.
    out.cost = opts_.cost_mean * 0.25;
    return out;
  }
  out.cost = node_cost(depth, n.hash);
  if (depth >= opts_.depth_limit) {
    out.feasible_leaf = true;
    out.value = n.bound + opts_.leaf_slack * u01(mix(n.hash ^ kSaltLeaf));
    return out;
  }
  const auto var = static_cast<std::uint32_t>(depth);
  for (std::uint8_t bit = 0; bit < 2; ++bit) {
    const NodeInfo c = child_info(n, depth, var, bit);
    ChildOut child;
    child.var = var;
    child.bit = bit;
    child.bound = c.bound;
    child.infeasible = c.dead;
    out.children.push_back(child);
  }
  return out;
}

double ShiftyProblem::bound_of(const core::PathCode& code) const {
  const NodeInfo n = info_of(code);
  // A dead suffix contains no solution; kInfinity lets elimination complete
  // it on the spot during recovery.
  return n.dead ? kInfinity : n.bound;
}

std::string ShiftyProblem::name() const {
  return "shifty(d=" + std::to_string(opts_.depth_limit) +
         ",p=" + std::to_string(opts_.phase_period) +
         ",seed=" + std::to_string(seed_) + ")";
}

void ShiftyProblem::enumerate(const NodeInfo& node, std::size_t depth) {
  ++total_nodes_;
  total_cost_ += node_cost(depth, node.hash);
  if (depth >= opts_.depth_limit) {
    ++total_leaves_;
    const double value =
        node.bound + opts_.leaf_slack * u01(mix(node.hash ^ kSaltLeaf));
    if (value < optimal_) optimal_ = value;
    return;
  }
  const auto var = static_cast<std::uint32_t>(depth);
  for (std::uint8_t bit = 0; bit < 2; ++bit) {
    const NodeInfo c = child_info(node, depth, var, bit);
    if (c.dead) continue;
    enumerate(c, depth + 1);
  }
}

}  // namespace ftbb::bnb
