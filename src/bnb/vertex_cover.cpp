#include "bnb/vertex_cover.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace ftbb::bnb {

void Graph::finalize() {
  adj.assign(n, {});
  for (auto [a, b] : edges) {
    FTBB_CHECK(a < n && b < n && a != b);
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  for (auto& list : adj) std::sort(list.begin(), list.end());
}

Graph Graph::gnp(std::uint32_t n, double p, std::uint64_t seed) {
  support::Rng rng(seed);
  Graph g;
  g.n = n;
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      if (rng.chance(p)) g.edges.emplace_back(a, b);
    }
  }
  g.finalize();
  return g;
}

Graph Graph::cycle(std::uint32_t n) {
  FTBB_CHECK(n >= 3);
  Graph g;
  g.n = n;
  for (std::uint32_t i = 0; i < n; ++i) g.edges.emplace_back(i, (i + 1) % n);
  g.finalize();
  return g;
}

Graph Graph::complete(std::uint32_t n) {
  Graph g;
  g.n = n;
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) g.edges.emplace_back(a, b);
  }
  g.finalize();
  return g;
}

namespace {

/// Exact minimum vertex cover by exponential recursion with pruning; only
/// used to pre-verify small instances.
std::uint32_t brute_force_vc(const Graph& g, std::vector<std::int8_t>& status,
                             std::uint32_t in_count, std::uint32_t best) {
  if (in_count >= best) return best;
  // Find any uncovered edge.
  for (auto [a, b] : g.edges) {
    if (status[a] == 1 || status[b] == 1) continue;
    // Edge (a, b) uncovered: one endpoint must join the cover.
    for (const std::uint32_t v : {a, b}) {
      const std::int8_t saved = status[v];
      status[v] = 1;
      best = brute_force_vc(g, status, in_count + 1, best);
      status[v] = saved;
    }
    return best;
  }
  return std::min(best, in_count);
}

}  // namespace

VertexCoverModel::VertexCoverModel(Graph g, NodeCostModel cost)
    : graph_(std::move(g)), cost_(cost) {
  if (graph_.n <= 26) {
    std::vector<std::int8_t> status(graph_.n, kUnset);
    known_optimal_ = static_cast<double>(
        brute_force_vc(graph_, status, 0, graph_.n));
  }
}

void VertexCoverModel::apply(State& s, const Graph& g, std::uint32_t v,
                             std::uint8_t bit) {
  FTBB_CHECK_MSG(s.status[v] == kUnset, "vertex-cover code: vertex decided twice");
  if (bit == 1) {
    s.status[v] = kIn;
    ++s.in_count;
    return;
  }
  s.status[v] = kOut;
  // Excluding v forces every neighbor into the cover (each (v, u) edge must
  // be covered by u). Neighbors cannot already be Out: an Out neighbor
  // would have forced v In when it was decided.
  for (const std::uint32_t u : g.adj[v]) {
    if (s.status[u] == kUnset) {
      s.status[u] = kIn;
      ++s.in_count;
    } else {
      FTBB_CHECK_MSG(s.status[u] == kIn, "vertex-cover code: conflicting exclusion");
    }
  }
}

VertexCoverModel::State VertexCoverModel::replay(const core::PathCode& code) const {
  State s;
  s.status.assign(graph_.n, kUnset);
  for (std::size_t i = 0; i < code.depth(); ++i) {
    const core::Branch step = code.step(i);
    FTBB_CHECK_MSG(step.var < graph_.n, "vertex-cover code: bad variable");
    apply(s, graph_, step.var, step.bit);
  }
  return s;
}

std::optional<std::uint32_t> VertexCoverModel::next_var(const State& s) const {
  std::optional<std::uint32_t> best;
  std::size_t best_degree = 0;
  for (std::uint32_t v = 0; v < graph_.n; ++v) {
    if (s.status[v] != kUnset) continue;
    std::size_t degree = 0;
    for (const std::uint32_t u : graph_.adj[v]) {
      if (s.status[u] == kUnset) ++degree;
    }
    if (degree > best_degree) {
      best_degree = degree;
      best = v;
    }
  }
  return best;  // nullopt iff no Unset-Unset edge remains
}

double VertexCoverModel::bound_of(const State& s) const {
  // Greedy maximal matching among edges with both endpoints undecided.
  std::vector<std::int8_t> matched(graph_.n, 0);
  std::uint32_t matching = 0;
  for (auto [a, b] : graph_.edges) {
    if (s.status[a] != kUnset || s.status[b] != kUnset) continue;
    if (matched[a] || matched[b]) continue;
    matched[a] = 1;
    matched[b] = 1;
    ++matching;
  }
  return static_cast<double>(s.in_count + matching);
}

double VertexCoverModel::root_bound() const {
  return bound_of(replay(core::PathCode::root()));
}

double VertexCoverModel::bound_of(const core::PathCode& code) const {
  return bound_of(replay(code));
}

NodeEval VertexCoverModel::eval(const core::PathCode& code) const {
  const State s = replay(code);
  NodeEval out;
  out.cost = cost_.cost_for(code);
  const std::optional<std::uint32_t> var = next_var(s);
  if (!var.has_value()) {
    // Every edge is covered; undecided vertices stay out of the cover.
    out.feasible_leaf = true;
    out.value = static_cast<double>(s.in_count);
    return out;
  }
  for (const std::uint8_t bit : {std::uint8_t{1}, std::uint8_t{0}}) {
    State child = s;
    apply(child, graph_, *var, bit);
    out.children.push_back(ChildOut{*var, bit, bound_of(child), false});
  }
  return out;
}

std::optional<double> VertexCoverModel::known_optimal() const { return known_optimal_; }

}  // namespace ftbb::bnb
