#include "bnb/pool.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ftbb::bnb {

using core::PathCode;

const char* to_string(SelectRule rule) {
  switch (rule) {
    case SelectRule::kBestFirst:
      return "best-first";
    case SelectRule::kDepthFirst:
      return "depth-first";
    case SelectRule::kBreadthFirst:
      return "breadth-first";
  }
  return "?";
}

ActivePool::ActivePool(SelectRule rule) : rule_(rule) {}

bool ActivePool::ranks_before(const Subproblem& a, const Subproblem& b) const {
  switch (rule_) {
    case SelectRule::kBestFirst:
      if (a.bound != b.bound) return a.bound < b.bound;
      // Among equal bounds prefer the deeper problem: it is closer to a
      // feasible solution, which tightens the incumbent sooner.
      if (a.code.depth() != b.code.depth()) return a.code.depth() > b.code.depth();
      break;
    case SelectRule::kDepthFirst:
      if (a.code.depth() != b.code.depth()) return a.code.depth() > b.code.depth();
      if (a.bound != b.bound) return a.bound < b.bound;
      break;
    case SelectRule::kBreadthFirst:
      if (a.code.depth() != b.code.depth()) return a.code.depth() < b.code.depth();
      if (a.bound != b.bound) return a.bound < b.bound;
      break;
  }
  return a.code < b.code;
}

// ---------------------------------------------------------------------------
// Index comparators. Every key ends on `seq` so the orders stay strict even
// for duplicate subproblems (the same code can be granted back redundantly).
// ---------------------------------------------------------------------------

bool ActivePool::BoundLess::operator()(const Entry* a, const Entry* b) const {
  if (a->item.bound != b->item.bound) return a->item.bound < b->item.bound;
  if (a->item.code != b->item.code) return a->item.code < b->item.code;
  return a->seq < b->seq;
}
bool ActivePool::BoundLess::operator()(const Entry* a, double bound) const {
  return a->item.bound < bound;
}
bool ActivePool::BoundLess::operator()(double bound, const Entry* b) const {
  return bound < b->item.bound;
}

bool ActivePool::ShareLess::operator()(const Entry* a, const Entry* b) const {
  if (a->item.code.depth() != b->item.code.depth()) {
    return a->item.code.depth() < b->item.code.depth();
  }
  if (a->item.bound != b->item.bound) return a->item.bound < b->item.bound;
  if (a->item.code != b->item.code) return a->item.code < b->item.code;
  return a->seq < b->seq;
}

bool ActivePool::CodeLess::operator()(const Entry* a, const Entry* b) const {
  if (a->item.code != b->item.code) return a->item.code < b->item.code;
  return a->seq < b->seq;
}
bool ActivePool::CodeLess::operator()(const Entry* a, const PathCode& c) const {
  return a->item.code < c;
}
bool ActivePool::CodeLess::operator()(const PathCode& c, const Entry* b) const {
  return c < b->item.code;
}
bool ActivePool::CodeLess::operator()(const Entry* a, const core::PathView& c) const {
  return a->item.code.view() < c;
}
bool ActivePool::CodeLess::operator()(const core::PathView& c, const Entry* b) const {
  return c < b->item.code.view();
}

// ---------------------------------------------------------------------------
// Entry lifecycle
// ---------------------------------------------------------------------------

ActivePool::Entry* ActivePool::acquire(Subproblem item) {
  Entry* e = nullptr;
  if (!free_.empty()) {
    e = free_.back();
    free_.pop_back();
    // Hide the cold-entry miss of the NEXT acquire behind this push's work —
    // bulk refills are memory-bound on exactly this line.
    if (!free_.empty()) __builtin_prefetch(free_.back());
  } else {
    arena_.push_back(std::make_unique<Entry>());
    e = arena_.back().get();
    e->arena_pos = static_cast<std::uint32_t>(arena_.size() - 1);
  }
  if (e->item.code.is_root()) {
    // Fresh entry, or recycled after its payload was moved out (pop): the
    // destination holds no buffer, so stealing the donor's is free.
    e->item = std::move(item);
  } else {
    // Recycled with a stale payload (clear()): copy-assign reuses the held
    // buffer's capacity and lets the donor free its just-allocated one — a
    // hot, allocator-top free instead of a cold free into a random bin,
    // which keeps a refill loop's allocation stream on the fast path.
    e->item = item;
  }
  e->seq = ++next_seq_;
  return e;
}

void ActivePool::destroy_entry(Entry* e) {
  // Swap-remove from the arena, which owns it.
  const std::uint32_t pos = e->arena_pos;
  if (pos + 1 != arena_.size()) {
    arena_[pos] = std::move(arena_.back());
    arena_[pos]->arena_pos = pos;
  }
  arena_.pop_back();
}

void ActivePool::release(Entry* e) {
  // Cap the recycle list so a drained peak-sized pool does not pin its
  // high-water allocation count forever; past the cap the entry is
  // destroyed.
  if (free_.size() < std::max<std::size_t>(1024, heap_.size())) {
    free_.push_back(e);
  } else {
    destroy_entry(e);
  }
}

void ActivePool::index_insert(Entry* e) {
  bound_index_.insert(e);
  share_index_.insert(e);
  code_index_.insert(e);
}

void ActivePool::index_erase(Entry* e) {
  bound_index_.erase(e);
  share_index_.erase(e);
  code_index_.erase(e);
}

void ActivePool::build_indexes() {
  // Register everything in the nursery rather than the trees: crossing the
  // size threshold mid-bulk-load must not charge the load for tree inserts
  // it may never benefit from. The first query-heavy phase drains it.
  indexed_ = true;
  ++maint_.index_builds;
  nursery_.reserve(heap_.size());
  for (const HeapSlot& s : heap_) nursery_add(s.e);
}

void ActivePool::drop_indexes() {
  if (indexed_) ++maint_.index_drops;
  bound_index_.clear();
  share_index_.clear();
  code_index_.clear();
  nursery_.clear();
  bulky_scans_ = 0;
  indexed_ = false;
}

void ActivePool::adapt_indexing() {
  if (!indexed_ && heap_.size() >= kIndexBuildThreshold) {
    build_indexes();
  } else if (indexed_ && heap_.size() <= kIndexDropThreshold) {
    drop_indexes();
  }
}

std::size_t ActivePool::nursery_cap() const {
  return std::max<std::size_t>(kIndexDropThreshold, heap_.size() / 64);
}

void ActivePool::nursery_add(Entry* e) {
  // Never flushes: pushes stay O(1) on the index side no matter how many
  // arrive, and only a query (maybe_flush_nursery) pays the promotion.
  e->in_index = false;
  e->nursery_pos = static_cast<std::uint32_t>(nursery_.size());
  nursery_.push_back(e);
}

void ActivePool::nursery_remove(Entry* e) {
  Entry* moved = nursery_.back();
  nursery_[e->nursery_pos] = moved;
  moved->nursery_pos = e->nursery_pos;
  nursery_.pop_back();
}

void ActivePool::flush_nursery() {
  if (!nursery_.empty()) {
    ++maint_.nursery_drains;
    maint_.nursery_promoted += nursery_.size();
  }
  for (Entry* e : nursery_) {
    e->in_index = true;
    index_insert(e);
  }
  nursery_.clear();
  bulky_scans_ = 0;
}

void ActivePool::maybe_flush_nursery() {
  if (nursery_.size() <= nursery_cap()) return;
  if (++bulky_scans_ >= kNurseryFlushScans) flush_nursery();
}

void ActivePool::untrack(Entry* e) {
  if (e->in_index) {
    index_erase(e);
  } else {
    nursery_remove(e);
  }
}

// ---------------------------------------------------------------------------
// Core heap operations
// ---------------------------------------------------------------------------

void ActivePool::push(Subproblem p) {
  ++maint_.pushes;
  Entry* raw = acquire(std::move(p));
  heap_.push_back(HeapSlot{raw->item.bound,
                           static_cast<std::uint32_t>(raw->item.code.depth()),
                           raw});
  sift_up(heap_.size() - 1);
  if (indexed_) {
    nursery_add(raw);
  } else {
    adapt_indexing();
  }
}

Subproblem ActivePool::pop() {
  FTBB_CHECK_MSG(!heap_.empty(), "pop from empty pool");
  ++maint_.pops;
  Entry* top = heap_.front().e;
  if (indexed_) untrack(top);
  if (heap_.size() > 1) {
    heap_.front() = heap_.back();
  }
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  if (indexed_) adapt_indexing();
  Subproblem out = std::move(top->item);
  release(top);
  return out;
}

double ActivePool::best_bound() const {
  if (heap_.empty()) return kInfinity;
  double best = kInfinity;
  if (indexed_) {
    // Drain bookkeeping is observationally pure (it moves entries between
    // side structures, never changes the answer), so a const query may do it.
    const_cast<ActivePool*>(this)->maybe_flush_nursery();
    if (!bound_index_.empty()) best = (*bound_index_.begin())->item.bound;
    for (const Entry* e : nursery_) best = std::min(best, e->item.bound);
    return best;
  }
  for (const HeapSlot& s : heap_) best = std::min(best, s.bound);
  return best;
}

// ---------------------------------------------------------------------------
// Removal flavors
// ---------------------------------------------------------------------------

std::vector<Subproblem> ActivePool::prune_above(double threshold) {
  std::vector<Entry*> victims;
  if (indexed_) {
    maybe_flush_nursery();
    for (auto it = bound_index_.lower_bound(threshold);
         it != bound_index_.end(); ++it) {
      victims.push_back(*it);
    }
    maint_.sweep_entries_scanned += victims.size() + nursery_.size();
    for (Entry* e : nursery_) {
      if (e->item.bound >= threshold) victims.push_back(e);
    }
  } else {
    maint_.sweep_entries_scanned += heap_.size();
    for (const HeapSlot& s : heap_) {
      if (s.bound >= threshold) victims.push_back(s.e);
    }
  }
  return remove_batch(victims);
}

std::vector<Subproblem> ActivePool::remove_covered_by(
    std::span<const PathCode> regions) {
  return remove_covered_impl(regions);
}

std::vector<Subproblem> ActivePool::remove_covered_by(
    std::span<const core::PathView> regions) {
  return remove_covered_impl(regions);
}

template <typename Region>
std::vector<Subproblem> ActivePool::remove_covered_impl(
    std::span<const Region> regions) {
  std::vector<Entry*> victims;
  if (indexed_) {
    maybe_flush_nursery();
    for (const Region& region : regions) {
      for (auto it = code_index_.lower_bound(region);
           it != code_index_.end() && region.contains((*it)->item.code); ++it) {
        victims.push_back(*it);
      }
    }
    maint_.sweep_entries_scanned += victims.size() + nursery_.size();
    for (Entry* e : nursery_) {
      for (const Region& region : regions) {
        if (region.contains(e->item.code)) {
          victims.push_back(e);
          break;
        }
      }
    }
    if (victims.empty()) return {};
    // Covering codes from one table form an antichain, but arbitrary callers
    // may pass nested regions; drop double-visited entries.
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  } else {
    maint_.sweep_entries_scanned += heap_.size();
    for (const HeapSlot& s : heap_) {
      for (const Region& region : regions) {
        if (region.contains(s.e->item.code)) {
          victims.push_back(s.e);
          break;
        }
      }
    }
  }
  return remove_batch(victims);
}

std::vector<Subproblem> ActivePool::remove_if(
    const std::function<bool(const Subproblem&)>& victim) {
  std::vector<Entry*> victims;
  maint_.sweep_entries_scanned += heap_.size();
  for (const HeapSlot& s : heap_) {
    if (victim(s.e->item)) victims.push_back(s.e);
  }
  return remove_batch(victims);
}

std::vector<Subproblem> ActivePool::extract_for_sharing(std::size_t k) {
  k = std::min(k, heap_.size());
  if (k == 0) return {};
  std::vector<Entry*> victims;
  ShareLess less;
  if (indexed_) {
    maybe_flush_nursery();
    // The k winners are among the nursery and the tree's first k; select
    // from that union.
    victims.reserve(k + nursery_.size());
    auto it = share_index_.begin();
    for (std::size_t i = 0; i < k && it != share_index_.end(); ++i, ++it) {
      victims.push_back(*it);
    }
    victims.insert(victims.end(), nursery_.begin(), nursery_.end());
  } else {
    victims.reserve(heap_.size());
    for (const HeapSlot& s : heap_) victims.push_back(s.e);
  }
  if (victims.size() > k) {
    std::nth_element(victims.begin(), victims.begin() + (k - 1), victims.end(),
                     less);
    victims.resize(k);
  }
  maint_.share_extracted += victims.size();
  return remove_batch(victims);
}

std::vector<Subproblem> ActivePool::remove_batch(std::vector<Entry*>& victims) {
  if (victims.empty()) return {};
  // Slot back-pointers are maintained lazily: sift swaps never store them
  // (that would touch a scattered cache line per swap in the push hot path),
  // and this — the only consumer — refreshes them in one contiguous pass.
  // The compaction below is O(heap) anyway, so the complexity is unchanged,
  // and a no-victim call has already returned above.
  for (std::size_t i = 0; i < heap_.size(); ++i) heap_[i].e->slot = i;
  // Heap-array order is the order the historical flat heap reported (and the
  // worker's completion pipeline observably depends on it).
  std::sort(victims.begin(), victims.end(),
            [](const Entry* a, const Entry* b) { return a->slot < b->slot; });
  std::vector<Subproblem> out;
  out.reserve(victims.size());
  for (Entry* v : victims) {
    if (indexed_) untrack(v);
    heap_[v->slot].e = nullptr;  // leaves a hole
    out.push_back(std::move(v->item));
    release(v);
  }
  // In-place compaction: survivors shift left over the holes in array order,
  // then re-heapify — exactly the historical layout transition.
  std::size_t write = 0;
  for (std::size_t read = 0; read < heap_.size(); ++read) {
    if (heap_[read].e == nullptr) continue;
    if (write != read) heap_[write] = heap_[read];
    ++write;
  }
  heap_.resize(write);
  rebuild();
  if (indexed_) adapt_indexing();
  return out;
}

std::vector<Subproblem> ActivePool::snapshot() const {
  std::vector<const Entry*> order;
  order.reserve(heap_.size());
  for (const HeapSlot& s : heap_) order.push_back(s.e);
  std::sort(order.begin(), order.end(), [](const Entry* a, const Entry* b) {
    if (a->item.code != b->item.code) return a->item.code < b->item.code;
    return a->seq < b->seq;
  });
  std::vector<Subproblem> out;
  out.reserve(order.size());
  for (const Entry* e : order) out.push_back(e->item);
  return out;
}

void ActivePool::clear() {
  // Recycle the entry allocations; the stale payloads they keep holding are
  // reused as buffer capacity by acquire() (see there). The cap is taken
  // before the heap empties — releasing against the shrinking size would
  // destroy almost everything.
  const std::size_t cap = std::max<std::size_t>(1024, heap_.size());
  // Recycle back-to-front: the LIFO free list then hands entries back in
  // forward heap-array (≈ allocation) order, a stream the hardware
  // prefetcher can follow during the next bulk load.
  for (std::size_t i = heap_.size(); i-- > 0;) {
    Entry* e = heap_[i].e;
    if (free_.size() < cap) {
      free_.push_back(e);
    } else {
      destroy_entry(e);
    }
  }
  heap_.clear();
  drop_indexes();
}

// ---------------------------------------------------------------------------
// Sift machinery — pointer swaps, but the exact comparison sequence of the
// historical Subproblem heap, so the array layout stays bit-identical.
// ---------------------------------------------------------------------------

bool ActivePool::slot_ranks_before(const HeapSlot& a, const HeapSlot& b) const {
  switch (rule_) {
    case SelectRule::kBestFirst:
      if (a.bound != b.bound) return a.bound < b.bound;
      if (a.depth != b.depth) return a.depth > b.depth;
      break;
    case SelectRule::kDepthFirst:
      if (a.depth != b.depth) return a.depth > b.depth;
      if (a.bound != b.bound) return a.bound < b.bound;
      break;
    case SelectRule::kBreadthFirst:
      if (a.depth != b.depth) return a.depth < b.depth;
      if (a.bound != b.bound) return a.bound < b.bound;
      break;
  }
  return a.e->item.code < b.e->item.code;
}

void ActivePool::swap_slots(std::size_t i, std::size_t j) {
  // Deliberately does NOT update the entries' slot back-pointers — see
  // remove_batch, which refreshes them lazily before their only use.
  std::swap(heap_[i], heap_[j]);
}

void ActivePool::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!slot_ranks_before(heap_[i], heap_[parent])) break;
    swap_slots(i, parent);
    i = parent;
  }
}

void ActivePool::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && slot_ranks_before(heap_[l], heap_[best])) best = l;
    if (r < n && slot_ranks_before(heap_[r], heap_[best])) best = r;
    if (best == i) return;
    swap_slots(i, best);
    i = best;
  }
}

void ActivePool::rebuild() {
  if (heap_.size() < 2) return;
  for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

void ActivePool::check_invariants() const {
  const std::size_t expect_index = indexed_ ? heap_.size() - nursery_.size() : 0;
  FTBB_CHECK(bound_index_.size() == expect_index);
  FTBB_CHECK(share_index_.size() == expect_index);
  FTBB_CHECK(code_index_.size() == expect_index);
  if (!indexed_) FTBB_CHECK(nursery_.empty());
  for (std::size_t i = 0; i < nursery_.size(); ++i) {
    FTBB_CHECK(!nursery_[i]->in_index);
    FTBB_CHECK(nursery_[i]->nursery_pos == i);
  }
  double min_bound = kInfinity;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const Entry* e = heap_[i].e;
    FTBB_CHECK(e != nullptr);
    FTBB_CHECK(arena_[e->arena_pos].get() == e);
    // The cached slot key must mirror the item (sift correctness hinges on
    // it), and the cached-key comparator must agree with the item one.
    FTBB_CHECK(heap_[i].bound == e->item.bound);
    FTBB_CHECK(heap_[i].depth == e->item.code.depth());
    if (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      FTBB_CHECK_MSG(!slot_ranks_before(heap_[i], heap_[parent]),
                     "heap property violated");
      FTBB_CHECK(slot_ranks_before(heap_[i], heap_[parent]) ==
                 ranks_before(e->item, heap_[parent].e->item));
    }
    if (indexed_ && e->in_index) {
      FTBB_CHECK(bound_index_.count(const_cast<Entry*>(e)) == 1);
      FTBB_CHECK(share_index_.count(const_cast<Entry*>(e)) == 1);
      FTBB_CHECK(code_index_.count(const_cast<Entry*>(e)) == 1);
    }
    min_bound = std::min(min_bound, e->item.bound);
  }
  FTBB_CHECK(best_bound() == min_bound);
}

}  // namespace ftbb::bnb
