#include "bnb/pool.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ftbb::bnb {

using core::PathCode;

const char* to_string(SelectRule rule) {
  switch (rule) {
    case SelectRule::kBestFirst:
      return "best-first";
    case SelectRule::kDepthFirst:
      return "depth-first";
    case SelectRule::kBreadthFirst:
      return "breadth-first";
  }
  return "?";
}

ActivePool::ActivePool(SelectRule rule) : rule_(rule) {}

bool ActivePool::ranks_before(const Subproblem& a, const Subproblem& b) const {
  switch (rule_) {
    case SelectRule::kBestFirst:
      if (a.bound != b.bound) return a.bound < b.bound;
      // Among equal bounds prefer the deeper problem: it is closer to a
      // feasible solution, which tightens the incumbent sooner.
      if (a.code.depth() != b.code.depth()) return a.code.depth() > b.code.depth();
      break;
    case SelectRule::kDepthFirst:
      if (a.code.depth() != b.code.depth()) return a.code.depth() > b.code.depth();
      if (a.bound != b.bound) return a.bound < b.bound;
      break;
    case SelectRule::kBreadthFirst:
      if (a.code.depth() != b.code.depth()) return a.code.depth() < b.code.depth();
      if (a.bound != b.bound) return a.bound < b.bound;
      break;
  }
  return a.code < b.code;
}

// ---------------------------------------------------------------------------
// Index comparators. Every key ends on `seq` so the orders stay strict even
// for duplicate subproblems (the same code can be granted back redundantly).
// ---------------------------------------------------------------------------

bool ActivePool::BoundLess::operator()(const Entry* a, const Entry* b) const {
  if (a->item.bound != b->item.bound) return a->item.bound < b->item.bound;
  if (a->item.code != b->item.code) return a->item.code < b->item.code;
  return a->seq < b->seq;
}
bool ActivePool::BoundLess::operator()(const Entry* a, double bound) const {
  return a->item.bound < bound;
}
bool ActivePool::BoundLess::operator()(double bound, const Entry* b) const {
  return bound < b->item.bound;
}

bool ActivePool::ShareLess::operator()(const Entry* a, const Entry* b) const {
  if (a->item.code.depth() != b->item.code.depth()) {
    return a->item.code.depth() < b->item.code.depth();
  }
  if (a->item.bound != b->item.bound) return a->item.bound < b->item.bound;
  if (a->item.code != b->item.code) return a->item.code < b->item.code;
  return a->seq < b->seq;
}

bool ActivePool::CodeLess::operator()(const Entry* a, const Entry* b) const {
  if (a->item.code != b->item.code) return a->item.code < b->item.code;
  return a->seq < b->seq;
}
bool ActivePool::CodeLess::operator()(const Entry* a, const PathCode& c) const {
  return a->item.code < c;
}
bool ActivePool::CodeLess::operator()(const PathCode& c, const Entry* b) const {
  return c < b->item.code;
}

// ---------------------------------------------------------------------------
// Entry lifecycle
// ---------------------------------------------------------------------------

std::unique_ptr<ActivePool::Entry> ActivePool::acquire(Subproblem item) {
  std::unique_ptr<Entry> e;
  if (!free_.empty()) {
    e = std::move(free_.back());
    free_.pop_back();
    e->item = std::move(item);
  } else {
    e = std::make_unique<Entry>();
    e->item = std::move(item);
  }
  e->seq = ++next_seq_;
  return e;
}

void ActivePool::release(std::unique_ptr<Entry> e) {
  // Entries arrive here with their item moved out (pop / remove_batch), so
  // recycling retains no payload. Cap the list so a drained peak-sized pool
  // does not pin its high-water allocation count forever.
  if (free_.size() < std::max<std::size_t>(1024, heap_.size())) {
    free_.push_back(std::move(e));
  }
}

void ActivePool::index_insert(Entry* e) {
  bound_index_.insert(e);
  share_index_.insert(e);
  code_index_.insert(e);
}

void ActivePool::index_erase(Entry* e) {
  bound_index_.erase(e);
  share_index_.erase(e);
  code_index_.erase(e);
}

void ActivePool::build_indexes() {
  for (const std::unique_ptr<Entry>& e : heap_) {
    e->in_index = true;
    index_insert(e.get());
  }
  indexed_ = true;
}

void ActivePool::drop_indexes() {
  bound_index_.clear();
  share_index_.clear();
  code_index_.clear();
  nursery_.clear();
  indexed_ = false;
}

void ActivePool::adapt_indexing() {
  if (!indexed_ && heap_.size() >= kIndexBuildThreshold) {
    build_indexes();
  } else if (indexed_ && heap_.size() <= kIndexDropThreshold) {
    drop_indexes();
  }
}

std::size_t ActivePool::nursery_cap() const {
  return std::max<std::size_t>(kIndexDropThreshold, heap_.size() / 64);
}

void ActivePool::nursery_add(Entry* e) {
  e->in_index = false;
  e->nursery_pos = static_cast<std::uint32_t>(nursery_.size());
  nursery_.push_back(e);
  if (nursery_.size() > nursery_cap()) flush_nursery();
}

void ActivePool::nursery_remove(Entry* e) {
  Entry* moved = nursery_.back();
  nursery_[e->nursery_pos] = moved;
  moved->nursery_pos = e->nursery_pos;
  nursery_.pop_back();
}

void ActivePool::flush_nursery() {
  for (Entry* e : nursery_) {
    e->in_index = true;
    index_insert(e);
  }
  nursery_.clear();
}

void ActivePool::untrack(Entry* e) {
  if (e->in_index) {
    index_erase(e);
  } else {
    nursery_remove(e);
  }
}

// ---------------------------------------------------------------------------
// Core heap operations
// ---------------------------------------------------------------------------

void ActivePool::push(Subproblem p) {
  std::unique_ptr<Entry> e = acquire(std::move(p));
  Entry* raw = e.get();
  raw->slot = heap_.size();
  heap_.push_back(std::move(e));
  sift_up(raw->slot);
  if (indexed_) {
    nursery_add(raw);
  } else {
    adapt_indexing();
  }
}

Subproblem ActivePool::pop() {
  FTBB_CHECK_MSG(!heap_.empty(), "pop from empty pool");
  std::unique_ptr<Entry> top = std::move(heap_.front());
  if (indexed_) untrack(top.get());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.front()->slot = 0;
  }
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  if (indexed_) adapt_indexing();
  Subproblem out = std::move(top->item);
  release(std::move(top));
  return out;
}

double ActivePool::best_bound() const {
  if (heap_.empty()) return kInfinity;
  double best = kInfinity;
  if (indexed_) {
    if (!bound_index_.empty()) best = (*bound_index_.begin())->item.bound;
    for (const Entry* e : nursery_) best = std::min(best, e->item.bound);
    return best;
  }
  for (const std::unique_ptr<Entry>& e : heap_) {
    best = std::min(best, e->item.bound);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Removal flavors
// ---------------------------------------------------------------------------

std::vector<Subproblem> ActivePool::prune_above(double threshold) {
  std::vector<Entry*> victims;
  if (indexed_) {
    for (auto it = bound_index_.lower_bound(threshold);
         it != bound_index_.end(); ++it) {
      victims.push_back(*it);
    }
    for (Entry* e : nursery_) {
      if (e->item.bound >= threshold) victims.push_back(e);
    }
  } else {
    for (const std::unique_ptr<Entry>& e : heap_) {
      if (e->item.bound >= threshold) victims.push_back(e.get());
    }
  }
  return remove_batch(victims);
}

std::vector<Subproblem> ActivePool::remove_covered_by(
    std::span<const PathCode> regions) {
  std::vector<Entry*> victims;
  if (indexed_) {
    for (const PathCode& region : regions) {
      for (auto it = code_index_.lower_bound(region);
           it != code_index_.end() && region.contains((*it)->item.code); ++it) {
        victims.push_back(*it);
      }
    }
    for (Entry* e : nursery_) {
      for (const PathCode& region : regions) {
        if (region.contains(e->item.code)) {
          victims.push_back(e);
          break;
        }
      }
    }
    if (victims.empty()) return {};
    // Covering codes from one table form an antichain, but arbitrary callers
    // may pass nested regions; drop double-visited entries.
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  } else {
    for (const std::unique_ptr<Entry>& e : heap_) {
      for (const PathCode& region : regions) {
        if (region.contains(e->item.code)) {
          victims.push_back(e.get());
          break;
        }
      }
    }
  }
  return remove_batch(victims);
}

std::vector<Subproblem> ActivePool::remove_if(
    const std::function<bool(const Subproblem&)>& victim) {
  std::vector<Entry*> victims;
  for (const std::unique_ptr<Entry>& e : heap_) {
    if (victim(e->item)) victims.push_back(e.get());
  }
  return remove_batch(victims);
}

std::vector<Subproblem> ActivePool::extract_for_sharing(std::size_t k) {
  k = std::min(k, heap_.size());
  if (k == 0) return {};
  std::vector<Entry*> victims;
  ShareLess less;
  if (indexed_) {
    // The k winners are among the nursery and the tree's first k; select
    // from that union.
    victims.reserve(k + nursery_.size());
    auto it = share_index_.begin();
    for (std::size_t i = 0; i < k && it != share_index_.end(); ++i, ++it) {
      victims.push_back(*it);
    }
    victims.insert(victims.end(), nursery_.begin(), nursery_.end());
  } else {
    victims.reserve(heap_.size());
    for (const std::unique_ptr<Entry>& e : heap_) victims.push_back(e.get());
  }
  if (victims.size() > k) {
    std::nth_element(victims.begin(), victims.begin() + (k - 1), victims.end(),
                     less);
    victims.resize(k);
  }
  return remove_batch(victims);
}

std::vector<Subproblem> ActivePool::remove_batch(std::vector<Entry*>& victims) {
  if (victims.empty()) return {};
  // Heap-array order is the order the historical flat heap reported (and the
  // worker's completion pipeline observably depends on it).
  std::sort(victims.begin(), victims.end(),
            [](const Entry* a, const Entry* b) { return a->slot < b->slot; });
  std::vector<Subproblem> out;
  out.reserve(victims.size());
  for (Entry* v : victims) {
    if (indexed_) untrack(v);
    std::unique_ptr<Entry> owned = std::move(heap_[v->slot]);  // leaves a hole
    out.push_back(std::move(owned->item));
    release(std::move(owned));
  }
  // In-place compaction: survivors shift left over the holes in array order,
  // then re-heapify — exactly the historical layout transition.
  std::size_t write = 0;
  for (std::size_t read = 0; read < heap_.size(); ++read) {
    if (heap_[read] == nullptr) continue;
    if (write != read) heap_[write] = std::move(heap_[read]);
    heap_[write]->slot = write;
    ++write;
  }
  heap_.resize(write);
  rebuild();
  if (indexed_) adapt_indexing();
  return out;
}

std::vector<Subproblem> ActivePool::snapshot() const {
  std::vector<const Entry*> order;
  order.reserve(heap_.size());
  for (const std::unique_ptr<Entry>& e : heap_) order.push_back(e.get());
  std::sort(order.begin(), order.end(), [](const Entry* a, const Entry* b) {
    if (a->item.code != b->item.code) return a->item.code < b->item.code;
    return a->seq < b->seq;
  });
  std::vector<Subproblem> out;
  out.reserve(order.size());
  for (const Entry* e : order) out.push_back(e->item);
  return out;
}

void ActivePool::clear() {
  // Cleared entries still own their payloads; destroy rather than recycle.
  heap_.clear();
  drop_indexes();
}

// ---------------------------------------------------------------------------
// Sift machinery — pointer swaps, but the exact comparison sequence of the
// historical Subproblem heap, so the array layout stays bit-identical.
// ---------------------------------------------------------------------------

void ActivePool::swap_slots(std::size_t i, std::size_t j) {
  std::swap(heap_[i], heap_[j]);
  heap_[i]->slot = i;
  heap_[j]->slot = j;
}

void ActivePool::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!ranks_before(heap_[i]->item, heap_[parent]->item)) break;
    swap_slots(i, parent);
    i = parent;
  }
}

void ActivePool::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && ranks_before(heap_[l]->item, heap_[best]->item)) best = l;
    if (r < n && ranks_before(heap_[r]->item, heap_[best]->item)) best = r;
    if (best == i) return;
    swap_slots(i, best);
    i = best;
  }
}

void ActivePool::rebuild() {
  if (heap_.size() < 2) return;
  for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

void ActivePool::check_invariants() const {
  const std::size_t expect_index = indexed_ ? heap_.size() - nursery_.size() : 0;
  FTBB_CHECK(bound_index_.size() == expect_index);
  FTBB_CHECK(share_index_.size() == expect_index);
  FTBB_CHECK(code_index_.size() == expect_index);
  if (!indexed_) FTBB_CHECK(nursery_.empty());
  for (std::size_t i = 0; i < nursery_.size(); ++i) {
    FTBB_CHECK(!nursery_[i]->in_index);
    FTBB_CHECK(nursery_[i]->nursery_pos == i);
  }
  double min_bound = kInfinity;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const Entry* e = heap_[i].get();
    FTBB_CHECK(e != nullptr);
    FTBB_CHECK(e->slot == i);
    if (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      FTBB_CHECK_MSG(!ranks_before(e->item, heap_[parent]->item),
                     "heap property violated");
    }
    if (indexed_ && e->in_index) {
      FTBB_CHECK(bound_index_.count(const_cast<Entry*>(e)) == 1);
      FTBB_CHECK(share_index_.count(const_cast<Entry*>(e)) == 1);
      FTBB_CHECK(code_index_.count(const_cast<Entry*>(e)) == 1);
    }
    min_bound = std::min(min_bound, e->item.bound);
  }
  FTBB_CHECK(best_bound() == min_bound);
}

}  // namespace ftbb::bnb
