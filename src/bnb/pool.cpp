#include "bnb/pool.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ftbb::bnb {

const char* to_string(SelectRule rule) {
  switch (rule) {
    case SelectRule::kBestFirst:
      return "best-first";
    case SelectRule::kDepthFirst:
      return "depth-first";
    case SelectRule::kBreadthFirst:
      return "breadth-first";
  }
  return "?";
}

ActivePool::ActivePool(SelectRule rule) : rule_(rule) {}

bool ActivePool::ranks_before(const Subproblem& a, const Subproblem& b) const {
  switch (rule_) {
    case SelectRule::kBestFirst:
      if (a.bound != b.bound) return a.bound < b.bound;
      // Among equal bounds prefer the deeper problem: it is closer to a
      // feasible solution, which tightens the incumbent sooner.
      if (a.code.depth() != b.code.depth()) return a.code.depth() > b.code.depth();
      break;
    case SelectRule::kDepthFirst:
      if (a.code.depth() != b.code.depth()) return a.code.depth() > b.code.depth();
      if (a.bound != b.bound) return a.bound < b.bound;
      break;
    case SelectRule::kBreadthFirst:
      if (a.code.depth() != b.code.depth()) return a.code.depth() < b.code.depth();
      if (a.bound != b.bound) return a.bound < b.bound;
      break;
  }
  return a.code < b.code;
}

void ActivePool::push(Subproblem p) {
  entries_.push_back(std::move(p));
  sift_up(entries_.size() - 1);
}

Subproblem ActivePool::pop() {
  FTBB_CHECK_MSG(!entries_.empty(), "pop from empty pool");
  Subproblem top = std::move(entries_.front());
  entries_.front() = std::move(entries_.back());
  entries_.pop_back();
  if (!entries_.empty()) sift_down(0);
  return top;
}

double ActivePool::best_bound() const {
  double best = kInfinity;
  for (const Subproblem& p : entries_) best = std::min(best, p.bound);
  return best;
}

std::vector<Subproblem> ActivePool::remove_if(
    const std::function<bool(const Subproblem&)>& victim) {
  std::vector<Subproblem> removed;
  // In-place compaction: survivors shift left over removed slots, so the
  // entries vector never holds moved-from elements.
  std::size_t write = 0;
  for (std::size_t read = 0; read < entries_.size(); ++read) {
    if (victim(entries_[read])) {
      removed.push_back(std::move(entries_[read]));
    } else {
      if (write != read) entries_[write] = std::move(entries_[read]);
      ++write;
    }
  }
  if (!removed.empty()) {
    entries_.resize(write);
    rebuild();
  }
  return removed;
}

std::vector<Subproblem> ActivePool::extract_for_sharing(std::size_t k) {
  k = std::min(k, entries_.size());
  if (k == 0) return {};
  // Index sort by (depth asc, bound asc, code) — shallowest first.
  std::vector<std::size_t> idx(entries_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [this](std::size_t a, std::size_t b) {
    const Subproblem& pa = entries_[a];
    const Subproblem& pb = entries_[b];
    if (pa.code.depth() != pb.code.depth()) return pa.code.depth() < pb.code.depth();
    if (pa.bound != pb.bound) return pa.bound < pb.bound;
    return pa.code < pb.code;
  });
  std::vector<bool> take(entries_.size(), false);
  for (std::size_t i = 0; i < k; ++i) take[idx[i]] = true;
  std::vector<Subproblem> out;
  out.reserve(k);
  std::vector<Subproblem> kept;
  kept.reserve(entries_.size() - k);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (take[i]) {
      out.push_back(std::move(entries_[i]));
    } else {
      kept.push_back(std::move(entries_[i]));
    }
  }
  entries_ = std::move(kept);
  rebuild();
  return out;
}

void ActivePool::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!ranks_before(entries_[i], entries_[parent])) break;
    std::swap(entries_[i], entries_[parent]);
    i = parent;
  }
}

void ActivePool::sift_down(std::size_t i) {
  const std::size_t n = entries_.size();
  while (true) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && ranks_before(entries_[l], entries_[best])) best = l;
    if (r < n && ranks_before(entries_[r], entries_[best])) best = r;
    if (best == i) return;
    std::swap(entries_[i], entries_[best]);
    i = best;
  }
}

void ActivePool::rebuild() {
  if (entries_.size() < 2) return;
  for (std::size_t i = entries_.size() / 2; i-- > 0;) sift_down(i);
}

}  // namespace ftbb::bnb
