// The pool of active problems with the paper's Select rules (Section 2c).
//
// Indexed pool: alongside the classic binary heap (which still defines pop
// order and, deliberately, the legacy removal order — see below), every
// entry is tracked by three incremental ordered indexes:
//
//   * a bound index, keyed (bound, code, seq)           — O(1) best_bound(),
//     and prune_above() locates the eliminated tail in O(log n) instead of
//     scanning all n entries per incumbent update;
//   * a share index, keyed (depth, bound, code, seq)    — extract_for_sharing()
//     picks the k shallowest entries by an index walk instead of sorting the
//     whole pool per work grant;
//   * a code index, keyed (code, seq), lexicographic    — all entries below a
//     completed region form one contiguous run, so remove_covered_by() is a
//     range scan per covering code instead of a per-report full sweep that
//     walks the completion trie once per pool entry.
//
// Observational identity: the heap is a contiguous array of (bound, depth,
// entry*) slots — the selection key cached inline so sift comparisons stay
// cache-local like the seed's value heap, with the stable Entry allocation
// dereferenced only to break exact ties by path code. Every comparison
// reaches the same verdict as the seed implementation's, so the array layout
// evolves bit-identically to the historical flat heap. Pop order is
// the rule's total order either way; removal-flavored operations report their
// victims in heap-array order, which the worker's completion pipeline
// (report batching, contraction charges, last-local-completion tracking)
// observably depends on. Golden ScenarioReport fingerprints therefore stay
// unchanged while the no-victim fast paths skip the O(n) work entirely.
//
// Adaptive indexing: below kIndexBuildThreshold entries the indexes are not
// maintained at all — a small pool answers every query by a trivial scan
// faster than tree maintenance costs, and most simulated workers idle in
// that regime. The indexes are built in one pass when the pool grows past
// the threshold and dropped (with hysteresis) when it shrinks back. Results
// are identical in both modes; only the complexity changes.
//
// Nursery (LSM-style write buffer): while indexed, fresh pushes land in an
// unordered nursery instead of the trees; queries scan it linearly on top of
// their index walk. Promotion into the trees is *lazy*: a push never flushes,
// and a query tolerates one oversized nursery scan before draining it — only
// the second consecutive bulky scan pays the bulk tree insert. A bulk load
// (push 100k, query once) therefore stays a flat heap plus one linear scan,
// while any query-heavy phase converges to warm O(log n) indexes after two
// calls. Subproblems churn — a child pushed now is often popped or
// eliminated by the very next incumbent improvement — and entries that die
// young this way never pay tree maintenance at all. Drain timing is
// observationally pure: it moves entries between side structures without
// touching the heap array, pop order, or victim order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "bnb/problem.hpp"

namespace ftbb::bnb {

/// Selection heuristics for the next problem to branch from.
enum class SelectRule {
  kBestFirst,    // smallest lower bound first
  kDepthFirst,   // deepest first (LIFO flavor)
  kBreadthFirst  // shallowest first (FIFO flavor)
};

[[nodiscard]] const char* to_string(SelectRule rule);

/// Pool-maintenance work counters for the cost model (core::WorkLedger):
/// pure observation of what the pool already does — bumping them changes no
/// answer, no order, no layout. Per-worker pool operations run in the
/// kernel's total event order, so these are deterministic across thread
/// counts.
struct PoolMaintStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t nursery_drains = 0;    // lazy flush events
  std::uint64_t nursery_promoted = 0;  // entries moved into the trees
  std::uint64_t index_builds = 0;
  std::uint64_t index_drops = 0;
  std::uint64_t sweep_entries_scanned = 0;  // prune/covered/remove_if visits
  std::uint64_t share_extracted = 0;

  void add(const PoolMaintStats& other) {
    pushes += other.pushes;
    pops += other.pops;
    nursery_drains += other.nursery_drains;
    nursery_promoted += other.nursery_promoted;
    index_builds += other.index_builds;
    index_drops += other.index_drops;
    sweep_entries_scanned += other.sweep_entries_scanned;
    share_extracted += other.share_extracted;
  }
};

class ActivePool {
 public:
  explicit ActivePool(SelectRule rule = SelectRule::kBestFirst);

  ActivePool(const ActivePool&) = delete;
  ActivePool& operator=(const ActivePool&) = delete;
  ActivePool(ActivePool&&) = default;
  ActivePool& operator=(ActivePool&&) = default;

  void push(Subproblem p);
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Pops the problem the selection rule ranks first.
  Subproblem pop();

  /// Smallest bound present (kInfinity when empty). O(1) via the bound index.
  [[nodiscard]] double best_bound() const;

  /// Removes every entry whose bound is >= `threshold` (elimination after an
  /// incumbent improvement). The victims are located through the bound
  /// index — a no-op costs O(log n), never a scan — and are returned in
  /// heap-array order, matching the historical remove_if exactly.
  std::vector<Subproblem> prune_above(double threshold);

  /// Removes every entry lying inside any of `regions` (a subproblem is
  /// removed when some region is an ancestor of it or equal to it). Each
  /// region is one contiguous run of the code index, so the cost is
  /// O(|regions| log n + victims), independent of the pool size when nothing
  /// matches. Callers pass the completion table's covering codes for
  /// newly-covered regions; victims return in heap-array order.
  std::vector<Subproblem> remove_covered_by(std::span<const core::PathCode> regions);

  /// Same sweep over non-owning views — the worker's hint path passes
  /// zero-copy covering prefixes of codes it already holds. The views must
  /// stay valid for the duration of the call.
  std::vector<Subproblem> remove_covered_by(std::span<const core::PathView> regions);

  /// Removes every entry matching `victim`; returns the removed entries in
  /// heap-array order. Generic O(n) fallback — the worker hot paths use
  /// prune_above / remove_covered_by instead.
  std::vector<Subproblem> remove_if(const std::function<bool(const Subproblem&)>& victim);

  /// Extracts up to `k` problems for a work grant, preferring the
  /// shallowest entries: shallow subproblems represent the largest subtrees
  /// and are the classic choice for work transfer. The k winners come from
  /// the share index (no full sort) and are returned in heap-array order.
  std::vector<Subproblem> extract_for_sharing(std::size_t k);

  /// Order-canonical snapshot of the pool contents, sorted by path code.
  /// Deliberately the only way to enumerate entries, so no caller can couple
  /// to the internal layout.
  [[nodiscard]] std::vector<Subproblem> snapshot() const;

  [[nodiscard]] SelectRule rule() const { return rule_; }

  /// True once the pool is large enough that the ordered indexes are live.
  /// Callers with a cheaper brute-force alternative (e.g. one completion-trie
  /// walk per entry instead of materializing covering regions) should prefer
  /// it while this is false.
  [[nodiscard]] bool indexed() const { return indexed_; }

  /// Cumulative maintenance-work counters (never reset by clear(); a worker
  /// incarnation owns its pool, so the counters are per-incarnation).
  [[nodiscard]] const PoolMaintStats& maintenance() const { return maint_; }

  void clear();

  /// Deep structural validation for tests: heap property, slot back-pointers,
  /// and index membership all consistent. Aborts on violation.
  void check_invariants() const;

 private:
  struct Entry {
    Subproblem item;
    std::uint64_t seq = 0;    // insertion order; totalizes every index order
    std::size_t slot = 0;     // heap position, refreshed lazily by remove_batch
    std::uint32_t arena_pos = 0;    // position in arena_ (ownership store)
    bool in_index = false;    // indexed mode: trees vs nursery residency
    std::uint32_t nursery_pos = 0;  // position in nursery_ when !in_index
  };

  /// One heap-array element: the selection key cached inline (sift
  /// comparisons read contiguous memory; only exact bound+depth ties deref
  /// the entry for the path-code tiebreak) plus the entry it stands for.
  /// `e == nullptr` marks a hole during remove_batch compaction.
  struct HeapSlot {
    double bound = 0.0;
    std::uint32_t depth = 0;
    Entry* e = nullptr;
  };

  struct BoundLess {
    using is_transparent = void;
    bool operator()(const Entry* a, const Entry* b) const;
    bool operator()(const Entry* a, double bound) const;
    bool operator()(double bound, const Entry* b) const;
  };
  struct ShareLess {
    bool operator()(const Entry* a, const Entry* b) const;
  };
  struct CodeLess {
    using is_transparent = void;
    bool operator()(const Entry* a, const Entry* b) const;
    bool operator()(const Entry* a, const core::PathCode& c) const;
    bool operator()(const core::PathCode& c, const Entry* b) const;
    bool operator()(const Entry* a, const core::PathView& c) const;
    bool operator()(const core::PathView& c, const Entry* b) const;
  };

  /// Index maintenance pays off only once scans get long; below this the
  /// pool is a plain heap with linear fallbacks.
  static constexpr std::size_t kIndexBuildThreshold = 512;
  static constexpr std::size_t kIndexDropThreshold = 256;  // hysteresis
  /// Consecutive over-cap nursery scans a query tolerates before draining
  /// the nursery into the trees. 2 keeps a bulk-load-then-query-once
  /// workload linear while a query-heavy phase warms the indexes fast.
  static constexpr std::uint32_t kNurseryFlushScans = 2;

  [[nodiscard]] bool ranks_before(const Subproblem& a, const Subproblem& b) const;
  /// Same verdicts as ranks_before on the corresponding items, but reads the
  /// cached keys and only dereferences entries on exact (bound, depth) ties.
  [[nodiscard]] bool slot_ranks_before(const HeapSlot& a, const HeapSlot& b) const;
  void swap_slots(std::size_t i, std::size_t j);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void rebuild();

  void index_insert(Entry* e);
  void index_erase(Entry* e);
  void build_indexes();
  void drop_indexes();
  /// Builds or drops the indexes when the size crossed a threshold.
  void adapt_indexing();

  [[nodiscard]] std::size_t nursery_cap() const;
  void nursery_add(Entry* e);
  void nursery_remove(Entry* e);
  void flush_nursery();
  /// Called by every nursery-scanning query: counts over-cap scans and
  /// drains the nursery on the kNurseryFlushScans-th consecutive one.
  void maybe_flush_nursery();
  /// Removes `e` from whichever side structure (tree or nursery) holds it.
  void untrack(Entry* e);

  /// Shared body of the two remove_covered_by overloads; Region is PathCode
  /// or PathView (identical comparisons either way).
  template <typename Region>
  std::vector<Subproblem> remove_covered_impl(std::span<const Region> regions);

  /// Removes the given entries from the pool and returns their items in
  /// heap-array order, compacting and re-heapifying exactly like the
  /// historical remove_if. Precondition: `victims` holds no duplicates (a
  /// repeated pointer would be moved from twice); any order is fine.
  std::vector<Subproblem> remove_batch(std::vector<Entry*>& victims);

  Entry* acquire(Subproblem item);
  void release(Entry* e);
  void destroy_entry(Entry* e);

  SelectRule rule_;
  std::vector<HeapSlot> heap_;  // heap_[0] = next pop
  bool indexed_ = false;
  std::set<Entry*, BoundLess> bound_index_;
  std::set<Entry*, ShareLess> share_index_;
  std::set<Entry*, CodeLess> code_index_;
  std::vector<Entry*> nursery_;  // indexed mode: fresh, not-yet-promoted entries
  std::uint32_t bulky_scans_ = 0;  // consecutive over-cap nursery scans
  std::vector<std::unique_ptr<Entry>> arena_;  // owns every live + free entry
  std::vector<Entry*> free_;  // entry recycling, caps churn
  std::uint64_t next_seq_ = 0;
  PoolMaintStats maint_;
};

}  // namespace ftbb::bnb
