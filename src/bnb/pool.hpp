// The pool of active problems with the paper's Select rules (Section 2c).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "bnb/problem.hpp"

namespace ftbb::bnb {

/// Selection heuristics for the next problem to branch from.
enum class SelectRule {
  kBestFirst,    // smallest lower bound first
  kDepthFirst,   // deepest first (LIFO flavor)
  kBreadthFirst  // shallowest first (FIFO flavor)
};

[[nodiscard]] const char* to_string(SelectRule rule);

/// Binary-heap pool ordered by the configured selection rule. All orderings
/// break ties on the full path code so that pops are deterministic
/// regardless of insertion history.
class ActivePool {
 public:
  explicit ActivePool(SelectRule rule = SelectRule::kBestFirst);

  void push(Subproblem p);
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Pops the problem the selection rule ranks first.
  Subproblem pop();

  /// Smallest bound present (kInfinity when empty) — useful for global-best
  /// diagnostics.
  [[nodiscard]] double best_bound() const;

  /// Removes every entry matching `victim` (elimination by bound, or drop of
  /// problems a work report proved completed); returns the removed entries
  /// so the caller can classify them.
  std::vector<Subproblem> remove_if(const std::function<bool(const Subproblem&)>& victim);

  /// Extracts up to `k` problems for a work grant, preferring the
  /// shallowest entries: shallow subproblems represent the largest subtrees
  /// and are the classic choice for work transfer.
  std::vector<Subproblem> extract_for_sharing(std::size_t k);

  [[nodiscard]] const std::vector<Subproblem>& entries() const { return entries_; }
  [[nodiscard]] SelectRule rule() const { return rule_; }

  void clear() { entries_.clear(); }

 private:
  [[nodiscard]] bool ranks_before(const Subproblem& a, const Subproblem& b) const;
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void rebuild();

  SelectRule rule_;
  std::vector<Subproblem> entries_;  // binary heap, entries_[0] = next pop
};

}  // namespace ftbb::bnb
