#include "bnb/sequential.hpp"

#include <algorithm>

namespace ftbb::bnb {

SeqResult solve_sequential(const IProblemModel& model, const SeqOptions& options) {
  SeqResult res;
  ActivePool pool(options.rule);
  pool.push(Subproblem{core::PathCode::root(), model.root_bound()});

  while (!pool.empty()) {
    if (res.expanded >= options.max_expansions) return res;  // completed stays false
    const Subproblem p = pool.pop();
    // Eliminate: the bound may have been promising at insertion but the
    // incumbent has improved since.
    if (options.enable_elimination && res.found_feasible && p.bound >= res.best_value) {
      ++res.eliminated;
      continue;
    }
    const NodeEval eval = model.eval(p.code);
    ++res.expanded;
    res.total_cost += eval.cost;
    if (eval.feasible_leaf) {
      ++res.feasible_leaves;
      if (eval.value < res.best_value) {
        res.best_value = eval.value;
        res.best_code = p.code;
        res.found_feasible = true;
      }
      continue;
    }
    if (eval.children.empty()) {
      ++res.dead_ends;
      continue;
    }
    for (const ChildOut& child : eval.children) {
      if (child.infeasible) {
        ++res.dead_ends;
        continue;
      }
      if (options.enable_elimination && res.found_feasible &&
          child.bound >= res.best_value) {
        ++res.eliminated;
        continue;
      }
      pool.push(Subproblem{p.code.child(child.var, child.bit != 0), child.bound});
    }
    res.peak_pool = std::max(res.peak_pool, pool.size());
  }
  res.completed = true;
  return res;
}

}  // namespace ftbb::bnb
