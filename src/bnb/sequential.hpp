// Sequential branch-and-bound (paper Section 2): the four-operator loop
// over a pool of active problems. Serves as the correctness reference for
// the distributed algorithm and as the uniprocessor baseline for speedup
// measurements.
#pragma once

#include <cstdint>

#include "bnb/pool.hpp"
#include "bnb/problem.hpp"

namespace ftbb::bnb {

struct SeqOptions {
  SelectRule rule = SelectRule::kBestFirst;
  /// Eliminate problems with l(v) >= U; disable to traverse exhaustively.
  bool enable_elimination = true;
  /// Safety valve for tests; the solver aborts the loop when exceeded.
  std::uint64_t max_expansions = UINT64_MAX;
};

struct SeqResult {
  double best_value = kInfinity;
  core::PathCode best_code;
  bool found_feasible = false;
  bool completed = false;  // pool drained within max_expansions
  std::uint64_t expanded = 0;  // nodes whose cost was paid
  std::uint64_t eliminated = 0;  // pruned by bound (pool or insert time)
  std::uint64_t dead_ends = 0;  // infeasible leaves
  std::uint64_t feasible_leaves = 0;
  double total_cost = 0.0;  // uniprocessor virtual execution time
  std::size_t peak_pool = 0;
};

/// Runs the reference algorithm to completion (or the expansion cap).
SeqResult solve_sequential(const IProblemModel& model, const SeqOptions& options = {});

}  // namespace ftbb::bnb
