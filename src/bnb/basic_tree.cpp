#include "bnb/basic_tree.hpp"

#include <algorithm>
#include <deque>
#include <fstream>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace ftbb::bnb {

BasicTree BasicTree::record(const IProblemModel& model, std::uint64_t max_nodes) {
  BasicTree tree;
  tree.nodes_.push_back(TreeNode{});
  tree.nodes_[0].bound = model.root_bound();

  struct Pending {
    core::PathCode code;
    std::int32_t index;
  };
  std::deque<Pending> queue;
  queue.push_back({core::PathCode::root(), 0});

  while (!queue.empty()) {
    const Pending item = std::move(queue.front());
    queue.pop_front();
    const NodeEval eval = model.eval(item.code);
    TreeNode& node = tree.nodes_[static_cast<std::size_t>(item.index)];
    node.cost = eval.cost;
    if (eval.feasible_leaf) {
      node.feasible = true;
      node.value = eval.value;
      continue;
    }
    if (eval.children.empty()) continue;  // dead end
    FTBB_CHECK_MSG(eval.children.size() == 2, "basic trees assume binary branching");
    FTBB_CHECK_MSG(eval.children[0].var == eval.children[1].var,
                   "children of one node must branch on one variable");
    FTBB_CHECK_MSG(tree.nodes_.size() + 2 <= max_nodes,
                   "BasicTree::record: tree exceeds max_nodes; use a smaller instance");
    const std::uint32_t var = eval.children[0].var;
    tree.nodes_[static_cast<std::size_t>(item.index)].var = var;
    for (const ChildOut& child : eval.children) {
      FTBB_CHECK_MSG(!child.infeasible, "basic trees record infeasibility as dead leaves");
      const auto child_index = static_cast<std::int32_t>(tree.nodes_.size());
      tree.nodes_.push_back(TreeNode{});
      tree.nodes_.back().bound = child.bound;
      tree.nodes_[static_cast<std::size_t>(item.index)].child[child.bit] = child_index;
      queue.push_back({item.code.child(var, child.bit != 0), child_index});
    }
  }
  return tree;
}

BasicTree BasicTree::random(const RandomTreeConfig& config) {
  support::Rng rng(config.seed);
  std::uint64_t target = std::max<std::uint64_t>(config.target_nodes, 3);
  if (target % 2 == 0) ++target;  // full binary tree has an odd node count
  const std::uint64_t internal_target = (target - 1) / 2;

  BasicTree tree;
  tree.nodes_.reserve(target);
  tree.nodes_.push_back(TreeNode{});
  tree.nodes_[0].bound = 0.0;
  tree.nodes_[0].cost = rng.lognormal_mean_cv(config.cost_mean, config.cost_cv);

  // Depths tracked separately during generation (nodes store no depth).
  std::vector<std::uint32_t> depth{0};
  std::vector<std::int32_t> expandable{0};  // current leaves

  std::uint64_t internals = 0;
  while (internals < internal_target) {
    // Pick the leaf to expand: most recent (deepens the tree, like DFS
    // B&B) with probability depth_bias, uniform otherwise.
    std::size_t pick_index;
    if (rng.chance(config.depth_bias)) {
      pick_index = expandable.size() - 1;
    } else {
      pick_index = rng.pick(expandable.size());
    }
    const std::int32_t parent = expandable[pick_index];
    expandable[pick_index] = expandable.back();
    expandable.pop_back();

    const std::uint32_t parent_depth = depth[static_cast<std::size_t>(parent)];
    tree.nodes_[static_cast<std::size_t>(parent)].var = parent_depth;  // fixed order
    for (int bit = 0; bit < 2; ++bit) {
      const auto child = static_cast<std::int32_t>(tree.nodes_.size());
      tree.nodes_.push_back(TreeNode{});
      TreeNode& c = tree.nodes_.back();
      c.bound = tree.nodes_[static_cast<std::size_t>(parent)].bound +
                rng.exponential(config.bound_step_mean);
      c.cost = rng.lognormal_mean_cv(config.cost_mean, config.cost_cv);
      tree.nodes_[static_cast<std::size_t>(parent)].child[bit] = child;
      depth.push_back(parent_depth + 1);
      expandable.push_back(child);
    }
    ++internals;
  }

  // Finalize leaves: some carry feasible solutions; guarantee at least one.
  bool any_feasible = false;
  for (TreeNode& n : tree.nodes_) {
    if (!n.is_leaf()) continue;
    if (rng.chance(config.feasible_leaf_fraction)) {
      n.feasible = true;
      n.value = n.bound + rng.exponential(config.value_slack_mean);
      any_feasible = true;
    }
  }
  if (!any_feasible) {
    for (TreeNode& n : tree.nodes_) {
      if (n.is_leaf()) {
        n.feasible = true;
        n.value = n.bound + rng.exponential(config.value_slack_mean);
        break;
      }
    }
  }
  return tree;
}

std::int32_t BasicTree::resolve(const core::PathCode& code) const {
  std::int32_t cur = 0;
  for (std::size_t i = 0; i < code.depth(); ++i) {
    const core::Branch step = code.step(i);
    const TreeNode& n = nodes_[static_cast<std::size_t>(cur)];
    FTBB_CHECK_MSG(!n.is_leaf(), "BasicTree::resolve: code descends past a leaf");
    FTBB_CHECK_MSG(n.var == step.var, "BasicTree::resolve: variable mismatch");
    cur = n.child[step.bit];
    FTBB_CHECK(cur >= 0);
  }
  return cur;
}

double BasicTree::optimal_value() const {
  double best = kInfinity;
  for (const TreeNode& n : nodes_) {
    if (n.feasible) best = std::min(best, n.value);
  }
  return best;
}

std::size_t BasicTree::leaf_count() const {
  std::size_t count = 0;
  for (const TreeNode& n : nodes_) count += n.is_leaf() ? 1 : 0;
  return count;
}

std::size_t BasicTree::max_depth() const {
  // Iterative DFS carrying depth.
  std::size_t best = 0;
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 0}};
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const TreeNode& n = nodes_[static_cast<std::size_t>(idx)];
    for (const std::int32_t c : n.child) {
      if (c >= 0) stack.emplace_back(c, d + 1);
    }
  }
  return best;
}

double BasicTree::total_cost() const {
  double total = 0.0;
  for (const TreeNode& n : nodes_) total += n.cost;
  return total;
}

void BasicTree::scale_costs(double factor) {
  FTBB_CHECK(factor > 0);
  for (TreeNode& n : nodes_) n.cost *= factor;
}

void BasicTree::encode(support::ByteWriter& w) const {
  w.varint(nodes_.size());
  for (const TreeNode& n : nodes_) {
    w.f64(n.bound);
    w.f64(n.cost);
    std::uint8_t flags = n.feasible ? 1 : 0;
    w.u8(flags);
    if (n.feasible) w.f64(n.value);
    if (n.is_leaf()) {
      w.varint(0);
    } else {
      w.varint(static_cast<std::uint64_t>(n.var) + 1);
      w.varint(static_cast<std::uint64_t>(n.child[0]));
      w.varint(static_cast<std::uint64_t>(n.child[1]));
    }
  }
}

BasicTree BasicTree::decode(support::ByteReader& r) {
  BasicTree tree;
  const std::uint64_t count = r.varint();
  tree.nodes_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TreeNode n;
    n.bound = r.f64();
    n.cost = r.f64();
    const std::uint8_t flags = r.u8();
    n.feasible = (flags & 1) != 0;
    if (n.feasible) n.value = r.f64();
    const std::uint64_t var_plus1 = r.varint();
    if (var_plus1 != 0) {
      n.var = static_cast<std::uint32_t>(var_plus1 - 1);
      n.child[0] = static_cast<std::int32_t>(r.varint());
      n.child[1] = static_cast<std::int32_t>(r.varint());
    }
    tree.nodes_.push_back(n);
  }
  return tree;
}

void BasicTree::save(const std::string& path) const {
  support::ByteWriter w;
  encode(w);
  std::ofstream out(path, std::ios::binary);
  FTBB_CHECK_MSG(out.good(), "BasicTree::save: cannot open file");
  out.write(reinterpret_cast<const char*>(w.data().data()),
            static_cast<std::streamsize>(w.size()));
  FTBB_CHECK_MSG(out.good(), "BasicTree::save: write failed");
}

BasicTree BasicTree::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FTBB_CHECK_MSG(in.good(), "BasicTree::load: cannot open file");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  support::ByteReader r(bytes);
  return decode(r);
}

double TreeProblem::root_bound() const {
  return honor_bounds_ ? tree_->root().bound : -kInfinity;
}

NodeEval TreeProblem::eval(const core::PathCode& code) const {
  const std::int32_t idx = tree_->resolve(code);
  const TreeNode& n = tree_->node(static_cast<std::size_t>(idx));
  NodeEval out;
  out.cost = n.cost;
  if (n.feasible) {
    out.feasible_leaf = true;
    out.value = n.value;
    return out;
  }
  if (n.is_leaf()) return out;  // infeasible dead end
  for (int bit = 0; bit < 2; ++bit) {
    const TreeNode& child = tree_->node(static_cast<std::size_t>(n.child[bit]));
    out.children.push_back(ChildOut{
        n.var, static_cast<std::uint8_t>(bit),
        honor_bounds_ ? child.bound : -kInfinity, false});
  }
  return out;
}

double TreeProblem::bound_of(const core::PathCode& code) const {
  if (!honor_bounds_) return -kInfinity;
  return tree_->node(static_cast<std::size_t>(tree_->resolve(code))).bound;
}

std::optional<double> TreeProblem::known_optimal() const {
  return tree_->optimal_value();
}

}  // namespace ftbb::bnb
