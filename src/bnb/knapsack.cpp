#include "bnb/knapsack.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace ftbb::bnb {

KnapsackInstance KnapsackInstance::random_uncorrelated(std::size_t n,
                                                       std::int64_t max_coeff,
                                                       double capacity_fraction,
                                                       std::uint64_t seed) {
  FTBB_CHECK(max_coeff >= 1);
  support::Rng rng(seed);
  KnapsackInstance inst;
  inst.weight.reserve(n);
  inst.profit.reserve(n);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    inst.weight.push_back(rng.range(1, max_coeff));
    inst.profit.push_back(rng.range(1, max_coeff));
    total += inst.weight.back();
  }
  inst.capacity = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(capacity_fraction * static_cast<double>(total)));
  return inst;
}

KnapsackInstance KnapsackInstance::strongly_correlated(std::size_t n,
                                                       std::int64_t max_coeff,
                                                       double capacity_fraction,
                                                       std::uint64_t seed) {
  FTBB_CHECK(max_coeff >= 10);
  support::Rng rng(seed);
  KnapsackInstance inst;
  inst.weight.reserve(n);
  inst.profit.reserve(n);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t w = rng.range(1, max_coeff);
    inst.weight.push_back(w);
    inst.profit.push_back(w + max_coeff / 10);
    total += w;
  }
  inst.capacity = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(capacity_fraction * static_cast<double>(total)));
  return inst;
}

std::int64_t KnapsackInstance::dp_optimal_profit() const {
  FTBB_CHECK_MSG(capacity >= 0 && static_cast<double>(capacity) * static_cast<double>(items()) <=
                     5e8,
                 "dp_optimal_profit: instance too large for DP verification");
  std::vector<std::int64_t> best(static_cast<std::size_t>(capacity) + 1, 0);
  for (std::size_t i = 0; i < items(); ++i) {
    const auto w = static_cast<std::size_t>(weight[i]);
    for (std::size_t c = best.size(); c-- > w;) {
      best[c] = std::max(best[c], best[c - w] + profit[i]);
    }
  }
  return best.back();
}

KnapsackModel::KnapsackModel(KnapsackInstance instance, NodeCostModel cost)
    : instance_(std::move(instance)), cost_(cost) {
  FTBB_CHECK(instance_.weight.size() == instance_.profit.size());
  // Sort items by decreasing profit density; variable indices refer to this
  // order from here on.
  std::vector<std::size_t> order(instance_.items());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = static_cast<double>(instance_.profit[a]) /
                      static_cast<double>(instance_.weight[a]);
    const double db = static_cast<double>(instance_.profit[b]) /
                      static_cast<double>(instance_.weight[b]);
    return da > db;
  });
  KnapsackInstance sorted;
  sorted.capacity = instance_.capacity;
  sorted.weight.reserve(order.size());
  sorted.profit.reserve(order.size());
  for (const std::size_t i : order) {
    sorted.weight.push_back(instance_.weight[i]);
    sorted.profit.push_back(instance_.profit[i]);
  }
  instance_ = std::move(sorted);
  if (static_cast<double>(instance_.capacity) * static_cast<double>(instance_.items()) <= 5e8) {
    known_optimal_ = -static_cast<double>(instance_.dp_optimal_profit());
  }
}

KnapsackModel::State KnapsackModel::replay(const core::PathCode& code) const {
  State s;
  s.decided.assign(instance_.items(), -1);
  s.cap_left = instance_.capacity;
  for (std::size_t i = 0; i < code.depth(); ++i) {
    const core::Branch step = code.step(i);
    FTBB_CHECK_MSG(step.var < instance_.items(), "knapsack code: bad variable");
    FTBB_CHECK_MSG(s.decided[step.var] == -1, "knapsack code: variable decided twice");
    s.decided[step.var] = static_cast<std::int8_t>(step.bit);
    if (step.bit == 1) {
      s.cap_left -= instance_.weight[step.var];
      s.profit += instance_.profit[step.var];
      FTBB_CHECK_MSG(s.cap_left >= 0, "knapsack code: capacity violated");
    }
  }
  return s;
}

std::optional<std::uint32_t> KnapsackModel::next_var(const State& s) const {
  for (std::size_t i = 0; i < instance_.items(); ++i) {
    if (s.decided[i] == -1 && instance_.weight[i] <= s.cap_left) {
      return static_cast<std::uint32_t>(i);
    }
  }
  return std::nullopt;
}

double KnapsackModel::bound_of(const State& s) const {
  // Dantzig bound: fill greedily by density (items are density-sorted),
  // take a fractional piece of the first item that does not fit.
  double profit = static_cast<double>(s.profit);
  std::int64_t cap = s.cap_left;
  for (std::size_t i = 0; i < instance_.items(); ++i) {
    if (s.decided[i] != -1) continue;
    if (instance_.weight[i] <= cap) {
      cap -= instance_.weight[i];
      profit += static_cast<double>(instance_.profit[i]);
    } else {
      profit += static_cast<double>(instance_.profit[i]) *
                (static_cast<double>(cap) / static_cast<double>(instance_.weight[i]));
      break;
    }
  }
  return -profit;
}

double KnapsackModel::root_bound() const { return bound_of(replay(core::PathCode::root())); }

double KnapsackModel::bound_of(const core::PathCode& code) const {
  return bound_of(replay(code));
}

NodeEval KnapsackModel::eval(const core::PathCode& code) const {
  const State s = replay(code);
  NodeEval out;
  out.cost = cost_.cost_for(code);
  const std::optional<std::uint32_t> var = next_var(s);
  if (!var.has_value()) {
    // Every remaining item is implicitly out: this is a feasible leaf whose
    // value is the packed profit.
    out.feasible_leaf = true;
    out.value = -static_cast<double>(s.profit);
    return out;
  }
  for (const std::uint8_t bit : {std::uint8_t{1}, std::uint8_t{0}}) {
    State child = s;
    child.decided[*var] = static_cast<std::int8_t>(bit);
    if (bit == 1) {
      child.cap_left -= instance_.weight[*var];
      child.profit += instance_.profit[*var];
    }
    out.children.push_back(ChildOut{*var, bit, bound_of(child), false});
  }
  return out;
}

std::optional<double> KnapsackModel::known_optimal() const { return known_optimal_; }

}  // namespace ftbb::bnb
