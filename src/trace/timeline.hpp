// Per-process activity timelines — the Jumpshot/MPE substitute.
//
// The paper visualizes executions (Figures 5 and 6) as per-processor state
// timelines produced by the MPE logging library and the Jumpshot viewer.
// Timeline collects the same information — which activity each process
// performed over which interval — and renders it as an ASCII Gantt chart
// and as CSV for external plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftbb::trace {

enum class Activity : std::uint8_t {
  kBB = 0,          // expanding subproblems
  kContraction = 1, // list contraction / table maintenance
  kComm = 2,        // message serialization & handling
  kLB = 3,          // load balancing (handling + waiting for work)
  kIdle = 4,        // backoff, starvation, waiting for termination
  kDead = 5,        // crashed
  kDone = 6,        // halted after detecting termination
};
constexpr int kActivityCount = 7;

[[nodiscard]] const char* to_string(Activity activity);
[[nodiscard]] char glyph(Activity activity);  // one-character chart symbol

struct Interval {
  std::uint32_t proc = 0;
  double t0 = 0.0;
  double t1 = 0.0;
  Activity activity = Activity::kIdle;
};

class Timeline {
 public:
  /// Appends an interval; adjacent intervals of one process with the same
  /// activity are merged to bound memory.
  void add(std::uint32_t proc, double t0, double t1, Activity activity);

  [[nodiscard]] const std::vector<Interval>& intervals() const { return intervals_; }
  [[nodiscard]] bool empty() const { return intervals_.empty(); }

  /// Latest interval end across processes.
  [[nodiscard]] double end_time() const;

  /// ASCII Gantt chart: one row per process, `width` buckets; each bucket
  /// shows the glyph of the activity dominating it. Includes a legend.
  [[nodiscard]] std::string render_ascii(std::uint32_t procs, int width = 100) const;

  /// "proc,t0,t1,activity" rows for external tooling.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<Interval> intervals_;  // grouped per proc in practice; render sorts
};

}  // namespace ftbb::trace
