#include "trace/timeline.hpp"

#include <algorithm>
#include <cstdio>

#include "support/check.hpp"

namespace ftbb::trace {

const char* to_string(Activity activity) {
  switch (activity) {
    case Activity::kBB:
      return "bb";
    case Activity::kContraction:
      return "contraction";
    case Activity::kComm:
      return "comm";
    case Activity::kLB:
      return "lb";
    case Activity::kIdle:
      return "idle";
    case Activity::kDead:
      return "dead";
    case Activity::kDone:
      return "done";
  }
  return "?";
}

char glyph(Activity activity) {
  switch (activity) {
    case Activity::kBB:
      return 'B';
    case Activity::kContraction:
      return 'c';
    case Activity::kComm:
      return 'm';
    case Activity::kLB:
      return 'L';
    case Activity::kIdle:
      return '.';
    case Activity::kDead:
      return 'X';
    case Activity::kDone:
      return '=';
  }
  return '?';
}

void Timeline::add(std::uint32_t proc, double t0, double t1, Activity activity) {
  if (t1 <= t0) return;
  if (!intervals_.empty()) {
    Interval& last = intervals_.back();
    if (last.proc == proc && last.activity == activity && last.t1 >= t0 - 1e-12) {
      last.t1 = std::max(last.t1, t1);
      return;
    }
  }
  intervals_.push_back(Interval{proc, t0, t1, activity});
}

double Timeline::end_time() const {
  double end = 0.0;
  for (const Interval& iv : intervals_) end = std::max(end, iv.t1);
  return end;
}

std::string Timeline::render_ascii(std::uint32_t procs, int width) const {
  FTBB_CHECK(width > 0);
  const double end = end_time();
  std::string out;
  if (end <= 0.0) return out;
  const double bucket = end / width;
  // Per process row: accumulate time per activity per bucket, draw the
  // dominant one.
  for (std::uint32_t p = 0; p < procs; ++p) {
    std::vector<std::vector<double>> weight(
        static_cast<std::size_t>(width), std::vector<double>(kActivityCount, 0.0));
    for (const Interval& iv : intervals_) {
      if (iv.proc != p) continue;
      int b0 = static_cast<int>(iv.t0 / bucket);
      int b1 = static_cast<int>(iv.t1 / bucket);
      b0 = std::clamp(b0, 0, width - 1);
      b1 = std::clamp(b1, 0, width - 1);
      for (int b = b0; b <= b1; ++b) {
        const double lo = std::max(iv.t0, b * bucket);
        const double hi = std::min(iv.t1, (b + 1) * bucket);
        if (hi > lo) {
          weight[static_cast<std::size_t>(b)][static_cast<int>(iv.activity)] += hi - lo;
        }
      }
    }
    char label[32];
    std::snprintf(label, sizeof(label), "P%-3u |", p);
    out += label;
    for (int b = 0; b < width; ++b) {
      int best = static_cast<int>(Activity::kIdle);
      double best_w = 0.0;
      for (int a = 0; a < kActivityCount; ++a) {
        if (weight[static_cast<std::size_t>(b)][a] > best_w) {
          best_w = weight[static_cast<std::size_t>(b)][a];
          best = a;
        }
      }
      out += best_w > 0.0 ? glyph(static_cast<Activity>(best)) : ' ';
    }
    out += "|\n";
  }
  char footer[128];
  std::snprintf(footer, sizeof(footer),
                "      0%*s%.3fs\n", width - 1, "", end);
  out += footer;
  out += "      legend: B=branch&bound  c=contraction  m=comm  L=load-balance  "
         ".=idle  X=dead  ==done\n";
  return out;
}

std::string Timeline::to_csv() const {
  std::string out = "proc,t0,t1,activity\n";
  std::vector<Interval> sorted = intervals_;
  std::sort(sorted.begin(), sorted.end(), [](const Interval& a, const Interval& b) {
    if (a.proc != b.proc) return a.proc < b.proc;
    return a.t0 < b.t0;
  });
  char line[128];
  for (const Interval& iv : sorted) {
    std::snprintf(line, sizeof(line), "%u,%.6f,%.6f,%s\n", iv.proc, iv.t0, iv.t1,
                  to_string(iv.activity));
    out += line;
  }
  return out;
}

}  // namespace ftbb::trace
