// Real-time message-passing runtime (the MPI-on-one-box substitute).
//
// The paper's protocol is substrate independent; this runtime hosts the
// *identical* core::BnbWorker state machines on real threads with real
// queues, demonstrating the algorithm outside simulated time (the closest
// equivalent of an MPI run on one machine, which the reproduction notes call
// for; no MPI implementation is available offline, so the message-passing
// layer is built here: per-process mailboxes plus a wall-clock deadline
// scheduler that applies configurable latency and loss — the paper's network
// assumptions — before enqueueing).
//
// Fault parity with the simulator: the runtime is a first-class
// fault::IFaultBackend, so the same compiled FaultSchedule (crash, rejoin,
// partition + heal, windowed per-link loss, membership churn) that drives
// the discrete-event backends replays here against wall-clock deadlines.
// Crashed workers are torn down as whole incarnations (thread, mailbox,
// worker state) and revived as fresh ones; epoch guards drop messages and
// timers addressed to dead incarnations, and per-incarnation stats merge in
// the results exactly as SimCluster merges them. The in-process transport
// evaluates the same windowed loss rules and partition groups as the
// simulated Network (shared helpers in sim/network.hpp), against wall
// seconds since run start.
//
// Messages actually cross the wire format: they are encoded to bytes at the
// sender and decoded at the receiver.
//
// Unlike the simulator, runs are not deterministic (thread scheduling);
// tests assert protocol correctness — exact optimum, termination, crash and
// churn survival — not timing.
#pragma once

#include <cstdint>
#include <vector>

#include "bnb/problem.hpp"
#include "core/frame.hpp"
#include "core/worker.hpp"
#include "fault/schedule.hpp"
#include "sim/network.hpp"

namespace ftbb::rt {

struct RtConfig {
  /// Initial population floor; the fault schedule's population (churn
  /// arrivals) can raise the number of hosted members.
  std::uint32_t workers = 4;
  core::WorkerConfig worker;
  /// Wall seconds slept per virtual second of B&B cost (model costs are
  /// virtual; scale them down to keep runs quick).
  double time_scale = 1.0;
  /// Latency / jitter / loss model of the in-process transport, evaluated in
  /// wall seconds since run start (same structure the simulator uses in
  /// virtual time).
  sim::NetConfig net;
  std::uint64_t seed = 1;
  double wall_timeout = 60.0;  // hard cap; hitting it fails the run
  /// Compiled fault schedule; all times are wall seconds since run start.
  /// Joins at/after wall_timeout are abandoned (the member never enters).
  fault::FaultSchedule faults;
  /// Wire frame version. The runtime actually ships and decodes the bytes,
  /// so it defaults to the framed, delta-coded v1 encoding; kLegacy is
  /// available for apples-to-apples byte comparisons.
  core::FrameVersion wire = core::FrameVersion::kV1;
};

/// Transport counters (the rt analogue of sim::Network::Stats).
struct RtNetStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_lost = 0;        // random loss (base + windowed rules)
  std::uint64_t messages_partitioned = 0; // dropped at a partition
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  /// Frames that arrived but failed FrameCodec::decode (corrupt, truncated,
  /// unknown version...). The transport drops them — a decode failure is a
  /// recoverable network event, never a crash. Zero on a healthy run.
  std::uint64_t decode_errors = 0;
};

struct RtResult {
  bool all_live_halted = false;
  bool timed_out = false;
  bool solution_found = false;
  double solution = bnb::kInfinity;
  double wall_seconds = 0.0;
  /// Per member, merged across every incarnation (crashed incarnations'
  /// spend included), mirroring SimCluster's per-incarnation merge.
  std::vector<core::WorkerStats> workers;
  /// Per-member work ledgers (all incarnations folded, member order) and
  /// their member-order aggregate. Real threads make the *values*
  /// nondeterministic run to run; the composition mirrors SimCluster's.
  std::vector<core::WorkLedger> worker_ledgers;
  core::WorkLedger work;
  std::vector<bool> crashed;  // ever crash-injected
  std::vector<std::uint32_t> incarnations_per_worker;
  /// Per member: incarnations that opened a v1 report delta chain (sent at
  /// least one report/gossip batch). A worker crashed mid-stream and revived
  /// shows 2 — the revived incarnation restarted from a self-contained
  /// report rather than the dead predecessor's delta base.
  std::vector<std::uint32_t> report_streams_per_worker;
  /// Incarnation hygiene: every spawned worker thread must be joined by the
  /// time the result exists. The chaos-soak test asserts reaped ==
  /// incarnations, i.e. churn never leaks a thread.
  std::uint32_t incarnations = 0;
  std::uint32_t reaped = 0;
  /// Redundant-work accounting over all incarnations (total - unique).
  std::uint64_t total_expanded = 0;
  std::uint64_t unique_expanded = 0;
  std::uint64_t redundant_expansions = 0;
  RtNetStats net;
};

class Cluster {
 public:
  /// Spawns one thread per live worker incarnation, arms the fault schedule
  /// on a wall-clock deadline scheduler, runs to termination (all live
  /// workers detect completion and every scheduled injection has fired) or
  /// the wall timeout, joins everything, reports.
  static RtResult run(const bnb::IProblemModel& model, const RtConfig& config);
};

}  // namespace ftbb::rt
