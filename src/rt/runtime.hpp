// Real-time message-passing runtime (the MPI-on-one-box substitute).
//
// The paper's protocol is substrate independent; this runtime hosts the
// *identical* core::BnbWorker state machines on real threads with real
// queues, demonstrating the algorithm outside simulated time (the closest
// equivalent of an MPI run on one machine, which the reproduction notes call
// for; no MPI implementation is available offline, so the message-passing
// layer is built here: per-process mailboxes plus a delivery service that
// applies configurable latency and loss — the paper's network assumptions —
// before enqueueing).
//
// Messages actually cross the wire format: they are encoded to bytes at the
// sender and decoded at the receiver.
//
// Unlike the simulator, runs are not deterministic (thread scheduling);
// tests assert protocol correctness — exact optimum, termination, crash
// survival — not timing.
#pragma once

#include <cstdint>
#include <vector>

#include "bnb/problem.hpp"
#include "core/worker.hpp"

namespace ftbb::rt {

struct RtConfig {
  std::uint32_t workers = 4;
  core::WorkerConfig worker;
  /// Wall seconds slept per virtual second of B&B cost (model costs are
  /// virtual; scale them down to keep runs quick).
  double time_scale = 1.0;
  double net_latency_fixed = 0.0;     // artificial delivery delay, wall seconds
  double net_latency_per_byte = 0.0;
  double net_loss_prob = 0.0;
  std::uint64_t seed = 1;
  double wall_timeout = 60.0;  // hard cap; hitting it fails the run
  /// Crash injections: worker killed at `time` wall-seconds after start.
  std::vector<std::pair<core::NodeId, double>> crashes;
};

struct RtResult {
  bool all_live_halted = false;
  bool timed_out = false;
  bool solution_found = false;
  double solution = bnb::kInfinity;
  double wall_seconds = 0.0;
  std::vector<core::WorkerStats> workers;
  std::vector<bool> crashed;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_lost = 0;
};

class Cluster {
 public:
  /// Spawns one thread per worker, runs to termination (all live workers
  /// detect completion) or the wall timeout, joins everything, reports.
  static RtResult run(const bnb::IProblemModel& model, const RtConfig& config);
};

}  // namespace ftbb::rt
