#include "rt/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <unordered_map>
#include <variant>

#include "core/messages.hpp"
#include "fault/driver.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ftbb::rt {

namespace {

using Clock = std::chrono::steady_clock;

struct TimerFire {
  core::TimerKind kind;
  std::uint64_t gen;
};
struct InboundMsg {
  core::Message msg;
  std::size_t bytes;  // frame size as received off the wire
};
struct Poison {};
using Event = std::variant<InboundMsg, TimerFire, Poison>;

using ExpansionMap =
    std::unordered_map<core::PathCode, std::uint32_t, core::PathCodeHash>;

/// Unbounded MPSC mailbox; one consumer (the incarnation's thread).
class Mailbox {
 public:
  void push(Event e) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(e));
    }
    cv_.notify_one();
  }

  Event pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return !queue_.empty(); });
    Event e = std::move(queue_.front());
    queue_.pop_front();
    return e;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Event> queue_;
};

/// Wall-clock deadline scheduler: one background thread dispatches arbitrary
/// closures at absolute times (seconds since run start). Message deliveries,
/// worker timers, and fault injections all flow through it — it doubles as
/// the runtime's fault::IFaultClock. Items may be queued before start();
/// stop() discards whatever has not come due.
class Scheduler {
 public:
  void schedule(double at, sim::Callback fn) {
    {
      std::lock_guard lock(mutex_);
      queue_.push(Item{at, next_seq_++, std::move(fn)});
    }
    cv_.notify_one();
  }

  void start(Clock::time_point t0) {
    start_ = t0;
    thread_ = std::thread([this] { loop(); });
  }

  void stop() {
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_one();
    if (thread_.joinable()) thread_.join();
  }

 private:
  struct Item {
    double at;
    std::uint64_t seq;
    mutable sim::Callback fn;  // moved out at dispatch; top is const

    bool operator>(const Item& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  [[nodiscard]] double now() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void loop() {
    std::unique_lock lock(mutex_);
    while (true) {
      if (stopping_) return;
      if (queue_.empty()) {
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        continue;
      }
      const double t = now();
      const Item& top = queue_.top();
      if (top.at <= t) {
        sim::Callback fn = std::move(top.fn);
        queue_.pop();
        lock.unlock();
        fn();
        lock.lock();
        continue;
      }
      cv_.wait_for(lock, std::chrono::duration<double>(top.at - t));
    }
  }

  Clock::time_point start_{};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::thread thread_;
};

class RtCluster;
class WorkerHost;

/// One incarnation of a member: a fresh BnbWorker, its mailbox, and the
/// thread that drives both. Crashing retires the whole object (its thread
/// exits; the state stays readable for stats merging) and reviving spawns a
/// new one — nothing of a dead incarnation ever leaks into its successor,
/// mirroring the simulator's crash-stop semantics.
class Incarnation final : public core::IWorkerEnv {
 public:
  Incarnation(WorkerHost* host, std::uint64_t epoch, std::uint64_t seed);

  void start(bool with_root) {
    thread_ = std::thread([this, with_root] { thread_main(with_root); });
  }

  /// Crash-stop (or teardown): the thread exits at its next event, a sleep
  /// emulating B&B cost is interrupted, and sends are suppressed.
  void stop() {
    stopped_.store(true, std::memory_order_release);
    {
      std::lock_guard lock(sleep_mu_);
    }
    sleep_cv_.notify_all();
    mailbox_.push(Event{Poison{}});
  }

  [[nodiscard]] bool stopped() const {
    return stopped_.load(std::memory_order_acquire);
  }

  Mailbox& mailbox() { return mailbox_; }
  core::BnbWorker& worker() { return *worker_; }
  [[nodiscard]] const core::BnbWorker& worker() const { return *worker_; }
  [[nodiscard]] const ExpansionMap& expansions() const { return expansions_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Whether this incarnation opened a v1 report delta chain (sent at least
  /// one report/gossip batch). Post-run observer: read after join_thread().
  [[nodiscard]] bool opened_report_stream() const { return delta_.active; }

  bool join_thread() {
    if (!thread_.joinable()) return false;
    thread_.join();
    return true;
  }

  // ---- core::IWorkerEnv (called from this incarnation's thread only) ----

  [[nodiscard]] double now() const override;
  void send(core::NodeId to, core::Message msg) override;
  void set_timer(core::TimerKind kind, double delay, std::uint64_t gen) override;
  void charge(core::CostKind kind, double seconds) override;
  support::Rng& rng() override { return rng_; }
  [[nodiscard]] const std::vector<core::NodeId>& peers() const override;
  void set_wait_hint(core::WaitHint hint) override { (void)hint; }
  void notify_halted() override;
  void note_expansion(const core::PathCode& code, double cost) override {
    (void)cost;
    ++expansions_[code];
  }

 private:
  void thread_main(bool with_root) {
    worker_->on_start(with_root);
    while (true) {
      Event e = mailbox_.pop();
      if (std::holds_alternative<Poison>(e)) break;
      if (stopped()) break;
      if (auto* in = std::get_if<InboundMsg>(&e)) {
        if (!worker_->halted()) {
          worker_->stats().msgs_received++;
          worker_->stats().bytes_received += in->bytes;
          worker_->on_message(in->msg);
        }
      } else {
        const TimerFire& fire = std::get<TimerFire>(e);
        worker_->on_timer(fire.kind, fire.gen);
      }
    }
  }

  WorkerHost* host_;
  std::uint64_t epoch_;
  support::Rng rng_;
  Mailbox mailbox_;
  std::optional<core::BnbWorker> worker_;
  ExpansionMap expansions_;
  std::thread thread_;
  core::ReportDeltaState delta_;  // dies with the incarnation: a revived
                                  // worker never deltas against a dead
                                  // predecessor's last report
  std::atomic<bool> stopped_{false};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  mutable std::vector<core::NodeId> peers_cache_;
  mutable std::uint64_t peers_version_ = ~0ULL;

  friend class WorkerHost;
};

/// Per-member control block: the current incarnation, retired ones, and the
/// epoch/liveness state the fault plane mutates. Control state is guarded by
/// mu_; the epoch is mirrored in an atomic so senders can capture the
/// destination incarnation without locking.
class WorkerHost {
 public:
  WorkerHost(RtCluster* cluster, core::NodeId id, std::uint64_t seed)
      : cluster_(cluster), id_(id), seed_(seed) {}

  [[nodiscard]] core::NodeId id() const { return id_; }
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_atomic_.load(std::memory_order_acquire);
  }

  /// Membership arrival. No-op if the member crashed before joining.
  void join(bool with_root);

  /// Crash-stop injection: tears down the current incarnation. No-op on a
  /// dead member or one whose current incarnation already detected
  /// termination (its halt is honored, as in the simulator).
  void inject_crash();

  /// A previously crashed, previously started member re-enters as a fresh,
  /// empty incarnation under a bumped epoch.
  void inject_revive();

  /// The member's join time lies beyond the horizon: never participates.
  void abandon_join();

  /// Delivery entry points (scheduler thread). `epoch` is the incarnation
  /// captured when the message/timer was created; mail for a dead
  /// incarnation is dropped even if the member has since been revived.
  void accept_message(core::Message msg, std::size_t bytes, std::uint64_t epoch);
  void accept_timer(core::TimerKind kind, std::uint64_t gen, std::uint64_t epoch);

  /// Called by the current incarnation's thread on termination detection.
  void on_incarnation_halted(std::uint64_t epoch);

  /// Teardown: stop whatever incarnation is running.
  void stop_current() {
    std::lock_guard lock(mu_);
    if (current_) current_->stop();
  }

  /// Joins every incarnation thread; returns how many were reaped.
  std::uint32_t reap() {
    std::uint32_t reaped = 0;
    for (auto& inc : retired_) {
      if (inc->join_thread()) ++reaped;
    }
    if (current_ && current_->join_thread()) ++reaped;
    return reaped;
  }

  // ---- post-run observers (threads joined, no locking needed) ----

  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool ever_crashed() const { return ever_crashed_; }
  [[nodiscard]] std::uint32_t incarnation_count() const {
    return static_cast<std::uint32_t>(retired_.size()) + (current_ ? 1u : 0u);
  }
  [[nodiscard]] std::uint32_t report_streams() const {
    std::uint32_t n = 0;
    for (const auto& inc : retired_) {
      if (inc->opened_report_stream()) ++n;
    }
    if (current_ && current_->opened_report_stream()) ++n;
    return n;
  }
  [[nodiscard]] const Incarnation* current() const { return current_.get(); }

  /// Current incarnation's stats plus everything crashed incarnations spent
  /// (the paper's aggregates cover crashed processors' time too).
  [[nodiscard]] core::WorkerStats merged_stats() const {
    core::WorkerStats total;
    for (const auto& inc : retired_) total.add(inc->worker().stats());
    if (current_) {
      total.add(current_->worker().stats());
      total.halted_at = current_->worker().stats().halted_at;
    }
    return total;
  }

  /// Work ledger across all incarnations, mirroring SimCluster's
  /// merged_ledger (kIncarnations counts one per life).
  [[nodiscard]] core::WorkLedger merged_ledger() const {
    core::WorkLedger total;
    for (const auto& inc : retired_) total.add(inc->worker().work_snapshot());
    if (current_) total.add(current_->worker().work_snapshot());
    return total;
  }

  void merge_expansions(ExpansionMap& into) const {
    for (const auto& inc : retired_) {
      for (const auto& [code, count] : inc->expansions()) into[code] += count;
    }
    if (current_) {
      for (const auto& [code, count] : current_->expansions()) {
        into[code] += count;
      }
    }
  }

 private:
  void spawn_incarnation_locked(bool with_root);

  RtCluster* cluster_;
  core::NodeId id_;
  std::uint64_t seed_;

  std::mutex mu_;
  std::uint64_t epoch_ = 0;
  std::atomic<std::uint64_t> epoch_atomic_{0};
  bool alive_ = true;
  bool started_ = false;
  bool halted_current_ = false;
  bool counts_toward_live_ = true;
  bool ever_crashed_ = false;
  std::shared_ptr<Incarnation> current_;
  std::vector<std::shared_ptr<Incarnation>> retired_;

  friend class RtCluster;
  friend class Incarnation;
};

class RtCluster final : public fault::IFaultBackend, public fault::IFaultClock {
 public:
  RtCluster(const bnb::IProblemModel& model, const RtConfig& config);

  RtResult run();

  [[nodiscard]] double now_wall() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // ---- fault::IFaultBackend ----
  void crash(std::uint32_t node) override { hosts_[node]->inject_crash(); }
  void revive(std::uint32_t node) override { hosts_[node]->inject_revive(); }
  void join(std::uint32_t node) override { hosts_[node]->join(node == 0); }
  void abandon_join(std::uint32_t node) override {
    hosts_[node]->abandon_join();
  }
  void set_partition(const sim::Partition& partition) override {
    partitions_.push_back(partition);  // pre-run only; read-only afterwards
  }
  void set_loss_rule(const sim::LossRule& rule) override {
    net_.loss_rules.push_back(rule);  // pre-run only; read-only afterwards
  }

  // ---- fault::IFaultClock ----
  void call_at(double at, sim::Callback fn) override {
    scheduler_.schedule(at, std::move(fn));
  }

  /// Ships one already-encoded message through the loss/partition model;
  /// surviving messages decode at the receiver after the configured latency.
  void transport_send(std::uint32_t from, core::NodeId to, support::ByteWriter w);

  const bnb::IProblemModel& model_;
  RtConfig config_;
  core::FrameCodec codec_;
  std::uint32_t population_ = 0;
  Clock::time_point start_{};
  Scheduler scheduler_;
  std::optional<fault::FaultDriver> driver_;
  std::vector<std::unique_ptr<WorkerHost>> hosts_;

  // Transport state: installed by the driver before the run, immutable after.
  sim::NetConfig net_;
  std::vector<sim::Partition> partitions_;

  /// Per-source-node draw stream for loss and jitter. A channel is normally
  /// touched only by its node's incarnation thread, but a crashed
  /// incarnation can overlap its successor for one in-flight handler, so
  /// draws stay behind a (virtually uncontended) mutex.
  struct Channel {
    std::mutex mu;
    support::Rng rng{1};
  };
  std::vector<std::unique_ptr<Channel>> channels_;

  // Membership: members that joined so far. Crashed members stay listed
  // (failures are not detectable, Section 4).
  std::mutex membership_mu_;
  std::vector<core::NodeId> joined_;
  std::atomic<std::uint64_t> membership_version_{0};

  // Run-completion accounting (mirrors SimCluster's live set).
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::uint32_t live_count_ = 0;
  std::uint32_t live_halted_ = 0;

  std::atomic<std::uint64_t> net_sent_{0};
  std::atomic<std::uint64_t> net_delivered_{0};
  std::atomic<std::uint64_t> net_lost_{0};
  std::atomic<std::uint64_t> net_partitioned_{0};
  std::atomic<std::uint64_t> net_bytes_sent_{0};
  std::atomic<std::uint64_t> net_bytes_delivered_{0};
  std::atomic<std::uint64_t> net_decode_errors_{0};
};

// ---------------------------------------------------------------------------
// Incarnation
// ---------------------------------------------------------------------------

Incarnation::Incarnation(WorkerHost* host, std::uint64_t epoch, std::uint64_t seed)
    : host_(host), epoch_(epoch), rng_(seed) {
  worker_.emplace(host->id(), &host->cluster_->model_,
                  host->cluster_->config_.worker, this);
}

double Incarnation::now() const { return host_->cluster_->now_wall(); }

void Incarnation::send(core::NodeId to, core::Message msg) {
  if (stopped()) return;  // crash-stop: a dead incarnation sends nothing
  // Real wire crossing: frame-encode here, decode at the receiver. The
  // delta state is this incarnation's own and is touched only by its thread.
  support::ByteWriter w;
  host_->cluster_->codec_.encode(msg, &delta_, w);
  worker_->stats().msgs_sent++;
  worker_->stats().bytes_sent += w.size();
  host_->cluster_->transport_send(host_->id(), to, std::move(w));
}

void Incarnation::set_timer(core::TimerKind kind, double delay, std::uint64_t gen) {
  RtCluster* cluster = host_->cluster_;
  cluster->scheduler_.schedule(
      cluster->now_wall() + delay,
      [host = host_, kind, gen, epoch = epoch_]() {
        host->accept_timer(kind, gen, epoch);
      });
}

void Incarnation::charge(core::CostKind kind, double seconds) {
  if (seconds <= 0.0) return;
  worker_->stats().time[static_cast<int>(kind)] += seconds;
  const double scale = host_->cluster_->config_.time_scale;
  if (kind == core::CostKind::kBB && scale > 0.0) {
    // Emulate the computation (model costs are virtual seconds). A crash
    // injection interrupts the sleep: a killed worker stops burning wall
    // time mid-subproblem.
    std::unique_lock lock(sleep_mu_);
    sleep_cv_.wait_for(lock, std::chrono::duration<double>(seconds * scale),
                       [this] { return stopped(); });
  }
}

const std::vector<core::NodeId>& Incarnation::peers() const {
  RtCluster* cluster = host_->cluster_;
  const std::uint64_t version =
      cluster->membership_version_.load(std::memory_order_acquire);
  if (peers_version_ != version) {
    peers_version_ = version;
    peers_cache_.clear();
    std::lock_guard lock(cluster->membership_mu_);
    for (const core::NodeId id : cluster->joined_) {
      if (id != host_->id()) peers_cache_.push_back(id);
    }
  }
  return peers_cache_;
}

void Incarnation::notify_halted() { host_->on_incarnation_halted(epoch_); }

// ---------------------------------------------------------------------------
// WorkerHost
// ---------------------------------------------------------------------------

void WorkerHost::spawn_incarnation_locked(bool with_root) {
  current_ = std::make_shared<Incarnation>(
      this, epoch_, support::mix64(seed_, epoch_));
  current_->start(with_root);
}

void WorkerHost::join(bool with_root) {
  std::lock_guard lock(mu_);
  if (!alive_ || started_) return;  // crashed before joining / double join
  started_ = true;
  {
    std::lock_guard mlock(cluster_->membership_mu_);
    cluster_->joined_.push_back(id_);
  }
  cluster_->membership_version_.fetch_add(1, std::memory_order_acq_rel);
  spawn_incarnation_locked(with_root);
}

void WorkerHost::inject_crash() {
  bool left = false;
  {
    std::lock_guard lock(mu_);
    if (!alive_ || halted_current_) return;
    alive_ = false;
    ever_crashed_ = true;
    if (current_) {
      current_->stop();
      retired_.push_back(std::move(current_));
    }
    if (counts_toward_live_) {
      counts_toward_live_ = false;
      left = true;
    }
  }
  if (left) {
    {
      std::lock_guard lock(cluster_->done_mutex_);
      --cluster_->live_count_;
    }
    cluster_->done_cv_.notify_all();
  }
}

void WorkerHost::inject_revive() {
  bool rejoined = false;
  {
    std::lock_guard lock(mu_);
    // Only a crashed, previously started member re-enters; a revive aimed at
    // a live member (its crash was skipped because it had already halted) is
    // a no-op.
    if (alive_ || !started_) return;
    ++epoch_;
    epoch_atomic_.store(epoch_, std::memory_order_release);
    alive_ = true;
    halted_current_ = false;
    spawn_incarnation_locked(false);
    if (!counts_toward_live_) {
      counts_toward_live_ = true;
      rejoined = true;
    }
  }
  if (rejoined) {
    {
      std::lock_guard lock(cluster_->done_mutex_);
      ++cluster_->live_count_;
    }
    cluster_->done_cv_.notify_all();
  }
}

void WorkerHost::abandon_join() {
  bool left = false;
  {
    std::lock_guard lock(mu_);
    if (counts_toward_live_) {
      counts_toward_live_ = false;
      left = true;
    }
  }
  if (left) {
    {
      std::lock_guard lock(cluster_->done_mutex_);
      --cluster_->live_count_;
    }
    cluster_->done_cv_.notify_all();
  }
}

void WorkerHost::accept_message(core::Message msg, std::size_t bytes,
                                std::uint64_t epoch) {
  std::lock_guard lock(mu_);
  if (!current_ || epoch != epoch_ || !alive_ || !started_) return;
  current_->mailbox().push(Event{InboundMsg{std::move(msg), bytes}});
}

void WorkerHost::accept_timer(core::TimerKind kind, std::uint64_t gen,
                              std::uint64_t epoch) {
  std::lock_guard lock(mu_);
  if (!current_ || epoch != epoch_ || !alive_ || !started_) return;
  current_->mailbox().push(Event{TimerFire{kind, gen}});
}

void WorkerHost::on_incarnation_halted(std::uint64_t epoch) {
  {
    std::lock_guard lock(mu_);
    if (epoch != epoch_ || !alive_) return;  // a dead incarnation's last word
    halted_current_ = true;
  }
  {
    std::lock_guard lock(cluster_->done_mutex_);
    ++cluster_->live_halted_;
  }
  cluster_->done_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// RtCluster
// ---------------------------------------------------------------------------

RtCluster::RtCluster(const bnb::IProblemModel& model, const RtConfig& config)
    : model_(model), config_(config), codec_(config.wire), net_(config.net) {
  FTBB_CHECK(config_.workers >= 1);
  population_ = std::max(config_.workers, config_.faults.population);
  support::Rng master(config_.seed);
  for (core::NodeId id = 0; id < population_; ++id) {
    hosts_.push_back(
        std::make_unique<WorkerHost>(this, id, master.split(id).next()));
    channels_.push_back(std::make_unique<Channel>());
    channels_.back()->rng = master.split(id).split(0x6e6574);
  }
  live_count_ = population_;

  fault::FaultSchedule schedule = config_.faults;
  schedule.population = population_;
  driver_.emplace(std::move(schedule), this, this);
}

void RtCluster::transport_send(std::uint32_t from, core::NodeId to,
                               support::ByteWriter w) {
  const std::size_t bytes = w.size();
  net_sent_.fetch_add(1, std::memory_order_relaxed);
  net_bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  const double now = now_wall();
  if (sim::partition_blocks(partitions_, from, to, now)) {
    net_partitioned_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  double latency;
  {
    Channel& channel = *channels_[from];
    std::lock_guard lock(channel.mu);
    const double p = sim::combined_loss_probability(net_, from, to, now);
    if (p > 0.0 && channel.rng.chance(p)) {
      net_lost_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Same per-pair latency-class selection as the simulated Network, in
    // wall time (flat configs reduce to the top-level parameters).
    const sim::TierLatency link = sim::link_latency(net_, from, to);
    latency = link.latency_fixed +
              link.latency_per_byte * static_cast<double>(bytes);
    if (link.jitter_frac > 0.0) {
      latency *= channel.rng.uniform(1.0 - link.jitter_frac,
                                     1.0 + link.jitter_frac);
    }
  }
  // Capture the destination incarnation at send time: mail addressed to an
  // incarnation that dies in flight is dropped on arrival (crash-stop).
  // Both delivered counters tick at arrival, before the epoch guard —
  // wire-level delivery, exactly where the simulated Network counts it.
  const std::uint64_t dest_epoch = hosts_[to]->epoch();
  scheduler_.schedule(
      now + latency, [this, to, dest_epoch, bytes, buf = w.take()]() {
        net_delivered_.fetch_add(1, std::memory_order_relaxed);
        net_bytes_delivered_.fetch_add(bytes, std::memory_order_relaxed);
        core::FrameDecode frame = core::FrameCodec::decode(buf);
        if (!frame.ok()) {
          // A frame that fails to decode is a network event, not a fault:
          // count it and drop it, exactly like a lost message.
          net_decode_errors_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        hosts_[to]->accept_message(std::move(frame.msg), bytes, dest_epoch);
      });
}

RtResult RtCluster::run() {
  driver_->set_fire_listener([this] {
    {
      std::lock_guard lock(done_mutex_);
    }
    done_cv_.notify_all();
  });
  start_ = Clock::now();
  // Arm before the dispatch thread starts: every injection (including the
  // t=0 joins that spawn the initial incarnations) queues in deadline order.
  driver_->arm(config_.wall_timeout);
  scheduler_.start(start_);

  RtResult result;
  {
    // A fast computation must not conclude out from under a pending
    // injection: a scheduled crash (or a churn join) that has not landed yet
    // holds the run open, else the configured fault would silently never
    // happen.
    std::unique_lock lock(done_mutex_);
    result.timed_out = !done_cv_.wait_for(
        lock, std::chrono::duration<double>(config_.wall_timeout), [this] {
          return live_halted_ >= live_count_ &&
                 driver_->pending_injections() == 0;
        });
  }
  result.wall_seconds = now_wall();

  // Shut everything down. The scheduler stops first — a late injection
  // dispatched during teardown could otherwise spawn a fresh incarnation
  // *after* its host was stopped, leaving a thread blocked in its mailbox
  // forever. Once the scheduler thread is joined nothing spawns anymore;
  // stop flags + poison pills then unblock every worker thread (including
  // ones mid-sleep in a charged busy period), and every incarnation thread
  // ever spawned is reaped.
  scheduler_.stop();
  for (auto& host : hosts_) host->stop_current();
  for (auto& host : hosts_) result.reaped += host->reap();

  std::uint32_t live = 0;
  std::uint32_t halted = 0;
  ExpansionMap merged;
  for (auto& host : hosts_) {
    result.workers.push_back(host->merged_stats());
    result.worker_ledgers.push_back(host->merged_ledger());
    result.work.add(result.worker_ledgers.back());
    result.crashed.push_back(host->ever_crashed());
    result.incarnations_per_worker.push_back(host->incarnation_count());
    result.report_streams_per_worker.push_back(host->report_streams());
    result.incarnations += host->incarnation_count();
    host->merge_expansions(merged);
    if (host->alive() && host->started()) {
      ++live;
      const Incarnation* inc = host->current();
      if (inc != nullptr && inc->worker().halted()) {
        ++halted;
        if (inc->worker().incumbent() < result.solution) {
          result.solution = inc->worker().incumbent();
          result.solution_found = true;
        }
      }
    }
  }
  result.all_live_halted = live > 0 && live == halted;
  for (const core::WorkerStats& stats : result.workers) {
    result.total_expanded += stats.expanded;
  }
  result.unique_expanded = merged.size();
  result.redundant_expansions = result.total_expanded - result.unique_expanded;
  result.work[core::WorkItem::kRedundantExpansions] = result.redundant_expansions;
  result.net.messages_sent = net_sent_.load();
  result.net.messages_delivered = net_delivered_.load();
  result.net.messages_lost = net_lost_.load();
  result.net.messages_partitioned = net_partitioned_.load();
  result.net.bytes_sent = net_bytes_sent_.load();
  result.net.bytes_delivered = net_bytes_delivered_.load();
  result.net.decode_errors = net_decode_errors_.load();
  return result;
}

}  // namespace

RtResult Cluster::run(const bnb::IProblemModel& model, const RtConfig& config) {
  RtCluster cluster(model, config);
  return cluster.run();
}

}  // namespace ftbb::rt
