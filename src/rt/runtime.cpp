#include "rt/runtime.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <variant>

#include "core/messages.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ftbb::rt {

namespace {

using Clock = std::chrono::steady_clock;

struct TimerFire {
  core::TimerKind kind;
  std::uint64_t gen;
};
struct Crash {};
struct Poison {};
using Event = std::variant<core::Message, TimerFire, Crash, Poison>;

/// Unbounded MPSC mailbox; one consumer (the worker thread).
class Mailbox {
 public:
  void push(Event e) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(e));
    }
    cv_.notify_one();
  }

  Event pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return !queue_.empty(); });
    Event e = std::move(queue_.front());
    queue_.pop_front();
    return e;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Event> queue_;
};

class RtCluster;

/// Time-ordered delivery service: messages (with latency), timers, and
/// crash injections all flow through one background thread.
class DeliveryService {
 public:
  explicit DeliveryService(RtCluster* cluster) : cluster_(cluster) {}

  void start() { thread_ = std::thread([this] { loop(); }); }

  void schedule(double at_wall, core::NodeId target, Event e) {
    {
      std::lock_guard lock(mutex_);
      queue_.push(Item{at_wall, next_seq_++, target, std::move(e)});
    }
    cv_.notify_one();
  }

  void stop() {
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_one();
    if (thread_.joinable()) thread_.join();
  }

 private:
  struct Item {
    double at;
    std::uint64_t seq;
    core::NodeId target;
    mutable Event event;  // moved out at dispatch; priority_queue top is const

    bool operator>(const Item& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  void loop();

  RtCluster* cluster_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::thread thread_;
};

class WorkerHost;

class RtCluster {
 public:
  RtCluster(const bnb::IProblemModel& model, const RtConfig& config);

  RtResult run();

  [[nodiscard]] double now_wall() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void deliver(core::NodeId target, Event e);
  void worker_halted();
  void worker_crashed();

  const bnb::IProblemModel& model_;
  RtConfig config_;
  Clock::time_point start_;
  DeliveryService delivery_;
  std::vector<std::unique_ptr<WorkerHost>> hosts_;
  std::vector<std::vector<core::NodeId>> peers_;

  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::uint32_t live_count_ = 0;
  std::uint32_t live_halted_ = 0;
  std::uint32_t crashes_pending_ = 0;

  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> lost_{0};
};

/// Per-worker thread + IWorkerEnv adapter.
class WorkerHost final : public core::IWorkerEnv {
 public:
  WorkerHost(RtCluster* cluster, core::NodeId id, std::uint64_t seed)
      : cluster_(cluster),
        id_(id),
        rng_(seed),
        net_rng_(support::mix64(seed, 0x6e6574)),
        worker_(id, &cluster->model_, cluster->config_.worker, this) {}

  void start() {
    thread_ = std::thread([this] { thread_main(); });
  }
  void join() {
    if (thread_.joinable()) thread_.join();
  }

  Mailbox& mailbox() { return mailbox_; }
  core::BnbWorker& worker() { return worker_; }
  [[nodiscard]] bool crashed() const { return crashed_.load(); }

  // ---- core::IWorkerEnv (called from this worker's thread only) ----

  [[nodiscard]] double now() const override { return cluster_->now_wall(); }

  void send(core::NodeId to, core::Message msg) override {
    // Real wire crossing: encode, (maybe) lose, decode at the receiver.
    support::ByteWriter w;
    msg.encode(w);
    const std::size_t bytes = w.size();
    worker_.stats().msgs_sent++;
    worker_.stats().bytes_sent += bytes;
    if (cluster_->config_.net_loss_prob > 0.0 &&
        net_rng_.chance(cluster_->config_.net_loss_prob)) {
      cluster_->lost_.fetch_add(1);
      return;
    }
    support::ByteReader r(w.data());
    core::Message decoded = core::Message::decode(r);
    const double delay = cluster_->config_.net_latency_fixed +
                         cluster_->config_.net_latency_per_byte *
                             static_cast<double>(bytes);
    cluster_->delivery_.schedule(cluster_->now_wall() + delay, to,
                                 Event{std::move(decoded)});
  }

  void set_timer(core::TimerKind kind, double delay, std::uint64_t gen) override {
    cluster_->delivery_.schedule(cluster_->now_wall() + delay, id_,
                                 Event{TimerFire{kind, gen}});
  }

  void charge(core::CostKind kind, double seconds) override {
    if (seconds <= 0.0) return;
    worker_.stats().time[static_cast<int>(kind)] += seconds;
    if (kind == core::CostKind::kBB && cluster_->config_.time_scale > 0.0) {
      // Emulate the computation (model costs are virtual seconds).
      std::this_thread::sleep_for(std::chrono::duration<double>(
          seconds * cluster_->config_.time_scale));
    }
  }

  support::Rng& rng() override { return rng_; }

  [[nodiscard]] const std::vector<core::NodeId>& peers() const override {
    return cluster_->peers_[id_];
  }

  void set_wait_hint(core::WaitHint hint) override { (void)hint; }

  void notify_halted() override { cluster_->worker_halted(); }

 private:
  void thread_main() {
    worker_.on_start(id_ == 0);
    while (true) {
      Event e = mailbox_.pop();
      if (std::holds_alternative<Poison>(e)) break;
      if (std::holds_alternative<Crash>(e)) {
        crashed_.store(true);
        cluster_->worker_crashed();
        break;
      }
      if (crashed_.load()) break;
      if (std::holds_alternative<core::Message>(e)) {
        core::Message& msg = std::get<core::Message>(e);
        if (!worker_.halted()) {
          worker_.stats().msgs_received++;
          worker_.stats().bytes_received += msg.wire_size();
          cluster_->delivered_.fetch_add(1);
          worker_.on_message(msg);
        }
      } else {
        const TimerFire& fire = std::get<TimerFire>(e);
        worker_.on_timer(fire.kind, fire.gen);
      }
    }
  }

  RtCluster* cluster_;
  core::NodeId id_;
  support::Rng rng_;
  support::Rng net_rng_;
  core::BnbWorker worker_;
  Mailbox mailbox_;
  std::thread thread_;
  std::atomic<bool> crashed_{false};
};

void DeliveryService::loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    if (stopping_) return;
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      continue;
    }
    const double now = cluster_->now_wall();
    const Item& top = queue_.top();
    if (top.at <= now) {
      const core::NodeId target = top.target;
      Event e = std::move(top.event);
      queue_.pop();
      lock.unlock();
      cluster_->deliver(target, std::move(e));
      lock.lock();
      continue;
    }
    cv_.wait_for(lock, std::chrono::duration<double>(top.at - now));
  }
}

RtCluster::RtCluster(const bnb::IProblemModel& model, const RtConfig& config)
    : model_(model), config_(config), delivery_(this) {
  FTBB_CHECK(config_.workers >= 1);
  support::Rng master(config_.seed);
  peers_.resize(config_.workers);
  for (core::NodeId id = 0; id < config_.workers; ++id) {
    for (core::NodeId other = 0; other < config_.workers; ++other) {
      if (other != id) peers_[id].push_back(other);
    }
    hosts_.push_back(std::make_unique<WorkerHost>(this, id, master.split(id).next()));
  }
  live_count_ = config_.workers;
}

void RtCluster::deliver(core::NodeId target, Event e) {
  hosts_[target]->mailbox().push(std::move(e));
}

void RtCluster::worker_halted() {
  {
    std::lock_guard lock(done_mutex_);
    ++live_halted_;
  }
  done_cv_.notify_one();
}

void RtCluster::worker_crashed() {
  {
    std::lock_guard lock(done_mutex_);
    --live_count_;
    --crashes_pending_;
  }
  done_cv_.notify_one();
}

RtResult RtCluster::run() {
  start_ = Clock::now();
  delivery_.start();
  std::vector<bool> crash_seen(config_.workers, false);
  for (const auto& [node, when] : config_.crashes) {
    FTBB_CHECK(node < config_.workers);
    if (crash_seen[node]) continue;  // a second Crash would never be consumed
    crash_seen[node] = true;
    ++crashes_pending_;
    delivery_.schedule(when, node, Event{Crash{}});
  }
  for (auto& host : hosts_) host->start();

  RtResult result;
  {
    // A fast computation must not finish out from under a pending crash
    // injection: the Poison pill would reach the mailbox before the Crash
    // event and the configured fault would silently never happen.
    std::unique_lock lock(done_mutex_);
    result.timed_out = !done_cv_.wait_for(
        lock, std::chrono::duration<double>(config_.wall_timeout),
        [this] { return live_halted_ >= live_count_ && crashes_pending_ == 0; });
  }
  result.wall_seconds = now_wall();
  // Shut everything down: poison pills unblock worker threads.
  for (core::NodeId id = 0; id < config_.workers; ++id) {
    hosts_[id]->mailbox().push(Event{Poison{}});
  }
  for (auto& host : hosts_) host->join();
  delivery_.stop();

  std::uint32_t live = 0;
  std::uint32_t halted = 0;
  for (auto& host : hosts_) {
    result.workers.push_back(host->worker().stats());
    result.crashed.push_back(host->crashed());
    const bool worker_halted = host->worker().halted();
    // A worker killed only *after* it detected termination completed its
    // part of the computation: the injection is honored (crashed above),
    // but it must not retroactively turn a successful run into a failed
    // one, so its halt and incumbent still count.
    if (!host->crashed() || worker_halted) {
      ++live;
      if (worker_halted) {
        ++halted;
        if (host->worker().incumbent() < result.solution) {
          result.solution = host->worker().incumbent();
          result.solution_found = true;
        }
      }
    }
  }
  result.all_live_halted = live > 0 && live == halted;
  result.messages_delivered = delivered_.load();
  result.messages_lost = lost_.load();
  return result;
}

}  // namespace

RtResult Cluster::run(const bnb::IProblemModel& model, const RtConfig& config) {
  RtCluster cluster(model, config);
  return cluster.run();
}

}  // namespace ftbb::rt
