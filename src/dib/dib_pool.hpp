// Indexed task pool for the DIB baseline.
//
// The seed implementation kept DIB's active tasks in a flat std::vector and
// paid a full O(n) scan per pop (deepest-first pick), per donation (the
// shallowest task is handed away), and per incumbent absorption (every task
// with bound >= incumbent is eliminated — and DIB absorbs an incumbent from
// *every* message it handles). This pool keeps the same dense array as the
// structure of record — positions evolve exactly like the seed vector:
// push_back appends, pop/donate remove by swap-with-back, elimination
// compacts stably — because the visit order of eliminated tasks is
// observable through per-job accounting (node_finished / check_job
// cascades). Two incremental ordered indexes locate candidates instead of
// scanning:
//
//   * select index, keyed (depth desc, code asc, seq) — pop_best() finds the
//     deepest/lexicographically-first task in O(log n); full (depth, code)
//     ties resolve to the lowest array position, exactly the seed's
//     first-index-wins linear scan;
//   * bound index, keyed (bound asc, seq) — prune_at_least() locates the
//     eliminated set in O(log n + victims); a no-op prune (the common case:
//     an absorbed incumbent that eliminates nothing) never scans.
//
// take_shallowest() walks the select index's min-depth tail and picks the
// lowest array position among that depth — O(log n + ties); donations are
// per-work-request, far off DIB's hot path.
//
// Observational identity with the seed linear pool (pop order, donation
// choice, elimination visit order) is asserted operation-for-operation by
// tests/dib_pool_diff_test.cpp against a verbatim copy of the seed logic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "bnb/problem.hpp"

namespace ftbb::dib {

/// One pool entry: a subproblem and the local job it belongs to.
struct Task {
  bnb::Subproblem sub;
  std::uint32_t job = 0;
};

class DibPool {
 public:
  DibPool() = default;
  DibPool(const DibPool&) = delete;
  DibPool& operator=(const DibPool&) = delete;

  void push(Task task);
  [[nodiscard]] bool empty() const { return slots_.empty(); }
  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Removes and returns the task the DIB expansion loop selects: greatest
  /// depth, then lexicographically smallest code, then (for exact duplicate
  /// tasks) the lowest array position — the seed scan's first-index-wins.
  Task pop_best();

  /// Removes and returns the donation pick: smallest depth, lowest array
  /// position among equal depths (code is NOT compared — the seed scan
  /// improved on strict depth decrease only).
  Task take_shallowest();

  /// Eliminates every task with bound >= `threshold`, visiting victims in
  /// ascending array order (the seed's stable left-to-right sweep) and
  /// compacting survivors stably. `on_victim` must not mutate the pool.
  void prune_at_least(double threshold,
                      const std::function<void(const Task&)>& on_victim);

  void clear();

 private:
  struct Entry {
    Task task;
    std::size_t pos = 0;    // current array position
    std::uint64_t seq = 0;  // insertion order; totalizes the index orders
    bool doomed = false;    // marked during a prune sweep
  };

  struct SelectLess {
    bool operator()(const Entry* a, const Entry* b) const;
  };
  struct BoundLess {
    using is_transparent = void;
    bool operator()(const Entry* a, const Entry* b) const;
    bool operator()(const Entry* a, double bound) const;
    bool operator()(double bound, const Entry* b) const;
  };

  /// Swap-with-back removal, exactly the seed vector's discipline.
  Task remove_at(std::size_t pos);
  void index_erase(Entry* entry);

  std::vector<std::unique_ptr<Entry>> slots_;
  std::set<Entry*, SelectLess> select_index_;
  std::set<Entry*, BoundLess> bound_index_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ftbb::dib
