#include "dib/dib.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "core/frame.hpp"
#include "core/messages.hpp"
#include "core/path_code.hpp"
#include "dib/dib_pool.hpp"
#include "sim/kernel.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ftbb::dib {

namespace {

using core::PathCode;

// Honest wire pricing through the shared frame codec: each DIB exchange is
// sized as the Message-shaped frame it corresponds to. DIB has no report
// streams, so every frame is stateless (nullptr delta state).
std::size_t typed_bytes(const core::FrameCodec& codec, core::MsgType type) {
  core::Message m;
  m.type = type;
  return codec.frame_size(m, nullptr);
}

/// Donation: a one-problem kWorkGrant.
std::size_t donate_bytes(const core::FrameCodec& codec, const bnb::Subproblem& sub) {
  core::Message m;
  m.type = core::MsgType::kWorkGrant;
  m.problems.push_back(sub);
  return codec.frame_size(m, nullptr);
}

/// Completion report back to the donor: a one-code kWorkReport.
std::size_t completion_bytes(const core::FrameCodec& codec, const PathCode& code) {
  core::Message m;
  m.type = core::MsgType::kWorkReport;
  m.codes.push_back(code);
  return codec.frame_size(m, nullptr);
}

/// Conclusion broadcast from the root machine: a kRootReport.
std::size_t conclude_bytes(const core::FrameCodec& codec) {
  core::Message m;
  m.type = core::MsgType::kRootReport;
  m.codes.push_back(PathCode::root());
  return codec.frame_size(m, nullptr);
}

struct Job {
  PathCode code;
  std::int32_t donor = -1;          // machine that donated it (-1: the root job)
  std::uint64_t donation_id = 0;    // donor-side ledger key
  std::uint64_t open_nodes = 0;     // nodes of this job still to process locally
  std::uint64_t unacked = 0;        // donations out of this job awaiting ack
  bool done = false;
};

struct Donation {
  Task task;
  std::uint32_t donee = 0;
  std::uint32_t job = 0;  // local job the task belongs to
  double sent_at = 0.0;
};

struct Machine;

struct Sim {
  const bnb::IProblemModel& model;
  DibConfig cfg;
  sim::Kernel kernel;
  std::unique_ptr<sim::Network> net;
  std::vector<std::unique_ptr<Machine>> machines;
  double time_limit;

  bool concluded = false;       // written by machine 0's context only
  double concluded_at = 0.0;
  double best = bnb::kInfinity;
  bool best_found = false;

  core::FrameCodec codec;

  Sim(const bnb::IProblemModel& m, const DibConfig& c, double limit,
      const sim::ExecutorConfig& ex)
      : model(m), cfg(c), kernel(ex), time_limit(limit), codec(c.wire) {}
};

struct Machine {
  Sim* sim;
  std::uint32_t id;
  support::Rng rng;
  bool alive = true;
  bool busy = false;
  bool stopped = false;  // computation concluded

  DibPool pool;
  std::vector<Job> jobs;
  std::unordered_map<std::uint64_t, Donation> ledger;
  std::uint64_t next_donation_id = 1;
  double incumbent = bnb::kInfinity;
  bool request_outstanding = false;
  std::uint64_t request_gen = 0;
  std::uint64_t expanded = 0;
  /// Machine-context-only bookkeeping, merged when the run ends.
  std::unordered_map<PathCode, std::uint32_t, core::PathCodeHash> expansions;
  std::uint64_t donations_made = 0;
  std::uint64_t donation_redos = 0;
  /// Incarnation counter: a crashed incarnation's expansion continuation and
  /// audit chain must not touch the replacement's (emptied) job list.
  std::uint64_t epoch = 0;

  Machine(Sim* s, std::uint32_t i, std::uint64_t seed) : sim(s), id(i), rng(seed) {}

  [[nodiscard]] bool running() const { return alive && !stopped; }

  /// Fresh restart of a crashed machine (fault-injection hook). Everything
  /// local is lost — including the ledger, so work this machine donated
  /// onward is redone by ITS donor, DIB's cascading-redo weakness.
  void revive() {
    if (alive || stopped || sim->concluded) return;
    ++epoch;
    alive = true;
    busy = false;
    request_outstanding = false;
    pool.clear();
    jobs.clear();
    ledger.clear();
    incumbent = bnb::kInfinity;
    schedule_step();
    audit();
  }

  void absorb(double best) {
    if (best < incumbent) {
      incumbent = best;
      if (sim->cfg.enable_elimination) prune_pool();
    }
  }

  /// Eliminated pool entries leave their job's accounting immediately.
  /// Victims are visited in array order, exactly the seed linear sweep (the
  /// check_job cascade order is observable); a prune that eliminates
  /// nothing — the common case per absorbed incumbent — costs O(log n).
  void prune_pool() {
    pool.prune_at_least(incumbent,
                        [this](const Task& task) { node_finished(task.job); });
  }

  void node_finished(std::uint32_t job_index) {
    Job& job = jobs[job_index];
    FTBB_CHECK(job.open_nodes > 0);
    --job.open_nodes;
    check_job(job_index);
  }

  void check_job(std::uint32_t job_index) {
    Job& job = jobs[job_index];
    if (job.done || job.open_nodes > 0 || job.unacked > 0) return;
    job.done = true;
    if (job.donor < 0) {
      // The root job: the whole computation is finished (only machine 0 can
      // reach this). Broadcast the conclusion.
      sim->concluded = true;
      sim->concluded_at = sim->kernel.now();
      sim->best = incumbent;
      sim->best_found = incumbent < bnb::kInfinity;
      for (auto& m : sim->machines) {
        if (m->id != id) {
          sim->net->send(id, m->id, conclude_bytes(sim->codec),
                         sim->kernel.now(), [mp = m.get()] {
            mp->stopped = true;
          });
        }
      }
      stopped = true;
      return;
    }
    // Report completion to the machine the problem came from.
    const auto donor = static_cast<std::uint32_t>(job.donor);
    Machine* target = sim->machines[donor].get();
    sim->net->send(id, donor, completion_bytes(sim->codec, job.code),
                   sim->kernel.now(),
                   [target, donation_id = job.donation_id, best = incumbent] {
                     target->on_completion_report(donation_id, best);
                   });
  }

  void on_completion_report(std::uint64_t donation_id, double best) {
    if (!running()) return;
    absorb(best);
    const auto it = ledger.find(donation_id);
    if (it == ledger.end()) return;  // already presumed failed and redone
    const std::uint32_t job_index = it->second.job;
    ledger.erase(it);
    Job& job = jobs[job_index];
    FTBB_CHECK(job.unacked > 0);
    --job.unacked;
    check_job(job_index);
    schedule_step();
  }

  void schedule_step() {
    if (!running() || busy || pool.empty()) {
      if (running() && !busy && pool.empty()) seek_work();
      return;
    }
    busy = true;
    Task task = pool.pop_best();
    if (sim->cfg.enable_elimination && task.sub.bound >= incumbent) {
      node_finished(task.job);
      busy = false;
      schedule_step();
      return;
    }
    const bnb::NodeEval eval = sim->model.eval(task.sub.code);
    ++expanded;
    ++expansions[task.sub.code];
    sim->kernel.after(eval.cost, static_cast<sim::OwnerId>(id),
                      [this, task = std::move(task), eval, e = epoch] {
      if (e != epoch) return;  // expansion begun by a crashed incarnation
      busy = false;
      if (!running()) return;
      apply_expansion(task, eval);
      schedule_step();
    });
  }

  void apply_expansion(const Task& task, const bnb::NodeEval& eval) {
    if (eval.feasible_leaf) {
      if (eval.value < incumbent) incumbent = eval.value;
      node_finished(task.job);
      return;
    }
    std::uint64_t pooled = 0;
    for (const bnb::ChildOut& child : eval.children) {
      if (child.infeasible) continue;
      if (sim->cfg.enable_elimination && child.bound >= incumbent) continue;
      pool.push(Task{
          bnb::Subproblem{task.sub.code.child(child.var, child.bit != 0), child.bound},
          task.job});
      ++pooled;
    }
    Job& job = jobs[task.job];
    job.open_nodes += pooled;
    node_finished(task.job);
  }

  void seek_work() {
    if (!running() || request_outstanding || !pool.empty()) return;
    if (sim->machines.size() < 2) return;
    std::uint32_t target = id;
    while (target == id) {
      target = static_cast<std::uint32_t>(rng.pick(sim->machines.size()));
    }
    request_outstanding = true;
    const std::uint64_t gen = ++request_gen;
    Machine* peer = sim->machines[target].get();
    sim->net->send(id, target,
                   typed_bytes(sim->codec, core::MsgType::kWorkRequest),
                   sim->kernel.now(),
                   [peer, from = id, best = incumbent] {
                     peer->on_work_request(from, best);
                   });
    const auto owner = static_cast<sim::OwnerId>(id);
    sim->kernel.after(sim->cfg.work_request_timeout, owner, [this, gen, owner] {
      if (!running() || !request_outstanding || gen != request_gen) return;
      request_outstanding = false;
      // Back off briefly; idle machines retry forever (DIB has no
      // complement — only donors can regenerate lost work).
      sim->kernel.after(sim->cfg.request_backoff, owner, [this] { seek_work(); });
    });
  }

  void on_work_request(std::uint32_t from, double best) {
    if (!running()) return;
    absorb(best);
    Machine* requester = sim->machines[from].get();
    if (pool.size() >= sim->cfg.min_pool_to_grant) {
      // Donate the shallowest task (largest subtree).
      Task task = pool.take_shallowest();
      const std::uint64_t donation_id = next_donation_id++;
      Job& job = jobs[task.job];
      FTBB_CHECK(job.open_nodes > 0);
      --job.open_nodes;  // the node now lives in the ledger, not the pool
      ++job.unacked;
      ++donations_made;
      ledger.emplace(donation_id,
                     Donation{task, from, task.job, sim->kernel.now()});
      sim->net->send(id, from, donate_bytes(sim->codec, task.sub),
                     sim->kernel.now(),
                     [requester, sub = task.sub, donation_id, donor = id,
                      best = incumbent] {
                       requester->on_grant(sub, donor, donation_id, best);
                     });
    } else {
      sim->net->send(id, from,
                     typed_bytes(sim->codec, core::MsgType::kWorkDeny),
                     sim->kernel.now(),
                     [requester, best = incumbent] { requester->on_deny(best); });
    }
  }

  void on_grant(const bnb::Subproblem& sub, std::uint32_t donor,
                std::uint64_t donation_id, double best) {
    if (!running()) return;
    absorb(best);
    request_outstanding = false;
    jobs.push_back(Job{sub.code, static_cast<std::int32_t>(donor), donation_id, 1,
                       0, false});
    pool.push(Task{sub, static_cast<std::uint32_t>(jobs.size() - 1)});
    schedule_step();
  }

  void on_deny(double best) {
    if (!running()) return;
    absorb(best);
    request_outstanding = false;
    sim->kernel.after(sim->cfg.request_backoff, static_cast<sim::OwnerId>(id),
                      [this] { seek_work(); });
  }

  /// Periodic failure-recovery audit: donations silent for too long are
  /// presumed lost and redone locally ("each machine can determine whether
  /// the work for which it is responsible is still unsolved, and can redo
  /// that work in the case of failure").
  void audit() {
    if (!running()) return;
    const double now = sim->kernel.now();
    std::vector<std::uint64_t> expired;
    for (const auto& [donation_id, donation] : ledger) {
      if (now - donation.sent_at > sim->cfg.donation_timeout) {
        expired.push_back(donation_id);
      }
    }
    for (const std::uint64_t donation_id : expired) {
      Donation donation = ledger.at(donation_id);
      ledger.erase(donation_id);
      ++donation_redos;
      Job& job = jobs[donation.job];
      FTBB_CHECK(job.unacked > 0);
      --job.unacked;
      ++job.open_nodes;
      pool.push(donation.task);
    }
    if (!expired.empty()) schedule_step();
    sim->kernel.after(sim->cfg.audit_interval, static_cast<sim::OwnerId>(id),
                      [this, e = epoch] {
                        // Each incarnation runs its own audit chain; a revive
                        // starts a new one.
                        if (e == epoch) audit();
                      });
  }
};

}  // namespace

DibResult DibSim::run(const bnb::IProblemModel& model, std::uint32_t machines,
                      const DibConfig& config, const sim::NetConfig& net,
                      const std::vector<DibCrash>& crashes, double time_limit,
                      std::uint64_t seed) {
  DibFaults faults;
  faults.crashes = crashes;
  return run_with_faults(model, machines, config, net, faults, time_limit, seed);
}

DibResult DibSim::run_with_faults(const bnb::IProblemModel& model,
                                  std::uint32_t machines, const DibConfig& config,
                                  const sim::NetConfig& net, const DibFaults& faults,
                                  double time_limit, std::uint64_t seed) {
  FTBB_CHECK(machines >= 1);
  FTBB_CHECK_MSG(faults.join_times.empty() || faults.join_times.size() == machines,
                 "join_times must be empty or one entry per machine");
  FTBB_CHECK_MSG(faults.join_times.empty() || faults.join_times[0] == 0.0,
                 "machine 0 holds the root job and must join at time 0");
  const sim::ExecutorConfig ex = sim::make_executor_config(
      net, machines, sim::resolve_sim_threads(config.sim_threads));
  Sim sim(model, config, time_limit, ex);
  support::Rng master(seed);
  sim.net = std::make_unique<sim::Network>(&sim.kernel, net, master.split(0x646962),
                                           machines);
  for (const ftbb::sim::Partition& p : faults.partitions) sim.net->add_partition(p);
  for (std::uint32_t i = 0; i < machines; ++i) {
    sim.machines.push_back(std::make_unique<Machine>(&sim, i, master.split(i).next()));
  }
  // Machine 0 holds the root of the responsibility hierarchy.
  Machine& root = *sim.machines[0];
  root.jobs.push_back(Job{PathCode::root(), -1, 0, 1, 0, false});
  root.pool.push(Task{bnb::Subproblem{PathCode::root(), model.root_bound()}, 0});
  for (std::uint32_t i = 0; i < machines; ++i) {
    const double when = faults.join_times.empty() ? 0.0 : faults.join_times[i];
    if (when >= time_limit) continue;  // never joins within this run
    sim.kernel.at(when, static_cast<sim::OwnerId>(i),
                  [mp = sim.machines[i].get()] {
                    mp->schedule_step();
                    mp->audit();
                  });
  }
  for (const DibCrash& crash : faults.crashes) {
    FTBB_CHECK(crash.machine < machines);
    sim.kernel.at(crash.time, [&sim, crash] {
      sim.machines[crash.machine]->alive = false;
    });
  }
  for (const DibCrash& rejoin : faults.rejoins) {
    FTBB_CHECK(rejoin.machine < machines);
    sim.kernel.at(rejoin.time, [&sim, rejoin] {
      sim.machines[rejoin.machine]->revive();
    });
  }
  const auto kr = sim.kernel.run(time_limit);

  DibResult result;
  result.completed = sim.concluded;
  result.solution = sim.best;
  result.solution_found = sim.best_found;
  result.makespan = sim.concluded ? sim.concluded_at : std::min(sim.kernel.now(), time_limit);
  result.hit_time_limit = kr.hit_time_limit;
  // Merge per-machine bookkeeping; totals are interleaving-independent.
  std::unordered_map<PathCode, std::uint32_t, core::PathCodeHash> merged;
  for (const auto& m : sim.machines) {
    result.total_expanded += m->expanded;
    result.donations += m->donations_made;
    result.donation_redos += m->donation_redos;
    for (const auto& [code, count] : m->expansions) merged[code] += count;
  }
  result.unique_expanded = merged.size();
  result.redundant_expansions = result.total_expanded - result.unique_expanded;
  result.net = sim.net->stats();
  for (const auto& m : sim.machines) result.expanded_per_machine.push_back(m->expanded);
  // Coarse work-mix ledger from the already-deterministic aggregates
  // (donations map onto the grant counters).
  result.work[core::WorkItem::kExpansions] = result.total_expanded;
  result.work[core::WorkItem::kRedundantExpansions] = result.redundant_expansions;
  result.work[core::WorkItem::kGrantsGiven] = result.donations;
  result.work[core::WorkItem::kRecoveries] = result.donation_redos;
  result.work[core::WorkItem::kMsgsSent] = result.net.messages_sent;
  result.work[core::WorkItem::kMsgsReceived] = result.net.messages_delivered;
  result.work[core::WorkItem::kWireBytesSent] = result.net.bytes_sent;
  result.work[core::WorkItem::kWireBytesReceived] = result.net.bytes_delivered;
  return result;
}

}  // namespace ftbb::dib
