// DIB-style baseline: Distributed Implementation of Backtracking
// (Finkel & Manber 1987), the only prior fully decentralized fault-tolerant
// B&B the paper compares against (Sections 3 and 5.5).
//
// Mechanism reproduced here: work moves between machines as *donations*;
// each machine remembers, for every problem it is responsible for, which
// machine it gave it to ("each machine memorizes the problems for which it
// is responsible, as well as the machines to which it sent problems"). The
// completion of a problem is reported to the machine the problem came from.
// A donor that concludes a donated problem is still unsolved (here: a
// donation timeout — the failure-suspicion knob) redoes that work itself.
//
// The two structural weaknesses the paper points out are faithfully present:
//   * the machine holding the root of the responsibility hierarchy must
//     survive — if it fails, termination can never be concluded;
//   * a failed machine loses not only its local unreported work but also the
//     bookkeeping for problems it donated onward, so its donor must redo the
//     *entire* job, including parts third machines already finished.
//
// Timing is modeled more coarsely than for the main algorithm (expansion
// busy periods only); the DIB comparison in the paper is qualitative.
#pragma once

#include <cstdint>
#include <vector>

#include "bnb/problem.hpp"
#include "core/cost_model.hpp"
#include "core/frame.hpp"
#include "sim/network.hpp"

namespace ftbb::dib {

struct DibConfig {
  double work_request_timeout = 0.05;
  double request_backoff = 0.02;
  double audit_interval = 0.5;    // how often donors re-check donations
  double donation_timeout = 2.0;  // silence after which a donee is presumed dead
  std::uint32_t min_pool_to_grant = 2;
  bool enable_elimination = true;
  /// Simulation dispatch threads (> 1 shards machine event streams; results
  /// stay bit-identical); 0 consults FTBB_SIM_THREADS, else sequential.
  std::uint32_t sim_threads = 0;
  /// Wire frame version used to price DIB's control traffic (sized as the
  /// Message-shaped frame each exchange would be; no report streams here).
  core::FrameVersion wire = core::FrameVersion::kV1;
};

struct DibCrash {
  std::uint32_t machine = 0;
  double time = 0.0;
};

/// Full fault-injection schedule for a DIB run. Machine ids are 0-based;
/// machine 0 holds the root of the responsibility hierarchy.
struct DibFaults {
  std::vector<DibCrash> crashes;
  /// Machine restarts: the crashed machine re-enters empty (pool, job list,
  /// and donation ledger lost — its donor still redoes the donated work,
  /// DIB's structural weakness). Reviving machine 0 cannot restore the root
  /// job, faithfully leaving termination unconcludable.
  std::vector<DibCrash> rejoins;
  std::vector<sim::Partition> partitions;
  /// Empty, or one entry per machine: when it starts working/requesting.
  std::vector<double> join_times;
};

struct DibResult {
  bool completed = false;  // root machine concluded the computation
  bool solution_found = false;
  double solution = bnb::kInfinity;
  double makespan = 0.0;  // time of the root machine's conclusion (or limit)
  bool hit_time_limit = false;
  std::uint64_t total_expanded = 0;
  std::uint64_t unique_expanded = 0;
  std::uint64_t redundant_expansions = 0;
  std::uint64_t donations = 0;
  std::uint64_t donation_redos = 0;  // audit decided to redo a donation
  sim::Network::Stats net;
  std::vector<std::uint64_t> expanded_per_machine;
  /// Coarse work-mix ledger (expansions, redundancy, donations as grants,
  /// wire traffic); finer WorkItem entries stay zero by design.
  core::WorkLedger work;
};

class DibSim {
 public:
  static DibResult run(const bnb::IProblemModel& model, std::uint32_t machines,
                       const DibConfig& config, const sim::NetConfig& net,
                       const std::vector<DibCrash>& crashes, double time_limit,
                       std::uint64_t seed);

  /// Full fault-injection entry point (crashes, rejoins, partitions, late
  /// joins); windowed loss arrives through `net.loss_rules`.
  static DibResult run_with_faults(const bnb::IProblemModel& model,
                                   std::uint32_t machines, const DibConfig& config,
                                   const sim::NetConfig& net, const DibFaults& faults,
                                   double time_limit, std::uint64_t seed);
};

}  // namespace ftbb::dib
