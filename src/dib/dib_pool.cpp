#include "dib/dib_pool.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ftbb::dib {

bool DibPool::SelectLess::operator()(const Entry* a, const Entry* b) const {
  const std::size_t da = a->task.sub.code.depth();
  const std::size_t db = b->task.sub.code.depth();
  if (da != db) return da > db;  // deepest first
  if (a->task.sub.code != b->task.sub.code) {
    return a->task.sub.code < b->task.sub.code;
  }
  return a->seq < b->seq;
}

bool DibPool::BoundLess::operator()(const Entry* a, const Entry* b) const {
  if (a->task.sub.bound != b->task.sub.bound) {
    return a->task.sub.bound < b->task.sub.bound;
  }
  return a->seq < b->seq;
}

bool DibPool::BoundLess::operator()(const Entry* a, double bound) const {
  return a->task.sub.bound < bound;
}

bool DibPool::BoundLess::operator()(double bound, const Entry* b) const {
  return bound < b->task.sub.bound;
}

void DibPool::push(Task task) {
  auto entry = std::make_unique<Entry>();
  entry->task = std::move(task);
  entry->pos = slots_.size();
  entry->seq = next_seq_++;
  select_index_.insert(entry.get());
  bound_index_.insert(entry.get());
  slots_.push_back(std::move(entry));
}

void DibPool::index_erase(Entry* entry) {
  select_index_.erase(entry);
  bound_index_.erase(entry);
}

Task DibPool::remove_at(std::size_t pos) {
  Entry* victim = slots_[pos].get();
  index_erase(victim);
  Task out = std::move(victim->task);
  if (pos + 1 != slots_.size()) {
    slots_[pos] = std::move(slots_.back());
    slots_[pos]->pos = pos;
  }
  slots_.pop_back();
  return out;
}

Task DibPool::pop_best() {
  FTBB_CHECK(!slots_.empty());
  // The head of the select index is the (max depth, min code) class; among
  // exact duplicates the seed scan kept the first array index.
  auto it = select_index_.begin();
  Entry* best = *it;
  for (++it; it != select_index_.end(); ++it) {
    Entry* e = *it;
    if (e->task.sub.code.depth() != best->task.sub.code.depth() ||
        e->task.sub.code != best->task.sub.code) {
      break;
    }
    if (e->pos < best->pos) best = e;
  }
  return remove_at(best->pos);
}

Task DibPool::take_shallowest() {
  FTBB_CHECK(!slots_.empty());
  // The select index tail holds the minimum depth; the seed donation scan
  // kept the first array index among that depth (codes not compared).
  auto rit = select_index_.rbegin();
  const std::size_t min_depth = (*rit)->task.sub.code.depth();
  Entry* pick = *rit;
  for (++rit; rit != select_index_.rend(); ++rit) {
    Entry* e = *rit;
    if (e->task.sub.code.depth() != min_depth) break;
    if (e->pos < pick->pos) pick = e;
  }
  return remove_at(pick->pos);
}

void DibPool::prune_at_least(double threshold,
                             const std::function<void(const Task&)>& on_victim) {
  auto it = bound_index_.lower_bound(threshold);
  if (it == bound_index_.end()) return;  // nothing to eliminate: O(log n)
  std::size_t first = slots_.size();
  for (; it != bound_index_.end(); ++it) {
    Entry* e = *it;
    e->doomed = true;
    first = std::min(first, e->pos);
  }
  // The seed's stable left-to-right sweep: victims are visited in ascending
  // array order and survivors keep their relative order.
  std::size_t write = first;
  for (std::size_t read = first; read < slots_.size(); ++read) {
    Entry* e = slots_[read].get();
    if (e->doomed) {
      on_victim(e->task);
      index_erase(e);
      slots_[read].reset();
    } else {
      if (write != read) {
        slots_[write] = std::move(slots_[read]);
        slots_[write]->pos = write;
      }
      ++write;
    }
  }
  slots_.resize(write);
}

void DibPool::clear() {
  select_index_.clear();
  bound_index_.clear();
  slots_.clear();
}

}  // namespace ftbb::dib
