// Wire messages of the decentralized B&B protocol (paper Section 5).
//
// The best-known solution is embedded in every message type — the paper's
// information-sharing rule ("circulating the best-known solution among
// processes, embedded in the most frequently sent messages").
//
// All messages have an honest binary encoding; the simulator charges network
// latency and handling CPU from the encoded size, and the real-time runtime
// actually ships the bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bnb/problem.hpp"
#include "core/path_code.hpp"
#include "support/bytes.hpp"

namespace ftbb::core {

using NodeId = std::uint32_t;

enum class MsgType : std::uint8_t {
  kWorkRequest = 1,  // idle member asks a random peer for problems
  kWorkGrant = 2,    // pool split shipped to the requester
  kWorkDeny = 3,     // receiver had too little work to share
  kWorkReport = 4,   // contracted list of freshly completed codes
  kTableGossip = 5,  // contracted full completion table (rare, anti-entropy)
  kRootReport = 6,   // termination: the root code, sent to all members
};

[[nodiscard]] const char* to_string(MsgType type);

struct Message {
  MsgType type = MsgType::kWorkRequest;
  NodeId from = 0;
  /// Piggybacked incumbent (minimization; +infinity when none known yet).
  double best_known = bnb::kInfinity;
  /// kWorkGrant payload.
  std::vector<bnb::Subproblem> problems;
  /// kWorkReport / kTableGossip / kRootReport payload.
  std::vector<PathCode> codes;
  /// Matches grants/denies to the request they answer (stale replies that
  /// arrive after the requester timed out are recognizable).
  std::uint64_t request_id = 0;
  /// On kWorkDeny: the sender has pool work of its own (it merely had too
  /// little to share). A busy deny proves the computation is advancing and
  /// feeds the receiver's progress tracking; an idle deny does not.
  bool busy = false;
  /// Sender-local report batch marker, monotone per incarnation: the worker
  /// stamps each kWorkReport / kTableGossip batch before fanning it out, so
  /// the v1 frame codec advances its per-sender delta state exactly once per
  /// batch even though the same batch is sent to m peers. Not part of the
  /// legacy wire encoding; the v1 frame carries the codec's own sequence.
  std::uint64_t report_seq = 0;

  /// Legacy (v0) flat encoding — the seed-era wire format, and the payload
  /// the kLegacy frame version ships unframed (see core/frame.hpp for v1).
  void encode(support::ByteWriter& w) const;
  /// With a tolerant reader, malformed input (truncation, hostile counts,
  /// unknown type) latches r.ok() == false instead of aborting; callers on
  /// a transport path must check it. A trusted reader aborts, as before.
  static Message decode(support::ByteReader& r);

  /// Exact legacy-encoded size in bytes — the L of the paper's
  /// 1.5 + 0.005*L ms latency model under the kLegacy frame version.
  /// Computed with a counting writer: no allocation per call.
  [[nodiscard]] std::size_t wire_size() const;

  [[nodiscard]] std::string summary() const;
};

}  // namespace ftbb::core
