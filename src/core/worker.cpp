#include "core/worker.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ftbb::core {

const char* to_string(CostKind kind) {
  switch (kind) {
    case CostKind::kBB:
      return "bb";
    case CostKind::kContraction:
      return "contraction";
    case CostKind::kComm:
      return "comm";
    case CostKind::kLoadBalance:
      return "lb";
    case CostKind::kIdle:
      return "idle";
  }
  return "?";
}

const char* to_string(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kRandom:
      return "random";
    case RecoveryPolicy::kDeepest:
      return "deepest";
    case RecoveryPolicy::kShallowest:
      return "shallowest";
    case RecoveryPolicy::kNearLastLocal:
      return "near-last-local";
  }
  return "?";
}

BnbWorker::BnbWorker(NodeId id, const bnb::IProblemModel* model, WorkerConfig config,
                     IWorkerEnv* env)
    : id_(id), model_(model), config_(config), env_(env), pool_(config.rule) {
  FTBB_CHECK(model_ != nullptr);
  FTBB_CHECK(env_ != nullptr);
  FTBB_CHECK(config_.report_fanout >= 1);
  FTBB_CHECK(config_.grant_divisor >= 1);
  controller_.configure(
      config_.cost_model, config_.work_request_timeout, config_.idle_backoff,
      config_.report_flush_interval, config_.report_batch,
      static_cast<double>(config_.report_fanout) *
          (config_.costs.send_fixed + config_.costs.recv_fixed));
}

void BnbWorker::on_start(bool with_root) {
  FTBB_CHECK_MSG(!started_, "worker started twice");
  started_ = true;
  note_progress();
  // Stagger the first table gossip so the anti-entropy traffic of a large
  // group does not synchronize.
  env_->set_timer(TimerKind::kTableGossip,
                  config_.table_gossip_interval * (0.5 + env_->rng().uniform()),
                  ++gossip_gen_);
  if (with_root) {
    pool_.push(bnb::Subproblem{PathCode::root(), model_->root_bound()});
    continue_work();
    return;
  }
  // Idle members pause briefly before their first work request; without the
  // stagger every member would hit the root holder in the same instant.
  backoff_armed_ = true;
  env_->set_wait_hint(WaitHint::kIdle);
  env_->set_timer(TimerKind::kBackoff, env_->rng().uniform(0.0, config_.initial_stagger),
                  ++backoff_gen_);
}

// ---------------------------------------------------------------------------
// Scheduling skeleton
// ---------------------------------------------------------------------------

void BnbWorker::continue_work() {
  if (halted_) return;
  if (maybe_terminate()) return;
  if (!pool_.empty()) {
    env_->set_wait_hint(WaitHint::kNone);
    schedule_step();
    return;
  }
  seek_work();
}

void BnbWorker::schedule_step() {
  if (step_scheduled_) return;
  step_scheduled_ = true;
  env_->set_timer(TimerKind::kStep, 0.0, ++step_gen_);
}

void BnbWorker::do_step() {
  if (pool_.empty()) {
    continue_work();
    return;
  }
  const bnb::Subproblem p = pool_.pop();
  if (config_.enable_elimination && p.bound >= incumbent_) {
    // Eliminate: the incumbent improved after insertion. A problem fathomed
    // by its bound is completed (paper Figure 2 semantics).
    ++stats_.eliminated;
    complete(p.code);
  } else if (table_.covered(p.code)) {
    // A work report proved this subproblem done elsewhere; drop it
    // ("interrupting the redundant work when information is updated").
    ++stats_.covered_skips;
  } else {
    expand(p);
  }
  continue_work();
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

void BnbWorker::expand(const bnb::Subproblem& p) {
  const bnb::NodeEval eval = model_->eval(p.code);
  env_->charge(CostKind::kBB, eval.cost);
  env_->note_expansion(p.code, eval.cost);
  observe_cost(eval.cost);
  controller_.observe(eval.cost);
  ++stats_.expanded;

  if (eval.feasible_leaf) {
    ++stats_.feasible_leaves;
    if (eval.value < incumbent_) {
      incumbent_ = eval.value;
      best_code_ = p.code;
      ++stats_.incumbent_updates;
      prune_pool_by_bound();
    }
    complete(p.code);
    return;
  }
  if (eval.children.empty()) {
    ++stats_.dead_ends;
    complete(p.code);
    return;
  }
  // The parent's completion is implied: once both child codes are in the
  // table, list contraction replaces them by the parent code.
  for (const bnb::ChildOut& child : eval.children) {
    const PathCode code = p.code.child(child.var, child.bit != 0);
    if (child.infeasible) {
      ++stats_.dead_ends;
      complete(code);
      continue;
    }
    if (config_.enable_elimination && child.bound >= incumbent_) {
      ++stats_.eliminated;
      complete(code);
      continue;
    }
    if (table_.covered(code)) {
      ++stats_.covered_skips;
      continue;
    }
    pool_.push(bnb::Subproblem{code, child.bound});
  }
}

void BnbWorker::complete(const PathCode& code) {
  ++stats_.completions;
  last_local_completion_ = code;
  env_->note_completion(code);
  const CodeSet::InsertResult r = table_.insert(code);
  note_contraction(1, static_cast<std::uint64_t>(r.nodes_walked + r.merges));
  env_->charge(CostKind::kContraction,
               config_.costs.contract_per_code +
                   config_.costs.contract_per_node * (r.nodes_walked + r.merges));
  if (!r.newly_covered) return;  // already known through reports
  // Remaining pool entries can only be covered by regions that grew since
  // their push; remember this one so the next covered sweep inspects it.
  if (!pool_.empty()) {
    if (pending_cover_hints_.size() < kMaxCoverHints) {
      pending_cover_hints_.push_back(code);
    } else {
      cover_hints_overflowed_ = true;
    }
  }
  note_progress();
  fresh_.push_back(code);
  if (fresh_.size() >= effective_report_batch()) {
    send_report();
  } else {
    arm_flush_timer();
  }
}

void BnbWorker::absorb_incumbent(double value) {
  if (value < incumbent_) {
    incumbent_ = value;
    ++stats_.incumbent_updates;
    prune_pool_by_bound();
  }
}

void BnbWorker::prune_pool_by_bound() {
  if (!config_.enable_elimination) return;
  const auto removed = pool_.prune_above(incumbent_);
  for (const bnb::Subproblem& p : removed) {
    ++stats_.eliminated;
    complete(p.code);
  }
}

void BnbWorker::prune_pool_covered(const std::vector<PathCode>& just_inserted) {
  const bool overflowed = cover_hints_overflowed_;
  cover_hints_overflowed_ = false;
  if (pool_.empty()) {
    pending_cover_hints_.clear();
    return;
  }
  if (!pool_.indexed() || overflowed) {
    // Small pool (or an abandoned hint record): one completion-trie walk
    // per entry beats materializing covering regions, and it is the
    // always-correct fallback when the hint record is incomplete.
    pending_cover_hints_.clear();
    const auto removed = pool_.remove_if(
        [this](const bnb::Subproblem& p) { return table_.covered(p.code); });
    stats_.covered_skips += removed.size();
    return;
  }
  // Map every hint to the maximal region the table contracted it into. A
  // covering code is always a prefix of the query, so each region is a
  // zero-copy view into the hint (or report code) it came from; the hints
  // and msg.codes outlive the sweep. Covering codes of one table form an
  // antichain, so after dedup each region is scanned at most once.
  cover_regions_.clear();
  cover_regions_.reserve(pending_cover_hints_.size() + just_inserted.size());
  const auto add_region = [this](const PathCode& c) {
    const std::optional<std::size_t> len = table_.covering_prefix_len(c);
    cover_regions_.push_back(c.view().prefix(len.value_or(c.depth())));
  };
  for (const PathCode& c : pending_cover_hints_) add_region(c);
  for (const PathCode& c : just_inserted) add_region(c);
  std::sort(cover_regions_.begin(), cover_regions_.end());
  cover_regions_.erase(std::unique(cover_regions_.begin(), cover_regions_.end()),
                       cover_regions_.end());
  const auto removed = pool_.remove_covered_by(
      std::span<const PathView>(cover_regions_));
  stats_.covered_skips += removed.size();
  pending_cover_hints_.clear();
}

// ---------------------------------------------------------------------------
// Work reports, gossip, termination
// ---------------------------------------------------------------------------

void BnbWorker::send_report() {
  if (fresh_.empty()) return;
  std::vector<PathCode>& codes = msg_codes_scratch_;
  codes.clear();
  codes.reserve(fresh_.size());
  if (config_.compress_against_table) {
    // Ship the maximal covering code the table knows for each fresh
    // completion; dedup (covering codes form an antichain, so equality is
    // the only possible overlap).
    for (const PathCode& c : fresh_) {
      std::optional<PathCode> covering = table_.covering_code(c);
      codes.push_back(covering.has_value() ? std::move(*covering) : c);
      note_contraction(0, c.depth() + 1);
      env_->charge(CostKind::kContraction,
                   config_.costs.contract_per_node * static_cast<double>(c.depth() + 1));
    }
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  } else {
    // Paper-literal scheme: contract the list against itself only (in the
    // per-worker scratch trie; clear() keeps its node storage).
    CodeSet& tmp = report_contract_scratch_;
    tmp.clear();
    const CodeSet::InsertResult r = tmp.insert_all(fresh_);
    note_contraction(fresh_.size(),
                     static_cast<std::uint64_t>(r.nodes_walked + r.merges));
    env_->charge(CostKind::kContraction,
                 config_.costs.contract_per_code * static_cast<double>(fresh_.size()) +
                     config_.costs.contract_per_node * (r.nodes_walked + r.merges));
    tmp.export_into(codes);
  }

  Message m;
  m.type = MsgType::kWorkReport;
  m.from = id_;
  m.best_known = incumbent_;
  m.codes = std::move(codes);
  m.report_seq = ++report_batches_;

  const std::vector<NodeId>& peers = env_->peers();
  if (!peers.empty()) {
    const std::size_t fanout =
        std::min<std::size_t>(config_.report_fanout, peers.size());
    const std::vector<std::size_t> picks =
        env_->rng().sample_without_replacement(peers.size(), fanout);
    for (const std::size_t i : picks) env_->send(peers[i], m);
    ++stats_.reports_sent;
    stats_.report_codes_sent += m.codes.size();
  }
  // Reclaim the batch buffer for the next report (send() copies the
  // message, so m still owns it here).
  msg_codes_scratch_ = std::move(m.codes);
  fresh_.clear();
  flush_armed_ = false;
}

void BnbWorker::send_table_gossip() {
  const std::vector<NodeId>& peers = env_->peers();
  if (peers.empty() || table_.empty()) return;
  Message m;
  m.type = MsgType::kTableGossip;
  m.from = id_;
  m.best_known = incumbent_;
  table_.export_into(msg_codes_scratch_);
  m.codes = std::move(msg_codes_scratch_);
  m.report_seq = ++report_batches_;
  note_contraction(0, table_.trie_nodes());
  env_->charge(CostKind::kContraction,
               config_.costs.contract_per_node * static_cast<double>(table_.trie_nodes()));
  env_->send(peers[env_->rng().pick(peers.size())], m);
  ++stats_.table_gossips_sent;
  msg_codes_scratch_ = std::move(m.codes);  // send() copied; reclaim the buffer
}

void BnbWorker::arm_flush_timer() {
  if (flush_armed_) return;
  flush_armed_ = true;
  env_->set_timer(TimerKind::kReportFlush, effective_flush_interval(), ++flush_gen_);
}

bool BnbWorker::maybe_terminate() {
  if (halted_) return true;
  if (!table_.root_complete()) return false;
  // Section 5.4: the detector sends one final work report — the root code —
  // to every member it knows, then stops.
  halted_ = true;
  stats_.halted_at = env_->now();
  Message m;
  m.type = MsgType::kRootReport;
  m.from = id_;
  m.best_known = incumbent_;
  m.codes.push_back(PathCode::root());
  for (const NodeId peer : env_->peers()) env_->send(peer, m);
  env_->set_wait_hint(WaitHint::kHalted);
  env_->notify_halted();
  return true;
}

// ---------------------------------------------------------------------------
// Load balancing & failure recovery
// ---------------------------------------------------------------------------

void BnbWorker::enter_backoff(std::uint32_t steps) {
  backoff_armed_ = true;
  steps = std::min(std::max(steps, 1u), config_.max_backoff_steps);
  env_->set_wait_hint(WaitHint::kIdle);
  env_->set_timer(TimerKind::kBackoff,
                  effective_backoff() * static_cast<double>(steps), ++backoff_gen_);
}

void BnbWorker::observe_cost(double cost) {
  if (cost <= 0.0) return;
  if (cost_ewma_ == 0.0) {
    cost_ewma_ = cost;
  } else {
    cost_ewma_ += config_.cost_ewma_alpha * (cost - cost_ewma_);
  }
}

double BnbWorker::effective_request_timeout() const {
  if (config_.model_adaptivity) return controller_.request_timeout();
  if (!config_.adaptive_timeouts || cost_ewma_ == 0.0) {
    return config_.work_request_timeout;
  }
  return std::max(config_.work_request_timeout,
                  config_.adaptive_timeout_factor * cost_ewma_);
}

double BnbWorker::effective_backoff() const {
  if (config_.model_adaptivity) return controller_.backoff();
  if (!config_.adaptive_timeouts || cost_ewma_ == 0.0) return config_.idle_backoff;
  return std::max(config_.idle_backoff, config_.adaptive_backoff_factor * cost_ewma_);
}

double BnbWorker::effective_flush_interval() const {
  if (config_.model_adaptivity) return controller_.flush_interval();
  if (!config_.adaptive_timeouts || cost_ewma_ == 0.0) {
    return config_.report_flush_interval;
  }
  return std::max(config_.report_flush_interval,
                  config_.adaptive_flush_factor * cost_ewma_);
}

std::uint32_t BnbWorker::effective_report_batch() const {
  if (config_.model_adaptivity) return controller_.report_batch();
  return config_.report_batch;
}

bool BnbWorker::stalled() const {
  double threshold = config_.stall_recovery_factor * effective_request_timeout();
  if (table_.empty()) threshold *= config_.empty_table_stall_multiplier;
  return env_->now() - last_progress_ >= threshold;
}

void BnbWorker::seek_work() {
  if (request_outstanding_ || backoff_armed_) return;  // already waiting
  const std::vector<NodeId>& peers = env_->peers();
  if (peers.empty()) {
    recover();  // alone in the group: nobody else can hold the missing work
    return;
  }
  // Recovery needs two signals together: repeated load-balancing failure
  // (timeouts, or a long deny streak) AND a group-wide progress stall.
  // Failure evidence without a stall is ramp-up or contention; a stall
  // without failure evidence resolves through the stall check below.
  if ((failed_attempts_ >= config_.attempts_before_recovery ||
       deny_streak_ >= config_.deny_streak_before_recovery) &&
      stalled()) {
    recover();
    return;
  }
  Message m;
  m.type = MsgType::kWorkRequest;
  m.from = id_;
  m.best_known = incumbent_;
  m.request_id = ++request_gen_;
  const NodeId target = peers[env_->rng().pick(peers.size())];
  env_->charge(CostKind::kLoadBalance, config_.costs.lb_handle);
  env_->send(target, m);
  ++stats_.work_requests_sent;
  request_outstanding_ = true;
  env_->set_wait_hint(WaitHint::kAwaitingWork);
  env_->set_timer(TimerKind::kRequestTimeout, effective_request_timeout(), request_gen_);
}

void BnbWorker::handle_work_request(const Message& msg) {
  env_->charge(CostKind::kLoadBalance, config_.costs.lb_handle);
  Message reply;
  reply.from = id_;
  reply.best_known = incumbent_;
  reply.request_id = msg.request_id;
  if (pool_.size() >= config_.min_pool_to_grant) {
    std::size_t k = std::max<std::size_t>(pool_.size() / config_.grant_divisor, 1);
    k = std::min<std::size_t>(k, config_.max_grant_problems);
    if (config_.model_adaptivity) k = controller_.grant_size(k);
    reply.type = MsgType::kWorkGrant;
    reply.problems = pool_.extract_for_sharing(k);
    env_->charge(CostKind::kLoadBalance,
                 config_.costs.lb_per_problem * static_cast<double>(reply.problems.size()));
    ++stats_.grants_given;
    stats_.problems_given += reply.problems.size();
  } else {
    reply.type = MsgType::kWorkDeny;
    reply.busy = !pool_.empty();
  }
  env_->send(msg.from, reply);
}

void BnbWorker::handle_work_grant(const Message& msg) {
  env_->charge(CostKind::kLoadBalance,
               config_.costs.lb_handle +
                   config_.costs.lb_per_problem * static_cast<double>(msg.problems.size()));
  ++stats_.grants_received;
  if (msg.request_id == request_gen_) request_outstanding_ = false;
  failed_attempts_ = 0;
  deny_streak_ = 0;
  note_progress();
  // A stale grant (answering a timed-out request) still carries problems;
  // absorbing them loses nothing and discarding them would force recovery
  // to redo the work later.
  for (const bnb::Subproblem& p : msg.problems) add_subproblem(p, /*from_grant=*/true);
}

void BnbWorker::add_subproblem(bnb::Subproblem p, bool from_grant) {
  (void)from_grant;
  if (table_.covered(p.code)) {
    ++stats_.covered_skips;
    return;
  }
  if (config_.enable_elimination && p.bound >= incumbent_) {
    ++stats_.eliminated;
    complete(p.code);
    return;
  }
  pool_.push(std::move(p));
}

std::size_t BnbWorker::pick_recovery_candidate(const std::vector<PathCode>& candidates) {
  FTBB_CHECK(!candidates.empty());
  switch (config_.recovery) {
    case RecoveryPolicy::kRandom:
      return env_->rng().pick(candidates.size());
    case RecoveryPolicy::kDeepest: {
      std::size_t best = 0;
      for (std::size_t i = 1; i < candidates.size(); ++i) {
        if (candidates[i].depth() > candidates[best].depth()) best = i;
      }
      return best;
    }
    case RecoveryPolicy::kShallowest: {
      std::size_t best = 0;
      for (std::size_t i = 1; i < candidates.size(); ++i) {
        if (candidates[i].depth() < candidates[best].depth()) best = i;
      }
      return best;
    }
    case RecoveryPolicy::kNearLastLocal: {
      // Prefer the candidate sharing the longest decision prefix with the
      // last problem completed locally: nearby regions are most likely to be
      // ours to finish and least likely to collide with other recoverers.
      if (stats_.completions == 0) {
        // No local history yet: fall back to the deepest (smallest) region —
        // if the suspicion is wrong, the duplicated work is minimal.
        std::size_t best = 0;
        for (std::size_t i = 1; i < candidates.size(); ++i) {
          if (candidates[i].depth() > candidates[best].depth()) best = i;
        }
        return best;
      }
      std::size_t best = 0;
      std::size_t best_lcp = 0;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        std::size_t lcp = 0;
        const std::size_t limit =
            std::min(candidates[i].depth(), last_local_completion_.depth());
        while (lcp < limit && candidates[i].step(lcp) == last_local_completion_.step(lcp)) {
          ++lcp;
        }
        if (lcp > best_lcp ||
            (lcp == best_lcp && candidates[i].depth() > candidates[best].depth())) {
          best_lcp = lcp;
          best = i;
        }
      }
      return best;
    }
  }
  return 0;
}

void BnbWorker::recover() {
  // Load balancing failed repeatedly: presume results are missing
  // (crashed member, lost reports, partition) and pick an uncompleted
  // problem by complementing the completion table (Section 5.3.2). The
  // chosen code is self-contained, so the problem can be reconstructed
  // from scratch here.
  failed_attempts_ = 0;
  deny_streak_ = 0;
  table_.complement_into(complement_scratch_);
  std::vector<PathCode>& candidates = complement_scratch_;
  note_contraction(0, table_.trie_nodes());
  env_->charge(CostKind::kContraction,
               config_.costs.contract_per_node * static_cast<double>(table_.trie_nodes()));
  if (candidates.empty()) {
    // The table is root-complete; termination will be detected upstream.
    continue_work();
    return;
  }
  ++stats_.recoveries;
  // Policy picks the first region to re-create; regions whose bound already
  // exceeds the incumbent are fathomed on the spot (that, too, completes
  // them), and the first survivor goes to the pool.
  while (!candidates.empty()) {
    const std::size_t i = pick_recovery_candidate(candidates);
    PathCode code = std::move(candidates[i]);
    candidates[i] = std::move(candidates.back());
    candidates.pop_back();
    if (table_.covered(code)) continue;  // our own eliminations covered it
    const double bound = model_->bound_of(code);
    if (config_.enable_elimination && bound >= incumbent_) {
      ++stats_.eliminated;
      complete(code);
      continue;
    }
    pool_.push(bnb::Subproblem{std::move(code), bound});
    break;
  }
  continue_work();
}

// ---------------------------------------------------------------------------
// Work accounting
// ---------------------------------------------------------------------------

WorkLedger BnbWorker::work_snapshot() const {
  WorkLedger w = ledger_;  // contraction codes/nodes accumulate in place
  w[WorkItem::kExpansions] = stats_.expanded;
  w[WorkItem::kEliminated] = stats_.eliminated;
  w[WorkItem::kDeadEnds] = stats_.dead_ends;
  w[WorkItem::kFeasibleLeaves] = stats_.feasible_leaves;
  w[WorkItem::kCompletions] = stats_.completions;
  w[WorkItem::kCoveredSkips] = stats_.covered_skips;
  w[WorkItem::kReportsSent] = stats_.reports_sent;
  w[WorkItem::kReportCodesSent] = stats_.report_codes_sent;
  w[WorkItem::kTableGossipsSent] = stats_.table_gossips_sent;
  w[WorkItem::kMsgsSent] = stats_.msgs_sent;
  w[WorkItem::kMsgsReceived] = stats_.msgs_received;
  w[WorkItem::kWireBytesSent] = stats_.bytes_sent;
  w[WorkItem::kWireBytesReceived] = stats_.bytes_received;
  w[WorkItem::kWorkRequestsSent] = stats_.work_requests_sent;
  w[WorkItem::kGrantsReceived] = stats_.grants_received;
  w[WorkItem::kDeniesReceived] = stats_.denies_received;
  w[WorkItem::kRequestTimeouts] = stats_.request_timeouts;
  w[WorkItem::kGrantsGiven] = stats_.grants_given;
  w[WorkItem::kProblemsGiven] = stats_.problems_given;
  w[WorkItem::kRecoveries] = stats_.recoveries;
  w[WorkItem::kIncumbentUpdates] = stats_.incumbent_updates;
  w[WorkItem::kIncarnations] = 1;
  const bnb::PoolMaintStats& pm = pool_.maintenance();
  w[WorkItem::kPoolPushes] = pm.pushes;
  w[WorkItem::kPoolPops] = pm.pops;
  w[WorkItem::kNurseryDrains] = pm.nursery_drains;
  w[WorkItem::kNurseryPromoted] = pm.nursery_promoted;
  w[WorkItem::kIndexBuilds] = pm.index_builds;
  w[WorkItem::kIndexDrops] = pm.index_drops;
  w[WorkItem::kSweepEntriesScanned] = pm.sweep_entries_scanned;
  w[WorkItem::kShareExtracted] = pm.share_extracted;
  w[WorkItem::kControllerRetunes] = controller_.retunes();
  for (int k = 0; k < kCostKinds; ++k) w.seconds[k] = stats_.time[k];
  return w;
}

// ---------------------------------------------------------------------------
// Event entry points
// ---------------------------------------------------------------------------

void BnbWorker::on_message(const Message& msg) {
  if (halted_) return;
  absorb_incumbent(msg.best_known);
  switch (msg.type) {
    case MsgType::kWorkRequest:
      handle_work_request(msg);
      break;
    case MsgType::kWorkGrant:
      handle_work_grant(msg);
      break;
    case MsgType::kWorkDeny:
      ++stats_.denies_received;
      env_->charge(CostKind::kLoadBalance, config_.costs.lb_handle);
      // Progress accounting accepts busy denies even when stale: a late
      // reply from a peer grinding a coarse node is exactly the situation
      // in which the stall detector must stay quiet.
      if (msg.busy) note_progress();
      if (request_outstanding_ && msg.request_id == request_gen_) {
        request_outstanding_ = false;
        // A deny proves the peer is alive; by default it does not feed the
        // failure suspicion, it only slows down the polling.
        ++deny_streak_;
        if (config_.count_denies_toward_recovery) ++failed_attempts_;
        // Repeated denies with an empty pool look like the end of the
        // computation; push completion knowledge around to accelerate
        // termination detection (Section 6.3.1: idle processes "suspect
        // termination and send more work reports").
        if (deny_streak_ >= 2 && deny_streak_ % 2 == 0) {
          send_report();
          send_table_gossip();
        }
        enter_backoff(deny_streak_);
      }
      break;
    case MsgType::kWorkReport:
    case MsgType::kTableGossip:
    case MsgType::kRootReport: {
      const CodeSet::InsertResult r = table_.insert_all(msg.codes);
      note_contraction(msg.codes.size(),
                       static_cast<std::uint64_t>(r.nodes_walked + r.merges));
      env_->charge(CostKind::kContraction,
                   config_.costs.contract_per_code * static_cast<double>(msg.codes.size()) +
                       config_.costs.contract_per_node * (r.nodes_walked + r.merges));
      if (r.newly_covered) {
        note_progress();  // fresh knowledge: the computation is advancing
        prune_pool_covered(msg.codes);
      }
      break;
    }
  }
  continue_work();
}

void BnbWorker::on_timer(TimerKind kind, std::uint64_t gen) {
  if (halted_) return;
  switch (kind) {
    case TimerKind::kStep:
      if (gen != step_gen_ || !step_scheduled_) return;
      step_scheduled_ = false;
      do_step();
      break;
    case TimerKind::kReportFlush:
      if (gen != flush_gen_) return;
      flush_armed_ = false;
      // "...or the list has not been updated for a long time" — flush the
      // partial batch.
      send_report();
      continue_work();
      break;
    case TimerKind::kTableGossip:
      if (gen != gossip_gen_) return;
      send_table_gossip();
      env_->set_timer(TimerKind::kTableGossip, config_.table_gossip_interval,
                      ++gossip_gen_);
      continue_work();
      break;
    case TimerKind::kRequestTimeout:
      // The grant/deny never came: lost message, overloaded peer, or a
      // crashed one — indistinguishable by design (Section 4 assumptions).
      if (gen != request_gen_ || !request_outstanding_) return;
      request_outstanding_ = false;
      ++failed_attempts_;
      ++stats_.request_timeouts;
      continue_work();
      break;
    case TimerKind::kBackoff:
      if (gen != backoff_gen_) return;
      backoff_armed_ = false;
      continue_work();
      break;
  }
}

}  // namespace ftbb::core
