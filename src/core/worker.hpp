// The decentralized, asynchronous, fault-tolerant B&B worker (Section 5).
//
// BnbWorker is the complete per-process algorithm: local pool + on-demand
// load balancing, incumbent circulation, completion tracking with list
// contraction, epidemic work reports, failure recovery by complementing the
// completion table, and almost-implicit termination detection.
//
// The worker is a *reactive state machine*: it is driven exclusively through
// on_start / on_message / on_timer and interacts with the world through an
// IWorkerEnv. This keeps the protocol logic identical across substrates —
// the discrete-event simulator (src/sim) hosts it in virtual time and the
// thread-backed runtime (src/rt) hosts it in real time — and makes the
// algorithm unit-testable with a scripted environment.
//
// Processing discipline (paper Section 6.2): one subproblem is expanded per
// step; the environment delivers pending messages only at step boundaries.
// Consequently a step's cost is charged atomically and "interrupting
// redundant work" takes the form of dropping pool entries that a newly
// received report proves completed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bnb/pool.hpp"
#include "bnb/problem.hpp"
#include "core/code_set.hpp"
#include "core/cost_model.hpp"
#include "core/messages.hpp"
#include "core/path_code.hpp"
#include "support/rng.hpp"

namespace ftbb::core {

/// Cost categories of Figure 3 / Table 1. The worker charges kBB,
/// kContraction, kComm and kLoadBalance explicitly; waiting time is
/// attributed by the environment to kLoadBalance or kIdle from the wait
/// hint the worker publishes.
enum class CostKind : std::uint8_t {
  kBB = 0,
  kContraction = 1,
  kComm = 2,
  kLoadBalance = 3,
  kIdle = 4,
};
constexpr int kCostKinds = 5;

[[nodiscard]] const char* to_string(CostKind kind);

/// What the worker is waiting for while quiescent.
enum class WaitHint : std::uint8_t {
  kNone = 0,          // busy or runnable
  kAwaitingWork = 1,  // work request outstanding -> gap counts as LB time
  kIdle = 2,          // backoff / starved / waiting for reports
  kHalted = 3,        // terminated
};

enum class TimerKind : std::uint8_t {
  kStep = 0,            // run the next expansion / scheduling decision
  kReportFlush = 1,     // stale fresh-completions list must be sent
  kTableGossip = 2,     // periodic full-table anti-entropy push
  kRequestTimeout = 3,  // work request went unanswered
  kBackoff = 4,         // idle pause between failed work-acquisition rounds
};
constexpr int kTimerKinds = 5;

/// How recovery picks among the complement's uncompleted regions
/// (Section 5.3.2 discusses random choice vs. "using the location of the
/// last problem completed locally").
enum class RecoveryPolicy : std::uint8_t {
  kRandom = 0,
  kDeepest = 1,
  kShallowest = 2,
  kNearLastLocal = 3,
};

[[nodiscard]] const char* to_string(RecoveryPolicy policy);

/// CPU-cost constants for protocol work, in seconds. Network latency is the
/// environment's concern; these model the local handling the paper accounts
/// as communication / contraction / load-balancing time.
struct ProtocolCosts {
  double send_fixed = 50e-6;        // per message sent
  double send_per_byte = 2e-9;      // serialization
  double recv_fixed = 50e-6;        // per message received
  double recv_per_byte = 2e-9;      // deserialization
  double contract_per_code = 10e-6;       // per code inserted into a table
  double contract_per_node = 0.3e-6;      // per trie node walked
  double lb_handle = 150e-6;        // per request/grant/deny handled
  double lb_per_problem = 10e-6;    // per subproblem packed or unpacked
};

struct WorkerConfig {
  bnb::SelectRule rule = bnb::SelectRule::kBestFirst;

  // --- work reports (Section 5.3.2) ---
  std::uint32_t report_batch = 8;        // send after c fresh completions
  double report_flush_interval = 1.0;    // ...or when the list goes stale
  std::uint32_t report_fanout = 2;       // m random recipients per report
  double table_gossip_interval = 5.0;    // occasional full-table push
  /// When true, each fresh completion is replaced by its maximal covering
  /// code from the local table before sending (strictly better compression
  /// than contracting the list alone); when false, reports are contracted
  /// only against themselves — the paper's literal scheme.
  bool compress_against_table = true;

  // --- load balancing ---
  double work_request_timeout = 0.05;    // seconds to wait for grant/deny
  std::uint32_t attempts_before_recovery = 3;
  /// When false (default), only request *timeouts* — the signature of a
  /// crashed peer, a lost message, or a partition — count toward the
  /// recovery threshold. Denies mean "alive but nothing to spare" and only
  /// back off. When true, denies count too (the most eager reading of the
  /// paper's "an attempt to get work ... fails"); E8 ablates this: eager
  /// suspicion recovers faster after real failures but duplicates large
  /// regions when work is merely scarce, e.g. during ramp-up.
  bool count_denies_toward_recovery = false;
  double idle_backoff = 0.02;            // pause after each failed attempt
  std::uint32_t max_backoff_steps = 8;   // linear backoff growth cap
  /// Recovery additionally requires a *stall*: no new completion knowledge,
  /// no granted work for stall_recovery_factor * request timeout. While
  /// information keeps arriving the system is alive and merely busy or
  /// scarce (ramp-up, endgame), and complementing would duplicate large
  /// regions for nothing. A genuine loss — crashed holder, dropped grant,
  /// partition — starves the whole group of progress and trips the
  /// detector. Long consecutive-deny streaks with a stall also escalate,
  /// covering the all-alive-but-work-lost case where no timeout ever fires.
  double stall_recovery_factor = 10.0;
  std::uint32_t deny_streak_before_recovery = 8;
  /// Extra patience while the completion table is still empty: with zero
  /// knowledge the complement is the entire root problem, so a wrong
  /// suspicion duplicates everything. Ramp-up on coarse problems is exactly
  /// this state (no completion exists anywhere yet).
  double empty_table_stall_multiplier = 25.0;
  double initial_stagger = 0.01;         // randomized start offset, avoids a
                                         // t=0 request storm
  std::uint32_t min_pool_to_grant = 2;   // keep at least one problem
  std::uint32_t grant_divisor = 2;       // give away size/divisor problems
  std::uint32_t max_grant_problems = 64; // cap per grant message

  // --- search ---
  bool enable_elimination = true;        // l(v) >= U pruning

  // --- adaptive parameter control (paper Section 7 future work) ---
  /// When enabled, the worker tracks an exponential moving average of the
  /// node-expansion costs it observes and *raises* its waiting parameters to
  /// match the granularity: request timeout, idle backoff, and report flush
  /// interval each become max(configured value, factor * EWMA cost). This is
  /// the paper's proposed "flexible scheme for adapting parameters to
  /// runtime informations, such as ... execution time per problem"; without
  /// it, coarse-grained problems under fine-grained timeouts misread busy
  /// peers as dead ones (see E7/E15).
  bool adaptive_timeouts = false;
  double adaptive_timeout_factor = 2.5;  // request timeout vs mean node cost
  double adaptive_backoff_factor = 0.5;
  double adaptive_flush_factor = 25.0;
  double cost_ewma_alpha = 0.1;

  /// Cost-model-driven adaptivity (supersedes adaptive_timeouts; keep both
  /// so benches can compare the schemes). When enabled the CostController
  /// steers the request timeout, report batch, and grant sizing from the
  /// EWMA-smoothed expansion cost with hysteresis — and deliberately leaves
  /// the idle backoff and flush interval at their configured base (see
  /// cost_model.hpp for why that asymmetry recovers the efficiency the
  /// adaptive_timeouts scheme loses). Takes precedence over
  /// adaptive_timeouts when both are set.
  bool model_adaptivity = false;
  CostModelConfig cost_model;

  // --- fault tolerance ---
  RecoveryPolicy recovery = RecoveryPolicy::kNearLastLocal;

  ProtocolCosts costs;
};

/// Per-worker measurements; times are virtual seconds in the simulator and
/// wall seconds in the real-time runtime.
struct WorkerStats {
  double time[kCostKinds] = {0, 0, 0, 0, 0};

  std::uint64_t expanded = 0;
  std::uint64_t eliminated = 0;       // fathomed by bound
  std::uint64_t dead_ends = 0;
  std::uint64_t feasible_leaves = 0;
  std::uint64_t completions = 0;      // codes passed to complete()
  std::uint64_t covered_skips = 0;    // pool/grant entries dropped as already completed

  std::uint64_t reports_sent = 0;
  std::uint64_t report_codes_sent = 0;
  std::uint64_t table_gossips_sent = 0;

  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  std::uint64_t work_requests_sent = 0;
  std::uint64_t grants_received = 0;
  std::uint64_t denies_received = 0;
  std::uint64_t request_timeouts = 0;
  std::uint64_t grants_given = 0;
  std::uint64_t problems_given = 0;

  std::uint64_t recoveries = 0;           // complement-pick events
  std::uint64_t incumbent_updates = 0;

  double halted_at = -1.0;  // local termination-detection instant

  [[nodiscard]] double busy_total() const {
    return time[0] + time[1] + time[2] + time[3];
  }

  /// Field-wise accumulation of every time and counter (halted_at is an
  /// instant, not a quantity, and is left untouched). Lives next to the
  /// fields so a new counter cannot be forgotten here unnoticed; harnesses
  /// use it to fold a crashed incarnation's stats into its successor's.
  void add(const WorkerStats& other) {
    for (int k = 0; k < kCostKinds; ++k) time[k] += other.time[k];
    expanded += other.expanded;
    eliminated += other.eliminated;
    dead_ends += other.dead_ends;
    feasible_leaves += other.feasible_leaves;
    completions += other.completions;
    covered_skips += other.covered_skips;
    reports_sent += other.reports_sent;
    report_codes_sent += other.report_codes_sent;
    table_gossips_sent += other.table_gossips_sent;
    msgs_sent += other.msgs_sent;
    msgs_received += other.msgs_received;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    work_requests_sent += other.work_requests_sent;
    grants_received += other.grants_received;
    denies_received += other.denies_received;
    request_timeouts += other.request_timeouts;
    grants_given += other.grants_given;
    problems_given += other.problems_given;
    recoveries += other.recoveries;
    incumbent_updates += other.incumbent_updates;
  }
};

/// Environment the worker runs in. Implementations: sim::SimCluster
/// (virtual time), rt::Cluster (threads), tests::ScriptedEnv.
class IWorkerEnv {
 public:
  virtual ~IWorkerEnv() = default;

  /// The worker's current local time (advanced by charge()).
  [[nodiscard]] virtual double now() const = 0;

  /// Asynchronously transmits `msg` to peer `to`. The environment charges
  /// send-side CPU cost and models latency/loss.
  virtual void send(NodeId to, Message msg) = 0;

  /// Arms a one-shot timer `delay` seconds from now(); fires
  /// on_timer(kind, gen). Re-arming a kind replaces nothing — stale
  /// generations are filtered by the worker.
  virtual void set_timer(TimerKind kind, double delay, std::uint64_t gen) = 0;

  /// Accounts `seconds` of local work of the given kind; in the simulator
  /// this advances the worker's virtual clock (making it busy).
  virtual void charge(CostKind kind, double seconds) = 0;

  /// Deterministic per-worker randomness.
  virtual support::Rng& rng() = 0;

  /// Current peer set (other members). May change under membership churn.
  [[nodiscard]] virtual const std::vector<NodeId>& peers() const = 0;

  /// Publishes what the worker is waiting for (gap-time attribution).
  virtual void set_wait_hint(WaitHint hint) = 0;

  /// Called once when the worker detects termination and halts.
  virtual void notify_halted() = 0;

  /// Observation hook for redundant-work accounting in harnesses.
  virtual void note_expansion(const PathCode& code, double cost) {
    (void)code;
    (void)cost;
  }

  /// Observation hook: a completion was recorded locally (harnesses use it
  /// to maintain the global union table for redundant-storage accounting).
  virtual void note_completion(const PathCode& code) { (void)code; }
};

class BnbWorker {
 public:
  BnbWorker(NodeId id, const bnb::IProblemModel* model, WorkerConfig config,
            IWorkerEnv* env);

  /// `with_root` seeds this worker's pool with the root problem (exactly one
  /// member of the computation starts with it).
  void on_start(bool with_root);

  void on_message(const Message& msg);

  void on_timer(TimerKind kind, std::uint64_t gen);

  // --- observers (tests, harnesses) ---
  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] double incumbent() const { return incumbent_; }
  [[nodiscard]] const PathCode& best_code() const { return best_code_; }
  [[nodiscard]] const CodeSet& table() const { return table_; }
  [[nodiscard]] const bnb::ActivePool& pool() const { return pool_; }
  [[nodiscard]] const WorkerStats& stats() const { return stats_; }
  [[nodiscard]] WorkerStats& stats() { return stats_; }
  [[nodiscard]] const WorkerConfig& config() const { return config_; }
  [[nodiscard]] std::size_t fresh_count() const { return fresh_.size(); }
  [[nodiscard]] const CostController& controller() const { return controller_; }

  /// The incarnation's work ledger, composed on demand from the stats block,
  /// the worker-internal contraction counters, and the pool's maintenance
  /// counters. Counts one incarnation; harnesses add() snapshots across
  /// lives and workers (in canonical id order) and fill the redundant-work
  /// fields from their canonical-order expansion merge.
  [[nodiscard]] WorkLedger work_snapshot() const;

 private:
  // -- scheduling --
  void continue_work();
  void schedule_step();
  void do_step();

  // -- search --
  void expand(const bnb::Subproblem& p);
  void complete(const PathCode& code);
  void absorb_incumbent(double value);
  void prune_pool_by_bound();
  void prune_pool_covered(const std::vector<PathCode>& just_inserted);

  // -- reports & termination --
  void send_report();
  void send_table_gossip();
  void arm_flush_timer();
  bool maybe_terminate();

  // -- load balancing & recovery --
  void seek_work();
  void handle_work_request(const Message& msg);
  void handle_work_grant(const Message& msg);
  void recover();
  [[nodiscard]] std::size_t pick_recovery_candidate(
      const std::vector<PathCode>& candidates);

  void add_subproblem(bnb::Subproblem p, bool from_grant);

  NodeId id_;
  const bnb::IProblemModel* model_;
  WorkerConfig config_;
  IWorkerEnv* env_;
  WorkerStats stats_;

  bnb::ActivePool pool_;
  CodeSet table_;
  std::vector<PathCode> fresh_;  // locally discovered, unreported completions
  /// Codes whose insertion into the table newly covered a region while the
  /// pool was non-empty. A pool entry can only become covered through such
  /// an insertion (every push is covered-checked first), so the next covered
  /// sweep needs to inspect only the regions these codes contracted into —
  /// not the whole pool. Capped: a worker that receives no reports for a
  /// long stretch (solo, partitioned) would otherwise accumulate one code
  /// per completion; past the cap the record is abandoned and the next
  /// sweep falls back to the full per-entry scan, which removes the same
  /// victim set.
  static constexpr std::size_t kMaxCoverHints = 512;
  std::vector<PathCode> pending_cover_hints_;
  bool cover_hints_overflowed_ = false;

  /// Steady-state scratch, one per worker: report/gossip code batches build
  /// into msg_codes_scratch_ (reclaimed from the Message after the fanout
  /// sends), recovery complements into complement_scratch_, covered sweeps
  /// collect their region views in cover_regions_, and the paper-literal
  /// report scheme contracts into report_contract_scratch_. None of these
  /// change any observable behavior — they only keep the per-call
  /// vector/trie allocations out of the hot loops.
  std::vector<PathCode> msg_codes_scratch_;
  std::vector<PathCode> complement_scratch_;
  std::vector<PathView> cover_regions_;
  CodeSet report_contract_scratch_;

  double incumbent_ = bnb::kInfinity;
  PathCode best_code_;
  bool have_feasible_ = false;

  bool started_ = false;
  bool halted_ = false;

  // Load-balancing state.
  bool request_outstanding_ = false;
  std::uint64_t request_gen_ = 0;
  std::uint32_t failed_attempts_ = 0;  // timeouts (and denies if configured)
  std::uint32_t deny_streak_ = 0;      // consecutive denies, for backoff growth
  bool backoff_armed_ = false;
  std::uint64_t backoff_gen_ = 0;

  void enter_backoff(std::uint32_t steps);

  // Adaptive parameter state (see WorkerConfig::adaptive_timeouts).
  double cost_ewma_ = 0.0;
  void observe_cost(double cost);
  [[nodiscard]] double effective_request_timeout() const;
  [[nodiscard]] double effective_backoff() const;
  [[nodiscard]] double effective_flush_interval() const;
  [[nodiscard]] std::uint32_t effective_report_batch() const;

  // Cost-model state (see WorkerConfig::model_adaptivity). The controller
  // observes every expansion regardless of mode (observation is free and
  // keeps the ledger's retune counter meaningful in benches); its outputs
  // steer the worker only when model_adaptivity is set.
  CostController controller_;
  WorkLedger ledger_;  // worker-internal counters (contraction work)
  void note_contraction(std::uint64_t codes, std::uint64_t nodes) {
    ledger_[WorkItem::kContractionCodes] += codes;
    ledger_[WorkItem::kContractionNodes] += nodes;
  }

  // Stall detection (see WorkerConfig::stall_recovery_factor).
  double last_progress_ = 0.0;
  void note_progress() { last_progress_ = env_->now(); }
  [[nodiscard]] bool stalled() const;

  bool step_scheduled_ = false;
  std::uint64_t step_gen_ = 0;
  std::uint64_t flush_gen_ = 0;
  bool flush_armed_ = false;
  std::uint64_t gossip_gen_ = 0;

  /// Batches stamped into Message::report_seq so the frame codec advances
  /// its delta state once per report/gossip batch, not once per fanout copy.
  std::uint64_t report_batches_ = 0;

  PathCode last_local_completion_;
};

}  // namespace ftbb::core
