#include "core/cost_model.hpp"

#include <cstdio>
#include <cstring>

namespace ftbb::core {

const char* to_string(WorkItem item) {
  switch (item) {
    case WorkItem::kExpansions: return "expansions";
    case WorkItem::kEliminated: return "eliminated";
    case WorkItem::kDeadEnds: return "dead_ends";
    case WorkItem::kFeasibleLeaves: return "feasible_leaves";
    case WorkItem::kCompletions: return "completions";
    case WorkItem::kCoveredSkips: return "covered_skips";
    case WorkItem::kContractionCodes: return "contraction_codes";
    case WorkItem::kContractionNodes: return "contraction_nodes";
    case WorkItem::kReportsSent: return "reports_sent";
    case WorkItem::kReportCodesSent: return "report_codes_sent";
    case WorkItem::kTableGossipsSent: return "table_gossips_sent";
    case WorkItem::kMsgsSent: return "msgs_sent";
    case WorkItem::kMsgsReceived: return "msgs_received";
    case WorkItem::kWireBytesSent: return "wire_bytes_sent";
    case WorkItem::kWireBytesReceived: return "wire_bytes_received";
    case WorkItem::kWorkRequestsSent: return "work_requests_sent";
    case WorkItem::kGrantsReceived: return "grants_received";
    case WorkItem::kDeniesReceived: return "denies_received";
    case WorkItem::kRequestTimeouts: return "request_timeouts";
    case WorkItem::kGrantsGiven: return "grants_given";
    case WorkItem::kProblemsGiven: return "problems_given";
    case WorkItem::kRecoveries: return "recoveries";
    case WorkItem::kIncumbentUpdates: return "incumbent_updates";
    case WorkItem::kIncarnations: return "incarnations";
    case WorkItem::kPoolPushes: return "pool_pushes";
    case WorkItem::kPoolPops: return "pool_pops";
    case WorkItem::kNurseryDrains: return "nursery_drains";
    case WorkItem::kNurseryPromoted: return "nursery_promoted";
    case WorkItem::kIndexBuilds: return "index_builds";
    case WorkItem::kIndexDrops: return "index_drops";
    case WorkItem::kSweepEntriesScanned: return "sweep_entries_scanned";
    case WorkItem::kShareExtracted: return "share_extracted";
    case WorkItem::kControllerRetunes: return "controller_retunes";
    case WorkItem::kRedundantExpansions: return "redundant_expansions";
    case WorkItem::kCount: break;
  }
  return "?";
}

void WorkLedger::add(const WorkLedger& other) {
  for (int i = 0; i < kWorkItems; ++i) items[i] += other.items[i];
  for (int k = 0; k < kTimeKinds; ++k) seconds[k] += other.seconds[k];
  redundant_seconds += other.redundant_seconds;
}

namespace {

/// Local FNV-1a 64, same constants as the ScenarioReport fingerprint.
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
};

}  // namespace

std::uint64_t WorkLedger::fingerprint() const {
  Fnv fnv;
  for (int i = 0; i < kWorkItems; ++i) fnv.u64(items[i]);
  for (int k = 0; k < kTimeKinds; ++k) fnv.f64(seconds[k]);
  fnv.f64(redundant_seconds);
  return fnv.h;
}

std::string WorkLedger::to_string() const {
  std::string out = "work-mix:";
  char buf[96];
  for (int i = 0; i < kWorkItems; ++i) {
    if (items[i] == 0) continue;
    std::snprintf(buf, sizeof buf, " %s=%llu",
                  core::to_string(static_cast<WorkItem>(i)),
                  static_cast<unsigned long long>(items[i]));
    out += buf;
  }
  static const char* const kTimeNames[kTimeKinds] = {"bb", "contraction",
                                                     "comm", "lb", "idle"};
  for (int k = 0; k < kTimeKinds; ++k) {
    std::snprintf(buf, sizeof buf, " t_%s=%.9g", kTimeNames[k], seconds[k]);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, " t_redundant=%.9g", redundant_seconds);
  out += buf;
  return out;
}

}  // namespace ftbb::core
