#include "core/path_code.hpp"

namespace ftbb::core {

void PathCode::encode(support::ByteWriter& w) const {
  w.varint(depth());
  for (std::size_t i = 0; i < depth(); ++i) w.varint(word(i));
}

PathCode PathCode::decode(support::ByteReader& r) {
  const std::uint64_t n = r.varint();
  if (n > kMaxDepth) r.mark_corrupt("PathCode: implausible depth");
  // Every step is at least one input byte: a hostile count cannot make the
  // reserve() below allocate past the input size.
  if (!r.fits_count(n) || !r.ok()) return PathCode{};
  PathCode out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t packed = r.varint();
    if (!r.ok()) return PathCode{};
    if ((packed >> 1) > static_cast<std::uint64_t>(kMaxVar)) {
      r.mark_corrupt("PathCode: variable index overflow");
      return PathCode{};
    }
    out.push_word(static_cast<std::uint32_t>(packed));
  }
  return out;
}

std::size_t PathCode::encoded_size() const {
  std::size_t n = support::varint_size(depth());
  for (std::size_t i = 0; i < depth(); ++i) n += support::varint_size(word(i));
  return n;
}

std::string PathCode::to_string() const {
  if (is_root()) return "()";
  std::string s = "(";
  for (std::size_t i = 0; i < depth(); ++i) {
    if (i) s += ",";
    s += "<x" + std::to_string(var(i)) + "," + std::to_string(int(bit(i))) + ">";
  }
  s += ")";
  return s;
}

}  // namespace ftbb::core
