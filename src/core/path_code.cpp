#include "core/path_code.hpp"

namespace ftbb::core {

void PathCode::encode(support::ByteWriter& w) const {
  w.varint(steps_.size());
  for (const Branch& b : steps_) {
    w.varint((static_cast<std::uint64_t>(b.var) << 1) | b.bit);
  }
}

PathCode PathCode::decode(support::ByteReader& r) {
  const std::uint64_t n = r.varint();
  if (n > kMaxDepth) r.mark_corrupt("PathCode: implausible depth");
  // Every step is at least one input byte: a hostile count cannot make the
  // reserve() below allocate past the input size.
  if (!r.fits_count(n) || !r.ok()) return PathCode{};
  std::vector<Branch> steps;
  steps.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t packed = r.varint();
    if (!r.ok()) return PathCode{};
    if ((packed >> 1) > 0xffffffffULL) {
      r.mark_corrupt("PathCode: variable index overflow");
      return PathCode{};
    }
    steps.push_back(Branch{static_cast<std::uint32_t>(packed >> 1),
                           static_cast<std::uint8_t>(packed & 1)});
  }
  return PathCode(std::move(steps));
}

std::size_t PathCode::encoded_size() const {
  std::size_t n = support::varint_size(steps_.size());
  for (const Branch& b : steps_) {
    n += support::varint_size((static_cast<std::uint64_t>(b.var) << 1) | b.bit);
  }
  return n;
}

std::string PathCode::to_string() const {
  if (steps_.empty()) return "()";
  std::string s = "(";
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (i) s += ",";
    s += "<x" + std::to_string(steps_[i].var) + "," + std::to_string(int(steps_[i].bit)) + ">";
  }
  s += ")";
  return s;
}

std::size_t PathCode::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const Branch& b : steps_) {
    mix((static_cast<std::uint64_t>(b.var) << 1) | b.bit);
  }
  mix(steps_.size());
  return static_cast<std::size_t>(h);
}

}  // namespace ftbb::core
