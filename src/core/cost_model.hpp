// Per-operation work accounting and the cost controller it feeds.
//
// WorkLedger is a flat per-worker, per-incarnation counter block in the
// style of bcdb's CostModel instruction-visitor accounting: every class of
// work the worker performs — node expansions, completion-table contraction,
// pool maintenance, messages and wire bytes shipped, load-balancing rounds,
// recoveries — gets one enum-indexed counter. Ledgers add field-wise and are
// merged across incarnations and workers in canonical (host id) order, so a
// sharded simulation produces bit-identical aggregate ledgers to the
// sequential kernel: per-worker event order is fixed by the kernel's total
// order regardless of thread count, and the merge order is pinned.
//
// CostController turns the observed per-node expansion cost (EWMA-smoothed,
// with a hysteresis band so cheap subtrees don't thrash the outputs) into
// the worker's adaptivity knobs. The deliberate asymmetry against the
// PR-era `adaptive_timeouts` scheme: node cost prices *waiting for a busy
// peer*, not messaging. So the controller raises only the request timeout
// (a busy peer answers at its next step boundary, one node away), keeps the
// idle backoff and report flush at their configured base (polling cadence
// and knowledge spread are message-priced, and messages did not get more
// expensive), shrinks the report batch on coarse nodes (each completion now
// carries more work, so holding eight of them back delays the group's
// elimination knowledge by eight node-times), and sizes work grants in
// estimated work-seconds instead of raw problem counts.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ftbb::core {

/// One counter per class of work. Keep kCount last; to_string() and the
/// ledger loops iterate the range.
enum class WorkItem : std::uint8_t {
  // -- search --
  kExpansions = 0,
  kEliminated,
  kDeadEnds,
  kFeasibleLeaves,
  kCompletions,
  kCoveredSkips,
  // -- completion-table contraction --
  kContractionCodes,  // codes inserted into a table (local or from reports)
  kContractionNodes,  // trie nodes walked / merged while inserting
  // -- reports & gossip --
  kReportsSent,
  kReportCodesSent,
  kTableGossipsSent,
  // -- wire traffic --
  kMsgsSent,
  kMsgsReceived,
  kWireBytesSent,      // FrameCodec::wire_size() of every frame shipped
  kWireBytesReceived,
  // -- load balancing --
  kWorkRequestsSent,
  kGrantsReceived,
  kDeniesReceived,
  kRequestTimeouts,
  kGrantsGiven,
  kProblemsGiven,
  // -- fault tolerance --
  kRecoveries,
  kIncumbentUpdates,
  kIncarnations,  // lives merged into this ledger (crash/revive adds one)
  // -- pool maintenance --
  kPoolPushes,
  kPoolPops,
  kNurseryDrains,         // lazy LSM-nursery flush events
  kNurseryPromoted,       // entries promoted into the ordered trees
  kIndexBuilds,
  kIndexDrops,
  kSweepEntriesScanned,   // entries/iterations visited by prune & covered sweeps
  kShareExtracted,        // problems handed out via extract_for_sharing
  // -- controller --
  kControllerRetunes,     // hysteresis-gated output recomputations
  // -- redundancy (filled by the harness from the canonical-order merge) --
  kRedundantExpansions,
  kCount
};
constexpr int kWorkItems = static_cast<int>(WorkItem::kCount);

[[nodiscard]] const char* to_string(WorkItem item);

/// Flat additive work accounting. `seconds` mirrors WorkerStats::time in
/// CostKind order (bb, contraction, comm, lb, idle); kept here as plain
/// doubles so the ledger stays self-contained and header-cycle-free.
struct WorkLedger {
  static constexpr int kTimeKinds = 5;

  std::uint64_t items[kWorkItems] = {};
  double seconds[kTimeKinds] = {0, 0, 0, 0, 0};
  double redundant_seconds = 0.0;  // harness-filled, canonical-order merge

  [[nodiscard]] std::uint64_t& operator[](WorkItem item) {
    return items[static_cast<int>(item)];
  }
  [[nodiscard]] std::uint64_t operator[](WorkItem item) const {
    return items[static_cast<int>(item)];
  }

  /// Field-wise accumulation (incarnation folding, cross-worker aggregation).
  void add(const WorkLedger& other);

  /// FNV-1a over every counter and time field, in declaration order. Two
  /// ledgers fingerprint equal iff they are bit-identical.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Deterministic rendering: nonzero counters (declaration order) plus the
  /// time vector. Stable across platforms — used in golden comparisons.
  [[nodiscard]] std::string to_string() const;
};

/// Tuning constants for CostController; lives in WorkerConfig.
struct CostModelConfig {
  double ewma_alpha = 0.1;       // expansion-cost smoothing
  /// Request timeout = base + timeout_safety * ewma: long enough that a
  /// busy peer one coarse node away from its step boundary still answers.
  double timeout_safety = 2.0;
  /// Grants are sized to keep the requester busy for about this many
  /// request timeouts' worth of estimated work.
  double grant_horizon = 2.0;
  /// The report batch shrinks so one report amortizes its messaging cost
  /// against at most (batch * ewma) of withheld completion knowledge:
  /// batch = report_msg_cost / (batch_cost_share * ewma), clamped to
  /// [1, configured batch].
  double batch_cost_share = 2.5e-3;
  /// Relative dead band: outputs recompute only when the EWMA drifts more
  /// than this fraction from the value they were last tuned to, so cheap
  /// subtrees inside a coarse run don't thrash timers.
  double hysteresis = 0.25;
};

/// EWMA + hysteresis policy engine. Pure arithmetic over observed costs —
/// no clocks, no randomness — so its outputs are deterministic functions of
/// the worker's (deterministic) observation stream.
class CostController {
 public:
  CostController() = default;

  /// `report_msg_cost` is the modeled CPU cost of shipping one report batch
  /// (fanout * (send + recv fixed costs)) — the denominator that decides
  /// how much batching a report must amortize.
  void configure(const CostModelConfig& cfg, double base_timeout,
                 double base_backoff, double base_flush,
                 std::uint32_t base_batch, double report_msg_cost) {
    cfg_ = cfg;
    base_timeout_ = base_timeout;
    base_backoff_ = base_backoff;
    base_flush_ = base_flush;
    base_batch_ = base_batch;
    report_msg_cost_ = report_msg_cost;
  }

  /// Feed one observed expansion cost. Updates the EWMA; retunes outputs
  /// only when the drift leaves the hysteresis band.
  void observe(double cost) {
    if (cost <= 0.0) return;
    ewma_ = (ewma_ == 0.0) ? cost : ewma_ + cfg_.ewma_alpha * (cost - ewma_);
    if (tuned_ewma_ == 0.0 ||
        std::abs(ewma_ - tuned_ewma_) > cfg_.hysteresis * tuned_ewma_) {
      tuned_ewma_ = ewma_;
      ++retunes_;
    }
  }

  [[nodiscard]] double request_timeout() const {
    return base_timeout_ + cfg_.timeout_safety * tuned_ewma_;
  }
  /// Deliberately the base value: backoff paces polling, and polling is
  /// message-priced. Scaling it with node cost is exactly where the PR-era
  /// scheme lost its efficiency.
  [[nodiscard]] double backoff() const { return base_backoff_; }
  /// Deliberately the base value, same reasoning as backoff().
  [[nodiscard]] double flush_interval() const { return base_flush_; }

  [[nodiscard]] std::uint32_t report_batch() const {
    if (tuned_ewma_ == 0.0 || base_batch_ <= 1) return base_batch_;
    const double ideal =
        std::ceil(report_msg_cost_ / (cfg_.batch_cost_share * tuned_ewma_));
    if (ideal >= static_cast<double>(base_batch_)) return base_batch_;
    return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(ideal));
  }

  /// Caps a grant at ~grant_horizon request-timeouts of estimated work so a
  /// coarse-grained donor doesn't ship half its pool where three problems
  /// already cover the requester past its next acquisition round.
  [[nodiscard]] std::size_t grant_size(std::size_t suggested) const {
    if (tuned_ewma_ == 0.0) return suggested;
    const double work_cap =
        std::ceil(cfg_.grant_horizon * request_timeout() / tuned_ewma_);
    const auto cap = static_cast<std::size_t>(
        std::max(1.0, std::min(work_cap, 1e9)));
    return std::min(suggested, cap);
  }

  [[nodiscard]] double ewma() const { return ewma_; }
  [[nodiscard]] double tuned_ewma() const { return tuned_ewma_; }
  [[nodiscard]] std::uint64_t retunes() const { return retunes_; }

 private:
  CostModelConfig cfg_;
  double base_timeout_ = 0.05;
  double base_backoff_ = 0.02;
  double base_flush_ = 1.0;
  std::uint32_t base_batch_ = 8;
  double report_msg_cost_ = 2e-4;
  double ewma_ = 0.0;        // continuously updated
  double tuned_ewma_ = 0.0;  // outputs derive from this; hysteresis-gated
  std::uint64_t retunes_ = 0;
};

}  // namespace ftbb::core
