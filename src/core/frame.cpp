#include "core/frame.hpp"

#include <algorithm>

namespace ftbb::core {

const char* to_string(FrameVersion version) {
  switch (version) {
    case FrameVersion::kLegacy:
      return "legacy";
    case FrameVersion::kV1:
      return "v1";
  }
  return "?";
}

const char* to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kTruncated:
      return "truncated";
    case DecodeStatus::kBadMagic:
      return "bad-magic";
    case DecodeStatus::kUnknownVersion:
      return "unknown-version";
    case DecodeStatus::kUnknownType:
      return "unknown-type";
    case DecodeStatus::kCorruptPayload:
      return "corrupt-payload";
    case DecodeStatus::kLengthMismatch:
      return "length-mismatch";
  }
  return "?";
}

namespace {

[[nodiscard]] bool is_report(MsgType type) {
  return type == MsgType::kWorkReport || type == MsgType::kTableGossip;
}

[[nodiscard]] bool known_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(MsgType::kWorkRequest) &&
         raw <= static_cast<std::uint8_t>(MsgType::kRootReport);
}

/// Resolved delta decisions for one report frame: the wire sequence and the
/// chain base (nullptr when the chain starts at the empty root code).
struct ReportPlan {
  std::uint64_t seq = 0;
  const PathCode* base = nullptr;
};

/// Advances the sender's delta state to the batch `msg` belongs to.
/// Idempotent per Message::report_seq: the m fanout copies of one batch all
/// resolve to the same (seq, base), and a frame_size() followed by encode()
/// advances once, not twice.
ReportPlan plan_report(const Message& msg, ReportDeltaState* state) {
  if (state == nullptr) return {};
  if (!state->active) {
    state->active = true;
    state->batch_id = msg.report_seq;
    state->seq = 0;
  } else if (msg.report_seq != state->batch_id) {
    state->batch_id = msg.report_seq;
    state->prev_last = state->cur_last;
    ++state->seq;
  }
  if (!msg.codes.empty()) state->cur_last = msg.codes.back();
  ReportPlan plan;
  plan.seq = state->seq;
  if (state->seq > 0) plan.base = &state->prev_last;
  return plan;
}

/// One code as (trim, add, steps...) against the previous code in the chain.
/// Straight off the packed words: the per-step wire varint IS the stored
/// word, and the shared prefix is a word comparison.
void encode_delta(const PathCode& prev, const PathCode& code,
                  support::ByteWriter& w) {
  std::size_t lcp = 0;
  const std::size_t cap = std::min(prev.depth(), code.depth());
  while (lcp < cap && prev.word(lcp) == code.word(lcp)) ++lcp;
  w.varint(prev.depth() - lcp);  // decisions to trim off the previous code
  w.varint(code.depth() - lcp);  // decisions appended after the shared prefix
  for (std::size_t i = lcp; i < code.depth(); ++i) w.varint(code.word(i));
}

PathCode decode_delta(const PathCode& prev, support::ByteReader& r) {
  const std::uint64_t trim = r.varint();
  const std::uint64_t add = r.varint();
  if (!r.ok()) return PathCode{};
  if (trim > prev.depth()) {
    r.mark_corrupt("report delta: trim exceeds base depth");
    return PathCode{};
  }
  const std::uint64_t keep = prev.depth() - trim;
  if (keep + add > PathCode::kMaxDepth) {
    r.mark_corrupt("report delta: implausible depth");
    return PathCode{};
  }
  if (!r.fits_count(add)) return PathCode{};
  PathCode out(prev.view().prefix(static_cast<std::size_t>(keep)));
  out.reserve(static_cast<std::size_t>(keep + add));
  for (std::uint64_t i = 0; i < add; ++i) {
    const std::uint64_t packed = r.varint();
    if (!r.ok()) return PathCode{};
    if ((packed >> 1) > static_cast<std::uint64_t>(PathCode::kMaxVar)) {
      r.mark_corrupt("report delta: variable index overflow");
      return PathCode{};
    }
    out.push_word(static_cast<std::uint32_t>(packed));
  }
  return out;
}

void write_v1_payload(const Message& msg, const ReportPlan& plan,
                      support::ByteWriter& w) {
  w.varint(msg.from);
  w.f64(msg.best_known);
  w.varint(msg.request_id);
  switch (msg.type) {
    case MsgType::kWorkRequest:
      break;
    case MsgType::kWorkDeny:
      w.u8(msg.busy ? 1 : 0);
      break;
    case MsgType::kWorkGrant:
      w.varint(msg.problems.size());
      for (const bnb::Subproblem& p : msg.problems) {
        p.code.encode(w);
        w.f64(p.bound);
      }
      break;
    case MsgType::kRootReport:
      // Termination broadcast: one (root) code, flat — never delta-coded.
      w.varint(msg.codes.size());
      for (const PathCode& c : msg.codes) c.encode(w);
      break;
    case MsgType::kWorkReport:
    case MsgType::kTableGossip: {
      static const PathCode kEmpty;
      w.varint(plan.seq);
      if (plan.base != nullptr) plan.base->encode(w);
      w.varint(msg.codes.size());
      const PathCode* prev = plan.base != nullptr ? plan.base : &kEmpty;
      for (const PathCode& c : msg.codes) {
        encode_delta(*prev, c, w);
        prev = &c;
      }
      break;
    }
  }
}

Message read_v1_payload(MsgType type, support::ByteReader& r) {
  Message m;
  m.type = type;
  m.from = static_cast<NodeId>(r.varint());
  m.best_known = r.f64();
  m.request_id = r.varint();
  if (!r.ok()) return m;
  switch (type) {
    case MsgType::kWorkRequest:
      break;
    case MsgType::kWorkDeny:
      m.busy = r.u8() != 0;
      break;
    case MsgType::kWorkGrant: {
      const std::uint64_t n = r.varint();
      if (!r.fits_count(n, 9)) break;  // >= 1 byte code + 8 bytes bound each
      m.problems.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        bnb::Subproblem p;
        p.code = PathCode::decode(r);
        p.bound = r.f64();
        if (!r.ok()) break;
        m.problems.push_back(std::move(p));
      }
      break;
    }
    case MsgType::kRootReport: {
      const std::uint64_t n = r.varint();
      if (!r.fits_count(n)) break;
      m.codes.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        PathCode c = PathCode::decode(r);
        if (!r.ok()) break;
        m.codes.push_back(std::move(c));
      }
      break;
    }
    case MsgType::kWorkReport:
    case MsgType::kTableGossip: {
      static const PathCode kEmpty;
      m.report_seq = r.varint();
      PathCode base;
      if (r.ok() && m.report_seq > 0) base = PathCode::decode(r);
      const std::uint64_t n = r.varint();
      if (!r.fits_count(n, 2)) break;  // >= trim + add varints each
      m.codes.reserve(n);
      const PathCode* prev = m.report_seq > 0 ? &base : &kEmpty;
      for (std::uint64_t i = 0; i < n; ++i) {
        PathCode c = decode_delta(*prev, r);
        if (!r.ok()) break;
        m.codes.push_back(std::move(c));
        prev = &m.codes.back();
      }
      break;
    }
  }
  return m;
}

}  // namespace

void FrameCodec::encode(const Message& msg, ReportDeltaState* state,
                        support::ByteWriter& w) const {
  if (version_ == FrameVersion::kLegacy) {
    msg.encode(w);
    return;
  }
  const ReportPlan plan =
      is_report(msg.type) ? plan_report(msg, state) : ReportPlan{};
  support::ByteWriter counter = support::ByteWriter::counting();
  write_v1_payload(msg, plan, counter);
  w.u8(kFrameMagic);
  w.u8(static_cast<std::uint8_t>(FrameVersion::kV1));
  w.u8(static_cast<std::uint8_t>(msg.type));
  w.varint(counter.size());
  write_v1_payload(msg, plan, w);
}

std::size_t FrameCodec::frame_size(const Message& msg,
                                   ReportDeltaState* state) const {
  support::ByteWriter w = support::ByteWriter::counting();
  encode(msg, state, w);
  return w.size();
}

FrameDecode FrameCodec::decode(const std::uint8_t* data, std::size_t size) {
  FrameDecode out;
  if (size == 0) {
    out.status = DecodeStatus::kTruncated;
    return out;
  }
  if (data[0] != kFrameMagic) {
    // Legacy frame: the raw seed-era encoding, first byte is the MsgType.
    if (!known_type(data[0])) {
      out.status = DecodeStatus::kBadMagic;
      return out;
    }
    support::ByteReader r(data, size, support::ByteReader::Policy::kTolerant);
    out.version = FrameVersion::kLegacy;
    out.msg = Message::decode(r);
    if (!r.ok()) {
      out.status = DecodeStatus::kCorruptPayload;
    } else if (!r.done()) {
      out.status = DecodeStatus::kLengthMismatch;
    } else {
      out.status = DecodeStatus::kOk;
    }
    return out;
  }
  support::ByteReader h(data, size, support::ByteReader::Policy::kTolerant);
  (void)h.u8();  // magic, already matched
  const std::uint8_t version = h.u8();
  if (h.ok() && version != static_cast<std::uint8_t>(FrameVersion::kV1)) {
    out.status = DecodeStatus::kUnknownVersion;
    return out;
  }
  const std::uint8_t raw_type = h.u8();
  const std::uint64_t length = h.varint();
  if (!h.ok()) {
    out.status = DecodeStatus::kTruncated;
    return out;
  }
  out.version = FrameVersion::kV1;
  if (!known_type(raw_type)) {
    out.status = DecodeStatus::kUnknownType;
    return out;
  }
  // One frame per buffer: the declared payload must be exactly what's left.
  if (length != h.remaining()) {
    out.status = DecodeStatus::kLengthMismatch;
    return out;
  }
  support::ByteReader payload(data + (size - h.remaining()),
                              static_cast<std::size_t>(length),
                              support::ByteReader::Policy::kTolerant);
  out.msg = read_v1_payload(static_cast<MsgType>(raw_type), payload);
  if (!payload.ok()) {
    out.status = DecodeStatus::kCorruptPayload;
  } else if (!payload.done()) {
    out.status = DecodeStatus::kLengthMismatch;
  } else {
    out.status = DecodeStatus::kOk;
  }
  return out;
}

FrameDecode FrameCodec::decode(const std::vector<std::uint8_t>& buf) {
  return decode(buf.data(), buf.size());
}

}  // namespace ftbb::core
