#include "core/code_set.hpp"

#include <algorithm>

namespace ftbb::core {

CodeSet::CodeSet() { clear(); }

void CodeSet::clear() {
  nodes_.clear();
  free_list_.clear();
  complete_count_ = 0;
  body_bytes_ = 0;
  live_nodes_ = 0;
  root_complete_ = false;
  ++version_;
  // Release memo storage: a cleared table (worker restart, scratch reuse)
  // should not pin the previous incarnation's contracted list.
  export_memo_.clear();
  export_memo_.shrink_to_fit();
  complement_memo_.clear();
  complement_memo_.shrink_to_fit();
  // Node 0 is always the root problem.
  nodes_.push_back(Node{});
  nodes_[0].in_use = true;
  live_nodes_ = 1;
}

std::int32_t CodeSet::alloc_node() {
  ++live_nodes_;
  if (!free_list_.empty()) {
    const std::int32_t idx = free_list_.back();
    free_list_.pop_back();
    nodes_[static_cast<std::size_t>(idx)] = Node{};
    nodes_[static_cast<std::size_t>(idx)].in_use = true;
    return idx;
  }
  nodes_.push_back(Node{});
  nodes_.back().in_use = true;
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

void CodeSet::free_subtree(std::int32_t idx) {
  Node& n = nodes_[static_cast<std::size_t>(idx)];
  for (const std::int32_t c : n.child) {
    if (c >= 0) free_subtree(c);
  }
  n.in_use = false;
  --live_nodes_;
  free_list_.push_back(idx);
}

void CodeSet::drop_completed_below(std::int32_t idx) {
  // Codes completed somewhere under idx are about to be subsumed by an
  // ancestor; remove them from the export accounting before the subtree is
  // discarded.
  const Node& n = nodes_[static_cast<std::size_t>(idx)];
  if (n.complete) {
    --complete_count_;
    body_bytes_ -= code_bytes(n);
    return;  // complete nodes are leaves; nothing below
  }
  for (const std::int32_t c : n.child) {
    if (c >= 0) drop_completed_below(c);
  }
}

void CodeSet::mark_complete(std::int32_t idx, InsertResult& res) {
  {
    Node& n = nodes_[static_cast<std::size_t>(idx)];
    FTBB_CHECK(!n.complete);
    // Subsume any completions previously recorded inside this subtree.
    for (std::int32_t& c : n.child) {
      if (c >= 0) {
        drop_completed_below(c);
        free_subtree(c);
        c = -1;
      }
    }
    n.complete = true;
    if (idx == 0) root_complete_ = true;
    ++complete_count_;
    body_bytes_ += code_bytes(n);
  }

  // List contraction: while the sibling is also complete, replace the pair
  // by their parent (recursively) — Section 5.3.2.
  std::int32_t cur = idx;
  while (true) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    const std::int32_t parent = n.parent;
    if (parent < 0) break;  // reached the root
    Node& p = nodes_[static_cast<std::size_t>(parent)];
    const std::int32_t sib = p.child[n.bit_in_parent ^ 1];
    if (sib < 0 || !nodes_[static_cast<std::size_t>(sib)].complete) break;

    // Both children complete -> parent complete.
    for (const std::int32_t c : p.child) {
      --complete_count_;
      body_bytes_ -= code_bytes(nodes_[static_cast<std::size_t>(c)]);
      free_subtree(c);
    }
    p.child[0] = -1;
    p.child[1] = -1;
    p.complete = true;
    if (parent == 0) root_complete_ = true;
    ++complete_count_;
    body_bytes_ += code_bytes(p);
    ++res.merges;
    cur = parent;
  }
}

CodeSet::InsertResult CodeSet::insert(PathView code) {
  InsertResult res;
  std::int32_t cur = 0;
  for (std::size_t i = 0; i < code.depth(); ++i) {
    Node& n = nodes_[static_cast<std::size_t>(cur)];
    ++res.nodes_walked;
    if (n.complete) return res;  // covered by an ancestor; nothing to do
    const std::uint32_t var = code.var(i);
    const std::uint8_t bit = code.bit(i);
    if (n.var == kNoVar) {
      n.var = var;
    } else {
      FTBB_CHECK_MSG(n.var == var,
                     "CodeSet: codes disagree on a node's branching variable "
                     "(codes must come from one search tree)");
    }
    std::int32_t next = n.child[bit];
    if (next < 0) {
      next = alloc_node();
      Node& parent = nodes_[static_cast<std::size_t>(cur)];  // realloc-safe refetch
      Node& child = nodes_[static_cast<std::size_t>(next)];
      child.parent = cur;
      child.bit_in_parent = bit;
      child.depth = parent.depth + 1;
      child.body_bytes =
          parent.body_bytes +
          static_cast<std::uint32_t>(support::varint_size(code.word(i)));
      parent.child[bit] = next;
    }
    cur = next;
  }
  ++res.nodes_walked;
  if (nodes_[static_cast<std::size_t>(cur)].complete) return res;
  res.newly_covered = true;
  // The trie changes iff the code is newly covered: fresh nodes are only
  // allocated along a path whose endpoint was not yet complete (and then
  // that endpoint is completed right here), so no-op inserts — common when
  // stale gossip re-reports known completions — keep the memos warm.
  ++version_;
  mark_complete(cur, res);
  return res;
}

CodeSet::InsertResult CodeSet::insert_all(const std::vector<PathCode>& codes) {
  InsertResult total;
  for (const PathCode& c : codes) {
    const InsertResult r = insert(c);
    total.newly_covered = total.newly_covered || r.newly_covered;
    total.nodes_walked += r.nodes_walked;
    total.merges += r.merges;
  }
  return total;
}

bool CodeSet::covered(PathView code) const {
  std::int32_t cur = 0;
  for (std::size_t i = 0; i < code.depth(); ++i) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    if (n.complete) return true;
    if (n.var != kNoVar && n.var != code.var(i)) return false;  // different tree region knowledge
    const std::int32_t next = n.child[code.bit(i)];
    if (next < 0) return false;
    cur = next;
  }
  return nodes_[static_cast<std::size_t>(cur)].complete;
}

std::optional<std::size_t> CodeSet::covering_prefix_len(PathView code) const {
  std::int32_t cur = 0;
  for (std::size_t i = 0; i < code.depth(); ++i) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    if (n.complete) return i;
    if (n.var != kNoVar && n.var != code.var(i)) return std::nullopt;
    const std::int32_t next = n.child[code.bit(i)];
    if (next < 0) return std::nullopt;
    cur = next;
  }
  if (nodes_[static_cast<std::size_t>(cur)].complete) return code.depth();
  return std::nullopt;
}

std::optional<PathCode> CodeSet::covering_code(PathView code) const {
  const std::optional<std::size_t> len = covering_prefix_len(code);
  if (!len.has_value()) return std::nullopt;
  return PathCode(code.prefix(*len));
}


void CodeSet::emit(const PathCode& path, std::vector<PathCode>& out,
                   std::size_t& n) {
  if (n < out.size()) {
    out[n] = path;  // copy-assign recycles the element's heap capacity
  } else {
    out.push_back(path);
  }
  ++n;
}

void CodeSet::copy_codes(const std::vector<PathCode>& src,
                         std::vector<PathCode>& out) {
  out.reserve(src.size());
  const std::size_t common = std::min(src.size(), out.size());
  for (std::size_t i = 0; i < common; ++i) out[i] = src[i];
  for (std::size_t i = common; i < src.size(); ++i) out.push_back(src[i]);
  out.resize(src.size());
}

void CodeSet::export_dfs(std::int32_t idx, PathCode& path,
                         std::vector<PathCode>& out, std::size_t& n) const {
  const Node& node = nodes_[static_cast<std::size_t>(idx)];
  if (node.complete) {
    emit(path, out, n);
    return;
  }
  for (std::uint32_t bit = 0; bit < 2; ++bit) {
    const std::int32_t c = node.child[bit];
    if (c < 0) continue;
    // Unchecked push: node.var was validated when the trie learned it.
    path.push_word((node.var << 1) | bit);
    export_dfs(c, path, out, n);
    path.pop_step();
  }
}

void CodeSet::export_into(std::vector<PathCode>& out) const {
  if (export_memo_version_ != version_) {
    export_memo_.reserve(complete_count_);
    std::size_t n = 0;
    PathCode path;
    export_dfs(0, path, export_memo_, n);
    export_memo_.resize(n);
    export_memo_version_ = version_;
  }
  copy_codes(export_memo_, out);
}

std::vector<PathCode> CodeSet::export_codes() const {
  std::vector<PathCode> out;
  export_into(out);
  return out;
}

void CodeSet::complement_dfs(std::int32_t idx, PathCode& path,
                             std::vector<PathCode>& out, std::size_t& n) const {
  const Node& node = nodes_[static_cast<std::size_t>(idx)];
  if (node.complete) return;
  if (node.var == kNoVar) {
    // No completion was ever reported below this node: the whole region is
    // uncovered. (Only reachable for the empty table's root.)
    emit(path, out, n);
    return;
  }
  for (std::uint32_t bit = 0; bit < 2; ++bit) {
    const std::int32_t c = node.child[bit];
    if (c < 0) {
      // The sibling region never mentioned in any report; its tree node
      // exists because this node was expanded on node.var.
      path.push_word((node.var << 1) | bit);
      emit(path, out, n);
      path.pop_step();
    } else if (!nodes_[static_cast<std::size_t>(c)].complete) {
      path.push_word((node.var << 1) | bit);
      complement_dfs(c, path, out, n);
      path.pop_step();
    }
  }
}

void CodeSet::complement_into(std::vector<PathCode>& out) const {
  if (complement_memo_version_ != version_) {
    std::size_t n = 0;
    PathCode path;
    complement_dfs(0, path, complement_memo_, n);
    complement_memo_.resize(n);
    complement_memo_version_ = version_;
  }
  copy_codes(complement_memo_, out);
}

std::vector<PathCode> CodeSet::complement() const {
  std::vector<PathCode> out;
  complement_into(out);
  return out;
}

void CodeSet::check_invariants() const {
  std::size_t complete_seen = 0;
  std::size_t bytes_seen = 0;
  std::size_t live_seen = 0;
  // Iterative DFS with explicit parent verification.
  struct Frame {
    std::int32_t idx;
  };
  std::vector<Frame> stack{{0}};
  while (!stack.empty()) {
    const std::int32_t idx = stack.back().idx;
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    FTBB_CHECK_MSG(n.in_use, "CodeSet: reachable node not in_use");
    ++live_seen;
    if (n.complete) {
      ++complete_seen;
      bytes_seen += code_bytes(n);
      FTBB_CHECK_MSG(n.child[0] < 0 && n.child[1] < 0,
                     "CodeSet: complete node must be a leaf");
      continue;
    }
    const bool c0 = n.child[0] >= 0 &&
                    nodes_[static_cast<std::size_t>(n.child[0])].complete;
    const bool c1 = n.child[1] >= 0 &&
                    nodes_[static_cast<std::size_t>(n.child[1])].complete;
    FTBB_CHECK_MSG(!(c0 && c1), "CodeSet: uncontracted sibling pair");
    for (int bit = 0; bit < 2; ++bit) {
      const std::int32_t c = n.child[bit];
      if (c < 0) continue;
      const Node& ch = nodes_[static_cast<std::size_t>(c)];
      FTBB_CHECK(ch.parent == idx);
      FTBB_CHECK(ch.bit_in_parent == bit);
      FTBB_CHECK(ch.depth == n.depth + 1);
      stack.push_back({c});
    }
  }
  FTBB_CHECK_MSG(complete_seen == complete_count_, "CodeSet: stale code_count");
  FTBB_CHECK_MSG(bytes_seen == body_bytes_, "CodeSet: stale byte accounting");
  FTBB_CHECK_MSG(live_seen == live_nodes_, "CodeSet: stale live node count");
}

std::string CodeSet::to_string() const {
  std::string s = "{";
  bool first = true;
  for (const PathCode& c : export_codes()) {
    if (!first) s += ", ";
    first = false;
    s += c.to_string();
  }
  s += "}";
  return s;
}

}  // namespace ftbb::core
