#include "core/messages.hpp"

#include "support/check.hpp"

namespace ftbb::core {

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kWorkRequest:
      return "work-request";
    case MsgType::kWorkGrant:
      return "work-grant";
    case MsgType::kWorkDeny:
      return "work-deny";
    case MsgType::kWorkReport:
      return "work-report";
    case MsgType::kTableGossip:
      return "table-gossip";
    case MsgType::kRootReport:
      return "root-report";
  }
  return "?";
}

void Message::encode(support::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.varint(from);
  w.f64(best_known);
  w.varint(request_id);
  switch (type) {
    case MsgType::kWorkRequest:
      break;
    case MsgType::kWorkDeny:
      w.u8(busy ? 1 : 0);
      break;
    case MsgType::kWorkGrant:
      w.varint(problems.size());
      for (const bnb::Subproblem& p : problems) {
        p.code.encode(w);
        w.f64(p.bound);
      }
      break;
    case MsgType::kWorkReport:
    case MsgType::kTableGossip:
    case MsgType::kRootReport:
      w.varint(codes.size());
      for (const PathCode& c : codes) c.encode(w);
      break;
  }
}

Message Message::decode(support::ByteReader& r) {
  Message m;
  m.type = static_cast<MsgType>(r.u8());
  m.from = static_cast<NodeId>(r.varint());
  m.best_known = r.f64();
  m.request_id = r.varint();
  if (!r.ok()) return m;
  switch (m.type) {
    case MsgType::kWorkRequest:
      break;
    case MsgType::kWorkDeny:
      m.busy = r.u8() != 0;
      break;
    case MsgType::kWorkGrant: {
      const std::uint64_t n = r.varint();
      // A grant element is at least 1 byte of code plus 8 bytes of bound;
      // fits_count bounds the reserve against the actual input size.
      if (!r.fits_count(n, 9)) break;
      m.problems.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        bnb::Subproblem p;
        p.code = PathCode::decode(r);
        p.bound = r.f64();
        if (!r.ok()) break;
        m.problems.push_back(std::move(p));
      }
      break;
    }
    case MsgType::kWorkReport:
    case MsgType::kTableGossip:
    case MsgType::kRootReport: {
      const std::uint64_t n = r.varint();
      if (!r.fits_count(n)) break;
      m.codes.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        PathCode c = PathCode::decode(r);
        if (!r.ok()) break;
        m.codes.push_back(std::move(c));
      }
      break;
    }
    default:
      // Recoverable with a tolerant reader (the transport drops the frame);
      // still an abort on the trusted in-simulator path.
      r.mark_corrupt("Message::decode: unknown type");
      break;
  }
  return m;
}

std::size_t Message::wire_size() const {
  support::ByteWriter w = support::ByteWriter::counting();
  encode(w);
  return w.size();
}

std::string Message::summary() const {
  std::string s = to_string(type);
  s += " from=" + std::to_string(from);
  if (!problems.empty()) s += " problems=" + std::to_string(problems.size());
  if (!codes.empty()) s += " codes=" + std::to_string(codes.size());
  return s;
}

}  // namespace ftbb::core
