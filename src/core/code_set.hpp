// Completion table with list contraction and complement (Section 5.3.2).
//
// A CodeSet stores the set of subproblems *known to be completed*, in
// contracted form: whenever both children of a node are completed the two
// sibling codes are replaced by the parent's code, recursively, and any code
// covered by a completed ancestor is dropped. The contracted set is exactly
// the "table of completed problems" each member maintains; work reports are
// contracted the same way before being sent.
//
// Termination detection (Section 5.4) falls out of the representation: the
// computation is finished precisely when the table contracts to the single
// code of the root problem.
//
// Failure recovery (Section 5.3.2) uses the *complement*: the sibling of any
// stored code — or of any proper prefix of one — that is not itself covered
// identifies a subproblem that provably exists in the search tree (its
// parent was expanded) and is not known to be completed. complement() enumerates
// the maximal such regions.
//
// Implementation: a binary trie keyed by branching decisions. Completed
// nodes are trie leaves (their subtrees are pruned on completion), so the
// exported code list is the set of completed trie leaves. All codes inserted
// into one CodeSet must originate from a single underlying search tree
// (decomposition is deterministic per node), which the trie checks: the
// branching variable learned for a node must match on every later insert.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/path_code.hpp"
#include "support/bytes.hpp"

namespace ftbb::core {

class CodeSet {
 public:
  static constexpr std::uint32_t kNoVar = 0xffffffffu;

  /// Outcome of an insert, with the work performed — the simulator charges
  /// list-contraction time proportional to `nodes_walked + merges`.
  struct InsertResult {
    bool newly_covered = false;  // false when the code was already covered
    std::uint32_t nodes_walked = 0;
    std::uint32_t merges = 0;  // sibling-pair contractions triggered
  };

  CodeSet();

  /// Records `code` as completed; contracts upward. Idempotent. Takes a
  /// view (a PathCode converts implicitly): the walk only reads steps.
  InsertResult insert(PathView code);

  /// Inserts every code of a report/table snapshot; returns summed stats and
  /// whether anything changed.
  InsertResult insert_all(const std::vector<PathCode>& codes);

  /// True when `code` or one of its ancestors is recorded completed.
  [[nodiscard]] bool covered(PathView code) const;

  /// The maximal completed code covering `code` (itself or its highest
  /// completed ancestor), or nullopt when uncovered. Work reports use this
  /// to ship the most contracted representative of each fresh completion.
  [[nodiscard]] std::optional<PathCode> covering_code(PathView code) const;

  /// Length of the covering prefix: covering_code(code) is always
  /// code.prefix(*covering_prefix_len(code)), so callers that only need the
  /// region — not an owned copy — take the zero-copy view code.prefix(len).
  [[nodiscard]] std::optional<std::size_t> covering_prefix_len(
      PathView code) const;

  /// Termination predicate: the table contracted to the root code.
  /// Defined inline below the class: every scheduling step polls it, and a
  /// cross-TU call for a single flag load is measurable at planetary scale.
  [[nodiscard]] bool root_complete() const;

  /// Contracted list of completed codes, in deterministic DFS order
  /// (left branch first). This is what a full-table gossip message carries.
  [[nodiscard]] std::vector<PathCode> export_codes() const;

  /// export_codes() into a caller-owned buffer. Existing elements are
  /// overwritten in place (copy-assign reuses each element's heap capacity)
  /// and the vector is resized to the result, so a worker passing the same
  /// scratch vector every report/gossip cycle reaches a zero-allocation
  /// steady state even for codes deeper than the inline buffer.
  void export_into(std::vector<PathCode>& out) const;

  /// Maximal regions of the tree *not* covered by this table: for every
  /// incomplete trie node, branches that were never reported under. Each
  /// returned code is a real tree node (see file comment). The root-only
  /// answer {()} is returned for an empty table. Returns {} iff the root is
  /// complete.
  [[nodiscard]] std::vector<PathCode> complement() const;

  /// complement() into a caller-owned buffer — the recovery path's
  /// scratch-reusing variant, with the same overwrite-in-place contract as
  /// export_into().
  void complement_into(std::vector<PathCode>& out) const;

  /// Number of codes in the contracted representation.
  [[nodiscard]] std::size_t code_count() const { return complete_count_; }

  [[nodiscard]] bool empty() const { return complete_count_ == 0; }

  /// Exact wire size of export_codes() (varint count header + each code),
  /// maintained incrementally; this is the storage-space unit of Table 1.
  [[nodiscard]] std::size_t encoded_bytes() const {
    return support::varint_size(complete_count_) + body_bytes_;
  }

  /// Trie footprint, for memory diagnostics.
  [[nodiscard]] std::size_t trie_nodes() const { return live_nodes_; }

  void clear();

  /// Deep structural validation for tests: complete nodes are leaves, no two
  /// complete siblings, incremental counters match a recount. Aborts on
  /// violation.
  void check_invariants() const;

  /// Two tables are equivalent iff their contracted exports match.
  friend bool operator==(const CodeSet& a, const CodeSet& b) {
    return a.export_codes() == b.export_codes();
  }

  [[nodiscard]] std::string to_string() const;

 private:
  struct Node {
    std::uint32_t var = kNoVar;  // variable this tree node branches on
    std::int32_t parent = -1;
    std::int32_t child[2] = {-1, -1};
    std::uint32_t depth = 0;
    std::uint32_t body_bytes = 0;  // encoded bytes of the steps of this path
    std::uint8_t bit_in_parent = 0;
    bool complete = false;
    bool in_use = false;
  };

  [[nodiscard]] std::size_t code_bytes(const Node& n) const {
    return support::varint_size(n.depth) + n.body_bytes;
  }

  std::int32_t alloc_node();
  void free_subtree(std::int32_t idx);      // releases idx and descendants
  void drop_completed_below(std::int32_t idx);  // accounting for subsumed codes
  void mark_complete(std::int32_t idx, InsertResult& res);

  /// Appends `path` at out[n++], overwriting a previous element when one
  /// exists so its heap capacity is recycled.
  static void emit(const PathCode& path, std::vector<PathCode>& out,
                   std::size_t& n);
  /// Element-wise copy with the same capacity-recycling contract as emit().
  static void copy_codes(const std::vector<PathCode>& src,
                         std::vector<PathCode>& out);
  void export_dfs(std::int32_t idx, PathCode& path,
                  std::vector<PathCode>& out, std::size_t& n) const;
  void complement_dfs(std::int32_t idx, PathCode& path,
                      std::vector<PathCode>& out, std::size_t& n) const;

  std::vector<Node> nodes_;
  std::vector<std::int32_t> free_list_;
  std::size_t complete_count_ = 0;
  std::size_t body_bytes_ = 0;  // sum over completed leaves of code body+header bytes (see encoded_bytes)
  std::size_t live_nodes_ = 0;
  /// Bumped by every mutation that changes the completed set. The export and
  /// complement enumerations are memoized against it: a table gossiped to k
  /// peers (or complemented repeatedly during recovery) between mutations
  /// walks the trie once and serves the next k-1 calls from the memo as a
  /// flat element-wise copy. The memos cost one contracted list each — small
  /// by design (compactness of the contracted form is the paper's Table 1
  /// point) — and are lazily built, so tables that never export pay nothing.
  std::uint64_t version_ = 0;
  mutable std::vector<PathCode> export_memo_;
  mutable std::uint64_t export_memo_version_ = ~std::uint64_t{0};
  mutable std::vector<PathCode> complement_memo_;
  mutable std::uint64_t complement_memo_version_ = ~std::uint64_t{0};
  /// Mirrors nodes_[0].complete. The termination predicate is polled on
  /// every scheduling step; reading it from the CodeSet object itself (hot
  /// next to the owning worker's state) skips a dependent load into the
  /// nodes_ heap block.
  bool root_complete_ = false;
};

inline bool CodeSet::root_complete() const { return root_complete_; }

}  // namespace ftbb::core
