// Versioned binary wire frames (the transport layer under every Message).
//
// The seed era shipped Messages as the raw struct encoding of
// core/messages.cpp: no magic, no version, no length — fine for an
// in-process object handoff, unusable the moment the bytes cross a socket
// ("Building on Quicksand": every message is at-least-once-delivered bytes
// on a wire). FrameCodec wraps every MsgType in a self-describing frame and
// owns the encoding-version negotiation:
//
//  * kLegacy (v0): byte-identical to the seed encoding, unframed. The first
//    wire byte is the MsgType (1..6), which can never collide with the v1
//    magic byte. Simulated ftbb runs default to this so the pinned golden
//    ScenarioReport fingerprints (which hash byte counts) stay valid.
//
//  * kV1: a framed, length-prefixed encoding —
//
//        offset  field            size
//        0       magic 0xFB       1 byte
//        1       version (1)      1 byte
//        2       MsgType          1 byte
//        3       payload length   varint
//        ...     payload          `length` bytes
//
//    with a payload that delta-encodes kWorkReport / kTableGossip code
//    lists: each code is shipped as (trim, add, steps...) against the
//    previous code in the chain, and the chain itself starts from the last
//    code of the sender's *previous* report (the shipped base), so
//    consecutive batches from one worker — which the contraction machinery
//    keeps sorted and clustered — cost a handful of bytes per code. The
//    base travels in the frame, so every report is self-delimiting and
//    decodable by any receiver (reports fan out to m random peers over
//    lossy links; receiver-side delta state would strand most of them).
//
// Sender-side delta memory lives in a ReportDeltaState owned by the
// transport, one per worker *incarnation*: the simulator's WorkerHost
// resets it on revive() and the rt runtime's Incarnation simply dies with
// it, so a revived worker never deltas against a dead predecessor's last
// report — its first post-revive report has wire sequence 0 and no base.
//
// Decoding never trusts the input: corrupt, truncated, oversized-count, or
// unknown-version frames come back as a DecodeStatus the transport can drop
// and count, never an abort or an over-allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/messages.hpp"
#include "support/bytes.hpp"

namespace ftbb::core {

enum class FrameVersion : std::uint8_t {
  kLegacy = 0,  // seed-era flat encoding, unframed
  kV1 = 1,      // magic/version/type/length frame, delta-coded reports
};

[[nodiscard]] const char* to_string(FrameVersion version);

/// First byte of every v1 frame. Legacy frames start with their MsgType
/// (1..6), so the sniffer in decode() can tell the formats apart.
inline constexpr std::uint8_t kFrameMagic = 0xFB;

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kTruncated = 1,        // input ended inside the header or payload
  kBadMagic = 2,         // neither a v1 magic nor a legacy MsgType byte
  kUnknownVersion = 3,   // v1 magic followed by a version we do not speak
  kUnknownType = 4,      // framed type outside the MsgType enum
  kCorruptPayload = 5,   // payload failed validation (counts, depths, deltas)
  kLengthMismatch = 6,   // declared payload length != bytes on the wire
};

[[nodiscard]] const char* to_string(DecodeStatus status);

/// Per-sender (per-incarnation) delta memory for report frames. The codec
/// advances it once per Message::report_seq value, so the m fanout copies
/// of one batch encode identically; frame_size() and encode() advance it
/// through the same path and are idempotent for a repeated batch.
struct ReportDeltaState {
  bool active = false;        // a report batch has been encoded this incarnation
  std::uint64_t seq = 0;      // wire sequence of the current batch (0-based)
  std::uint64_t batch_id = 0; // Message::report_seq of the current batch
  PathCode prev_last;         // delta base: last code of the previous batch
  PathCode cur_last;          // last code of the current batch

  void reset() { *this = ReportDeltaState{}; }
};

struct FrameDecode {
  DecodeStatus status = DecodeStatus::kTruncated;
  FrameVersion version = FrameVersion::kLegacy;
  Message msg;

  [[nodiscard]] bool ok() const { return status == DecodeStatus::kOk; }
};

class FrameCodec {
 public:
  explicit FrameCodec(FrameVersion version = FrameVersion::kLegacy)
      : version_(version) {}

  [[nodiscard]] FrameVersion version() const { return version_; }

  /// Encodes one frame of the configured version, advancing `state` for
  /// report/gossip messages (nullptr: stateless, every report ships
  /// self-contained with sequence 0).
  void encode(const Message& msg, ReportDeltaState* state,
              support::ByteWriter& w) const;

  /// Exact frame size in bytes via a counting writer — no allocation. The L
  /// of the paper's 1.5 + 0.005*L ms latency charge under this codec.
  /// Advances `state` identically to encode().
  [[nodiscard]] std::size_t frame_size(const Message& msg,
                                       ReportDeltaState* state) const;

  /// Decodes one frame of either version (sniffed from the first byte).
  /// Never aborts, never over-allocates: any malformed input returns a
  /// non-kOk status the transport can drop and count.
  [[nodiscard]] static FrameDecode decode(const std::uint8_t* data,
                                          std::size_t size);
  [[nodiscard]] static FrameDecode decode(const std::vector<std::uint8_t>& buf);

 private:
  FrameVersion version_;
};

}  // namespace ftbb::core
