#include "fault/driver.hpp"

#include <utility>

#include "support/check.hpp"

namespace ftbb::fault {

FaultDriver::FaultDriver(FaultSchedule schedule, IFaultBackend* backend,
                         IFaultClock* clock)
    : schedule_(std::move(schedule)), backend_(backend), clock_(clock) {
  FTBB_CHECK(backend_ != nullptr && clock_ != nullptr);
}

void FaultDriver::schedule_injection(double at, sim::Callback injection) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  clock_->call_at(at, [this, injection = std::move(injection)]() mutable {
    injection();
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    if (on_fire_) on_fire_();
  });
}

void FaultDriver::arm(double horizon) {
  FTBB_CHECK_MSG(!armed_, "a FaultDriver arms exactly once");
  armed_ = true;
  FTBB_CHECK(schedule_.population >= 1);
  FTBB_CHECK_MSG(schedule_.join_times.empty() ||
                     schedule_.join_times.size() == schedule_.population,
                 "join_times must be empty or one entry per member");

  for (const sim::LossRule& rule : schedule_.loss_rules) {
    backend_->set_loss_rule(rule);
  }
  for (const sim::Partition& partition : schedule_.partitions) {
    backend_->set_partition(partition);
  }
  for (const CrashAt& crash : schedule_.crashes) {
    FTBB_CHECK(crash.node < schedule_.population);
    schedule_injection(crash.time,
                       [this, node = crash.node]() { backend_->crash(node); });
  }
  for (const ReviveAt& revive : schedule_.revives) {
    FTBB_CHECK(revive.node < schedule_.population);
    schedule_injection(revive.time,
                       [this, node = revive.node]() { backend_->revive(node); });
  }
  for (std::uint32_t node = 0; node < schedule_.population; ++node) {
    const double when =
        schedule_.join_times.empty() ? 0.0 : schedule_.join_times[node];
    if (when >= horizon) {
      // This member can never participate; do not hold the run open for it
      // (and leave no stray far-future event in the queue).
      backend_->abandon_join(node);
      continue;
    }
    schedule_injection(when, [this, node]() { backend_->join(node); });
  }
}

}  // namespace ftbb::fault
