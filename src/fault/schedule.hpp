// The compiled form of a FaultPlan: one population-resolved, validated
// injection schedule, independent of any execution substrate.
//
// A FaultPlan is authored against protocol node ids with open-ended
// conveniences (split_halves / isolate windows that need the population to
// materialize, churn arrivals that extend the population). Compiling it
// resolves all of that once — population, join-time vector, explicit
// partition groups, validation — so every backend consumes the same
// normalized schedule instead of re-deriving it. This is the layer the
// application-level fault-tolerance literature argues for: the fault model
// lives above the substrates, and each substrate only needs the narrow
// capability surface in driver.hpp to replay it.
//
// Substrates whose network ids differ from protocol ids (the centralized
// baseline inserts the manager at network id 0) use remapped() instead of
// hand-shifting every spec.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/fault_plan.hpp"
#include "sim/network.hpp"

namespace ftbb::fault {

struct CrashAt {
  std::uint32_t node = 0;
  double time = 0.0;
};

struct ReviveAt {
  std::uint32_t node = 0;
  double time = 0.0;
};

struct FaultSchedule {
  /// Protocol population: the initial workers plus every churn arrival the
  /// plan references. Backends size their member tables from this.
  std::uint32_t population = 0;

  std::vector<CrashAt> crashes;
  std::vector<ReviveAt> revives;
  /// Empty (everyone joins at t=0), or one entry per member.
  std::vector<double> join_times;
  std::vector<sim::Partition> partitions;
  std::vector<sim::LossRule> loss_rules;

  /// The plan's canonical time-ordered event list, resolved (split windows
  /// materialized). Reports embed this, so it is part of the compile
  /// artifact rather than re-derived per backend.
  std::vector<sim::FaultPlan::TimedFault> timeline;

  /// Resolves `plan` against at least `min_workers` members: computes the
  /// population, materializes pending partition windows, validates node
  /// ranges / rejoin ordering / join times (node 0 seeds the computation and
  /// must join at 0; churn arrivals beyond the initial population need a
  /// join time). Aborts via FTBB_CHECK on an invalid plan.
  [[nodiscard]] static FaultSchedule compile(const sim::FaultPlan& plan,
                                             std::uint32_t min_workers);

  /// The same schedule expressed against network ids shifted up by
  /// `id_offset` (infrastructure nodes occupy [0, id_offset); they share
  /// partition group with protocol node 0 and are never crashed by a plan).
  /// join_times stay per-protocol-member — late-join semantics belong to the
  /// members, not the infrastructure.
  [[nodiscard]] FaultSchedule remapped(std::uint32_t id_offset) const;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && revives.empty() && join_times.empty() &&
           partitions.empty() && loss_rules.empty();
  }
};

}  // namespace ftbb::fault
