// Backend-agnostic FaultPlan execution.
//
// A FaultDriver interprets one compiled FaultSchedule against any execution
// substrate through two narrow abstractions:
//
//   * IFaultBackend — the capability surface a runtime must expose to be
//     fault-injectable: crash(node), revive(node), join(node) plus the
//     static window installers set_partition()/set_loss_rule(). The
//     discrete-event SimCluster and the thread-backed rt::Cluster both
//     implement it; what "crash" means (dropping a virtual host vs. tearing
//     down an OS thread) stays the backend's business.
//
//   * IFaultClock — where injection deadlines live: virtual simulation time
//     (kernel.at on the control stream) or wall-clock deadline scheduling.
//     The driver never owns a thread or a queue of its own, so arming is
//     cheap and the backend's own scheduler keeps full control of ordering.
//
// The driver also owns the two shutdown subtleties that used to be bespoke
// runtime code: every timed injection counts as *pending* until it fired, so
// a fast computation cannot conclude out from under a scheduled fault (the
// configured adversity would silently never land), and injections aimed at
// nodes that already left (crash of a dead node, revive of a live one) are
// delivered anyway and resolved by the backend's idempotent capability
// methods — no caller-side dedupe required.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "fault/schedule.hpp"
#include "sim/callback.hpp"

namespace ftbb::fault {

/// What a substrate must be able to do for a FaultSchedule to replay on it.
/// All methods are invoked from the clock's dispatch context (the simulator's
/// control stream, or the runtime's scheduler thread) and must tolerate
/// redundant calls: crash() of an already-dead or already-halted node,
/// revive() of a live one, and join() of a crashed one are no-ops.
class IFaultBackend {
 public:
  virtual ~IFaultBackend() = default;

  /// Crash-stop failure: the node's state vanishes and it falls silent.
  virtual void crash(std::uint32_t node) = 0;

  /// A previously crashed node re-enters as a fresh, empty incarnation.
  virtual void revive(std::uint32_t node) = 0;

  /// Membership arrival (t=0 for the initial population, later for churn).
  virtual void join(std::uint32_t node) = 0;

  /// The node's join time lies at/beyond the horizon: it can never
  /// participate, and the run must not be held open waiting for it.
  virtual void abandon_join(std::uint32_t node) = 0;

  /// Installs one temporary partition window (self-contained: carries its
  /// own [t0, t1)). Called while the run is quiescent, before any event.
  virtual void set_partition(const sim::Partition& partition) = 0;

  /// Installs one windowed (optionally per-link) loss rule, appended after
  /// the backend's base network rules.
  virtual void set_loss_rule(const sim::LossRule& rule) = 0;
};

/// Deadline scheduling for timed injections. `call_at` runs `fn` at absolute
/// time `at` on the substrate's control context; times are virtual seconds
/// under a simulator clock and wall seconds since run start under a
/// real-time clock. The callback type is the kernel's move-only
/// sim::Callback so simulator clocks can forward it into the event queue
/// without re-wrapping.
class IFaultClock {
 public:
  virtual ~IFaultClock() = default;
  virtual void call_at(double at, sim::Callback fn) = 0;
};

class FaultDriver {
 public:
  /// The driver keeps references only; backend and clock must outlive it.
  FaultDriver(FaultSchedule schedule, IFaultBackend* backend,
              IFaultClock* clock);

  /// Installs the windowed rules and schedules every timed injection.
  /// Members whose join time is at/beyond `horizon` are abandoned instead of
  /// scheduled. Injection scheduling order is fixed — crashes, revives,
  /// joins in member order — so a deterministic clock yields a
  /// deterministic event stream. Call exactly once, before the run starts.
  void arm(double horizon);

  /// Scheduled injections that have not fired yet. Wall-clock runtimes gate
  /// shutdown on this reaching zero: all live workers halting while a crash
  /// or a late join is still pending does not conclude the run.
  [[nodiscard]] std::uint32_t pending_injections() const {
    return pending_.load(std::memory_order_acquire);
  }

  /// Optional hook invoked after each injection fires (after the backend
  /// call, with the pending count already decremented). Wall-clock runtimes
  /// use it to re-check their shutdown condition.
  void set_fire_listener(std::function<void()> listener) {
    on_fire_ = std::move(listener);
  }

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

 private:
  void schedule_injection(double at, sim::Callback injection);

  FaultSchedule schedule_;
  IFaultBackend* backend_;
  IFaultClock* clock_;
  std::atomic<std::uint32_t> pending_{0};
  std::function<void()> on_fire_;
  bool armed_ = false;
};

}  // namespace ftbb::fault
