#include "fault/schedule.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace ftbb::fault {

FaultSchedule FaultSchedule::compile(const sim::FaultPlan& plan,
                                     std::uint32_t min_workers) {
  FaultSchedule schedule;
  const std::int64_t top = plan.max_node();
  schedule.population = std::max<std::uint32_t>(
      min_workers, top < 0 ? 0 : static_cast<std::uint32_t>(top) + 1);

  // Materialize population-dependent windows and validate node ranges /
  // rejoin ordering on a resolved copy; the timeline is rendered from it so
  // reports see explicit groups, not pending conveniences.
  sim::FaultPlan resolved = plan;
  resolved.for_workers(schedule.population);
  schedule.timeline = resolved.timeline();

  for (const sim::FaultPlan::CrashSpec& c : resolved.crashes()) {
    schedule.crashes.push_back(CrashAt{c.node, c.time});
  }
  for (const sim::FaultPlan::RejoinSpec& r : resolved.rejoins()) {
    schedule.revives.push_back(ReviveAt{r.node, r.time});
  }
  for (const sim::FaultPlan::PartitionSpec& p : resolved.partitions()) {
    schedule.partitions.push_back(sim::Partition{p.t0, p.t1, p.group_of});
  }
  schedule.loss_rules = resolved.loss_rules();

  if (!resolved.joins().empty()) {
    schedule.join_times.assign(schedule.population, 0.0);
    std::vector<bool> has_join(schedule.population, false);
    for (const sim::FaultPlan::JoinSpec& j : resolved.joins()) {
      schedule.join_times[j.node] = j.time;
      has_join[j.node] = true;
    }
    FTBB_CHECK_MSG(!has_join[0] || schedule.join_times[0] == 0.0,
                   "node 0 seeds the computation and must join at time 0");
    for (std::uint32_t n = min_workers; n < schedule.population; ++n) {
      FTBB_CHECK_MSG(has_join[n],
                     "churn node beyond the initial population needs a join time");
    }
  }
  return schedule;
}

FaultSchedule FaultSchedule::remapped(std::uint32_t id_offset) const {
  FaultSchedule shifted = *this;
  if (id_offset == 0) return shifted;
  for (CrashAt& c : shifted.crashes) c.node += id_offset;
  for (ReviveAt& r : shifted.revives) r.node += id_offset;
  for (sim::Partition& p : shifted.partitions) {
    std::vector<int> group_of(p.group_of.size() + id_offset);
    const int front = p.group_of.empty() ? 0 : p.group_of[0];
    for (std::uint32_t i = 0; i < id_offset; ++i) group_of[i] = front;
    for (std::size_t i = 0; i < p.group_of.size(); ++i) {
      group_of[i + id_offset] = p.group_of[i];
    }
    p.group_of = std::move(group_of);
  }
  for (sim::LossRule& rule : shifted.loss_rules) {
    if (rule.from != sim::LossRule::kAnyNode) {
      rule.from += static_cast<std::int32_t>(id_offset);
    }
    if (rule.to != sim::LossRule::kAnyNode) {
      rule.to += static_cast<std::int32_t>(id_offset);
    }
  }
  return shifted;
}

}  // namespace ftbb::fault
