// InlineCallback — the kernel's allocation-free event closure.
//
// sim::Callback used to be std::function<void()>; at planetary populations
// the hot path constructs and destroys millions of these per wall-second and
// the std::function heap allocation (its small-buffer optimization tops out
// around two pointers) dominated the event engine's profile. InlineCallback
// is a move-only type-erased callable tuned for that one job:
//
//   * SBO contract: a callable whose decayed type is <= kInlineBytes (64)
//     bytes, at most pointer-aligned, and nothrow-move-constructible lives
//     entirely inside the callback object — schedule and dispatch perform
//     ZERO heap allocations for it. Every self-scheduling closure on the hot
//     path (worker timers: this + kind + gen + epoch = 24 B; wakes: this +
//     gen = 16 B; storage sampling: 8 B) fits.
//   * Overflow contract: a larger capture (message deliveries carry a
//     core::Message by value, ~100 B) spills into a fixed 128-byte block
//     drawn from a thread-local freelist. Blocks recycle through mailboxes
//     and Network::send's deliver path: after warm-up the freelist serves
//     every spill, so the steady state performs zero mallocs per event on
//     the overflow path too (the differential suite asserts the inline
//     guarantee; BENCH_kernel.json tracks both). Captures beyond the block
//     size fall back to exact-size operator new — nothing on a hot path does.
//   * Move-only (no copy): events are scheduled once and dispatched once; a
//     copyable closure would force every capture to be copyable and invite
//     accidental duplication of Message payloads.
//
// Thread safety: the freelist is thread-local, so allocation and release
// never contend. A block may be *filled* on one thread and *freed* on
// another (a cross-shard event is constructed by the source shard and
// destroyed by the destination after dispatch); the block then joins the
// destination's freelist. Handoffs synchronize through the mailbox mutex and
// the epoch barrier, exactly like the event payloads themselves, so reuse is
// race-free under TSan. Shard threads free their remaining blocks at exit.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace ftbb::sim {

namespace cbdetail {

inline constexpr std::size_t kInlineBytes = 64;
inline constexpr std::size_t kBlockBytes = 128;
/// Freelist cap (512 KiB/thread). Producer/consumer thread pairs that only
/// ever free here (the rt runtime's scheduler thread) would otherwise hoard
/// every block the producers mint; beyond the cap, blocks go back to the
/// system allocator.
inline constexpr std::size_t kMaxPoolBlocks = 4096;

/// Thread-local recycling pool of fixed-size overflow blocks.
struct BlockPool {
  std::vector<void*> free;
  std::uint64_t fresh = 0;  // blocks obtained from operator new
  std::uint64_t hits = 0;   // blocks served from the freelist
  ~BlockPool() {
    for (void* block : free) ::operator delete(block);
  }
};

inline BlockPool& block_pool() {
  thread_local BlockPool pool;
  return pool;
}

inline void* alloc_block() {
  BlockPool& pool = block_pool();
  if (!pool.free.empty()) {
    void* block = pool.free.back();
    pool.free.pop_back();
    ++pool.hits;
    return block;
  }
  ++pool.fresh;
  return ::operator new(kBlockBytes);
}

inline void free_block(void* block) {
  BlockPool& pool = block_pool();
  if (pool.free.size() >= kMaxPoolBlocks) {
    ::operator delete(block);
    return;
  }
  pool.free.push_back(block);
}

struct VTable {
  void (*invoke)(void* target);
  void (*destroy)(void* target);
  /// Inline targets only: move-construct into `to`, destroy the source.
  void (*relocate)(void* from, void* to);
  bool heap;    // target lives in a heap block (pointer stored in the buffer)
  bool pooled;  // that block came from (and returns to) the thread freelist
};

template <typename F>
inline constexpr bool fits_inline =
    sizeof(F) <= kInlineBytes && alignof(F) <= alignof(void*) &&
    std::is_nothrow_move_constructible_v<F>;

template <typename F>
void invoke_fn(void* target) {
  (*static_cast<F*>(target))();
}

template <typename F>
void destroy_fn(void* target) {
  static_cast<F*>(target)->~F();
}

template <typename F>
void relocate_fn(void* from, void* to) {
  F* src = static_cast<F*>(from);
  ::new (to) F(std::move(*src));
  src->~F();
}

template <typename F>
inline constexpr VTable inline_vtable{&invoke_fn<F>, &destroy_fn<F>,
                                      &relocate_fn<F>, false, false};

template <typename F>
inline constexpr VTable heap_vtable{&invoke_fn<F>, &destroy_fn<F>, nullptr,
                                    true, sizeof(F) <= kBlockBytes};

}  // namespace cbdetail

class InlineCallback {
 public:
  static constexpr std::size_t kInlineBytes = cbdetail::kInlineBytes;

  InlineCallback() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function
  InlineCallback(F&& f) {
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "over-aligned callable capture");
    if constexpr (cbdetail::fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &cbdetail::inline_vtable<D>;
    } else {
      void* block = sizeof(D) <= cbdetail::kBlockBytes
                        ? cbdetail::alloc_block()
                        : ::operator new(sizeof(D));
      ::new (block) D(std::forward<F>(f));
      std::memcpy(buf_, &block, sizeof(void*));
      vt_ = &cbdetail::heap_vtable<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { adopt(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      adopt(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void operator()() { vt_->invoke(target()); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  /// Whether the callable lives in the inline buffer (tests / benches).
  [[nodiscard]] bool is_inline() const noexcept {
    return vt_ != nullptr && !vt_->heap;
  }

  void reset() noexcept {
    if (vt_ == nullptr) return;
    void* t = target();
    vt_->destroy(t);
    if (vt_->heap) {
      if (vt_->pooled) {
        cbdetail::free_block(t);
      } else {
        ::operator delete(t);
      }
    }
    vt_ = nullptr;
  }

 private:
  void adopt(InlineCallback& other) noexcept {
    vt_ = other.vt_;
    if (vt_ == nullptr) return;
    if (vt_->heap) {
      std::memcpy(buf_, other.buf_, sizeof(void*));
    } else {
      vt_->relocate(other.buf_, buf_);
    }
    other.vt_ = nullptr;
  }

  [[nodiscard]] void* target() noexcept {
    if (!vt_->heap) return buf_;
    void* block = nullptr;
    std::memcpy(&block, buf_, sizeof(void*));
    return block;
  }

  const cbdetail::VTable* vt_ = nullptr;
  alignas(void*) unsigned char buf_[kInlineBytes];
};

/// The kernel's event closure type (see the SBO contract above).
using Callback = InlineCallback;

}  // namespace ftbb::sim
