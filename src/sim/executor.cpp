#include "sim/executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "support/check.hpp"

namespace ftbb::sim {

namespace {

/// A not-yet-enqueued scheduled callback: cross-shard mailbox entries and the
/// (tiny) control heap. (t, src, seq) is the canonical stamp; `owner` is the
/// node whose shard dispatches it. src/seq are assigned at schedule() time
/// from the scheduling context, which makes the total order independent of
/// the executor and the thread count (see executor.hpp). Pending events on
/// the main dispatch path live as EventNodes inside each shard's EventQueue.
struct PendingEvent {
  double t = 0.0;
  OwnerId src = kControlOwner;
  std::uint64_t seq = 0;
  OwnerId owner = kControlOwner;
  Callback fn;
};

/// Canonical order, as a "later than" predicate so std::push_heap/pop_heap
/// build a min-heap. Control (src = -1) sorts before same-time node events,
/// preserving the old kernel's property that fault schedules enqueued before
/// the run win insertion-order ties. Identical to later_stamp() in
/// event_queue.hpp (and to the verbatim seed heap preserved in
/// bench/legacy_event_queue.hpp).
bool later(const PendingEvent& a, const PendingEvent& b) {
  if (a.t != b.t) return a.t > b.t;
  if (a.src != b.src) return a.src > b.src;
  return a.seq > b.seq;
}

void heap_push(std::vector<PendingEvent>& heap, PendingEvent ev) {
  heap.push_back(std::move(ev));
  std::push_heap(heap.begin(), heap.end(), later);
}

PendingEvent heap_pop(std::vector<PendingEvent>& heap) {
  std::pop_heap(heap.begin(), heap.end(), later);
  PendingEvent ev = std::move(heap.back());
  heap.pop_back();
  return ev;
}

/// Busy-wait hint for the barrier spin loops.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Per-thread execution context of the sharded executor. Only shard worker
/// threads set it; the coordinator (and every other thread) falls back to
/// the barrier clock / control context.
struct ExecContext {
  const void* executor = nullptr;
  double now = 0.0;
  OwnerId owner = kControlOwner;
  std::uint32_t shard = 0;
};

thread_local ExecContext tls_ctx;

// ---------------------------------------------------------------------------
// SequentialExecutor — the extracted single-threaded event loop
// ---------------------------------------------------------------------------

class SequentialExecutor final : public EventExecutor {
 public:
  void schedule(double t, OwnerId owner, Callback fn) override {
    FTBB_CHECK_MSG(t >= now_, "Kernel::at: scheduling into the past");
    FTBB_CHECK(owner >= kControlOwner);
    queue_.push(t, cur_owner_, next_seq(cur_owner_), owner, std::move(fn));
  }

  [[nodiscard]] double now() const override { return now_; }

  [[nodiscard]] OwnerId current_owner() const override { return cur_owner_; }

  RunResult run(double time_limit, std::uint64_t event_limit) override {
    RunResult res;
    while (const EventNode* head = queue_.peek()) {
      if (head->t > time_limit) {
        res.hit_time_limit = true;
        // Advance the clock so a caller can resume with a larger limit.
        now_ = std::max(now_, time_limit);
        cur_owner_ = kControlOwner;
        return res;
      }
      if (res.events >= event_limit) {
        res.hit_event_limit = true;
        cur_owner_ = kControlOwner;
        return res;
      }
      EventNode* ev = queue_.pop();
      now_ = ev->t;
      cur_owner_ = ev->owner;
      ++res.events;
      ev->fn();
      queue_.recycle(ev);
    }
    cur_owner_ = kControlOwner;
    res.drained = true;
    return res;
  }

  [[nodiscard]] bool empty() const override { return queue_.empty(); }
  [[nodiscard]] std::size_t queued() const override { return queue_.size(); }

 private:
  std::uint64_t next_seq(OwnerId src) {
    const auto idx = static_cast<std::size_t>(src + 1);
    if (idx >= seq_.size()) seq_.resize(idx + 1, 0);
    return seq_[idx]++;
  }

  EventQueue queue_;
  std::vector<std::uint64_t> seq_;  // per scheduling context, index src + 1
  double now_ = 0.0;
  OwnerId cur_owner_ = kControlOwner;
};

// ---------------------------------------------------------------------------
// ShardedExecutor — conservative-lookahead parallel dispatch
// ---------------------------------------------------------------------------

class ShardedExecutor final : public EventExecutor {
 public:
  explicit ShardedExecutor(const ExecutorConfig& config)
      : lookahead_(config.lookahead),
        nodes_(config.nodes),
        shard_count_(std::min(config.threads, std::max(config.nodes, 1u))),
        seq_(static_cast<std::size_t>(config.nodes) + 1, 0) {
    FTBB_CHECK(lookahead_ > 0.0);
    FTBB_CHECK(shard_count_ >= 1);
    shards_.reserve(shard_count_);
    for (std::uint32_t i = 0; i < shard_count_; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    // Node -> shard map: configured affinity keys, else round-robin.
    shard_of_.resize(nodes_);
    for (std::uint32_t n = 0; n < nodes_; ++n) {
      const std::uint32_t key = config.shard_of.size() == nodes_
                                    ? config.shard_of[n]
                                    : n;
      shard_of_[n] = key % shard_count_;
    }
    // Shard-pair lookahead: the guaranteed minimum latency of any cross-node
    // event from a node of shard a to a node of shard b — the min of the
    // channel matrix over the groups each shard actually hosts, or the
    // single global lookahead without a channel model. A shard that hosts no
    // nodes never sends, so its rows stay at infinity harmlessly.
    const std::size_t cells = static_cast<std::size_t>(shard_count_) * shard_count_;
    if (config.channels.enabled(nodes_)) {
      const ChannelLookahead& ch = config.channels;
      std::vector<std::vector<bool>> hosts(
          shard_count_, std::vector<bool>(ch.groups, false));
      for (std::uint32_t n = 0; n < nodes_; ++n) {
        FTBB_CHECK(ch.group_of[n] < ch.groups);
        hosts[shard_of_[n]][ch.group_of[n]] = true;
      }
      pair_lookahead_.assign(cells, std::numeric_limits<double>::infinity());
      for (std::uint32_t a = 0; a < shard_count_; ++a) {
        for (std::uint32_t b = 0; b < shard_count_; ++b) {
          double floor = std::numeric_limits<double>::infinity();
          for (std::uint32_t ga = 0; ga < ch.groups; ++ga) {
            if (!hosts[a][ga]) continue;
            for (std::uint32_t gb = 0; gb < ch.groups; ++gb) {
              if (!hosts[b][gb]) continue;
              floor = std::min(
                  floor, ch.min_latency[static_cast<std::size_t>(ga) * ch.groups + gb]);
            }
          }
          // The channel model must refine the global floor, never undercut
          // it — a malformed matrix would otherwise shrink the safety check.
          pair_lookahead_[static_cast<std::size_t>(a) * shard_count_ + b] =
              std::max(floor, lookahead_);
        }
      }
    } else {
      pair_lookahead_.assign(cells, lookahead_);
    }
    // Transitive closure of the pair matrix (Floyd–Warshall): the cheapest
    // *chain* of cross-shard hops from a to b, which is what bounds how soon
    // a's queued work can influence b — a direct message is one hop, but a
    // can also wake an idle shard that then messages b. The diagonal starts
    // at infinity (a shard's own heap is serialized by stamp order and needs
    // no latency bound) and relaxes to the cheapest round trip through other
    // shards; that positive self-cycle is what keeps a shard from outrunning
    // replies to messages it has not yet provoked. Window computation uses
    // this closure; the schedule() safety check keeps the direct matrix.
    pair_closure_ = pair_lookahead_;
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
      pair_closure_[static_cast<std::size_t>(s) * shard_count_ + s] =
          std::numeric_limits<double>::infinity();
    }
    for (std::uint32_t k = 0; k < shard_count_; ++k) {
      for (std::uint32_t a = 0; a < shard_count_; ++a) {
        const double ak = pair_closure_[static_cast<std::size_t>(a) * shard_count_ + k];
        if (ak == std::numeric_limits<double>::infinity()) continue;
        for (std::uint32_t b = 0; b < shard_count_; ++b) {
          double& ab = pair_closure_[static_cast<std::size_t>(a) * shard_count_ + b];
          ab = std::min(ab, ak + pair_closure_[static_cast<std::size_t>(k) * shard_count_ + b]);
        }
      }
    }
  }

  void schedule(double t, OwnerId owner, Callback fn) override {
    const bool on_shard_thread = tls_ctx.executor == this;
    const OwnerId src = on_shard_thread ? tls_ctx.owner : barrier_owner_;
    const double ref_now = on_shard_thread ? tls_ctx.now : barrier_now_;
    FTBB_CHECK_MSG(t >= ref_now, "Kernel::at: scheduling into the past");
    FTBB_CHECK_MSG(owner >= kControlOwner && owner < static_cast<OwnerId>(nodes_),
                   "ShardedExecutor: owner id outside [control, nodes)");
    // Contexts are single-shard (control runs only at barriers), so the
    // per-context counter has exactly one writer and stamps are race-free.
    const std::uint64_t seq = seq_[static_cast<std::size_t>(src + 1)]++;
    if (owner == kControlOwner) {
      FTBB_CHECK_MSG(src == kControlOwner,
                     "only the control context may schedule control events");
      heap_push(control_, PendingEvent{t, src, seq, owner, std::move(fn)});
      return;
    }
    const std::uint32_t dest_shard = shard_of_[static_cast<std::uint32_t>(owner)];
    Shard& dest = *shards_[dest_shard];
    if (on_shard_thread && tls_ctx.shard != dest_shard) {
      // Cross-shard: lands in the mailbox, merged at the next barrier. That
      // is only sound when t lies beyond any window that could be in flight:
      // the destination's window end is at most our shard's barrier head
      // plus the pair lookahead, and our current event time is >= that head,
      // so t >= now + pair lookahead clears it. Abort loudly instead of
      // silently diverging from the sequential order if a caller ever
      // schedules cross-shard closer than the channel's floor.
      FTBB_CHECK_MSG(
          t >= tls_ctx.now + pair_lookahead_[static_cast<std::size_t>(tls_ctx.shard) *
                                                 shard_count_ + dest_shard],
          "ShardedExecutor: cross-shard event closer than the lookahead");
      const std::lock_guard<std::mutex> lock(dest.mail_mu);
      dest.mailbox.push_back(PendingEvent{t, src, seq, owner, std::move(fn)});
    } else {
      // Own queue (same shard), or the coordinator with every shard
      // quiescent (pre-run, post-run, or a control event at a barrier).
      dest.queue.push(t, src, seq, owner, std::move(fn));
    }
  }

  [[nodiscard]] double now() const override {
    return tls_ctx.executor == this ? tls_ctx.now : barrier_now_;
  }

  [[nodiscard]] OwnerId current_owner() const override {
    return tls_ctx.executor == this ? tls_ctx.owner : barrier_owner_;
  }

  RunResult run(double time_limit, std::uint64_t event_limit) override {
    RunResult res;
    for (auto& shard : shards_) shard->events = 0;
    std::vector<std::thread> threads;
    threads.reserve(shard_count_);
    stop_.store(false, std::memory_order_seq_cst);
    // Each thread's "windows seen" baseline is the generation at spawn time,
    // captured HERE: on a resumed run() the counter carries over from the
    // previous run (so zero would look like an already-open window with stale
    // parameters), and a late-starting thread reading the counter itself
    // could adopt a generation the coordinator already advanced — and then
    // sit out the very window the coordinator is waiting on.
    const std::uint64_t start_generation =
        generation_.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < shard_count_; ++i) {
      threads.emplace_back(
          [this, i, start_generation] { shard_main(i, start_generation); });
    }

    std::uint64_t control_events = 0;
    std::vector<double> heads(shard_count_);
    for (;;) {
      drain_mailboxes();
      double next_shard = std::numeric_limits<double>::infinity();
      for (std::uint32_t s = 0; s < shard_count_; ++s) {
        const EventNode* head = shards_[s]->queue.peek();
        heads[s] = head == nullptr ? std::numeric_limits<double>::infinity()
                                   : head->t;
        next_shard = std::min(next_shard, heads[s]);
      }
      const double next_control =
          control_.empty() ? std::numeric_limits<double>::infinity()
                           : control_.front().t;
      const double next_t = std::min(next_shard, next_control);
      if (next_t == std::numeric_limits<double>::infinity()) {
        res.drained = true;
        break;
      }
      if (next_t > time_limit) {
        res.hit_time_limit = true;
        barrier_now_ = std::max(barrier_now_, time_limit);
        break;
      }
      std::uint64_t total = control_events;
      for (const auto& shard : shards_) total += shard->events;
      if (total >= event_limit) {
        res.hit_event_limit = true;
        break;
      }
      // Execute every control-stamped event at next_t — control-owned
      // events in the control heap, plus node-owned events that were
      // scheduled from the control context (late joins, revive timers) and
      // sit atop shard queues — at a barrier, in sequence order. The
      // comparator sorts src = -1 before node stamps at equal time, so these
      // are exactly the events that precede every same-time node-stamped
      // event in the canonical order, and they always surface at their
      // shard's queue head. They may touch cross-node state exactly like on
      // the sequential kernel.
      bool ran_control = false;
      for (;;) {
        // Source of the lowest-seq control-stamped event at next_t:
        // kControlOwner-1 = none, kControlOwner = control heap, else shard.
        std::int64_t source = kControlOwner - 1;
        std::uint64_t best_seq = 0;
        if (!control_.empty() && control_.front().t == next_t) {
          source = kControlOwner;
          best_seq = control_.front().seq;
        }
        for (std::uint32_t s = 0; s < shard_count_; ++s) {
          const EventNode* head = shards_[s]->queue.peek();
          if (head != nullptr && head->t == next_t &&
              head->src == kControlOwner &&
              (source < kControlOwner || head->seq < best_seq)) {
            source = s;
            best_seq = head->seq;
          }
        }
        if (source < kControlOwner) break;
        barrier_now_ = next_t;
        ++control_events;
        ran_control = true;
        if (source == kControlOwner) {
          PendingEvent ev = heap_pop(control_);
          // The executing event's owner becomes the scheduling context, so a
          // barrier-run join stamps its follow-ups exactly like the
          // sequential kernel does.
          barrier_owner_ = ev.owner;
          ev.fn();
        } else {
          EventQueue& q = shards_[static_cast<std::size_t>(source)]->queue;
          EventNode* ev = q.pop();
          barrier_owner_ = ev->owner;
          ev->fn();
          q.recycle(ev);
        }
        barrier_owner_ = kControlOwner;
      }
      if (ran_control) continue;
      // Parallel windows, one end per shard:
      //
      //     w_s = min( next_control,
      //                min over all shards o of head(o) + closure(o -> s) ),
      //
      // where closure is the transitive closure of the pair-lookahead matrix
      // (cheapest chain of cross-shard hops, diagonal = cheapest round trip).
      // Any influence that could still reach shard s starts from some
      // shard's currently queued event (time >= head(o)) and pays at least
      // the shortest hop-chain cost to arrive, so it lands at >= w_s; s's own
      // queued events are already stamp-ordered in its queue and need no
      // latency bound, which is why o == s contributes the round-trip cycle,
      // not zero. No control event precedes w_s either, so shard s cannot
      // observe anyone mid-window. With one latency class and both shards
      // busy every w_s collapses to the classic next_t + lookahead barrier;
      // with per-channel lookahead (or idle neighbors) a shard bordered only
      // by slow links runs far ahead. The shard holding next_t always gets
      // w_s > next_t (all closure entries are positive), so every barrier
      // makes progress. Windows can be much wider than one lookahead now, so
      // each shard also stops after the events remaining under the event
      // limit — a quota hit implies the next barrier reports hit_event_limit,
      // and runs below the limit are never truncated.
      for (std::uint32_t s = 0; s < shard_count_; ++s) {
        double w = next_control;
        for (std::uint32_t o = 0; o < shard_count_; ++o) {
          w = std::min(w, heads[o] + pair_closure_[static_cast<std::size_t>(o) *
                                                       shard_count_ + s]);
        }
        shards_[s]->window_end = w;
      }
      // Open the window: the plain-field window parameters are published by
      // the release increment of generation_ and the shards' acquire loads
      // of it (the cv path re-reads generation_ the same way after waking).
      window_time_limit_ = time_limit;
      window_event_quota_ = event_limit - total;  // >= 1 here
      done_count_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_seq_cst);
      if (work_sleepers_.load(std::memory_order_seq_cst) > 0) {
        // The empty critical section orders this notify after any sleeper's
        // predicate check, so a shard that saw the old generation is already
        // parked (or will re-check and skip the wait).
        { const std::lock_guard<std::mutex> lock(mu_); }
        cv_work_.notify_all();
      }
      // Wait for every shard to finish its window: spin briefly (a window is
      // typically shorter than a futex round trip), then park on the cv.
      std::uint32_t spins = 0;
      while (done_count_.load(std::memory_order_acquire) != shard_count_) {
        if (spins < kSpinIters) {
          cpu_relax();
          ++spins;
        } else if (spins < kSpinIters + kYieldIters) {
          std::this_thread::yield();
          ++spins;
        } else {
          done_waiting_.store(true, std::memory_order_seq_cst);
          std::unique_lock<std::mutex> lock(mu_);
          cv_done_.wait(lock, [this] {
            return done_count_.load(std::memory_order_seq_cst) == shard_count_;
          });
          done_waiting_.store(false, std::memory_order_relaxed);
        }
      }
      for (const auto& shard : shards_) {
        barrier_now_ = std::max(barrier_now_, shard->last_time);
      }
    }

    stop_.store(true, std::memory_order_seq_cst);
    { const std::lock_guard<std::mutex> lock(mu_); }
    cv_work_.notify_all();
    for (std::thread& thread : threads) thread.join();
    res.events = control_events;
    for (const auto& shard : shards_) res.events += shard->events;
    return res;
  }

  [[nodiscard]] bool empty() const override { return queued() == 0; }

  [[nodiscard]] std::size_t queued() const override {
    // Only meaningful at quiescence (before/after run, or at a barrier);
    // shard queues have no lock, so an in-handler call would be a data race.
    FTBB_CHECK_MSG(tls_ctx.executor != this,
                   "ShardedExecutor: queued()/empty() called from a handler");
    std::size_t n = control_.size();
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mail_mu);
      n += shard->queue.size() + shard->mailbox.size();
    }
    return n;
  }

 private:
  // Spin budgets before a barrier participant parks on its cv. Windows are
  // often a handful of events, so the done/work handshake usually completes
  // inside the spin phase and the futex syscalls disappear from the profile.
  static constexpr std::uint32_t kSpinIters = 256;
  static constexpr std::uint32_t kYieldIters = 16;

  struct alignas(64) Shard {
    EventQueue queue;              // touched by the owner thread in-window,
                                   // by the coordinator at barriers
    std::mutex mail_mu;
    std::vector<PendingEvent> mailbox;  // cross-shard arrivals, next barrier
    std::size_t mail_hwm = 0;      // high-water mark, reserved after drain
    std::uint64_t events = 0;
    double last_time = 0.0;
    double window_end = 0.0;       // written at barriers, read in-window
  };

  void drain_mailboxes() {
    // O(1) amortized per event: mailbox entries append into the ladder's
    // time bands instead of sifting through a binary heap one by one (the
    // old per-event heap_push was the sharded/barrier regression — every
    // barrier paid n log n against the full pending set). The vector keeps
    // its high-water capacity across epochs, so steady-state drains neither
    // allocate nor free.
    for (auto& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mail_mu);
      shard->mail_hwm = std::max(shard->mail_hwm, shard->mailbox.size());
      for (PendingEvent& ev : shard->mailbox) {
        shard->queue.push(ev.t, ev.src, ev.seq, ev.owner, std::move(ev.fn));
      }
      shard->mailbox.clear();
      if (shard->mailbox.capacity() < shard->mail_hwm) {
        shard->mailbox.reserve(shard->mail_hwm);
      }
    }
  }

  void shard_main(std::uint32_t index, std::uint64_t seen_generation) {
    tls_ctx = ExecContext{this, 0.0, kControlOwner, index};
    Shard& shard = *shards_[index];
    for (;;) {
      // Wait for the next window (or stop): spin, yield, then park. The
      // seq_cst sleeper count pairs with the coordinator's post-increment
      // read — either it sees us parked and notifies, or we see the new
      // generation and never park.
      std::uint64_t gen;
      std::uint32_t spins = 0;
      for (;;) {
        gen = generation_.load(std::memory_order_acquire);
        if (gen != seen_generation || stop_.load(std::memory_order_acquire))
          break;
        if (spins < kSpinIters) {
          cpu_relax();
          ++spins;
        } else if (spins < kSpinIters + kYieldIters) {
          std::this_thread::yield();
          ++spins;
        } else {
          work_sleepers_.fetch_add(1, std::memory_order_seq_cst);
          {
            std::unique_lock<std::mutex> lock(mu_);
            cv_work_.wait(lock, [&] {
              return stop_.load(std::memory_order_seq_cst) ||
                     generation_.load(std::memory_order_seq_cst) !=
                         seen_generation;
            });
          }
          work_sleepers_.fetch_sub(1, std::memory_order_seq_cst);
        }
      }
      if (stop_.load(std::memory_order_acquire)) break;
      seen_generation = gen;
      std::uint64_t dispatched = 0;
      while (const EventNode* head = shard.queue.peek()) {
        if (!(head->t < shard.window_end) || head->t > window_time_limit_ ||
            dispatched >= window_event_quota_) {
          break;
        }
        EventNode* ev = shard.queue.pop();
        tls_ctx.now = ev->t;
        tls_ctx.owner = ev->owner;
        shard.last_time = ev->t;
        ++shard.events;
        ++dispatched;
        ev->fn();
        shard.queue.recycle(ev);
      }
      tls_ctx.owner = kControlOwner;
      done_count_.fetch_add(1, std::memory_order_seq_cst);
      if (done_waiting_.load(std::memory_order_seq_cst)) {
        { const std::lock_guard<std::mutex> lock(mu_); }
        cv_done_.notify_one();
      }
    }
    tls_ctx = ExecContext{};
  }

  const double lookahead_;
  const std::uint32_t nodes_;
  const std::uint32_t shard_count_;
  std::vector<std::uint32_t> shard_of_;  // node -> shard
  std::vector<double> pair_lookahead_;   // shard x shard, row-major [from][to]
  std::vector<double> pair_closure_;     // transitive closure; diagonal = min cycle
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<PendingEvent> control_;
  std::vector<std::uint64_t> seq_;  // per scheduling context, index src + 1;
                                    // each context is single-threaded
  double barrier_now_ = 0.0;
  OwnerId barrier_owner_ = kControlOwner;  // context of a barrier-run event

  // Barrier plane: generation_ publishes window parameters (release store /
  // acquire load); done_count_ collects finishers the same way; the mutex +
  // cvs only back the park-when-idle slow path.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint32_t> done_count_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint32_t> work_sleepers_{0};
  std::atomic<bool> done_waiting_{false};
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  double window_time_limit_ = 0.0;
  std::uint64_t window_event_quota_ = 0;  // per-shard in-window dispatch cap
};

}  // namespace

std::unique_ptr<EventExecutor> make_executor(const ExecutorConfig& config) {
  if (config.threads > 1 && config.lookahead > 0.0 && config.nodes > 1) {
    return std::make_unique<ShardedExecutor>(config);
  }
  return std::make_unique<SequentialExecutor>();
}

std::uint32_t parse_threads_flag(int argc, char** argv) {
  std::uint32_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      const long value = std::strtol(arg + 10, nullptr, 10);
      if (value > 0) threads = static_cast<std::uint32_t>(std::min(value, 256L));
    }
  }
  return threads;
}

std::uint32_t resolve_sim_threads(std::uint32_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("FTBB_SIM_THREADS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<std::uint32_t>(std::min(value, 256L));
  }
  return 1;
}

}  // namespace ftbb::sim
