#include "sim/executor.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "support/check.hpp"

namespace ftbb::sim {

namespace {

/// One scheduled callback. (t, src, seq) is the canonical stamp; `owner` is
/// the node whose shard dispatches it. src/seq are assigned at schedule()
/// time from the scheduling context, which makes the total order independent
/// of the executor and the thread count (see executor.hpp).
struct Event {
  double t = 0.0;
  OwnerId src = kControlOwner;
  std::uint64_t seq = 0;
  OwnerId owner = kControlOwner;
  Callback fn;
};

/// Canonical order, as a "later than" predicate so std::push_heap/pop_heap
/// build a min-heap. Control (src = -1) sorts before same-time node events,
/// preserving the old kernel's property that fault schedules enqueued before
/// the run win insertion-order ties.
bool later(const Event& a, const Event& b) {
  if (a.t != b.t) return a.t > b.t;
  if (a.src != b.src) return a.src > b.src;
  return a.seq > b.seq;
}

void heap_push(std::vector<Event>& heap, Event ev) {
  heap.push_back(std::move(ev));
  std::push_heap(heap.begin(), heap.end(), later);
}

/// Pops the earliest event by moving it out of the vector — the legitimate
/// replacement for the old const_cast extraction from std::priority_queue.
Event heap_pop(std::vector<Event>& heap) {
  std::pop_heap(heap.begin(), heap.end(), later);
  Event ev = std::move(heap.back());
  heap.pop_back();
  return ev;
}

/// Per-thread execution context of the sharded executor. Only shard worker
/// threads set it; the coordinator (and every other thread) falls back to
/// the barrier clock / control context.
struct ExecContext {
  const void* executor = nullptr;
  double now = 0.0;
  OwnerId owner = kControlOwner;
  std::uint32_t shard = 0;
};

thread_local ExecContext tls_ctx;

// ---------------------------------------------------------------------------
// SequentialExecutor — the extracted single-threaded event loop
// ---------------------------------------------------------------------------

class SequentialExecutor final : public EventExecutor {
 public:
  void schedule(double t, OwnerId owner, Callback fn) override {
    FTBB_CHECK_MSG(t >= now_, "Kernel::at: scheduling into the past");
    FTBB_CHECK(owner >= kControlOwner);
    heap_push(heap_, Event{t, cur_owner_, next_seq(cur_owner_), owner, std::move(fn)});
  }

  [[nodiscard]] double now() const override { return now_; }

  [[nodiscard]] OwnerId current_owner() const override { return cur_owner_; }

  RunResult run(double time_limit, std::uint64_t event_limit) override {
    RunResult res;
    while (!heap_.empty()) {
      if (heap_.front().t > time_limit) {
        res.hit_time_limit = true;
        // Advance the clock so a caller can resume with a larger limit.
        now_ = std::max(now_, time_limit);
        cur_owner_ = kControlOwner;
        return res;
      }
      if (res.events >= event_limit) {
        res.hit_event_limit = true;
        cur_owner_ = kControlOwner;
        return res;
      }
      Event ev = heap_pop(heap_);
      now_ = ev.t;
      cur_owner_ = ev.owner;
      ++res.events;
      ev.fn();
    }
    cur_owner_ = kControlOwner;
    res.drained = true;
    return res;
  }

  [[nodiscard]] bool empty() const override { return heap_.empty(); }
  [[nodiscard]] std::size_t queued() const override { return heap_.size(); }

 private:
  std::uint64_t next_seq(OwnerId src) {
    const auto idx = static_cast<std::size_t>(src + 1);
    if (idx >= seq_.size()) seq_.resize(idx + 1, 0);
    return seq_[idx]++;
  }

  std::vector<Event> heap_;
  std::vector<std::uint64_t> seq_;  // per scheduling context, index src + 1
  double now_ = 0.0;
  OwnerId cur_owner_ = kControlOwner;
};

// ---------------------------------------------------------------------------
// ShardedExecutor — conservative-lookahead parallel dispatch
// ---------------------------------------------------------------------------

class ShardedExecutor final : public EventExecutor {
 public:
  explicit ShardedExecutor(const ExecutorConfig& config)
      : lookahead_(config.lookahead),
        nodes_(config.nodes),
        shard_count_(std::min(config.threads, std::max(config.nodes, 1u))),
        seq_(static_cast<std::size_t>(config.nodes) + 1, 0) {
    FTBB_CHECK(lookahead_ > 0.0);
    FTBB_CHECK(shard_count_ >= 1);
    shards_.reserve(shard_count_);
    for (std::uint32_t i = 0; i < shard_count_; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    // Node -> shard map: configured affinity keys, else round-robin.
    shard_of_.resize(nodes_);
    for (std::uint32_t n = 0; n < nodes_; ++n) {
      const std::uint32_t key = config.shard_of.size() == nodes_
                                    ? config.shard_of[n]
                                    : n;
      shard_of_[n] = key % shard_count_;
    }
    // Shard-pair lookahead: the guaranteed minimum latency of any cross-node
    // event from a node of shard a to a node of shard b — the min of the
    // channel matrix over the groups each shard actually hosts, or the
    // single global lookahead without a channel model. A shard that hosts no
    // nodes never sends, so its rows stay at infinity harmlessly.
    const std::size_t cells = static_cast<std::size_t>(shard_count_) * shard_count_;
    if (config.channels.enabled(nodes_)) {
      const ChannelLookahead& ch = config.channels;
      std::vector<std::vector<bool>> hosts(
          shard_count_, std::vector<bool>(ch.groups, false));
      for (std::uint32_t n = 0; n < nodes_; ++n) {
        FTBB_CHECK(ch.group_of[n] < ch.groups);
        hosts[shard_of_[n]][ch.group_of[n]] = true;
      }
      pair_lookahead_.assign(cells, std::numeric_limits<double>::infinity());
      for (std::uint32_t a = 0; a < shard_count_; ++a) {
        for (std::uint32_t b = 0; b < shard_count_; ++b) {
          double floor = std::numeric_limits<double>::infinity();
          for (std::uint32_t ga = 0; ga < ch.groups; ++ga) {
            if (!hosts[a][ga]) continue;
            for (std::uint32_t gb = 0; gb < ch.groups; ++gb) {
              if (!hosts[b][gb]) continue;
              floor = std::min(
                  floor, ch.min_latency[static_cast<std::size_t>(ga) * ch.groups + gb]);
            }
          }
          // The channel model must refine the global floor, never undercut
          // it — a malformed matrix would otherwise shrink the safety check.
          pair_lookahead_[static_cast<std::size_t>(a) * shard_count_ + b] =
              std::max(floor, lookahead_);
        }
      }
    } else {
      pair_lookahead_.assign(cells, lookahead_);
    }
    // Transitive closure of the pair matrix (Floyd–Warshall): the cheapest
    // *chain* of cross-shard hops from a to b, which is what bounds how soon
    // a's queued work can influence b — a direct message is one hop, but a
    // can also wake an idle shard that then messages b. The diagonal starts
    // at infinity (a shard's own heap is serialized by stamp order and needs
    // no latency bound) and relaxes to the cheapest round trip through other
    // shards; that positive self-cycle is what keeps a shard from outrunning
    // replies to messages it has not yet provoked. Window computation uses
    // this closure; the schedule() safety check keeps the direct matrix.
    pair_closure_ = pair_lookahead_;
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
      pair_closure_[static_cast<std::size_t>(s) * shard_count_ + s] =
          std::numeric_limits<double>::infinity();
    }
    for (std::uint32_t k = 0; k < shard_count_; ++k) {
      for (std::uint32_t a = 0; a < shard_count_; ++a) {
        const double ak = pair_closure_[static_cast<std::size_t>(a) * shard_count_ + k];
        if (ak == std::numeric_limits<double>::infinity()) continue;
        for (std::uint32_t b = 0; b < shard_count_; ++b) {
          double& ab = pair_closure_[static_cast<std::size_t>(a) * shard_count_ + b];
          ab = std::min(ab, ak + pair_closure_[static_cast<std::size_t>(k) * shard_count_ + b]);
        }
      }
    }
  }

  void schedule(double t, OwnerId owner, Callback fn) override {
    const bool on_shard_thread = tls_ctx.executor == this;
    const OwnerId src = on_shard_thread ? tls_ctx.owner : barrier_owner_;
    const double ref_now = on_shard_thread ? tls_ctx.now : barrier_now_;
    FTBB_CHECK_MSG(t >= ref_now, "Kernel::at: scheduling into the past");
    FTBB_CHECK_MSG(owner >= kControlOwner && owner < static_cast<OwnerId>(nodes_),
                   "ShardedExecutor: owner id outside [control, nodes)");
    // Contexts are single-shard (control runs only at barriers), so the
    // per-context counter has exactly one writer and stamps are race-free.
    Event ev{t, src, seq_[static_cast<std::size_t>(src + 1)]++, owner, std::move(fn)};
    if (owner == kControlOwner) {
      FTBB_CHECK_MSG(src == kControlOwner,
                     "only the control context may schedule control events");
      heap_push(control_, std::move(ev));
      return;
    }
    const std::uint32_t dest_shard = shard_of_[static_cast<std::uint32_t>(owner)];
    Shard& dest = *shards_[dest_shard];
    if (on_shard_thread && tls_ctx.shard != dest_shard) {
      // Cross-shard: lands in the mailbox, merged at the next barrier. That
      // is only sound when t lies beyond any window that could be in flight:
      // the destination's window end is at most our shard's barrier head
      // plus the pair lookahead, and our current event time is >= that head,
      // so t >= now + pair lookahead clears it. Abort loudly instead of
      // silently diverging from the sequential order if a caller ever
      // schedules cross-shard closer than the channel's floor.
      FTBB_CHECK_MSG(
          t >= tls_ctx.now + pair_lookahead_[static_cast<std::size_t>(tls_ctx.shard) *
                                                 shard_count_ + dest_shard],
          "ShardedExecutor: cross-shard event closer than the lookahead");
      const std::lock_guard<std::mutex> lock(dest.mail_mu);
      dest.mailbox.push_back(std::move(ev));
    } else {
      // Own heap (same shard), or the coordinator with every shard
      // quiescent (pre-run, post-run, or a control event at a barrier).
      heap_push(dest.heap, std::move(ev));
    }
  }

  [[nodiscard]] double now() const override {
    return tls_ctx.executor == this ? tls_ctx.now : barrier_now_;
  }

  [[nodiscard]] OwnerId current_owner() const override {
    return tls_ctx.executor == this ? tls_ctx.owner : barrier_owner_;
  }

  RunResult run(double time_limit, std::uint64_t event_limit) override {
    RunResult res;
    for (auto& shard : shards_) shard->events = 0;
    std::vector<std::thread> threads;
    threads.reserve(shard_count_);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = false;
    }
    for (std::uint32_t i = 0; i < shard_count_; ++i) {
      threads.emplace_back([this, i] { shard_main(i); });
    }

    std::uint64_t control_events = 0;
    std::vector<double> heads(shard_count_);
    for (;;) {
      drain_mailboxes();
      double next_shard = std::numeric_limits<double>::infinity();
      for (std::uint32_t s = 0; s < shard_count_; ++s) {
        const auto& heap = shards_[s]->heap;
        heads[s] = heap.empty() ? std::numeric_limits<double>::infinity()
                                : heap.front().t;
        next_shard = std::min(next_shard, heads[s]);
      }
      const double next_control =
          control_.empty() ? std::numeric_limits<double>::infinity()
                           : control_.front().t;
      const double next_t = std::min(next_shard, next_control);
      if (next_t == std::numeric_limits<double>::infinity()) {
        res.drained = true;
        break;
      }
      if (next_t > time_limit) {
        res.hit_time_limit = true;
        barrier_now_ = std::max(barrier_now_, time_limit);
        break;
      }
      std::uint64_t total = control_events;
      for (const auto& shard : shards_) total += shard->events;
      if (total >= event_limit) {
        res.hit_event_limit = true;
        break;
      }
      // Execute every control-stamped event at next_t — control-owned
      // events in the control heap, plus node-owned events that were
      // scheduled from the control context (late joins, revive timers) and
      // sit atop shard heaps — at a barrier, in sequence order. The
      // comparator sorts src = -1 before node stamps at equal time, so these
      // are exactly the events that precede every same-time node-stamped
      // event in the canonical order, and they always surface at their
      // shard's heap top. They may touch cross-node state exactly like on
      // the sequential kernel.
      bool ran_control = false;
      for (;;) {
        std::vector<Event>* source = nullptr;
        std::uint64_t best_seq = 0;
        if (!control_.empty() && control_.front().t == next_t) {
          source = &control_;
          best_seq = control_.front().seq;
        }
        for (const auto& shard : shards_) {
          std::vector<Event>& heap = shard->heap;
          if (!heap.empty() && heap.front().t == next_t &&
              heap.front().src == kControlOwner &&
              (source == nullptr || heap.front().seq < best_seq)) {
            source = &heap;
            best_seq = heap.front().seq;
          }
        }
        if (source == nullptr) break;
        Event ev = heap_pop(*source);
        barrier_now_ = next_t;
        // The executing event's owner becomes the scheduling context, so a
        // barrier-run join stamps its follow-ups exactly like the
        // sequential kernel does.
        barrier_owner_ = ev.owner;
        ++control_events;
        ev.fn();
        barrier_owner_ = kControlOwner;
        ran_control = true;
      }
      if (ran_control) continue;
      // Parallel windows, one end per shard:
      //
      //     w_s = min( next_control,
      //                min over all shards o of head(o) + closure(o -> s) ),
      //
      // where closure is the transitive closure of the pair-lookahead matrix
      // (cheapest chain of cross-shard hops, diagonal = cheapest round trip).
      // Any influence that could still reach shard s starts from some
      // shard's currently queued event (time >= head(o)) and pays at least
      // the shortest hop-chain cost to arrive, so it lands at >= w_s; s's own
      // queued events are already stamp-ordered in its heap and need no
      // latency bound, which is why o == s contributes the round-trip cycle,
      // not zero. No control event precedes w_s either, so shard s cannot
      // observe anyone mid-window. With one latency class and both shards
      // busy every w_s collapses to the classic next_t + lookahead barrier;
      // with per-channel lookahead (or idle neighbors) a shard bordered only
      // by slow links runs far ahead. The shard holding next_t always gets
      // w_s > next_t (all closure entries are positive), so every barrier
      // makes progress. Windows can be much wider than one lookahead now, so
      // each shard also stops after the events remaining under the event
      // limit — a quota hit implies the next barrier reports hit_event_limit,
      // and runs below the limit are never truncated.
      for (std::uint32_t s = 0; s < shard_count_; ++s) {
        double w = next_control;
        for (std::uint32_t o = 0; o < shard_count_; ++o) {
          w = std::min(w, heads[o] + pair_closure_[static_cast<std::size_t>(o) *
                                                       shard_count_ + s]);
        }
        shards_[s]->window_end = w;
      }
      {
        const std::lock_guard<std::mutex> lock(mu_);
        window_time_limit_ = time_limit;
        window_event_quota_ = event_limit - total;  // >= 1 here
        done_count_ = 0;
        ++generation_;
      }
      cv_work_.notify_all();
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_done_.wait(lock, [this] { return done_count_ == shard_count_; });
      }
      for (const auto& shard : shards_) {
        barrier_now_ = std::max(barrier_now_, shard->last_time);
      }
    }

    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& thread : threads) thread.join();
    res.events = control_events;
    for (const auto& shard : shards_) res.events += shard->events;
    return res;
  }

  [[nodiscard]] bool empty() const override { return queued() == 0; }

  [[nodiscard]] std::size_t queued() const override {
    // Only meaningful at quiescence (before/after run, or at a barrier);
    // shard heaps have no lock, so an in-handler call would be a data race.
    FTBB_CHECK_MSG(tls_ctx.executor != this,
                   "ShardedExecutor: queued()/empty() called from a handler");
    std::size_t n = control_.size();
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mail_mu);
      n += shard->heap.size() + shard->mailbox.size();
    }
    return n;
  }

 private:
  struct alignas(64) Shard {
    std::vector<Event> heap;       // touched by the owner thread in-window,
                                   // by the coordinator at barriers
    std::mutex mail_mu;
    std::vector<Event> mailbox;    // cross-shard arrivals for later windows
    std::uint64_t events = 0;
    double last_time = 0.0;
    double window_end = 0.0;       // written at barriers, read in-window
  };

  void drain_mailboxes() {
    for (auto& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mail_mu);
      for (Event& ev : shard->mailbox) heap_push(shard->heap, std::move(ev));
      shard->mailbox.clear();
    }
  }

  void shard_main(std::uint32_t index) {
    tls_ctx = ExecContext{this, 0.0, kControlOwner, index};
    Shard& shard = *shards_[index];
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
        if (stop_) break;
        seen_generation = generation_;
      }
      std::uint64_t dispatched = 0;
      while (!shard.heap.empty() && shard.heap.front().t < shard.window_end &&
             shard.heap.front().t <= window_time_limit_ &&
             dispatched < window_event_quota_) {
        Event ev = heap_pop(shard.heap);
        tls_ctx.now = ev.t;
        tls_ctx.owner = ev.owner;
        shard.last_time = ev.t;
        ++shard.events;
        ++dispatched;
        ev.fn();
      }
      tls_ctx.owner = kControlOwner;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++done_count_;
      }
      cv_done_.notify_one();
    }
    tls_ctx = ExecContext{};
  }

  const double lookahead_;
  const std::uint32_t nodes_;
  const std::uint32_t shard_count_;
  std::vector<std::uint32_t> shard_of_;  // node -> shard
  std::vector<double> pair_lookahead_;   // shard x shard, row-major [from][to]
  std::vector<double> pair_closure_;     // transitive closure; diagonal = min cycle
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Event> control_;
  std::vector<std::uint64_t> seq_;  // per scheduling context, index src + 1;
                                    // each context is single-threaded
  double barrier_now_ = 0.0;
  OwnerId barrier_owner_ = kControlOwner;  // context of a barrier-run event

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  std::uint32_t done_count_ = 0;
  bool stop_ = false;
  double window_time_limit_ = 0.0;
  std::uint64_t window_event_quota_ = 0;  // per-shard in-window dispatch cap
};

}  // namespace

std::unique_ptr<EventExecutor> make_executor(const ExecutorConfig& config) {
  if (config.threads > 1 && config.lookahead > 0.0 && config.nodes > 1) {
    return std::make_unique<ShardedExecutor>(config);
  }
  return std::make_unique<SequentialExecutor>();
}

std::uint32_t parse_threads_flag(int argc, char** argv) {
  std::uint32_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      const long value = std::strtol(arg + 10, nullptr, 10);
      if (value > 0) threads = static_cast<std::uint32_t>(std::min(value, 256L));
    }
  }
  return threads;
}

std::uint32_t resolve_sim_threads(std::uint32_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("FTBB_SIM_THREADS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<std::uint32_t>(std::min(value, 256L));
  }
  return 1;
}

}  // namespace ftbb::sim
