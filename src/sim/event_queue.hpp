// EventQueue — ladder/calendar pending-event set with bit-exact stamp order.
//
// The seed kernel kept every pending event in one binary heap per shard
// (std::push_heap / std::pop_heap over a contiguous vector). That is O(log n)
// per operation with cache-hostile sift paths; at planetary populations
// (millions of pending events) the heap IS the profile. This queue replaces
// it with a ladder queue (Tang et al.'s refinement of Brown's calendar
// queue): events are binned by time band into rungs of 128 buckets, finer
// rungs spawn lazily when a front bucket is dense, and only the currently
// active band lives in a real stamp-ordered heap (`bottom_`). Schedule and
// pop touch one bucket append / one small-heap sift — O(1) amortized,
// independent of the total pending count.
//
// Determinism argument (why dispatch order is unchanged by construction):
//   1. Band assignment is a monotone function of t — clamp(floor((t-start)/
//      width)) with boundaries fixed at rung-build time — so t1 <= t2 never
//      maps t1 to a later band than t2, and equal timestamps always share a
//      band. Consumed bands (idx < cur) cascade to the next-finer rung and
//      ultimately to `bottom_`.
//   2. `bottom_` is a true min-heap on the FULL canonical stamp
//      (t, src, seq) — the verbatim seed comparator — so within the active
//      band, and in particular within same-timestamp tie storms, dispatch
//      order is identical to the seed heap's.
//   3. The kernel only schedules at t >= now, so a late push into an
//      already-consumed band joins `bottom_` before anything of its stamp
//      has been popped.
//   (1) + (2) + (3) give the same total order as one global heap; an
//   FTBB_CHECK on every pop enforces time monotonicity at runtime, and
//   tests/event_queue_diff_test.cpp proves order identity against the
//   verbatim seed heap (preserved in bench/legacy_event_queue.hpp) under
//   randomized interleaved schedule/pop streams.
//
// Memory: events live in slab-allocated EventNode arenas recycled through a
// freelist (pop -> dispatch -> recycle), so the steady state allocates
// nothing; bucket vectors and retired rungs are pooled the same way. Small
// populations (< kHeapModeLimit) never leave plain heap mode — the ladder
// machinery only engages at the scales where it wins.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "support/check.hpp"

namespace ftbb::sim {

/// Event owner: a simulated node id, or kControlOwner for the control
/// context (fault injection / sampling / pre-run scheduling). Control events
/// order before same-time node events, matching the old kernel where fault
/// schedules were enqueued first and therefore won insertion-order ties.
using OwnerId = std::int32_t;
constexpr OwnerId kControlOwner = -1;

/// A pending event. Nodes are arena-owned by the EventQueue that minted
/// them; pointers stay stable across pushes (slabs never move).
struct EventNode {
  double t = 0.0;
  OwnerId src = kControlOwner;  // scheduling context (stamp component 2)
  OwnerId owner = kControlOwner;
  std::uint64_t seq = 0;        // per-context sequence (stamp component 3)
  Callback fn;
};

/// The canonical stamp order, verbatim from the seed heap: time ascending,
/// then scheduling context (control = -1 first), then per-context sequence.
/// Returns true when `a` dispatches after `b`.
inline bool later_stamp(const EventNode& a, const EventNode& b) {
  if (a.t != b.t) return a.t > b.t;
  if (a.src != b.src) return a.src > b.src;
  return a.seq > b.seq;
}

class EventQueue {
  struct NodeAfter {
    bool operator()(const EventNode* a, const EventNode* b) const {
      return later_stamp(*a, *b);
    }
  };

 public:
  static constexpr std::size_t kBuckets = 128;
  /// Above this population the queue converts from plain heap to ladder.
  static constexpr std::size_t kHeapModeLimit = 2048;
  /// A refill bucket denser than this spawns a finer rung instead of being
  /// heap-sorted wholesale.
  static constexpr std::size_t kSpawnThreshold = 256;
  /// A top band at most this big skips rung building and drops straight
  /// back to heap mode.
  static constexpr std::size_t kDirectDumpLimit = 256;
  static constexpr std::size_t kMaxRungs = 8;
  static constexpr std::size_t kSlabNodes = 1024;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  void push(double t, OwnerId src, std::uint64_t seq, OwnerId owner,
            Callback fn) {
    EventNode* node = acquire_node();
    node->t = t;
    node->src = src;
    node->owner = owner;
    node->seq = seq;
    node->fn = std::move(fn);
    ++size_;
    if (heap_mode_) {
      heap_insert(node);
      if (size_ >= kHeapModeLimit && size_ >= convert_floor_) try_convert();
      return;
    }
    route(node);
  }

  /// Earliest pending event, or nullptr when empty. May promote a band into
  /// the active heap; the returned node stays valid until pop()+recycle().
  [[nodiscard]] const EventNode* peek() {
    if (bottom_.empty() && !refill()) return nullptr;
    return bottom_.front();
  }

  /// Removes and returns the earliest event. Caller dispatches `fn` and then
  /// hands the node back via recycle().
  [[nodiscard]] EventNode* pop() {
    if (bottom_.empty() && !refill()) return nullptr;
    std::pop_heap(bottom_.begin(), bottom_.end(), NodeAfter{});
    EventNode* node = bottom_.back();
    bottom_.pop_back();
    --size_;
    // Time must never run backwards. (Full-stamp monotonicity would be too
    // strict: a handler at time t may schedule a same-t event whose context
    // id is lower than an already-dispatched stamp — the seed heap dispatches
    // it next all the same. Stamp order governs co-pending events only, and
    // the differential suite checks that against the seed heap directly.)
    FTBB_CHECK_MSG(node->t >= last_t_, "event queue popped back in time");
    last_t_ = node->t;
    return node;
  }

  /// Returns a dispatched node to the arena (destroys its callback).
  void recycle(EventNode* node) {
    node->fn.reset();
    free_nodes_.push_back(node);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Approximate resident bytes: node slabs plus pointer-array capacities.
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t bytes = slabs_.size() * kSlabNodes * sizeof(EventNode);
    bytes += (bottom_.capacity() + top_.capacity() + free_nodes_.capacity()) *
             sizeof(EventNode*);
    for (const Rung& r : rungs_) bytes += rung_bytes(r);
    for (const Rung& r : rung_pool_) bytes += rung_bytes(r);
    bytes += scratch_.capacity() * sizeof(EventNode*);
    return bytes;
  }

 private:
  struct Rung {
    double start = 0.0;
    double width = 0.0;
    std::size_t cur = 0;  // buckets below cur are consumed
    std::vector<std::vector<EventNode*>> buckets;
  };

  static std::size_t rung_bytes(const Rung& r) {
    std::size_t bytes = r.buckets.capacity() * sizeof(std::vector<EventNode*>);
    for (const auto& b : r.buckets) bytes += b.capacity() * sizeof(EventNode*);
    return bytes;
  }

  EventNode* acquire_node() {
    if (free_nodes_.empty()) {
      slabs_.push_back(std::make_unique<EventNode[]>(kSlabNodes));
      EventNode* slab = slabs_.back().get();
      free_nodes_.reserve(free_nodes_.size() + kSlabNodes);
      for (std::size_t i = 0; i < kSlabNodes; ++i)
        free_nodes_.push_back(&slab[i]);
    }
    EventNode* node = free_nodes_.back();
    free_nodes_.pop_back();
    return node;
  }

  void heap_insert(EventNode* node) {
    bottom_.push_back(node);
    std::push_heap(bottom_.begin(), bottom_.end(), NodeAfter{});
  }

  static std::size_t bucket_index(const Rung& r, double t) {
    if (t <= r.start) return 0;
    double idx = (t - r.start) / r.width;
    if (idx >= static_cast<double>(kBuckets)) return kBuckets - 1;
    return static_cast<std::size_t>(idx);
  }

  /// Ladder-mode routing: the far band collects in `top_`; below it, the
  /// coarsest rung whose matching bucket is still unconsumed takes the
  /// event; fully consumed bands fall through to the active heap.
  void route(EventNode* node) {
    if (rungs_.empty() || node->t >= top_start_) {
      top_push(node);
      return;
    }
    for (Rung& r : rungs_) {
      // Below this rung's span: the event precedes every band still pending
      // here (unconsumed buckets hold t >= start + cur*width > t), so it
      // belongs to a finer rung or to the active heap.
      if (node->t < r.start) continue;
      std::size_t idx = bucket_index(r, node->t);
      if (idx < r.cur) continue;  // consumed here; try the finer rung
      r.buckets[idx].push_back(node);
      return;
    }
    heap_insert(node);  // inside (or before) the active band
  }

  void top_push(EventNode* node) {
    if (top_.empty()) {
      top_min_ = top_max_ = node->t;
    } else {
      top_min_ = std::min(top_min_, node->t);
      top_max_ = std::max(top_max_, node->t);
    }
    top_.push_back(node);
  }

  /// Heap -> ladder conversion: dump the whole heap into the far band and
  /// let the next refill build rung 0. Fails (with exponential backoff via
  /// convert_floor_) when every event shares one timestamp — a tie storm
  /// has no band structure to exploit and stays a plain heap.
  void try_convert() {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const EventNode* node : bottom_) {
      lo = std::min(lo, node->t);
      hi = std::max(hi, node->t);
    }
    if (!(hi > lo)) {
      convert_floor_ = size_ * 2;
      return;
    }
    top_.reserve(top_.size() + bottom_.size());
    for (EventNode* node : bottom_) top_push(node);
    bottom_.clear();
    // With no rungs yet, every push routes to top_ until the first refill
    // builds rung 0 from the collected band.
    heap_mode_ = false;
    convert_floor_ = kHeapModeLimit;
  }

  Rung& acquire_rung() {
    if (rung_pool_.empty()) {
      rungs_.emplace_back();
      rungs_.back().buckets.resize(kBuckets);
    } else {
      rungs_.push_back(std::move(rung_pool_.back()));
      rung_pool_.pop_back();
    }
    return rungs_.back();
  }

  /// `assign` into a too-small vector reallocates to the exact element count,
  /// so a band one event larger than the historical maximum would pay a fresh
  /// allocation every time the fluctuation repeats. Reserving double keeps
  /// growth geometric and lets steady-state band sizes jitter for free.
  static void reserve_with_headroom(std::vector<EventNode*>& v,
                                    std::size_t need) {
    if (v.capacity() < need) v.reserve(need * 2);
  }

  void retire_rung() {
    Rung& r = rungs_.back();
    r.cur = 0;
    rung_pool_.push_back(std::move(r));
    rungs_.pop_back();
  }

  /// Promotes the next non-empty band into the active heap. Returns false
  /// when the queue is empty.
  bool refill() {
    for (;;) {
      if (!rungs_.empty()) {
        Rung& deepest = rungs_.back();
        while (deepest.cur < kBuckets && deepest.buckets[deepest.cur].empty())
          ++deepest.cur;
        if (deepest.cur == kBuckets) {
          retire_rung();
          continue;
        }
        // Copy the band's pointers out and clear() the bucket IN PLACE: every
        // vector (bucket slots, scratch_, bottom_) keeps its own capacity for
        // its own role across the rung lifecycle, so steady-state refills and
        // rung rebuilds allocate nothing. (Moving the bucket out instead
        // would shuffle capacities between small child bands and large
        // parent bands and regrow vectors every cycle.)
        std::vector<EventNode*>& bucket = deepest.buckets[deepest.cur];
        if (bucket.size() > kSpawnThreshold && rungs_.size() < kMaxRungs) {
          reserve_with_headroom(scratch_, bucket.size());
          scratch_.assign(bucket.begin(), bucket.end());
          bucket.clear();
          ++deepest.cur;  // consumed before any re-route can see it
          // NOTE: spawn_rung may grow rungs_, so `deepest`/`bucket` are dead.
          if (spawn_rung(scratch_)) continue;
          bottom_.swap(scratch_);  // degenerate single-timestamp band
        } else {
          reserve_with_headroom(bottom_, bucket.size());
          bottom_.assign(bucket.begin(), bucket.end());
          bucket.clear();
          ++deepest.cur;
        }
        std::make_heap(bottom_.begin(), bottom_.end(), NodeAfter{});
        return true;
      }
      if (top_.empty()) return false;
      if (top_.size() <= kDirectDumpLimit || !(top_max_ > top_min_)) {
        // Too small (or a pure tie storm) to be worth banding: collapse
        // back to plain heap mode.
        bottom_.swap(top_);
        std::make_heap(bottom_.begin(), bottom_.end(), NodeAfter{});
        top_.clear();
        heap_mode_ = true;
        convert_floor_ =
            (top_max_ > top_min_) ? kHeapModeLimit : bottom_.size() * 2;
        return true;
      }
      build_rung(top_min_, top_max_, top_);
      top_start_ = rungs_.front().start + rungs_.front().width * kBuckets;
      top_.clear();
    }
  }

  /// Splits a dense band into a finer rung. Returns false when the band is
  /// a single timestamp (nothing to split — caller heap-sorts it).
  bool spawn_rung(std::vector<EventNode*>& band) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const EventNode* node : band) {
      lo = std::min(lo, node->t);
      hi = std::max(hi, node->t);
    }
    if (!(hi > lo)) return false;
    build_rung(lo, hi, band);
    band.clear();  // caller's scratch buffer; capacity stays with the caller
    return true;
  }

  void build_rung(double lo, double hi, std::vector<EventNode*>& nodes) {
    Rung& rung = acquire_rung();  // becomes rungs_.back()
    rung.start = lo;
    rung.width = (hi - lo) / static_cast<double>(kBuckets);
    rung.cur = 0;
    for (EventNode* node : nodes)
      rung.buckets[bucket_index(rung, node->t)].push_back(node);
  }

  // --- active band ---------------------------------------------------------
  std::vector<EventNode*> bottom_;  // min-heap on the full canonical stamp
  bool heap_mode_ = true;
  std::size_t convert_floor_ = 0;  // tie-storm backoff for try_convert()

  // --- ladder --------------------------------------------------------------
  std::vector<Rung> rungs_;      // [0] coarsest .. back() finest
  std::vector<Rung> rung_pool_;  // retired rungs, bucket capacity preserved
  std::vector<EventNode*> scratch_;  // band staging for spawn_rung
  std::vector<EventNode*> top_;  // far band (t >= top_start_), unsorted
  double top_start_ = std::numeric_limits<double>::infinity();
  double top_min_ = 0.0;
  double top_max_ = 0.0;

  // --- arena ---------------------------------------------------------------
  std::vector<std::unique_ptr<EventNode[]>> slabs_;
  std::vector<EventNode*> free_nodes_;

  // --- bookkeeping ---------------------------------------------------------
  std::size_t size_ = 0;
  double last_t_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ftbb::sim
