// Event-loop policy of the discrete-event kernel (the Parsec substitute).
//
// The kernel used to be one class with one hard-wired dispatch loop; this
// header extracts the loop into an EventExecutor so the same simulation code
// can run single-threaded (SequentialExecutor) or sharded across OS threads
// (ShardedExecutor) with *bit-identical* results.
//
// Determinism model. Every event carries a stamp
//
//     (time, scheduling context, per-context sequence number)
//
// assigned at schedule() time, and every executor dispatches events in the
// total order of these stamps. The scheduling context is the owner of the
// event being executed when schedule() is called (kControlOwner outside the
// run loop), and the sequence counter is per-context, so the stamp does not
// depend on how events are interleaved across shards or on the thread
// count: a context's handlers always run in the same relative order, hence
// issue the same stamps, in every execution. This fixed point is what makes
// ScenarioReport fingerprints identical between the sequential kernel and
// any sharded configuration.
//
// Sharding model (conservative lookahead, Chandy–Misra–Bryant style).
// Events are owned by a node; node n executes on shard n % threads (or on
// the shard its configured affinity key selects). Nodes only influence each
// other through cross-node events scheduled at least the link's lookahead in
// the future (the minimum network latency of that channel), so every shard
// may safely run ahead to its own window end
//
//     w_s = min( next control event,
//                min over all shards o of head(o) + closure(o -> s) )
//
// where head(o) is o's earliest pending event at the barrier and closure is
// the transitive closure (all-pairs shortest hop-chain) of the pair
// lookahead matrix, with the diagonal relaxed to the cheapest round trip
// through other shards. Any influence that could still reach s starts from
// some shard's queued event and pays at least the shortest chain of link
// floors to arrive — including the case where a fast shard first *wakes* an
// idle one whose reply would come back — so it lands at or after w_s, and
// nothing dispatched inside a window can be observed by another shard
// mid-window. With one latency class and all shards busy this degenerates
// to the classic single window [T, T + lookahead); with a hierarchical
// topology (ChannelLookahead below) shards separated by slow links run far
// ahead of each other. Cross-shard
// schedules land in a mailbox and are merged into the destination heap at
// the next epoch barrier — before any event of their window can run — with
// the canonical stamp order deciding ties. kControlOwner events (fault
// injection, storage sampling, anything scheduled from outside the run
// loop) always execute at a barrier, with every shard quiescent, so they
// may touch cross-node state exactly like they did on the single-threaded
// kernel.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"  // Callback, OwnerId, kControlOwner, EventQueue

namespace ftbb::sim {

// The event data plane lives in two sibling headers:
//   - sim/callback.hpp   : Callback (InlineCallback) — the move-only,
//     small-buffer-optimized event closure; zero allocations for captures
//     up to 64 bytes, pooled 128-byte blocks beyond.
//   - sim/event_queue.hpp: OwnerId / kControlOwner, the canonical stamp
//     order, and the ladder EventQueue both executors dispatch from.

/// Optional per-channel refinement of the global lookahead: nodes belong to
/// latency groups (racks, in the hierarchical network model) and the matrix
/// gives the guaranteed minimum latency of any cross-node event from a node
/// of group a to a node of group b. Every entry must be >= the global
/// `lookahead`; the sharded executor uses the matrix to widen per-shard
/// windows, never to narrow the safety check below the per-pair floor.
struct ChannelLookahead {
  std::uint32_t groups = 0;
  std::vector<std::uint32_t> group_of;  // group id per node; empty = one class
  std::vector<double> min_latency;      // groups x groups, row-major [from][to]

  [[nodiscard]] bool enabled(std::uint32_t nodes) const {
    return groups > 1 && group_of.size() == nodes &&
           min_latency.size() == static_cast<std::size_t>(groups) * groups;
  }
};

struct ExecutorConfig {
  /// Dispatch threads. <= 1, or a non-positive lookahead, selects the
  /// sequential executor; the canonical order makes the choice invisible to
  /// results either way.
  std::uint32_t threads = 1;
  /// Number of simulated nodes (owner ids are in [0, nodes)). The sharded
  /// executor sizes its per-context sequence counters from this; the
  /// sequential executor grows them on demand.
  std::uint32_t nodes = 0;
  /// Minimum virtual-time distance of any cross-node event (the minimum
  /// network link latency). Must be > 0 to shard.
  double lookahead = 0.0;
  /// Optional per-channel lookahead (see above). Ignored when it does not
  /// describe exactly `nodes` nodes.
  ChannelLookahead channels;
  /// Optional shard affinity key per node: node n executes on shard
  /// shard_of[n] % shard_count (empty: n % shard_count). Lets callers
  /// co-locate nodes that exchange low-latency traffic; any map yields
  /// identical results, only dispatch parallelism differs.
  std::vector<std::uint32_t> shard_of;
};

struct RunResult {
  std::uint64_t events = 0;
  bool drained = false;       // queue emptied
  bool hit_time_limit = false;
  bool hit_event_limit = false;
};

class EventExecutor {
 public:
  virtual ~EventExecutor() = default;

  /// Schedules `fn` at absolute virtual time `t` (>= now) on `owner`'s event
  /// stream. The canonical stamp is assigned here from the calling context.
  virtual void schedule(double t, OwnerId owner, Callback fn) = 0;

  /// Virtual time of the event being executed on the calling thread, or the
  /// global clock (last dispatched / barrier time) outside a handler.
  [[nodiscard]] virtual double now() const = 0;

  /// Owner of the event being executed on the calling thread, or
  /// kControlOwner outside a handler.
  [[nodiscard]] virtual OwnerId current_owner() const = 0;

  /// Dispatches events in canonical stamp order until the queue drains or a
  /// limit is hit. On a time-limit stop the clock advances to `time_limit`
  /// and the remaining events stay queued, so callers can resume with a
  /// larger limit. The event limit is a livelock backstop; the sharded
  /// executor checks it at window boundaries and may overshoot by up to one
  /// window of events.
  virtual RunResult run(double time_limit, std::uint64_t event_limit) = 0;

  [[nodiscard]] virtual bool empty() const = 0;
  [[nodiscard]] virtual std::size_t queued() const = 0;
};

[[nodiscard]] std::unique_ptr<EventExecutor> make_executor(const ExecutorConfig& config);

/// Thread-count resolution shared by every entry point that exposes
/// --threads / config knobs: an explicit `configured` > 0 wins, else the
/// FTBB_SIM_THREADS environment variable, else 1 (sequential).
[[nodiscard]] std::uint32_t resolve_sim_threads(std::uint32_t configured);

/// Scans argv for a `--threads=N` flag; returns N, or 0 when absent (which
/// sim_threads fields treat as "consult FTBB_SIM_THREADS, else sequential").
[[nodiscard]] std::uint32_t parse_threads_flag(int argc, char** argv);

}  // namespace ftbb::sim
