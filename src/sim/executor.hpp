// Event-loop policy of the discrete-event kernel (the Parsec substitute).
//
// The kernel used to be one class with one hard-wired dispatch loop; this
// header extracts the loop into an EventExecutor so the same simulation code
// can run single-threaded (SequentialExecutor) or sharded across OS threads
// (ShardedExecutor) with *bit-identical* results.
//
// Determinism model. Every event carries a stamp
//
//     (time, scheduling context, per-context sequence number)
//
// assigned at schedule() time, and every executor dispatches events in the
// total order of these stamps. The scheduling context is the owner of the
// event being executed when schedule() is called (kControlOwner outside the
// run loop), and the sequence counter is per-context, so the stamp does not
// depend on how events are interleaved across shards or on the thread
// count: a context's handlers always run in the same relative order, hence
// issue the same stamps, in every execution. This fixed point is what makes
// ScenarioReport fingerprints identical between the sequential kernel and
// any sharded configuration.
//
// Sharding model (conservative lookahead, Chandy–Misra–Bryant style).
// Events are owned by a node; node n executes on shard n % threads. Nodes
// only influence each other through cross-node events scheduled at least
// `lookahead` in the future (the minimum network link latency), so all
// shards may safely run the window [T, T + lookahead) in parallel, where T
// is the earliest pending event anywhere. Cross-shard schedules land in a
// mailbox and are merged into the destination heap at the next epoch
// barrier — before any event of their window can run — with the canonical
// stamp order deciding ties. kControlOwner events (fault injection, storage
// sampling, anything scheduled from outside the run loop) always execute at
// a barrier, with every shard quiescent, so they may touch cross-node state
// exactly like they did on the single-threaded kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>

namespace ftbb::sim {

using Callback = std::function<void()>;

/// Event owner: a simulated node id, or kControlOwner for the control
/// context (fault injection / sampling / pre-run scheduling). Control events
/// order before same-time node events, matching the old kernel where fault
/// schedules were enqueued first and therefore won insertion-order ties.
using OwnerId = std::int32_t;
constexpr OwnerId kControlOwner = -1;

struct ExecutorConfig {
  /// Dispatch threads. <= 1, or a non-positive lookahead, selects the
  /// sequential executor; the canonical order makes the choice invisible to
  /// results either way.
  std::uint32_t threads = 1;
  /// Number of simulated nodes (owner ids are in [0, nodes)). The sharded
  /// executor sizes its per-context sequence counters from this; the
  /// sequential executor grows them on demand.
  std::uint32_t nodes = 0;
  /// Minimum virtual-time distance of any cross-node event (the minimum
  /// network link latency). Must be > 0 to shard.
  double lookahead = 0.0;
};

struct RunResult {
  std::uint64_t events = 0;
  bool drained = false;       // queue emptied
  bool hit_time_limit = false;
  bool hit_event_limit = false;
};

class EventExecutor {
 public:
  virtual ~EventExecutor() = default;

  /// Schedules `fn` at absolute virtual time `t` (>= now) on `owner`'s event
  /// stream. The canonical stamp is assigned here from the calling context.
  virtual void schedule(double t, OwnerId owner, Callback fn) = 0;

  /// Virtual time of the event being executed on the calling thread, or the
  /// global clock (last dispatched / barrier time) outside a handler.
  [[nodiscard]] virtual double now() const = 0;

  /// Owner of the event being executed on the calling thread, or
  /// kControlOwner outside a handler.
  [[nodiscard]] virtual OwnerId current_owner() const = 0;

  /// Dispatches events in canonical stamp order until the queue drains or a
  /// limit is hit. On a time-limit stop the clock advances to `time_limit`
  /// and the remaining events stay queued, so callers can resume with a
  /// larger limit. The event limit is a livelock backstop; the sharded
  /// executor checks it at window boundaries and may overshoot by up to one
  /// window of events.
  virtual RunResult run(double time_limit, std::uint64_t event_limit) = 0;

  [[nodiscard]] virtual bool empty() const = 0;
  [[nodiscard]] virtual std::size_t queued() const = 0;
};

[[nodiscard]] std::unique_ptr<EventExecutor> make_executor(const ExecutorConfig& config);

/// Thread-count resolution shared by every entry point that exposes
/// --threads / config knobs: an explicit `configured` > 0 wins, else the
/// FTBB_SIM_THREADS environment variable, else 1 (sequential).
[[nodiscard]] std::uint32_t resolve_sim_threads(std::uint32_t configured);

/// Scans argv for a `--threads=N` flag; returns N, or 0 when absent (which
/// sim_threads fields treat as "consult FTBB_SIM_THREADS, else sequential").
[[nodiscard]] std::uint32_t parse_threads_flag(int argc, char** argv);

}  // namespace ftbb::sim
