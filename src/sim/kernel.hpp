// Discrete-event simulation kernel — the Parsec substitute (Section 6.2).
//
// Parsec models processes as objects exchanging time-stamped messages; the
// kernel here provides the same primitive: schedule a callback at a virtual
// time, dispatch callbacks in (time, insertion-sequence) order. The
// sequence tie-break makes runs bit-reproducible for equal timestamps.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "support/check.hpp"

namespace ftbb::sim {

class Kernel {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] double now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= now, clock is monotone).
  void at(double t, Callback fn) {
    FTBB_CHECK_MSG(t >= now_, "Kernel::at: scheduling into the past");
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` `delay` seconds from now.
  void after(double delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  struct RunResult {
    std::uint64_t events = 0;
    bool drained = false;       // queue emptied
    bool hit_time_limit = false;
    bool hit_event_limit = false;
  };

  /// Dispatches events until the queue drains or a limit is hit. The event
  /// limit is a livelock backstop for tests.
  RunResult run(double time_limit = std::numeric_limits<double>::infinity(),
                std::uint64_t event_limit = 500'000'000ULL) {
    RunResult res;
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (top.t > time_limit) {
        res.hit_time_limit = true;
        return res;
      }
      if (res.events >= event_limit) {
        res.hit_event_limit = true;
        return res;
      }
      // std::priority_queue::top is const; the callback must be moved out
      // before pop. const_cast is confined to this one extraction point.
      Callback fn = std::move(const_cast<Event&>(top).fn);
      now_ = top.t;
      queue_.pop();
      ++res.events;
      fn();
    }
    res.drained = true;
    return res;
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }

 private:
  struct Event {
    double t;
    std::uint64_t seq;
    Callback fn;

    bool operator>(const Event& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace ftbb::sim
