// Discrete-event simulation kernel — the Parsec substitute (Section 6.2).
//
// Parsec models processes as objects exchanging time-stamped messages; the
// kernel here provides the same primitive: schedule a callback at a virtual
// time, dispatch callbacks in canonical stamp order (see executor.hpp). The
// event-loop policy lives behind EventExecutor: the default is the classic
// single-threaded loop, and an ExecutorConfig with threads > 1 and a
// positive lookahead shards per-node event streams across OS threads with
// bit-identical results.
//
// Events are tagged with an owner (a node id, or kControlOwner): the owner
// decides which shard dispatches the event. The one-argument at()/after()
// inherit the owner of the event being executed, which is right for
// self-scheduling (timers, wakes, continuations); cross-node deliveries
// must name the destination explicitly.
//
// Callback is sim::InlineCallback (sim/callback.hpp): move-only, zero heap
// allocations for captures up to 64 bytes, pooled fixed-size blocks beyond.
// Pending events live in the ladder EventQueue (sim/event_queue.hpp) — O(1)
// amortized schedule/dispatch at millions of pending events, same canonical
// stamp order as the seed binary heap.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

#include "sim/executor.hpp"
#include "support/check.hpp"

namespace ftbb::sim {

class Kernel {
 public:
  using Callback = sim::Callback;
  using RunResult = sim::RunResult;

  Kernel() : Kernel(ExecutorConfig{}) {}
  explicit Kernel(const ExecutorConfig& config) : exec_(make_executor(config)) {}

  [[nodiscard]] double now() const { return exec_->now(); }

  /// Schedules `fn` at absolute virtual time `t` (>= now, clock is monotone)
  /// on the current context's own event stream.
  void at(double t, Callback fn) {
    exec_->schedule(t, exec_->current_owner(), std::move(fn));
  }

  /// Schedules `fn` at `t` on `owner`'s event stream (cross-node delivery).
  void at(double t, OwnerId owner, Callback fn) {
    exec_->schedule(t, owner, std::move(fn));
  }

  /// Schedules `fn` `delay` seconds from now.
  void after(double delay, Callback fn) { at(now() + delay, std::move(fn)); }
  void after(double delay, OwnerId owner, Callback fn) {
    at(now() + delay, owner, std::move(fn));
  }

  /// Dispatches events until the queue drains or a limit is hit. The event
  /// limit is a livelock backstop for tests. After a time-limit stop the
  /// clock stands at `time_limit` and the queue keeps the remaining events,
  /// so a caller can resume by running again with a larger limit.
  RunResult run(double time_limit = std::numeric_limits<double>::infinity(),
                std::uint64_t event_limit = 500'000'000ULL) {
    return exec_->run(time_limit, event_limit);
  }

  [[nodiscard]] bool empty() const { return exec_->empty(); }
  [[nodiscard]] std::size_t queued() const { return exec_->queued(); }

 private:
  std::unique_ptr<EventExecutor> exec_;
};

}  // namespace ftbb::sim
