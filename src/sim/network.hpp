// Network model (paper Sections 4 and 6.2).
//
// Message latency follows the paper's linear cost model,
//     latency = latency_fixed + latency_per_byte * L      (1.5 + 0.005L ms),
// optionally with multiplicative jitter. The model implements the paper's
// minimal assumptions: messages can be lost (i.i.d. probability) and links
// can be partitioned for a time window; messages are never duplicated,
// corrupted, or spontaneously created, and delivery time is unbounded only
// through loss (a lost message never arrives).
//
// Hierarchical topology: the paper's motivating deployment is idle
// workstations scattered across LAN / campus / WAN tiers, so NetConfig can
// optionally carry a Topology that assigns every node a (rack, campus)
// coordinate and per-tier latency parameters; the (from, to) pair then
// selects the rack, campus, or WAN latency class. The default topology is
// flat (one latency class from the top-level NetConfig fields), which keeps
// every historical run — and every pinned golden fingerprint — bit-identical.
// The per-pair latency floor doubles as the sharded executor's per-channel
// lookahead (see make_executor_config below): co-located nodes share a
// shard, and cross-tier channels grant lookahead as large as their tier's
// floor instead of the single global minimum.
//
// Concurrency & determinism: all loss and jitter draws for messages leaving
// node n come from n's private stream, in n's deterministic send order, and
// all counters live in per-node channels written only by that node's shard
// (sends by the source, deliveries by the destination). The sharded and
// sequential executors therefore see identical drops, latencies, and
// stats — nothing depends on how sends from different nodes interleave.
// Delivery events are owned by the destination node, which is what routes
// them to the right shard.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/kernel.hpp"
#include "support/rng.hpp"

namespace ftbb::sim {

/// A time-windowed loss burst: during [t0, t1) matching messages are lost
/// with probability `prob`, independently of the base loss rate. A rule with
/// from/to = kAnyNode applies to every link; otherwise it matches one
/// directed link. Models correlated loss episodes (congested or flaky links)
/// on top of the paper's i.i.d. assumption.
struct LossRule {
  static constexpr std::int32_t kAnyNode = -1;
  double t0 = 0.0;
  double t1 = std::numeric_limits<double>::infinity();
  double prob = 0.0;
  std::int32_t from = kAnyNode;
  std::int32_t to = kAnyNode;
};

/// One latency class of the hierarchical topology: the same linear cost
/// model as the flat network, per tier.
struct TierLatency {
  double latency_fixed = 1.5e-3;   // seconds
  double latency_per_byte = 5e-6;  // seconds/byte
  double jitter_frac = 0.0;        // latency *= U(1-j, 1+j)
};

/// LAN/campus/WAN tier model. Nodes get implicit coordinates from their id:
/// rack_of(n) = n / nodes_per_rack and campus_of(n) = rack_of(n) /
/// racks_per_campus, so a contiguous id range is one rack and racks pack
/// into campuses. nodes_per_rack = 0 (the default) disables the hierarchy —
/// the network is a single flat latency class and nothing changes.
struct Topology {
  std::uint32_t nodes_per_rack = 0;   // 0 = flat (single latency class)
  std::uint32_t racks_per_campus = 4;
  TierLatency rack{100e-6, 2e-7, 0.0};    // same rack: switched LAN
  TierLatency campus{1.5e-3, 5e-6, 0.0};  // same campus: the paper's network
  TierLatency wan{30e-3, 1e-5, 0.0};      // cross-campus: wide area

  [[nodiscard]] bool hierarchical() const { return nodes_per_rack > 0; }
  [[nodiscard]] std::uint32_t rack_of(std::uint32_t node) const {
    return hierarchical() ? node / nodes_per_rack : 0;
  }
  [[nodiscard]] std::uint32_t campus_of(std::uint32_t node) const {
    return rack_of(node) / (racks_per_campus > 0 ? racks_per_campus : 1);
  }
};

struct NetConfig {
  double latency_fixed = 1.5e-3;    // seconds (paper: 1.5 ms)
  double latency_per_byte = 5e-6;   // seconds/byte (paper: 0.005 ms/B)
  double jitter_frac = 0.0;         // latency *= U(1-j, 1+j)
  double loss_prob = 0.0;           // i.i.d. message loss
  std::vector<LossRule> loss_rules; // additional windowed / per-link loss
  /// Optional LAN/campus/WAN hierarchy. When hierarchical() the per-tier
  /// parameters replace the flat latency fields above for every message
  /// (loss and partitions are unaffected — they stay per-link / per-window).
  Topology topology;
};

/// The latency class of the directed link (from, to): the flat top-level
/// parameters, or the tier the pair's coordinates select. The single place
/// every transport (simulated or wall-clock) derives link parameters from.
[[nodiscard]] inline TierLatency link_latency(const NetConfig& config,
                                              std::uint32_t from,
                                              std::uint32_t to) {
  const Topology& topo = config.topology;
  if (!topo.hierarchical()) {
    return TierLatency{config.latency_fixed, config.latency_per_byte,
                       config.jitter_frac};
  }
  if (topo.rack_of(from) == topo.rack_of(to)) return topo.rack;
  if (topo.campus_of(from) == topo.campus_of(to)) return topo.campus;
  return topo.wan;
}

/// A temporary partition: during [t0, t1) only endpoints in the same group
/// can communicate. Messages crossing groups are dropped (the harshest
/// reading of "temporary network partitions").
struct Partition {
  double t0 = 0.0;
  double t1 = 0.0;
  std::vector<int> group_of;  // group id per node
};

// Window-matching semantics of the fault model, shared by every transport
// that replays a FaultPlan (the simulated Network below evaluates them in
// virtual time; the rt runtime's in-process transport in wall time).

/// Combined loss probability for one transmission at time `t`: the base rate
/// and every matching active rule act as independent loss sources, so
/// survival probabilities multiply. Callers consume exactly one RNG draw per
/// at-risk message regardless of how many rules match, keeping runs
/// reproducible.
[[nodiscard]] inline double combined_loss_probability(const NetConfig& config,
                                                      std::uint32_t from,
                                                      std::uint32_t to, double t) {
  double survive = 1.0 - config.loss_prob;
  for (const LossRule& rule : config.loss_rules) {
    if (t < rule.t0 || t >= rule.t1) continue;
    if (rule.from != LossRule::kAnyNode &&
        rule.from != static_cast<std::int32_t>(from)) {
      continue;
    }
    if (rule.to != LossRule::kAnyNode &&
        rule.to != static_cast<std::int32_t>(to)) {
      continue;
    }
    survive *= 1.0 - rule.prob;
  }
  return 1.0 - survive;
}

/// True when some partition window active at `t` separates `from` and `to`.
[[nodiscard]] inline bool partition_blocks(const std::vector<Partition>& partitions,
                                           std::uint32_t from, std::uint32_t to,
                                           double t) {
  for (const Partition& p : partitions) {
    if (t < p.t0 || t >= p.t1) continue;
    if (from >= p.group_of.size() || to >= p.group_of.size()) continue;
    if (p.group_of[from] != p.group_of[to]) return true;
  }
  return false;
}

class Network {
 public:
  struct Stats {
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_delivered = 0;
    std::uint64_t messages_lost = 0;        // random loss
    std::uint64_t messages_partitioned = 0; // dropped at a partition
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_delivered = 0;
  };

  /// `nodes` bounds the node ids used with send(); each node gets a private
  /// draw stream split from `rng` and a private counter block.
  Network(Kernel* kernel, NetConfig config, support::Rng rng, std::uint32_t nodes)
      : kernel_(kernel), config_(std::move(config)) {
    channels_.reserve(nodes);
    for (std::uint32_t n = 0; n < nodes; ++n) {
      channels_.emplace_back(rng.split(n));
    }
  }

  /// The guaranteed minimum latency of one latency class (its fixed cost
  /// shrunk by the worst-case jitter draw).
  [[nodiscard]] static double tier_floor(const TierLatency& tier) {
    const double jitter = tier.jitter_frac > 0.0 ? tier.jitter_frac : 0.0;
    const double floor = tier.latency_fixed * (1.0 - jitter);
    return floor > 0.0 ? floor : 0.0;
  }

  /// The guaranteed minimum latency of any message under `config` — the
  /// conservative global lookahead a sharded executor may rely on. With a
  /// hierarchical topology this is the smallest tier floor (normally the
  /// rack tier); per-pair floors below are at least this large.
  [[nodiscard]] static double min_latency(const NetConfig& config) {
    const Topology& topo = config.topology;
    if (!topo.hierarchical()) {
      return tier_floor(TierLatency{config.latency_fixed,
                                    config.latency_per_byte,
                                    config.jitter_frac});
    }
    return std::min({tier_floor(topo.rack), tier_floor(topo.campus),
                     tier_floor(topo.wan)});
  }

  /// The guaranteed minimum latency on the directed link (from, to): the
  /// floor of the latency class the pair's coordinates select. Messages
  /// between distant nodes can never arrive sooner than this, which is what
  /// lets the sharded executor grant per-channel lookahead far beyond the
  /// global minimum.
  [[nodiscard]] static double min_latency(const NetConfig& config,
                                          std::uint32_t from, std::uint32_t to) {
    return tier_floor(link_latency(config, from, to));
  }

  void add_partition(Partition p) { partitions_.push_back(std::move(p)); }

  /// Appends one windowed loss rule after the rules already in the config.
  /// Valid before the run starts; lets a FaultDriver install a plan's rules
  /// through the same capability call on every backend.
  void add_loss_rule(LossRule rule) { config_.loss_rules.push_back(rule); }

  /// Transmits `bytes` departing at `departure` (>= kernel time; senders may
  /// be in the middle of a charged busy period); `deliver` runs at arrival —
  /// on the destination node's event stream — unless the message is lost.
  /// Returns false when dropped. Must be called from the sending node's own
  /// context (or from the control context while shards are quiescent).
  /// `deliver` is taken by value as the kernel's move-only Callback and moved
  /// straight through the loss/jitter path into the scheduled event — no
  /// intermediate std::function conversion, no extra allocation.
  bool send(std::uint32_t from, std::uint32_t to, std::size_t bytes, double departure,
            Callback deliver) {
    FTBB_CHECK(from < channels_.size() && to < channels_.size());
    Channel& src = channels_[from];
    ++src.messages_sent;
    src.bytes_sent += bytes;
    if (blocked_by_partition(from, to, departure)) {
      ++src.messages_partitioned;
      return false;
    }
    const double p = loss_probability(from, to, departure);
    if (p > 0.0 && src.rng.chance(p)) {
      ++src.messages_lost;
      return false;
    }
    const TierLatency link = link_latency(config_, from, to);
    double latency =
        link.latency_fixed + link.latency_per_byte * static_cast<double>(bytes);
    if (link.jitter_frac > 0.0) {
      latency *= src.rng.uniform(1.0 - link.jitter_frac, 1.0 + link.jitter_frac);
    }
    src.bytes_delivered += bytes;
    kernel_->at(departure + latency, static_cast<OwnerId>(to),
                DeliverTask{this, to, std::move(deliver)});
    return true;
  }

  /// Aggregate counters over every node channel.
  [[nodiscard]] Stats stats() const {
    Stats total;
    for (const Channel& channel : channels_) {
      total.messages_sent += channel.messages_sent;
      total.messages_delivered += channel.messages_delivered;
      total.messages_lost += channel.messages_lost;
      total.messages_partitioned += channel.messages_partitioned;
      total.bytes_sent += channel.bytes_sent;
      total.bytes_delivered += channel.bytes_delivered;
    }
    return total;
  }

  [[nodiscard]] const NetConfig& config() const { return config_; }

 private:
  /// The scheduled arrival of a sent message: bumps the destination's
  /// delivery counter, then runs the caller's deliver closure. A named
  /// struct instead of a capturing lambda keeps the wrapper at exactly
  /// {Network*, node id, inner callback} — one pooled Callback block even
  /// when the inner closure itself carries a Message payload. `network` stays
  /// valid: the kernel drains or is discarded before the Network in every
  /// backend.
  struct DeliverTask {
    Network* network;
    std::uint32_t to;
    Callback inner;
    void operator()() {
      ++network->channels_[to].messages_delivered;
      inner();
    }
  };

  /// Per-node channel: the draw stream and counters for traffic this node
  /// originates, plus the delivery counter for traffic it receives. Both
  /// sides are written only on the node's own shard (sends execute in the
  /// source's context, deliveries in the destination's), so there is exactly
  /// one writer per channel; alignas keeps channels off shared cache lines.
  struct alignas(64) Channel {
    explicit Channel(support::Rng r) : rng(r) {}
    support::Rng rng;
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_lost = 0;
    std::uint64_t messages_partitioned = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_delivered = 0;  // counted at send, like bytes_sent
    std::uint64_t messages_delivered = 0;
  };

  [[nodiscard]] double loss_probability(std::uint32_t from, std::uint32_t to,
                                        double t) const {
    return combined_loss_probability(config_, from, to, t);
  }

  [[nodiscard]] bool blocked_by_partition(std::uint32_t from, std::uint32_t to,
                                          double t) const {
    return partition_blocks(partitions_, from, to, t);
  }

  Kernel* kernel_;
  NetConfig config_;
  std::vector<Channel> channels_;
  std::vector<Partition> partitions_;
};

/// The one place every simulated backend (SimCluster, CentralSim, DibSim)
/// derives its kernel dispatch policy from a network config. Fills in:
///
///   * the global conservative lookahead (Network::min_latency) — backends
///     used to re-derive latency_fixed*(1-jitter_frac) by hand;
///   * with a hierarchical topology, a per-channel lookahead model at rack
///     granularity (group = rack, matrix of per-pair tier floors) so the
///     sharded executor can open windows bounded by each *channel's* floor
///     instead of the single global minimum;
///   * a topology-aligned shard affinity so co-located nodes share a shard
///     and cross-shard traffic crosses the slow, high-lookahead tiers.
///
/// `per_channel = false` keeps the classic single global-barrier lookahead
/// (used by benchmarks to measure what the refinement buys). Either setting
/// yields bit-identical results — only the dispatch parallelism changes.
[[nodiscard]] inline ExecutorConfig make_executor_config(const NetConfig& net,
                                                         std::uint32_t nodes,
                                                         std::uint32_t threads,
                                                         bool per_channel = true) {
  ExecutorConfig ex;
  ex.threads = threads;
  ex.nodes = nodes;
  ex.lookahead = Network::min_latency(net);
  const Topology& topo = net.topology;
  if (!per_channel || !topo.hierarchical() || nodes == 0) return ex;

  const std::uint32_t racks = topo.rack_of(nodes - 1) + 1;
  ex.channels.groups = racks;
  ex.channels.group_of.resize(nodes);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    ex.channels.group_of[n] = topo.rack_of(n);
  }
  ex.channels.min_latency.assign(static_cast<std::size_t>(racks) * racks, 0.0);
  for (std::uint32_t a = 0; a < racks; ++a) {
    const std::uint32_t node_a = a * topo.nodes_per_rack;  // representative
    for (std::uint32_t b = 0; b < racks; ++b) {
      const std::uint32_t node_b = b * topo.nodes_per_rack;
      ex.channels.min_latency[static_cast<std::size_t>(a) * racks + b] =
          Network::min_latency(net, node_a, node_b);
    }
  }

  // Shard affinity: keep campuses whole when there are enough of them to
  // feed every thread (cross-shard traffic is then all WAN-tier), else keep
  // racks whole (cross-shard traffic is at least campus-tier). The executor
  // maps keys onto shards by modulo; any map is sound — the per-pair floors
  // above are what guarantee window safety — this one just maximizes how
  // much lookahead the cross-shard channels grant.
  const std::uint32_t campuses = topo.campus_of(nodes - 1) + 1;
  ex.shard_of.resize(nodes);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    ex.shard_of[n] = (threads > 0 && campuses >= threads) ? topo.campus_of(n)
                                                          : topo.rack_of(n);
  }
  return ex;
}

}  // namespace ftbb::sim
