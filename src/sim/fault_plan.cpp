#include "sim/fault_plan.hpp"

#include <algorithm>
#include <cstdio>

#include "support/check.hpp"

namespace ftbb::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRejoin:
      return "rejoin";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLoss:
      return "loss";
    case FaultKind::kChurn:
      return "churn";
  }
  return "?";
}

FaultPlan& FaultPlan::crash(std::uint32_t node, double time) {
  FTBB_CHECK(time >= 0.0);
  crashes_.push_back(CrashSpec{node, time});
  return *this;
}

FaultPlan& FaultPlan::rejoin(std::uint32_t node, double time) {
  FTBB_CHECK(time >= 0.0);
  rejoins_.push_back(RejoinSpec{node, time});
  return *this;
}

FaultPlan& FaultPlan::partition(double t0, double t1, std::vector<int> group_of) {
  FTBB_CHECK_MSG(t1 > t0, "partition window must be non-empty");
  partitions_.push_back(PartitionSpec{t0, t1, std::move(group_of)});
  return *this;
}

FaultPlan& FaultPlan::split_halves(double t0, double t1) {
  FTBB_CHECK_MSG(t1 > t0, "partition window must be non-empty");
  pending_splits_.push_back(PendingSplit{partitions_.size(), true, 0, 0});
  partitions_.push_back(PartitionSpec{t0, t1, {}});
  return *this;
}

FaultPlan& FaultPlan::isolate(std::uint32_t first, std::uint32_t count,
                              double t0, double t1) {
  FTBB_CHECK_MSG(t1 > t0, "partition window must be non-empty");
  FTBB_CHECK_MSG(count > 0, "an isolate window needs a non-empty minority");
  pending_splits_.push_back(PendingSplit{partitions_.size(), false, first, count});
  partitions_.push_back(PartitionSpec{t0, t1, {}});
  return *this;
}

FaultPlan& FaultPlan::loss(double t0, double t1, double prob) {
  FTBB_CHECK(prob >= 0.0 && prob <= 1.0);
  FTBB_CHECK_MSG(t1 > t0, "loss window must be non-empty");
  loss_rules_.push_back(
      LossRule{t0, t1, prob, LossRule::kAnyNode, LossRule::kAnyNode});
  return *this;
}

FaultPlan& FaultPlan::link_loss(std::uint32_t from, std::uint32_t to, double t0,
                                double t1, double prob) {
  FTBB_CHECK(prob >= 0.0 && prob <= 1.0);
  FTBB_CHECK_MSG(t1 > t0, "loss window must be non-empty");
  loss_rules_.push_back(LossRule{t0, t1, prob, static_cast<std::int32_t>(from),
                                 static_cast<std::int32_t>(to)});
  return *this;
}

FaultPlan& FaultPlan::churn(std::uint32_t first_node, std::uint32_t count,
                            double start, double period) {
  FTBB_CHECK(start >= 0.0 && period >= 0.0);
  for (std::uint32_t i = 0; i < count; ++i) {
    joins_.push_back(JoinSpec{first_node + i, start + period * i});
  }
  if (count > 0) churned_ = true;
  return *this;
}

FaultPlan& FaultPlan::bounce(std::uint32_t node, double crash_time,
                             double rejoin_time) {
  FTBB_CHECK_MSG(rejoin_time > crash_time, "rejoin must follow the crash");
  crash(node, crash_time);
  rejoin(node, rejoin_time);
  churned_ = true;
  return *this;
}

FaultPlan FaultPlan::flaky_link(std::uint32_t from, std::uint32_t to, double start,
                                double stop, double prob, double period) {
  FTBB_CHECK(stop > start && period > 0.0);
  FaultPlan plan;
  for (double t = start; t < stop; t += 2.0 * period) {
    const double t1 = std::min(t + period, stop);
    plan.link_loss(from, to, t, t1, prob);
    plan.link_loss(to, from, t, t1, prob);
  }
  return plan;
}

FaultPlan FaultPlan::rolling_restart(std::uint32_t first, std::uint32_t count,
                                     double start, double stagger,
                                     double downtime) {
  FTBB_CHECK(count > 0 && stagger >= 0.0 && downtime > 0.0);
  FaultPlan plan;
  for (std::uint32_t i = 0; i < count; ++i) {
    const double down = start + stagger * i;
    plan.bounce(first + i, down, down + downtime);
  }
  return plan;
}

FaultPlan FaultPlan::flapping_partition(std::uint32_t flaps, double start,
                                        double width, double gap) {
  FTBB_CHECK(flaps > 0 && width > 0.0 && gap >= 0.0);
  FaultPlan plan;
  for (std::uint32_t i = 0; i < flaps; ++i) {
    const double t0 = start + (width + gap) * i;
    plan.split_halves(t0, t0 + width);
  }
  return plan;
}

FaultPlan FaultPlan::adversarial_churn(std::uint32_t first, std::uint32_t arrivals,
                                       double start, double period) {
  FTBB_CHECK(arrivals > 0 && period > 0.0);
  FaultPlan plan;
  plan.churn(first, arrivals, start, period);
  for (std::uint32_t i = 1; i < arrivals; i += 2) {
    // Every second arrival lives for two periods, dies, and returns.
    const double joined = start + period * i;
    plan.bounce(first + i, joined + 2.0 * period, joined + 3.0 * period);
  }
  plan.loss(start, start + period * (arrivals + 4), 0.05);
  return plan;
}

FaultPlan FaultPlan::cascading_storm(std::uint32_t first, std::uint32_t waves,
                                     double start, double gap, double downtime) {
  FTBB_CHECK(waves > 0 && gap > 0.0 && downtime > 0.0);
  FaultPlan plan;
  double t = start;
  double step = gap;
  double last_return = start;
  for (std::uint32_t i = 0; i < waves; ++i) {
    plan.bounce(first + i, t, t + downtime);
    last_return = std::max(last_return, t + downtime);
    t += step;
    step *= 0.7;  // the cascade accelerates
  }
  plan.split_halves(start + gap, start + 2.0 * gap);
  plan.loss(start, last_return + gap, 0.08);
  return plan;
}

FaultPlan FaultPlan::asymmetric_partition(std::uint32_t minority,
                                          std::uint32_t episodes, double start,
                                          double width, double gap) {
  FTBB_CHECK(minority > 0 && episodes > 0 && width > 0.0 && gap >= 0.0);
  FaultPlan plan;
  for (std::uint32_t e = 0; e < episodes; ++e) {
    const double t0 = start + (width + gap) * e;
    plan.isolate(e * minority, minority, t0, t0 + width);
  }
  return plan;
}

bool FaultPlan::empty() const {
  return crashes_.empty() && rejoins_.empty() && joins_.empty() &&
         partitions_.empty() && loss_rules_.empty();
}

bool FaultPlan::has(FaultKind kind) const {
  switch (kind) {
    case FaultKind::kCrash:
      return !crashes_.empty();
    case FaultKind::kRejoin:
      return !rejoins_.empty();
    case FaultKind::kPartition:
      return !partitions_.empty();
    case FaultKind::kLoss:
      return !loss_rules_.empty();
    case FaultKind::kChurn:
      return churned_ || !joins_.empty();
  }
  return false;
}

int FaultPlan::distinct_fault_kinds() const {
  int kinds = 0;
  for (int k = 0; k < kFaultKinds; ++k) {
    if (has(static_cast<FaultKind>(k))) ++kinds;
  }
  return kinds;
}

std::int64_t FaultPlan::max_node() const {
  std::int64_t top = -1;
  for (const CrashSpec& c : crashes_) top = std::max<std::int64_t>(top, c.node);
  for (const RejoinSpec& r : rejoins_) top = std::max<std::int64_t>(top, r.node);
  for (const JoinSpec& j : joins_) top = std::max<std::int64_t>(top, j.node);
  for (const PartitionSpec& p : partitions_) {
    top = std::max<std::int64_t>(
        top, static_cast<std::int64_t>(p.group_of.size()) - 1);
  }
  for (const LossRule& rule : loss_rules_) {
    top = std::max<std::int64_t>(top, rule.from);
    top = std::max<std::int64_t>(top, rule.to);
  }
  return top;
}

void FaultPlan::for_workers(std::uint32_t workers) {
  for (const PendingSplit& split : pending_splits_) {
    PartitionSpec& p = partitions_[split.index];
    if (!p.group_of.empty()) continue;  // already materialized
    p.group_of.resize(workers);
    if (split.halves) {
      for (std::uint32_t n = 0; n < workers; ++n) {
        p.group_of[n] = n < workers / 2 ? 0 : 1;
      }
    } else {
      FTBB_CHECK_MSG(split.count < workers,
                     "isolating the whole population is not a partition");
      const std::uint32_t first = split.first % workers;
      for (std::uint32_t n = 0; n < workers; ++n) {
        const std::uint32_t offset = (n + workers - first) % workers;
        p.group_of[n] = offset < split.count ? 1 : 0;
      }
    }
  }
  pending_splits_.clear();
  FTBB_CHECK_MSG(max_node() < static_cast<std::int64_t>(workers),
                 "fault plan references a node outside the population");
  for (const RejoinSpec& r : rejoins_) {
    const bool preceded =
        std::any_of(crashes_.begin(), crashes_.end(), [&r](const CrashSpec& c) {
          return c.node == r.node && c.time < r.time;
        });
    FTBB_CHECK_MSG(preceded, "rejoin without a preceding crash of the node");
  }
}

std::vector<FaultPlan::TimedFault> FaultPlan::timeline() const {
  std::vector<TimedFault> events;
  char buf[160];
  for (const CrashSpec& c : crashes_) {
    std::snprintf(buf, sizeof(buf), "node %u", c.node);
    events.push_back({c.time, FaultKind::kCrash, buf});
  }
  for (const RejoinSpec& r : rejoins_) {
    std::snprintf(buf, sizeof(buf), "node %u", r.node);
    events.push_back({r.time, FaultKind::kRejoin, buf});
  }
  for (const JoinSpec& j : joins_) {
    std::snprintf(buf, sizeof(buf), "node %u joins", j.node);
    events.push_back({j.time, FaultKind::kChurn, buf});
  }
  for (const PartitionSpec& p : partitions_) {
    if (p.group_of.empty()) {  // split_halves() awaiting for_workers()
      std::snprintf(buf, sizeof(buf), "split in halves until t=%.3f", p.t1);
    } else {
      std::snprintf(buf, sizeof(buf), "split until t=%.3f (%zu nodes)", p.t1,
                    p.group_of.size());
    }
    events.push_back({p.t0, FaultKind::kPartition, buf});
  }
  for (const LossRule& rule : loss_rules_) {
    if (rule.from == LossRule::kAnyNode && rule.to == LossRule::kAnyNode) {
      std::snprintf(buf, sizeof(buf), "%.0f%% all links until t=%.3f",
                    rule.prob * 100.0, rule.t1);
    } else {
      std::snprintf(buf, sizeof(buf), "%.0f%% on %d->%d until t=%.3f",
                    rule.prob * 100.0, rule.from, rule.to, rule.t1);
    }
    events.push_back({rule.t0, FaultKind::kLoss, buf});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TimedFault& a, const TimedFault& b) {
                     return a.time < b.time;
                   });
  return events;
}

std::string FaultPlan::describe() const {
  std::string out;
  char buf[200];
  for (const TimedFault& event : timeline()) {
    std::snprintf(buf, sizeof(buf), "t=%.3f %s: %s\n", event.time,
                  to_string(event.kind), event.detail.c_str());
    out += buf;
  }
  return out;
}

}  // namespace ftbb::sim
