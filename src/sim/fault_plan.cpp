#include "sim/fault_plan.hpp"

#include <algorithm>
#include <cstdio>

#include "support/check.hpp"

namespace ftbb::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRejoin:
      return "rejoin";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLoss:
      return "loss";
    case FaultKind::kChurn:
      return "churn";
  }
  return "?";
}

FaultPlan& FaultPlan::crash(std::uint32_t node, double time) {
  FTBB_CHECK(time >= 0.0);
  crashes_.push_back(CrashSpec{node, time});
  return *this;
}

FaultPlan& FaultPlan::rejoin(std::uint32_t node, double time) {
  FTBB_CHECK(time >= 0.0);
  rejoins_.push_back(RejoinSpec{node, time});
  return *this;
}

FaultPlan& FaultPlan::partition(double t0, double t1, std::vector<int> group_of) {
  FTBB_CHECK_MSG(t1 > t0, "partition window must be non-empty");
  partitions_.push_back(PartitionSpec{t0, t1, std::move(group_of)});
  return *this;
}

FaultPlan& FaultPlan::split_halves(double t0, double t1) {
  FTBB_CHECK_MSG(t1 > t0, "partition window must be non-empty");
  pending_splits_.push_back(PendingSplit{partitions_.size(), true, 0, 0});
  partitions_.push_back(PartitionSpec{t0, t1, {}});
  return *this;
}

FaultPlan& FaultPlan::isolate(std::uint32_t first, std::uint32_t count,
                              double t0, double t1) {
  FTBB_CHECK_MSG(t1 > t0, "partition window must be non-empty");
  FTBB_CHECK_MSG(count > 0, "an isolate window needs a non-empty minority");
  pending_splits_.push_back(PendingSplit{partitions_.size(), false, first, count});
  partitions_.push_back(PartitionSpec{t0, t1, {}});
  return *this;
}

FaultPlan& FaultPlan::loss(double t0, double t1, double prob) {
  FTBB_CHECK(prob >= 0.0 && prob <= 1.0);
  FTBB_CHECK_MSG(t1 > t0, "loss window must be non-empty");
  loss_rules_.push_back(
      LossRule{t0, t1, prob, LossRule::kAnyNode, LossRule::kAnyNode});
  return *this;
}

FaultPlan& FaultPlan::link_loss(std::uint32_t from, std::uint32_t to, double t0,
                                double t1, double prob) {
  FTBB_CHECK(prob >= 0.0 && prob <= 1.0);
  FTBB_CHECK_MSG(t1 > t0, "loss window must be non-empty");
  loss_rules_.push_back(LossRule{t0, t1, prob, static_cast<std::int32_t>(from),
                                 static_cast<std::int32_t>(to)});
  return *this;
}

FaultPlan& FaultPlan::churn(std::uint32_t first_node, std::uint32_t count,
                            double start, double period) {
  FTBB_CHECK(start >= 0.0 && period >= 0.0);
  for (std::uint32_t i = 0; i < count; ++i) {
    joins_.push_back(JoinSpec{first_node + i, start + period * i});
  }
  if (count > 0) churned_ = true;
  return *this;
}

FaultPlan& FaultPlan::bounce(std::uint32_t node, double crash_time,
                             double rejoin_time) {
  FTBB_CHECK_MSG(rejoin_time > crash_time, "rejoin must follow the crash");
  crash(node, crash_time);
  rejoin(node, rejoin_time);
  churned_ = true;
  return *this;
}

FaultPlan FaultPlan::flaky_link(std::uint32_t from, std::uint32_t to, double start,
                                double stop, double prob, double period) {
  FTBB_CHECK(stop > start && period > 0.0);
  FaultPlan plan;
  for (double t = start; t < stop; t += 2.0 * period) {
    const double t1 = std::min(t + period, stop);
    plan.link_loss(from, to, t, t1, prob);
    plan.link_loss(to, from, t, t1, prob);
  }
  return plan;
}

FaultPlan FaultPlan::rolling_restart(std::uint32_t first, std::uint32_t count,
                                     double start, double stagger,
                                     double downtime) {
  FTBB_CHECK(count > 0 && stagger >= 0.0 && downtime > 0.0);
  FaultPlan plan;
  for (std::uint32_t i = 0; i < count; ++i) {
    const double down = start + stagger * i;
    plan.bounce(first + i, down, down + downtime);
  }
  return plan;
}

FaultPlan FaultPlan::flapping_partition(std::uint32_t flaps, double start,
                                        double width, double gap) {
  FTBB_CHECK(flaps > 0 && width > 0.0 && gap >= 0.0);
  FaultPlan plan;
  for (std::uint32_t i = 0; i < flaps; ++i) {
    const double t0 = start + (width + gap) * i;
    plan.split_halves(t0, t0 + width);
  }
  return plan;
}

FaultPlan FaultPlan::adversarial_churn(std::uint32_t first, std::uint32_t arrivals,
                                       double start, double period) {
  FTBB_CHECK(arrivals > 0 && period > 0.0);
  FaultPlan plan;
  plan.churn(first, arrivals, start, period);
  for (std::uint32_t i = 1; i < arrivals; i += 2) {
    // Every second arrival lives for two periods, dies, and returns.
    const double joined = start + period * i;
    plan.bounce(first + i, joined + 2.0 * period, joined + 3.0 * period);
  }
  plan.loss(start, start + period * (arrivals + 4), 0.05);
  return plan;
}

FaultPlan FaultPlan::cascading_storm(std::uint32_t first, std::uint32_t waves,
                                     double start, double gap, double downtime) {
  FTBB_CHECK(waves > 0 && gap > 0.0 && downtime > 0.0);
  FaultPlan plan;
  double t = start;
  double step = gap;
  double last_return = start;
  for (std::uint32_t i = 0; i < waves; ++i) {
    plan.bounce(first + i, t, t + downtime);
    last_return = std::max(last_return, t + downtime);
    t += step;
    step *= 0.7;  // the cascade accelerates
  }
  plan.split_halves(start + gap, start + 2.0 * gap);
  plan.loss(start, last_return + gap, 0.08);
  return plan;
}

FaultPlan FaultPlan::asymmetric_partition(std::uint32_t minority,
                                          std::uint32_t episodes, double start,
                                          double width, double gap) {
  FTBB_CHECK(minority > 0 && episodes > 0 && width > 0.0 && gap >= 0.0);
  FaultPlan plan;
  for (std::uint32_t e = 0; e < episodes; ++e) {
    const double t0 = start + (width + gap) * e;
    plan.isolate(e * minority, minority, t0, t0 + width);
  }
  return plan;
}

FaultPlan FaultPlan::planetary_churn(std::uint32_t first, std::uint32_t arrivals,
                                     double start, double base_period) {
  FTBB_CHECK(arrivals > 0 && base_period > 0.0);
  // Deterministic heavy-tailed gap sequence (Pareto flavor): the mean gap is
  // 2.6 base periods but the mass sits in the rare 13x outlier, so arrival
  // bursts alternate with long quiet stretches. Fixed, not drawn — the plan
  // determinism contract keeps all randomness inside the seeded simulation.
  static constexpr double kTailGaps[] = {1, 1, 2, 1, 1, 3, 1, 2, 1, 13};
  constexpr std::size_t kCycle = sizeof(kTailGaps) / sizeof(kTailGaps[0]);
  FaultPlan plan;
  double t = start;
  for (std::uint32_t i = 0; i < arrivals; ++i) {
    plan.churn(first + i, 1, t, 0.0);
    if (i % 3 == 2) {
      // A transient donor: contributes two base periods of work, vanishes,
      // and returns one period later as a fresh incarnation.
      plan.bounce(first + i, t + 2.0 * base_period, t + 3.0 * base_period);
    }
    t += base_period * kTailGaps[i % kCycle];
  }
  return plan;
}

FaultPlan FaultPlan::rack_failures(std::uint32_t first_rack, std::uint32_t racks,
                                   std::uint32_t nodes_per_rack, double start,
                                   double stagger, double downtime) {
  FTBB_CHECK(racks > 0 && nodes_per_rack > 0);
  FTBB_CHECK(stagger >= 0.0 && downtime > 0.0);
  FaultPlan plan;
  for (std::uint32_t r = 0; r < racks; ++r) {
    const double down = start + stagger * r;
    const std::uint32_t base = (first_rack + r) * nodes_per_rack;
    // Every node of the rack at the same instant: one switch, one failure.
    for (std::uint32_t n = 0; n < nodes_per_rack; ++n) {
      plan.bounce(base + n, down, down + downtime);
    }
  }
  return plan;
}

FaultPlan FaultPlan::cascading_partition(std::uint32_t nodes,
                                         std::uint32_t nodes_per_rack,
                                         std::uint32_t racks_per_campus,
                                         double start, double width, double gap) {
  FTBB_CHECK(nodes > 0 && nodes_per_rack > 0 && racks_per_campus > 0);
  FTBB_CHECK(width > 0.0 && gap >= 0.0);
  const auto rack_of = [&](std::uint32_t n) { return n / nodes_per_rack; };
  const auto campus_of = [&](std::uint32_t n) {
    return rack_of(n) / racks_per_campus;
  };
  const std::uint32_t campuses = campus_of(nodes - 1) + 1;
  FTBB_CHECK_MSG(campuses >= 2 && rack_of(nodes - 1) >= 2,
                 "a cascading partition needs >= 2 campuses and >= 3 racks");
  FaultPlan plan;
  const double step = width + gap;

  // Window 1: the last campus drops off the WAN.
  std::vector<int> wan_cut(nodes, 0);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    if (campus_of(n) == campuses - 1) wan_cut[n] = 1;
  }
  plan.partition(start, start + width, std::move(wan_cut));

  // Window 2: the cut widens — every odd campus is its own island.
  std::vector<int> islands(nodes, 0);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const std::uint32_t c = campus_of(n);
    if (c % 2 == 1) islands[n] = static_cast<int>(1 + c);
  }
  plan.partition(start + step, start + step + width, std::move(islands));

  // Window 3: the failure reaches the LAN tier — rack 1 splinters from its
  // own campus (and everyone else).
  std::vector<int> rack_cut(nodes, 0);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    if (rack_of(n) == 1) rack_cut[n] = 1;
  }
  plan.partition(start + 2.0 * step, start + 2.0 * step + width,
                 std::move(rack_cut));
  return plan;
}

FaultPlan FaultPlan::planetary_storm(std::uint32_t nodes,
                                     std::uint32_t nodes_per_rack,
                                     std::uint32_t racks_per_campus,
                                     double start, double scale) {
  FTBB_CHECK(scale > 0.0);
  FTBB_CHECK_MSG(nodes >= 3 * nodes_per_rack,
                 "the storm bounces racks 1 and 2; the population must span them");
  FaultPlan plan;
  plan.merge(planetary_churn(nodes, 6, start, scale));
  plan.merge(rack_failures(1, 2, nodes_per_rack, start + scale, 0.5 * scale,
                           3.0 * scale));
  plan.merge(cascading_partition(nodes, nodes_per_rack, racks_per_campus,
                                 start + 2.0 * scale, 2.0 * scale, scale));
  plan.loss(start, start + 12.0 * scale, 0.03);
  return plan;
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  const std::size_t partition_base = partitions_.size();
  crashes_.insert(crashes_.end(), other.crashes_.begin(), other.crashes_.end());
  rejoins_.insert(rejoins_.end(), other.rejoins_.begin(), other.rejoins_.end());
  joins_.insert(joins_.end(), other.joins_.begin(), other.joins_.end());
  partitions_.insert(partitions_.end(), other.partitions_.begin(),
                     other.partitions_.end());
  loss_rules_.insert(loss_rules_.end(), other.loss_rules_.begin(),
                     other.loss_rules_.end());
  for (PendingSplit split : other.pending_splits_) {
    split.index += partition_base;
    pending_splits_.push_back(split);
  }
  churned_ = churned_ || other.churned_;
  return *this;
}

bool FaultPlan::empty() const {
  return crashes_.empty() && rejoins_.empty() && joins_.empty() &&
         partitions_.empty() && loss_rules_.empty();
}

bool FaultPlan::has(FaultKind kind) const {
  switch (kind) {
    case FaultKind::kCrash:
      return !crashes_.empty();
    case FaultKind::kRejoin:
      return !rejoins_.empty();
    case FaultKind::kPartition:
      return !partitions_.empty();
    case FaultKind::kLoss:
      return !loss_rules_.empty();
    case FaultKind::kChurn:
      return churned_ || !joins_.empty();
  }
  return false;
}

int FaultPlan::distinct_fault_kinds() const {
  int kinds = 0;
  for (int k = 0; k < kFaultKinds; ++k) {
    if (has(static_cast<FaultKind>(k))) ++kinds;
  }
  return kinds;
}

std::int64_t FaultPlan::max_node() const {
  std::int64_t top = -1;
  for (const CrashSpec& c : crashes_) top = std::max<std::int64_t>(top, c.node);
  for (const RejoinSpec& r : rejoins_) top = std::max<std::int64_t>(top, r.node);
  for (const JoinSpec& j : joins_) top = std::max<std::int64_t>(top, j.node);
  for (const PartitionSpec& p : partitions_) {
    top = std::max<std::int64_t>(
        top, static_cast<std::int64_t>(p.group_of.size()) - 1);
  }
  for (const LossRule& rule : loss_rules_) {
    top = std::max<std::int64_t>(top, rule.from);
    top = std::max<std::int64_t>(top, rule.to);
  }
  return top;
}

void FaultPlan::for_workers(std::uint32_t workers) {
  for (const PendingSplit& split : pending_splits_) {
    PartitionSpec& p = partitions_[split.index];
    if (!p.group_of.empty()) continue;  // already materialized
    p.group_of.resize(workers);
    if (split.halves) {
      for (std::uint32_t n = 0; n < workers; ++n) {
        p.group_of[n] = n < workers / 2 ? 0 : 1;
      }
    } else {
      FTBB_CHECK_MSG(split.count < workers,
                     "isolating the whole population is not a partition");
      const std::uint32_t first = split.first % workers;
      for (std::uint32_t n = 0; n < workers; ++n) {
        const std::uint32_t offset = (n + workers - first) % workers;
        p.group_of[n] = offset < split.count ? 1 : 0;
      }
    }
  }
  pending_splits_.clear();
  FTBB_CHECK_MSG(max_node() < static_cast<std::int64_t>(workers),
                 "fault plan references a node outside the population");
  for (const RejoinSpec& r : rejoins_) {
    const bool preceded =
        std::any_of(crashes_.begin(), crashes_.end(), [&r](const CrashSpec& c) {
          return c.node == r.node && c.time < r.time;
        });
    FTBB_CHECK_MSG(preceded, "rejoin without a preceding crash of the node");
  }
}

std::vector<FaultPlan::TimedFault> FaultPlan::timeline() const {
  std::vector<TimedFault> events;
  char buf[160];
  for (const CrashSpec& c : crashes_) {
    std::snprintf(buf, sizeof(buf), "node %u", c.node);
    events.push_back({c.time, FaultKind::kCrash, buf});
  }
  for (const RejoinSpec& r : rejoins_) {
    std::snprintf(buf, sizeof(buf), "node %u", r.node);
    events.push_back({r.time, FaultKind::kRejoin, buf});
  }
  for (const JoinSpec& j : joins_) {
    std::snprintf(buf, sizeof(buf), "node %u joins", j.node);
    events.push_back({j.time, FaultKind::kChurn, buf});
  }
  for (const PartitionSpec& p : partitions_) {
    if (p.group_of.empty()) {  // split_halves() awaiting for_workers()
      std::snprintf(buf, sizeof(buf), "split in halves until t=%.3f", p.t1);
    } else {
      std::snprintf(buf, sizeof(buf), "split until t=%.3f (%zu nodes)", p.t1,
                    p.group_of.size());
    }
    events.push_back({p.t0, FaultKind::kPartition, buf});
  }
  for (const LossRule& rule : loss_rules_) {
    if (rule.from == LossRule::kAnyNode && rule.to == LossRule::kAnyNode) {
      std::snprintf(buf, sizeof(buf), "%.0f%% all links until t=%.3f",
                    rule.prob * 100.0, rule.t1);
    } else {
      std::snprintf(buf, sizeof(buf), "%.0f%% on %d->%d until t=%.3f",
                    rule.prob * 100.0, rule.from, rule.to, rule.t1);
    }
    events.push_back({rule.t0, FaultKind::kLoss, buf});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TimedFault& a, const TimedFault& b) {
                     return a.time < b.time;
                   });
  return events;
}

std::string FaultPlan::describe() const {
  std::string out;
  char buf[200];
  for (const TimedFault& event : timeline()) {
    std::snprintf(buf, sizeof(buf), "t=%.3f %s: %s\n", event.time,
                  to_string(event.kind), event.detail.c_str());
    out += buf;
  }
  return out;
}

}  // namespace ftbb::sim
