// SimCluster: hosts the decentralized B&B workers in virtual time.
//
// This is the experiment harness of Section 6. Each worker runs behind a
// WorkerHost adapter that implements core::IWorkerEnv:
//
//   * charge() advances the worker's private busy clock — while busy, all
//     deliveries and timer firings queue in an inbox and are handled when
//     the busy period ends, reproducing the paper's discipline that a
//     process "checks to see whether any messages are pending" only after
//     finishing the current subproblem;
//   * gaps between busy periods are attributed to load-balancing wait or
//     idle time from the worker's wait hint, yielding Figure 3's five-way
//     time breakdown;
//   * crashes are injected at absolute times (crash-stop: the worker's
//     pool, table, and unsent reports vanish; in-flight messages to it are
//     dropped on arrival).
//
// The cluster additionally measures what the paper measures: per-category
// times, message counts and bytes, completion-table storage (total and
// redundant, Table 1), redundant expansions, and — optionally — a
// Jumpshot-style activity timeline (Figures 5 and 6).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "bnb/problem.hpp"
#include "core/code_set.hpp"
#include "core/frame.hpp"
#include "core/worker.hpp"
#include "fault/driver.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "trace/timeline.hpp"

namespace ftbb::sim {

struct CrashEvent {
  core::NodeId node = 0;
  double time = 0.0;
};

/// A crashed worker re-entering the computation (Section 4's dynamic
/// resource pool: processors "may join and leave at any time"). The revived
/// worker is a fresh incarnation — empty pool, empty completion table, no
/// incumbent — that re-enters the membership and acquires work through the
/// normal load-balancing path. Messages and timers addressed to the dead
/// incarnation are dropped (epoch-guarded), matching crash-stop semantics.
struct ReviveEvent {
  core::NodeId node = 0;
  double time = 0.0;
};

struct ClusterConfig {
  std::uint32_t workers = 4;
  core::WorkerConfig worker;
  NetConfig net;
  std::uint64_t seed = 1;
  /// Simulation dispatch threads: > 1 shards per-worker event streams across
  /// OS threads with conservative lookahead (results are bit-identical to
  /// the sequential kernel); 0 consults FTBB_SIM_THREADS, else sequential.
  std::uint32_t sim_threads = 0;
  /// With a hierarchical net.topology, derive per-channel lookahead and
  /// topology-aligned shard affinity (wider parallel windows across slow
  /// tiers). Off forces the classic single global-barrier lookahead —
  /// results are bit-identical either way; benchmarks use the toggle to
  /// measure what the refinement buys.
  bool per_channel_lookahead = true;
  /// Bounded peer view: 0 (default) exposes the full membership minus self
  /// to every worker — the historical behavior, and O(n^2) memory across n
  /// workers. > 0 exposes only the `peer_view_limit` members that follow a
  /// worker in join order (a ring neighborhood, so gossip still reaches
  /// everyone), which is what makes 10^5+ simulated workers practical.
  std::uint32_t peer_view_limit = 0;
  double time_limit = 1e9;               // virtual seconds
  std::uint64_t event_limit = 200'000'000ULL;
  std::vector<CrashEvent> crashes;
  std::vector<ReviveEvent> rejoins;
  std::vector<Partition> partitions;
  /// Fault-plan loss rules, appended after net.loss_rules by the FaultDriver
  /// (the combined order — base config first, plan second — is what the
  /// per-message survival product multiplies through).
  std::vector<LossRule> loss_rules;
  bool record_trace = false;
  double storage_sample_interval = 0.25; // virtual seconds between samples
  core::NodeId root_holder = 0;          // the one member seeded with the root
  /// Wire frame version every member speaks. Defaults to the seed-era flat
  /// encoding so the pinned golden ScenarioReport fingerprints (which cover
  /// byte counts) stay valid; experiments opt into kV1 explicitly.
  core::FrameVersion wire = core::FrameVersion::kLegacy;
  /// Join time per worker (empty: everyone joins at t=0). Models the
  /// dynamically available resource pool of Section 4: late joiners enter
  /// the membership and acquire work through the normal load-balancing
  /// path; peer sets grow as members join (crashes do NOT shrink them —
  /// failures are not detectable, Section 4). The root holder must join
  /// at time 0.
  std::vector<double> join_times;
};

/// Frame-level accounting under the configured wire version. The flat_*
/// fields price the *same traffic* in the legacy flat encoding (the frame
/// codec computes both), so one run yields a legacy-vs-v1 comparison. The
/// self-contained/delta split is meaningful only under kV1 (legacy frames
/// carry no delta chain and leave both counters at zero).
struct WireStats {
  std::uint64_t frames = 0;
  std::uint64_t frame_bytes = 0;       // bytes actually on the wire
  std::uint64_t flat_bytes = 0;        // same traffic, legacy encoding
  std::uint64_t report_frames = 0;     // kWorkReport + kTableGossip only
  std::uint64_t report_frame_bytes = 0;
  std::uint64_t report_flat_bytes = 0;
  std::uint64_t self_contained_reports = 0;  // wire sequence 0: no delta base
  std::uint64_t delta_reports = 0;           // chained to the previous batch

  void add(const WireStats& o) {
    frames += o.frames;
    frame_bytes += o.frame_bytes;
    flat_bytes += o.flat_bytes;
    report_frames += o.report_frames;
    report_frame_bytes += o.report_frame_bytes;
    report_flat_bytes += o.report_flat_bytes;
    self_contained_reports += o.self_contained_reports;
    delta_reports += o.delta_reports;
  }
};

struct ClusterResult {
  // -- outcome --
  bool all_live_halted = false;
  bool hit_time_limit = false;
  bool hit_event_limit = false;
  std::uint64_t kernel_events = 0;  // discrete events the kernel dispatched
  double makespan = 0.0;         // halt instant of the last live worker
  double first_detection = 0.0;  // earliest termination detection
  double solution = bnb::kInfinity;
  bool solution_found = false;

  // -- per worker --
  std::vector<core::WorkerStats> workers;
  /// Per-worker work ledgers, all incarnations folded (host-id order, so
  /// aggregation is canonical across executors and thread counts).
  std::vector<core::WorkLedger> worker_ledgers;
  std::vector<bool> crashed;
  /// Final incumbent of each worker (+inf if none). The correctness theorem
  /// says every live worker that detected termination holds exactly the
  /// global optimum here, not merely the best of them.
  std::vector<double> incumbents;

  // -- aggregates over live + crashed workers --
  double total_time[core::kCostKinds] = {0, 0, 0, 0, 0};
  std::uint64_t total_expanded = 0;
  std::uint64_t unique_expanded = 0;
  std::uint64_t redundant_expansions = 0;  // total - unique
  double redundant_cost = 0.0;             // virtual seconds spent re-expanding
  std::uint64_t total_completions = 0;
  std::uint64_t total_report_codes = 0;    // compression numerator

  /// Cluster-wide work-mix ledger: per-worker ledgers summed in host-id
  /// order, redundant-work fields filled from the canonical-order expansion
  /// merge. Bit-identical sequential vs sharded.
  core::WorkLedger work;

  // -- storage (Table 1) --
  std::size_t peak_table_bytes_total = 0;   // sum of all live tables at peak
  std::size_t peak_table_bytes_unique = 0;  // union-table bytes at that instant
  std::size_t final_table_bytes_total = 0;

  // -- network --
  Network::Stats net;
  WireStats wire;
  /// Per worker: report delta streams opened, i.e. incarnations that encoded
  /// at least one report/gossip batch under kV1. A worker that crashed
  /// mid-stream and revived shows 2 — its revived incarnation restarted the
  /// chain from a self-contained report instead of a dead predecessor's base.
  std::vector<std::uint32_t> report_streams_per_worker;

  trace::Timeline timeline;  // populated when record_trace

  [[nodiscard]] double time_of(core::CostKind kind) const {
    return total_time[static_cast<int>(kind)];
  }
  /// Sum of the four busy categories plus idle, across workers.
  [[nodiscard]] double time_all() const {
    double t = 0.0;
    for (const double v : total_time) t += v;
    return t;
  }
};

class SimCluster {
 public:
  /// Builds the cluster, runs it to quiescence (or a limit), and reports.
  static ClusterResult run(const bnb::IProblemModel& model, const ClusterConfig& config);

 private:
  class WorkerHost;
  friend class WorkerHost;

  /// The narrow fault-injection surface of the simulated cluster: a
  /// FaultDriver replays any compiled FaultSchedule through these
  /// capabilities, with injection deadlines living on the kernel's control
  /// event stream (virtual time).
  class FaultPlane final : public fault::IFaultBackend, public fault::IFaultClock {
   public:
    explicit FaultPlane(SimCluster* cluster) : cluster_(cluster) {}
    void crash(std::uint32_t node) override;
    void revive(std::uint32_t node) override;
    void join(std::uint32_t node) override;
    void abandon_join(std::uint32_t node) override;
    void set_partition(const Partition& partition) override;
    void set_loss_rule(const LossRule& rule) override;
    void call_at(double at, Callback fn) override;

   private:
    SimCluster* cluster_;
  };
  friend class FaultPlane;

  SimCluster(const bnb::IProblemModel& model, const ClusterConfig& config);
  ~SimCluster();

  void start();
  void join(core::NodeId id);
  void revive(core::NodeId id);
  void sample_storage();
  [[nodiscard]] bool finished() const;
  ClusterResult collect();

  const bnb::IProblemModel& model_;
  ClusterConfig config_;
  core::FrameCodec codec_;
  Kernel kernel_;
  std::unique_ptr<Network> network_;
  FaultPlane fault_plane_{this};
  std::optional<fault::FaultDriver> driver_;
  std::vector<std::unique_ptr<WorkerHost>> hosts_;
  std::vector<core::NodeId> joined_;   // members that have joined so far;
                                       // mutated only by control events
  std::vector<std::uint32_t> join_pos_;  // node id -> index in joined_
  std::uint64_t membership_version_ = 0;

  // Cross-worker accounting. Expansion bookkeeping is per-host (merged
  // order-independently in collect()); the union completion table is the one
  // genuinely shared structure — its contracted form is canonical in the
  // completion *set*, so concurrent insertion order cannot leak into the
  // sampled byte counts.
  std::mutex completions_mu_;
  core::CodeSet union_table_;  // every completion ever recorded, for the
                               // "redundant storage" measurement
  std::size_t peak_total_bytes_ = 0;
  std::size_t peak_unique_bytes_ = 0;

  std::atomic<std::uint32_t> live_halted_{0};
  std::uint32_t live_count_ = 0;
};

}  // namespace ftbb::sim
