#include "sim/cluster.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>
#include <variant>

#include "support/check.hpp"

namespace ftbb::sim {

namespace {

/// Per-host expansion bookkeeping. The model is a pure function of the code,
/// so the cost is identical on every expansion of the same code; collect()
/// merges the per-host maps and derives the redundant totals in canonical
/// code order — independent of event interleaving and thread count.
struct ExpansionRecord {
  std::uint32_t count = 0;
  double cost = 0.0;
};
using ExpansionMap =
    std::unordered_map<core::PathCode, ExpansionRecord, core::PathCodeHash>;

trace::Activity to_activity(core::CostKind kind) {
  switch (kind) {
    case core::CostKind::kBB:
      return trace::Activity::kBB;
    case core::CostKind::kContraction:
      return trace::Activity::kContraction;
    case core::CostKind::kComm:
      return trace::Activity::kComm;
    case core::CostKind::kLoadBalance:
      return trace::Activity::kLB;
    case core::CostKind::kIdle:
      return trace::Activity::kIdle;
  }
  return trace::Activity::kIdle;
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerHost: the per-worker IWorkerEnv adapter
// ---------------------------------------------------------------------------

class SimCluster::WorkerHost final : public core::IWorkerEnv {
 public:
  WorkerHost(SimCluster* cluster, core::NodeId id, std::uint64_t seed)
      : cluster_(cluster), id_(id), rng_(seed) {
    worker_.emplace(id, &cluster->model_, cluster->config_.worker, this);
  }

  core::BnbWorker& worker() { return *worker_; }
  [[nodiscard]] const core::BnbWorker& worker() const { return *worker_; }
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] double crash_time() const { return crash_time_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Current incarnation's stats plus everything crashed incarnations spent
  /// (the paper's aggregates cover crashed processors' time too).
  [[nodiscard]] core::WorkerStats merged_stats() const {
    core::WorkerStats total = prior_stats_;
    total.add(worker_->stats());
    total.halted_at = worker_->stats().halted_at;
    return total;
  }

  /// Work ledger across all incarnations (crashed lives folded first, like
  /// merged_stats; kIncarnations counts one per life).
  [[nodiscard]] core::WorkLedger merged_ledger() const {
    core::WorkLedger total = prior_ledger_;
    total.add(worker_->work_snapshot());
    return total;
  }

  /// One-shot removal from the set of workers that must halt for the run to
  /// be considered finished (crash, or a join that can never happen).
  void leave_live_set() {
    if (!counts_toward_live_) return;
    counts_toward_live_ = false;
    --cluster_->live_count_;
  }

  /// Re-entry after a revival: the fresh incarnation must halt again for
  /// the run to finish.
  void rejoin_live_set() {
    if (counts_toward_live_) return;
    counts_toward_live_ = true;
    ++cluster_->live_count_;
  }

  void start(bool with_root) {
    started_ = true;
    // Late joiners begin their local clock at the join instant; the time
    // before joining belongs to no activity category.
    busy_until_ = std::max(busy_until_, cluster_->kernel_.now());
    worker_->on_start(with_root);
  }

  [[nodiscard]] bool started() const { return started_; }

  void kill(double t) {
    if (!alive_) return;
    alive_ = false;
    crash_time_ = t;
    pending_.clear();
  }

  /// Restarts a crashed worker as a fresh incarnation: state gone, epoch
  /// bumped so the dead incarnation's in-flight messages and armed timers
  /// are dropped, local clock restarted at the revival instant.
  void revive() {
    FTBB_CHECK(!alive_);
    prior_stats_.add(worker_->stats());
    prior_ledger_.add(worker_->work_snapshot());
    ++epoch_;
    alive_ = true;
    started_ = true;
    // The new incarnation's first report must be self-contained: never delta
    // against the dead predecessor's last batch.
    delta_.reset();
    pending_.clear();
    busy_until_ = cluster_->kernel_.now();
    wait_hint_ = core::WaitHint::kIdle;
    worker_.emplace(id_, &cluster_->model_, cluster_->config_.worker, this);
    worker_->on_start(false);
  }

  /// Entry point for message arrivals from the network. `epoch` is the
  /// incarnation the sender addressed; mail for a dead incarnation is
  /// dropped even if the worker has since been revived. `bytes` is the
  /// sender-computed frame size (the receiver cannot recompute a v1 frame's
  /// size from the Message alone — delta coding made it sender-stateful).
  void accept(core::Message msg, std::size_t bytes, std::uint64_t epoch) {
    if (epoch != epoch_) return;  // addressed to a crashed incarnation
    if (!started_ || !alive_ || worker_->halted()) return;  // crash-stop / terminated
    pending_.emplace_back(Inbound{std::move(msg), bytes});
    pump();
  }

  // ---- core::IWorkerEnv ----

  [[nodiscard]] double now() const override { return busy_until_; }

  void send(core::NodeId to, core::Message msg) override {
    // Frame-size the message under the cluster's wire version; for
    // report/gossip under kV1 this advances the per-incarnation delta state
    // (idempotently per batch — the m fanout copies size identically).
    const bool is_report = msg.type == core::MsgType::kWorkReport ||
                           msg.type == core::MsgType::kTableGossip;
    const bool was_active = delta_.active;
    // One counting pass over the payload. Under kLegacy the frame IS the
    // flat encoding, so the flat size doubles as the frame size; only kV1
    // needs the second (delta-advancing) pass. Report/gossip batches fan the
    // same payload out to several peers (stamped with one report_seq per
    // batch), so the count from the first copy serves the whole fanout.
    std::size_t flat;
    if (is_report && msg.report_seq == flat_cache_seq_ &&
        epoch_ == flat_cache_epoch_) {
      flat = flat_cache_val_;
    } else {
      flat = msg.wire_size();
      if (is_report) {
        flat_cache_seq_ = msg.report_seq;
        flat_cache_epoch_ = epoch_;
        flat_cache_val_ = flat;
      }
    }
    const std::size_t bytes =
        cluster_->codec_.version() == core::FrameVersion::kLegacy
            ? flat
            : cluster_->codec_.frame_size(msg, &delta_);
    ++wire_.frames;
    wire_.frame_bytes += bytes;
    wire_.flat_bytes += flat;
    if (is_report) {
      ++wire_.report_frames;
      wire_.report_frame_bytes += bytes;
      wire_.report_flat_bytes += flat;
      if (delta_.active) {
        if (!was_active) ++report_streams_;
        if (delta_.seq == 0) {
          ++wire_.self_contained_reports;
        } else {
          ++wire_.delta_reports;
        }
      }
    }
    auto& stats = worker_->stats();
    ++stats.msgs_sent;
    stats.bytes_sent += bytes;
    charge(core::CostKind::kComm,
           cluster_->config_.worker.costs.send_fixed +
               cluster_->config_.worker.costs.send_per_byte * static_cast<double>(bytes));
    WorkerHost* dest = cluster_->hosts_[to].get();
    cluster_->network_->send(
        id_, to, bytes, busy_until_,
        [dest, dest_epoch = dest->epoch(), bytes, msg = std::move(msg)]() mutable {
          dest->accept(std::move(msg), bytes, dest_epoch);
        });
  }

  void set_timer(core::TimerKind kind, double delay, std::uint64_t gen) override {
    FTBB_CHECK(delay >= 0.0);
    // Every arm of a kind carries a strictly larger generation, so this slot
    // always holds the latest armed gen (per incarnation; older-epoch fires
    // die on the epoch check below before consulting it).
    timer_slot_[static_cast<int>(kind)] = gen;
    // Owner-tagged: the firing must run on this worker's shard even when the
    // timer is armed from the control context (join / revive).
    cluster_->kernel_.at(busy_until_ + delay, static_cast<OwnerId>(id_),
                         [this, kind, gen, epoch = epoch_]() {
      if (epoch != epoch_ || !alive_ || worker_->halted()) return;
      // Superseded arm: the worker's own gen filter would discard this fire
      // anyway (~40% of all fires in the planetary storm), so skip the
      // deque round-trip and pump. Riding through pump() is not entirely
      // free, though — a delivered no-op fire still attributes the idle gap
      // and advances the local clock — so replicate exactly that bookkeeping
      // here. (Deferring the attribution to the next delivered event is NOT
      // equivalent: a crash in between would lose the gap from the ledger.)
      if (gen != timer_slot_[static_cast<int>(kind)]) {
        const double t = cluster_->kernel_.now();
        // Worker busy past the fire time: the old path parked the fire in
        // pending_ and re-pumped at busy_until_, where the zero-width gap
        // attributed nothing. Net effect was nil; just drop it.
        if (t < busy_until_) return;
        if (!pending_.empty()) {
          // Backlog present (only reachable through same-instant races):
          // keep strict deque ordering by taking the ordinary path.
          pending_.emplace_back(TimerFire{kind, gen});
          pump();
          return;
        }
        if (busy_until_ < t) {
          attribute_gap(busy_until_, t);
          busy_until_ = t;
        }
        return;
      }
      pending_.emplace_back(TimerFire{kind, gen});
      pump();
    });
  }

  void charge(core::CostKind kind, double seconds) override {
    if (seconds <= 0.0) return;
    worker_->stats().time[static_cast<int>(kind)] += seconds;
    if (cluster_->config_.record_trace) {
      trace_.add(id_, busy_until_, busy_until_ + seconds, to_activity(kind));
    }
    busy_until_ += seconds;
  }

  support::Rng& rng() override { return rng_; }

  [[nodiscard]] const std::vector<core::NodeId>& peers() const override {
    // Peer set = members that have joined so far, minus self. Rebuilt only
    // when the membership version changes; crashed members stay listed
    // (their failure is not detectable, Section 4). With peer_view_limit
    // set, the view shrinks to the members that follow this worker in join
    // order — a ring neighborhood, so the union of all views stays
    // connected and per-worker memory stays O(limit) instead of O(n).
    if (peers_version_ != cluster_->membership_version_) {
      peers_version_ = cluster_->membership_version_;
      peers_cache_.clear();
      const std::vector<core::NodeId>& joined = cluster_->joined_;
      const std::uint32_t limit = cluster_->config_.peer_view_limit;
      if (limit > 0 && joined.size() > static_cast<std::size_t>(limit) + 1) {
        const std::size_t pos = cluster_->join_pos_[id_];
        peers_cache_.reserve(limit);
        for (std::uint32_t k = 1; k <= limit; ++k) {
          const core::NodeId id = joined[(pos + k) % joined.size()];
          if (id != id_) peers_cache_.push_back(id);
        }
      } else {
        for (const core::NodeId id : joined) {
          if (id != id_) peers_cache_.push_back(id);
        }
      }
    }
    return peers_cache_;
  }

  void set_wait_hint(core::WaitHint hint) override { wait_hint_ = hint; }

  void notify_halted() override {
    cluster_->live_halted_.fetch_add(1, std::memory_order_relaxed);
    pending_.clear();
  }

  void note_expansion(const core::PathCode& code, double cost) override {
    auto& record = expansions_[code];
    ++record.count;
    record.cost = cost;  // pure function of the code, identical every time
  }

  void note_completion(const core::PathCode& code) override {
    const std::lock_guard<std::mutex> lock(cluster_->completions_mu_);
    cluster_->union_table_.insert(code);
  }

  [[nodiscard]] const ExpansionMap& expansions() const { return expansions_; }
  [[nodiscard]] const trace::Timeline& trace() const { return trace_; }

  /// Unaccounted tail time for workers that never halted (hit a limit).
  void finalize(double end_time) {
    if (alive_ && !worker_->halted() && end_time > busy_until_) {
      attribute_gap(busy_until_, end_time);
    }
  }

  [[nodiscard]] const WireStats& wire_stats() const { return wire_; }
  [[nodiscard]] std::uint32_t report_streams() const { return report_streams_; }

 private:
  struct TimerFire {
    core::TimerKind kind;
    std::uint64_t gen;
  };
  struct Inbound {
    core::Message msg;
    std::size_t bytes;  // frame size as computed (and charged) by the sender
  };
  using Pending = std::variant<Inbound, TimerFire>;

  void attribute_gap(double from, double to) {
    const double dur = to - from;
    if (dur <= 0.0) return;
    const core::CostKind kind = (wait_hint_ == core::WaitHint::kAwaitingWork)
                                    ? core::CostKind::kLoadBalance
                                    : core::CostKind::kIdle;
    worker_->stats().time[static_cast<int>(kind)] += dur;
    if (cluster_->config_.record_trace) {
      trace_.add(id_, from, to,
                 kind == core::CostKind::kLoadBalance ? trace::Activity::kLB
                                                      : trace::Activity::kIdle);
    }
  }

  /// Drains pending events whose effective time has come. If a handler
  /// makes the worker busy, the remainder waits for a wake at busy end.
  void pump() {
    const double t = cluster_->kernel_.now();
    if (!alive_ || worker_->halted()) {
      pending_.clear();
      return;
    }
    if (t < busy_until_) {
      schedule_wake();
      return;
    }
    while (!pending_.empty()) {
      if (busy_until_ > t) {
        schedule_wake();
        return;
      }
      Pending e = std::move(pending_.front());
      pending_.pop_front();
      if (busy_until_ < t) {
        attribute_gap(busy_until_, t);
        busy_until_ = t;
      }
      if (std::holds_alternative<Inbound>(e)) {
        Inbound& in = std::get<Inbound>(e);
        auto& stats = worker_->stats();
        ++stats.msgs_received;
        stats.bytes_received += in.bytes;
        charge(core::CostKind::kComm,
               cluster_->config_.worker.costs.recv_fixed +
                   cluster_->config_.worker.costs.recv_per_byte *
                       static_cast<double>(in.bytes));
        worker_->on_message(in.msg);
      } else {
        const TimerFire& fire = std::get<TimerFire>(e);
        worker_->on_timer(fire.kind, fire.gen);
      }
      if (!alive_ || worker_->halted()) {
        pending_.clear();
        return;
      }
    }
  }

  void schedule_wake() {
    const std::uint64_t gen = ++wake_gen_;
    cluster_->kernel_.at(busy_until_, static_cast<OwnerId>(id_), [this, gen]() {
      if (gen != wake_gen_) return;  // superseded by a later busy extension
      pump();
    });
  }

  SimCluster* cluster_;
  core::NodeId id_;
  support::Rng rng_;
  std::optional<core::BnbWorker> worker_;  // re-emplaced on revival
  core::WorkerStats prior_stats_;          // spent by crashed incarnations
  core::WorkLedger prior_ledger_;          // ditto, work-mix counters
  std::uint64_t epoch_ = 0;                // incarnation counter

  bool alive_ = true;
  bool started_ = false;
  bool counts_toward_live_ = true;
  mutable std::vector<core::NodeId> peers_cache_;
  mutable std::uint64_t peers_version_ = ~0ULL;
  double crash_time_ = -1.0;
  double busy_until_ = 0.0;
  core::WaitHint wait_hint_ = core::WaitHint::kIdle;
  std::deque<Pending> pending_;
  std::uint64_t wake_gen_ = 0;
  /// Latest armed generation per timer kind (single-writer: only this
  /// worker's shard arms and fires its timers). Fires with an older gen are
  /// dropped at the kernel boundary instead of riding through pump().
  std::uint64_t timer_slot_[core::kTimerKinds] = {};
  /// Memoized flat wire size of the current report/gossip batch (keyed by
  /// the worker's per-incarnation batch stamp; the epoch guards against a
  /// revived incarnation reusing stamp values).
  std::uint64_t flat_cache_seq_ = 0;
  std::uint64_t flat_cache_epoch_ = ~0ULL;
  std::size_t flat_cache_val_ = 0;
  core::ReportDeltaState delta_;   // per-incarnation; reset on revive()
  WireStats wire_;                 // all incarnations of this worker
  std::uint32_t report_streams_ = 0;  // incarnations that opened a v1 chain
  ExpansionMap expansions_;   // every expansion this host performed
  trace::Timeline trace_;     // host-local; merged in collect()
};

// ---------------------------------------------------------------------------
// SimCluster
// ---------------------------------------------------------------------------

namespace {

/// Kernel policy for a cluster config: shard per-worker event streams when
/// asked to, with the network's latency floors as conservative lookahead
/// (global, plus per-channel when the topology is hierarchical; see
/// make_executor_config). make_executor falls back to sequential dispatch
/// when the lookahead is zero — results are identical either way.
ExecutorConfig executor_config(const ClusterConfig& config) {
  return make_executor_config(config.net, config.workers,
                              resolve_sim_threads(config.sim_threads),
                              config.per_channel_lookahead);
}

}  // namespace

SimCluster::SimCluster(const bnb::IProblemModel& model, const ClusterConfig& config)
    : model_(model),
      config_(config),
      codec_(config.wire),
      kernel_(executor_config(config)) {
  FTBB_CHECK(config_.workers >= 1);
  FTBB_CHECK(config_.root_holder < config_.workers);
  support::Rng master(config_.seed);
  network_ = std::make_unique<Network>(&kernel_, config_.net, master.split(0x6e657477),
                                       config_.workers);
  FTBB_CHECK_MSG(config_.join_times.empty() ||
                     config_.join_times.size() == config_.workers,
                 "join_times must be empty or one entry per worker");
  FTBB_CHECK_MSG(config_.join_times.empty() ||
                     config_.join_times[config_.root_holder] == 0.0,
                 "the root holder must join at time 0");
  for (core::NodeId id = 0; id < config_.workers; ++id) {
    hosts_.push_back(std::make_unique<WorkerHost>(this, id, master.split(id).next()));
  }
  join_pos_.assign(config_.workers, 0);
  live_count_ = config_.workers;

  // The cluster's fault surface is driven like any other backend's: the
  // config's fault fields become one compiled schedule and a FaultDriver
  // arms it on the kernel's control stream (see FaultPlane).
  fault::FaultSchedule schedule;
  schedule.population = config_.workers;
  for (const CrashEvent& crash : config_.crashes) {
    schedule.crashes.push_back(fault::CrashAt{crash.node, crash.time});
  }
  for (const ReviveEvent& rejoin : config_.rejoins) {
    schedule.revives.push_back(fault::ReviveAt{rejoin.node, rejoin.time});
  }
  schedule.join_times = config_.join_times;
  schedule.partitions = config_.partitions;
  schedule.loss_rules = config_.loss_rules;
  driver_.emplace(std::move(schedule), &fault_plane_, &fault_plane_);
}

SimCluster::~SimCluster() = default;

bool SimCluster::finished() const {
  return live_halted_.load(std::memory_order_relaxed) >= live_count_;
}

void SimCluster::join(core::NodeId id) {
  WorkerHost* host = hosts_[id].get();
  if (!host->alive()) return;  // crashed before joining; already uncounted
  join_pos_[id] = static_cast<std::uint32_t>(joined_.size());
  joined_.push_back(id);
  ++membership_version_;
  host->start(id == config_.root_holder);
}

void SimCluster::revive(core::NodeId id) {
  WorkerHost* host = hosts_[id].get();
  // Only a crashed, previously started worker can re-enter; a revive aimed
  // at a live worker (its crash was skipped because it had already halted)
  // is a no-op.
  if (host->alive() || !host->started()) return;
  host->revive();
  host->rejoin_live_set();
  // No membership update: the worker had started, so it joined, and crashed
  // members are never removed from joined_ (failures are not detectable,
  // Section 4) — peers still list it and their mail reaches the new
  // incarnation.
}

// ---- FaultPlane: the cluster as a fault-injectable backend ----

void SimCluster::FaultPlane::crash(std::uint32_t node) {
  // Crashing reduces the live population that must halt for the run to be
  // considered finished. A node that already crashed or already detected
  // termination absorbs the injection as a no-op.
  WorkerHost* host = cluster_->hosts_[node].get();
  if (!host->alive() || host->worker().halted()) return;
  host->kill(cluster_->kernel_.now());
  host->leave_live_set();
}

void SimCluster::FaultPlane::revive(std::uint32_t node) {
  cluster_->revive(node);
}

void SimCluster::FaultPlane::join(std::uint32_t node) { cluster_->join(node); }

void SimCluster::FaultPlane::abandon_join(std::uint32_t node) {
  cluster_->hosts_[node]->leave_live_set();
}

void SimCluster::FaultPlane::set_partition(const Partition& partition) {
  cluster_->network_->add_partition(partition);
}

void SimCluster::FaultPlane::set_loss_rule(const LossRule& rule) {
  cluster_->network_->add_loss_rule(rule);
}

void SimCluster::FaultPlane::call_at(double at, Callback fn) {
  // Control-context scheduling: under a sharded executor the injection runs
  // at an epoch barrier with every shard quiescent.
  cluster_->kernel_.at(at, std::move(fn));
}

void SimCluster::start() {
  driver_->arm(config_.time_limit);
  if (config_.storage_sample_interval > 0.0) {
    kernel_.after(config_.storage_sample_interval, [this]() { sample_storage(); });
  }
}

void SimCluster::sample_storage() {
  // Runs as a control event: every shard is quiescent at a barrier, so the
  // worker tables reflect exactly the events before the sample instant.
  std::size_t total = 0;
  for (const auto& host : hosts_) {
    if (!host->alive()) continue;
    total += host->worker().table().encoded_bytes();
  }
  if (total > peak_total_bytes_) {
    peak_total_bytes_ = total;
    const std::lock_guard<std::mutex> lock(completions_mu_);
    peak_unique_bytes_ = union_table_.encoded_bytes();
  }
  if (!finished()) {
    kernel_.after(config_.storage_sample_interval, [this]() { sample_storage(); });
  }
}

ClusterResult SimCluster::run(const bnb::IProblemModel& model,
                              const ClusterConfig& config) {
  SimCluster cluster(model, config);
  cluster.start();
  const Kernel::RunResult kr =
      cluster.kernel_.run(config.time_limit, config.event_limit);
  ClusterResult result = cluster.collect();
  result.hit_time_limit = kr.hit_time_limit;
  result.hit_event_limit = kr.hit_event_limit;
  result.kernel_events = kr.events;
  return result;
}

ClusterResult SimCluster::collect() {
  ClusterResult res;
  const double end_time = std::min(kernel_.now(), config_.time_limit);
  res.first_detection = bnb::kInfinity;
  std::uint32_t live_halted = 0;
  std::uint32_t live_total = 0;
  for (auto& host : hosts_) {
    host->finalize(end_time);
    const core::BnbWorker& w = host->worker();
    const core::WorkerStats merged = host->merged_stats();
    res.workers.push_back(merged);
    res.worker_ledgers.push_back(host->merged_ledger());
    res.work.add(res.worker_ledgers.back());
    res.crashed.push_back(!host->alive());
    res.incumbents.push_back(w.incumbent());
    if (host->alive()) {
      ++live_total;
      if (w.halted()) {
        ++live_halted;
        res.makespan = std::max(res.makespan, w.stats().halted_at);
        res.first_detection = std::min(res.first_detection, w.stats().halted_at);
        if (w.incumbent() < res.solution) {
          res.solution = w.incumbent();
          res.solution_found = true;
        }
      }
      res.final_table_bytes_total += w.table().encoded_bytes();
    }
    for (int k = 0; k < core::kCostKinds; ++k) {
      res.total_time[k] += merged.time[k];
    }
    res.total_expanded += merged.expanded;
    res.total_completions += merged.completions;
    res.total_report_codes += merged.report_codes_sent;
    res.wire.add(host->wire_stats());
    res.report_streams_per_worker.push_back(host->report_streams());
  }
  res.all_live_halted = live_total > 0 && live_halted == live_total;
  if (!res.all_live_halted) res.makespan = end_time;

  // Merge the per-host expansion maps. The totals and the redundant-cost sum
  // are computed in canonical code order, so they are bit-identical across
  // executors and thread counts (no dependence on which host's expansion of
  // a shared code happened to run first).
  ExpansionMap merged;
  std::uint64_t noted_expansions = 0;
  for (const auto& host : hosts_) {
    for (const auto& [code, record] : host->expansions()) {
      auto& m = merged[code];
      m.count += record.count;
      m.cost = record.cost;
      noted_expansions += record.count;
    }
  }
  res.unique_expanded = merged.size();
  res.redundant_expansions = noted_expansions - res.unique_expanded;
  std::vector<std::pair<const core::PathCode*, const ExpansionRecord*>> ordered;
  ordered.reserve(merged.size());
  for (const auto& [code, record] : merged) {
    if (record.count > 1) ordered.emplace_back(&code, &record);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  double redundant_cost = 0.0;
  for (const auto& [code, record] : ordered) {
    redundant_cost += static_cast<double>(record->count - 1) * record->cost;
  }
  res.redundant_cost = redundant_cost;
  res.work[core::WorkItem::kRedundantExpansions] = res.redundant_expansions;
  res.work.redundant_seconds = res.redundant_cost;

  res.peak_table_bytes_total = peak_total_bytes_;
  res.peak_table_bytes_unique = peak_unique_bytes_;
  res.net = network_->stats();
  if (config_.record_trace) {
    // Stitch the per-host charts together in worker order, then close the
    // chart with terminal states.
    for (const auto& host : hosts_) {
      for (const trace::Interval& iv : host->trace().intervals()) {
        res.timeline.add(iv.proc, iv.t0, iv.t1, iv.activity);
      }
    }
    for (core::NodeId id = 0; id < config_.workers; ++id) {
      const WorkerHost& host = *hosts_[id];
      if (!host.alive()) {
        res.timeline.add(id, host.crash_time(), end_time, trace::Activity::kDead);
      } else if (host.worker().halted()) {
        res.timeline.add(id, host.worker().stats().halted_at, end_time,
                         trace::Activity::kDone);
      }
    }
  }
  return res;
}

}  // namespace ftbb::sim
