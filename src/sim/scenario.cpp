#include "sim/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bnb/basic_tree.hpp"
#include "bnb/knapsack.hpp"
#include "bnb/maxsat.hpp"
#include "bnb/partition.hpp"
#include "bnb/shifty.hpp"
#include "bnb/tsp.hpp"
#include "bnb/vertex_cover.hpp"
#include "rt/runtime.hpp"
#include "support/check.hpp"

namespace ftbb::sim {

namespace {

// ---------------------------------------------------------------------------
// Fingerprint: FNV-1a 64 over a canonical byte stream of the report
// ---------------------------------------------------------------------------

class Fnv {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ULL;
    }
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void b(bool v) { u64(v ? 1 : 0); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

void fill_common(ScenarioReport& report, const ScenarioSpec& spec,
                 const fault::FaultSchedule& schedule, const Workload& workload) {
  report.scenario = spec.name;
  report.backend = to_string(spec.backend);
  report.workload = workload.name;
  report.workers = schedule.population;
  report.seed = spec.seed;
  for (const FaultPlan::TimedFault& event : schedule.timeline) {
    report.timeline.push_back(ScenarioEvent{event.time, event.kind, event.detail});
  }
  if (const auto opt = workload.model->known_optimal()) {
    report.optimum_known = true;
    report.optimum = *opt;
  }
}

void fill_net(ScenarioReport& report, const Network::Stats& net) {
  report.messages_sent = net.messages_sent;
  report.messages_delivered = net.messages_delivered;
  report.messages_lost = net.messages_lost;
  report.messages_partitioned = net.messages_partitioned;
  report.bytes_sent = net.bytes_sent;
  report.bytes_delivered = net.bytes_delivered;
}

void finish(ScenarioReport& report) {
  report.optimum_matched = report.completed && report.solution_found &&
                           report.optimum_known &&
                           report.solution == report.optimum;
}

ScenarioReport run_ftbb(const ScenarioSpec& spec,
                        const fault::FaultSchedule& schedule,
                        const Workload& workload) {
  ClusterConfig cfg;
  cfg.workers = schedule.population;
  cfg.worker = spec.worker;
  cfg.sim_threads = spec.sim_threads;
  cfg.net = spec.net;
  cfg.loss_rules = schedule.loss_rules;
  cfg.seed = spec.seed;
  cfg.time_limit = spec.time_limit;
  if (spec.wire.has_value()) cfg.wire = *spec.wire;
  for (const fault::CrashAt& c : schedule.crashes) {
    cfg.crashes.push_back(CrashEvent{c.node, c.time});
  }
  for (const fault::ReviveAt& r : schedule.revives) {
    cfg.rejoins.push_back(ReviveEvent{r.node, r.time});
  }
  cfg.partitions = schedule.partitions;
  cfg.join_times = schedule.join_times;

  const ClusterResult res = SimCluster::run(*workload.model, cfg);

  ScenarioReport report;
  fill_common(report, spec, schedule, workload);
  report.completed = res.all_live_halted;
  report.solution_found = res.solution_found;
  report.solution = res.solution_found ? res.solution : 0.0;
  report.makespan = res.makespan;
  report.total_expanded = res.total_expanded;
  report.unique_expanded = res.unique_expanded;
  report.redundant_expansions = res.redundant_expansions;
  report.redundant_cost = res.redundant_cost;
  report.work_mix = res.work;
  fill_net(report, res.net);
  finish(report);
  return report;
}

ScenarioReport run_central(const ScenarioSpec& spec,
                           const fault::FaultSchedule& schedule,
                           const Workload& workload) {
  // Network ids shift by one: node 0 is the manager, protocol node i is
  // worker i+1. The manager shares a partition group with protocol node 0.
  const fault::FaultSchedule shifted = schedule.remapped(1);
  central::CentralFaults faults;
  for (const fault::CrashAt& c : shifted.crashes) {
    faults.crashes.push_back(central::CentralCrash{c.node, c.time});
  }
  for (const fault::ReviveAt& r : shifted.revives) {
    faults.rejoins.push_back(central::CentralCrash{r.node, r.time});
  }
  faults.partitions = shifted.partitions;
  faults.worker_join_times = schedule.join_times;  // per protocol worker
  NetConfig net = spec.net;
  for (const LossRule& rule : shifted.loss_rules) net.loss_rules.push_back(rule);

  central::CentralConfig central_cfg = spec.central;
  central_cfg.sim_threads = spec.sim_threads;
  if (spec.wire.has_value()) central_cfg.wire = *spec.wire;
  const central::CentralResult res =
      central::CentralSim::run_with_faults(*workload.model, schedule.population,
                                           central_cfg, net, faults,
                                           spec.time_limit, spec.seed);

  ScenarioReport report;
  fill_common(report, spec, schedule, workload);
  report.completed = res.completed;
  report.solution_found = res.solution_found;
  report.solution = res.solution_found ? res.solution : 0.0;
  report.makespan = res.makespan;
  report.total_expanded = res.total_expanded;
  report.unique_expanded = res.unique_expanded;
  report.redundant_expansions = res.redundant_expansions;
  report.work_mix = res.work;
  fill_net(report, res.net);
  finish(report);
  return report;
}

ScenarioReport run_dib(const ScenarioSpec& spec,
                       const fault::FaultSchedule& schedule,
                       const Workload& workload) {
  dib::DibFaults faults;
  for (const fault::CrashAt& c : schedule.crashes) {
    faults.crashes.push_back(dib::DibCrash{c.node, c.time});
  }
  for (const fault::ReviveAt& r : schedule.revives) {
    faults.rejoins.push_back(dib::DibCrash{r.node, r.time});
  }
  faults.partitions = schedule.partitions;
  faults.join_times = schedule.join_times;
  NetConfig net = spec.net;
  for (const LossRule& rule : schedule.loss_rules) net.loss_rules.push_back(rule);

  dib::DibConfig dib_cfg = spec.dib;
  dib_cfg.sim_threads = spec.sim_threads;
  if (spec.wire.has_value()) dib_cfg.wire = *spec.wire;
  const dib::DibResult res =
      dib::DibSim::run_with_faults(*workload.model, schedule.population, dib_cfg,
                                   net, faults, spec.time_limit, spec.seed);

  ScenarioReport report;
  fill_common(report, spec, schedule, workload);
  report.completed = res.completed;
  report.solution_found = res.solution_found;
  report.solution = res.solution_found ? res.solution : 0.0;
  report.makespan = res.makespan;
  report.total_expanded = res.total_expanded;
  report.unique_expanded = res.unique_expanded;
  report.redundant_expansions = res.redundant_expansions;
  report.work_mix = res.work;
  fill_net(report, res.net);
  finish(report);
  return report;
}

ScenarioReport run_rt(const ScenarioSpec& spec,
                      const fault::FaultSchedule& schedule,
                      const Workload& workload) {
  rt::RtConfig cfg;
  cfg.workers = schedule.population;
  cfg.worker = spec.worker;
  cfg.net = spec.net;
  cfg.seed = spec.seed;
  cfg.time_scale = spec.rt_time_scale;
  cfg.wall_timeout = spec.rt_wall_timeout;
  cfg.faults = schedule;
  if (spec.wire.has_value()) cfg.wire = *spec.wire;

  const rt::RtResult res = rt::Cluster::run(*workload.model, cfg);

  ScenarioReport report;
  fill_common(report, spec, schedule, workload);
  report.completed = res.all_live_halted && !res.timed_out;
  report.solution_found = res.solution_found;
  report.solution = res.solution_found ? res.solution : 0.0;
  report.makespan = res.wall_seconds;  // wall seconds, not virtual time
  report.total_expanded = res.total_expanded;
  report.unique_expanded = res.unique_expanded;
  report.redundant_expansions = res.redundant_expansions;
  report.work_mix = res.work;
  report.messages_sent = res.net.messages_sent;
  report.messages_delivered = res.net.messages_delivered;
  report.messages_lost = res.net.messages_lost;
  report.messages_partitioned = res.net.messages_partitioned;
  report.bytes_sent = res.net.bytes_sent;
  report.bytes_delivered = res.net.bytes_delivered;
  finish(report);
  return report;
}

}  // namespace

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kFtbb:
      return "ftbb";
    case Backend::kCentral:
      return "central";
    case Backend::kDib:
      return "dib";
    case Backend::kRt:
      return "rt";
  }
  return "?";
}

const char* to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kKnapsack:
      return "knapsack";
    case WorkloadKind::kVertexCover:
      return "vertex-cover";
    case WorkloadKind::kNumberPartition:
      return "number-partition";
    case WorkloadKind::kSyntheticTree:
      return "synthetic-tree";
    case WorkloadKind::kShifty:
      return "shifty";
    case WorkloadKind::kMaxSat:
      return "max-sat";
    case WorkloadKind::kTsp:
      return "tsp";
  }
  return "?";
}

Workload build_workload(const WorkloadSpec& spec) {
  Workload w;
  w.name = to_string(spec.kind);
  bnb::NodeCostModel cost;
  cost.mean = spec.cost_mean;
  cost.cv = spec.cost_cv;
  cost.seed = spec.seed;
  switch (spec.kind) {
    case WorkloadKind::kKnapsack: {
      auto inst = bnb::KnapsackInstance::strongly_correlated(spec.size, 50, 0.5,
                                                             spec.seed);
      w.model = std::make_unique<bnb::KnapsackModel>(std::move(inst), cost);
      break;
    }
    case WorkloadKind::kVertexCover: {
      bnb::Graph g = bnb::Graph::gnp(spec.size, 0.3, spec.seed);
      w.model = std::make_unique<bnb::VertexCoverModel>(std::move(g), cost);
      break;
    }
    case WorkloadKind::kNumberPartition: {
      auto inst = bnb::PartitionInstance::random(spec.size, 40, spec.seed);
      w.model = std::make_unique<bnb::PartitionModel>(std::move(inst), cost);
      break;
    }
    case WorkloadKind::kSyntheticTree: {
      bnb::RandomTreeConfig cfg;
      cfg.target_nodes = spec.size;
      cfg.cost_mean = spec.cost_mean;
      cfg.cost_cv = spec.cost_cv;
      cfg.seed = spec.seed;
      auto tree = std::make_shared<bnb::BasicTree>(bnb::BasicTree::random(cfg));
      w.model = std::make_unique<bnb::TreeProblem>(tree.get());
      w.storage = tree;
      break;
    }
    case WorkloadKind::kShifty: {
      bnb::ShiftyOptions opts;
      opts.depth_limit = spec.size;
      opts.cost_mean = spec.cost_mean;
      w.model = std::make_unique<bnb::ShiftyProblem>(spec.seed, opts);
      break;
    }
    case WorkloadKind::kMaxSat: {
      bnb::MaxSatOptions opts;
      opts.vars = spec.size;
      opts.cost_mean = spec.cost_mean;
      w.model = std::make_unique<bnb::MaxSatProblem>(spec.seed, opts);
      break;
    }
    case WorkloadKind::kTsp: {
      bnb::TspOptions opts;
      opts.cities = spec.size;
      opts.cost_mean = spec.cost_mean;
      w.model = std::make_unique<bnb::TspProblem>(spec.seed, opts);
      break;
    }
  }
  FTBB_CHECK(w.model != nullptr);
  return w;
}

void ScenarioSpec::tune_for_small_problems() {
  worker.report_batch = 4;
  worker.report_flush_interval = 0.05;
  worker.report_fanout = 2;
  worker.table_gossip_interval = 0.2;
  worker.work_request_timeout = 0.02;
  worker.idle_backoff = 0.005;
  worker.initial_stagger = 0.002;
  worker.attempts_before_recovery = 3;

  central.batch_size = 4;
  central.reissue_timeout = 0.2;
  central.audit_interval = 0.1;

  dib.work_request_timeout = 0.02;
  dib.request_backoff = 0.01;
  dib.audit_interval = 0.1;
  dib.donation_timeout = 0.5;
}

std::uint64_t ScenarioReport::fingerprint() const {
  Fnv fnv;
  fnv.str(scenario);
  fnv.str(backend);
  fnv.str(workload);
  fnv.u64(workers);
  fnv.u64(seed);
  fnv.b(completed);
  fnv.b(solution_found);
  fnv.f64(solution);
  fnv.b(optimum_known);
  fnv.f64(optimum);
  fnv.b(optimum_matched);
  fnv.f64(makespan);
  fnv.u64(total_expanded);
  fnv.u64(unique_expanded);
  fnv.u64(redundant_expansions);
  fnv.f64(redundant_cost);
  fnv.u64(messages_sent);
  fnv.u64(messages_delivered);
  fnv.u64(messages_lost);
  fnv.u64(messages_partitioned);
  fnv.u64(bytes_sent);
  fnv.u64(bytes_delivered);
  fnv.u64(timeline.size());
  for (const ScenarioEvent& e : timeline) {
    fnv.f64(e.time);
    fnv.u64(static_cast<std::uint64_t>(e.kind));
    fnv.str(e.detail);
  }
  return fnv.value();
}

std::string ScenarioReport::to_string() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "scenario %s: %s on %s, %u workers, seed %llu\n",
                scenario.c_str(), backend.c_str(), workload.c_str(), workers,
                static_cast<unsigned long long>(seed));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  outcome: %s, solution %s (%.6g%s), makespan %.3fs\n",
                completed ? "completed" : "DID NOT COMPLETE",
                solution_found ? "found" : "none", solution,
                optimum_known ? (optimum_matched ? ", optimal" : ", SUBOPTIMAL")
                              : "",
                makespan);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  work: %llu expanded, %llu unique, %llu redone (%.3fs)\n",
                static_cast<unsigned long long>(total_expanded),
                static_cast<unsigned long long>(unique_expanded),
                static_cast<unsigned long long>(redundant_expansions),
                redundant_cost);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  net: %llu msgs sent, %llu delivered, %llu lost, %llu "
                "partitioned, %llu bytes\n",
                static_cast<unsigned long long>(messages_sent),
                static_cast<unsigned long long>(messages_delivered),
                static_cast<unsigned long long>(messages_lost),
                static_cast<unsigned long long>(messages_partitioned),
                static_cast<unsigned long long>(bytes_sent));
  out += buf;
  for (const ScenarioEvent& e : timeline) {
    std::snprintf(buf, sizeof(buf), "  t=%.3f %s: %s\n", e.time,
                  sim::to_string(e.kind), e.detail.c_str());
    out += buf;
  }
  if (work_mix.has_value()) {
    out += "  " + work_mix->to_string() + "\n";
    std::snprintf(buf, sizeof(buf), "  work-mix fingerprint: %016llx\n",
                  static_cast<unsigned long long>(work_mix->fingerprint()));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  fingerprint: %016llx\n",
                static_cast<unsigned long long>(fingerprint()));
  out += buf;
  return out;
}

ScenarioReport ScenarioRunner::run(const ScenarioSpec& spec) {
  const fault::FaultSchedule schedule =
      fault::FaultSchedule::compile(spec.faults, spec.workers);
  Workload workload = build_workload(spec.workload);
  switch (spec.backend) {
    case Backend::kCentral:
      return run_central(spec, schedule, workload);
    case Backend::kDib:
      return run_dib(spec, schedule, workload);
    case Backend::kRt:
      return run_rt(spec, schedule, workload);
    case Backend::kFtbb:
      break;
  }
  return run_ftbb(spec, schedule, workload);
}

}  // namespace ftbb::sim
