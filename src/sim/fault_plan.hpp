// Declarative fault schedules for scenario testing.
//
// A FaultPlan is a timed script of adversities — crashes, rejoins, network
// partitions with heal times, windowed (optionally per-link) message loss,
// and membership churn — expressed against protocol node ids and independent
// of any backend. ScenarioRunner translates a plan into the primitives of
// whichever harness executes it (the decentralized SimCluster, the
// centralized manager/worker baseline, or the DIB baseline), so the same
// adversarial schedule can be replayed against every algorithm.
//
// Plans are value types built fluently:
//
//   FaultPlan plan;
//   plan.crash(1, 0.2)
//       .rejoin(1, 1.5)
//       .split_halves(0.5, 1.0)
//       .loss(0.0, 2.0, 0.1)
//       .churn(4, 3, 0.3, 0.2);
//
// Determinism contract: a plan contains no randomness of its own; all
// nondeterminism stays inside the seeded simulation, so one (plan, seed)
// pair always produces the same execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network.hpp"

namespace ftbb::sim {

enum class FaultKind : std::uint8_t {
  kCrash = 0,
  kRejoin = 1,
  kPartition = 2,
  kLoss = 3,
  kChurn = 4,
};
constexpr int kFaultKinds = 5;

[[nodiscard]] const char* to_string(FaultKind kind);

class FaultPlan {
 public:
  struct CrashSpec {
    std::uint32_t node = 0;
    double time = 0.0;
  };
  struct RejoinSpec {
    std::uint32_t node = 0;
    double time = 0.0;
  };
  struct JoinSpec {  // churn arrival: a member that enters late
    std::uint32_t node = 0;
    double time = 0.0;
  };
  struct PartitionSpec {
    double t0 = 0.0;
    double t1 = 0.0;
    std::vector<int> group_of;  // group id per node
  };

  /// Crash-stop failure of `node` at `time` (state lost, silent forever
  /// unless revived by a later rejoin()).
  FaultPlan& crash(std::uint32_t node, double time);

  /// The crashed `node` re-enters at `time` as a fresh, empty incarnation.
  FaultPlan& rejoin(std::uint32_t node, double time);

  /// During [t0, t1) only nodes sharing a group id can communicate; the
  /// partition heals at t1.
  FaultPlan& partition(double t0, double t1, std::vector<int> group_of);

  /// Convenience: partitions nodes [0, workers) into two halves for
  /// [t0, t1). Requires the runner to know the population size, so the
  /// group vector is materialized by for_workers().
  FaultPlan& split_halves(double t0, double t1);

  /// Asymmetric convenience: cuts the `count` consecutive members starting
  /// at `first` (wrapping modulo the population) off from everyone else for
  /// [t0, t1). Materialized by for_workers(); isolating the whole
  /// population is rejected there.
  FaultPlan& isolate(std::uint32_t first, std::uint32_t count, double t0,
                     double t1);

  /// All links lose messages with probability `prob` during [t0, t1),
  /// on top of the base network loss rate.
  FaultPlan& loss(double t0, double t1, double prob);

  /// One directed link loses messages with probability `prob` during
  /// [t0, t1) — a flaky cable rather than a lossy fabric.
  FaultPlan& link_loss(std::uint32_t from, std::uint32_t to, double t0,
                       double t1, double prob);

  /// Membership churn: `count` extra members (ids first_node,
  /// first_node+1, ...) join one `period` apart starting at `start`.
  /// Models the paper's dynamically available resource pool.
  FaultPlan& churn(std::uint32_t first_node, std::uint32_t count, double start,
                   double period);

  /// Crash `node` at `crash_time` and bring it back at `rejoin_time`:
  /// the canonical bounce, counted as churn as well as crash+rejoin.
  FaultPlan& bounce(std::uint32_t node, double crash_time, double rejoin_time);

  // ---- named plans (the scenario corpus) ----
  //
  // Each factory builds one archetypal adversity schedule from a handful of
  // shape parameters; tests pin the resulting ScenarioReport fingerprints as
  // golden regression data, so these schedules double as the kernel's
  // cross-executor determinism corpus.

  /// A flaky cable: the directed links from<->to lose `prob` of their
  /// messages during every other `period`-wide window of [start, stop)
  /// (loss on, loss off, loss on, ...).
  static FaultPlan flaky_link(std::uint32_t from, std::uint32_t to, double start,
                              double stop, double prob, double period);

  /// A rolling restart: nodes first..first+count-1 bounce one after another,
  /// `stagger` apart, each staying down for `downtime`.
  static FaultPlan rolling_restart(std::uint32_t first, std::uint32_t count,
                                   double start, double stagger, double downtime);

  /// A flapping fabric: the population splits into halves `flaps` times;
  /// each split lasts `width` and heals for `gap` before the next one.
  static FaultPlan flapping_partition(std::uint32_t flaps, double start,
                                      double width, double gap);

  /// The paper's dynamic resource pool at its most hostile: `arrivals` extra
  /// members trickle in one `period` apart from `start`, every second
  /// arrival bounces shortly after joining, and the whole episode runs under
  /// background loss.
  static FaultPlan adversarial_churn(std::uint32_t first, std::uint32_t arrivals,
                                     double start, double period);

  /// A cascading failure storm: `waves` members (first, first+1, ...) crash
  /// in an accelerating sequence from `start` — each inter-crash gap is 0.7x
  /// the previous one, the signature of correlated infrastructure collapse —
  /// and each returns as a fresh incarnation `downtime` later. Mid-cascade
  /// the fabric splits in halves for one `gap`, and background loss covers
  /// the whole episode.
  static FaultPlan cascading_storm(std::uint32_t first, std::uint32_t waves,
                                   double start, double gap, double downtime);

  /// An asymmetric partition schedule: instead of symmetric halves, each of
  /// `episodes` windows cuts a rotating minority of `minority` consecutive
  /// members off from the majority (episode e isolates members
  /// [e*minority, e*minority + minority) mod population) for `width`,
  /// healing for `gap` before the next cut — so the root holder's side is
  /// eventually the small side too.
  static FaultPlan asymmetric_partition(std::uint32_t minority,
                                        std::uint32_t episodes, double start,
                                        double width, double gap);

  // ---- the planetary family (hierarchical-topology adversity) ----
  //
  // These schedules are authored against the implicit rack/campus
  // coordinates of sim::Topology (rack = node / nodes_per_rack, campus =
  // rack / racks_per_campus) and model the failure modes a planet-wide
  // harvested-cycles pool actually exhibits: arrival processes with heavy
  // tails, whole racks dying as units, and partitions that cascade down
  // the tier hierarchy instead of splitting the world in independent halves.

  /// Heavy-tailed membership churn: `arrivals` members (ids first,
  /// first+1, ...) join with deterministic Pareto-flavored inter-arrival
  /// gaps — most arrivals land one `base_period` apart, a few wait an order
  /// of magnitude longer — and every third arrival is a transient that
  /// bounces two base periods after joining. Unlike churn(), whose fixed
  /// period models a provisioning script, this is the signature of humans
  /// donating desktops across time zones.
  static FaultPlan planetary_churn(std::uint32_t first, std::uint32_t arrivals,
                                   double start, double base_period);

  /// Correlated rack failure: `racks` whole racks die as units — every node
  /// of rack first_rack+r crashes at the *same instant* start + stagger*r
  /// (a shared switch or power feed, not independent hosts) and the rack
  /// returns `downtime` later as fresh incarnations.
  static FaultPlan rack_failures(std::uint32_t first_rack, std::uint32_t racks,
                                 std::uint32_t nodes_per_rack, double start,
                                 double stagger, double downtime);

  /// A partition that cascades *down the tiers* over three windows, each
  /// `width` wide and `gap` apart: first the last campus drops off the WAN,
  /// then every odd campus becomes its own island, and finally the failure
  /// reaches the LAN tier — rack 1 splinters from its own campus. Requires
  /// the population to span at least two campuses and three racks.
  static FaultPlan cascading_partition(std::uint32_t nodes,
                                       std::uint32_t nodes_per_rack,
                                       std::uint32_t racks_per_campus,
                                       double start, double width, double gap);

  /// The planetary storm — the deliverable composition: heavy-tailed churn
  /// of six late arrivals, two correlated rack failures, a cascading
  /// cross-tier partition, and 3% background loss over the whole episode.
  /// `scale` stretches every internal interval (downtimes, widths, gaps),
  /// so one schedule shape serves millisecond-scale test problems and
  /// long-haul benchmark runs alike.
  static FaultPlan planetary_storm(std::uint32_t nodes,
                                   std::uint32_t nodes_per_rack,
                                   std::uint32_t racks_per_campus,
                                   double start, double scale);

  /// Appends every event of `other` to this plan. Times are absolute in
  /// both, so composition is plain union; pending split windows carry over.
  FaultPlan& merge(const FaultPlan& other);

  // ---- queries (used by ScenarioRunner and tests) ----

  [[nodiscard]] const std::vector<CrashSpec>& crashes() const { return crashes_; }
  [[nodiscard]] const std::vector<RejoinSpec>& rejoins() const { return rejoins_; }
  [[nodiscard]] const std::vector<JoinSpec>& joins() const { return joins_; }
  [[nodiscard]] const std::vector<PartitionSpec>& partitions() const {
    return partitions_;
  }
  [[nodiscard]] const std::vector<LossRule>& loss_rules() const {
    return loss_rules_;
  }

  [[nodiscard]] bool empty() const;

  /// Number of distinct fault categories this plan exercises.
  [[nodiscard]] int distinct_fault_kinds() const;

  [[nodiscard]] bool has(FaultKind kind) const;

  /// Highest node id referenced anywhere in the plan, or -1 when none.
  [[nodiscard]] std::int64_t max_node() const;

  /// Validates the plan against a population of `workers` nodes (including
  /// churn arrivals) and materializes split_halves() partitions into
  /// explicit group vectors. Aborts via FTBB_CHECK on out-of-range nodes,
  /// empty windows, or a rejoin with no preceding crash.
  void for_workers(std::uint32_t workers);

  /// One scheduled adversity, rendered for humans and reports alike.
  struct TimedFault {
    double time = 0.0;
    FaultKind kind = FaultKind::kCrash;
    std::string detail;
  };

  /// The canonical, time-ordered enumeration of every event in the plan.
  /// describe() and ScenarioReport timelines are both built from this, so
  /// a new fault kind only needs rendering in one place.
  [[nodiscard]] std::vector<TimedFault> timeline() const;

  /// Human-readable schedule, one event per line, time-ordered.
  [[nodiscard]] std::string describe() const;

 private:
  /// A partition window whose group vector awaits the population size:
  /// either a symmetric halves split or an isolate() of a rotating minority.
  struct PendingSplit {
    std::size_t index = 0;  // partitions_ slot to fill in
    bool halves = true;
    std::uint32_t first = 0;  // isolate(): first member of the minority
    std::uint32_t count = 0;  // isolate(): minority size
  };

  std::vector<CrashSpec> crashes_;
  std::vector<RejoinSpec> rejoins_;
  std::vector<JoinSpec> joins_;
  std::vector<PartitionSpec> partitions_;
  std::vector<LossRule> loss_rules_;
  std::vector<PendingSplit> pending_splits_;  // partitions to materialize
  bool churned_ = false;
};

}  // namespace ftbb::sim
