// Declarative scenario engine: one spec = workload + cluster + fault plan.
//
// ScenarioRunner is the single entry point the test suite, the benches, and
// the CLI use to drive an end-to-end run under adversity: it builds the
// requested workload (knapsack / vertex cover / number partition / synthetic
// basic tree), translates a backend-neutral FaultPlan into the primitives of
// the chosen backend (the paper's decentralized protocol, the centralized
// manager/worker baseline, or the DIB baseline), runs the simulation to
// termination, and emits a structured ScenarioReport.
//
// Reproducibility contract: everything in the spec is deterministic, so the
// same spec (including its seed) produces a bit-identical report —
// report.fingerprint() turns any fault schedule into a regression artifact.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bnb/problem.hpp"
#include "central/central.hpp"
#include "core/worker.hpp"
#include "dib/dib.hpp"
#include "sim/cluster.hpp"
#include "sim/fault_plan.hpp"
#include "sim/network.hpp"

namespace ftbb::sim {

enum class Backend : std::uint8_t {
  kFtbb = 0,     // the paper's decentralized fault-tolerant protocol
  kCentral = 1,  // centralized manager/worker baseline (Section 3)
  kDib = 2,      // Finkel & Manber's DIB baseline (Section 3)
  kRt = 3,       // the protocol on the thread-backed real-time runtime
};

[[nodiscard]] const char* to_string(Backend backend);

enum class WorkloadKind : std::uint8_t {
  kKnapsack = 0,
  kVertexCover = 1,
  kNumberPartition = 2,
  kSyntheticTree = 3,
  kShifty = 4,  // adversarial mid-solve branching-factor shift (bnb/shifty.hpp)
  kMaxSat = 5,  // weighted random 3-CNF, minimize falsified weight (bnb/maxsat.hpp)
  kTsp = 6,     // symmetric TSP, Little-style edge branching (bnb/tsp.hpp)
};

[[nodiscard]] const char* to_string(WorkloadKind kind);

/// Deterministic workload recipe; `size` is items / vertices / values /
/// tree nodes depending on the kind. Every kind with a known optimum
/// (everything except large synthetic trees — and those know theirs too)
/// lets reports verify the computed solution.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kSyntheticTree;
  std::uint32_t size = 401;
  std::uint64_t seed = 1;
  double cost_mean = 1e-3;  // virtual seconds per node expansion
  double cost_cv = 0.3;
};

/// A built workload: the model plus whatever storage must outlive it.
struct Workload {
  std::unique_ptr<bnb::IProblemModel> model;
  std::shared_ptr<void> storage;  // e.g. the BasicTree behind a TreeProblem
  std::string name;
};

/// Materializes a WorkloadSpec. Exposed for tests that want the model
/// without going through a full scenario run.
[[nodiscard]] Workload build_workload(const WorkloadSpec& spec);

struct ScenarioSpec {
  std::string name = "scenario";
  Backend backend = Backend::kFtbb;
  WorkloadSpec workload;
  std::uint32_t workers = 4;  // initial population (churn can add more)
  std::uint64_t seed = 1;
  double time_limit = 600.0;  // virtual seconds
  /// Simulation dispatch threads for whichever backend runs the scenario:
  /// > 1 shards per-node event streams across OS threads (reports stay
  /// bit-identical to the sequential kernel); 0 consults FTBB_SIM_THREADS,
  /// else sequential. Never part of the fingerprint. Ignored by kRt, which
  /// always runs one OS thread per live worker incarnation.
  std::uint32_t sim_threads = 0;
  NetConfig net;
  FaultPlan faults;

  core::WorkerConfig worker;       // kFtbb / kRt tuning
  central::CentralConfig central;  // kCentral tuning
  dib::DibConfig dib;              // kDib tuning

  /// Wire frame version override for whichever backend runs the scenario.
  /// Unset keeps each backend's default (kFtbb: kLegacy, preserving pinned
  /// golden fingerprints; kCentral/kDib/kRt: kV1).
  std::optional<core::FrameVersion> wire;

  // kRt tuning. On the real-time backend the spec's times are *wall*
  // seconds: fault times and net latencies count from run start on a
  // steady clock, and rt_wall_timeout (not time_limit) caps the run.
  // Reports from kRt are not deterministic (thread scheduling), so their
  // fingerprints are not regression artifacts — protocol outcomes (optimum,
  // termination, crash survival) are what cross-substrate tests assert.
  double rt_time_scale = 1.0;     // wall seconds per virtual B&B second
  double rt_wall_timeout = 60.0;  // hard cap; hitting it fails the run

  /// Preset worker tuning for small/fast test problems (tight timeouts
  /// matched to millisecond-scale node costs).
  void tune_for_small_problems();
};

/// One entry of the report's fault/outcome timeline.
struct ScenarioEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::kCrash;
  std::string detail;

  friend bool operator==(const ScenarioEvent&, const ScenarioEvent&) = default;
};

struct ScenarioReport {
  std::string scenario;
  std::string backend;
  std::string workload;
  std::uint32_t workers = 0;  // total population including churn arrivals
  std::uint64_t seed = 0;

  // -- outcome --
  bool completed = false;  // termination detected / computation concluded
  bool solution_found = false;
  double solution = 0.0;
  bool optimum_known = false;
  double optimum = 0.0;
  bool optimum_matched = false;
  double makespan = 0.0;

  // -- work lost / redone --
  std::uint64_t total_expanded = 0;
  std::uint64_t unique_expanded = 0;
  std::uint64_t redundant_expansions = 0;
  double redundant_cost = 0.0;  // virtual seconds of re-expansion (kFtbb)

  // -- bytes gossiped / network --
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t messages_partitioned = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;

  // -- fault schedule, time-ordered --
  std::vector<ScenarioEvent> timeline;

  /// Cluster-wide work-mix ledger (cost-model counters), filled by every
  /// backend. Deliberately EXCLUDED from fingerprint() so pinned golden
  /// fingerprints predate the cost model; the ledger carries its own
  /// fingerprint (WorkLedger::fingerprint) for its own goldens.
  std::optional<core::WorkLedger> work_mix;

  /// FNV-1a over every field above except work_mix (doubles by bit
  /// pattern): two reports are byte-equivalent iff their fingerprints
  /// match, so a single integer per (scenario, seed) is a regression
  /// artifact.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Multi-line human-readable report.
  [[nodiscard]] std::string to_string() const;
};

class ScenarioRunner {
 public:
  /// Builds the workload, translates the fault plan, runs the backend to
  /// termination (or the time limit), and reports.
  static ScenarioReport run(const ScenarioSpec& spec);
};

}  // namespace ftbb::sim
