#include "gossip/view.hpp"

namespace ftbb::gossip {

bool MembershipView::observe(MemberId id, std::uint64_t beat, double now) {
  const auto dead = dead_.find(id);
  if (dead != dead_.end()) {
    if (beat <= dead->second) return false;  // stale gossip cannot resurrect
    dead_.erase(dead);
  }
  auto [it, inserted] = entries_.try_emplace(id, Entry{beat, now});
  if (inserted) return true;
  if (beat > it->second.beat) {
    it->second.beat = beat;
    it->second.last_refresh = now;
    return true;
  }
  return false;
}

std::size_t MembershipView::merge(const std::vector<Heartbeat>& digest, double now) {
  std::size_t refreshed = 0;
  for (const Heartbeat& hb : digest) {
    if (observe(hb.id, hb.beat, now)) ++refreshed;
  }
  return refreshed;
}

std::vector<MemberId> MembershipView::prune(double now, double timeout) {
  std::vector<MemberId> dropped;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.last_refresh > timeout) {
      dropped.push_back(it->first);
      dead_[it->first] = it->second.beat;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

std::optional<std::uint64_t> MembershipView::dropped_beat(MemberId id) const {
  const auto it = dead_.find(id);
  if (it == dead_.end()) return std::nullopt;
  return it->second;
}

std::vector<MemberId> MembershipView::members() const {
  std::vector<MemberId> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(id);
  return out;
}

std::vector<Heartbeat> MembershipView::digest() const {
  std::vector<Heartbeat> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(Heartbeat{id, entry.beat});
  return out;
}

void MembershipView::encode_digest(const std::vector<Heartbeat>& digest,
                                   support::ByteWriter& w) {
  w.varint(digest.size());
  for (const Heartbeat& hb : digest) {
    w.varint(hb.id);
    w.varint(hb.beat);
  }
}

std::vector<Heartbeat> MembershipView::decode_digest(support::ByteReader& r) {
  const std::uint64_t n = r.varint();
  std::vector<Heartbeat> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Heartbeat hb;
    hb.id = static_cast<MemberId>(r.varint());
    hb.beat = r.varint();
    out.push_back(hb);
  }
  return out;
}

}  // namespace ftbb::gossip
