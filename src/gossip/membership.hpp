// The group membership protocol, simulated (paper Sections 5.2 and 7).
//
// The protocol: "when a new computer joins the group of resources, it sends
// its address to some known gossip servers. The gossip servers act as any
// other member of the group, except that at least one of them is guaranteed
// to be active at any given moment... The main task of these servers is to
// propagate information about the newly arrived members."
//
// Every member, server or not, periodically increments its own heartbeat and
// gossips its view digest to a few random members; failure is deduced from a
// heartbeat timeout. The paper lists the protocol's selling points —
// scalability in network load, tolerance to message loss and failed members,
// accuracy scaling with group size — and experiment E12 measures exactly
// those.
//
// The paper's own simulations pre-assign the resource pool ("We do not
// include yet the membership protocol"); implementing and simulating it is
// one of the paper's stated next steps, realized here.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "gossip/view.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "support/stats.hpp"

namespace ftbb::gossip {

struct MembershipConfig {
  double gossip_interval = 0.5;  // heartbeat + digest push period
  /// No heartbeat progress for this long -> presumed failed. Must cover
  /// several gossip rounds of propagation slack or live members get dropped
  /// spuriously ("chosen to keep ... the probability of false membership
  /// information under some threshold values", Section 5.2).
  double fail_timeout = 4.0;
  std::uint32_t fanout = 2;   // digests pushed per round
  std::uint32_t servers = 2;  // first `servers` members are gossip servers
};

/// Scripted lifecycle events for a simulated member.
struct MemberScript {
  MemberId id = 0;
  double join_time = 0.0;
  std::optional<double> crash_time;  // crash-stop (silent)
  std::optional<double> leave_time;  // graceful leave (announced by silence
                                     // here too: the paper treats leaving and
                                     // failing identically for the view)
};

struct MembershipMetrics {
  /// Per crashed member: the time until every live member dropped it
  /// (detection latency), aggregated.
  support::Accumulator detection_latency;
  /// Live members wrongly dropped from someone's view (then possibly
  /// resurrected by a later heartbeat).
  std::uint64_t false_positives = 0;
  /// Per join: time until every live member saw the newcomer.
  support::Accumulator join_latency;
  std::uint64_t digests_sent = 0;
  std::uint64_t digest_bytes = 0;
  /// View accuracy samples: |view ∩ live| / |live ∪ view| averaged over
  /// members at sampling instants.
  support::Accumulator accuracy;
};

/// Discrete-event simulation of the membership protocol alone (E12). The
/// member set follows the scripts; metrics quantify detection latency,
/// false positives, join propagation, accuracy, and network load.
class MembershipSim {
 public:
  struct Result {
    MembershipMetrics metrics;
    sim::Network::Stats net;
    /// Final views of live members (by id), for convergence assertions.
    std::vector<std::pair<MemberId, std::vector<MemberId>>> final_views;
    double end_time = 0.0;
  };

  static Result run(const std::vector<MemberScript>& scripts,
                    const MembershipConfig& config, const sim::NetConfig& net,
                    double duration, std::uint64_t seed);
};

}  // namespace ftbb::gossip
