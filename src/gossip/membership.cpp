#include "gossip/membership.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace ftbb::gossip {

namespace {

/// One simulated group member.
struct Member {
  MemberId id = 0;
  bool is_server = false;
  bool alive = false;   // joined and not crashed/left
  std::uint64_t beat = 0;
  MembershipView view;
  support::Rng rng{0};
};

struct Sim {
  const MembershipConfig& cfg;
  sim::Kernel kernel;
  std::unique_ptr<sim::Network> net;
  std::vector<Member> members;
  std::vector<MemberScript> scripts;
  MembershipMetrics metrics;
  double duration;

  // Detection bookkeeping: crash time per member; set of (observer, victim)
  // drops already counted.
  std::unordered_map<MemberId, double> crash_time;
  std::unordered_map<std::uint64_t, double> drop_seen;  // key: obs<<32|victim

  // Join bookkeeping: join time, and per member the set of live members
  // that have seen it.
  std::unordered_map<MemberId, double> join_time;
  std::unordered_map<MemberId, std::unordered_set<MemberId>> seen_by;
  std::unordered_set<MemberId> join_converged;

  Sim(const MembershipConfig& c, double dur) : cfg(c), duration(dur) {}

  [[nodiscard]] std::vector<MemberId> live_ids() const {
    std::vector<MemberId> out;
    for (const Member& m : members) {
      if (m.alive) out.push_back(m.id);
    }
    return out;
  }

  void note_view_refresh(Member& observer, double now) {
    // Join-latency accounting: which live members know each joined member?
    for (const MemberId known : observer.view.members()) {
      if (join_converged.count(known)) continue;
      auto it = join_time.find(known);
      if (it == join_time.end()) continue;
      seen_by[known].insert(observer.id);
      // Converged when every currently-live member has the newcomer in view.
      bool all = true;
      for (const Member& m : members) {
        if (m.alive && m.id != known && !seen_by[known].count(m.id)) {
          all = false;
          break;
        }
      }
      if (all) {
        join_converged.insert(known);
        metrics.join_latency.add(now - it->second);
      }
    }
  }

  void deliver_digest(MemberId to, std::vector<Heartbeat> digest) {
    Member& m = members[to];
    if (!m.alive) return;
    const double now = kernel.now();
    if (m.view.merge(digest, now) > 0) note_view_refresh(m, now);
  }

  void send_digest(Member& from, MemberId to) {
    std::vector<Heartbeat> digest = from.view.digest();
    support::ByteWriter w;
    MembershipView::encode_digest(digest, w);
    ++metrics.digests_sent;
    metrics.digest_bytes += w.size();
    net->send(from.id, to, w.size(), kernel.now(),
              [this, to, digest = std::move(digest)]() mutable {
                deliver_digest(to, std::move(digest));
              });
  }

  void gossip_round(MemberId id) {
    Member& m = members[id];
    if (!m.alive) return;
    const double now = kernel.now();
    // Heartbeat self, prune the silent, pick gossip targets.
    ++m.beat;
    m.view.observe(m.id, m.beat, now);
    for (const MemberId dropped : m.view.prune(now, cfg.fail_timeout)) {
      // Classify the drop: detection (victim crashed) or false positive.
      const auto crash = crash_time.find(dropped);
      if (crash != crash_time.end()) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(m.id) << 32) | dropped;
        if (!drop_seen.count(key)) {
          drop_seen[key] = now;
          metrics.detection_latency.add(now - crash->second);
        }
      } else if (members[dropped].alive) {
        ++metrics.false_positives;
      }
    }
    // Push the digest to `fanout` random known members (not self).
    std::vector<MemberId> candidates;
    for (const MemberId peer : m.view.members()) {
      if (peer != m.id) candidates.push_back(peer);
    }
    if (!candidates.empty()) {
      const std::size_t k =
          std::min<std::size_t>(cfg.fanout, candidates.size());
      for (const std::size_t pick :
           m.rng.sample_without_replacement(candidates.size(), k)) {
        send_digest(m, candidates[pick]);
      }
    }
    kernel.after(cfg.gossip_interval * m.rng.uniform(0.9, 1.1),
                 [this, id] { gossip_round(id); });
  }

  void join(MemberId id) {
    Member& m = members[id];
    m.alive = true;
    const double now = kernel.now();
    m.view.observe(m.id, ++m.beat, now);
    join_time[id] = now;
    if (!m.is_server) {
      // Announce to every gossip server; "at least one of them is
      // guaranteed to be active", so the announcement always lands.
      for (std::uint32_t s = 0; s < cfg.servers && s < members.size(); ++s) {
        if (s == id) continue;
        m.view.observe(s, 0, now);  // servers are well-known addresses
        send_digest(m, s);
      }
    }
    gossip_round(id);
  }

  void sample_accuracy() {
    const std::vector<MemberId> live = live_ids();
    if (!live.empty()) {
      for (const Member& m : members) {
        if (!m.alive) continue;
        const std::vector<MemberId> seen = m.view.members();
        std::size_t inter = 0;
        for (const MemberId s : seen) {
          inter += std::binary_search(live.begin(), live.end(), s) ? 1 : 0;
        }
        const std::size_t uni = seen.size() + live.size() - inter;
        metrics.accuracy.add(uni ? static_cast<double>(inter) / static_cast<double>(uni)
                                 : 1.0);
      }
    }
    if (kernel.now() + cfg.gossip_interval < duration) {
      kernel.after(cfg.gossip_interval, [this] { sample_accuracy(); });
    }
  }
};

}  // namespace

MembershipSim::Result MembershipSim::run(const std::vector<MemberScript>& scripts,
                                         const MembershipConfig& config,
                                         const sim::NetConfig& net_config,
                                         double duration, std::uint64_t seed) {
  FTBB_CHECK(!scripts.empty());
  Sim sim(config, duration);
  support::Rng master(seed);
  sim.net = std::make_unique<sim::Network>(&sim.kernel, net_config,
                                           master.split(0x676f7373),
                                           static_cast<std::uint32_t>(scripts.size()));
  sim.members.resize(scripts.size());
  sim.scripts = scripts;
  for (const MemberScript& script : scripts) {
    FTBB_CHECK(script.id < sim.members.size());
    Member& m = sim.members[script.id];
    m.id = script.id;
    m.is_server = script.id < config.servers;
    m.rng = master.split(script.id);
    sim.kernel.at(script.join_time, [&sim, id = script.id] { sim.join(id); });
    if (script.crash_time.has_value()) {
      sim.kernel.at(*script.crash_time, [&sim, id = script.id] {
        sim.members[id].alive = false;
        sim.crash_time[id] = sim.kernel.now();
      });
    }
    if (script.leave_time.has_value()) {
      sim.kernel.at(*script.leave_time, [&sim, id = script.id] {
        sim.members[id].alive = false;
        sim.crash_time[id] = sim.kernel.now();  // silence-based, same as crash
      });
    }
  }
  sim.kernel.after(config.gossip_interval, [&sim] { sim.sample_accuracy(); });
  sim.kernel.run(duration);

  Result result;
  result.metrics = std::move(sim.metrics);
  result.net = sim.net->stats();
  result.end_time = std::min(duration, sim.kernel.now());
  for (const Member& m : sim.members) {
    if (m.alive) result.final_views.emplace_back(m.id, m.view.members());
  }
  return result;
}

}  // namespace ftbb::gossip
