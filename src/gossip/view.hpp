// Membership views for the gossip-style membership protocol (Section 5.2).
//
// Each member maintains a view: the set of processes it believes are in the
// group, with "specific information designed to log the members' activity by
// keeping track of when it last heard of each (known) member, directly from
// it or through the gossip system". Following the gossip failure-detection
// service of van Renesse et al. (the paper's stated inspiration), activity
// is tracked with heartbeat counters: an entry is refreshed only by a larger
// heartbeat, and a member whose heartbeat has not increased within the
// failure timeout is dropped from the view.
//
// Views merge commutatively and idempotently (max heartbeat wins), which is
// what makes epidemic dissemination converge.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "support/bytes.hpp"

namespace ftbb::gossip {

using MemberId = std::uint32_t;

/// One gossip digest row: member + its latest known heartbeat.
struct Heartbeat {
  MemberId id = 0;
  std::uint64_t beat = 0;

  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

class MembershipView {
 public:
  struct Entry {
    std::uint64_t beat = 0;
    double last_refresh = 0.0;  // local time the beat last increased
  };

  /// Applies one heartbeat observation at local time `now`. Returns true if
  /// the entry was new or refreshed (larger heartbeat than known).
  ///
  /// Members dropped by prune() are remembered with their heartbeat at drop
  /// time; observations that are not strictly newer are ignored, so stale
  /// digests circulating in the group cannot resurrect a dead member
  /// (van Renesse et al.'s rule). A genuinely alive member keeps
  /// incrementing its heartbeat and recovers from a false drop on its own.
  bool observe(MemberId id, std::uint64_t beat, double now);

  /// Merges a digest (a peer's view snapshot) at local time `now`; returns
  /// the number of entries that were new or refreshed.
  std::size_t merge(const std::vector<Heartbeat>& digest, double now);

  /// Drops every entry whose heartbeat has not increased within `timeout`
  /// seconds before `now`; returns the ids dropped. The caller decides what
  /// "failed" means (a dropped member reappears if a newer heartbeat
  /// arrives later — gossip resurrects false positives automatically).
  std::vector<MemberId> prune(double now, double timeout);

  /// Forgets a member immediately (voluntary leave).
  void erase(MemberId id) { entries_.erase(id); }

  [[nodiscard]] bool contains(MemberId id) const { return entries_.count(id) != 0; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::map<MemberId, Entry>& entries() const { return entries_; }

  /// Current members, ascending id (deterministic).
  [[nodiscard]] std::vector<MemberId> members() const;

  /// Snapshot digest for gossiping.
  [[nodiscard]] std::vector<Heartbeat> digest() const;

  static void encode_digest(const std::vector<Heartbeat>& digest,
                            support::ByteWriter& w);
  static std::vector<Heartbeat> decode_digest(support::ByteReader& r);

  /// Heartbeat a dropped member was last seen with (for tests/inspection).
  [[nodiscard]] std::optional<std::uint64_t> dropped_beat(MemberId id) const;

 private:
  std::map<MemberId, Entry> entries_;
  std::map<MemberId, std::uint64_t> dead_;  // dropped members: beat at drop
};

}  // namespace ftbb::gossip
