// Centralized manager/worker B&B baseline (paper Section 3).
//
// "Many investigations of parallel B&B ... have adopted a centralized
// approach in which a single manager maintains the tree and hands out tasks
// to workers. While clearly not scalable, this approach simplifies the
// management of information... Reliability can be achieved through
// checkpointing, but this approach assumes that there exists at least one
// reliable process/machine."
//
// The manager holds the global pool and the incumbent; workers fetch task
// batches, expand them, and return the children. Worker crashes are handled
// by reissuing outstanding batches after a timeout. The manager itself is
// the single point of failure: without checkpointing its crash ends the
// computation; with checkpointing it restarts from the last snapshot after
// a delay, losing the progress since (both modes are measured in E11).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bnb/problem.hpp"
#include "core/cost_model.hpp"
#include "core/frame.hpp"
#include "sim/network.hpp"

namespace ftbb::central {

struct CentralConfig {
  std::uint32_t batch_size = 4;      // subproblems per task batch
  double reissue_timeout = 2.0;      // silence after which a batch is reissued
  double audit_interval = 0.5;
  bool enable_elimination = true;
  /// Simulation dispatch threads (> 1 shards node event streams; results
  /// stay bit-identical); 0 consults FTBB_SIM_THREADS, else sequential.
  std::uint32_t sim_threads = 0;
  // -- manager fault tolerance --
  bool checkpointing = false;
  double checkpoint_interval = 1.0;
  double restart_delay = 1.0;  // manager recovery time after a crash
  /// Wire frame version used to price manager/worker traffic (the baseline
  /// carries no report streams, so v1 only adds the frame header and the
  /// common varint-packed fields).
  core::FrameVersion wire = core::FrameVersion::kV1;
};

struct CentralCrash {
  /// Node index: 0 = the manager, 1..N = workers.
  std::uint32_t node = 0;
  double time = 0.0;
};

/// Full fault-injection schedule for a centralized run. Node indices are
/// network ids: 0 is the manager, 1..N the workers.
struct CentralFaults {
  std::vector<CentralCrash> crashes;
  /// Worker restarts: the crashed worker re-enters as a fresh process and
  /// re-fetches work. Rejoining node 0 is invalid — manager recovery is
  /// checkpoint-based (CentralConfig::checkpointing), not a blank restart.
  std::vector<CentralCrash> rejoins;
  /// Temporary partitions over network ids (messages crossing groups drop).
  std::vector<sim::Partition> partitions;
  /// Empty, or one entry per worker (index 0 = worker node 1): the time the
  /// worker starts fetching. Models late joiners / membership churn.
  std::vector<double> worker_join_times;
};

struct CentralResult {
  bool completed = false;
  bool solution_found = false;
  double solution = bnb::kInfinity;
  double makespan = 0.0;
  bool hit_time_limit = false;
  std::uint64_t total_expanded = 0;
  std::uint64_t unique_expanded = 0;
  std::uint64_t redundant_expansions = 0;
  std::uint64_t manager_messages = 0;  // the bottleneck metric
  std::uint64_t reissues = 0;
  std::uint64_t manager_restarts = 0;
  sim::Network::Stats net;
  /// Coarse work-mix ledger (expansions, redundancy, wire traffic). The
  /// baseline has no per-worker protocol counters, so the finer-grained
  /// WorkItem entries stay zero by design.
  core::WorkLedger work;
};

class CentralSim {
 public:
  /// `workers` excludes the manager (node 0).
  static CentralResult run(const bnb::IProblemModel& model, std::uint32_t workers,
                           const CentralConfig& config, const sim::NetConfig& net,
                           const std::vector<CentralCrash>& crashes,
                           double time_limit, std::uint64_t seed);

  /// Full fault-injection entry point (crashes, rejoins, partitions, late
  /// joins); windowed loss arrives through `net.loss_rules`.
  static CentralResult run_with_faults(const bnb::IProblemModel& model, std::uint32_t workers,
                                       const CentralConfig& config,
                                       const sim::NetConfig& net,
                                       const CentralFaults& faults, double time_limit,
                                       std::uint64_t seed);
};

}  // namespace ftbb::central
