#include "central/central.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>

#include "core/frame.hpp"
#include "core/messages.hpp"
#include "core/path_code.hpp"
#include "sim/kernel.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace ftbb::central {

namespace {

using core::PathCode;

// Honest wire pricing: the centralized baseline charges its traffic through
// the same frame codec as the decentralized transports by sizing the
// Message-shaped frame each exchange would be. The protocol carries no
// report streams, so all frames are stateless (nullptr delta state).
std::size_t request_bytes(const core::FrameCodec& codec) {
  core::Message m;
  m.type = core::MsgType::kWorkRequest;
  return codec.frame_size(m, nullptr);
}

std::size_t batch_bytes(const core::FrameCodec& codec,
                        const std::vector<bnb::Subproblem>& batch) {
  core::Message m;
  m.type = core::MsgType::kWorkGrant;
  m.problems = batch;  // sizing only
  return codec.frame_size(m, nullptr);
}

std::size_t conclude_bytes(const core::FrameCodec& codec) {
  core::Message m;
  m.type = core::MsgType::kRootReport;
  m.codes.push_back(PathCode::root());
  return codec.frame_size(m, nullptr);
}

struct Worker;

struct Batch {
  std::vector<bnb::Subproblem> problems;
  std::uint32_t worker = 0;
  double issued_at = 0.0;
};

struct Sim {
  const bnb::IProblemModel& model;
  CentralConfig cfg;
  sim::Kernel kernel;  // node 0 = manager, nodes 1..N = workers
  std::unique_ptr<sim::Network> net;
  std::vector<std::unique_ptr<Worker>> workers;
  double time_limit;

  // --- manager state (node 0) ---
  bool manager_alive = true;
  std::deque<bnb::Subproblem> pool;
  double incumbent = bnb::kInfinity;
  std::unordered_map<std::uint64_t, Batch> outstanding;
  std::uint64_t next_batch_id = 1;
  std::vector<std::uint32_t> waiting_workers;  // fetch requests with empty pool

  // --- checkpoint (stable storage survives the manager crash) ---
  struct Checkpoint {
    std::deque<bnb::Subproblem> pool;
    double incumbent = bnb::kInfinity;
    std::vector<Batch> outstanding;  // reissued wholesale on restart
  };
  std::optional<Checkpoint> checkpoint;

  bool concluded = false;
  double concluded_at = 0.0;
  bool failed = false;  // manager died without checkpointing

  // Expansion bookkeeping is per worker (merged at the end); these counters
  // are only ever touched in the manager's (node 0) context.
  std::uint64_t manager_messages = 0;
  std::uint64_t reissues = 0;
  std::uint64_t manager_restarts = 0;

  core::FrameCodec codec;

  Sim(const bnb::IProblemModel& m, const CentralConfig& c, double limit,
      const sim::ExecutorConfig& ex)
      : model(m), cfg(c), kernel(ex), time_limit(limit), codec(c.wire) {}

  void manager_prune() {
    if (!cfg.enable_elimination) return;
    std::erase_if(pool, [this](const bnb::Subproblem& p) {
      return p.bound >= incumbent;
    });
  }

  void try_dispatch();
  void on_fetch(std::uint32_t worker);
  void on_result(std::uint64_t batch_id, double best,
                 std::vector<bnb::Subproblem> children);
  void maybe_conclude();
  void audit();
  void take_checkpoint();
  void crash_manager();
  void restart_manager();
};

struct Worker {
  Sim* sim;
  std::uint32_t id;  // 1-based node id (0 is the manager)
  bool alive = true;
  bool busy = false;
  bool stopped = false;
  bool fetch_outstanding = false;
  double incumbent = bnb::kInfinity;
  std::uint64_t expanded = 0;
  /// Codes this worker expanded (worker-context only; merged at the end).
  std::unordered_map<PathCode, std::uint32_t, core::PathCodeHash> expansions;
  /// Incarnation counter: closures belonging to a crashed incarnation must
  /// not resume after a revive (their batch state is stale).
  std::uint64_t epoch = 0;

  Worker(Sim* s, std::uint32_t i) : sim(s), id(i) {}

  [[nodiscard]] bool running() const { return alive && !stopped; }

  /// Fresh-process restart of a crashed worker (fault-injection hook). The
  /// previous incarnation's batch, if any, stays with the manager's audit.
  void revive() {
    if (alive || stopped) return;
    ++epoch;
    alive = true;
    busy = false;
    fetch_outstanding = false;
    incumbent = bnb::kInfinity;
    // A fetch the dead incarnation parked in the manager's waiting list
    // would combine with the fresh fetch below to hand this worker two
    // concurrent batches.
    std::erase(sim->waiting_workers, id);
    fetch();
  }

  void fetch() {
    if (!running() || busy || fetch_outstanding) return;
    fetch_outstanding = true;
    sim->net->send(id, 0, request_bytes(sim->codec), sim->kernel.now(), [this] {
      ++sim->manager_messages;
      if (sim->manager_alive) sim->on_fetch(id);
    });
    // Fetches lost to a down manager are retried. Owner-tagged: the retry
    // must fire on this worker's shard even when fetch() ran as a control
    // event (a revive).
    sim->kernel.after(sim->cfg.reissue_timeout, static_cast<sim::OwnerId>(id),
                      [this, e = epoch] {
                        if (e == epoch && running() && fetch_outstanding) {
                          fetch_outstanding = false;
                          fetch();
                        }
                      });
  }

  void on_batch(std::uint64_t batch_id, std::vector<bnb::Subproblem> problems,
                double best) {
    if (!running()) return;
    // Never run two batch chains at once; a dropped batch stays in the
    // manager's outstanding ledger and is reissued by the audit.
    if (busy) return;
    fetch_outstanding = false;
    incumbent = std::min(incumbent, best);
    busy = true;
    process(batch_id, std::move(problems), {}, 0.0);
  }

  /// Expands the batch one node at a time, accumulating children; ships the
  /// result back when done.
  void process(std::uint64_t batch_id, std::vector<bnb::Subproblem> todo,
               std::vector<bnb::Subproblem> children, double /*elapsed*/) {
    if (!running()) return;
    if (todo.empty()) {
      busy = false;
      sim->net->send(id, 0, batch_bytes(sim->codec, children), sim->kernel.now(),
                     [this, batch_id, children = std::move(children)]() mutable {
                       ++sim->manager_messages;
                       if (sim->manager_alive) {
                         sim->on_result(batch_id, incumbent, std::move(children));
                       }
                     });
      fetch();
      return;
    }
    bnb::Subproblem p = std::move(todo.back());
    todo.pop_back();
    if (sim->cfg.enable_elimination && p.bound >= incumbent) {
      process(batch_id, std::move(todo), std::move(children), 0.0);
      return;
    }
    const bnb::NodeEval eval = sim->model.eval(p.code);
    ++expanded;
    ++expansions[p.code];
    sim->kernel.after(
        eval.cost, static_cast<sim::OwnerId>(id),
        [this, batch_id, todo = std::move(todo),
         children = std::move(children), p = std::move(p), eval,
         e = epoch]() mutable {
          if (e != epoch || !running()) return;
          if (eval.feasible_leaf) {
            incumbent = std::min(incumbent, eval.value);
          } else {
            for (const bnb::ChildOut& child : eval.children) {
              if (child.infeasible) continue;
              if (sim->cfg.enable_elimination && child.bound >= incumbent) continue;
              children.push_back(bnb::Subproblem{
                  p.code.child(child.var, child.bit != 0), child.bound});
            }
          }
          process(batch_id, std::move(todo), std::move(children), 0.0);
        });
  }
};

void Sim::try_dispatch() {
  while (!waiting_workers.empty() && !pool.empty()) {
    const std::uint32_t w = waiting_workers.back();
    waiting_workers.pop_back();
    std::vector<bnb::Subproblem> batch;
    for (std::uint32_t i = 0; i < cfg.batch_size && !pool.empty(); ++i) {
      batch.push_back(std::move(pool.front()));
      pool.pop_front();
    }
    const std::uint64_t batch_id = next_batch_id++;
    outstanding.emplace(batch_id, Batch{batch, w, kernel.now()});
    Worker* worker = workers[w - 1].get();
    net->send(0, w, batch_bytes(codec, batch), kernel.now(),
              [worker, batch_id, batch = std::move(batch), best = incumbent,
               e = worker->epoch] {
                // Batches addressed to a crashed incarnation are not handed
                // to its replacement; the audit will reissue them.
                if (e == worker->epoch) worker->on_batch(batch_id, batch, best);
              });
  }
}

void Sim::on_fetch(std::uint32_t worker) {
  waiting_workers.push_back(worker);
  try_dispatch();
  maybe_conclude();
}

void Sim::on_result(std::uint64_t batch_id, double best,
                    std::vector<bnb::Subproblem> children) {
  if (best < incumbent) {
    incumbent = best;
    manager_prune();
  }
  if (outstanding.erase(batch_id) == 0) {
    // Reissued batch answered twice; the duplicate's children are dropped —
    // safe because reissue re-derives them.
    return;
  }
  for (auto& child : children) {
    if (cfg.enable_elimination && child.bound >= incumbent) continue;
    pool.push_back(std::move(child));
  }
  try_dispatch();
  maybe_conclude();
}

void Sim::maybe_conclude() {
  if (concluded || !manager_alive) return;
  if (!pool.empty() || !outstanding.empty()) return;
  concluded = true;
  concluded_at = kernel.now();
  for (auto& w : workers) {
    net->send(0, w->id, conclude_bytes(codec), kernel.now(),
              [wp = w.get()] { wp->stopped = true; });
  }
}

void Sim::audit() {
  if (manager_alive && !concluded) {
    const double now = kernel.now();
    std::vector<std::uint64_t> expired;
    for (const auto& [batch_id, batch] : outstanding) {
      const Worker& w = *workers[batch.worker - 1];
      if (!w.alive || now - batch.issued_at > cfg.reissue_timeout * 4) {
        expired.push_back(batch_id);
      }
    }
    for (const std::uint64_t batch_id : expired) {
      Batch batch = outstanding.at(batch_id);
      outstanding.erase(batch_id);
      ++reissues;
      for (auto& p : batch.problems) pool.push_back(std::move(p));
    }
    if (!expired.empty()) try_dispatch();
  }
  if (!concluded && kernel.now() + cfg.audit_interval < time_limit) {
    kernel.after(cfg.audit_interval, sim::OwnerId{0}, [this] { audit(); });
  }
}

void Sim::take_checkpoint() {
  if (manager_alive && !concluded) {
    Checkpoint cp;
    cp.pool = pool;
    cp.incumbent = incumbent;
    for (const auto& [id, batch] : outstanding) cp.outstanding.push_back(batch);
    checkpoint = std::move(cp);
  }
  if (!concluded && kernel.now() + cfg.checkpoint_interval < time_limit) {
    kernel.after(cfg.checkpoint_interval, sim::OwnerId{0},
                 [this] { take_checkpoint(); });
  }
}

void Sim::crash_manager() {
  if (!manager_alive || concluded) return;
  manager_alive = false;
  if (!cfg.checkpointing) {
    failed = true;  // unrecoverable: the paper's single point of failure
    return;
  }
  // Manager state belongs to node 0's shard; the restart is a node-0 event.
  kernel.after(cfg.restart_delay, sim::OwnerId{0}, [this] { restart_manager(); });
}

void Sim::restart_manager() {
  ++manager_restarts;
  manager_alive = true;
  pool.clear();
  outstanding.clear();
  waiting_workers.clear();
  if (checkpoint.has_value()) {
    pool = checkpoint->pool;
    incumbent = checkpoint->incumbent;
    // Outstanding work at checkpoint time is simply requeued.
    for (const Batch& batch : checkpoint->outstanding) {
      for (const auto& p : batch.problems) pool.push_back(p);
    }
  } else {
    pool.push_back(bnb::Subproblem{PathCode::root(), model.root_bound()});
  }
  // Workers re-fetch on their own timeout cycle.
}

}  // namespace

CentralResult CentralSim::run(const bnb::IProblemModel& model, std::uint32_t worker_count,
                              const CentralConfig& config, const sim::NetConfig& net,
                              const std::vector<CentralCrash>& crashes,
                              double time_limit, std::uint64_t seed) {
  CentralFaults faults;
  faults.crashes = crashes;
  return run_with_faults(model, worker_count, config, net, faults, time_limit, seed);
}

CentralResult CentralSim::run_with_faults(
    const bnb::IProblemModel& model, std::uint32_t worker_count,
    const CentralConfig& config, const sim::NetConfig& net,
    const CentralFaults& faults, double time_limit, std::uint64_t seed) {
  FTBB_CHECK(worker_count >= 1);
  FTBB_CHECK_MSG(faults.worker_join_times.empty() ||
                     faults.worker_join_times.size() == worker_count,
                 "worker_join_times must be empty or one entry per worker");
  // Network node 0 is the manager; the topology's coordinates apply to the
  // shifted ids (workers start at rack coordinate of node 1).
  const sim::ExecutorConfig ex = sim::make_executor_config(
      net, worker_count + 1, sim::resolve_sim_threads(config.sim_threads));
  Sim sim(model, config, time_limit, ex);
  support::Rng master(seed);
  sim.net = std::make_unique<sim::Network>(&sim.kernel, net, master.split(0x63656e74),
                                           worker_count + 1);
  for (const ftbb::sim::Partition& p : faults.partitions) sim.net->add_partition(p);
  for (std::uint32_t i = 1; i <= worker_count; ++i) {
    sim.workers.push_back(std::make_unique<Worker>(&sim, i));
  }
  sim.pool.push_back(bnb::Subproblem{PathCode::root(), model.root_bound()});
  for (std::uint32_t i = 0; i < worker_count; ++i) {
    const double when =
        faults.worker_join_times.empty() ? 0.0 : faults.worker_join_times[i];
    if (when >= time_limit) continue;  // never joins within this run
    sim.kernel.at(when, static_cast<sim::OwnerId>(i + 1),
                  [wp = sim.workers[i].get()] { wp->fetch(); });
  }
  sim.kernel.after(config.audit_interval, sim::OwnerId{0}, [&sim] { sim.audit(); });
  if (config.checkpointing) {
    sim.kernel.after(config.checkpoint_interval, sim::OwnerId{0},
                     [&sim] { sim.take_checkpoint(); });
  }
  for (const CentralCrash& crash : faults.crashes) {
    sim.kernel.at(crash.time, [&sim, crash] {
      if (crash.node == 0) {
        sim.crash_manager();
      } else if (crash.node <= sim.workers.size()) {
        sim.workers[crash.node - 1]->alive = false;
      }
    });
  }
  for (const CentralCrash& rejoin : faults.rejoins) {
    FTBB_CHECK_MSG(rejoin.node >= 1, "the manager cannot blank-restart; use checkpointing");
    FTBB_CHECK(rejoin.node <= worker_count);
    sim.kernel.at(rejoin.time, [&sim, rejoin] {
      sim.workers[rejoin.node - 1]->revive();
    });
  }
  const auto kr = sim.kernel.run(time_limit);

  CentralResult result;
  result.completed = sim.concluded;
  result.solution = sim.incumbent;
  result.solution_found = sim.incumbent < bnb::kInfinity;
  result.makespan =
      sim.concluded ? sim.concluded_at : std::min(sim.kernel.now(), time_limit);
  result.hit_time_limit = kr.hit_time_limit;
  // Merge per-worker expansion maps; totals are interleaving-independent.
  std::unordered_map<PathCode, std::uint32_t, core::PathCodeHash> merged;
  for (const auto& w : sim.workers) {
    result.total_expanded += w->expanded;
    for (const auto& [code, count] : w->expansions) merged[code] += count;
  }
  result.unique_expanded = merged.size();
  result.redundant_expansions = result.total_expanded - result.unique_expanded;
  result.manager_messages = sim.manager_messages;
  result.reissues = sim.reissues;
  result.manager_restarts = sim.manager_restarts;
  result.net = sim.net->stats();
  // Coarse work-mix ledger from the already-deterministic aggregates.
  result.work[core::WorkItem::kExpansions] = result.total_expanded;
  result.work[core::WorkItem::kRedundantExpansions] = result.redundant_expansions;
  result.work[core::WorkItem::kMsgsSent] = result.net.messages_sent;
  result.work[core::WorkItem::kMsgsReceived] = result.net.messages_delivered;
  result.work[core::WorkItem::kWireBytesSent] = result.net.bytes_sent;
  result.work[core::WorkItem::kWireBytesReceived] = result.net.bytes_delivered;
  return result;
}

}  // namespace ftbb::central
