// E16 — dynamically available resources (paper Sections 4 and 7).
//
// The target architecture's defining property is that "the quantity of
// resources available may vary over time". The paper's simulations fix the
// pool ("the pool of resources is predetermined and varies only with
// failures"); introducing the membership dynamics is listed as future work.
// Here workers join in waves mid-run — entering through the membership and
// pulling work via the normal load-balancing path — and may also crash
// later, exercising the full join/leave/fail lifecycle end to end.
#include <cstdio>

#include "bench/workloads.hpp"

int main() {
  using namespace ftbb;
  std::printf("E16 / elastic resource pool: workers join in waves mid-run\n\n");

  bnb::RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = 8001;
  tree_cfg.cost_mean = 0.01;
  tree_cfg.seed = 71;
  const bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
  bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);

  // Reference points: the static pools an elastic run interpolates between.
  const sim::ClusterResult small_static =
      sim::SimCluster::run(problem, bench::small_cluster_config(4, 71));
  sim::ClusterConfig big_cfg = bench::small_cluster_config(16, 71);
  const sim::ClusterResult big_static = sim::SimCluster::run(problem, big_cfg);
  if (!small_static.all_live_halted || !big_static.all_live_halted) return 1;
  std::printf("static 4 workers : %.2fs\nstatic 16 workers: %.2fs\n\n",
              small_static.makespan, big_static.makespan);

  support::TextTable table({"scenario", "terminated", "solution", "makespan (s)",
                            "joiner expansions", "redundant"});
  struct Scenario {
    const char* name;
    double wave1;
    double wave2;
    bool crash_two;
  };
  for (const Scenario& scenario :
       {Scenario{"12 join at 10%/20%", 0.1, 0.2, false},
        Scenario{"12 join at 30%/60%", 0.3, 0.6, false},
        Scenario{"join waves + 2 crashes", 0.1, 0.3, true}}) {
    sim::ClusterConfig cfg = bench::small_cluster_config(16, 71);
    cfg.time_limit = 3e4;
    cfg.join_times.assign(16, 0.0);
    for (std::uint32_t id = 4; id < 10; ++id) {
      cfg.join_times[id] = small_static.makespan * scenario.wave1;
    }
    for (std::uint32_t id = 10; id < 16; ++id) {
      cfg.join_times[id] = small_static.makespan * scenario.wave2;
    }
    if (scenario.crash_two) {
      cfg.crashes = {{2, small_static.makespan * 0.5},
                     {11, small_static.makespan * 0.55}};
    }
    const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);
    std::uint64_t joiner_expanded = 0;
    for (std::uint32_t id = 4; id < 16; ++id) {
      joiner_expanded += res.workers[id].expanded;
    }
    table.row({scenario.name, res.all_live_halted ? "yes" : "NO",
               res.solution == tree.optimal_value() ? "exact" : "WRONG",
               support::TextTable::num(res.makespan, 2),
               std::to_string(joiner_expanded),
               std::to_string(res.redundant_expansions)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected shape: elastic runs land between the 4-worker and\n"
              "16-worker static makespans — the earlier capacity arrives, the\n"
              "closer to the large static pool — and correctness is unaffected\n"
              "by churn in either direction.\n");
  return 0;
}
