// E7 — granularity sweep (Section 6.3.1, closing paragraph).
//
// The paper tunes granularity "by multiplying all time values by a constant
// factor" and observes: load balance improves with coarser granularity, and
// communication increases unnecessarily when work reports are sent at fixed
// time intervals. Protocol timeouts here stay FIXED while node cost varies,
// reproducing that mismatch; the paper's conclusion — parameters must adapt
// to the observed execution time per subproblem — is exactly what this
// table shows.
#include <cstdio>
#include <vector>

#include "bench/workloads.hpp"

namespace {

/// One sweep row, kept for the JSON artifact (BENCH_granularity.json).
struct SweepSample {
  double factor = 0.0;
  double makespan = 0.0;
  double efficiency = 0.0;
  double waste = 0.0;
  double msgs_per_node = 0.0;
  std::uint64_t redundant = 0;
};

struct AdaptiveSample {
  double factor = 0.0;
  std::uint64_t fixed_timeouts = 0;
  std::uint64_t fixed_redundant = 0;
  double fixed_efficiency = -1.0;  // -1: did not halt in the time limit
  std::uint64_t adaptive_timeouts = 0;
  std::uint64_t adaptive_redundant = 0;
  double adaptive_efficiency = -1.0;
};

}  // namespace

int main() {
  using namespace ftbb;
  std::printf("E7 / granularity sweep: node cost x{0.1,0.3,1,3,10}, 8 processors\n\n");

  std::vector<SweepSample> sweep;
  std::vector<AdaptiveSample> adaptive_sweep;
  support::TextTable table({"cost factor", "mean cost (s)", "makespan (s)",
                            "efficiency", "idle+lb", "msgs/node",
                            "redundant"});
  for (const double factor : {0.1, 0.3, 1.0, 3.0, 10.0}) {
    bnb::RandomTreeConfig tree_cfg;
    tree_cfg.target_nodes = 4001;
    tree_cfg.cost_mean = 0.01;  // base granularity; scaled below
    tree_cfg.seed = 23;
    bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
    tree.scale_costs(factor);
    bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);

    // Fixed protocol parameters across the sweep (the paper's setup).
    sim::ClusterConfig cfg = bench::small_cluster_config(8, 23);
    cfg.time_limit = 3e5;
    const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);
    if (!res.all_live_halted) {
      std::printf("factor=%.1f FAILED\n", factor);
      return 1;
    }
    const double ideal = tree.total_cost() / 8.0;
    const double total = res.time_all();
    const double waste = (res.time_of(core::CostKind::kIdle) +
                          res.time_of(core::CostKind::kLoadBalance)) /
                         total;
    sweep.push_back(SweepSample{
        factor, res.makespan, ideal / res.makespan, waste,
        static_cast<double>(res.net.messages_sent) /
            static_cast<double>(res.total_expanded),
        res.redundant_expansions});
    table.row({support::TextTable::num(factor, 1),
               support::TextTable::num(0.01 * factor, 3),
               support::TextTable::num(res.makespan, 2),
               support::TextTable::pct(ideal / res.makespan, 1),
               support::TextTable::pct(waste, 1),
               support::TextTable::num(
                   static_cast<double>(res.net.messages_sent) /
                       static_cast<double>(res.total_expanded),
                   2),
               std::to_string(res.redundant_expansions)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper shape: coarser granularity -> better load balance\n"
              "(efficiency rises), but messages per unit of work grow because\n"
              "interval-driven traffic (report flushes, table gossip, polling)\n"
              "continues regardless of node cost; very coarse nodes with fixed\n"
              "timeouts can also provoke premature failure suspicion.\n\n");

  // E15 extension: the paper's proposed remedy — "a flexible scheme for
  // adapting parameters to runtime informations, such as ... execution time
  // per problem" (Section 7) — implemented as WorkerConfig::adaptive_timeouts.
  std::printf("E15 / adaptive parameters (Section 7 future work): fixed vs\n"
              "adaptive timeouts across the same granularity sweep, with eager\n"
              "failure suspicion (denies count, 1 attempt) to expose the risk\n");
  support::TextTable t2({"cost factor", "fixed: timeouts", "fixed: redundant",
                         "fixed: efficiency", "adaptive: timeouts",
                         "adaptive: redundant", "adaptive: efficiency"});
  for (const double factor : {0.1, 1.0, 10.0, 30.0}) {
    bnb::RandomTreeConfig tree_cfg;
    tree_cfg.target_nodes = 4001;
    tree_cfg.cost_mean = 0.01;
    tree_cfg.seed = 23;
    bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
    tree.scale_costs(factor);
    bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);
    const double ideal = tree.total_cost() / 8.0;

    auto run = [&](bool adaptive) {
      sim::ClusterConfig cfg = bench::small_cluster_config(8, 23);
      cfg.time_limit = 3e6;
      cfg.worker.attempts_before_recovery = 1;  // eager timeout suspicion
      cfg.worker.adaptive_timeouts = adaptive;
      return sim::SimCluster::run(problem, cfg);
    };
    const sim::ClusterResult fixed = run(false);
    const sim::ClusterResult adaptive = run(true);
    auto timeouts = [](const sim::ClusterResult& res) {
      std::uint64_t n = 0;
      for (const auto& w : res.workers) n += w.request_timeouts;
      return n;
    };
    adaptive_sweep.push_back(AdaptiveSample{
        factor, timeouts(fixed), fixed.redundant_expansions,
        fixed.all_live_halted ? ideal / fixed.makespan : -1.0,
        timeouts(adaptive), adaptive.redundant_expansions,
        adaptive.all_live_halted ? ideal / adaptive.makespan : -1.0});
    t2.row({support::TextTable::num(factor, 1),
            std::to_string(timeouts(fixed)),
            std::to_string(fixed.redundant_expansions),
            fixed.all_live_halted
                ? support::TextTable::pct(ideal / fixed.makespan, 1)
                : "-",
            std::to_string(timeouts(adaptive)),
            std::to_string(adaptive.redundant_expansions),
            adaptive.all_live_halted
                ? support::TextTable::pct(ideal / adaptive.makespan, 1)
                : "-"});
  }
  std::printf("%s", t2.render().c_str());
  std::printf("\nexpected shape: with fixed fine-grained timeouts, coarse nodes make\n"
              "busy peers look dead -> spurious recovery -> redundant work; the\n"
              "adaptive scheme scales its patience with the observed node cost and\n"
              "keeps redundancy near zero at every granularity.\n");

  FILE* json = std::fopen("BENCH_granularity.json", "w");
  if (json == nullptr) {
    std::printf("cannot write BENCH_granularity.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"granularity\",\n  \"workers\": 8,\n"
                     "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepSample& s = sweep[i];
    std::fprintf(json,
                 "    {\"cost_factor\": %.1f, \"makespan_s\": %.3f, "
                 "\"efficiency\": %.4f, \"idle_lb_share\": %.4f, "
                 "\"msgs_per_node\": %.3f, \"redundant_expansions\": %llu}%s\n",
                 s.factor, s.makespan, s.efficiency, s.waste, s.msgs_per_node,
                 static_cast<unsigned long long>(s.redundant),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"adaptive_timeouts\": [\n");
  for (std::size_t i = 0; i < adaptive_sweep.size(); ++i) {
    const AdaptiveSample& s = adaptive_sweep[i];
    std::fprintf(json,
                 "    {\"cost_factor\": %.1f, \"fixed_timeouts\": %llu, "
                 "\"fixed_redundant\": %llu, \"fixed_efficiency\": %.4f, "
                 "\"adaptive_timeouts\": %llu, \"adaptive_redundant\": %llu, "
                 "\"adaptive_efficiency\": %.4f}%s\n",
                 s.factor, static_cast<unsigned long long>(s.fixed_timeouts),
                 static_cast<unsigned long long>(s.fixed_redundant),
                 s.fixed_efficiency,
                 static_cast<unsigned long long>(s.adaptive_timeouts),
                 static_cast<unsigned long long>(s.adaptive_redundant),
                 s.adaptive_efficiency,
                 i + 1 < adaptive_sweep.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_granularity.json\n");
  return 0;
}
