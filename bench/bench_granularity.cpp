// E7 — granularity sweep (Section 6.3.1, closing paragraph).
//
// The paper tunes granularity "by multiplying all time values by a constant
// factor" and observes: load balance improves with coarser granularity, and
// communication increases unnecessarily when work reports are sent at fixed
// time intervals. Protocol timeouts here stay FIXED while node cost varies,
// reproducing that mismatch; the paper's conclusion — parameters must adapt
// to the observed execution time per subproblem — is exactly what this
// table shows.
//
// `--smoke` shrinks the sweeps for CI.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_timing.hpp"
#include "bench/workloads.hpp"

namespace {

/// One sweep row, kept for the JSON artifact (BENCH_granularity.json).
struct SweepSample {
  double factor = 0.0;
  double makespan = 0.0;
  double efficiency = 0.0;
  double waste = 0.0;
  double msgs_per_node = 0.0;
  std::uint64_t redundant = 0;
};

struct AdaptiveSample {
  double factor = 0.0;
  std::uint64_t fixed_timeouts = 0;
  std::uint64_t fixed_redundant = 0;
  double fixed_efficiency = -1.0;  // -1: did not halt in the time limit
  std::uint64_t adaptive_timeouts = 0;
  std::uint64_t adaptive_redundant = 0;
  double adaptive_efficiency = -1.0;
  std::uint64_t model_timeouts = 0;
  std::uint64_t model_redundant = 0;
  double model_efficiency = -1.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ftbb;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf("E7 / granularity sweep: node cost x{0.1,0.3,1,3,10}, 8 processors%s\n\n",
              smoke ? " (smoke)" : "");

  const std::vector<double> sweep_factors =
      smoke ? std::vector<double>{0.1, 10.0}
            : std::vector<double>{0.1, 0.3, 1.0, 3.0, 10.0};
  const std::vector<double> adaptive_factors =
      smoke ? std::vector<double>{10.0} : std::vector<double>{0.1, 1.0, 10.0, 30.0};

  std::vector<SweepSample> sweep;
  std::vector<AdaptiveSample> adaptive_sweep;
  support::TextTable table({"cost factor", "mean cost (s)", "makespan (s)",
                            "efficiency", "idle+lb", "msgs/node",
                            "redundant"});
  for (const double factor : sweep_factors) {
    bnb::RandomTreeConfig tree_cfg;
    tree_cfg.target_nodes = 4001;
    tree_cfg.cost_mean = 0.01;  // base granularity; scaled below
    tree_cfg.seed = 23;
    bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
    tree.scale_costs(factor);
    bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);

    // Fixed protocol parameters across the sweep (the paper's setup).
    sim::ClusterConfig cfg = bench::small_cluster_config(8, 23);
    cfg.time_limit = 3e5;
    const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);
    if (!res.all_live_halted) {
      std::printf("factor=%.1f FAILED\n", factor);
      return 1;
    }
    const double ideal = tree.total_cost() / 8.0;
    const double total = res.time_all();
    const double waste = (res.time_of(core::CostKind::kIdle) +
                          res.time_of(core::CostKind::kLoadBalance)) /
                         total;
    sweep.push_back(SweepSample{
        factor, res.makespan, ideal / res.makespan, waste,
        static_cast<double>(res.net.messages_sent) /
            static_cast<double>(res.total_expanded),
        res.redundant_expansions});
    table.row({support::TextTable::num(factor, 1),
               support::TextTable::num(0.01 * factor, 3),
               support::TextTable::num(res.makespan, 2),
               support::TextTable::pct(ideal / res.makespan, 1),
               support::TextTable::pct(waste, 1),
               support::TextTable::num(
                   static_cast<double>(res.net.messages_sent) /
                       static_cast<double>(res.total_expanded),
                   2),
               std::to_string(res.redundant_expansions)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper shape: coarser granularity -> better load balance\n"
              "(efficiency rises), but messages per unit of work grow because\n"
              "interval-driven traffic (report flushes, table gossip, polling)\n"
              "continues regardless of node cost; very coarse nodes with fixed\n"
              "timeouts can also provoke premature failure suspicion.\n\n");

  // E15 extension: the paper's proposed remedy — "a flexible scheme for
  // adapting parameters to runtime informations, such as ... execution time
  // per problem" (Section 7) — in its two implementations: the per-knob
  // kEwma scheme (WorkerConfig::adaptive_timeouts) and the cost-model
  // controller (WorkerConfig::model_adaptivity, core/cost_model.hpp).
  std::printf("E15 / adaptive parameters (Section 7 future work): fixed vs\n"
              "adaptive vs cost-model timeouts across the same granularity\n"
              "sweep, with eager failure suspicion (1 attempt) to expose the risk\n");
  support::TextTable t2({"cost factor", "fixed: timeouts", "fixed: eff",
                         "adaptive: timeouts", "adaptive: eff",
                         "model: timeouts", "model: eff"});
  for (const double factor : adaptive_factors) {
    bnb::RandomTreeConfig tree_cfg;
    tree_cfg.target_nodes = 4001;
    tree_cfg.cost_mean = 0.01;
    tree_cfg.seed = 23;
    bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
    tree.scale_costs(factor);
    bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);
    const double ideal = tree.total_cost() / 8.0;

    auto run = [&](bool adaptive, bool model) {
      sim::ClusterConfig cfg = bench::small_cluster_config(8, 23);
      cfg.time_limit = 3e6;
      cfg.worker.attempts_before_recovery = 1;  // eager timeout suspicion
      cfg.worker.adaptive_timeouts = adaptive;
      cfg.worker.model_adaptivity = model;
      return sim::SimCluster::run(problem, cfg);
    };
    const sim::ClusterResult fixed = run(false, false);
    const sim::ClusterResult adaptive = run(true, false);
    const sim::ClusterResult model = run(false, true);
    auto timeouts = [](const sim::ClusterResult& res) {
      std::uint64_t n = 0;
      for (const auto& w : res.workers) n += w.request_timeouts;
      return n;
    };
    auto eff = [&](const sim::ClusterResult& res) {
      return res.all_live_halted ? ideal / res.makespan : -1.0;
    };
    adaptive_sweep.push_back(AdaptiveSample{
        factor, timeouts(fixed), fixed.redundant_expansions, eff(fixed),
        timeouts(adaptive), adaptive.redundant_expansions, eff(adaptive),
        timeouts(model), model.redundant_expansions, eff(model)});
    auto pct = [&](const sim::ClusterResult& res) {
      return res.all_live_halted
                 ? support::TextTable::pct(ideal / res.makespan, 1)
                 : std::string("-");
    };
    t2.row({support::TextTable::num(factor, 1),
            std::to_string(timeouts(fixed)), pct(fixed),
            std::to_string(timeouts(adaptive)), pct(adaptive),
            std::to_string(timeouts(model)), pct(model)});
  }
  std::printf("%s", t2.render().c_str());
  std::printf("\nexpected shape: with fixed fine-grained timeouts, coarse nodes make\n"
              "busy peers look dead -> spurious recovery -> redundant work; the\n"
              "adaptive schemes scale their patience with the observed node cost.\n"
              "The cost-model controller additionally keeps message-priced knobs\n"
              "(backoff, flush) at base, recovering the efficiency the per-knob\n"
              "scheme gives up.\n");

  FILE* json = bench::open_bench_json("BENCH_granularity.json", "granularity");
  if (json == nullptr) return 1;
  std::fprintf(json, "  \"workers\": 8,\n  \"smoke\": %s,\n  \"sweep\": [\n",
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepSample& s = sweep[i];
    std::fprintf(json,
                 "    {\"cost_factor\": %.1f, \"makespan_s\": %.3f, "
                 "\"efficiency\": %.4f, \"idle_lb_share\": %.4f, "
                 "\"msgs_per_node\": %.3f, \"redundant_expansions\": %llu}%s\n",
                 s.factor, s.makespan, s.efficiency, s.waste, s.msgs_per_node,
                 static_cast<unsigned long long>(s.redundant),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"adaptive_timeouts\": [\n");
  for (std::size_t i = 0; i < adaptive_sweep.size(); ++i) {
    const AdaptiveSample& s = adaptive_sweep[i];
    std::fprintf(json,
                 "    {\"cost_factor\": %.1f, \"fixed_timeouts\": %llu, "
                 "\"fixed_redundant\": %llu, \"fixed_efficiency\": %.4f, "
                 "\"adaptive_timeouts\": %llu, \"adaptive_redundant\": %llu, "
                 "\"adaptive_efficiency\": %.4f, "
                 "\"model_timeouts\": %llu, \"model_redundant\": %llu, "
                 "\"model_efficiency\": %.4f}%s\n",
                 s.factor, static_cast<unsigned long long>(s.fixed_timeouts),
                 static_cast<unsigned long long>(s.fixed_redundant),
                 s.fixed_efficiency,
                 static_cast<unsigned long long>(s.adaptive_timeouts),
                 static_cast<unsigned long long>(s.adaptive_redundant),
                 s.adaptive_efficiency,
                 static_cast<unsigned long long>(s.model_timeouts),
                 static_cast<unsigned long long>(s.model_redundant),
                 s.model_efficiency,
                 i + 1 < adaptive_sweep.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_granularity.json\n");
  return 0;
}
