// E9 — survivability sweep (Sections 5.5 and 7).
//
// "Our simulation studies confirm that the failure of all processes but one
// still allows the problem to be correctly solved." Kill k of 8 processors
// (k = 0..7) at staggered times and verify exact termination every time;
// measure the price (makespan stretch, redundant work).
#include <cstdio>

#include "bench/workloads.hpp"

int main() {
  using namespace ftbb;
  std::printf("E9 / survivability: kill k of 8 processors, verify exactness\n\n");

  bnb::RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = 4001;
  tree_cfg.cost_mean = 0.01;
  tree_cfg.seed = 41;
  const bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
  bnb::TreeProblem problem(&tree);

  const sim::ClusterResult baseline =
      sim::SimCluster::run(problem, bench::small_cluster_config(8, 41));
  if (!baseline.all_live_halted) {
    std::printf("baseline FAILED\n");
    return 1;
  }

  support::TextTable table({"crashed", "survivors", "terminated", "solution",
                            "makespan (s)", "stretch", "redundant", "recoveries"});
  bool all_exact = true;
  for (std::uint32_t k = 0; k <= 7; ++k) {
    sim::ClusterConfig cfg = bench::small_cluster_config(8, 41);
    cfg.time_limit = 3e4;
    // Victims die at staggered fractions of the failure-free makespan.
    for (std::uint32_t v = 0; v < k; ++v) {
      cfg.crashes.push_back(
          {static_cast<core::NodeId>(v + 1),
           baseline.makespan * (0.2 + 0.6 * static_cast<double>(v) /
                                          std::max(1u, k - 1))});
    }
    const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);
    std::uint64_t recoveries = 0;
    for (const auto& w : res.workers) recoveries += w.recoveries;
    const bool exact =
        res.all_live_halted && res.solution == tree.optimal_value();
    all_exact = all_exact && exact;
    table.row({std::to_string(k), std::to_string(8 - k),
               res.all_live_halted ? "yes" : "NO", exact ? "exact" : "WRONG",
               support::TextTable::num(res.makespan, 2),
               support::TextTable::num(res.makespan / baseline.makespan, 2),
               std::to_string(res.redundant_expansions),
               std::to_string(recoveries)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nguarantee under test: the loss of up to all but one resource does\n"
              "not affect the quality of the solution; the cost is redundant work\n"
              "and a longer makespan. all runs exact: %s\n",
              all_exact ? "yes" : "NO");
  return all_exact ? 0 : 1;
}
