// Microbenchmark: indexed ActivePool vs the seed flat-heap pool.
//
// Measures the worker-facing pool operations at 1k / 10k / 100k entries and
// writes BENCH_pool.json (same flavor as BENCH_table1.json) so the pool's
// perf trajectory is tracked across PRs.
//
// The headline `prune` workload replays the worker's steady-state mix: for
// every incumbent improvement that actually eliminates a tail there are many
// covered sweeps triggered by incoming work reports, and most of those
// sweeps remove nothing — the seed pool still paid a full O(n) scan (with a
// completion-trie walk per entry) for each. Per 32 events: 29 no-match
// covered sweeps, 1 covered sweep hitting a small subtree, 1 elimination
// cutting ~1% of the pool (refilled to keep n steady), 1 elimination that
// finds nothing. `--smoke` shrinks the measurement windows for CI.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_timing.hpp"
#include "bench/legacy_pool.hpp"
#include "bnb/pool.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace ftbb;
using bench::LegacyPool;
using bench::measure;
using bnb::ActivePool;
using bnb::SelectRule;
using bnb::Subproblem;
using core::PathCode;

PathCode exact_code(support::Rng& rng, std::size_t depth,
                    std::uint32_t var_base) {
  PathCode code = PathCode::root();
  for (std::size_t d = 0; d < depth; ++d) {
    code = code.child(var_base + static_cast<std::uint32_t>(d * 3 + rng.pick(2)),
                      rng.chance(0.5));
  }
  return code;
}

PathCode random_code(support::Rng& rng, std::size_t max_depth,
                     std::uint32_t var_base) {
  return exact_code(rng, 1 + rng.pick(max_depth), var_base);
}

Subproblem random_problem(support::Rng& rng) {
  return Subproblem{random_code(rng, 12, 0), rng.uniform()};
}

template <typename Pool>
Pool build_pool(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  Pool pool(SelectRule::kBestFirst);
  for (std::size_t i = 0; i < n; ++i) pool.push(random_problem(rng));
  return pool;
}

// --------------------------------------------------------------- workloads

template <typename Pool>
double bench_push_pop(std::size_t n, double window) {
  Pool pool = build_pool<Pool>(n, 42);
  support::Rng rng(7);
  return measure(window, 2.0, [&] {
    pool.push(random_problem(rng));
    (void)pool.pop();
  });
}

/// Bulk load: push n problems into a fresh pool, then answer one query —
/// the pattern of seeding a worker (root expansion burst, big work grant).
/// The lazy nursery keeps this a flat-heap build plus one linear scan; an
/// eagerly-indexed pool would pay n tree inserts for a single answer.
template <typename Pool>
double bench_bulk_push(std::size_t n, double window) {
  support::Rng rng(23);
  Pool pool(SelectRule::kBestFirst);
  double sink = 0.0;
  const double out = measure(window, static_cast<double>(n), [&] {
    pool.clear();
    for (std::size_t i = 0; i < n; ++i) pool.push(random_problem(rng));
    sink += pool.best_bound();
  });
  if (sink < 0.0) std::printf("%f", sink);  // defeat dead-code elimination
  return out;
}

template <typename Pool>
double bench_best_bound(std::size_t n, double window) {
  Pool pool = build_pool<Pool>(n, 42);
  double sink = 0.0;
  const double out = measure(window, 1.0, [&] { sink += pool.best_bound(); });
  if (sink < 0.0) std::printf("%f", sink);  // defeat dead-code elimination
  return out;
}

/// One elimination event cutting roughly `frac` of the pool, refilled to
/// keep n steady. `prune_above` on the indexed pool, remove_if on the seed.
template <typename Pool>
std::size_t eliminate_tail(Pool& pool, double threshold);

template <>
std::size_t eliminate_tail(ActivePool& pool, double threshold) {
  return pool.prune_above(threshold).size();
}
template <>
std::size_t eliminate_tail(LegacyPool& pool, double threshold) {
  return pool
      .remove_if([threshold](const Subproblem& p) { return p.bound >= threshold; })
      .size();
}

template <typename Pool>
std::size_t sweep_covered(Pool& pool, const std::vector<PathCode>& regions);

template <>
std::size_t sweep_covered(ActivePool& pool, const std::vector<PathCode>& regions) {
  return pool.remove_covered_by(regions).size();
}
template <>
std::size_t sweep_covered(LegacyPool& pool, const std::vector<PathCode>& regions) {
  return pool
      .remove_if([&regions](const Subproblem& p) {
        for (const PathCode& r : regions) {
          if (r.contains(p.code)) return true;
        }
        return false;
      })
      .size();
}

template <typename Pool>
double bench_eliminate_hit(std::size_t n, double window) {
  Pool pool = build_pool<Pool>(n, 42);
  support::Rng rng(11);
  const std::size_t batch = n / 100;  // every call eliminates a ~1% tail
  return measure(window, 1.0, [&] {
    for (std::size_t i = 0; i < batch; ++i) {
      pool.push(Subproblem{random_code(rng, 12, 0),
                           0.99 + 0.01 * rng.uniform()});
    }
    (void)eliminate_tail(pool, 0.99);
  });
}

template <typename Pool>
double bench_covered_sweep(std::size_t n, double window) {
  Pool pool = build_pool<Pool>(n, 42);
  support::Rng rng(13);
  return measure(window, 1.0, [&] {
    // Report arrives; its covering regions miss this worker's pool —
    // the overwhelmingly common case.
    std::vector<PathCode> regions;
    for (int i = 0; i < 3; ++i) regions.push_back(random_code(rng, 6, 1000));
    (void)sweep_covered(pool, regions);
  });
}

template <typename Pool>
double bench_prune_mixed(std::size_t n, double window) {
  Pool pool = build_pool<Pool>(n, 42);
  support::Rng rng(17);
  std::uint32_t event = 0;
  return measure(window, 32.0, [&] {
    for (int i = 0; i < 32; ++i) {
      ++event;
      if (event % 32 == 0) {
        // Rare: an incumbent improvement cuts a ~1% tail; refill.
        const std::size_t cut = n / 100;
        for (std::size_t k = 0; k < cut; ++k) {
          pool.push(Subproblem{random_code(rng, 12, 0),
                               0.99 + 0.01 * rng.uniform()});
        }
        (void)eliminate_tail(pool, 0.99);
      } else if (event % 32 == 16) {
        // An improvement that eliminates nothing locally.
        (void)eliminate_tail(pool, 1.5);
      } else if (event % 32 == 8) {
        // A report that covers a small local subtree (a depth-5 region holds
        // ~n/4^5 of the random pool codes); refill what it removed.
        std::vector<PathCode> regions{exact_code(rng, 5, 0)};
        const std::size_t cut = sweep_covered(pool, regions);
        for (std::size_t k = 0; k < cut; ++k) pool.push(random_problem(rng));
      } else {
        // The common case: a report whose regions miss the pool entirely.
        std::vector<PathCode> regions;
        for (int r = 0; r < 3; ++r) regions.push_back(random_code(rng, 6, 1000));
        (void)sweep_covered(pool, regions);
      }
    }
  });
}

template <typename Pool>
double bench_extract(std::size_t n, double window) {
  Pool pool = build_pool<Pool>(n, 42);
  return measure(window, 1.0, [&] {
    std::vector<Subproblem> out = pool.extract_for_sharing(64);
    for (Subproblem& p : out) pool.push(std::move(p));
  });
}

struct OpResult {
  const char* op;
  double legacy = 0.0;
  double indexed = 0.0;
  [[nodiscard]] double speedup() const { return indexed / legacy; }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double window = smoke ? 0.03 : 0.25;
  std::printf("pool microbench: indexed ActivePool vs seed flat heap "
              "(best-first)%s\n\n", smoke ? " [smoke]" : "");

  const std::vector<std::size_t> sizes = {1000, 10000, 100000};
  struct SizeResult {
    std::size_t entries;
    std::vector<OpResult> ops;
  };
  std::vector<SizeResult> all;

  for (const std::size_t n : sizes) {
    SizeResult sr{n, {}};
    sr.ops.push_back({"push_pop", bench_push_pop<LegacyPool>(n, window),
                      bench_push_pop<ActivePool>(n, window)});
    sr.ops.push_back({"bulk_push", bench_bulk_push<LegacyPool>(n, window),
                      bench_bulk_push<ActivePool>(n, window)});
    sr.ops.push_back({"best_bound", bench_best_bound<LegacyPool>(n, window),
                      bench_best_bound<ActivePool>(n, window)});
    sr.ops.push_back({"prune", bench_prune_mixed<LegacyPool>(n, window),
                      bench_prune_mixed<ActivePool>(n, window)});
    sr.ops.push_back({"eliminate_hit", bench_eliminate_hit<LegacyPool>(n, window),
                      bench_eliminate_hit<ActivePool>(n, window)});
    sr.ops.push_back({"covered_sweep", bench_covered_sweep<LegacyPool>(n, window),
                      bench_covered_sweep<ActivePool>(n, window)});
    sr.ops.push_back({"extract", bench_extract<LegacyPool>(n, window),
                      bench_extract<ActivePool>(n, window)});
    all.push_back(std::move(sr));
  }

  for (const auto& sr : all) {
    std::printf("pool size %zu\n", sr.entries);
    support::TextTable table({"op", "seed flat heap (ops/s)",
                              "indexed (ops/s)", "speedup"});
    for (const OpResult& r : sr.ops) {
      table.row({r.op, support::TextTable::num(r.legacy, 0),
                 support::TextTable::num(r.indexed, 0),
                 support::TextTable::num(r.speedup(), 2)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  FILE* json = bench::open_bench_json("BENCH_pool.json", "pool");
  if (json == nullptr) return 1;
  std::fprintf(json, "  \"rule\": \"best-first\",\n  \"smoke\": %s,\n"
                     "  \"sizes\": [\n", smoke ? "true" : "false");
  for (std::size_t s = 0; s < all.size(); ++s) {
    std::fprintf(json, "    {\"entries\": %zu, \"ops\": [\n", all[s].entries);
    for (std::size_t o = 0; o < all[s].ops.size(); ++o) {
      const OpResult& r = all[s].ops[o];
      std::fprintf(json,
                   "      {\"op\": \"%s\", \"legacy_ops_per_sec\": %.0f, "
                   "\"indexed_ops_per_sec\": %.0f, \"speedup\": %.2f}%s\n",
                   r.op, r.legacy, r.indexed, r.speedup(),
                   o + 1 < all[s].ops.size() ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", s + 1 < all.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_pool.json\n");
  return 0;
}
