// E4 — Figure 5: execution timeline of a very small problem on three
// processors, no failures (the paper rendered this with MPE/Jumpshot; we
// render the same per-processor activity intervals as an ASCII Gantt chart
// and emit machine-readable CSV).
#include <cstdio>

#include "bnb/basic_tree.hpp"
#include "sim/cluster.hpp"

int main() {
  using namespace ftbb;
  std::printf("E4 / Figure 5: very small problem, 3 processors, no failures\n\n");

  bnb::RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = 301;
  tree_cfg.cost_mean = 0.02;
  tree_cfg.cost_cv = 0.3;
  tree_cfg.seed = 65;
  const bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
  bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);  // every node is real work

  sim::ClusterConfig cfg;
  cfg.workers = 3;
  cfg.seed = 65;
  cfg.record_trace = true;
  cfg.worker.report_batch = 4;
  cfg.worker.report_flush_interval = 0.1;
  cfg.worker.table_gossip_interval = 0.4;
  cfg.worker.work_request_timeout = 0.02;
  cfg.worker.idle_backoff = 0.01;

  const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);
  std::printf("%s\n", res.timeline.render_ascii(3, 100).c_str());
  std::printf("terminated: %s | solution %.3f (optimum %.3f) | makespan %.2fs\n",
              res.all_live_halted ? "yes" : "NO", res.solution,
              tree.optimal_value(), res.makespan);
  std::printf("every processor detected termination: P0 at %.2fs, P1 at %.2fs, "
              "P2 at %.2fs\n",
              res.workers[0].halted_at, res.workers[1].halted_at,
              res.workers[2].halted_at);
  std::printf("\ncsv timeline (first rows):\n");
  const std::string csv = res.timeline.to_csv();
  std::size_t shown = 0;
  for (std::size_t i = 0; i < csv.size() && shown < 8; ++i) {
    std::putchar(csv[i]);
    if (csv[i] == '\n') ++shown;
  }
  std::printf("...\n");
  return res.all_live_halted ? 0 : 1;
}
