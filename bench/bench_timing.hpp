// Shared self-timing harness for the hand-rolled microbenches.
#pragma once

#include <chrono>
#include <cstdint>

namespace ftbb::bench {

inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs `op` (which performs `ops_per_call` logical operations) repeatedly
/// for at least `target_seconds`, returns operations per second. Two calls
/// warm up outside the measurement window — two, because adaptive structures
/// under test (e.g. the pool's lazy nursery) may spend their first *two*
/// calls transitioning to steady state.
template <typename Fn>
double measure(double target_seconds, double ops_per_call, Fn&& op) {
  op();
  op();
  std::uint64_t calls = 0;
  const double start = now_seconds();
  double elapsed = 0.0;
  do {
    op();
    ++calls;
    elapsed = now_seconds() - start;
  } while (elapsed < target_seconds);
  return static_cast<double>(calls) * ops_per_call / elapsed;
}

}  // namespace ftbb::bench
