// Shared self-timing harness and JSON-artifact preamble for the benches.
//
// Every bench emits a BENCH_<name>.json tracked across PRs; comparing those
// artifacts is only meaningful when the machine and the build that produced
// them are recorded. open_bench_json() is the single place that knowledge
// lives: it opens the artifact and writes the common preamble (bench name,
// hardware concurrency, build flags, git revision), and the caller appends
// its bench-specific fields before closing the object.
#pragma once

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

namespace ftbb::bench {

inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs `op` (which performs `ops_per_call` logical operations) repeatedly
/// for at least `target_seconds`, returns operations per second. Two calls
/// warm up outside the measurement window — two, because adaptive structures
/// under test (e.g. the pool's lazy nursery) may spend their first *two*
/// calls transitioning to steady state.
///
/// Clock reads are amortized over a geometrically growing batch of calls
/// (re-doubled until one batch spans ~1% of the window), so nanosecond-scale
/// ops — a packed-code child() is ~10ns — are not measured clock-to-clock,
/// where the ~25ns steady_clock read would dominate the number.
template <typename Fn>
double measure(double target_seconds, double ops_per_call, Fn&& op) {
  op();
  op();
  std::uint64_t calls = 0;
  std::uint64_t batch = 1;
  const double start = now_seconds();
  double elapsed = 0.0;
  do {
    for (std::uint64_t i = 0; i < batch; ++i) op();
    calls += batch;
    elapsed = now_seconds() - start;
    if (elapsed < target_seconds / 100.0) batch *= 2;
  } while (elapsed < target_seconds);
  return static_cast<double>(calls) * ops_per_call / elapsed;
}

/// Forces the object behind `p` to be materialized in memory each time: an
/// opaque asm statement the optimizer must assume inspects and mutates it.
/// Self-timed benches use this where a sink variable is not enough — e.g. a
/// derived PathCode whose buffer copy would otherwise be dead-store
/// eliminated once the op is inlined into the measurement loop.
inline void keep(void* p) { asm volatile("" : "+r"(p) : : "memory"); }

/// Compiler + optimization mode the binary was built with.
inline std::string build_flags() {
#ifdef NDEBUG
  std::string s = "release";
#else
  std::string s = "debug";
#endif
#ifdef __OPTIMIZE__
  s += "+optimize";
#endif
#ifdef __VERSION__
  s += " ";
  s += __VERSION__;
#endif
  return s;
}

/// `git describe --always --dirty` of the working tree, sanitized to the
/// JSON-safe characters a revision can contain; "unknown" when git (or the
/// repository) is unavailable, e.g. when a release tarball is benchmarked.
inline std::string git_describe() {
  std::string out;
  if (FILE* p = ::popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) out = buf;
    ::pclose(p);
  }
  std::string clean;
  for (const char c : out) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' ||
        c == '-' || c == '_' || c == '+' || c == '/') {
      clean += c;
    }
  }
  return clean.empty() ? "unknown" : clean;
}

/// Opens `path` and writes the shared preamble: `{"bench": ...}` plus the
/// machine/build provenance fields. The object is left OPEN — the caller
/// appends its own fields and writes the closing brace. Returns nullptr
/// (after printing a diagnostic) when the file cannot be created.
inline FILE* open_bench_json(const char* path, const char* bench_name) {
  FILE* json = std::fopen(path, "w");
  if (json == nullptr) {
    std::printf("cannot write %s\n", path);
    return nullptr;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"%s\",\n  \"hardware_concurrency\": %u,\n"
               "  \"build\": \"%s\",\n  \"git\": \"%s\",\n",
               bench_name, std::thread::hardware_concurrency(),
               build_flags().c_str(), git_describe().c_str());
  return json;
}

}  // namespace ftbb::bench
