// E16 — scenario sweep: the fault-tolerance overhead of each backend under
// a ladder of increasingly hostile fault schedules, on one fixed workload.
//
// For every (backend, schedule) cell the table reports completion, solution
// quality, makespan stretch over the backend's own failure-free run,
// redundant (redone) work, and bytes on the wire. This is the scenario
// engine exercising what the paper argues qualitatively in Section 3: the
// decentralized mechanism pays a modest redundancy cost where the
// centralized baseline pays in manager traffic and DIB pays in wholesale
// redo of donated subtrees.
// `--threads=N` (or FTBB_SIM_THREADS) shards the simulation kernel; every
// reported number is bit-identical to the sequential run.
#include <cstdio>
#include <string>
#include <vector>

#include "sim/scenario.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ftbb;

  const std::uint32_t threads = sim::parse_threads_flag(argc, argv);

  struct Schedule {
    const char* name;
    sim::FaultPlan plan;
  };
  std::vector<Schedule> schedules;
  schedules.push_back({"none", {}});
  {
    sim::FaultPlan p;
    p.crash(2, 0.02);
    schedules.push_back({"one crash", p});
  }
  {
    sim::FaultPlan p;
    p.loss(0.0, 1e9, 0.1);
    schedules.push_back({"10% loss", p});
  }
  {
    sim::FaultPlan p;
    p.split_halves(0.02, 0.2);
    schedules.push_back({"partition 0.2s", p});
  }
  {
    sim::FaultPlan p;
    p.crash(1, 0.015).crash(2, 0.03).loss(0.0, 1e9, 0.1).split_halves(0.05, 0.2);
    schedules.push_back({"combined", p});
  }

  std::printf("E16 / scenario sweep: fault ladder x backend, knapsack n=14\n\n");
  bool ok = true;
  for (const sim::Backend backend :
       {sim::Backend::kFtbb, sim::Backend::kCentral, sim::Backend::kDib}) {
    std::printf("backend: %s\n", sim::to_string(backend));
    support::TextTable table({"schedule", "done", "optimal", "makespan (s)",
                              "stretch", "redone", "lost", "KB sent"});
    double baseline = 0.0;
    for (const Schedule& schedule : schedules) {
      sim::ScenarioSpec spec;
      spec.name = schedule.name;
      spec.backend = backend;
      spec.sim_threads = threads;
      spec.workers = 4;
      spec.seed = 5;
      spec.workload.kind = sim::WorkloadKind::kKnapsack;
      spec.workload.size = 14;
      spec.workload.seed = 5;
      spec.workload.cost_mean = 2e-3;
      spec.tune_for_small_problems();
      spec.faults = schedule.plan;
      const sim::ScenarioReport r = sim::ScenarioRunner::run(spec);
      if (baseline == 0.0) baseline = r.makespan;
      ok = ok && r.completed && r.optimum_matched;
      table.row({schedule.name, r.completed ? "yes" : "NO",
                 r.optimum_matched ? "yes" : "NO",
                 support::TextTable::num(r.makespan, 3),
                 support::TextTable::num(baseline > 0 ? r.makespan / baseline : 0, 2),
                 std::to_string(r.redundant_expansions),
                 std::to_string(r.messages_lost),
                 support::TextTable::num(static_cast<double>(r.bytes_sent) / 1024.0, 1)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return ok ? 0 : 1;
}
