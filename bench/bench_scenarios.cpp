// E16 — scenario sweep: the fault-tolerance overhead of each backend under
// a ladder of increasingly hostile fault schedules, on one fixed workload.
//
// For every (backend, schedule) cell the table reports completion, solution
// quality, makespan stretch over the backend's own failure-free run,
// redundant (redone) work, and bytes on the wire. This is the scenario
// engine exercising what the paper argues qualitatively in Section 3: the
// decentralized mechanism pays a modest redundancy cost where the
// centralized baseline pays in manager traffic and DIB pays in wholesale
// redo of donated subtrees.
//
// `--threads=N` (or FTBB_SIM_THREADS) shards the simulation kernel; every
// simulated number is bit-identical to the sequential run. `--rt` adds the
// thread-backed real-time runtime as a fourth backend — the same schedules
// replayed by the FaultDriver against wall-clock deadlines (rt makespans
// are wall seconds and not deterministic). `--smoke` runs a reduced ladder
// for CI. Results are also written to BENCH_scenarios.json.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_timing.hpp"
#include "sim/scenario.hpp"
#include "support/table.hpp"

namespace {

struct Cell {
  std::string backend;
  std::string schedule;
  bool completed = false;
  bool optimal = false;
  double makespan = 0.0;
  double stretch = 0.0;
  std::uint64_t redone = 0;
  std::uint64_t lost = 0;
  std::uint64_t bytes_sent = 0;
};

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftbb;

  const std::uint32_t threads = sim::parse_threads_flag(argc, argv);
  const bool smoke = has_flag(argc, argv, "--smoke");
  const bool with_rt = has_flag(argc, argv, "--rt");

  struct Schedule {
    const char* name;
    sim::FaultPlan plan;
  };
  std::vector<Schedule> schedules;
  schedules.push_back({"none", {}});
  {
    sim::FaultPlan p;
    p.crash(2, 0.02);
    schedules.push_back({"one crash", p});
  }
  if (!smoke) {
    sim::FaultPlan p;
    p.loss(0.0, 1e9, 0.1);
    schedules.push_back({"10% loss", p});
  }
  if (!smoke) {
    sim::FaultPlan p;
    p.split_halves(0.02, 0.2);
    schedules.push_back({"partition 0.2s", p});
  }
  {
    sim::FaultPlan p;
    p.crash(1, 0.015).crash(2, 0.03).loss(0.0, 1e9, 0.1).split_halves(0.05, 0.2);
    schedules.push_back({"combined", p});
  }

  std::vector<sim::Backend> backends = {sim::Backend::kFtbb, sim::Backend::kCentral,
                                        sim::Backend::kDib};
  if (with_rt) backends.push_back(sim::Backend::kRt);

  std::printf("E16 / scenario sweep: fault ladder x backend, knapsack n=14%s\n\n",
              with_rt ? " (+rt wall-clock runtime)" : "");
  std::vector<Cell> cells;
  bool ok = true;
  for (const sim::Backend backend : backends) {
    std::printf("backend: %s%s\n", sim::to_string(backend),
                backend == sim::Backend::kRt ? " (makespans are wall seconds)"
                                             : "");
    support::TextTable table({"schedule", "done", "optimal", "makespan (s)",
                              "stretch", "redone", "lost", "KB sent"});
    double baseline = 0.0;
    for (const Schedule& schedule : schedules) {
      sim::ScenarioSpec spec;
      spec.name = schedule.name;
      spec.backend = backend;
      spec.sim_threads = threads;
      spec.workers = 4;
      spec.seed = 5;
      spec.workload.kind = sim::WorkloadKind::kKnapsack;
      spec.workload.size = 14;
      spec.workload.seed = 5;
      spec.workload.cost_mean = 2e-3;
      spec.tune_for_small_problems();
      spec.faults = schedule.plan;
      const sim::ScenarioReport r = sim::ScenarioRunner::run(spec);
      if (baseline == 0.0) baseline = r.makespan;
      ok = ok && r.completed && r.optimum_matched;
      Cell cell;
      cell.backend = sim::to_string(backend);
      cell.schedule = schedule.name;
      cell.completed = r.completed;
      cell.optimal = r.optimum_matched;
      cell.makespan = r.makespan;
      cell.stretch = baseline > 0 ? r.makespan / baseline : 0.0;
      cell.redone = r.redundant_expansions;
      cell.lost = r.messages_lost;
      cell.bytes_sent = r.bytes_sent;
      cells.push_back(cell);
      table.row({schedule.name, r.completed ? "yes" : "NO",
                 r.optimum_matched ? "yes" : "NO",
                 support::TextTable::num(r.makespan, 3),
                 support::TextTable::num(cell.stretch, 2),
                 std::to_string(r.redundant_expansions),
                 std::to_string(r.messages_lost),
                 support::TextTable::num(static_cast<double>(r.bytes_sent) / 1024.0, 1)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  FILE* json = bench::open_bench_json("BENCH_scenarios.json", "scenarios");
  if (json == nullptr) return 1;
  std::fprintf(json,
               "  \"workload\": \"knapsack-14\",\n"
               "  \"smoke\": %s,\n  \"cells\": [\n",
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(json,
                 "    {\"backend\": \"%s\", \"schedule\": \"%s\", "
                 "\"completed\": %s, \"optimal\": %s, \"makespan_s\": %.6f, "
                 "\"stretch\": %.4f, \"redone\": %llu, \"lost\": %llu, "
                 "\"bytes_sent\": %llu}%s\n",
                 c.backend.c_str(), c.schedule.c_str(),
                 c.completed ? "true" : "false", c.optimal ? "true" : "false",
                 c.makespan, c.stretch,
                 static_cast<unsigned long long>(c.redone),
                 static_cast<unsigned long long>(c.lost),
                 static_cast<unsigned long long>(c.bytes_sent),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_scenarios.json\n");
  return ok ? 0 : 1;
}
