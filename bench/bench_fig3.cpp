// E1 — Figure 3: execution-time breakdown for a small real problem
// (~3,500 expanded nodes, 0.01 s mean node cost) on 1-8 processors.
//
// The paper reports, per processor count, the split of total time into
// B&B time, communication time, list-contraction time, load-balancing time,
// and idle time, with communication modeled as 1.5 + 0.005*L ms. The
// headline observation: overhead reaches ~36% at 8 processors because the
// granularity is small relative to the communication costs.
#include <cstdio>

#include "bench/workloads.hpp"
#include "bnb/sequential.hpp"

int main() {
  using namespace ftbb;
  std::printf("E1 / Figure 3: small problem, execution time breakdown, 1-8 procs\n");

  const bnb::BasicTree tree = bench::small_problem();
  bnb::TreeProblem problem(&tree);
  const bnb::SeqResult seq = bnb::solve_sequential(problem);
  std::printf("problem: recorded knapsack basic tree, %zu nodes total, "
              "%llu expanded sequentially, %.1fs uniprocessor B&B time\n\n",
              tree.size(), static_cast<unsigned long long>(seq.expanded),
              seq.total_cost);

  support::TextTable table({"procs", "makespan (s)", "BB", "comm", "contraction",
                            "LB", "idle", "overhead"});
  for (std::uint32_t procs = 1; procs <= 8; ++procs) {
    sim::ClusterConfig cfg = bench::small_cluster_config(procs);
    const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);
    if (!res.all_live_halted || res.solution != tree.optimal_value()) {
      std::printf("procs=%u FAILED (halted=%d)\n", procs, res.all_live_halted);
      return 1;
    }
    const double total = res.time_all();
    const double bb = res.time_of(core::CostKind::kBB);
    table.row({std::to_string(procs), support::TextTable::num(res.makespan, 2),
               support::TextTable::pct(bb / total, 1),
               support::TextTable::pct(res.time_of(core::CostKind::kComm) / total, 2),
               support::TextTable::pct(
                   res.time_of(core::CostKind::kContraction) / total, 2),
               support::TextTable::pct(
                   res.time_of(core::CostKind::kLoadBalance) / total, 2),
               support::TextTable::pct(res.time_of(core::CostKind::kIdle) / total, 2),
               support::TextTable::pct(1.0 - bb / total, 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper shape: overhead grows with processor count for this small\n"
              "granularity (the paper reports ~36%% at 8 processors); B&B time\n"
              "dominates at 1-2 processors.\n");
  return 0;
}
