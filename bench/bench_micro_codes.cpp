// E14 — microbenchmarks of the fault-tolerance data structures.
//
// These ground the simulator's contraction-cost model: the per-code and
// per-trie-node constants charged as "list contraction time" in the
// experiments can be compared against what the real implementation costs on
// this machine. Self-timed (no external benchmark dependency) and emits
// BENCH_micro_codes.json so the trajectory is tracked across PRs; `--smoke`
// shrinks the measurement windows for CI.
//
// Besides throughput, every bench reports allocs/op and bytes/op via an
// instrumented global allocator (counted over a separate untimed loop so the
// instrumentation never skews the timings). The binary exits nonzero if any
// `*_inline` code derivation allocates: the packed small-buffer PathCode
// guarantees child/sibling/parent are allocation-free at inline depths, and
// CI runs `--smoke` so a regression fails the perf-smoke job.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_timing.hpp"
#include "bnb/basic_tree.hpp"
#include "core/code_set.hpp"
#include "core/messages.hpp"
#include "support/table.hpp"

// --- instrumented global allocator (this bench binary only) ----------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ftbb;
using bench::measure;
using core::CodeSet;
using core::PathCode;

/// Collects every leaf code of a random tree with ~`nodes` nodes.
std::vector<PathCode> leaf_codes(std::uint64_t nodes, std::uint64_t seed) {
  bnb::RandomTreeConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  const bnb::BasicTree tree = bnb::BasicTree::random(cfg);
  std::vector<PathCode> out;
  std::vector<std::pair<std::int32_t, PathCode>> stack{{0, PathCode::root()}};
  while (!stack.empty()) {
    auto [idx, code] = std::move(stack.back());
    stack.pop_back();
    const auto& n = tree.node(static_cast<std::size_t>(idx));
    if (n.is_leaf()) {
      out.push_back(std::move(code));
      continue;
    }
    for (int bit = 0; bit < 2; ++bit) {
      stack.emplace_back(n.child[bit], code.child(n.var, bit != 0));
    }
  }
  return out;
}

struct Result {
  std::string name;
  double ops_per_sec = 0.0;
  double allocs_per_op = 0.0;
  double bytes_per_op = 0.0;
};

volatile std::size_t g_sink = 0;  // defeats dead-code elimination

/// Counts steady-state allocations of `op`: two warmup calls let lazily
/// grown buffers (scratch vectors, trie node pools) reach their fixed point,
/// then `kCalls` counted repetitions are averaged per logical op.
template <typename Fn>
void count_allocs(Result& r, double ops_per_call, Fn&& op) {
  constexpr int kCalls = 100;
  op();
  op();
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const std::uint64_t b0 = g_bytes.load(std::memory_order_relaxed);
  for (int i = 0; i < kCalls; ++i) op();
  const double ops = kCalls * ops_per_call;
  r.allocs_per_op =
      static_cast<double>(g_allocs.load(std::memory_order_relaxed) - a0) / ops;
  r.bytes_per_op =
      static_cast<double>(g_bytes.load(std::memory_order_relaxed) - b0) / ops;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double window = smoke ? 0.02 : 0.2;
  std::printf("E14 / micro benchmarks of codes, tables and reports%s\n\n",
              smoke ? " [smoke]" : "");
  std::vector<Result> results;

  const auto bench = [&](std::string name, double ops_per_call, auto&& op) {
    Result r;
    r.name = std::move(name);
    r.ops_per_sec = measure(window, ops_per_call, op);
    count_allocs(r, ops_per_call, op);
    results.push_back(std::move(r));
  };

  {
    // Depth 8: child lands at depth 9, still inside the inline word buffer.
    // These three must stay at exactly 0 allocs/op (gated below). The
    // derivations are pure and header-inline, so the source code is read
    // through a volatile pointer — otherwise the compiler hoists the whole
    // op out of the measurement loop.
    PathCode code = PathCode::root();
    for (std::uint32_t i = 0; i < 8; ++i) code = code.child(i, i % 2 != 0);
    PathCode* volatile src = &code;
    bench("path_code_child_inline", 1.0, [&] {
      PathCode out = src->child(9, true);
      bench::keep(&out);
    });
    bench("path_code_sibling_inline", 1.0, [&] {
      PathCode out = src->sibling();
      bench::keep(&out);
    });
    bench("path_code_parent_inline", 1.0, [&] {
      PathCode out = src->parent();
      bench::keep(&out);
    });
  }

  for (const int depth : {30, 512}) {
    PathCode code = PathCode::root();
    for (int i = 0; i < depth; ++i) {
      code = code.child(static_cast<std::uint32_t>(i), i % 2 != 0);
    }
    PathCode* volatile src = &code;
    bench("path_code_child_depth" + std::to_string(depth), 1.0, [&] {
      PathCode out = src->child(static_cast<std::uint32_t>(depth) + 1, true);
      bench::keep(&out);
    });
  }

  for (const int depth : {8, 32, 128, 512}) {
    PathCode code = PathCode::root();
    for (int i = 0; i < depth; ++i) {
      code = code.child(static_cast<std::uint32_t>(i), i % 2 != 0);
    }
    bench("path_code_encode_decode_depth" + std::to_string(depth), 1.0, [&] {
      support::ByteWriter w;
      code.encode(w);
      support::ByteReader r(w.data());
      g_sink = g_sink + PathCode::decode(r).depth();
    });
  }

  for (const std::uint64_t nodes : {1001u, 10001u, 100001u}) {
    const auto leaves = leaf_codes(nodes, 11);
    bench("code_set_insert_all_leaves_" + std::to_string(nodes),
          static_cast<double>(leaves.size()), [&] {
            CodeSet set;
            for (const PathCode& c : leaves) set.insert(c);
            g_sink = g_sink + (set.root_complete() ? 1 : 0);
          });
  }

  {
    const auto leaves = leaf_codes(10001, 13);
    CodeSet set;
    // Half completed -> realistic mid-run table.
    for (std::size_t i = 0; i < leaves.size(); i += 2) set.insert(leaves[i]);
    std::size_t i = 0;
    bench("code_set_covered", 1.0, [&] {
      g_sink = g_sink + (set.covered(leaves[i]) ? 1 : 0);
      i = (i + 1) % leaves.size();
    });
  }

  {
    // A receiver merging 8-code work reports into a growing table.
    const auto leaves = leaf_codes(20001, 17);
    bench("code_set_merge_8code_reports",
          static_cast<double>(leaves.size() / 8), [&] {
            CodeSet table;
            std::vector<PathCode> report;
            for (const PathCode& c : leaves) {
              report.push_back(c);
              if (report.size() == 8) {
                table.insert_all(report);
                report.clear();
              }
            }
            g_sink = g_sink + table.code_count();
          });
  }

  {
    // The recovery path's pattern: one persistent scratch buffer per worker,
    // overwritten in place each call. `_fresh` is the allocating wrapper.
    const auto leaves = leaf_codes(10001, 19);
    CodeSet set;
    for (std::size_t i = 0; i < leaves.size(); i += 3) set.insert(leaves[i]);
    std::vector<PathCode> scratch;
    bench("code_set_complement", 1.0, [&] {
      set.complement_into(scratch);
      g_sink = g_sink + scratch.size();
    });
    bench("code_set_complement_fresh", 1.0,
          [&] { g_sink = g_sink + set.complement().size(); });
  }

  {
    // The gossip/report path's pattern, same scratch-reuse contract.
    const auto leaves = leaf_codes(10001, 23);
    CodeSet set;
    for (std::size_t i = 0; i < leaves.size(); i += 2) set.insert(leaves[i]);
    std::vector<PathCode> scratch;
    bench("code_set_export", 1.0, [&] {
      set.export_into(scratch);
      g_sink = g_sink + scratch.size();
    });
    bench("code_set_export_fresh", 1.0,
          [&] { g_sink = g_sink + set.export_codes().size(); });
  }

  for (const int codes : {8, 64}) {
    const auto leaves = leaf_codes(2001, 29);
    core::Message msg;
    msg.type = core::MsgType::kWorkReport;
    msg.from = 3;
    msg.best_known = -123.0;
    for (int i = 0; i < codes; ++i) {
      msg.codes.push_back(leaves[static_cast<std::size_t>(i) % leaves.size()]);
    }
    bench("work_report_encode_decode_" + std::to_string(codes) + "codes", 1.0,
          [&] {
            support::ByteWriter w;
            msg.encode(w);
            support::ByteReader r(w.data());
            g_sink = g_sink + core::Message::decode(r).codes.size();
          });
  }

  support::TextTable table({"bench", "ops/s", "allocs/op", "bytes/op"});
  for (const Result& r : results) {
    table.row({r.name, support::TextTable::num(r.ops_per_sec, 0),
               support::TextTable::num(r.allocs_per_op, 2),
               support::TextTable::num(r.bytes_per_op, 0)});
  }
  std::printf("%s", table.render().c_str());

  FILE* json = bench::open_bench_json("BENCH_micro_codes.json", "micro_codes");
  if (json == nullptr) return 1;
  std::fprintf(json, "  \"smoke\": %s,\n  \"results\": [\n",
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"ops_per_sec\": %.0f, "
                 "\"allocs_per_op\": %.3f, \"bytes_per_op\": %.1f}%s\n",
                 results[i].name.c_str(), results[i].ops_per_sec,
                 results[i].allocs_per_op, results[i].bytes_per_op,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_micro_codes.json\n");

  // Gate: inline-depth code derivations must be allocation-free.
  int rc = 0;
  for (const Result& r : results) {
    if (r.name.find("_inline") != std::string::npos && r.allocs_per_op != 0.0) {
      std::fprintf(stderr, "GATE FAIL: %s allocates %.3f/op (expected 0)\n",
                   r.name.c_str(), r.allocs_per_op);
      rc = 1;
    }
  }
  return rc;
}
