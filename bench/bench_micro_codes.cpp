// E14 — microbenchmarks of the fault-tolerance data structures.
//
// These ground the simulator's contraction-cost model: the per-code and
// per-trie-node constants charged as "list contraction time" in the
// experiments can be compared against what the real implementation costs on
// this machine. Self-timed (no external benchmark dependency) and emits
// BENCH_micro_codes.json so the trajectory is tracked across PRs; `--smoke`
// shrinks the measurement windows for CI.
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_timing.hpp"
#include "bnb/basic_tree.hpp"
#include "core/code_set.hpp"
#include "core/messages.hpp"
#include "support/table.hpp"

namespace {

using namespace ftbb;
using bench::measure;
using core::CodeSet;
using core::PathCode;

/// Collects every leaf code of a random tree with ~`nodes` nodes.
std::vector<PathCode> leaf_codes(std::uint64_t nodes, std::uint64_t seed) {
  bnb::RandomTreeConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  const bnb::BasicTree tree = bnb::BasicTree::random(cfg);
  std::vector<PathCode> out;
  std::vector<std::pair<std::int32_t, PathCode>> stack{{0, PathCode::root()}};
  while (!stack.empty()) {
    auto [idx, code] = std::move(stack.back());
    stack.pop_back();
    const auto& n = tree.node(static_cast<std::size_t>(idx));
    if (n.is_leaf()) {
      out.push_back(std::move(code));
      continue;
    }
    for (int bit = 0; bit < 2; ++bit) {
      stack.emplace_back(n.child[bit], code.child(n.var, bit != 0));
    }
  }
  return out;
}

struct Result {
  std::string name;
  double ops_per_sec = 0.0;
};

volatile std::size_t g_sink = 0;  // defeats dead-code elimination

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double window = smoke ? 0.02 : 0.2;
  std::printf("E14 / micro benchmarks of codes, tables and reports%s\n\n",
              smoke ? " [smoke]" : "");
  std::vector<Result> results;

  {
    PathCode code = PathCode::root();
    for (std::uint32_t i = 0; i < 30; ++i) code = code.child(i, i % 2 != 0);
    results.push_back({"path_code_child_depth30",
                       measure(window, 1.0, [&] {
                         g_sink = g_sink + code.child(31, true).depth();
                       })});
  }

  for (const int depth : {8, 32, 128}) {
    PathCode code = PathCode::root();
    for (int i = 0; i < depth; ++i) {
      code = code.child(static_cast<std::uint32_t>(i), i % 2 != 0);
    }
    results.push_back(
        {"path_code_encode_decode_depth" + std::to_string(depth),
         measure(window, 1.0, [&] {
           support::ByteWriter w;
           code.encode(w);
           support::ByteReader r(w.data());
           g_sink = g_sink + PathCode::decode(r).depth();
         })});
  }

  for (const std::uint64_t nodes : {1001u, 10001u, 100001u}) {
    const auto leaves = leaf_codes(nodes, 11);
    results.push_back(
        {"code_set_insert_all_leaves_" + std::to_string(nodes),
         measure(window, static_cast<double>(leaves.size()), [&] {
           CodeSet set;
           for (const PathCode& c : leaves) set.insert(c);
           g_sink = g_sink + (set.root_complete() ? 1 : 0);
         })});
  }

  {
    const auto leaves = leaf_codes(10001, 13);
    CodeSet set;
    // Half completed -> realistic mid-run table.
    for (std::size_t i = 0; i < leaves.size(); i += 2) set.insert(leaves[i]);
    std::size_t i = 0;
    results.push_back({"code_set_covered",
                       measure(window, 1.0, [&] {
                         g_sink = g_sink + (set.covered(leaves[i]) ? 1 : 0);
                         i = (i + 1) % leaves.size();
                       })});
  }

  {
    // A receiver merging 8-code work reports into a growing table.
    const auto leaves = leaf_codes(20001, 17);
    results.push_back(
        {"code_set_merge_8code_reports",
         measure(window, static_cast<double>(leaves.size() / 8), [&] {
           CodeSet table;
           std::vector<PathCode> report;
           for (const PathCode& c : leaves) {
             report.push_back(c);
             if (report.size() == 8) {
               table.insert_all(report);
               report.clear();
             }
           }
           g_sink = g_sink + table.code_count();
         })});
  }

  {
    const auto leaves = leaf_codes(10001, 19);
    CodeSet set;
    for (std::size_t i = 0; i < leaves.size(); i += 3) set.insert(leaves[i]);
    results.push_back({"code_set_complement",
                       measure(window, 1.0, [&] {
                         g_sink = g_sink + set.complement().size();
                       })});
  }

  {
    const auto leaves = leaf_codes(10001, 23);
    CodeSet set;
    for (std::size_t i = 0; i < leaves.size(); i += 2) set.insert(leaves[i]);
    results.push_back({"code_set_export",
                       measure(window, 1.0, [&] {
                         g_sink = g_sink + set.export_codes().size();
                       })});
  }

  for (const int codes : {8, 64}) {
    const auto leaves = leaf_codes(2001, 29);
    core::Message msg;
    msg.type = core::MsgType::kWorkReport;
    msg.from = 3;
    msg.best_known = -123.0;
    for (int i = 0; i < codes; ++i) {
      msg.codes.push_back(leaves[static_cast<std::size_t>(i) % leaves.size()]);
    }
    results.push_back(
        {"work_report_encode_decode_" + std::to_string(codes) + "codes",
         measure(window, 1.0, [&] {
           support::ByteWriter w;
           msg.encode(w);
           support::ByteReader r(w.data());
           g_sink = g_sink + core::Message::decode(r).codes.size();
         })});
  }

  support::TextTable table({"bench", "ops/s"});
  for (const Result& r : results) {
    table.row({r.name, support::TextTable::num(r.ops_per_sec, 0)});
  }
  std::printf("%s", table.render().c_str());

  FILE* json = bench::open_bench_json("BENCH_micro_codes.json", "micro_codes");
  if (json == nullptr) return 1;
  std::fprintf(json, "  \"smoke\": %s,\n  \"results\": [\n",
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::fprintf(json, "    {\"name\": \"%s\", \"ops_per_sec\": %.0f}%s\n",
                 results[i].name.c_str(), results[i].ops_per_sec,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_micro_codes.json\n");
  return 0;
}
