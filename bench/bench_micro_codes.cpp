// E14 — microbenchmarks of the fault-tolerance data structures.
//
// These ground the simulator's contraction-cost model: the per-code and
// per-trie-node constants charged as "list contraction time" in the
// experiments can be compared against what the real implementation costs on
// this machine.
#include <benchmark/benchmark.h>

#include "bnb/basic_tree.hpp"
#include "core/code_set.hpp"
#include "core/messages.hpp"

namespace {

using namespace ftbb;
using core::CodeSet;
using core::PathCode;

/// Collects every leaf code of a random tree with ~`nodes` nodes.
std::vector<PathCode> leaf_codes(std::uint64_t nodes, std::uint64_t seed) {
  bnb::RandomTreeConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  const bnb::BasicTree tree = bnb::BasicTree::random(cfg);
  std::vector<PathCode> out;
  std::vector<std::pair<std::int32_t, PathCode>> stack{{0, PathCode::root()}};
  while (!stack.empty()) {
    auto [idx, code] = std::move(stack.back());
    stack.pop_back();
    const auto& n = tree.node(static_cast<std::size_t>(idx));
    if (n.is_leaf()) {
      out.push_back(std::move(code));
      continue;
    }
    for (int bit = 0; bit < 2; ++bit) {
      stack.emplace_back(n.child[bit], code.child(n.var, bit != 0));
    }
  }
  return out;
}

void BM_PathCodeChild(benchmark::State& state) {
  PathCode code = PathCode::root();
  for (std::uint32_t i = 0; i < 30; ++i) code = code.child(i, i % 2 != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.child(31, true));
  }
}
BENCHMARK(BM_PathCodeChild);

void BM_PathCodeEncodeDecode(benchmark::State& state) {
  PathCode code = PathCode::root();
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    code = code.child(static_cast<std::uint32_t>(i), i % 2 != 0);
  }
  for (auto _ : state) {
    support::ByteWriter w;
    code.encode(w);
    support::ByteReader r(w.data());
    benchmark::DoNotOptimize(PathCode::decode(r));
  }
  state.SetLabel("depth=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PathCodeEncodeDecode)->Arg(8)->Arg(32)->Arg(128);

void BM_CodeSetInsertAllLeaves(benchmark::State& state) {
  const auto leaves = leaf_codes(static_cast<std::uint64_t>(state.range(0)), 11);
  for (auto _ : state) {
    CodeSet set;
    for (const PathCode& c : leaves) set.insert(c);
    benchmark::DoNotOptimize(set.root_complete());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(leaves.size()) *
                          state.iterations());
}
BENCHMARK(BM_CodeSetInsertAllLeaves)->Arg(1001)->Arg(10001)->Arg(100001);

void BM_CodeSetCovered(benchmark::State& state) {
  const auto leaves = leaf_codes(10001, 13);
  CodeSet set;
  // Half completed -> realistic mid-run table.
  for (std::size_t i = 0; i < leaves.size(); i += 2) set.insert(leaves[i]);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.covered(leaves[i]));
    i = (i + 1) % leaves.size();
  }
}
BENCHMARK(BM_CodeSetCovered);

void BM_CodeSetMergeReports(benchmark::State& state) {
  // Simulate a receiver merging 8-code work reports into a growing table.
  const auto leaves = leaf_codes(20001, 17);
  for (auto _ : state) {
    CodeSet table;
    std::vector<PathCode> report;
    for (const PathCode& c : leaves) {
      report.push_back(c);
      if (report.size() == 8) {
        table.insert_all(report);
        report.clear();
      }
    }
    benchmark::DoNotOptimize(table.code_count());
  }
}
BENCHMARK(BM_CodeSetMergeReports);

void BM_CodeSetComplement(benchmark::State& state) {
  const auto leaves = leaf_codes(10001, 19);
  CodeSet set;
  for (std::size_t i = 0; i < leaves.size(); i += 3) set.insert(leaves[i]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.complement());
  }
}
BENCHMARK(BM_CodeSetComplement);

void BM_CodeSetExport(benchmark::State& state) {
  const auto leaves = leaf_codes(10001, 23);
  CodeSet set;
  for (std::size_t i = 0; i < leaves.size(); i += 2) set.insert(leaves[i]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.export_codes());
  }
}
BENCHMARK(BM_CodeSetExport);

void BM_WorkReportEncodeDecode(benchmark::State& state) {
  const auto leaves = leaf_codes(2001, 29);
  core::Message msg;
  msg.type = core::MsgType::kWorkReport;
  msg.from = 3;
  msg.best_known = -123.0;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    msg.codes.push_back(leaves[static_cast<std::size_t>(i) % leaves.size()]);
  }
  for (auto _ : state) {
    support::ByteWriter w;
    msg.encode(w);
    support::ByteReader r(w.data());
    benchmark::DoNotOptimize(core::Message::decode(r));
  }
  state.SetLabel("codes=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_WorkReportEncodeDecode)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
