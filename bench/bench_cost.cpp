// E16 — cost-model adaptivity: fixed vs per-knob adaptive (kEwma) vs the
// cost-model controller (core/cost_model.hpp) on the E15 granularity setup.
//
// The per-knob kEwma scheme (PR-era adaptive_timeouts) fixes the spurious
// failure-suspicion problem at coarse granularity (257 -> ~16 timeouts at
// cost factor 10) but pays ~4 efficiency points for it, because it scales
// *every* interval — including the message-priced report flush and idle
// backoff, whose cost does not grow with node cost. The CostController
// raises only the time-priced knob (the request timeout), keeps the
// message-priced knobs at base, and sizes report batches and work grants
// from the same EWMA. Target: efficiency within one point of the fixed
// policy while timeouts stay within 2x of the kEwma scheme.
//
// Also emits the work-mix ledger ratios (model vs fixed) used by CI's
// regression check: `--baseline <file>` compares the measured metrics
// against committed "key value tolerance" lines and fails on drift.
// `--smoke` shrinks the factor sweep for CI.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_timing.hpp"
#include "bench/workloads.hpp"

namespace {

struct PolicyRow {
  double factor = 0.0;
  const char* policy = "";
  std::uint64_t timeouts = 0;
  std::uint64_t redundant = 0;
  double efficiency = -1.0;  // -1: did not halt in the time limit
  double expansions = 0.0;
  double bytes_per_node = 0.0;
  double redundant_share = 0.0;
  std::uint64_t retunes = 0;
};

std::uint64_t sum_timeouts(const ftbb::sim::ClusterResult& res) {
  std::uint64_t n = 0;
  for (const auto& w : res.workers) n += w.request_timeouts;
  return n;
}

/// "key value tolerance" lines ('#' comments); returns false on violation.
bool check_baseline(const char* path,
                    const std::map<std::string, double>& actual) {
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::printf("baseline FAILED: cannot read %s\n", path);
    return false;
  }
  bool ok = true;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '#' || line[0] == '\n') continue;
    char key[128];
    double expected = 0.0;
    double tolerance = 0.0;
    if (std::sscanf(line, "%127s %lf %lf", key, &expected, &tolerance) != 3) {
      std::printf("baseline FAILED: malformed line: %s", line);
      ok = false;
      continue;
    }
    const auto it = actual.find(key);
    if (it == actual.end()) {
      std::printf("baseline FAILED: unknown key %s\n", key);
      ok = false;
      continue;
    }
    if (std::fabs(it->second - expected) > tolerance) {
      std::printf("baseline FAILED: %s = %.6g, expected %.6g +/- %.6g\n", key,
                  it->second, expected, tolerance);
      ok = false;
    } else {
      std::printf("baseline ok: %s = %.6g (expected %.6g +/- %.6g)\n", key,
                  it->second, expected, tolerance);
    }
  }
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftbb;
  bool smoke = false;
  const char* baseline = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline = argv[i + 1];
    }
  }
  std::printf("E16 / cost-model adaptivity: fixed vs kEwma vs CostController, "
              "8 processors%s\n\n", smoke ? " (smoke)" : "");

  const std::vector<double> factors =
      smoke ? std::vector<double>{10.0} : std::vector<double>{1.0, 10.0, 30.0};

  std::vector<PolicyRow> rows;
  std::map<std::string, double> metrics;
  bool acceptance_ok = true;
  support::TextTable table({"cost factor", "policy", "timeouts", "redundant",
                            "efficiency", "bytes/node", "retunes"});
  for (const double factor : factors) {
    bnb::RandomTreeConfig tree_cfg;
    tree_cfg.target_nodes = 4001;
    tree_cfg.cost_mean = 0.01;
    tree_cfg.seed = 23;
    bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
    tree.scale_costs(factor);
    bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);
    const double ideal = tree.total_cost() / 8.0;

    auto run = [&](bool adaptive, bool model) {
      sim::ClusterConfig cfg = bench::small_cluster_config(8, 23);
      cfg.time_limit = 3e6;
      cfg.worker.attempts_before_recovery = 1;  // eager timeout suspicion
      cfg.worker.adaptive_timeouts = adaptive;
      cfg.worker.model_adaptivity = model;
      return sim::SimCluster::run(problem, cfg);
    };
    struct Policy {
      const char* name;
      bool adaptive;
      bool model;
    };
    constexpr Policy kPolicies[] = {
        {"fixed", false, false}, {"kEwma", true, false}, {"model", false, true}};
    std::map<std::string, PolicyRow> by_policy;
    for (const Policy& p : kPolicies) {
      const sim::ClusterResult res = run(p.adaptive, p.model);
      PolicyRow row;
      row.factor = factor;
      row.policy = p.name;
      row.timeouts = sum_timeouts(res);
      row.redundant = res.redundant_expansions;
      row.efficiency = res.all_live_halted ? ideal / res.makespan : -1.0;
      row.expansions =
          static_cast<double>(res.work[core::WorkItem::kExpansions]);
      row.bytes_per_node =
          static_cast<double>(res.work[core::WorkItem::kWireBytesSent]) /
          static_cast<double>(res.total_expanded);
      row.redundant_share = static_cast<double>(res.redundant_expansions) /
                            static_cast<double>(res.total_expanded);
      row.retunes = res.work[core::WorkItem::kControllerRetunes];
      rows.push_back(row);
      by_policy[p.name] = row;
      table.row({support::TextTable::num(factor, 1), p.name,
                 std::to_string(row.timeouts), std::to_string(row.redundant),
                 row.efficiency >= 0.0
                     ? support::TextTable::pct(row.efficiency, 1)
                     : "-",
                 support::TextTable::num(row.bytes_per_node, 1),
                 std::to_string(row.retunes)});
    }

    // Work-mix regression metrics at each factor (keys carry the factor).
    char key[64];
    const PolicyRow& fixed = by_policy["fixed"];
    const PolicyRow& ewma = by_policy["kEwma"];
    const PolicyRow& model = by_policy["model"];
    auto put = [&](const char* name, double v) {
      std::snprintf(key, sizeof(key), "f%g_%s", factor, name);
      metrics[key] = v;
    };
    put("model_timeouts", static_cast<double>(model.timeouts));
    put("model_efficiency", model.efficiency);
    put("fixed_efficiency", fixed.efficiency);
    put("model_expansion_ratio", model.expansions / fixed.expansions);
    put("model_bytes_per_node", model.bytes_per_node);
    put("model_redundant_share", model.redundant_share);
    put("ewma_timeouts", static_cast<double>(ewma.timeouts));

    // Acceptance (ISSUE PR 8): at coarse granularity the model policy keeps
    // the efficiency of the fixed policy (within one point) while its
    // timeout count stays within 2x of the kEwma scheme's.
    if (factor >= 10.0) {
      const bool eff_ok = model.efficiency >= fixed.efficiency - 0.01;
      const bool to_ok = model.timeouts <= 2 * (ewma.timeouts > 0 ? ewma.timeouts : 1);
      if (!eff_ok || !to_ok) {
        std::printf("ACCEPTANCE FAILED at factor %.1f: model eff %.4f vs fixed "
                    "%.4f (need within 0.01), model timeouts %llu vs kEwma "
                    "%llu (need <= 2x)\n",
                    factor, model.efficiency, fixed.efficiency,
                    static_cast<unsigned long long>(model.timeouts),
                    static_cast<unsigned long long>(ewma.timeouts));
        acceptance_ok = false;
      }
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nshape: the controller matches the fixed policy's efficiency —\n"
              "message-priced knobs stay at base — while its EWMA-scaled request\n"
              "timeout keeps failure suspicion quiet on coarse nodes.\n");

  FILE* json = bench::open_bench_json("BENCH_cost.json", "cost");
  if (json == nullptr) return 1;
  std::fprintf(json, "  \"workers\": 8,\n  \"smoke\": %s,\n  \"rows\": [\n",
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PolicyRow& r = rows[i];
    std::fprintf(json,
                 "    {\"cost_factor\": %.1f, \"policy\": \"%s\", "
                 "\"timeouts\": %llu, \"redundant\": %llu, "
                 "\"efficiency\": %.4f, \"expansions\": %.0f, "
                 "\"bytes_per_node\": %.2f, \"redundant_share\": %.5f, "
                 "\"controller_retunes\": %llu}%s\n",
                 r.factor, r.policy,
                 static_cast<unsigned long long>(r.timeouts),
                 static_cast<unsigned long long>(r.redundant), r.efficiency,
                 r.expansions, r.bytes_per_node, r.redundant_share,
                 static_cast<unsigned long long>(r.retunes),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_cost.json\n");

  if (baseline != nullptr && !check_baseline(baseline, metrics)) return 1;
  if (!acceptance_ok) return 1;
  return 0;
}
