// E12 — the group membership protocol (paper Section 5.2; simulating it is
// Section 7 future work).
//
// Reports, per group size: failure-detection latency, join propagation
// latency, false positives, view accuracy, and network load per member —
// the paper's claimed properties ("scalability in network load with the
// size of the group, tolerance to a small percentage of message loss or
// failed members, scalability in accuracy with the number of members").
#include <cstdio>
#include <vector>

#include "gossip/membership.hpp"
#include "support/table.hpp"

int main() {
  using namespace ftbb;
  std::printf("E12 / membership protocol (Section 5.2)\n");
  std::printf("gossip interval 0.5s, fail timeout 4s, fanout 2, 5%% message loss\n\n");

  gossip::MembershipConfig cfg;
  sim::NetConfig net;
  net.loss_prob = 0.05;

  support::TextTable table({"members", "detect mean (s)", "detect max (s)",
                            "join mean (s)", "false pos", "accuracy",
                            "KB/member/min"});
  for (const std::uint32_t n : {8u, 16u, 32u, 64u, 128u}) {
    std::vector<gossip::MemberScript> scripts;
    for (std::uint32_t i = 0; i < n; ++i) {
      gossip::MemberScript script;
      script.id = i;
      scripts.push_back(script);
    }
    // One late joiner and one crash per run.
    gossip::MemberScript joiner;
    joiner.id = n;
    joiner.join_time = 10.0;
    scripts.push_back(joiner);
    scripts[n / 2].crash_time = 20.0;
    const double duration = 45.0;
    const auto res = gossip::MembershipSim::run(scripts, cfg, net, duration, n);
    const double kb_per_member_min =
        static_cast<double>(res.metrics.digest_bytes) / 1024.0 /
        static_cast<double>(n + 1) / (duration / 60.0);
    table.row({std::to_string(n),
               support::TextTable::num(res.metrics.detection_latency.mean(), 2),
               support::TextTable::num(res.metrics.detection_latency.max(), 2),
               support::TextTable::num(res.metrics.join_latency.mean(), 2),
               std::to_string(res.metrics.false_positives),
               support::TextTable::pct(res.metrics.accuracy.mean(), 1),
               support::TextTable::num(kb_per_member_min, 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected shape: detection latency ~ fail timeout + O(log n) gossip\n"
              "rounds; accuracy stays high as the group grows; per-member load grows\n"
              "with view size (digests carry the whole view).\n");
  return 0;
}
