// E10 — comparison with DIB (Section 5.5).
//
// Same workload under our decentralized algorithm and under the DIB-style
// baseline, failure free and with failures. The paper's qualitative claims:
//  * both are decentralized and fault tolerant with low-cost protocols;
//  * DIB needs the root of its responsibility hierarchy to survive — our
//    algorithm has no such node;
//  * a DIB machine failure also voids the bookkeeping for problems it
//    donated onward, so its donor redoes work third machines already
//    finished; our reports survive at whichever members received them.
#include <cstdio>

#include "bench/workloads.hpp"
#include "dib/dib.hpp"

int main() {
  using namespace ftbb;
  std::printf("E10 / FTBB vs DIB on one workload, 8 machines\n\n");

  bnb::RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = 4001;
  tree_cfg.cost_mean = 0.01;
  tree_cfg.seed = 53;
  const bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
  bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);

  dib::DibConfig dib_cfg;
  dib_cfg.work_request_timeout = 0.03;
  dib_cfg.request_backoff = 0.01;
  dib_cfg.audit_interval = 0.5;
  // A donated subtree legitimately stays outstanding for a large fraction
  // of the run; the timeout must exceed that or donors redo live work.
  // This knob IS DIB's structural tension: patient donors recover slowly
  // after real failures, eager donors duplicate healthy donations.
  dib_cfg.donation_timeout = 8.0;

  const sim::ClusterResult ours_base =
      sim::SimCluster::run(problem, bench::small_cluster_config(8, 53));
  const dib::DibResult dib_base =
      dib::DibSim::run(problem, 8, dib_cfg, {}, {}, 3e4, 53);
  if (!ours_base.all_live_halted || !dib_base.completed) {
    std::printf("baseline FAILED\n");
    return 1;
  }

  support::TextTable table({"scenario", "algorithm", "finished", "solution",
                            "makespan (s)", "redundant"});
  auto add_ftbb = [&](const char* scenario, const sim::ClusterResult& res) {
    table.row({scenario, "FTBB", res.all_live_halted ? "yes" : "NO",
               res.solution == tree.optimal_value() ? "exact" : "WRONG",
               support::TextTable::num(res.makespan, 2),
               std::to_string(res.redundant_expansions)});
  };
  auto add_dib = [&](const char* scenario, const dib::DibResult& res) {
    table.row({scenario, "DIB", res.completed ? "yes" : "NO",
               res.completed && res.solution == tree.optimal_value() ? "exact"
                                                                     : "-",
               support::TextTable::num(res.makespan, 2),
               std::to_string(res.redundant_expansions)});
  };

  add_ftbb("no failures", ours_base);
  add_dib("no failures", dib_base);

  // Mid-machine failure: both survive; compare the redo bill.
  {
    sim::ClusterConfig cfg = bench::small_cluster_config(8, 53);
    cfg.crashes = {{3, ours_base.makespan * 0.5}};
    cfg.time_limit = 3e4;
    add_ftbb("machine 3 dies", sim::SimCluster::run(problem, cfg));
    add_dib("machine 3 dies",
            dib::DibSim::run(problem, 8, dib_cfg, {},
                             {{3, dib_base.makespan * 0.5}}, 3e4, 53));
  }

  // Root/holder failure: FTBB has no special node; machine 0 merely held
  // the root problem initially. DIB's responsibility hierarchy is rooted at
  // machine 0 and cannot conclude without it.
  {
    sim::ClusterConfig cfg = bench::small_cluster_config(8, 53);
    cfg.crashes = {{0, ours_base.makespan * 0.5}};
    cfg.time_limit = 3e4;
    add_ftbb("machine 0 dies", sim::SimCluster::run(problem, cfg));
    add_dib("machine 0 dies",
            dib::DibSim::run(problem, 8, dib_cfg, {},
                             {{0, dib_base.makespan * 0.5}},
                             dib_base.makespan * 6.0, 53));
  }

  // All but one.
  {
    sim::ClusterConfig cfg = bench::small_cluster_config(8, 53);
    for (core::NodeId v = 1; v < 8; ++v) {
      cfg.crashes.push_back({v, ours_base.makespan * (0.3 + 0.05 * v)});
    }
    cfg.time_limit = 3e4;
    add_ftbb("7 of 8 die", sim::SimCluster::run(problem, cfg));
    std::vector<dib::DibCrash> crashes;
    for (std::uint32_t v = 1; v < 8; ++v) {
      crashes.push_back({v, dib_base.makespan * (0.3 + 0.05 * v)});
    }
    add_dib("7 of 8 die", dib::DibSim::run(problem, 8, dib_cfg, {}, crashes,
                                           dib_base.makespan * 20.0, 53));
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nexpected shape: comparable cost without failures; DIB cannot\n"
              "finish when machine 0 (the root of its responsibility hierarchy)\n"
              "dies, while FTBB treats all processes identically and survives\n"
              "even 7 of 8 failures.\n");
  return 0;
}
