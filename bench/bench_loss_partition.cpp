// E13 — message loss and temporary partitions (Section 4 assumptions;
// Section 5.3.2: "this mechanism also works in the case of temporary
// network partitions").
#include <cstdio>

#include "bench/workloads.hpp"

int main() {
  using namespace ftbb;
  std::printf("E13 / robustness to message loss and temporary partitions\n\n");

  bnb::RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = 4001;
  tree_cfg.cost_mean = 0.01;
  tree_cfg.seed = 47;
  const bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
  // Exhaustive mode: all 4001 nodes are real work, so loss/partition effects
  // act on a meaningful computation rather than a heavily pruned stub.
  bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);

  const sim::ClusterResult baseline =
      sim::SimCluster::run(problem, bench::small_cluster_config(8, 47));
  if (!baseline.all_live_halted) return 1;

  std::printf("(a) i.i.d. message loss sweep, 8 processors\n");
  support::TextTable ta({"loss", "terminated", "solution", "makespan (s)",
                         "stretch", "msgs lost", "redundant"});
  bool ok = true;
  for (const double loss : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    sim::ClusterConfig cfg = bench::small_cluster_config(8, 47);
    cfg.net.loss_prob = loss;
    cfg.time_limit = 3e4;
    const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);
    const bool exact = res.all_live_halted && res.solution == tree.optimal_value();
    ok = ok && exact;
    ta.row({support::TextTable::pct(loss, 0), res.all_live_halted ? "yes" : "NO",
            exact ? "exact" : "WRONG", support::TextTable::num(res.makespan, 2),
            support::TextTable::num(res.makespan / baseline.makespan, 2),
            std::to_string(res.net.messages_lost),
            std::to_string(res.redundant_expansions)});
  }
  std::printf("%s\n", ta.render().c_str());

  std::printf("(b) temporary partition: {0-3} | {4-7} for a window mid-run\n");
  support::TextTable tb({"window (frac of run)", "terminated", "solution",
                         "makespan (s)", "stretch", "dropped at partition",
                         "redundant"});
  for (const double width : {0.1, 0.3, 0.5}) {
    sim::ClusterConfig cfg = bench::small_cluster_config(8, 47);
    cfg.time_limit = 3e4;
    sim::Partition partition;
    partition.t0 = baseline.makespan * 0.2;
    partition.t1 = baseline.makespan * (0.2 + width);
    partition.group_of = {0, 0, 0, 0, 1, 1, 1, 1};
    cfg.partitions = {partition};
    const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);
    const bool exact = res.all_live_halted && res.solution == tree.optimal_value();
    ok = ok && exact;
    tb.row({support::TextTable::pct(width, 0), res.all_live_halted ? "yes" : "NO",
            exact ? "exact" : "WRONG", support::TextTable::num(res.makespan, 2),
            support::TextTable::num(res.makespan / baseline.makespan, 2),
            std::to_string(res.net.messages_partitioned),
            std::to_string(res.redundant_expansions)});
  }
  std::printf("%s", tb.render().c_str());
  std::printf("\nexpected shape: correctness is unconditional; loss and partitions\n"
              "cost time (retries, duplicated regions on both partition sides)\n"
              "rather than accuracy.\n");
  return ok ? 0 : 1;
}
