// Microbenchmark: the event engine's data plane — ladder EventQueue with
// InlineCallback versus the seed binary heap with std::function — at
// 10^4 … 10^7 pending events. Writes BENCH_kernel.json.
//
// Two workloads per (queue, population):
//
//   * schedule_dispatch: the kernel's steady state. Hold the population
//     constant and, per operation, pop the earliest event, run it, and
//     schedule a replacement at now + exp-ish offset. On the seed heap this
//     is O(log n) sift per op plus a malloc/free pair per std::function; on
//     the ladder it is O(1) amortized band append plus zero allocations for
//     inline-sized captures. The ISSUE gate is that this curve is flat
//     (O(1)) across 10^4..10^7 while the heap's drifts up with log n.
//   * bytes/event and allocs/event: global operator new/delete are
//     instrumented in this binary; prefill measures bytes per pending event
//     (node + callback storage), the warm churn window measures allocations
//     per schedule+dispatch cycle (the inline SBO contract says 0 for the
//     ladder).
//
// `--smoke` runs 10^4..10^5 only with short windows — the CI perf-smoke job
// uses it as a build-and-run gate, not a perf assertion.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "bench/bench_timing.hpp"
#include "bench/legacy_event_queue.hpp"
#include "sim/event_queue.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

// --- instrumented global allocator (this binary only) -----------------------

namespace {
std::uint64_t g_alloc_calls = 0;
std::uint64_t g_alloc_bytes = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_calls;
  g_alloc_bytes += size;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_calls;
  g_alloc_bytes += size;
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using namespace ftbb;
using bench::LegacyEventQueue;
using bench::measure;
using sim::EventNode;
using sim::EventQueue;
using sim::OwnerId;

/// The capture every hot-path closure resembles: a couple of pointers and a
/// few words of state — 24 bytes, inside InlineCallback's 64-byte buffer and
/// outside std::function's ~16-byte SBO, so the seed heap pays a malloc per
/// schedule and the ladder pays none.
struct HotCapture {
  std::uint64_t* sink;
  std::uint64_t a;
  double b;
  void operator()() const { *sink += a + static_cast<std::uint64_t>(b); }
};

/// Drives either queue through the same hold-population churn. The two
/// specializations differ only in how an event is popped/recycled.
struct LadderDriver {
  EventQueue q;
  double now = 0.0;
  void push(double t, std::uint64_t seq, HotCapture cb) {
    q.push(t, static_cast<OwnerId>(seq % 7), seq, 0, cb);
  }
  void step(std::uint64_t seq, support::Rng& rng, std::uint64_t* sink) {
    EventNode* ev = q.pop();
    now = ev->t;
    ev->fn();
    q.recycle(ev);
    push(now + rng.uniform(0.0, 10.0), seq, HotCapture{sink, seq, now});
  }
  [[nodiscard]] std::size_t memory_bytes() const { return q.memory_bytes(); }
};

struct HeapDriver {
  LegacyEventQueue q;
  double now = 0.0;
  void push(double t, std::uint64_t seq, HotCapture cb) {
    q.push(t, static_cast<OwnerId>(seq % 7), seq, 0, cb);
  }
  void step(std::uint64_t seq, support::Rng& rng, std::uint64_t* sink) {
    LegacyEventQueue::Event ev = q.pop();
    now = ev.t;
    ev.fn();
    push(now + rng.uniform(0.0, 10.0), seq, HotCapture{sink, seq, now});
  }
  [[nodiscard]] std::size_t memory_bytes() const { return q.memory_bytes(); }
};

struct QueueResult {
  const char* queue;
  double ops_per_sec = 0.0;
  double bytes_per_event = 0.0;   // storage bytes per pending event at prefill
  double allocs_per_event = 0.0;  // warm-churn mallocs per schedule+dispatch
  std::size_t memory_bytes = 0;   // queue-visible structure bytes
};

template <typename Driver>
QueueResult run_queue(const char* name, std::size_t n, double window) {
  Driver d;
  support::Rng rng(0xC0FFEE);
  std::uint64_t sink = 0;
  std::uint64_t seq = 0;

  const std::uint64_t bytes_before = g_alloc_bytes;
  // Prefill over the SAME horizon the churn schedules into (now + U[0,10)) so
  // the pending-set geometry is stationary — rung spans and bucket vector
  // capacities converge during warm-up instead of chasing a thinning tail of
  // far-future prefill events for the whole run.
  for (std::size_t i = 0; i < n; ++i) {
    d.push(rng.uniform(0.0, 10.0), seq, HotCapture{&sink, seq, 0.0});
    ++seq;
  }
  const double bytes_per_event =
      static_cast<double>(g_alloc_bytes - bytes_before) /
      static_cast<double>(n);

  // Warm up: cycle the full population (with a floor, so small populations
  // still see enough reband cycles) so slabs, rungs, bucket vectors, and (for
  // the heap) the allocator's size classes reach steady state.
  const std::uint64_t warm_ops = std::max<std::uint64_t>(n, 200000);
  for (std::uint64_t i = 0; i < warm_ops; ++i) d.step(seq++, rng, &sink);

  const std::uint64_t churn_ops = 2 * n;
  const std::uint64_t allocs_before = g_alloc_calls;
  for (std::uint64_t i = 0; i < churn_ops; ++i) d.step(seq++, rng, &sink);
  const double allocs_per_event =
      static_cast<double>(g_alloc_calls - allocs_before) /
      static_cast<double>(churn_ops);

  const double ops = measure(window, 1.0, [&] { d.step(seq++, rng, &sink); });
  if (sink == 0xFFFFFFFFFFFFFFFFULL) std::printf("x");  // keep sink live

  return QueueResult{name, ops, bytes_per_event, allocs_per_event,
                     d.memory_bytes()};
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double window = smoke ? 0.05 : 0.5;
  std::vector<std::size_t> sizes = {10000, 100000};
  if (!smoke) {
    sizes.push_back(1000000);
    sizes.push_back(10000000);
  }
  std::printf("kernel microbench: ladder+InlineCallback vs seed "
              "heap+std::function%s\n\n",
              smoke ? " [smoke]" : "");

  struct SizeResult {
    std::size_t pending;
    QueueResult heap;
    QueueResult ladder;
  };
  std::vector<SizeResult> all;
  for (const std::size_t n : sizes) {
    SizeResult sr{n,
                  run_queue<HeapDriver>("heap", n, window),
                  run_queue<LadderDriver>("ladder", n, window)};
    all.push_back(sr);
  }

  support::TextTable table({"pending", "queue", "sched+disp (ev/s)",
                            "bytes/event", "allocs/event", "speedup"});
  for (const SizeResult& sr : all) {
    for (const QueueResult* r : {&sr.heap, &sr.ladder}) {
      table.row({support::TextTable::num(static_cast<double>(sr.pending), 0),
                 r->queue, support::TextTable::num(r->ops_per_sec, 0),
                 support::TextTable::num(r->bytes_per_event, 1),
                 support::TextTable::num(r->allocs_per_event, 3),
                 r == &sr.ladder
                     ? support::TextTable::num(
                           sr.ladder.ops_per_sec / sr.heap.ops_per_sec, 2)
                     : std::string("-")});
    }
  }
  std::printf("%s\n", table.render().c_str());

  FILE* json = bench::open_bench_json("BENCH_kernel.json", "kernel");
  if (json == nullptr) return 1;
  std::fprintf(json, "  \"smoke\": %s,\n  \"sizes\": [\n",
               smoke ? "true" : "false");
  for (std::size_t s = 0; s < all.size(); ++s) {
    const SizeResult& sr = all[s];
    std::fprintf(json, "    {\"pending\": %zu, \"queues\": [\n", sr.pending);
    for (const QueueResult* r : {&sr.heap, &sr.ladder}) {
      std::fprintf(
          json,
          "      {\"queue\": \"%s\", \"schedule_dispatch_per_sec\": %.0f, "
          "\"bytes_per_event\": %.1f, \"allocs_per_event\": %.4f, "
          "\"memory_bytes\": %zu}%s\n",
          r->queue, r->ops_per_sec, r->bytes_per_event, r->allocs_per_event,
          r->memory_bytes, r == &sr.heap ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", s + 1 < all.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_kernel.json\n");
  return 0;
}
