// The seed-era PathCode, preserved verbatim (modulo the class name and the
// inline qualifiers a header-only copy needs) as the differential oracle for
// tests/path_code_diff_test.cpp.
//
// Every golden ScenarioReport fingerprint in the repo was produced while
// this vector<Branch> implementation defined code ordering, equality, hash
// values and wire bytes. The packed small-buffer rewrite in
// core/path_code.hpp must reproduce all of those bit-for-bit; this copy is
// what "bit-for-bit" is measured against, so it must never be "improved" —
// only deleted wholesale if the differential suite is ever retired.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "core/path_code.hpp"  // core::Branch (unchanged by the rewrite)
#include "support/bytes.hpp"
#include "support/check.hpp"

namespace ftbb::bench {

using core::Branch;

/// Immutable-ish sequence of branching decisions from the root — the seed
/// implementation: one heap vector<Branch>, copied wholesale by every
/// derivation, hash recomputed per call.
class LegacyPathCode {
 public:
  LegacyPathCode() = default;
  explicit LegacyPathCode(std::vector<Branch> steps) : steps_(std::move(steps)) {}

  /// The root problem: the empty decision sequence "()".
  static LegacyPathCode root() { return LegacyPathCode{}; }

  [[nodiscard]] bool is_root() const { return steps_.empty(); }
  [[nodiscard]] std::size_t depth() const { return steps_.size(); }
  [[nodiscard]] const std::vector<Branch>& steps() const { return steps_; }
  [[nodiscard]] const Branch& step(std::size_t i) const { return steps_[i]; }
  [[nodiscard]] const Branch& last() const {
    FTBB_CHECK_MSG(!steps_.empty(), "root code has no last step");
    return steps_.back();
  }

  /// Child code reached by branching on `var` toward `bit`.
  [[nodiscard]] LegacyPathCode child(std::uint32_t var, bool bit) const {
    std::vector<Branch> s = steps_;
    s.push_back(Branch{var, static_cast<std::uint8_t>(bit)});
    return LegacyPathCode(std::move(s));
  }

  /// Code of the parent problem; the root has no parent.
  [[nodiscard]] LegacyPathCode parent() const {
    FTBB_CHECK_MSG(!steps_.empty(), "root code has no parent");
    std::vector<Branch> s(steps_.begin(), steps_.end() - 1);
    return LegacyPathCode(std::move(s));
  }

  /// Code of the sibling problem (same parent, other branch).
  [[nodiscard]] LegacyPathCode sibling() const {
    FTBB_CHECK_MSG(!steps_.empty(), "root code has no sibling");
    std::vector<Branch> s = steps_;
    s.back().bit ^= 1;
    return LegacyPathCode(std::move(s));
  }

  /// Prefix of the first `n` decisions (n <= depth()).
  [[nodiscard]] LegacyPathCode prefix(std::size_t n) const {
    FTBB_CHECK(n <= steps_.size());
    return LegacyPathCode(std::vector<Branch>(steps_.begin(), steps_.begin() + n));
  }

  /// True when `this` is an ancestor of `other` or equal to it.
  [[nodiscard]] bool contains(const LegacyPathCode& other) const {
    if (steps_.size() > other.steps_.size()) return false;
    for (std::size_t i = 0; i < steps_.size(); ++i) {
      if (steps_[i] != other.steps_[i]) return false;
    }
    return true;
  }

  /// Strict ancestor test.
  [[nodiscard]] bool is_ancestor_of(const LegacyPathCode& other) const {
    return steps_.size() < other.steps_.size() && contains(other);
  }

  static constexpr std::uint64_t kMaxDepth = 1u << 20;

  /// Wire encoding: varint step count, then per step varint (var<<1 | bit).
  void encode(support::ByteWriter& w) const {
    w.varint(steps_.size());
    for (const Branch& b : steps_) {
      w.varint((static_cast<std::uint64_t>(b.var) << 1) | b.bit);
    }
  }

  static LegacyPathCode decode(support::ByteReader& r) {
    const std::uint64_t n = r.varint();
    if (n > kMaxDepth) r.mark_corrupt("PathCode: implausible depth");
    if (!r.fits_count(n) || !r.ok()) return LegacyPathCode{};
    std::vector<Branch> steps;
    steps.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t packed = r.varint();
      if (!r.ok()) return LegacyPathCode{};
      if ((packed >> 1) > 0xffffffffULL) {
        r.mark_corrupt("PathCode: variable index overflow");
        return LegacyPathCode{};
      }
      steps.push_back(Branch{static_cast<std::uint32_t>(packed >> 1),
                             static_cast<std::uint8_t>(packed & 1)});
    }
    return LegacyPathCode(std::move(steps));
  }

  /// Exact number of bytes encode() will produce.
  [[nodiscard]] std::size_t encoded_size() const {
    std::size_t n = support::varint_size(steps_.size());
    for (const Branch& b : steps_) {
      n += support::varint_size((static_cast<std::uint64_t>(b.var) << 1) | b.bit);
    }
    return n;
  }

  /// Paper notation, e.g. "(<x1,0>,<x2,1>)"; "()" for the root.
  [[nodiscard]] std::string to_string() const {
    if (steps_.empty()) return "()";
    std::string s = "(";
    for (std::size_t i = 0; i < steps_.size(); ++i) {
      if (i) s += ",";
      s += "<x" + std::to_string(steps_[i].var) + "," + std::to_string(int(steps_[i].bit)) + ">";
    }
    s += ")";
    return s;
  }

  friend bool operator==(const LegacyPathCode&, const LegacyPathCode&) = default;
  friend auto operator<=>(const LegacyPathCode& a, const LegacyPathCode& b) {
    return a.steps_ <=> b.steps_;
  }

  /// FNV-1a style hash over the decision sequence.
  [[nodiscard]] std::size_t hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    for (const Branch& b : steps_) {
      mix((static_cast<std::uint64_t>(b.var) << 1) | b.bit);
    }
    mix(steps_.size());
    return static_cast<std::size_t>(h);
  }

 private:
  std::vector<Branch> steps_;
};

}  // namespace ftbb::bench
