// E8 — fault-tolerance overhead ablations (Section 6.3.1 discussion).
//
// The paper: "this overhead can be controlled by tuning various execution
// parameters" — report frequency trades communication/contraction cost
// against termination-detection latency; recovery aggressiveness trades
// redundant work against recovery speed. Three ablations:
//   (a) report batch c and fanout m: overhead vs termination lag;
//   (b) failure-suspicion eagerness (attempts before recovery, and whether
//       denies count): redundant work without failures vs recovery latency
//       with failures;
//   (c) recovery policy: redundant work after a crash.
#include <cstdio>

#include "bench/workloads.hpp"

using namespace ftbb;

namespace {

bnb::BasicTree make_tree() {
  bnb::RandomTreeConfig cfg;
  cfg.target_nodes = 4001;
  cfg.cost_mean = 0.01;
  cfg.seed = 31;
  return bnb::BasicTree::random(cfg);
}

}  // namespace

int main() {
  std::printf("E8 / fault-tolerance overhead ablations, 8 processors\n\n");
  const bnb::BasicTree tree = make_tree();
  bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);

  // ---- (a) report batch & fanout ----
  std::printf("(a) report batch c and fanout m (no failures)\n");
  support::TextTable ta({"c", "m", "makespan (s)", "termination lag (s)",
                         "report bytes", "contraction %"});
  for (const std::uint32_t batch : {2u, 8u, 32u}) {
    for (const std::uint32_t fanout : {1u, 2u, 4u}) {
      sim::ClusterConfig cfg = bench::small_cluster_config(8, 31);
      cfg.worker.report_batch = batch;
      cfg.worker.report_fanout = fanout;
      const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);
      if (!res.all_live_halted) continue;
      ta.row({std::to_string(batch), std::to_string(fanout),
              support::TextTable::num(res.makespan, 2),
              support::TextTable::num(res.makespan - res.first_detection, 3),
              std::to_string(res.net.bytes_sent),
              support::TextTable::pct(
                  res.time_of(core::CostKind::kContraction) / res.time_all(), 2)});
    }
  }
  std::printf("%s\n", ta.render().c_str());

  // ---- (b) failure-suspicion eagerness ----
  std::printf("(b) suspicion eagerness: redundant work without failures vs\n"
              "    recovery delay with 3 of 8 workers crashing mid-run\n");
  const sim::ClusterResult baseline =
      sim::SimCluster::run(problem, bench::small_cluster_config(8, 31));
  support::TextTable tb({"attempts", "denies count?", "redundant (no fail)",
                         "makespan w/ crashes (s)", "redundant w/ crashes"});
  for (const std::uint32_t attempts : {1u, 3u, 6u}) {
    for (const bool denies : {false, true}) {
      sim::ClusterConfig cfg = bench::small_cluster_config(8, 31);
      cfg.worker.attempts_before_recovery = attempts;
      cfg.worker.count_denies_toward_recovery = denies;
      const sim::ClusterResult clean = sim::SimCluster::run(problem, cfg);
      sim::ClusterConfig crash_cfg = cfg;
      crash_cfg.crashes = {{1, baseline.makespan * 0.3},
                           {3, baseline.makespan * 0.5},
                           {6, baseline.makespan * 0.5}};
      crash_cfg.time_limit = 3e4;
      const sim::ClusterResult crashed = sim::SimCluster::run(problem, crash_cfg);
      tb.row({std::to_string(attempts), denies ? "yes" : "no",
              std::to_string(clean.redundant_expansions),
              crashed.all_live_halted ? support::TextTable::num(crashed.makespan, 2)
                                      : "did not finish",
              std::to_string(crashed.redundant_expansions)});
    }
  }
  std::printf("%s\n", tb.render().c_str());

  // ---- (c) recovery policy ----
  std::printf("(c) recovery policy after 3 of 8 workers crash\n");
  support::TextTable tc({"policy", "makespan (s)", "redundant", "recoveries"});
  for (const core::RecoveryPolicy policy :
       {core::RecoveryPolicy::kRandom, core::RecoveryPolicy::kDeepest,
        core::RecoveryPolicy::kShallowest, core::RecoveryPolicy::kNearLastLocal}) {
    sim::ClusterConfig cfg = bench::small_cluster_config(8, 31);
    cfg.worker.recovery = policy;
    cfg.crashes = {{1, baseline.makespan * 0.3},
                   {3, baseline.makespan * 0.5},
                   {6, baseline.makespan * 0.5}};
    cfg.time_limit = 3e4;
    const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);
    std::uint64_t recoveries = 0;
    for (const auto& w : res.workers) recoveries += w.recoveries;
    tc.row({to_string(policy),
            res.all_live_halted ? support::TextTable::num(res.makespan, 2)
                                : "did not finish",
            std::to_string(res.redundant_expansions), std::to_string(recoveries)});
  }
  std::printf("%s", tc.render().c_str());
  std::printf("\nexpected shape: small c / large m spread knowledge faster (lower\n"
              "termination lag) at higher communication cost; eager suspicion\n"
              "(low attempts, denies counted) duplicates work when nothing failed\n"
              "but recovers faster when something did; near-last-local and deepest\n"
              "recovery duplicate less than random/shallowest.\n");
  return 0;
}
