// E3 — Figure 4: speedup and communication curves for the Table 1 run.
//
// Left panel: execution time (hours) vs number of processors.
// Right panel: communication (MB per processor per hour) vs processors.
#include <cstdio>

#include "bench/workloads.hpp"

int main() {
  using namespace ftbb;
  std::printf("E3 / Figure 4: speedup and communication for the large problem\n\n");

  const bnb::BasicTree tree = bench::large_problem();
  bnb::TreeProblem problem(&tree);
  const double uniproc_hours = tree.total_cost() / 3600.0;

  struct Point {
    std::uint32_t procs;
    double hours;
    double mb_per_proc_hour;
    double speedup;
  };
  std::vector<Point> points;
  for (const std::uint32_t procs : {10u, 20u, 30u, 40u, 50u, 60u, 70u, 80u, 90u, 100u}) {
    const sim::ClusterConfig cfg = bench::large_cluster_config(procs);
    const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);
    if (!res.all_live_halted) {
      std::printf("procs=%u FAILED\n", procs);
      return 1;
    }
    const double hours = res.makespan / 3600.0;
    points.push_back({procs, hours,
                      static_cast<double>(res.net.bytes_sent) / 1e6 / hours /
                          static_cast<double>(procs),
                      uniproc_hours / hours});
  }

  std::printf("series 1: execution time (hours) vs processors\n");
  support::TextTable t1({"procs", "exec (h)", "speedup", "efficiency"});
  for (const Point& p : points) {
    t1.row({std::to_string(p.procs), support::TextTable::num(p.hours, 3),
            support::TextTable::num(p.speedup, 1),
            support::TextTable::pct(p.speedup / p.procs, 1)});
  }
  std::printf("%s\n", t1.render().c_str());

  std::printf("series 2: communication (MB/processor/hour) vs processors\n");
  support::TextTable t2({"procs", "MB/proc/h"});
  for (const Point& p : points) {
    t2.row({std::to_string(p.procs),
            support::TextTable::num(p.mb_per_proc_hour, 2)});
  }
  std::printf("%s", t2.render().c_str());
  std::printf("\npaper shape: execution time falls from ~8h at 10 procs to ~1h at\n"
              "100 (near-linear), while per-processor communication rises with the\n"
              "processor count.\n");
  return 0;
}
