// E5 — Figure 6: the same problem as Figure 5, but two of the three
// processors crash at about 85% of the execution time. "The only processor
// available after this moment is able to solve the problem and terminate."
#include <cstdio>

#include "bnb/basic_tree.hpp"
#include "sim/cluster.hpp"

int main() {
  using namespace ftbb;
  std::printf("E5 / Figure 6: two of three processors crash at ~85%% of the "
              "execution\n\n");

  bnb::RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = 301;
  tree_cfg.cost_mean = 0.02;
  tree_cfg.cost_cv = 0.3;
  tree_cfg.seed = 65;
  const bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
  bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);  // every node is real work

  sim::ClusterConfig cfg;
  cfg.workers = 3;
  cfg.seed = 65;
  cfg.worker.report_batch = 4;
  cfg.worker.report_flush_interval = 0.1;
  cfg.worker.table_gossip_interval = 0.4;
  cfg.worker.work_request_timeout = 0.02;
  cfg.worker.idle_backoff = 0.01;

  // Baseline run to locate "85% of the execution".
  const sim::ClusterResult baseline = sim::SimCluster::run(problem, cfg);
  const double when = baseline.makespan * 0.85;

  sim::ClusterConfig crash_cfg = cfg;
  crash_cfg.record_trace = true;
  crash_cfg.crashes = {{1, when}, {2, when}};
  const sim::ClusterResult res = sim::SimCluster::run(problem, crash_cfg);

  std::printf("%s\n", res.timeline.render_ascii(3, 100).c_str());
  std::printf("failure-free makespan : %.2fs\n", baseline.makespan);
  std::printf("crash injected        : P1 and P2 at %.2fs\n", when);
  std::printf("survivor terminated   : %s at %.2fs (+%.0f%%)\n",
              res.all_live_halted ? "yes" : "NO", res.makespan,
              100.0 * (res.makespan / baseline.makespan - 1.0));
  std::printf("solution              : %.3f (optimum %.3f, %s)\n", res.solution,
              tree.optimal_value(),
              res.solution == tree.optimal_value() ? "exact" : "WRONG");
  std::printf("lost work recovered   : %llu complement recoveries, "
              "%llu redundant expansions\n",
              static_cast<unsigned long long>(res.workers[0].recoveries),
              static_cast<unsigned long long>(res.redundant_expansions));
  return res.all_live_halted && res.solution == tree.optimal_value() ? 0 : 1;
}
