// E6 — work-report compression vs load (Section 5.3.2) plus the wire-layer
// comparison: the same traffic priced under the legacy flat encoding and the
// v1 delta-coded frames.
//
// "Simulations performed on real B&B trees confirmed that the compression
// rate is better when processors are sufficiently loaded: the taller the
// subtree completed locally, the larger the number of codes that do not
// need to be sent."
//
// Two sweeps on a fixed exhaustive tree:
//   (a) report batch size c — more completions per report => taller merged
//       subtrees => fewer codes per completion;
//   (b) processor count — more processors => fewer completions each => the
//       same batch covers scattered regions => weaker compression.
// Every run speaks kV1 on the wire; the frame codec prices the identical
// traffic in the legacy encoding as it goes (WireStats.flat_bytes), so one
// run yields both sides of the comparison. Results land in
// BENCH_compression.json. `--smoke` shrinks the tree and the sweeps for CI.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_timing.hpp"
#include "bench/workloads.hpp"

namespace {

struct Cell {
  std::string sweep;  // "batch" or "procs"
  std::uint32_t procs = 0;
  std::uint32_t batch = 0;
  double codes_per_completion = 0.0;
  double v1_bytes_per_node = 0.0;
  double legacy_bytes_per_node = 0.0;
  double v1_report_bytes_per_node = 0.0;
  double legacy_report_bytes_per_node = 0.0;
  double msgs_per_node = 0.0;
  double report_reduction = 0.0;  // 1 - v1/legacy over report frames
  std::uint64_t self_contained = 0;
  std::uint64_t delta = 0;
};

Cell measure(const ftbb::bnb::TreeProblem& problem, std::uint32_t procs,
             std::uint32_t batch, const char* sweep) {
  using namespace ftbb;
  sim::ClusterConfig cfg = bench::small_cluster_config(procs, 17);
  cfg.worker.report_batch = batch;
  cfg.worker.report_flush_interval = 5.0;  // let batches fill
  cfg.worker.compress_against_table = true;
  cfg.wire = core::FrameVersion::kV1;
  const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);

  Cell c;
  c.sweep = sweep;
  c.procs = procs;
  c.batch = batch;
  const double nodes = static_cast<double>(res.total_expanded);
  c.codes_per_completion = static_cast<double>(res.total_report_codes) /
                           static_cast<double>(res.total_completions);
  c.v1_bytes_per_node = static_cast<double>(res.wire.frame_bytes) / nodes;
  c.legacy_bytes_per_node = static_cast<double>(res.wire.flat_bytes) / nodes;
  c.v1_report_bytes_per_node =
      static_cast<double>(res.wire.report_frame_bytes) / nodes;
  c.legacy_report_bytes_per_node =
      static_cast<double>(res.wire.report_flat_bytes) / nodes;
  c.msgs_per_node = static_cast<double>(res.wire.frames) / nodes;
  c.report_reduction =
      res.wire.report_flat_bytes > 0
          ? 1.0 - static_cast<double>(res.wire.report_frame_bytes) /
                      static_cast<double>(res.wire.report_flat_bytes)
          : 0.0;
  c.self_contained = res.wire.self_contained_reports;
  c.delta = res.wire.delta_reports;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftbb;
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("E6 / compression rate vs load (Section 5.3.2 claim)%s\n\n",
              smoke ? " [smoke]" : "");

  bnb::RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = smoke ? 4001 : 20001;
  tree_cfg.cost_mean = 0.01;
  tree_cfg.seed = 17;
  const bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
  bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);

  std::vector<Cell> cells;

  std::printf("(a) batch size sweep at 4 processors (lower = better)\n");
  support::TextTable ta({"batch c", "codes/compl", "v1 B/node", "legacy B/node",
                         "report reduction"});
  const std::vector<std::uint32_t> batches =
      smoke ? std::vector<std::uint32_t>{4, 16}
            : std::vector<std::uint32_t>{2, 4, 8, 16, 32, 64};
  for (const std::uint32_t batch : batches) {
    const Cell c = measure(problem, 4, batch, "batch");
    cells.push_back(c);
    ta.row({std::to_string(batch),
            support::TextTable::num(c.codes_per_completion, 3),
            support::TextTable::num(c.v1_bytes_per_node, 2),
            support::TextTable::num(c.legacy_bytes_per_node, 2),
            support::TextTable::num(100.0 * c.report_reduction, 1) + "%"});
  }
  std::printf("%s\n", ta.render().c_str());

  std::printf("(b) processor sweep at batch c=16\n");
  support::TextTable tb({"procs", "codes/compl", "v1 B/node", "legacy B/node",
                         "msgs/node", "report reduction"});
  const std::vector<std::uint32_t> procs_sweep =
      smoke ? std::vector<std::uint32_t>{2, 8}
            : std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32};
  for (const std::uint32_t procs : procs_sweep) {
    const Cell c = measure(problem, procs, 16, "procs");
    cells.push_back(c);
    tb.row({std::to_string(procs),
            support::TextTable::num(c.codes_per_completion, 3),
            support::TextTable::num(c.v1_bytes_per_node, 2),
            support::TextTable::num(c.legacy_bytes_per_node, 2),
            support::TextTable::num(c.msgs_per_node, 3),
            support::TextTable::num(100.0 * c.report_reduction, 1) + "%"});
  }
  std::printf("%s\n", tb.render().c_str());

  bool v1_wins_everywhere = true;
  for (const Cell& c : cells) {
    // A solo run reports to nobody; only cells with report traffic count.
    if (c.legacy_report_bytes_per_node > 0.0 &&
        c.v1_report_bytes_per_node >= c.legacy_report_bytes_per_node) {
      v1_wins_everywhere = false;
    }
  }

  FILE* json = bench::open_bench_json("BENCH_compression.json", "compression");
  if (json == nullptr) return 1;
  std::fprintf(json,
               "  \"workload\": \"basic-tree-%u\",\n  \"smoke\": %s,\n"
               "  \"v1_reduces_report_bytes_everywhere\": %s,\n  \"cells\": [\n",
               tree_cfg.target_nodes, smoke ? "true" : "false",
               v1_wins_everywhere ? "true" : "false");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        json,
        "    {\"sweep\": \"%s\", \"procs\": %u, \"batch\": %u, "
        "\"codes_per_completion\": %.4f, \"msgs_per_node\": %.4f, "
        "\"v1_bytes_per_node\": %.4f, \"legacy_bytes_per_node\": %.4f, "
        "\"v1_report_bytes_per_node\": %.4f, "
        "\"legacy_report_bytes_per_node\": %.4f, "
        "\"report_reduction\": %.4f, "
        "\"self_contained_reports\": %llu, \"delta_reports\": %llu}%s\n",
        c.sweep.c_str(), c.procs, c.batch, c.codes_per_completion,
        c.msgs_per_node, c.v1_bytes_per_node, c.legacy_bytes_per_node,
        c.v1_report_bytes_per_node, c.legacy_report_bytes_per_node,
        c.report_reduction, static_cast<unsigned long long>(c.self_contained),
        static_cast<unsigned long long>(c.delta),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_compression.json\n");

  std::printf("\nexpected shape: compression improves (codes/completion falls)\n"
              "with larger batches and degrades as the same tree is spread over\n"
              "more processors; v1 frames undercut the legacy flat encoding on\n"
              "report bytes in every cell (%s here).\n",
              v1_wins_everywhere ? "holds" : "VIOLATED");
  return v1_wins_everywhere ? 0 : 1;
}
