// E6 — work-report compression vs load (Section 5.3.2).
//
// "Simulations performed on real B&B trees confirmed that the compression
// rate is better when processors are sufficiently loaded: the taller the
// subtree completed locally, the larger the number of codes that do not
// need to be sent."
//
// Two sweeps on a fixed exhaustive tree:
//   (a) report batch size c — more completions per report => taller merged
//       subtrees => fewer codes per completion;
//   (b) processor count — more processors => fewer completions each => the
//       same batch covers scattered regions => weaker compression.
// Also compares the paper-literal scheme (contract the list against itself)
// with the table-assisted variant.
#include <cstdio>

#include "bench/workloads.hpp"

int main() {
  using namespace ftbb;
  std::printf("E6 / compression rate vs load (Section 5.3.2 claim)\n\n");

  bnb::RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = 20001;
  tree_cfg.cost_mean = 0.01;
  tree_cfg.seed = 17;
  const bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
  bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);

  auto run = [&](std::uint32_t procs, std::uint32_t batch, bool table_assist) {
    sim::ClusterConfig cfg = bench::small_cluster_config(procs, 17);
    cfg.worker.report_batch = batch;
    cfg.worker.report_flush_interval = 5.0;  // let batches fill
    cfg.worker.compress_against_table = table_assist;
    return sim::SimCluster::run(problem, cfg);
  };

  std::printf("(a) batch size sweep at 4 processors (codes sent per completion;\n"
              "    lower = better compression)\n");
  support::TextTable ta({"batch c", "codes/completion (list-only)",
                         "codes/completion (table-assisted)"});
  for (const std::uint32_t batch : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto lit = run(4, batch, false);
    const auto assisted = run(4, batch, true);
    ta.row({std::to_string(batch),
            support::TextTable::num(static_cast<double>(lit.total_report_codes) /
                                        static_cast<double>(lit.total_completions),
                                    3),
            support::TextTable::num(
                static_cast<double>(assisted.total_report_codes) /
                    static_cast<double>(assisted.total_completions),
                3)});
  }
  std::printf("%s\n", ta.render().c_str());

  std::printf("(b) processor sweep at batch c=16\n");
  support::TextTable tb({"procs", "codes/completion", "report bytes total"});
  for (const std::uint32_t procs : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto res = run(procs, 16, true);
    tb.row({std::to_string(procs),
            support::TextTable::num(static_cast<double>(res.total_report_codes) /
                                        static_cast<double>(res.total_completions),
                                    3),
            std::to_string(res.net.bytes_sent)});
  }
  std::printf("%s", tb.render().c_str());
  std::printf("\nexpected shape: compression improves (ratio falls) with larger\n"
              "batches and degrades as the same tree is spread over more\n"
              "processors — exactly the paper's \"sufficiently loaded\" effect.\n");
  return 0;
}
