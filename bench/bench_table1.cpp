// E2 — Table 1: simulated execution of the large problem (~79,600 expanded
// nodes, 3.47 s mean node cost, ~76.7 h uniprocessor) on 10..100 processors.
//
// Paper columns: execution time (hours), B&B time %, contraction time %,
// storage space (total MB / redundant MB), communication MB/hour/processor.
//
// Paper's values for reference:
//   procs  exec(h)  BB%     contr%  stor(MB) redun(MB)  MB/h/proc
//   10     7.93     98.11%  0.35%   0.42     0.16       1.01
//   30     2.91     90.42%  5.20%   3.76     1.92       1.40
//   50     2.00     81.19%  11.73%  12.65    6.43       2.34
//   70     1.37     87.32%  2.33%   19.81    10.13      3.16
//   100    1.04     84.40%  1.13%   43.06    21.88      4.56
// Additionally measures the simulation kernel itself: the same Table-1-scale
// search replayed on the sequential and sharded executors (--threads=1,2,4 or
// FTBB_SIM_THREADS), reporting events/second per thread count to
// BENCH_table1.json so the kernel's perf trajectory is tracked across PRs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_timing.hpp"
#include "bench/workloads.hpp"
#include "bnb/sequential.hpp"

namespace {

/// Thread counts to sweep: "--threads=2,4" wins, else FTBB_SIM_THREADS (a
/// single value, the same semantics every other entry point gives the
/// variable), else {2, 4}. A 1-thread run is always prepended — it is the
/// sequential baseline that speedups and the bit-identity cross-check are
/// measured against.
std::vector<std::uint32_t> thread_counts(int argc, char** argv) {
  std::string list;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) list = argv[i] + 10;
  }
  std::vector<std::uint32_t> counts = {1};  // the sequential baseline, always
  if (list.empty()) {
    if (std::getenv("FTBB_SIM_THREADS") != nullptr) {
      const std::uint32_t env = ftbb::sim::resolve_sim_threads(0);
      if (env > 1) counts.push_back(env);
      return counts;
    }
    list = "2,4";
  }
  const char* p = list.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    if (v > 1) counts.push_back(static_cast<std::uint32_t>(v));
    p = *end == ',' ? end + 1 : end;
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftbb;
  std::printf("E2 / Table 1: large problem on 10..100 processors\n");

  const bnb::BasicTree tree = bench::large_problem();
  bnb::TreeProblem problem(&tree);
  std::printf("problem: %zu-node basic tree, mean cost %.2fs/node, "
              "%.1fh uniprocessor\n\n",
              tree.size(), bench::kLargeNodeCost, tree.total_cost() / 3600.0);

  support::TextTable table({"procs", "exec (h)", "BB %", "contraction %",
                            "storage (MB)", "redundant (MB)", "MB/h/proc"});
  for (const std::uint32_t procs : {10u, 30u, 50u, 70u, 100u}) {
    const sim::ClusterConfig cfg = bench::large_cluster_config(procs);
    const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);
    if (!res.all_live_halted || res.solution != tree.optimal_value()) {
      std::printf("procs=%u FAILED (halted=%d)\n", procs, res.all_live_halted);
      return 1;
    }
    const double total = res.time_all();
    const double hours = res.makespan / 3600.0;
    const double storage_mb =
        static_cast<double>(res.peak_table_bytes_total) / 1e6;
    const double redundant_mb =
        static_cast<double>(res.peak_table_bytes_total -
                            res.peak_table_bytes_unique) / 1e6;
    const double mb_per_proc_hour = static_cast<double>(res.net.bytes_sent) /
                                    1e6 / hours / static_cast<double>(procs);
    table.row({std::to_string(procs), support::TextTable::num(hours, 2),
               support::TextTable::pct(res.time_of(core::CostKind::kBB) / total, 2),
               support::TextTable::pct(
                   res.time_of(core::CostKind::kContraction) / total, 2),
               support::TextTable::num(storage_mb, 2),
               support::TextTable::num(redundant_mb, 2),
               support::TextTable::num(mb_per_proc_hour, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper shape: near-linear speedup to 100 processors with B&B share\n"
              "declining (98%% -> ~84%%); storage grows superlinearly with the\n"
              "processor count and is dominated by redundant copies; communication\n"
              "per processor-hour increases with the processor count.\n");

  // -- kernel throughput: Table-1-scale search, sequential vs sharded -------
  std::printf("\nkernel throughput: %llu-node tree, 100 workers, %.3fs/node\n",
              static_cast<unsigned long long>(bench::kLargeNodes),
              bench::kSmallNodeCost);
  const bnb::BasicTree dense = bench::large_problem_dense();
  bnb::TreeProblem dense_problem(&dense);
  sim::ClusterConfig dense_cfg = bench::small_cluster_config(100);
  dense_cfg.storage_sample_interval = 1.0;

  struct Sample {
    std::uint32_t threads = 0;
    std::uint64_t events = 0;
    double wall_seconds = 0.0;
  };
  std::vector<Sample> samples;
  double baseline_solution = 0.0;
  std::uint64_t baseline_events = 0;
  support::TextTable speedup_table(
      {"threads", "events", "wall (s)", "events/s", "speedup"});
  double sequential_wall = 0.0;
  for (const std::uint32_t threads : thread_counts(argc, argv)) {
    dense_cfg.sim_threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const sim::ClusterResult res = sim::SimCluster::run(dense_problem, dense_cfg);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!res.all_live_halted || res.solution != dense.optimal_value()) {
      std::printf("threads=%u FAILED (halted=%d)\n", threads, res.all_live_halted);
      return 1;
    }
    if (samples.empty()) {
      baseline_solution = res.solution;
      baseline_events = res.kernel_events;
      sequential_wall = wall;
    } else if (res.solution != baseline_solution ||
               res.kernel_events != baseline_events) {
      std::printf("threads=%u DIVERGED from the sequential run\n", threads);
      return 1;
    }
    samples.push_back(Sample{threads, res.kernel_events, wall});
    speedup_table.row(
        {std::to_string(threads), std::to_string(res.kernel_events),
         support::TextTable::num(wall, 2),
         support::TextTable::num(static_cast<double>(res.kernel_events) / wall, 0),
         support::TextTable::num(sequential_wall / wall, 2)});
  }
  std::printf("%s", speedup_table.render().c_str());

  FILE* json = bench::open_bench_json("BENCH_table1.json", "table1");
  if (json == nullptr) return 1;
  std::fprintf(json,
               "  \"workload\": \"basic-tree-%llu@%.3fs\",\n"
               "  \"workers\": 100,\n  \"throughput\": [\n",
               static_cast<unsigned long long>(bench::kLargeNodes),
               bench::kSmallNodeCost);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(json,
                 "    {\"threads\": %u, \"events\": %llu, \"wall_seconds\": "
                 "%.6f, \"events_per_sec\": %.0f, \"speedup\": %.3f}%s\n",
                 s.threads, static_cast<unsigned long long>(s.events),
                 s.wall_seconds,
                 static_cast<double>(s.events) / s.wall_seconds,
                 sequential_wall / s.wall_seconds,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_table1.json\n");
  return 0;
}
