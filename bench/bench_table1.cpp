// E2 — Table 1: simulated execution of the large problem (~79,600 expanded
// nodes, 3.47 s mean node cost, ~76.7 h uniprocessor) on 10..100 processors.
//
// Paper columns: execution time (hours), B&B time %, contraction time %,
// storage space (total MB / redundant MB), communication MB/hour/processor.
//
// Paper's values for reference:
//   procs  exec(h)  BB%     contr%  stor(MB) redun(MB)  MB/h/proc
//   10     7.93     98.11%  0.35%   0.42     0.16       1.01
//   30     2.91     90.42%  5.20%   3.76     1.92       1.40
//   50     2.00     81.19%  11.73%  12.65    6.43       2.34
//   70     1.37     87.32%  2.33%   19.81    10.13      3.16
//   100    1.04     84.40%  1.13%   43.06    21.88      4.56
#include <cstdio>

#include "bench/workloads.hpp"
#include "bnb/sequential.hpp"

int main() {
  using namespace ftbb;
  std::printf("E2 / Table 1: large problem on 10..100 processors\n");

  const bnb::BasicTree tree = bench::large_problem();
  bnb::TreeProblem problem(&tree);
  std::printf("problem: %zu-node basic tree, mean cost %.2fs/node, "
              "%.1fh uniprocessor\n\n",
              tree.size(), bench::kLargeNodeCost, tree.total_cost() / 3600.0);

  support::TextTable table({"procs", "exec (h)", "BB %", "contraction %",
                            "storage (MB)", "redundant (MB)", "MB/h/proc"});
  for (const std::uint32_t procs : {10u, 30u, 50u, 70u, 100u}) {
    const sim::ClusterConfig cfg = bench::large_cluster_config(procs);
    const sim::ClusterResult res = sim::SimCluster::run(problem, cfg);
    if (!res.all_live_halted || res.solution != tree.optimal_value()) {
      std::printf("procs=%u FAILED (halted=%d)\n", procs, res.all_live_halted);
      return 1;
    }
    const double total = res.time_all();
    const double hours = res.makespan / 3600.0;
    const double storage_mb =
        static_cast<double>(res.peak_table_bytes_total) / 1e6;
    const double redundant_mb =
        static_cast<double>(res.peak_table_bytes_total -
                            res.peak_table_bytes_unique) / 1e6;
    const double mb_per_proc_hour = static_cast<double>(res.net.bytes_sent) /
                                    1e6 / hours / static_cast<double>(procs);
    table.row({std::to_string(procs), support::TextTable::num(hours, 2),
               support::TextTable::pct(res.time_of(core::CostKind::kBB) / total, 2),
               support::TextTable::pct(
                   res.time_of(core::CostKind::kContraction) / total, 2),
               support::TextTable::num(storage_mb, 2),
               support::TextTable::num(redundant_mb, 2),
               support::TextTable::num(mb_per_proc_hour, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper shape: near-linear speedup to 100 processors with B&B share\n"
              "declining (98%% -> ~84%%); storage grows superlinearly with the\n"
              "processor count and is dominated by redundant copies; communication\n"
              "per processor-hour increases with the processor count.\n");
  return 0;
}
