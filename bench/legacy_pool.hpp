// The seed flat-heap ActivePool, preserved verbatim as a reference model.
//
// bench_pool measures the indexed pool against it, and the differential test
// (tests/pool_diff_test.cpp) asserts the two agree operation-for-operation —
// including the heap-array order in which removals report their victims,
// which the worker's completion pipeline observably depends on.
//
// Known tie subtlety: extract_for_sharing here uses an unstable std::sort
// keyed (depth, bound, code). When two entries carry an identical
// (code, bound) pair — possible via redundant grants — and the k boundary
// falls between them, which copy is taken is unspecified by this reference;
// the indexed pool resolves such ties deterministically by insertion order.
// The copies are value-identical, so every observable downstream of the
// worker is unaffected either way; only this reference's internal layout
// could differ, and only on a standard library whose sort orders the tie
// differently.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "bnb/pool.hpp"
#include "bnb/problem.hpp"
#include "support/check.hpp"

namespace ftbb::bench {

/// Binary-heap pool ordered by the configured selection rule — the seed
/// implementation: O(n) best_bound, O(n)+rebuild per removal flavor, full
/// sort per extraction.
class LegacyPool {
 public:
  explicit LegacyPool(bnb::SelectRule rule = bnb::SelectRule::kBestFirst)
      : rule_(rule) {}

  void push(bnb::Subproblem p) {
    entries_.push_back(std::move(p));
    sift_up(entries_.size() - 1);
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  void clear() { entries_.clear(); }

  bnb::Subproblem pop() {
    FTBB_CHECK_MSG(!entries_.empty(), "pop from empty pool");
    bnb::Subproblem top = std::move(entries_.front());
    entries_.front() = std::move(entries_.back());
    entries_.pop_back();
    if (!entries_.empty()) sift_down(0);
    return top;
  }

  [[nodiscard]] double best_bound() const {
    double best = bnb::kInfinity;
    for (const bnb::Subproblem& p : entries_) best = std::min(best, p.bound);
    return best;
  }

  std::vector<bnb::Subproblem> remove_if(
      const std::function<bool(const bnb::Subproblem&)>& victim) {
    std::vector<bnb::Subproblem> removed;
    std::size_t write = 0;
    for (std::size_t read = 0; read < entries_.size(); ++read) {
      if (victim(entries_[read])) {
        removed.push_back(std::move(entries_[read]));
      } else {
        if (write != read) entries_[write] = std::move(entries_[read]);
        ++write;
      }
    }
    if (!removed.empty()) {
      entries_.resize(write);
      rebuild();
    }
    return removed;
  }

  std::vector<bnb::Subproblem> extract_for_sharing(std::size_t k) {
    k = std::min(k, entries_.size());
    if (k == 0) return {};
    std::vector<std::size_t> idx(entries_.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [this](std::size_t a, std::size_t b) {
      const bnb::Subproblem& pa = entries_[a];
      const bnb::Subproblem& pb = entries_[b];
      if (pa.code.depth() != pb.code.depth()) return pa.code.depth() < pb.code.depth();
      if (pa.bound != pb.bound) return pa.bound < pb.bound;
      return pa.code < pb.code;
    });
    std::vector<bool> take(entries_.size(), false);
    for (std::size_t i = 0; i < k; ++i) take[idx[i]] = true;
    std::vector<bnb::Subproblem> out;
    out.reserve(k);
    std::vector<bnb::Subproblem> kept;
    kept.reserve(entries_.size() - k);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (take[i]) {
        out.push_back(std::move(entries_[i]));
      } else {
        kept.push_back(std::move(entries_[i]));
      }
    }
    entries_ = std::move(kept);
    rebuild();
    return out;
  }

  [[nodiscard]] const std::vector<bnb::Subproblem>& entries() const {
    return entries_;
  }

 private:
  [[nodiscard]] bool ranks_before(const bnb::Subproblem& a,
                                  const bnb::Subproblem& b) const {
    switch (rule_) {
      case bnb::SelectRule::kBestFirst:
        if (a.bound != b.bound) return a.bound < b.bound;
        if (a.code.depth() != b.code.depth()) return a.code.depth() > b.code.depth();
        break;
      case bnb::SelectRule::kDepthFirst:
        if (a.code.depth() != b.code.depth()) return a.code.depth() > b.code.depth();
        if (a.bound != b.bound) return a.bound < b.bound;
        break;
      case bnb::SelectRule::kBreadthFirst:
        if (a.code.depth() != b.code.depth()) return a.code.depth() < b.code.depth();
        if (a.bound != b.bound) return a.bound < b.bound;
        break;
    }
    return a.code < b.code;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!ranks_before(entries_[i], entries_[parent])) break;
      std::swap(entries_[i], entries_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = entries_.size();
    while (true) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && ranks_before(entries_[l], entries_[best])) best = l;
      if (r < n && ranks_before(entries_[r], entries_[best])) best = r;
      if (best == i) return;
      std::swap(entries_[i], entries_[best]);
      i = best;
    }
  }

  void rebuild() {
    if (entries_.size() < 2) return;
    for (std::size_t i = entries_.size() / 2; i-- > 0;) sift_down(i);
  }

  bnb::SelectRule rule_;
  std::vector<bnb::Subproblem> entries_;
};

}  // namespace ftbb::bench
