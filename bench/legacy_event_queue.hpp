// The seed kernel's pending-event store, preserved verbatim as the reference
// model for the ladder EventQueue (sim/event_queue.hpp).
//
// This is the exact data structure both executors dispatched from before the
// ladder rewrite: one std::vector binary heap ordered by the canonical
// (t, src, seq) stamp through std::push_heap/std::pop_heap, with the
// comparator written as a "later than" predicate so the vector front is the
// earliest event. Every golden ScenarioReport fingerprint in the repo was
// minted against this order, which makes it the ground truth that
// tests/event_queue_diff_test.cpp replays against the ladder queue — any
// dispatch-order divergence, including within dense same-timestamp tie
// storms where only (src, seq) discriminates, is a regression in the new
// queue, not a tie-break judgement call.
//
// Callbacks here are std::function (as in the seed), so this queue also
// serves as the allocation-behavior baseline in bench/bench_kernel.cpp:
// bytes/event and mallocs/event of heap+std::function versus
// ladder+InlineCallback.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"  // OwnerId / kControlOwner

namespace ftbb::bench {

class LegacyEventQueue {
 public:
  /// One scheduled callback, exactly as the seed executor stored it.
  struct Event {
    double t = 0.0;
    sim::OwnerId src = sim::kControlOwner;
    std::uint64_t seq = 0;
    sim::OwnerId owner = sim::kControlOwner;
    std::function<void()> fn;
  };

  void push(double t, sim::OwnerId src, std::uint64_t seq, sim::OwnerId owner,
            std::function<void()> fn) {
    heap_.push_back(Event{t, src, seq, owner, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), later);
  }

  [[nodiscard]] const Event* peek() const {
    return heap_.empty() ? nullptr : &heap_.front();
  }

  /// Pops the earliest event by moving it out of the vector — the seed's
  /// legitimate replacement for const_cast extraction from priority_queue.
  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  [[nodiscard]] std::size_t memory_bytes() const {
    return heap_.capacity() * sizeof(Event);
  }

 private:
  /// Canonical order, as a "later than" predicate so std::push_heap/pop_heap
  /// build a min-heap — verbatim from the seed executor.
  static bool later(const Event& a, const Event& b) {
    if (a.t != b.t) return a.t > b.t;
    if (a.src != b.src) return a.src > b.src;
    return a.seq > b.seq;
  }

  std::vector<Event> heap_;
};

}  // namespace ftbb::bench
