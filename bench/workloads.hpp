// Shared workloads and configurations for the benchmark harness.
//
// Two reference problems drive the paper's evaluation (Section 6.3):
//
//  * the SMALL problem (Figure 3): a real B&B tree recorded from an
//    instrumented knapsack run (a "basic tree", Section 6.2) at the paper's
//    0.01 s/node granularity. The paper's instance expands ~3,500 nodes;
//    the largest instance whose FULL tree is still recordable here expands
//    1,632 (see EXPERIMENTS.md) — same granularity regime, so the
//    overhead-vs-processors shape is preserved;
//
//  * the LARGE problem (Table 1 / Figure 4): ~79,600 expanded nodes at a
//    mean of 3.47 s per node (~76.7 hours of uniprocessor work). Recording
//    a real tree of this size without elimination is infeasible — the paper
//    says as much — so, like the paper's own scalability runs, it is a
//    synthetic basic tree whose node count is the controlled quantity.
//
// Both use the paper's communication model: latency = 1.5 + 0.005*L ms.
//
// Protocol timeouts scale with subproblem granularity: a work request must
// outlive a peer's current expansion or busy peers masquerade as dead ones
// (the paper's closing observation that parameters must adapt to "execution
// time per subproblem").
#pragma once

#include <cstdio>

#include "bnb/basic_tree.hpp"
#include "bnb/knapsack.hpp"
#include "bnb/shifty.hpp"
#include "core/worker.hpp"
#include "sim/cluster.hpp"
#include "support/table.hpp"

namespace ftbb::bench {

// Calibrated instance constants (see EXPERIMENTS.md).
inline constexpr std::size_t kSmallItems = 18;
inline constexpr std::uint64_t kSmallSeed = 2;
inline constexpr double kSmallNodeCost = 0.01;   // paper Figure 3
inline constexpr std::uint64_t kLargeNodes = 79601;
inline constexpr double kLargeNodeCost = 3.47;   // paper Table 1

/// Figure 3 problem: recorded knapsack basic tree (262,651 nodes);
/// sequential best-first B&B expands 1,632 of them at 0.01 s/node.
inline bnb::BasicTree small_problem() {
  bnb::NodeCostModel cost;
  cost.mean = kSmallNodeCost;
  cost.cv = 0.3;
  cost.seed = 5;
  const auto instance = bnb::KnapsackInstance::strongly_correlated(
      kSmallItems, 100, 0.5, kSmallSeed);
  bnb::KnapsackModel model(instance, cost);
  return bnb::BasicTree::record(model, 600000);
}

/// Table 1 / Figure 4 problem: 79,601 nodes at 3.47 s/node.
inline bnb::BasicTree large_problem() {
  bnb::RandomTreeConfig cfg;
  cfg.target_nodes = kLargeNodes;
  cfg.cost_mean = kLargeNodeCost;
  cfg.cost_cv = 0.25;
  cfg.seed = 20000509;
  cfg.depth_bias = 0.6;
  // Feasible values sit far above the bounds: the tree is traversed in
  // full, so "nodes expanded" equals the node count (the paper's random
  // trees are likewise "tested without eliminating the unpromising nodes").
  cfg.value_slack_mean = 1e7;
  return bnb::BasicTree::random(cfg);
}

/// Table-1-scale tree at Figure-3 granularity (0.01 s/node): the same
/// 79,601-node search, but with a dense event stream. Used by the kernel
/// throughput benchmark — at 3.47 s/node the events inside one conservative
/// lookahead window (1.5 ms, the network latency floor) are too sparse for
/// sharding to have anything to run in parallel; at 0.01 s/node a
/// 100-worker run dispatches tens of events per window.
inline bnb::BasicTree large_problem_dense() {
  bnb::RandomTreeConfig cfg;
  cfg.target_nodes = kLargeNodes;
  cfg.cost_mean = kSmallNodeCost;
  cfg.cost_cv = 0.25;
  cfg.seed = 20000509;
  cfg.depth_bias = 0.6;
  cfg.value_slack_mean = 1e7;
  return bnb::BasicTree::random(cfg);
}

/// Adversarial workload: the branching factor and per-node cost shift
/// mid-solve (bnb/shifty.hpp), so any fixed report/timeout tuning is wrong
/// for half of the tree. Used to exercise the cost-model controller.
inline bnb::ShiftyProblem small_shifty(std::uint32_t depth = 12,
                                       std::uint64_t seed = 7) {
  bnb::ShiftyOptions opts;
  opts.depth_limit = depth;
  return bnb::ShiftyProblem(seed, opts);
}

/// Worker tuning for the small (10 ms granularity) problem.
inline core::WorkerConfig small_worker_config() {
  core::WorkerConfig w;
  w.report_batch = 8;
  w.report_flush_interval = 0.25;
  w.report_fanout = 2;
  w.table_gossip_interval = 1.0;
  w.work_request_timeout = 0.03;
  w.idle_backoff = 0.01;
  w.initial_stagger = 0.01;
  w.attempts_before_recovery = 3;
  return w;
}

/// Worker tuning for the large (3.47 s granularity) problem.
inline core::WorkerConfig large_worker_config() {
  core::WorkerConfig w;
  w.report_batch = 8;
  w.report_flush_interval = 5.0;
  w.report_fanout = 2;
  w.table_gossip_interval = 30.0;
  w.work_request_timeout = 7.0;  // > node cost, so busy peers can answer
  w.idle_backoff = 1.5;
  w.initial_stagger = 0.5;
  w.attempts_before_recovery = 3;
  return w;
}

/// Cluster configuration for large-problem runs.
inline sim::ClusterConfig large_cluster_config(std::uint32_t workers,
                                               std::uint64_t seed = 1) {
  sim::ClusterConfig cfg;
  cfg.workers = workers;
  cfg.worker = large_worker_config();
  cfg.seed = seed;
  cfg.time_limit = 3e5;
  cfg.storage_sample_interval = 60.0;
  return cfg;
}

/// Cluster configuration for small-problem runs.
inline sim::ClusterConfig small_cluster_config(std::uint32_t workers,
                                               std::uint64_t seed = 1) {
  sim::ClusterConfig cfg;
  cfg.workers = workers;
  cfg.worker = small_worker_config();
  cfg.seed = seed;
  cfg.time_limit = 3e4;
  cfg.storage_sample_interval = 1.0;
  return cfg;
}

/// Prints the standard outcome line every bench emits.
inline void print_outcome(const char* label, const sim::ClusterResult& res,
                          double optimal) {
  std::printf("%s: %s, solution %s (makespan %.2fs, %llu expanded, %llu redundant)\n",
              label,
              res.all_live_halted ? "terminated" : "DID NOT TERMINATE",
              res.solution == optimal ? "exact" : "WRONG",
              res.makespan,
              static_cast<unsigned long long>(res.total_expanded),
              static_cast<unsigned long long>(res.redundant_expansions));
}

}  // namespace ftbb::bench
