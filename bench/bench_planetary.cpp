// Planetary-scale dispatch throughput: how fast the simulation engine
// pushes events through a hierarchical LAN/campus/WAN population under the
// planetary storm (heavy-tailed churn, correlated rack failures, cascading
// cross-tier partitions, background loss).
//
// For each population size the same truncated run (fixed virtual-time
// horizon, so every variant dispatches the identical event set) executes
// three ways:
//
//   * sequential            — the single-threaded kernel baseline;
//   * sharded / barrier     — 4 dispatch threads, classic global-barrier
//                             lookahead (every window bounded by the one
//                             rack-tier minimum latency);
//   * sharded / channel     — 4 dispatch threads, per-channel lookahead
//                             (windows bounded per shard pair by the
//                             campus/WAN tier floors).
//
// All three produce bit-identical simulations — the bench asserts the
// counters match — so the only number that moves is wall-clock events/sec.
// On a single-core CI runner ~1.0x between variants is expected; the curve
// of population vs throughput is the artifact. Results go to
// BENCH_planetary.json. `--smoke` shrinks populations and horizon for CI.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_timing.hpp"
#include "fault/schedule.hpp"
#include "sim/cluster.hpp"
#include "sim/scenario.hpp"
#include "support/table.hpp"

namespace {

using namespace ftbb;

constexpr std::uint32_t kNodesPerRack = 32;
constexpr std::uint32_t kRacksPerCampus = 8;

struct VariantResult {
  const char* name;
  std::uint32_t threads = 1;
  bool per_channel = false;
  /// How dispatch windows are bounded: "none" (sequential — no windows),
  /// "global-barrier" (conservative global lookahead), or "per-channel"
  /// (pairwise channel lookahead). Recorded in BENCH_planetary.json so the
  /// artifact says which windowing produced each throughput number.
  [[nodiscard]] const char* window_mode() const {
    if (threads <= 1) return "none";
    return per_channel ? "per-channel" : "global-barrier";
  }
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  // Identity probes: every variant of one row must agree bit-for-bit.
  std::uint64_t kernel_events = 0;
  std::uint64_t total_expanded = 0;
  std::uint64_t messages_sent = 0;
  double makespan = 0.0;
};

struct Row {
  std::uint32_t workers = 0;
  double horizon = 0.0;  // virtual seconds simulated
  std::vector<VariantResult> variants;
  bool identical = true;
};

core::WorkerConfig tuned_worker() {
  sim::ScenarioSpec spec;
  spec.tune_for_small_problems();
  return spec.worker;
}

Row run_row(std::uint32_t workers, double horizon) {
  Row row{workers, horizon, {}, true};

  sim::FaultPlan plan = sim::FaultPlan::planetary_storm(
      workers, kNodesPerRack, kRacksPerCampus, /*start=*/0.01, /*scale=*/0.02);
  const fault::FaultSchedule schedule =
      fault::FaultSchedule::compile(plan, workers);

  sim::WorkloadSpec workload_spec;
  workload_spec.kind = sim::WorkloadKind::kSyntheticTree;
  workload_spec.size = 50001;
  workload_spec.seed = 9;
  workload_spec.cost_mean = 2e-3;
  const sim::Workload workload = sim::build_workload(workload_spec);

  const VariantResult kinds[] = {
      {"sequential", 1, false},
      {"sharded/barrier", 4, false},
      {"sharded/channel", 4, true},
  };
  for (const VariantResult& kind : kinds) {
    sim::ClusterConfig cfg;
    cfg.workers = schedule.population;
    cfg.worker = tuned_worker();
    cfg.sim_threads = kind.threads;
    cfg.per_channel_lookahead = kind.per_channel;
    cfg.peer_view_limit = 32;
    cfg.seed = 9;
    cfg.time_limit = horizon;
    cfg.net.topology.nodes_per_rack = kNodesPerRack;
    cfg.net.topology.racks_per_campus = kRacksPerCampus;
    cfg.loss_rules = schedule.loss_rules;
    for (const fault::CrashAt& c : schedule.crashes) {
      cfg.crashes.push_back(sim::CrashEvent{c.node, c.time});
    }
    for (const fault::ReviveAt& r : schedule.revives) {
      cfg.rejoins.push_back(sim::ReviveEvent{r.node, r.time});
    }
    cfg.partitions = schedule.partitions;
    cfg.join_times = schedule.join_times;

    VariantResult v = kind;
    const double t0 = bench::now_seconds();
    const sim::ClusterResult res = sim::SimCluster::run(*workload.model, cfg);
    v.wall_seconds = bench::now_seconds() - t0;
    v.kernel_events = res.kernel_events;
    v.total_expanded = res.total_expanded;
    v.messages_sent = res.net.messages_sent;
    v.makespan = res.makespan;
    v.events_per_sec =
        v.wall_seconds > 0.0
            ? static_cast<double>(res.kernel_events) / v.wall_seconds
            : 0.0;
    row.variants.push_back(v);
  }

  const VariantResult& base = row.variants.front();
  for (const VariantResult& v : row.variants) {
    row.identical = row.identical && v.kernel_events == base.kernel_events &&
                    v.total_expanded == base.total_expanded &&
                    v.messages_sent == base.messages_sent &&
                    v.makespan == base.makespan;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("planetary storm dispatch throughput "
              "(racks of %u, campuses of %u racks)%s\n\n",
              kNodesPerRack, kRacksPerCampus, smoke ? " [smoke]" : "");

  struct Size {
    std::uint32_t workers;
    double horizon;
  };
  // The horizon shrinks as the population grows: event volume scales with
  // workers x virtual time, so this keeps every row seconds-scale while the
  // dispatched-events count still grows with the population.
  std::vector<Size> sizes;
  if (smoke) {
    sizes = {{1000, 0.08}, {4000, 0.04}};
  } else {
    sizes = {{1000, 0.4}, {10000, 0.3}, {100000, 0.2}};
  }

  std::vector<Row> rows;
  bool ok = true;
  for (const Size& s : sizes) {
    Row row = run_row(s.workers, s.horizon);
    ok = ok && row.identical;
    support::TextTable table({"variant", "threads", "events", "wall (s)",
                              "events/s", "vs sequential"});
    const double base = row.variants.front().events_per_sec;
    for (const VariantResult& v : row.variants) {
      table.row({v.name, std::to_string(v.threads),
                 std::to_string(v.kernel_events),
                 support::TextTable::num(v.wall_seconds, 3),
                 support::TextTable::num(v.events_per_sec, 0),
                 support::TextTable::num(
                     base > 0.0 ? v.events_per_sec / base : 0.0, 2)});
    }
    std::printf("workers=%u horizon=%.2fs identical=%s\n%s\n", row.workers,
                row.horizon, row.identical ? "yes" : "NO",
                table.render().c_str());
    rows.push_back(std::move(row));
  }

  FILE* json = bench::open_bench_json("BENCH_planetary.json", "planetary");
  if (json == nullptr) return 1;
  std::fprintf(json,
               "  \"topology\": {\"nodes_per_rack\": %u, \"racks_per_campus\": %u},\n"
               "  \"smoke\": %s,\n  \"rows\": [\n",
               kNodesPerRack, kRacksPerCampus, smoke ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(json,
                 "    {\"workers\": %u, \"horizon_s\": %.3f, "
                 "\"identical\": %s, \"variants\": [\n",
                 row.workers, row.horizon, row.identical ? "true" : "false");
    for (std::size_t v = 0; v < row.variants.size(); ++v) {
      const VariantResult& vr = row.variants[v];
      std::fprintf(json,
                   "      {\"name\": \"%s\", \"threads\": %u, "
                   "\"window_mode\": \"%s\", "
                   "\"kernel_events\": %llu, \"wall_seconds\": %.4f, "
                   "\"events_per_sec\": %.0f}%s\n",
                   vr.name, vr.threads, vr.window_mode(),
                   static_cast<unsigned long long>(vr.kernel_events),
                   vr.wall_seconds, vr.events_per_sec,
                   v + 1 < row.variants.size() ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_planetary.json\n");
  return ok ? 0 : 1;
}
