// E11 — comparison with the centralized manager/worker scheme (Section 3).
//
// "While clearly not scalable, this approach simplifies the management of
// information... the central manager remains an obstacle to both
// scalability and fault tolerance. Reliability can be achieved through
// checkpointing, but this approach assumes that there exists at least one
// reliable process/machine."
#include <cstdio>

#include "bench/workloads.hpp"
#include "central/central.hpp"

int main() {
  using namespace ftbb;
  std::printf("E11 / FTBB vs centralized manager-worker\n\n");

  bnb::RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = 4001;
  tree_cfg.cost_mean = 0.01;
  tree_cfg.seed = 59;
  const bnb::BasicTree tree = bnb::BasicTree::random(tree_cfg);
  bnb::TreeProblem problem(&tree, /*honor_bounds=*/false);

  central::CentralConfig central_cfg;
  central_cfg.batch_size = 4;
  central_cfg.reissue_timeout = 0.3;
  central_cfg.audit_interval = 0.2;

  std::printf("(a) scalability: manager message load vs processor count\n");
  support::TextTable ta({"procs", "FTBB makespan (s)", "central makespan (s)",
                         "manager msgs", "busiest FTBB node msgs"});
  for (const std::uint32_t procs : {2u, 4u, 8u, 16u, 32u}) {
    const sim::ClusterResult ours =
        sim::SimCluster::run(problem, bench::small_cluster_config(procs, 59));
    const central::CentralResult central = central::CentralSim::run(
        problem, procs, central_cfg, {}, {}, 3e4, 59);
    std::uint64_t busiest = 0;
    for (const auto& w : ours.workers) {
      busiest = std::max(busiest, w.msgs_received + w.msgs_sent);
    }
    ta.row({std::to_string(procs),
            ours.all_live_halted ? support::TextTable::num(ours.makespan, 2) : "-",
            central.completed ? support::TextTable::num(central.makespan, 2) : "-",
            std::to_string(central.manager_messages), std::to_string(busiest)});
  }
  std::printf("%s\n", ta.render().c_str());

  std::printf("(b) fault tolerance: who survives what (8 workers)\n");
  const sim::ClusterResult ours_base =
      sim::SimCluster::run(problem, bench::small_cluster_config(8, 59));
  const central::CentralResult central_base =
      central::CentralSim::run(problem, 8, central_cfg, {}, {}, 3e4, 59);
  support::TextTable tb({"scenario", "scheme", "finished", "makespan (s)",
                         "notes"});
  {
    // Worker crash: both tolerate.
    sim::ClusterConfig cfg = bench::small_cluster_config(8, 59);
    cfg.crashes = {{2, ours_base.makespan * 0.4}};
    cfg.time_limit = 3e4;
    const auto ours = sim::SimCluster::run(problem, cfg);
    const auto central = central::CentralSim::run(
        problem, 8, central_cfg, {}, {{3, central_base.makespan * 0.4}}, 3e4, 59);
    tb.row({"one worker dies", "FTBB", ours.all_live_halted ? "yes" : "NO",
            support::TextTable::num(ours.makespan, 2), "complement recovery"});
    tb.row({"one worker dies", "central", central.completed ? "yes" : "NO",
            support::TextTable::num(central.makespan, 2),
            std::to_string(central.reissues) + " batch reissues"});
  }
  {
    // Coordinator-equivalent crash.
    sim::ClusterConfig cfg = bench::small_cluster_config(8, 59);
    cfg.crashes = {{0, ours_base.makespan * 0.4}};
    cfg.time_limit = 3e4;
    const auto ours = sim::SimCluster::run(problem, cfg);
    const auto central_plain = central::CentralSim::run(
        problem, 8, central_cfg, {}, {{0, central_base.makespan * 0.4}},
        central_base.makespan * 6.0, 59);
    central::CentralConfig ckpt_cfg = central_cfg;
    ckpt_cfg.checkpointing = true;
    ckpt_cfg.checkpoint_interval = 0.5;
    ckpt_cfg.restart_delay = 0.5;
    const auto central_ckpt = central::CentralSim::run(
        problem, 8, ckpt_cfg, {}, {{0, central_base.makespan * 0.4}}, 3e4, 59);
    tb.row({"node 0 dies", "FTBB", ours.all_live_halted ? "yes" : "NO",
            support::TextTable::num(ours.makespan, 2),
            "no special nodes exist"});
    tb.row({"node 0 dies", "central (no ckpt)",
            central_plain.completed ? "yes" : "NO",
            support::TextTable::num(central_plain.makespan, 2),
            "manager is a single point of failure"});
    tb.row({"node 0 dies", "central (ckpt)",
            central_ckpt.completed ? "yes" : "NO",
            support::TextTable::num(central_ckpt.makespan, 2),
            std::to_string(central_ckpt.manager_restarts) +
                " restart(s) from checkpoint"});
  }
  std::printf("%s", tb.render().c_str());
  std::printf("\nexpected shape: the manager handles O(total work) messages — the\n"
              "bottleneck the paper motivates against — and its crash is fatal\n"
              "without checkpointing (which presumes a reliable machine); FTBB\n"
              "spreads the load and survives any single node's loss.\n");
  return 0;
}
