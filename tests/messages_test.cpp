#include <gtest/gtest.h>

#include "core/messages.hpp"

namespace ftbb::core {
namespace {

Message round_trip(const Message& m) {
  support::ByteWriter w;
  m.encode(w);
  EXPECT_EQ(w.size(), m.wire_size());
  support::ByteReader r(w.data());
  Message out = Message::decode(r);
  EXPECT_TRUE(r.done());
  return out;
}

TEST(Messages, WorkRequestRoundTrip) {
  Message m;
  m.type = MsgType::kWorkRequest;
  m.from = 17;
  m.best_known = -123.5;
  m.request_id = 42;
  const Message out = round_trip(m);
  EXPECT_EQ(out.type, MsgType::kWorkRequest);
  EXPECT_EQ(out.from, 17u);
  EXPECT_EQ(out.best_known, -123.5);
  EXPECT_EQ(out.request_id, 42u);
}

TEST(Messages, InfinityIncumbentSurvives) {
  Message m;
  m.type = MsgType::kWorkDeny;
  m.best_known = bnb::kInfinity;
  EXPECT_EQ(round_trip(m).best_known, bnb::kInfinity);
}

TEST(Messages, WorkGrantCarriesProblems) {
  Message m;
  m.type = MsgType::kWorkGrant;
  m.from = 3;
  m.best_known = 9.0;
  m.request_id = 7;
  m.problems.push_back(
      bnb::Subproblem{PathCode::root().child(1, false), -15.25});
  m.problems.push_back(
      bnb::Subproblem{PathCode::root().child(1, true).child(4, true), -7.5});
  const Message out = round_trip(m);
  ASSERT_EQ(out.problems.size(), 2u);
  EXPECT_EQ(out.problems[0].code, m.problems[0].code);
  EXPECT_EQ(out.problems[0].bound, -15.25);
  EXPECT_EQ(out.problems[1].code, m.problems[1].code);
}

TEST(Messages, WorkReportCarriesCodes) {
  Message m;
  m.type = MsgType::kWorkReport;
  m.from = 1;
  m.best_known = 2.5;
  m.codes.push_back(PathCode::root().child(2, true));
  m.codes.push_back(PathCode::root().child(2, false).child(3, true));
  const Message out = round_trip(m);
  ASSERT_EQ(out.codes.size(), 2u);
  EXPECT_EQ(out.codes[0], m.codes[0]);
  EXPECT_EQ(out.codes[1], m.codes[1]);
}

TEST(Messages, RootReportIsTheRootCode) {
  Message m;
  m.type = MsgType::kRootReport;
  m.codes.push_back(PathCode::root());
  const Message out = round_trip(m);
  ASSERT_EQ(out.codes.size(), 1u);
  EXPECT_TRUE(out.codes[0].is_root());
}

TEST(Messages, TableGossipRoundTrip) {
  Message m;
  m.type = MsgType::kTableGossip;
  for (std::uint32_t i = 0; i < 50; ++i) {
    m.codes.push_back(PathCode::root().child(i, i % 2 == 0));
  }
  EXPECT_EQ(round_trip(m).codes.size(), 50u);
}

TEST(Messages, WireSizeGrowsWithPayload) {
  Message small;
  small.type = MsgType::kWorkReport;
  small.codes.push_back(PathCode::root().child(1, false));
  Message large = small;
  for (std::uint32_t i = 0; i < 20; ++i) {
    large.codes.push_back(PathCode::root().child(1, true).child(i + 2, false));
  }
  EXPECT_GT(large.wire_size(), small.wire_size());
}

TEST(Messages, RequestIsSmall) {
  // Control messages should cost little under the 0.005 ms/byte model.
  Message m;
  m.type = MsgType::kWorkRequest;
  m.from = 1000;
  m.request_id = 100000;
  EXPECT_LE(m.wire_size(), 20u);
}

TEST(Messages, SummaryMentionsTypeAndCounts) {
  Message m;
  m.type = MsgType::kWorkGrant;
  m.from = 2;
  m.problems.push_back(bnb::Subproblem{PathCode::root().child(1, false), 0.0});
  const std::string s = m.summary();
  EXPECT_NE(s.find("work-grant"), std::string::npos);
  EXPECT_NE(s.find("problems=1"), std::string::npos);
}

}  // namespace
}  // namespace ftbb::core
