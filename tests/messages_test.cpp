#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/frame.hpp"
#include "core/messages.hpp"
#include "support/rng.hpp"

namespace ftbb::core {
namespace {

Message round_trip(const Message& m) {
  support::ByteWriter w;
  m.encode(w);
  EXPECT_EQ(w.size(), m.wire_size());
  support::ByteReader r(w.data());
  Message out = Message::decode(r);
  EXPECT_TRUE(r.done());
  return out;
}

TEST(Messages, WorkRequestRoundTrip) {
  Message m;
  m.type = MsgType::kWorkRequest;
  m.from = 17;
  m.best_known = -123.5;
  m.request_id = 42;
  const Message out = round_trip(m);
  EXPECT_EQ(out.type, MsgType::kWorkRequest);
  EXPECT_EQ(out.from, 17u);
  EXPECT_EQ(out.best_known, -123.5);
  EXPECT_EQ(out.request_id, 42u);
}

TEST(Messages, InfinityIncumbentSurvives) {
  Message m;
  m.type = MsgType::kWorkDeny;
  m.best_known = bnb::kInfinity;
  EXPECT_EQ(round_trip(m).best_known, bnb::kInfinity);
}

TEST(Messages, WorkGrantCarriesProblems) {
  Message m;
  m.type = MsgType::kWorkGrant;
  m.from = 3;
  m.best_known = 9.0;
  m.request_id = 7;
  m.problems.push_back(
      bnb::Subproblem{PathCode::root().child(1, false), -15.25});
  m.problems.push_back(
      bnb::Subproblem{PathCode::root().child(1, true).child(4, true), -7.5});
  const Message out = round_trip(m);
  ASSERT_EQ(out.problems.size(), 2u);
  EXPECT_EQ(out.problems[0].code, m.problems[0].code);
  EXPECT_EQ(out.problems[0].bound, -15.25);
  EXPECT_EQ(out.problems[1].code, m.problems[1].code);
}

TEST(Messages, WorkReportCarriesCodes) {
  Message m;
  m.type = MsgType::kWorkReport;
  m.from = 1;
  m.best_known = 2.5;
  m.codes.push_back(PathCode::root().child(2, true));
  m.codes.push_back(PathCode::root().child(2, false).child(3, true));
  const Message out = round_trip(m);
  ASSERT_EQ(out.codes.size(), 2u);
  EXPECT_EQ(out.codes[0], m.codes[0]);
  EXPECT_EQ(out.codes[1], m.codes[1]);
}

TEST(Messages, RootReportIsTheRootCode) {
  Message m;
  m.type = MsgType::kRootReport;
  m.codes.push_back(PathCode::root());
  const Message out = round_trip(m);
  ASSERT_EQ(out.codes.size(), 1u);
  EXPECT_TRUE(out.codes[0].is_root());
}

TEST(Messages, TableGossipRoundTrip) {
  Message m;
  m.type = MsgType::kTableGossip;
  for (std::uint32_t i = 0; i < 50; ++i) {
    m.codes.push_back(PathCode::root().child(i, i % 2 == 0));
  }
  EXPECT_EQ(round_trip(m).codes.size(), 50u);
}

TEST(Messages, WireSizeGrowsWithPayload) {
  Message small;
  small.type = MsgType::kWorkReport;
  small.codes.push_back(PathCode::root().child(1, false));
  Message large = small;
  for (std::uint32_t i = 0; i < 20; ++i) {
    large.codes.push_back(PathCode::root().child(1, true).child(i + 2, false));
  }
  EXPECT_GT(large.wire_size(), small.wire_size());
}

TEST(Messages, RequestIsSmall) {
  // Control messages should cost little under the 0.005 ms/byte model.
  Message m;
  m.type = MsgType::kWorkRequest;
  m.from = 1000;
  m.request_id = 100000;
  EXPECT_LE(m.wire_size(), 20u);
}

TEST(Messages, SummaryMentionsTypeAndCounts) {
  Message m;
  m.type = MsgType::kWorkGrant;
  m.from = 2;
  m.problems.push_back(bnb::Subproblem{PathCode::root().child(1, false), 0.0});
  const std::string s = m.summary();
  EXPECT_NE(s.find("work-grant"), std::string::npos);
  EXPECT_NE(s.find("problems=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Frame codec: property round-trips and decode robustness (core/frame.hpp).
// ---------------------------------------------------------------------------

PathCode random_code(support::Rng& rng, std::size_t max_depth = 12) {
  PathCode c = PathCode::root();
  const std::size_t depth = rng.pick(max_depth + 1);
  for (std::size_t i = 0; i < depth; ++i) {
    c = c.child(static_cast<std::uint32_t>(rng.pick(40)), rng.chance(0.5));
  }
  return c;
}

Message random_message(support::Rng& rng) {
  Message m;
  m.type = static_cast<MsgType>(1 + rng.pick(6));
  m.from = static_cast<NodeId>(rng.pick(1 << 20));
  m.request_id = rng.next() >> rng.pick(64);
  m.best_known = rng.chance(0.2) ? bnb::kInfinity : rng.uniform(-1e6, 1e6);
  switch (m.type) {
    case MsgType::kWorkRequest:
      break;
    case MsgType::kWorkDeny:
      m.busy = rng.chance(0.5);
      break;
    case MsgType::kWorkGrant:
      for (std::size_t i = 0, n = rng.pick(6); i < n; ++i) {
        m.problems.push_back(
            bnb::Subproblem{random_code(rng), rng.uniform(-1e3, 1e3)});
      }
      break;
    case MsgType::kWorkReport:
    case MsgType::kTableGossip:
      m.report_seq = 1 + rng.pick(100);
      [[fallthrough]];
    case MsgType::kRootReport:
      for (std::size_t i = 0, n = rng.pick(10); i < n; ++i) {
        m.codes.push_back(random_code(rng));
      }
      break;
  }
  return m;
}

/// Field-by-field equality over everything each type puts on the wire
/// (report_seq is transport bookkeeping, not content, and is excluded).
void expect_same_content(const Message& a, const Message& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.from, b.from);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.best_known),
            std::bit_cast<std::uint64_t>(b.best_known));
  EXPECT_EQ(a.request_id, b.request_id);
  if (a.type == MsgType::kWorkDeny) EXPECT_EQ(a.busy, b.busy);
  ASSERT_EQ(a.problems.size(), b.problems.size());
  for (std::size_t i = 0; i < a.problems.size(); ++i) {
    EXPECT_EQ(a.problems[i].code, b.problems[i].code);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.problems[i].bound),
              std::bit_cast<std::uint64_t>(b.problems[i].bound));
  }
  EXPECT_EQ(a.codes, b.codes);
}

std::vector<std::uint8_t> encode_frame(const FrameCodec& codec,
                                       const Message& m,
                                       ReportDeltaState* state) {
  support::ByteWriter w;
  codec.encode(m, state, w);
  return std::move(w.data());
}

TEST(Frames, RandomMessagesSurviveBothVersions) {
  support::Rng rng(20260808);
  const FrameCodec legacy(FrameVersion::kLegacy);
  const FrameCodec v1(FrameVersion::kV1);
  for (int trial = 0; trial < 400; ++trial) {
    const Message m = random_message(rng);
    {
      const auto buf = encode_frame(legacy, m, nullptr);
      const FrameDecode d = FrameCodec::decode(buf);
      ASSERT_TRUE(d.ok()) << to_string(d.status);
      EXPECT_EQ(d.version, FrameVersion::kLegacy);
      expect_same_content(m, d.msg);
    }
    {
      ReportDeltaState state;
      const auto buf = encode_frame(v1, m, &state);
      const FrameDecode d = FrameCodec::decode(buf);
      ASSERT_TRUE(d.ok()) << to_string(d.status);
      EXPECT_EQ(d.version, FrameVersion::kV1);
      expect_same_content(m, d.msg);
    }
  }
}

TEST(Frames, CountingSizeMatchesEncodedSize) {
  support::Rng rng(7);
  for (const FrameVersion version :
       {FrameVersion::kLegacy, FrameVersion::kV1}) {
    const FrameCodec codec(version);
    // Two states advanced in lockstep: frame_size() must walk the same
    // delta-state path as encode() for a chained report stream.
    ReportDeltaState counted, encoded;
    for (int trial = 0; trial < 200; ++trial) {
      const Message m = random_message(rng);
      const std::size_t counted_size = codec.frame_size(m, &counted);
      const auto buf = encode_frame(codec, m, &encoded);
      EXPECT_EQ(counted_size, buf.size()) << to_string(version);
    }
  }
}

TEST(Frames, DeltaChainDecodesStandaloneAcrossBatches) {
  // One sender incarnation emitting a stream of report batches: every frame
  // must decode in isolation (receivers are random fanout peers and any
  // frame may be the first one they see of this sender).
  support::Rng rng(99);
  const FrameCodec v1(FrameVersion::kV1);
  ReportDeltaState state;
  for (std::uint64_t batch = 1; batch <= 50; ++batch) {
    Message m;
    m.type = batch % 7 == 0 ? MsgType::kTableGossip : MsgType::kWorkReport;
    m.from = 3;
    m.best_known = 10.0;
    m.report_seq = batch;
    for (std::size_t i = 0, n = rng.pick(8); i < n; ++i) {
      m.codes.push_back(random_code(rng));
    }
    // The worker fans the same batch out to several peers: every copy must
    // encode identically (the state advances once per report_seq).
    const auto first = encode_frame(v1, m, &state);
    const auto second = encode_frame(v1, m, &state);
    EXPECT_EQ(first, second);
    const FrameDecode d = FrameCodec::decode(first);
    ASSERT_TRUE(d.ok()) << to_string(d.status) << " at batch " << batch;
    EXPECT_EQ(d.msg.codes, m.codes);
    EXPECT_EQ(d.msg.report_seq, batch - 1);  // codec's own wire sequence
  }
  EXPECT_EQ(state.seq, 49u);
}

TEST(Frames, EveryTruncationDecodesToErrorNotCrash) {
  support::Rng rng(13);
  for (const FrameVersion version :
       {FrameVersion::kLegacy, FrameVersion::kV1}) {
    const FrameCodec codec(version);
    for (int trial = 0; trial < 40; ++trial) {
      ReportDeltaState state;
      const Message m = random_message(rng);
      const auto buf = encode_frame(codec, m, &state);
      for (std::size_t len = 0; len < buf.size(); ++len) {
        const FrameDecode d = FrameCodec::decode(buf.data(), len);
        EXPECT_FALSE(d.ok())
            << to_string(version) << " prefix " << len << "/" << buf.size();
      }
    }
  }
}

TEST(Frames, EveryBitFlipDecodesOrErrorsNeverCrashes) {
  // No checksum in the frame, so a flipped payload bit may decode to a
  // different valid message — the guarantee under test is purely that no
  // single-bit corruption can crash or over-allocate the decoder.
  support::Rng rng(29);
  for (const FrameVersion version :
       {FrameVersion::kLegacy, FrameVersion::kV1}) {
    const FrameCodec codec(version);
    for (int trial = 0; trial < 20; ++trial) {
      ReportDeltaState state;
      const Message m = random_message(rng);
      const auto buf = encode_frame(codec, m, &state);
      for (std::size_t byte = 0; byte < buf.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
          auto flipped = buf;
          flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
          (void)FrameCodec::decode(flipped);  // must return, never abort
        }
      }
    }
  }
}

TEST(Frames, WrongVersionByteIsRecoverable) {
  Message m;
  m.type = MsgType::kWorkRequest;
  m.from = 5;
  auto buf = encode_frame(FrameCodec(FrameVersion::kV1), m, nullptr);
  ASSERT_GE(buf.size(), 2u);
  ASSERT_EQ(buf[0], kFrameMagic);
  buf[1] = 2;  // a future version we do not speak
  EXPECT_EQ(FrameCodec::decode(buf).status, DecodeStatus::kUnknownVersion);
  buf[1] = 0xee;
  EXPECT_EQ(FrameCodec::decode(buf).status, DecodeStatus::kUnknownVersion);
}

TEST(Frames, UnframedGarbageIsBadMagic) {
  // First byte is neither the v1 magic nor a legacy MsgType (1..6).
  const std::vector<std::uint8_t> garbage = {0x07, 0x01, 0x02, 0x03};
  EXPECT_EQ(FrameCodec::decode(garbage).status, DecodeStatus::kBadMagic);
  const std::vector<std::uint8_t> zero = {0x00};
  EXPECT_EQ(FrameCodec::decode(zero).status, DecodeStatus::kBadMagic);
}

TEST(Frames, FramedUnknownTypeIsRejected) {
  Message m;
  m.type = MsgType::kWorkDeny;
  auto buf = encode_frame(FrameCodec(FrameVersion::kV1), m, nullptr);
  buf[2] = 9;  // outside the MsgType enum
  EXPECT_EQ(FrameCodec::decode(buf).status, DecodeStatus::kUnknownType);
}

TEST(Frames, TrailingBytesAreALengthMismatch) {
  Message m;
  m.type = MsgType::kWorkRequest;
  for (const FrameVersion version :
       {FrameVersion::kLegacy, FrameVersion::kV1}) {
    auto buf = encode_frame(FrameCodec(version), m, nullptr);
    buf.push_back(0xab);
    EXPECT_EQ(FrameCodec::decode(buf).status, DecodeStatus::kLengthMismatch)
        << to_string(version);
  }
}

TEST(Frames, HostileCountsNeverOverAllocate) {
  // Legacy kWorkGrant claiming ~2^60 problems in a 20-byte buffer: the
  // decoder must bound the claimed count against the remaining bytes
  // instead of reserving petabytes.
  support::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kWorkGrant));
  w.varint(1);                 // from
  w.f64(0.0);                  // best_known
  w.varint(0);                 // request_id
  w.varint(1ull << 60);        // hostile problem count
  w.u8(0);
  EXPECT_FALSE(FrameCodec::decode(w.data()).ok());

  // Same attack through a v1 report frame: a huge code count and a huge
  // delta `add` count inside a tiny declared payload.
  support::ByteWriter v;
  v.u8(kFrameMagic);
  v.u8(1);
  v.u8(static_cast<std::uint8_t>(MsgType::kWorkReport));
  support::ByteWriter payload;
  payload.varint(1);            // from
  payload.f64(0.0);             // best_known
  payload.varint(0);            // request_id
  payload.varint(0);            // wire seq 0: self-contained
  payload.varint(1ull << 50);   // hostile code count
  v.varint(payload.size());
  for (const std::uint8_t b : payload.data()) v.u8(b);
  EXPECT_FALSE(FrameCodec::decode(v.data()).ok());
}

TEST(Frames, EmptyAndOneByteInputsAreErrors) {
  EXPECT_EQ(FrameCodec::decode(nullptr, 0).status, DecodeStatus::kTruncated);
  const std::uint8_t magic_only = kFrameMagic;
  EXPECT_FALSE(FrameCodec::decode(&magic_only, 1).ok());
}

}  // namespace
}  // namespace ftbb::core
