#include <gtest/gtest.h>

#include "bnb/sequential.hpp"
#include "bnb/vertex_cover.hpp"

namespace ftbb::bnb {
namespace {

using core::PathCode;

TEST(Graph, GnpIsDeterministic) {
  const Graph a = Graph::gnp(20, 0.3, 5);
  const Graph b = Graph::gnp(20, 0.3, 5);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Graph, CycleStructure) {
  const Graph g = Graph::cycle(5);
  EXPECT_EQ(g.n, 5u);
  EXPECT_EQ(g.edges.size(), 5u);
  for (const auto& adjacency : g.adj) EXPECT_EQ(adjacency.size(), 2u);
}

TEST(Graph, CompleteStructure) {
  const Graph g = Graph::complete(6);
  EXPECT_EQ(g.edges.size(), 15u);
}

TEST(VertexCover, KnownOptimaOnCycles) {
  // Minimum vertex cover of C_n is ceil(n/2).
  for (const std::uint32_t n : {3u, 4u, 5u, 6u, 7u, 10u}) {
    VertexCoverModel model(Graph::cycle(n));
    ASSERT_TRUE(model.known_optimal().has_value());
    EXPECT_DOUBLE_EQ(*model.known_optimal(), (n + 1) / 2) << "C_" << n;
    const SeqResult res = solve_sequential(model);
    EXPECT_DOUBLE_EQ(res.best_value, *model.known_optimal()) << "C_" << n;
  }
}

TEST(VertexCover, KnownOptimaOnCompleteGraphs) {
  // Minimum vertex cover of K_n is n-1.
  for (const std::uint32_t n : {3u, 4u, 5u, 6u}) {
    VertexCoverModel model(Graph::complete(n));
    const SeqResult res = solve_sequential(model);
    EXPECT_DOUBLE_EQ(res.best_value, n - 1.0) << "K_" << n;
  }
}

TEST(VertexCover, EdgelessGraphHasEmptyCover) {
  Graph g;
  g.n = 5;
  g.finalize();
  VertexCoverModel model(g);
  const NodeEval root = model.eval(PathCode::root());
  EXPECT_TRUE(root.feasible_leaf);
  EXPECT_DOUBLE_EQ(root.value, 0.0);
}

TEST(VertexCover, ExclusionForcesNeighbors) {
  // Star graph: excluding the center forces all leaves in.
  Graph g;
  g.n = 5;
  for (std::uint32_t i = 1; i < 5; ++i) g.edges.emplace_back(0, i);
  g.finalize();
  VertexCoverModel model(g);
  const NodeEval root = model.eval(PathCode::root());
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].var, 0u);  // center has max degree
  // Excluding the center: bound must equal 4 (all leaves forced in).
  const PathCode excluded = PathCode::root().child(0, false);
  const NodeEval leaf = model.eval(excluded);
  EXPECT_TRUE(leaf.feasible_leaf);
  EXPECT_DOUBLE_EQ(leaf.value, 4.0);
  // Including the center covers everything with one vertex.
  const NodeEval included = model.eval(PathCode::root().child(0, true));
  EXPECT_TRUE(included.feasible_leaf);
  EXPECT_DOUBLE_EQ(included.value, 1.0);
}

TEST(VertexCover, MatchingBoundIsAdmissible) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    VertexCoverModel model(Graph::gnp(12, 0.35, seed));
    ASSERT_TRUE(model.known_optimal().has_value());
    EXPECT_LE(model.root_bound(), *model.known_optimal()) << seed;
  }
}

class VertexCoverSolveTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VertexCoverSolveTest, SequentialMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  VertexCoverModel model(Graph::gnp(14, 0.3, seed));
  ASSERT_TRUE(model.known_optimal().has_value());
  const SeqResult res = solve_sequential(model);
  EXPECT_TRUE(res.completed);
  EXPECT_DOUBLE_EQ(res.best_value, *model.known_optimal());
}

TEST_P(VertexCoverSolveTest, DenseGraphsMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  VertexCoverModel model(Graph::gnp(11, 0.6, seed + 100));
  ASSERT_TRUE(model.known_optimal().has_value());
  const SeqResult res = solve_sequential(model);
  EXPECT_DOUBLE_EQ(res.best_value, *model.known_optimal());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VertexCoverSolveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ftbb::bnb
