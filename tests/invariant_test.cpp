// System-level invariants behind the paper's correctness argument.
//
// The load-bearing theorem (README "Architecture notes"): completion
// knowledge and the incumbent travel together on every message, so any
// process whose table covers a region holds an incumbent at least as good
// as that region's best solution. Its observable consequences, asserted
// here across seeds, worker counts, and failure schedules:
//
//   1. EVERY termination detector independently holds the global optimum
//      (not merely the best across workers);
//   2. without failures, no subproblem is ever expanded twice anywhere
//      (work conservation: the protocol alone introduces no redundancy);
//   3. the union of all recorded completions covers the root exactly when
//      the run terminates;
//   4. completion tables never contain false claims: everything a table
//      covers was genuinely completed (expanded or fathomed) somewhere.
#include <gtest/gtest.h>

#include "bnb/basic_tree.hpp"
#include "sim/cluster.hpp"

namespace ftbb::sim {
namespace {

using bnb::BasicTree;
using bnb::RandomTreeConfig;
using bnb::TreeProblem;

core::WorkerConfig fast_config() {
  core::WorkerConfig w;
  w.report_batch = 4;
  w.report_flush_interval = 0.05;
  w.table_gossip_interval = 0.2;
  w.work_request_timeout = 0.02;
  w.idle_backoff = 0.005;
  w.initial_stagger = 0.002;
  return w;
}

struct Scenario {
  BasicTree tree;
  ClusterConfig cfg;

  Scenario(std::uint64_t seed, std::uint32_t workers, bool exhaustive)
      : tree(make_tree(seed)) {
    cfg.workers = workers;
    cfg.worker = fast_config();
    cfg.seed = seed;
    cfg.time_limit = 600.0;
    cfg.storage_sample_interval = 0.1;
    exhaustive_ = exhaustive;
  }

  [[nodiscard]] TreeProblem problem() const {
    return TreeProblem(&tree, /*honor_bounds=*/!exhaustive_);
  }

 private:
  static BasicTree make_tree(std::uint64_t seed) {
    RandomTreeConfig tc;
    tc.target_nodes = 801;
    tc.seed = seed * 31 + 1;
    tc.cost_mean = 2e-3;
    return BasicTree::random(tc);
  }

  bool exhaustive_ = false;
};

class InvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvariantSweep, EveryDetectorHoldsTheGlobalOptimum) {
  const std::uint64_t seed = GetParam();
  Scenario scenario(seed, 2 + static_cast<std::uint32_t>(seed % 5), false);
  const TreeProblem problem = scenario.problem();
  const ClusterResult res = SimCluster::run(problem, scenario.cfg);
  ASSERT_TRUE(res.all_live_halted);
  for (std::size_t i = 0; i < res.incumbents.size(); ++i) {
    if (res.crashed[i]) continue;
    EXPECT_DOUBLE_EQ(res.incumbents[i], scenario.tree.optimal_value())
        << "worker " << i << " detected termination with a stale incumbent";
  }
}

TEST_P(InvariantSweep, EveryDetectorHoldsTheOptimumEvenUnderCrashes) {
  const std::uint64_t seed = GetParam();
  Scenario scenario(seed, 5, false);
  const TreeProblem problem = scenario.problem();
  const ClusterResult baseline = SimCluster::run(problem, scenario.cfg);
  ASSERT_TRUE(baseline.all_live_halted);
  Scenario crashed(seed, 5, false);
  support::Rng rng(seed * 101 + 3);
  const std::size_t victims = 1 + rng.pick(4);
  for (const std::size_t v : rng.sample_without_replacement(4, victims)) {
    crashed.cfg.crashes.push_back(
        {static_cast<core::NodeId>(v + 1),
         baseline.makespan * rng.uniform(0.1, 1.0)});
  }
  const TreeProblem crashed_problem = crashed.problem();
  const ClusterResult res = SimCluster::run(crashed_problem, crashed.cfg);
  ASSERT_TRUE(res.all_live_halted);
  for (std::size_t i = 0; i < res.incumbents.size(); ++i) {
    if (res.crashed[i] || res.workers[i].halted_at < 0.0) continue;
    EXPECT_DOUBLE_EQ(res.incumbents[i], crashed.tree.optimal_value())
        << "worker " << i;
  }
}

TEST_P(InvariantSweep, NoRedundantWorkWithoutFailures) {
  const std::uint64_t seed = GetParam();
  Scenario scenario(seed, 2 + static_cast<std::uint32_t>(seed % 6), true);
  const TreeProblem problem = scenario.problem();
  const ClusterResult res = SimCluster::run(problem, scenario.cfg);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_EQ(res.redundant_expansions, 0u);
  // Exhaustive mode: the whole tree is expanded exactly once systemwide.
  EXPECT_EQ(res.total_expanded, scenario.tree.size());
  EXPECT_EQ(res.unique_expanded, scenario.tree.size());
}

TEST_P(InvariantSweep, CompletionKnowledgeIsNeverFalse) {
  // Under crashes and loss, tables may be incomplete but never wrong: any
  // code the union of completions covers corresponds to work that really
  // finished (expanded, or fathomed by a bound that a genuine feasible
  // solution justified). Observable consequence: the run still terminates
  // with the exact optimum — a false completion would prune live work and
  // break exactness with nonzero probability across this sweep.
  const std::uint64_t seed = GetParam();
  Scenario scenario(seed, 4, false);
  scenario.cfg.net.loss_prob = 0.15;
  const TreeProblem problem = scenario.problem();
  const ClusterResult baseline = SimCluster::run(problem, scenario.cfg);
  ASSERT_TRUE(baseline.all_live_halted);
  Scenario harsh(seed, 4, false);
  harsh.cfg.net.loss_prob = 0.15;
  harsh.cfg.crashes = {{1, baseline.makespan * 0.3},
                       {3, baseline.makespan * 0.7}};
  const TreeProblem harsh_problem = harsh.problem();
  const ClusterResult res = SimCluster::run(harsh_problem, harsh.cfg);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_DOUBLE_EQ(res.solution, harsh.tree.optimal_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

}  // namespace
}  // namespace ftbb::sim
