#include <gtest/gtest.h>

#include "bnb/partition.hpp"
#include "bnb/sequential.hpp"
#include "sim/cluster.hpp"

namespace ftbb::bnb {
namespace {

using core::PathCode;

TEST(PartitionInstance, GeneratorSortsDescending) {
  const auto inst = PartitionInstance::random(20, 1000, 1);
  for (std::size_t i = 1; i < inst.values.size(); ++i) {
    EXPECT_GE(inst.values[i - 1], inst.values[i]);
  }
  EXPECT_GT(inst.total(), 0);
}

TEST(PartitionInstance, DpKnownCases) {
  PartitionInstance inst;
  inst.values = {5, 4, 3};  // {5} vs {4,3}: diff 2
  EXPECT_EQ(inst.dp_optimal_difference(), 2);
  inst.values = {4, 3, 3, 2};  // {4,2} vs {3,3}: diff 0
  EXPECT_EQ(inst.dp_optimal_difference(), 0);
  inst.values = {10};
  EXPECT_EQ(inst.dp_optimal_difference(), 10);
}

TEST(PartitionModel, RootBoundIsAdmissible) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    PartitionModel model(PartitionInstance::random(14, 500, seed));
    ASSERT_TRUE(model.known_optimal().has_value());
    EXPECT_LE(model.root_bound(), *model.known_optimal());
  }
}

TEST(PartitionModel, LeafValueIsTheDifference) {
  PartitionInstance inst;
  inst.values = {7, 5, 2};
  PartitionModel model(inst);
  // Assign all to A: diff = 14.
  PathCode code = PathCode::root().child(0, true).child(1, true).child(2, true);
  const NodeEval leaf = model.eval(code);
  ASSERT_TRUE(leaf.feasible_leaf);
  EXPECT_DOUBLE_EQ(leaf.value, 14.0);
  // {7} vs {5,2}: diff 0.
  code = PathCode::root().child(0, true).child(1, false).child(2, false);
  EXPECT_DOUBLE_EQ(model.eval(code).value, 0.0);
}

TEST(PartitionModel, ResidualBoundTightensAsExpected) {
  PartitionInstance inst;
  inst.values = {100, 10, 5};
  PartitionModel model(inst);
  // After placing 100 in A: |diff|=100, remaining=15 -> bound 85.
  const NodeEval root = model.eval(PathCode::root());
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_DOUBLE_EQ(root.children[0].bound, 85.0);
  EXPECT_DOUBLE_EQ(root.children[1].bound, 85.0);  // symmetric
}

TEST(PartitionModel, BoundOfMatchesChildBounds) {
  PartitionModel model(PartitionInstance::random(10, 200, 3));
  const NodeEval root = model.eval(PathCode::root());
  for (const ChildOut& c : root.children) {
    EXPECT_DOUBLE_EQ(model.bound_of(PathCode::root().child(c.var, c.bit != 0)),
                     c.bound);
  }
}

class PartitionSolveTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionSolveTest, SequentialMatchesDp) {
  const std::uint64_t seed = GetParam();
  PartitionModel model(PartitionInstance::random(16, 300, seed));
  ASSERT_TRUE(model.known_optimal().has_value());
  const SeqResult res = solve_sequential(model);
  EXPECT_TRUE(res.completed);
  EXPECT_DOUBLE_EQ(res.best_value, *model.known_optimal());
}

TEST_P(PartitionSolveTest, DistributedWithCrashesMatchesDp) {
  const std::uint64_t seed = GetParam();
  NodeCostModel cost;
  cost.mean = 1e-3;
  PartitionModel model(PartitionInstance::random(15, 200, seed), cost);
  ASSERT_TRUE(model.known_optimal().has_value());
  sim::ClusterConfig cfg;
  cfg.workers = 4;
  cfg.seed = seed;
  cfg.worker.report_batch = 4;
  cfg.worker.report_flush_interval = 0.05;
  cfg.worker.table_gossip_interval = 0.2;
  cfg.worker.work_request_timeout = 0.02;
  cfg.worker.idle_backoff = 0.005;
  cfg.time_limit = 300.0;
  const sim::ClusterResult baseline = sim::SimCluster::run(model, cfg);
  ASSERT_TRUE(baseline.all_live_halted);
  EXPECT_DOUBLE_EQ(baseline.solution, *model.known_optimal());
  // Kill half the workers mid-run; still exact.
  cfg.crashes = {{1, baseline.makespan * 0.4}, {2, baseline.makespan * 0.6}};
  const sim::ClusterResult res = sim::SimCluster::run(model, cfg);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_DOUBLE_EQ(res.solution, *model.known_optimal());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSolveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(PartitionModelDeath, OutOfOrderCodeAborts) {
  PartitionModel model(PartitionInstance::random(8, 100, 2));
  ASSERT_DEATH((void)model.eval(PathCode::root().child(3, true)),
               "out-of-order variable");
}

}  // namespace
}  // namespace ftbb::bnb
