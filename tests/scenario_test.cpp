// Tests of the declarative scenario engine: every protocol path — crash,
// rejoin, partition + heal, message loss, membership churn — driven through
// ScenarioRunner on all three backends, with bit-reproducible reports.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace ftbb::sim {
namespace {

ScenarioSpec base_spec(const std::string& name, Backend backend,
                       std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = name;
  spec.backend = backend;
  spec.seed = seed;
  spec.workers = 4;
  spec.time_limit = 300.0;
  spec.workload.kind = WorkloadKind::kSyntheticTree;
  spec.workload.size = 601;
  spec.workload.seed = seed;
  spec.workload.cost_mean = 2e-3;
  spec.tune_for_small_problems();
  return spec;
}

void expect_solved(const ScenarioReport& report) {
  EXPECT_TRUE(report.completed) << report.to_string();
  ASSERT_TRUE(report.solution_found) << report.to_string();
  ASSERT_TRUE(report.optimum_known);
  EXPECT_TRUE(report.optimum_matched) << report.to_string();
  EXPECT_DOUBLE_EQ(report.solution, report.optimum);
}

/// The same spec must reproduce the identical report, bit for bit.
void expect_reproducible(const ScenarioSpec& spec, const ScenarioReport& first) {
  const ScenarioReport again = ScenarioRunner::run(spec);
  EXPECT_EQ(first.fingerprint(), again.fingerprint()) << first.to_string();
  EXPECT_EQ(first.total_expanded, again.total_expanded);
  EXPECT_EQ(first.messages_sent, again.messages_sent);
  EXPECT_EQ(first.makespan, again.makespan);
  EXPECT_EQ(first.timeline, again.timeline);
}

class ScenarioBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(ScenarioBackendTest, CrashAtDepthCompletes) {
  // Kill a worker once work has spread (several node costs into the run).
  ScenarioSpec spec = base_spec("crash-at-depth", GetParam(), 21);
  spec.faults.crash(1, 0.05).crash(2, 0.12);
  const ScenarioReport report = ScenarioRunner::run(spec);
  expect_solved(report);
  expect_reproducible(spec, report);
}

TEST_P(ScenarioBackendTest, PartitionAndHealCompletes) {
  ScenarioSpec spec = base_spec("partition-and-heal", GetParam(), 22);
  spec.faults.split_halves(0.05, 0.4);
  const ScenarioReport report = ScenarioRunner::run(spec);
  expect_solved(report);
  EXPECT_GT(report.messages_partitioned, 0u) << report.to_string();
  expect_reproducible(spec, report);
}

TEST_P(ScenarioBackendTest, TenPercentLossCompletes) {
  ScenarioSpec spec = base_spec("ten-percent-loss", GetParam(), 23);
  spec.faults.loss(0.0, 1e9, 0.10);
  const ScenarioReport report = ScenarioRunner::run(spec);
  expect_solved(report);
  EXPECT_GT(report.messages_lost, 0u) << report.to_string();
  expect_reproducible(spec, report);
}

INSTANTIATE_TEST_SUITE_P(Backends, ScenarioBackendTest,
                         ::testing::Values(Backend::kFtbb, Backend::kCentral,
                                           Backend::kDib),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Scenario, RejoinAfterCrashCompletes) {
  ScenarioSpec spec = base_spec("crash-then-rejoin", Backend::kFtbb, 31);
  spec.faults.bounce(1, 0.05, 0.25);
  const ScenarioReport report = ScenarioRunner::run(spec);
  expect_solved(report);
  expect_reproducible(spec, report);
}

TEST(Scenario, MembershipChurnCompletes) {
  // Start with 2 workers; 3 more trickle in while two of the originals
  // bounce — the paper's dynamically available resource pool.
  ScenarioSpec spec = base_spec("membership-churn", Backend::kFtbb, 32);
  spec.workers = 2;
  spec.faults.churn(2, 3, 0.05, 0.04);
  spec.faults.bounce(1, 0.1, 0.3);
  const ScenarioReport report = ScenarioRunner::run(spec);
  EXPECT_EQ(report.workers, 5u);
  expect_solved(report);
  expect_reproducible(spec, report);
}

TEST(Scenario, CombinedAdversityCompletesWithAllFaultKinds) {
  // All five fault categories in one schedule.
  ScenarioSpec spec = base_spec("kitchen-sink", Backend::kFtbb, 33);
  spec.workers = 3;
  spec.faults.bounce(1, 0.08, 0.35)
      .split_halves(0.15, 0.3)
      .loss(0.0, 1e9, 0.05)
      .link_loss(0, 2, 0.2, 0.5, 0.5)
      .churn(3, 2, 0.1, 0.05);
  EXPECT_EQ(spec.faults.distinct_fault_kinds(), kFaultKinds);
  const ScenarioReport report = ScenarioRunner::run(spec);
  expect_solved(report);
  expect_reproducible(spec, report);
}

TEST(Scenario, WorkloadsAllRunUnderLoss) {
  for (const WorkloadKind kind :
       {WorkloadKind::kKnapsack, WorkloadKind::kVertexCover,
        WorkloadKind::kNumberPartition, WorkloadKind::kSyntheticTree,
        WorkloadKind::kShifty, WorkloadKind::kMaxSat, WorkloadKind::kTsp}) {
    ScenarioSpec spec = base_spec("workload-sweep", Backend::kFtbb, 41);
    spec.workload.kind = kind;
    spec.workload.size = kind == WorkloadKind::kSyntheticTree ? 401
                         : kind == WorkloadKind::kKnapsack    ? 12
                         : kind == WorkloadKind::kTsp         ? 8
                                                              : 10;
    spec.faults.loss(0.0, 1e9, 0.05).crash(3, 0.05);
    const ScenarioReport report = ScenarioRunner::run(spec);
    expect_solved(report);
  }
}

TEST(Scenario, ShiftyAdversaryCompletesAndMatchesGolden) {
  // The adversarial workload whose branching factor and node cost shift
  // mid-solve, under loss + a bounce. Golden fingerprint pinned with the
  // same discipline as the named-plan corpus below.
  ScenarioSpec spec = base_spec("shifty-adversary", Backend::kFtbb, 71);
  spec.workload.kind = WorkloadKind::kShifty;
  spec.workload.size = 12;
  spec.faults.loss(0.0, 1e9, 0.05).bounce(2, 0.05, 0.2);
  const ScenarioReport report = ScenarioRunner::run(spec);
  expect_solved(report);
  constexpr std::uint64_t kGolden = 0x92fea02cd9f7207bULL;
  EXPECT_EQ(report.fingerprint(), kGolden)
      << "actual 0x" << std::hex << report.fingerprint() << "\n"
      << report.to_string();
  for (const std::uint32_t threads : {2u, 4u}) {
    ScenarioSpec sharded = spec;
    sharded.sim_threads = threads;
    EXPECT_EQ(ScenarioRunner::run(sharded).fingerprint(), kGolden)
        << "with " << threads << " threads";
  }
}

TEST(Scenario, MaxSatCompletesAndMatchesGolden) {
  // The clause-structured workload under loss + a bounce. Golden fingerprint
  // pinned with the same discipline as the named-plan corpus below; the 2-
  // and 4-thread replays hold the sharded executor to the sequential order.
  ScenarioSpec spec = base_spec("max-sat-adversary", Backend::kFtbb, 73);
  spec.workload.kind = WorkloadKind::kMaxSat;
  spec.workload.size = 12;
  spec.faults.loss(0.0, 1e9, 0.05).bounce(2, 0.05, 0.2);
  const ScenarioReport report = ScenarioRunner::run(spec);
  expect_solved(report);
  constexpr std::uint64_t kGolden = 0x43193f2e5d810f3cULL;
  EXPECT_EQ(report.fingerprint(), kGolden)
      << "actual 0x" << std::hex << report.fingerprint() << "\n"
      << report.to_string();
  for (const std::uint32_t threads : {2u, 4u}) {
    ScenarioSpec sharded = spec;
    sharded.sim_threads = threads;
    EXPECT_EQ(ScenarioRunner::run(sharded).fingerprint(), kGolden)
        << "with " << threads << " threads";
  }
}

TEST(Scenario, TspCompletesAndMatchesGolden) {
  // The deep-code workload (n = 9 -> 36-step codes, past PathCode's inline
  // buffer) under loss + a bounce: heap-mode codes flow through the pool,
  // the code tables, and the wire, and the run stays bit-reproducible.
  // Same pinning discipline as the other goldens; 2- and 4-thread replays
  // hold the sharded executor to the sequential order.
  ScenarioSpec spec = base_spec("tsp-adversary", Backend::kFtbb, 79);
  spec.workload.kind = WorkloadKind::kTsp;
  spec.workload.size = 9;
  spec.faults.loss(0.0, 1e9, 0.05).bounce(2, 0.05, 0.2);
  const ScenarioReport report = ScenarioRunner::run(spec);
  expect_solved(report);
  constexpr std::uint64_t kGolden = 0xd5eb398bb6af5d6cULL;
  EXPECT_EQ(report.fingerprint(), kGolden)
      << "actual 0x" << std::hex << report.fingerprint() << "\n"
      << report.to_string();
  for (const std::uint32_t threads : {2u, 4u}) {
    ScenarioSpec sharded = spec;
    sharded.sim_threads = threads;
    EXPECT_EQ(ScenarioRunner::run(sharded).fingerprint(), kGolden)
        << "with " << threads << " threads";
  }
}

TEST(Scenario, CrashedWorkForcesRedundantExpansion) {
  // A crash destroying a worker's pool and unreported completions must be
  // paid for in re-expanded nodes, and the report must expose that cost.
  ScenarioSpec spec = base_spec("crash-costs-work", Backend::kFtbb, 42);
  spec.faults.crash(1, 0.08).crash(2, 0.08).crash(3, 0.08);
  const ScenarioReport report = ScenarioRunner::run(spec);
  expect_solved(report);
  EXPECT_GE(report.total_expanded, report.unique_expanded);
  EXPECT_EQ(report.redundant_expansions,
            report.total_expanded - report.unique_expanded);
}

TEST(Scenario, DifferentSeedsProduceDifferentFingerprints) {
  ScenarioSpec spec_a = base_spec("seed-sensitivity", Backend::kFtbb, 51);
  ScenarioSpec spec_b = base_spec("seed-sensitivity", Backend::kFtbb, 52);
  spec_a.faults.loss(0.0, 1e9, 0.1);
  spec_b.faults.loss(0.0, 1e9, 0.1);
  spec_b.workload.seed = spec_a.workload.seed;  // same problem, new schedule
  const ScenarioReport a = ScenarioRunner::run(spec_a);
  const ScenarioReport b = ScenarioRunner::run(spec_b);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  // Both still solve the same instance optimally.
  EXPECT_DOUBLE_EQ(a.solution, b.solution);
}

TEST(Scenario, ReportCarriesTimelineAndDescribe) {
  ScenarioSpec spec = base_spec("timeline", Backend::kFtbb, 61);
  spec.faults.crash(1, 0.05).rejoin(1, 0.2).loss(0.1, 0.3, 0.2);
  const ScenarioReport report = ScenarioRunner::run(spec);
  ASSERT_EQ(report.timeline.size(), 3u);
  // Time-ordered.
  EXPECT_LE(report.timeline[0].time, report.timeline[1].time);
  EXPECT_LE(report.timeline[1].time, report.timeline[2].time);
  EXPECT_EQ(report.timeline[0].kind, FaultKind::kCrash);
  EXPECT_FALSE(report.to_string().empty());
  EXPECT_FALSE(spec.faults.describe().empty());
}

// ---------------------------------------------------------------------------
// Named fault-plan corpus: golden fingerprints + executor equality
// ---------------------------------------------------------------------------

struct NamedPlanCase {
  const char* name;
  std::uint32_t workers;
  FaultPlan plan;
  std::uint64_t golden;  // pinned ScenarioReport fingerprint (see below)
};

/// The corpus: one archetypal schedule per named factory, with fixed shape
/// parameters. The golden fingerprints are regression data recorded with the
/// CI toolchain (GCC, x86-64, Release); regenerate by running the test and
/// copying the "actual" values if the corpus or the simulator semantics
/// deliberately change.
std::vector<NamedPlanCase> named_plan_cases() {
  std::vector<NamedPlanCase> cases;
  cases.push_back({"flaky-link", 4,
                   FaultPlan::flaky_link(0, 2, 0.02, 0.5, 0.6, 0.06),
                   0xbedd27688b2c6af2ULL});
  cases.push_back({"rolling-restart", 4,
                   FaultPlan::rolling_restart(1, 3, 0.05, 0.08, 0.1),
                   0xeecdf5c085d9481bULL});
  cases.push_back({"flapping-partition", 4,
                   FaultPlan::flapping_partition(3, 0.04, 0.06, 0.05),
                   0xd6ad87d9d9192decULL});
  cases.push_back({"adversarial-churn", 2,
                   FaultPlan::adversarial_churn(2, 3, 0.05, 0.05),
                   0xd9ce2b9abc7d04bbULL});
  cases.push_back({"cascading-storm", 4,
                   FaultPlan::cascading_storm(1, 3, 0.05, 0.08, 0.12),
                   0x3d0aa57af5be3356ULL});
  cases.push_back({"asymmetric-partition", 4,
                   FaultPlan::asymmetric_partition(1, 3, 0.04, 0.07, 0.05),
                   0xdeff50c1d8aaf7e0ULL});
  return cases;
}

ScenarioSpec named_plan_spec(const NamedPlanCase& c) {
  ScenarioSpec spec = base_spec(c.name, Backend::kFtbb, 97);
  spec.workers = c.workers;
  spec.faults = c.plan;
  return spec;
}

TEST(NamedPlans, CompleteOptimallyAndMatchGoldenFingerprints) {
  for (const NamedPlanCase& c : named_plan_cases()) {
    const ScenarioReport report = ScenarioRunner::run(named_plan_spec(c));
    expect_solved(report);
    EXPECT_EQ(report.fingerprint(), c.golden)
        << c.name << " actual 0x" << std::hex << report.fingerprint() << "\n"
        << report.to_string();
  }
}

TEST(NamedPlans, ShardedExecutorReproducesEveryGolden) {
  for (const NamedPlanCase& c : named_plan_cases()) {
    for (const std::uint32_t threads : {2u, 4u}) {
      ScenarioSpec spec = named_plan_spec(c);
      spec.sim_threads = threads;
      const ScenarioReport report = ScenarioRunner::run(spec);
      EXPECT_EQ(report.fingerprint(), c.golden)
          << c.name << " with " << threads << " threads\n" << report.to_string();
    }
  }
}

TEST(NamedPlans, ExerciseTheIntendedFaultKinds) {
  EXPECT_TRUE(FaultPlan::flaky_link(0, 1, 0.0, 1.0, 0.5, 0.1).has(FaultKind::kLoss));
  const FaultPlan rolling = FaultPlan::rolling_restart(1, 2, 0.1, 0.1, 0.2);
  EXPECT_TRUE(rolling.has(FaultKind::kCrash));
  EXPECT_TRUE(rolling.has(FaultKind::kRejoin));
  EXPECT_TRUE(
      FaultPlan::flapping_partition(2, 0.0, 0.1, 0.1).has(FaultKind::kPartition));
  const FaultPlan churny = FaultPlan::adversarial_churn(4, 3, 0.1, 0.1);
  EXPECT_TRUE(churny.has(FaultKind::kChurn));
  EXPECT_TRUE(churny.has(FaultKind::kLoss));
  EXPECT_EQ(churny.max_node(), 6);
  const FaultPlan storm = FaultPlan::cascading_storm(1, 2, 0.1, 0.1, 0.2);
  EXPECT_TRUE(storm.has(FaultKind::kCrash));
  EXPECT_TRUE(storm.has(FaultKind::kRejoin));
  EXPECT_TRUE(storm.has(FaultKind::kPartition));
  EXPECT_TRUE(storm.has(FaultKind::kLoss));
  EXPECT_TRUE(
      FaultPlan::asymmetric_partition(1, 2, 0.0, 0.1, 0.1).has(FaultKind::kPartition));
}

// ---------------------------------------------------------------------------
// Planetary corpus: the hierarchical-topology fault family under a
// LAN/campus/WAN network. Same golden-fingerprint discipline as the named
// plans above, plus sharded-executor equality — these runs exercise the
// per-channel lookahead windows (topology-aligned shards, per-pair floors).
// ---------------------------------------------------------------------------

struct PlanetaryCase {
  const char* name;
  std::uint32_t workers;
  FaultPlan plan;
  std::uint64_t golden;  // pinned ScenarioReport fingerprint
};

constexpr std::uint32_t kPlanetaryNodesPerRack = 4;
constexpr std::uint32_t kPlanetaryRacksPerCampus = 2;

std::vector<PlanetaryCase> planetary_cases() {
  std::vector<PlanetaryCase> cases;
  cases.push_back({"planetary-churn", 8,
                   FaultPlan::planetary_churn(8, 5, 0.05, 0.04),
                   0x7f242dcf9997bbd9ULL});
  cases.push_back({"rack-failures", 12,
                   FaultPlan::rack_failures(1, 2, kPlanetaryNodesPerRack, 0.05,
                                            0.04, 0.1),
                   0x2fe602dd22a964abULL});
  cases.push_back({"cascading-partition", 24,
                   FaultPlan::cascading_partition(24, kPlanetaryNodesPerRack,
                                                  kPlanetaryRacksPerCampus,
                                                  0.04, 0.08, 0.04),
                   0xa9ad8d7a8eb61ab5ULL});
  cases.push_back({"planetary-storm", 24,
                   FaultPlan::planetary_storm(24, kPlanetaryNodesPerRack,
                                              kPlanetaryRacksPerCampus, 0.05,
                                              0.05),
                   0xad4d06cd043024abULL});
  return cases;
}

ScenarioSpec planetary_spec(const PlanetaryCase& c) {
  ScenarioSpec spec = base_spec(c.name, Backend::kFtbb, 131);
  spec.workers = c.workers;
  spec.faults = c.plan;
  spec.net.topology.nodes_per_rack = kPlanetaryNodesPerRack;
  spec.net.topology.racks_per_campus = kPlanetaryRacksPerCampus;
  return spec;
}

TEST(PlanetaryPlans, CompleteOptimallyAndMatchGoldenFingerprints) {
  for (const PlanetaryCase& c : planetary_cases()) {
    const ScenarioReport report = ScenarioRunner::run(planetary_spec(c));
    expect_solved(report);
    EXPECT_EQ(report.fingerprint(), c.golden)
        << c.name << " actual 0x" << std::hex << report.fingerprint() << "\n"
        << report.to_string();
  }
}

TEST(PlanetaryPlans, ShardedExecutorReproducesEveryGolden) {
  for (const PlanetaryCase& c : planetary_cases()) {
    for (const std::uint32_t threads : {2u, 4u}) {
      ScenarioSpec spec = planetary_spec(c);
      spec.sim_threads = threads;
      const ScenarioReport report = ScenarioRunner::run(spec);
      EXPECT_EQ(report.fingerprint(), c.golden)
          << c.name << " with " << threads << " threads\n" << report.to_string();
    }
  }
}

TEST(PlanetaryPlans, StormExercisesEveryFaultKind) {
  const FaultPlan storm = FaultPlan::planetary_storm(24, 4, 2, 0.05, 0.05);
  EXPECT_TRUE(storm.has(FaultKind::kCrash));
  EXPECT_TRUE(storm.has(FaultKind::kRejoin));
  EXPECT_TRUE(storm.has(FaultKind::kPartition));
  EXPECT_TRUE(storm.has(FaultKind::kLoss));
  EXPECT_TRUE(storm.has(FaultKind::kChurn));
  EXPECT_EQ(storm.distinct_fault_kinds(), kFaultKinds);
  // Churn arrivals extend the population: 24 initial + 6 heavy-tailed.
  EXPECT_EQ(storm.max_node(), 29);
}

TEST(FaultPlan, IsolateMaterializesARotatingMinority) {
  FaultPlan plan = FaultPlan::asymmetric_partition(2, 3, 0.0, 0.1, 0.1);
  plan.for_workers(5);
  ASSERT_EQ(plan.partitions().size(), 3u);
  // Episode 0 isolates {0, 1}; episode 1 {2, 3}; episode 2 {4, 0} (wraps).
  EXPECT_EQ(plan.partitions()[0].group_of, (std::vector<int>{1, 1, 0, 0, 0}));
  EXPECT_EQ(plan.partitions()[1].group_of, (std::vector<int>{0, 0, 1, 1, 0}));
  EXPECT_EQ(plan.partitions()[2].group_of, (std::vector<int>{1, 0, 0, 0, 1}));
}

TEST(FaultPlan, ValidatesAndCounts) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.distinct_fault_kinds(), 0);
  plan.crash(2, 0.1).rejoin(2, 0.5).split_halves(0.2, 0.3).loss(0.0, 1.0, 0.1);
  plan.churn(4, 2, 0.1, 0.1);
  EXPECT_EQ(plan.distinct_fault_kinds(), kFaultKinds);
  EXPECT_EQ(plan.max_node(), 5);
  plan.for_workers(6);
  ASSERT_EQ(plan.partitions().size(), 1u);
  EXPECT_EQ(plan.partitions()[0].group_of.size(), 6u);
  EXPECT_FALSE(plan.describe().empty());
}

TEST(FaultPlanDeath, RejoinWithoutCrashAborts) {
  FaultPlan plan;
  plan.rejoin(1, 0.5);
  EXPECT_DEATH(plan.for_workers(4), "rejoin without a preceding crash");
}

}  // namespace
}  // namespace ftbb::sim
