// Tests of the work ledger and the cost-model controller (core/cost_model.hpp):
// controller policy (only the time-priced knob scales; hysteresis; batch and
// grant sizing), ledger merge determinism (sequential vs sharded execution,
// bit for bit, with pinned golden fingerprints), per-incarnation counters
// across crash/revive, and the adversarial ShiftyProblem workload.
#include <gtest/gtest.h>

#include "bnb/sequential.hpp"
#include "bnb/shifty.hpp"
#include "core/cost_model.hpp"
#include "sim/cluster.hpp"
#include "sim/scenario.hpp"

namespace ftbb {
namespace {

// ---------------------------------------------------------------------------
// CostController policy
// ---------------------------------------------------------------------------

core::CostController make_controller(double base_timeout = 0.05,
                                     double base_backoff = 0.02,
                                     double base_flush = 1.0,
                                     std::uint32_t base_batch = 8,
                                     double report_msg_cost = 2e-4) {
  core::CostController c;
  c.configure(core::CostModelConfig{}, base_timeout, base_backoff, base_flush,
              base_batch, report_msg_cost);
  return c;
}

TEST(CostController, OnlyTheTimePricedKnobScales) {
  core::CostController c = make_controller();
  for (int i = 0; i < 200; ++i) c.observe(0.1);  // coarse nodes
  EXPECT_GT(c.tuned_ewma(), 0.05);
  // The request timeout grows with the observed node cost...
  EXPECT_DOUBLE_EQ(c.request_timeout(),
                   0.05 + core::CostModelConfig{}.timeout_safety * c.tuned_ewma());
  // ...while the message-priced knobs stay at base: their cost does not
  // grow with node cost, and scaling them is where efficiency is lost.
  EXPECT_DOUBLE_EQ(c.backoff(), 0.02);
  EXPECT_DOUBLE_EQ(c.flush_interval(), 1.0);
}

TEST(CostController, HysteresisSuppressesSmallRetunes) {
  core::CostController c = make_controller();
  for (int i = 0; i < 500; ++i) c.observe(1e-3);
  const std::uint64_t settled = c.retunes();
  const double tuned = c.tuned_ewma();
  // Small fluctuations (well inside the 25% hysteresis band) do not retune.
  for (int i = 0; i < 100; ++i) c.observe(1.05e-3);
  EXPECT_EQ(c.retunes(), settled);
  EXPECT_DOUBLE_EQ(c.tuned_ewma(), tuned);
  // A granularity shift far outside the band does.
  for (int i = 0; i < 200; ++i) c.observe(1e-2);
  EXPECT_GT(c.retunes(), settled);
  EXPECT_GT(c.tuned_ewma(), tuned * 2);
}

TEST(CostController, BatchShrinksOnCoarseNodesOnly) {
  core::CostController fine = make_controller();
  for (int i = 0; i < 200; ++i) fine.observe(1e-3);
  // Fine nodes: a report message amortizes over the full base batch.
  EXPECT_EQ(fine.report_batch(), 8u);

  core::CostController coarse = make_controller();
  for (int i = 0; i < 200; ++i) coarse.observe(0.1);
  // Coarse nodes: holding 8 completions back costs far more search time
  // than the message saves, so the batch shrinks (to 1 at this extreme).
  EXPECT_LT(coarse.report_batch(), 8u);
  EXPECT_GE(coarse.report_batch(), 1u);
}

TEST(CostController, GrantSizeIsCappedByTheTimeoutHorizon) {
  core::CostController c = make_controller();
  for (int i = 0; i < 200; ++i) c.observe(0.5);  // very coarse
  // The requester re-asks after its timeout; granting more work than two
  // timeout windows of it just strands subproblems on a peer.
  const double horizon = 2.0 * c.request_timeout() / c.tuned_ewma();
  EXPECT_LE(c.grant_size(1000), static_cast<std::uint32_t>(horizon) + 1);
  EXPECT_GE(c.grant_size(1000), 1u);
  // Never grants more than suggested.
  EXPECT_LE(c.grant_size(2), 2u);
}

// ---------------------------------------------------------------------------
// WorkLedger merge semantics
// ---------------------------------------------------------------------------

TEST(WorkLedger, AddIsCommutativeAndFingerprintSeesEveryField) {
  core::WorkLedger a;
  core::WorkLedger b;
  a[core::WorkItem::kExpansions] = 3;
  a.seconds[0] = 1.5;
  b[core::WorkItem::kMsgsSent] = 7;
  b.redundant_seconds = 0.25;

  core::WorkLedger ab = a;
  ab.add(b);
  core::WorkLedger ba = b;
  ba.add(a);
  EXPECT_EQ(ab.fingerprint(), ba.fingerprint());

  // Every counter, every time bucket, and the redundant-seconds field all
  // perturb the fingerprint.
  for (int i = 0; i < core::kWorkItems; ++i) {
    core::WorkLedger l = ab;
    l.items[i] += 1;
    EXPECT_NE(l.fingerprint(), ab.fingerprint()) << "item " << i;
  }
  for (int i = 0; i < core::WorkLedger::kTimeKinds; ++i) {
    core::WorkLedger l = ab;
    l.seconds[i] += 0.5;
    EXPECT_NE(l.fingerprint(), ab.fingerprint()) << "time " << i;
  }
  core::WorkLedger l = ab;
  l.redundant_seconds += 0.5;
  EXPECT_NE(l.fingerprint(), ab.fingerprint());
  EXPECT_FALSE(ab.to_string().empty());
}

// ---------------------------------------------------------------------------
// Work-mix determinism: sequential vs sharded, with pinned goldens
// ---------------------------------------------------------------------------

struct WorkMixCase {
  const char* name;
  std::uint32_t workers;
  sim::FaultPlan plan;
  std::uint64_t golden;  // pinned WorkLedger fingerprint (CI toolchain)
};

std::vector<WorkMixCase> work_mix_cases() {
  std::vector<WorkMixCase> cases;
  cases.push_back({"flaky-link", 4,
                   sim::FaultPlan::flaky_link(0, 2, 0.02, 0.5, 0.6, 0.06),
                   0xeb8c5bc364900856ULL});
  cases.push_back({"rolling-restart", 4,
                   sim::FaultPlan::rolling_restart(1, 3, 0.05, 0.08, 0.1),
                   0x1bd4a512149e2b01ULL});
  cases.push_back({"cascading-storm", 4,
                   sim::FaultPlan::cascading_storm(1, 3, 0.05, 0.08, 0.12),
                   0x45ae4ace67219776ULL});
  return cases;
}

sim::ScenarioSpec work_mix_spec(const WorkMixCase& c) {
  sim::ScenarioSpec spec;
  spec.name = c.name;
  spec.backend = sim::Backend::kFtbb;
  spec.seed = 97;
  spec.workers = c.workers;
  spec.time_limit = 300.0;
  spec.workload.kind = sim::WorkloadKind::kSyntheticTree;
  spec.workload.size = 601;
  spec.workload.seed = 97;
  // Coarse enough that the fault schedules (first events at 0.02-0.05)
  // land inside the run and perturb the work mix, not after termination.
  spec.workload.cost_mean = 0.01;
  spec.tune_for_small_problems();
  spec.faults = c.plan;
  return spec;
}

TEST(WorkMix, SequentialAndShardedLedgersAreBitIdentical) {
  for (const WorkMixCase& c : work_mix_cases()) {
    const sim::ScenarioReport seq = sim::ScenarioRunner::run(work_mix_spec(c));
    ASSERT_TRUE(seq.work_mix.has_value());
    EXPECT_EQ(seq.work_mix->fingerprint(), c.golden)
        << c.name << " actual 0x" << std::hex << seq.work_mix->fingerprint()
        << "\n" << seq.work_mix->to_string();
    for (const std::uint32_t threads : {2u, 4u}) {
      sim::ScenarioSpec spec = work_mix_spec(c);
      spec.sim_threads = threads;
      const sim::ScenarioReport sharded = sim::ScenarioRunner::run(spec);
      ASSERT_TRUE(sharded.work_mix.has_value());
      EXPECT_EQ(sharded.work_mix->fingerprint(), seq.work_mix->fingerprint())
          << c.name << " with " << threads << " threads\n"
          << sharded.work_mix->to_string();
    }
  }
}

TEST(WorkMix, LedgerIsConsistentWithTheReportItRidesIn) {
  const sim::ScenarioReport report =
      sim::ScenarioRunner::run(work_mix_spec(work_mix_cases()[0]));
  ASSERT_TRUE(report.work_mix.has_value());
  const core::WorkLedger& work = *report.work_mix;
  EXPECT_EQ(work[core::WorkItem::kExpansions], report.total_expanded);
  EXPECT_EQ(work[core::WorkItem::kRedundantExpansions],
            report.redundant_expansions);
  EXPECT_EQ(work.redundant_seconds, report.redundant_cost);
  EXPECT_EQ(work[core::WorkItem::kMsgsSent], report.messages_sent);
  EXPECT_EQ(work[core::WorkItem::kWireBytesSent], report.bytes_sent);
  // The pool sees every expansion at least once.
  EXPECT_GE(work[core::WorkItem::kPoolPushes], report.total_expanded);
}

TEST(WorkMix, CrashAndReviveResetPerIncarnationCounters) {
  sim::ScenarioSpec spec = work_mix_spec(work_mix_cases()[0]);

  const sim::Workload workload = sim::build_workload(spec.workload);
  sim::ClusterConfig cfg;
  cfg.workers = 4;
  cfg.worker = spec.worker;
  cfg.seed = spec.seed;
  cfg.time_limit = spec.time_limit;
  cfg.crashes.push_back(sim::CrashEvent{1, 0.02});
  cfg.rejoins.push_back(sim::ReviveEvent{1, 0.06});
  const sim::ClusterResult res = sim::SimCluster::run(*workload.model, cfg);
  ASSERT_TRUE(res.all_live_halted);
  ASSERT_EQ(res.worker_ledgers.size(), 4u);
  // The bounced host merged two incarnations; everyone else ran one.
  EXPECT_EQ(res.worker_ledgers[1][core::WorkItem::kIncarnations], 2u);
  for (const std::uint32_t w : {0u, 2u, 3u}) {
    EXPECT_EQ(res.worker_ledgers[w][core::WorkItem::kIncarnations], 1u) << w;
  }
  EXPECT_EQ(res.work[core::WorkItem::kIncarnations], 5u);
  // The cluster merge is exactly the sum of the per-host merges.
  core::WorkLedger sum;
  for (const core::WorkLedger& l : res.worker_ledgers) sum.add(l);
  sum[core::WorkItem::kRedundantExpansions] = res.redundant_expansions;
  sum.redundant_seconds = res.redundant_cost;
  EXPECT_EQ(sum.fingerprint(), res.work.fingerprint());
}

// ---------------------------------------------------------------------------
// The adversarial ShiftyProblem workload
// ---------------------------------------------------------------------------

TEST(Shifty, IsPureAndDeterministic) {
  bnb::ShiftyOptions opts;
  opts.depth_limit = 10;
  bnb::ShiftyProblem a(7, opts);
  bnb::ShiftyProblem b(7, opts);
  EXPECT_EQ(a.total_nodes(), b.total_nodes());
  EXPECT_EQ(a.total_leaves(), b.total_leaves());
  ASSERT_TRUE(a.known_optimal().has_value());
  EXPECT_EQ(*a.known_optimal(), *b.known_optimal());
  // Different seeds give different trees.
  bnb::ShiftyProblem c(8, opts);
  EXPECT_TRUE(a.total_nodes() != c.total_nodes() ||
              *a.known_optimal() != *c.known_optimal());
}

TEST(Shifty, SequentialSolveMatchesKnownOptimal) {
  bnb::ShiftyOptions opts;
  opts.depth_limit = 12;
  bnb::ShiftyProblem problem(13, opts);
  const bnb::SeqResult res = bnb::solve_sequential(problem, bnb::SeqOptions{});
  ASSERT_TRUE(res.completed);
  ASSERT_TRUE(problem.known_optimal().has_value());
  EXPECT_DOUBLE_EQ(res.best_value, *problem.known_optimal());
}

TEST(Shifty, BranchingShiftsBetweenPhases) {
  bnb::ShiftyOptions opts;
  opts.depth_limit = 16;
  opts.phase_period = 4;
  bnb::ShiftyProblem problem(7, opts);
  // Depths 0-3 bushy, 4-7 skinny, 8-11 bushy again, ...
  EXPECT_FALSE(problem.in_skinny_band(0));
  EXPECT_FALSE(problem.in_skinny_band(3));
  EXPECT_TRUE(problem.in_skinny_band(4));
  EXPECT_TRUE(problem.in_skinny_band(7));
  EXPECT_FALSE(problem.in_skinny_band(8));
  EXPECT_TRUE(problem.in_skinny_band(12));
}

}  // namespace
}  // namespace ftbb
