// Tests for the completion table (list contraction, complement, coverage).
//
// The property tests build random *consistent* code sets by generating a
// random basic tree and completing random subsets of its leaves, then
// compare CodeSet against an oracle that tracks completion per tree node
// with explicit upward propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bnb/basic_tree.hpp"
#include "core/code_set.hpp"
#include "support/rng.hpp"

namespace ftbb::core {
namespace {

using bnb::BasicTree;
using bnb::RandomTreeConfig;

PathCode path(std::initializer_list<std::pair<std::uint32_t, bool>> steps) {
  PathCode code = PathCode::root();
  for (auto [var, bit] : steps) code = code.child(var, bit);
  return code;
}

TEST(CodeSet, EmptyTable) {
  CodeSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.code_count(), 0u);
  EXPECT_FALSE(set.root_complete());
  EXPECT_FALSE(set.covered(PathCode::root()));
  EXPECT_TRUE(set.export_codes().empty());
  set.check_invariants();
}

TEST(CodeSet, EmptyTableComplementIsRoot) {
  CodeSet set;
  const auto complement = set.complement();
  ASSERT_EQ(complement.size(), 1u);
  EXPECT_TRUE(complement[0].is_root());
}

TEST(CodeSet, SingleInsert) {
  CodeSet set;
  const PathCode c = path({{1, false}, {2, true}});
  const auto r = set.insert(c);
  EXPECT_TRUE(r.newly_covered);
  EXPECT_TRUE(set.covered(c));
  EXPECT_FALSE(set.covered(c.sibling()));
  EXPECT_FALSE(set.covered(PathCode::root()));
  EXPECT_TRUE(set.covered(c.child(9, true)));  // descendants are covered
  EXPECT_EQ(set.code_count(), 1u);
  set.check_invariants();
}

TEST(CodeSet, InsertIsIdempotent) {
  CodeSet set;
  const PathCode c = path({{1, false}});
  EXPECT_TRUE(set.insert(c).newly_covered);
  EXPECT_FALSE(set.insert(c).newly_covered);
  EXPECT_EQ(set.code_count(), 1u);
}

TEST(CodeSet, SiblingsContractToParent) {
  CodeSet set;
  set.insert(path({{1, false}, {2, false}}));
  EXPECT_EQ(set.code_count(), 1u);
  const auto r = set.insert(path({{1, false}, {2, true}}));
  EXPECT_EQ(r.merges, 1u);
  EXPECT_EQ(set.code_count(), 1u);
  const auto codes = set.export_codes();
  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(codes[0], path({{1, false}}));  // the parent
  set.check_invariants();
}

TEST(CodeSet, ContractionCascadesToRoot) {
  // Completing all four grandchildren contracts pairwise up to the root —
  // the termination condition of Section 5.4.
  CodeSet set;
  set.insert(path({{1, false}, {2, false}}));
  set.insert(path({{1, false}, {2, true}}));
  EXPECT_FALSE(set.root_complete());
  set.insert(path({{1, true}, {3, false}}));
  const auto r = set.insert(path({{1, true}, {3, true}}));
  EXPECT_GE(r.merges, 2u);  // pair -> (x1,1), then siblings -> root
  EXPECT_TRUE(set.root_complete());
  EXPECT_EQ(set.code_count(), 1u);
  ASSERT_EQ(set.export_codes().size(), 1u);
  EXPECT_TRUE(set.export_codes()[0].is_root());
  EXPECT_TRUE(set.complement().empty());
  set.check_invariants();
}

TEST(CodeSet, AncestorSubsumesDescendants) {
  CodeSet set;
  set.insert(path({{1, false}, {2, false}, {4, true}}));
  set.insert(path({{1, false}, {2, true}}));
  EXPECT_EQ(set.code_count(), 2u);
  // Insert the ancestor of both: everything below (x1,0) collapses.
  set.insert(path({{1, false}}));
  EXPECT_EQ(set.code_count(), 1u);
  EXPECT_TRUE(set.covered(path({{1, false}, {2, false}})));
  set.check_invariants();
}

TEST(CodeSet, DescendantOfCompleteIsNoop) {
  CodeSet set;
  set.insert(path({{1, false}}));
  const auto r = set.insert(path({{1, false}, {2, true}, {3, false}}));
  EXPECT_FALSE(r.newly_covered);
  EXPECT_EQ(set.code_count(), 1u);
}

TEST(CodeSet, RootInsertCompletesEverything) {
  CodeSet set;
  set.insert(path({{1, false}, {2, true}}));
  set.insert(PathCode::root());
  EXPECT_TRUE(set.root_complete());
  EXPECT_EQ(set.code_count(), 1u);
  EXPECT_TRUE(set.covered(path({{5, true}})));
  set.check_invariants();
}

TEST(CodeSet, CoveringCode) {
  CodeSet set;
  const PathCode c = path({{1, false}, {2, true}});
  set.insert(c);
  EXPECT_EQ(set.covering_code(c), c);
  EXPECT_EQ(set.covering_code(c.child(7, false)), c);
  EXPECT_EQ(set.covering_code(c.sibling()), std::nullopt);
  EXPECT_EQ(set.covering_code(PathCode::root()), std::nullopt);
  set.insert(c.sibling());
  // After contraction the covering code is the parent.
  EXPECT_EQ(set.covering_code(c), path({{1, false}}));
}

TEST(CodeSet, ComplementListsUnreportedSiblings) {
  CodeSet set;
  set.insert(path({{1, false}, {2, true}}));
  const auto complement = set.complement();
  // Uncovered regions: (x1,0)(x2,0) and (x1,1).
  ASSERT_EQ(complement.size(), 2u);
  EXPECT_NE(std::find(complement.begin(), complement.end(),
                      path({{1, false}, {2, false}})),
            complement.end());
  EXPECT_NE(std::find(complement.begin(), complement.end(), path({{1, true}})),
            complement.end());
}

TEST(CodeSet, ComplementIsDisjointFromTable) {
  CodeSet set;
  set.insert(path({{1, false}, {2, true}, {5, false}}));
  set.insert(path({{1, true}, {3, false}}));
  for (const PathCode& c : set.complement()) {
    EXPECT_FALSE(set.covered(c)) << c.to_string();
    // And no completed code lies inside a complement region.
    for (const PathCode& done : set.export_codes()) {
      EXPECT_FALSE(c.contains(done));
    }
  }
}

TEST(CodeSet, ExportOrderIsDeterministicDfs) {
  CodeSet a;
  CodeSet b;
  const std::vector<PathCode> codes = {
      path({{1, true}, {3, false}}),
      path({{1, false}, {2, true}}),
      path({{1, false}, {2, false}, {4, true}}),
  };
  for (const auto& c : codes) a.insert(c);
  for (auto it = codes.rbegin(); it != codes.rend(); ++it) b.insert(*it);
  EXPECT_EQ(a.export_codes(), b.export_codes());
  EXPECT_TRUE(a == b);
}

TEST(CodeSet, EncodedBytesTracksExport) {
  CodeSet set;
  set.insert(path({{1, false}, {2, true}}));
  set.insert(path({{1, true}}));
  support::ByteWriter w;
  const auto codes = set.export_codes();
  w.varint(codes.size());
  for (const auto& c : codes) c.encode(w);
  EXPECT_EQ(set.encoded_bytes(), w.size());
}

TEST(CodeSet, ClearResets) {
  CodeSet set;
  set.insert(path({{1, false}}));
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.root_complete());
  EXPECT_EQ(set.trie_nodes(), 1u);
  set.check_invariants();
}

TEST(CodeSetDeath, InconsistentVariableAborts) {
  CodeSet set;
  set.insert(path({{1, false}, {2, false}}));
  ASSERT_DEATH(set.insert(path({{1, false}, {9, true}})),
               "disagree on a node's branching variable");
}

// ---------------------------------------------------------------------------
// Property tests against an oracle on random trees
// ---------------------------------------------------------------------------

struct Oracle {
  const BasicTree* tree;
  std::vector<char> complete;  // per node index

  explicit Oracle(const BasicTree* t) : tree(t), complete(t->size(), 0) {}

  void mark(std::int32_t idx) {
    if (complete[static_cast<std::size_t>(idx)]) return;
    complete[static_cast<std::size_t>(idx)] = 1;
    propagate();
  }

  void propagate() {
    // Fixpoint: a node with two complete children is complete; children of
    // complete nodes are complete.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < tree->size(); ++i) {
        const auto& n = tree->node(i);
        if (n.is_leaf()) continue;
        const bool kids = complete[static_cast<std::size_t>(n.child[0])] &&
                          complete[static_cast<std::size_t>(n.child[1])];
        if (kids && !complete[i]) {
          complete[i] = 1;
          changed = true;
        }
        if (complete[i]) {
          for (const auto c : n.child) {
            if (!complete[static_cast<std::size_t>(c)]) {
              complete[static_cast<std::size_t>(c)] = 1;
              changed = true;
            }
          }
        }
      }
    }
  }
};

/// Collects (code, node index) for every node of the tree.
void collect_codes(const BasicTree& tree, std::int32_t idx, const PathCode& code,
                   std::vector<std::pair<PathCode, std::int32_t>>& out) {
  out.emplace_back(code, idx);
  const auto& n = tree.node(static_cast<std::size_t>(idx));
  if (n.is_leaf()) return;
  for (int bit = 0; bit < 2; ++bit) {
    collect_codes(tree, n.child[bit], code.child(n.var, bit != 0), out);
  }
}

class CodeSetPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodeSetPropertyTest, MatchesOracleOnRandomCompletions) {
  const std::uint64_t seed = GetParam();
  RandomTreeConfig cfg;
  cfg.target_nodes = 301;
  cfg.seed = seed;
  const BasicTree tree = BasicTree::random(cfg);
  std::vector<std::pair<PathCode, std::int32_t>> nodes;
  collect_codes(tree, 0, PathCode::root(), nodes);

  support::Rng rng(seed * 13 + 7);
  CodeSet set;
  Oracle oracle(&tree);
  // Complete a random sequence of leaves (the realistic input: interior
  // completions arise only from contraction).
  std::vector<std::size_t> leaf_indices;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (tree.node(static_cast<std::size_t>(nodes[i].second)).is_leaf()) {
      leaf_indices.push_back(i);
    }
  }
  const std::size_t to_complete = leaf_indices.size() / 2 + 1;
  const auto picks =
      rng.sample_without_replacement(leaf_indices.size(), to_complete);
  for (const std::size_t pick : picks) {
    const auto& [code, idx] = nodes[leaf_indices[pick]];
    set.insert(code);
    oracle.mark(idx);
  }
  set.check_invariants();

  // Coverage agrees with the oracle on every node of the tree.
  for (const auto& [code, idx] : nodes) {
    EXPECT_EQ(set.covered(code),
              oracle.complete[static_cast<std::size_t>(idx)] != 0)
        << code.to_string();
  }

  // The complement + the completed set partition the leaves: every leaf is
  // covered either by the table or by exactly one complement region.
  const auto complement = set.complement();
  for (const auto& [code, idx] : nodes) {
    if (!tree.node(static_cast<std::size_t>(idx)).is_leaf()) continue;
    int covering_regions = 0;
    for (const PathCode& region : complement) {
      if (region.contains(code)) ++covering_regions;
    }
    if (set.covered(code)) {
      EXPECT_EQ(covering_regions, 0) << code.to_string();
    } else {
      EXPECT_EQ(covering_regions, 1) << code.to_string();
    }
  }
}

TEST_P(CodeSetPropertyTest, InsertionOrderDoesNotMatter) {
  const std::uint64_t seed = GetParam();
  RandomTreeConfig cfg;
  cfg.target_nodes = 201;
  cfg.seed = seed + 1000;
  const BasicTree tree = BasicTree::random(cfg);
  std::vector<std::pair<PathCode, std::int32_t>> nodes;
  collect_codes(tree, 0, PathCode::root(), nodes);

  std::vector<PathCode> leaves;
  for (const auto& [code, idx] : nodes) {
    if (tree.node(static_cast<std::size_t>(idx)).is_leaf()) leaves.push_back(code);
  }
  support::Rng rng(seed);
  CodeSet forward;
  for (const auto& c : leaves) forward.insert(c);
  // Shuffled insertion produces the identical contracted table.
  std::vector<PathCode> shuffled = leaves;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.pick(i)]);
  }
  CodeSet backward;
  for (const auto& c : shuffled) backward.insert(c);
  EXPECT_TRUE(forward == backward);
  // All leaves complete -> the whole tree contracts to the root.
  EXPECT_TRUE(forward.root_complete());
}

TEST_P(CodeSetPropertyTest, MergingPartialTablesEqualsDirectInsert) {
  const std::uint64_t seed = GetParam();
  RandomTreeConfig cfg;
  cfg.target_nodes = 201;
  cfg.seed = seed + 2000;
  const BasicTree tree = BasicTree::random(cfg);
  std::vector<std::pair<PathCode, std::int32_t>> nodes;
  collect_codes(tree, 0, PathCode::root(), nodes);
  std::vector<PathCode> leaves;
  for (const auto& [code, idx] : nodes) {
    if (tree.node(static_cast<std::size_t>(idx)).is_leaf()) leaves.push_back(code);
  }
  // Split leaves across two "workers"; merging their contracted exports into
  // a third table equals inserting everything directly (epidemic-merge
  // correctness).
  CodeSet a;
  CodeSet b;
  CodeSet direct;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    (i % 2 ? a : b).insert(leaves[i]);
    direct.insert(leaves[i]);
  }
  CodeSet merged;
  merged.insert_all(a.export_codes());
  merged.insert_all(b.export_codes());
  EXPECT_TRUE(merged == direct);
  merged.check_invariants();
}

TEST_P(CodeSetPropertyTest, ComplementUnionExportTilesTreeAndDrivesRootComplete) {
  const std::uint64_t seed = GetParam();
  RandomTreeConfig cfg;
  cfg.target_nodes = 301;
  cfg.seed = seed + 3000;
  const BasicTree tree = BasicTree::random(cfg);
  std::vector<std::pair<PathCode, std::int32_t>> nodes;
  collect_codes(tree, 0, PathCode::root(), nodes);
  std::vector<std::size_t> leaf_indices;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (tree.node(static_cast<std::size_t>(nodes[i].second)).is_leaf()) {
      leaf_indices.push_back(i);
    }
  }

  support::Rng rng(seed * 31 + 11);
  CodeSet set;
  // Random completed subset (possibly empty, possibly everything).
  const std::size_t to_complete = rng.pick(leaf_indices.size() + 1);
  const auto picks =
      rng.sample_without_replacement(leaf_indices.size(), to_complete);
  for (const std::size_t pick : picks) {
    set.insert(nodes[leaf_indices[pick]].first);
  }
  set.check_invariants();

  const std::vector<PathCode> exported = set.export_codes();
  const std::vector<PathCode> complement = set.complement();

  // The two lists are disjoint region sets: no code of one lies inside a
  // region of the other.
  for (const PathCode& e : exported) {
    for (const PathCode& c : complement) {
      EXPECT_FALSE(e.contains(c)) << e.to_string() << " vs " << c.to_string();
      EXPECT_FALSE(c.contains(e)) << c.to_string() << " vs " << e.to_string();
    }
  }

  // Exact tiling: every leaf of the underlying tree lies in exactly one
  // region of export ∪ complement.
  std::vector<PathCode> regions = exported;
  regions.insert(regions.end(), complement.begin(), complement.end());
  for (const std::size_t i : leaf_indices) {
    const PathCode& leaf = nodes[i].first;
    int covering = 0;
    for (const PathCode& region : regions) {
      if (region.contains(leaf)) ++covering;
    }
    EXPECT_EQ(covering, 1) << leaf.to_string();
  }

  // Failure recovery closes the computation: handing the complement regions
  // back as completions (what re-execution eventually reports) contracts the
  // table to the root.
  CodeSet recovered = set;
  recovered.insert_all(complement);
  EXPECT_TRUE(recovered.root_complete());
  recovered.check_invariants();

  // And a cold restart from the two exported lists alone rebuilds a
  // root-complete table (self-containment of codes).
  CodeSet rebuilt;
  rebuilt.insert_all(exported);
  rebuilt.insert_all(complement);
  EXPECT_TRUE(rebuilt.root_complete());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodeSetPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace ftbb::core
