// Unit tests of the BnbWorker state machine against a scripted environment.
//
// These exercise protocol details end-to-end tests can't isolate: grant /
// deny decisions, report batching, request timeout bookkeeping, recovery
// by complement, and the termination broadcast.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "bnb/basic_tree.hpp"
#include "core/worker.hpp"

namespace ftbb::core {
namespace {

using bnb::BasicTree;
using bnb::RandomTreeConfig;
using bnb::TreeProblem;

class ScriptedEnv : public IWorkerEnv {
 public:
  struct TimerRec {
    TimerKind kind;
    double at;
    std::uint64_t gen;
    double delay = 0.0;  // as requested at arm time
    bool fired = false;
  };

  double clock = 0.0;
  std::vector<std::pair<NodeId, Message>> sent;
  std::vector<TimerRec> timers;
  std::vector<NodeId> peer_list;
  bool halted_notified = false;

  [[nodiscard]] double now() const override { return clock; }
  void send(NodeId to, Message msg) override { sent.emplace_back(to, std::move(msg)); }
  void set_timer(TimerKind kind, double delay, std::uint64_t gen) override {
    timers.push_back(TimerRec{kind, clock + delay, gen, delay, false});
  }
  void charge(CostKind, double seconds) override { clock += seconds; }
  support::Rng& rng() override { return rng_; }
  [[nodiscard]] const std::vector<NodeId>& peers() const override { return peer_list; }
  void set_wait_hint(WaitHint) override {}
  void notify_halted() override { halted_notified = true; }

  /// Fires the earliest pending timer (ties: creation order). Returns false
  /// when none remain.
  bool fire_next(BnbWorker& worker) {
    std::size_t best = timers.size();
    for (std::size_t i = 0; i < timers.size(); ++i) {
      if (timers[i].fired) continue;
      if (best == timers.size() || timers[i].at < timers[best].at) best = i;
    }
    if (best == timers.size()) return false;
    timers[best].fired = true;
    clock = std::max(clock, timers[best].at);
    worker.on_timer(timers[best].kind, timers[best].gen);
    return true;
  }

  /// Runs the worker on timers alone until it halts (or the step budget is
  /// spent). Only meaningful for solo runs (no peers answering).
  bool run_to_halt(BnbWorker& worker, int budget = 200000) {
    while (!worker.halted() && budget-- > 0) {
      if (!fire_next(worker)) return false;
    }
    return worker.halted();
  }

  [[nodiscard]] std::vector<const Message*> sent_of(MsgType type) const {
    std::vector<const Message*> out;
    for (const auto& [to, m] : sent) {
      if (m.type == type) out.push_back(&m);
    }
    return out;
  }

 private:
  support::Rng rng_{7};
};

struct Fixture {
  BasicTree tree;
  TreeProblem problem;
  ScriptedEnv env;
  WorkerConfig config;

  explicit Fixture(std::uint64_t seed, std::uint64_t nodes = 201)
      : tree(make_tree(seed, nodes)), problem(&tree) {
    config.report_batch = 3;
    config.report_flush_interval = 0.5;
    config.work_request_timeout = 0.1;
    config.idle_backoff = 0.05;
    config.initial_stagger = 0.01;
  }

  static BasicTree make_tree(std::uint64_t seed, std::uint64_t nodes) {
    RandomTreeConfig cfg;
    cfg.target_nodes = nodes;
    cfg.seed = seed;
    cfg.cost_mean = 1e-3;
    return BasicTree::random(cfg);
  }
};

TEST(Worker, SoloWithRootSolvesToTermination) {
  Fixture f(1);
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(/*with_root=*/true);
  ASSERT_TRUE(f.env.run_to_halt(worker));
  EXPECT_TRUE(f.env.halted_notified);
  EXPECT_DOUBLE_EQ(worker.incumbent(), f.tree.optimal_value());
  EXPECT_TRUE(worker.table().root_complete());
  EXPECT_GE(worker.stats().halted_at, 0.0);
}

TEST(Worker, SoloWithoutRootRecoversTheRootFromAnEmptyTable) {
  // A member that never receives work and has no peers must complement its
  // empty table — yielding the root — and solve everything itself. This is
  // the "all but one resource lost" degenerate case.
  Fixture f(2);
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(/*with_root=*/false);
  ASSERT_TRUE(f.env.run_to_halt(worker));
  EXPECT_DOUBLE_EQ(worker.incumbent(), f.tree.optimal_value());
  EXPECT_GE(worker.stats().recoveries, 1u);
}

TEST(Worker, BestCodeNamesAnOptimalLeaf) {
  Fixture f(3);
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(true);
  ASSERT_TRUE(f.env.run_to_halt(worker));
  const bnb::NodeEval leaf = f.problem.eval(worker.best_code());
  EXPECT_TRUE(leaf.feasible_leaf);
  EXPECT_DOUBLE_EQ(leaf.value, worker.incumbent());
}

TEST(Worker, DeniesWorkRequestWhenPoolTooSmall) {
  Fixture f(4);
  f.env.peer_list = {1, 2};
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(true);  // pool = {root} only
  Message req;
  req.type = MsgType::kWorkRequest;
  req.from = 1;
  req.request_id = 55;
  worker.on_message(req);
  const auto denies = f.env.sent_of(MsgType::kWorkDeny);
  ASSERT_EQ(denies.size(), 1u);
  EXPECT_EQ(denies[0]->request_id, 55u);
}

TEST(Worker, GrantsHalfThePoolOnRequest) {
  Fixture f(5);
  f.env.peer_list = {1, 2};
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(true);
  // Expand a few nodes so the pool grows past the grant threshold.
  for (int i = 0; i < 8 && !worker.pool().empty(); ++i) f.env.fire_next(worker);
  ASSERT_GE(worker.pool().size(), 2u);
  const std::size_t before = worker.pool().size();
  Message req;
  req.type = MsgType::kWorkRequest;
  req.from = 2;
  req.request_id = 9;
  worker.on_message(req);
  const auto grants = f.env.sent_of(MsgType::kWorkGrant);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0]->request_id, 9u);
  EXPECT_EQ(grants[0]->problems.size(), before / 2);
  EXPECT_EQ(worker.pool().size(), before - before / 2);
}

TEST(Worker, ReportsBatchAndCarryIncumbent) {
  Fixture f(6);
  f.env.peer_list = {1, 2, 3};
  Fixture* fp = &f;
  fp->config.report_fanout = 2;
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(true);
  // Run enough steps to accumulate report_batch completions.
  for (int i = 0; i < 2000 && f.env.sent_of(MsgType::kWorkReport).empty(); ++i) {
    if (!f.env.fire_next(worker)) break;
  }
  const auto reports = f.env.sent_of(MsgType::kWorkReport);
  ASSERT_GE(reports.size(), 2u);  // one report to each of fanout=2 peers
  EXPECT_FALSE(reports[0]->codes.empty());
  // Distinct recipients for one logical report.
  NodeId to0 = 0;
  NodeId to1 = 0;
  int found = 0;
  for (const auto& [to, m] : f.env.sent) {
    if (m.type == MsgType::kWorkReport && found < 2) {
      (found == 0 ? to0 : to1) = to;
      ++found;
    }
  }
  EXPECT_NE(to0, to1);
}

TEST(Worker, ReceivedReportCoversPoolEntries) {
  Fixture f(7);
  f.env.peer_list = {1};
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(true);
  for (int i = 0; i < 6 && !worker.pool().empty(); ++i) f.env.fire_next(worker);
  ASSERT_GE(worker.pool().size(), 1u);
  // Claim one pooled subproblem completed via a work report. snapshot() is
  // order-canonical (sorted by code), so this cannot couple to pool
  // internals.
  const PathCode victim = worker.pool().snapshot().front().code;
  Message report;
  report.type = MsgType::kWorkReport;
  report.from = 1;
  report.codes = {victim};
  const std::size_t before = worker.pool().size();
  worker.on_message(report);
  EXPECT_EQ(worker.pool().size(), before - 1);
  EXPECT_TRUE(worker.table().covered(victim));
}

TEST(Worker, RootReportTerminatesAndRebroadcasts) {
  Fixture f(8);
  f.env.peer_list = {1, 2, 3};
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(true);
  Message root_report;
  root_report.type = MsgType::kRootReport;
  root_report.from = 2;
  root_report.best_known = 42.0;
  root_report.codes = {PathCode::root()};
  worker.on_message(root_report);
  EXPECT_TRUE(worker.halted());
  EXPECT_TRUE(f.env.halted_notified);
  // Section 5.4: the detector sends the root code to all known members.
  EXPECT_EQ(f.env.sent_of(MsgType::kRootReport).size(), 3u);
}

TEST(Worker, IncumbentAbsorbedAndPruned) {
  Fixture f(9);
  f.env.peer_list = {1};
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(true);
  for (int i = 0; i < 10 && !worker.pool().empty(); ++i) f.env.fire_next(worker);
  ASSERT_GE(worker.pool().size(), 1u);
  // An incumbent below every bound wipes the pool (everything eliminated).
  Message deny;
  deny.type = MsgType::kWorkDeny;
  deny.from = 1;
  deny.best_known = -1e30;
  worker.on_message(deny);
  EXPECT_DOUBLE_EQ(worker.incumbent(), -1e30);
  EXPECT_TRUE(worker.pool().empty());
  EXPECT_GT(worker.stats().eliminated, 0u);
}

TEST(Worker, RequestTimeoutsEscalateToRecovery) {
  Fixture f(10);
  f.env.peer_list = {1};  // a peer that never answers (crashed)
  Fixture* fp = &f;
  fp->config.attempts_before_recovery = 2;
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(/*with_root=*/false);
  // Recovery requires repeated timeouts AND a progress stall; with an empty
  // table the stall threshold is further multiplied (a wrong suspicion would
  // duplicate the whole root problem). Keep firing timers until the worker
  // gives up on load balancing and complements.
  for (int i = 0; i < 2000 && worker.stats().recoveries == 0; ++i) {
    ASSERT_TRUE(f.env.fire_next(worker));
  }
  EXPECT_GE(worker.stats().work_requests_sent, 2u);
  EXPECT_GE(worker.stats().request_timeouts, 2u);
  EXPECT_GE(worker.stats().recoveries, 1u);
  EXPECT_FALSE(worker.pool().empty());  // recovered the root region
  // The stall gate held recovery back until the silence threshold.
  EXPECT_GE(f.env.clock,
            f.config.stall_recovery_factor * f.config.work_request_timeout);
}

TEST(Worker, StaleGrantIsStillAbsorbed) {
  Fixture f(11);
  f.env.peer_list = {1};
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(false);
  Message grant;
  grant.type = MsgType::kWorkGrant;
  grant.from = 1;
  grant.request_id = 999;  // matches no outstanding request
  grant.problems.push_back(bnb::Subproblem{
      PathCode::root().child(f.tree.root().var, false),
      f.tree.node(static_cast<std::size_t>(f.tree.root().child[0])).bound});
  worker.on_message(grant);
  EXPECT_EQ(worker.pool().size(), 1u);
}

TEST(Worker, GrantOfCoveredProblemIsDropped) {
  Fixture f(12);
  f.env.peer_list = {1};
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(false);
  const PathCode left = PathCode::root().child(f.tree.root().var, false);
  Message report;
  report.type = MsgType::kWorkReport;
  report.from = 1;
  report.codes = {left};
  worker.on_message(report);
  Message grant;
  grant.type = MsgType::kWorkGrant;
  grant.from = 1;
  grant.problems.push_back(bnb::Subproblem{left, 0.0});
  worker.on_message(grant);
  EXPECT_TRUE(worker.pool().empty());
  EXPECT_GT(worker.stats().covered_skips, 0u);
}

TEST(Worker, PaperLiteralReportCompressionAlsoWorks) {
  Fixture f(13);
  Fixture* fp = &f;
  fp->config.compress_against_table = false;  // contract the list only
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(true);
  ASSERT_TRUE(f.env.run_to_halt(worker));
  EXPECT_DOUBLE_EQ(worker.incumbent(), f.tree.optimal_value());
}

TEST(Worker, EliminationDisabledStillTerminates) {
  Fixture f(14, 101);
  Fixture* fp = &f;
  fp->config.enable_elimination = false;
  BnbWorker worker(0, &f.problem, f.config, &f.env);
  worker.on_start(true);
  ASSERT_TRUE(f.env.run_to_halt(worker));
  // Exhaustive traversal: every node expanded exactly once.
  EXPECT_EQ(worker.stats().expanded, f.tree.size());
  EXPECT_DOUBLE_EQ(worker.incumbent(), f.tree.optimal_value());
}

TEST(Worker, RecoveryPoliciesAllSolveSolo) {
  for (const RecoveryPolicy policy :
       {RecoveryPolicy::kRandom, RecoveryPolicy::kDeepest,
        RecoveryPolicy::kShallowest, RecoveryPolicy::kNearLastLocal}) {
    Fixture f(15, 101);
    Fixture* fp = &f;
    fp->config.recovery = policy;
    BnbWorker worker(0, &f.problem, f.config, &f.env);
    worker.on_start(false);
    ASSERT_TRUE(f.env.run_to_halt(worker)) << to_string(policy);
    EXPECT_DOUBLE_EQ(worker.incumbent(), f.tree.optimal_value()) << to_string(policy);
  }
}


TEST(Worker, AdaptiveTimeoutStretchesWithObservedNodeCost) {
  // The adaptive scheme (Section 7 future work) raises the request timeout
  // to factor * EWMA(node cost): after expanding coarse nodes, the worker
  // must arm request-timeout timers far beyond the configured base.
  RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = 31;
  tree_cfg.seed = 16;
  tree_cfg.cost_mean = 0.5;  // coarse nodes
  tree_cfg.cost_cv = 0.1;
  const BasicTree tree = BasicTree::random(tree_cfg);
  TreeProblem problem(&tree, /*honor_bounds=*/false);

  for (const bool adaptive : {false, true}) {
    ScriptedEnv env;
    env.peer_list = {1};
    WorkerConfig config;
    config.work_request_timeout = 0.02;  // base, far below node cost
    config.adaptive_timeouts = adaptive;
    config.adaptive_timeout_factor = 2.5;
    BnbWorker worker(0, &problem, config, &env);
    worker.on_start(/*with_root=*/false);
    // Hand it a single subtree; once finished it must seek work again.
    const bnb::TreeNode& root = tree.root();
    Message grant;
    grant.type = MsgType::kWorkGrant;
    grant.from = 1;
    grant.problems.push_back(bnb::Subproblem{
        PathCode::root().child(root.var, false),
        tree.node(static_cast<std::size_t>(root.child[0])).bound});
    worker.on_message(grant);
    double last_request_delay = -1.0;
    for (int i = 0; i < 500; ++i) {
      if (!env.fire_next(worker)) break;
      for (const auto& t : env.timers) {
        if (t.kind == TimerKind::kRequestTimeout) last_request_delay = t.delay;
      }
      if (last_request_delay > 0.0 && worker.stats().expanded > 5) break;
    }
    ASSERT_GT(worker.stats().expanded, 5u);
    ASSERT_GT(last_request_delay, 0.0);
    if (adaptive) {
      // ~2.5 * 0.5s, modulo the EWMA's spread.
      EXPECT_GT(last_request_delay, 0.5);
    } else {
      EXPECT_DOUBLE_EQ(last_request_delay, 0.02);
    }
  }
}


}  // namespace
}  // namespace ftbb::core
