// Differential test: the ladder EventQueue against the verbatim seed binary
// heap (bench/legacy_event_queue.hpp).
//
// Every golden ScenarioReport fingerprint depends on the kernel's exact
// dispatch order, so the ladder rewrite must be order-identical — not merely
// "sorted by time" but identical through every (t, src, seq) tie-break. The
// tests drive both queues with the same interleaved schedule/pop/run-to-
// limit streams — wide-uniform times, microscopic deltas, exact duplicate
// timestamps (dense tie storms that only src/seq discriminate), far-future
// spikes, and handler-style re-schedules at the current dispatch time — and
// assert the two pop sequences match event for event.
//
// The second half instruments the global allocator and asserts the
// InlineCallback small-buffer contract: once warm, schedule+dispatch of
// inline-sized callbacks performs ZERO heap allocations per event, and
// overflow-sized callbacks recycle through the thread-local block pool
// instead of malloc.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench/legacy_event_queue.hpp"
#include "sim/event_queue.hpp"
#include "support/rng.hpp"

// --- instrumented global allocator (this test binary only) -----------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }

void operator delete(void* p, const std::nothrow_t&) noexcept {
  operator delete(p);
}

namespace ftbb::sim {
namespace {

using bench::LegacyEventQueue;

/// Mirror driver: applies one identical operation stream to the ladder queue
/// and the seed heap, checking pop-order identity as it goes. Times are
/// drawn >= the last dispatched time, like every kernel schedule() call.
struct QueuePair {
  EventQueue ladder;
  LegacyEventQueue legacy;
  std::vector<std::uint64_t> ladder_log;
  std::vector<std::uint64_t> legacy_log;
  std::uint64_t next_id = 0;
  std::uint64_t next_seq = 0;
  double now = 0.0;
  double last_t = 0.0;  // most recently scheduled time (tie-storm anchor)

  void push(double t, OwnerId src, OwnerId owner) {
    const std::uint64_t id = next_id++;
    const std::uint64_t seq = next_seq++;
    last_t = t;
    ladder.push(t, src, seq, owner,
                [this, id]() { ladder_log.push_back(id); });
    legacy.push(t, src, seq, owner,
                [this, id]() { legacy_log.push_back(id); });
  }

  /// Pops one event from both queues, runs both callbacks, and checks the
  /// dispatched ids match. Returns false when both queues are empty.
  bool pop_one() {
    EXPECT_EQ(ladder.empty(), legacy.empty());
    if (ladder.empty()) return false;
    EventNode* a = ladder.pop();
    LegacyEventQueue::Event b = legacy.pop();
    EXPECT_EQ(a->t, b.t);
    EXPECT_EQ(a->src, b.src);
    EXPECT_EQ(a->seq, b.seq);
    EXPECT_EQ(a->owner, b.owner);
    now = a->t;
    a->fn();
    b.fn();
    ladder.recycle(a);
    EXPECT_EQ(ladder_log.back(), legacy_log.back());
    return true;
  }

  void drain() {
    while (pop_one()) {
    }
  }
};

/// One randomized schedule draw mixing the regimes a real kernel produces.
double draw_time(support::Rng& rng, const QueuePair& q) {
  const double dice = rng.uniform();
  if (dice < 0.30) return q.now + rng.uniform(0.0, 50.0);     // wide band
  if (dice < 0.50) return q.now + rng.uniform(0.0, 1e-6);     // dense near-now
  if (dice < 0.75) return std::max(q.last_t, q.now);          // exact tie storm
  if (dice < 0.90) return q.now + rng.uniform(0.0, 1.5);      // typical latency
  return q.now + rng.uniform(500.0, 5000.0);                  // far-future spike
}

class EventQueueDiff : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueDiff, InterleavedStreamIsOrderIdentical) {
  support::Rng rng(GetParam());
  QueuePair q;
  for (int step = 0; step < 60000; ++step) {
    const double dice = rng.uniform();
    if (q.ladder.empty() || dice < 0.52) {
      // src mixes control (-1) with a few node contexts so equal-time events
      // exercise the src-then-seq tie-break, not just seq.
      const auto src = static_cast<OwnerId>(rng.range(-1, 6));
      const auto owner = static_cast<OwnerId>(rng.range(0, 15));
      q.push(draw_time(rng, q), src, owner);
    } else if (dice < 0.80) {
      q.pop_one();
    } else if (dice < 0.92) {
      // Handler-style burst: dispatch a few events, re-scheduling at or just
      // above the dispatch time — pushes into the queue's active band.
      for (int burst = 0; burst < 32 && q.pop_one(); ++burst) {
        if (rng.chance(0.5)) {
          q.push(q.now + rng.uniform(0.0, 1e-9),
                 static_cast<OwnerId>(rng.range(-1, 2)), 0);
        }
      }
    } else {
      // Run-to-limit: drain everything below a horizon.
      const double limit = q.now + rng.uniform(0.0, 100.0);
      while (const EventNode* head = q.ladder.peek()) {
        if (head->t > limit) break;
        q.pop_one();
      }
    }
  }
  q.drain();
  EXPECT_EQ(q.ladder_log, q.legacy_log);
  EXPECT_EQ(q.ladder_log.size(), q.next_id);
}

TEST_P(EventQueueDiff, BulkLoadThenFullDrainMatches) {
  // Ladder conversion stress: one huge prefill (far beyond kHeapModeLimit,
  // with heavy duplicate-t clusters), then a full ordered drain.
  support::Rng rng(support::mix64(GetParam(), 0xB1C));
  QueuePair q;
  double cluster_t = 0.0;
  for (int i = 0; i < 120000; ++i) {
    if (i % 64 == 0) cluster_t = rng.uniform(0.0, 1e4);
    const double t = rng.chance(0.35) ? cluster_t : rng.uniform(0.0, 1e4);
    q.push(t, static_cast<OwnerId>(rng.range(-1, 3)),
           static_cast<OwnerId>(rng.range(0, 7)));
  }
  q.drain();
  EXPECT_EQ(q.ladder_log, q.legacy_log);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueDiff,
                         ::testing::Values(0x5EED0001ULL, 0x5EED0002ULL,
                                           0x5EED0003ULL, 0x5EED0004ULL));

TEST(EventQueueAlloc, InlineCallbacksAreAllocationFreeInSteadyState) {
  EventQueue q;
  std::uint64_t sink = 0;
  std::uint64_t seq = 0;
  support::Rng rng(0xA110C);
  double now = 0.0;
  const auto churn = [&](std::size_t ops) {
    for (std::size_t i = 0; i < ops; ++i) {
      EventNode* ev = q.pop();
      ASSERT_NE(ev, nullptr);
      now = ev->t;
      ev->fn();
      q.recycle(ev);
      // 24-byte capture — well inside the 64-byte inline buffer.
      q.push(now + rng.uniform(0.0, 10.0), 0, seq++, 0,
             [&sink, a = seq, b = now]() { sink += a + static_cast<std::uint64_t>(b); });
    }
  };
  // Prefill past the ladder-conversion threshold over the SAME horizon the
  // churn schedules into (now + U[0,10)), so the pending-set geometry is
  // stationary: rung spans, bucket occupancies, and band sizes fluctuate
  // around fixed means and every slab, rung, and bucket vector converges to
  // its steady-state capacity during warm-up. (A prefill over a much wider
  // span would leave a thinning tail of far-future events that keeps
  // changing the reband geometry for the whole run — a perpetual transient,
  // not a steady state.)
  for (int i = 0; i < 100000; ++i) {
    q.push(rng.uniform(0.0, 10.0), 0, seq++, 0, [&sink]() { ++sink; });
  }
  churn(300000);

  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  churn(100000);
  const std::uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "steady-state schedule/dispatch of inline-sized callbacks must not "
         "touch the heap";
  EXPECT_GT(sink, 0u);
}

TEST(EventQueueAlloc, OversizedCallbacksRecycleThroughBlockPool) {
  // A capture bigger than the 64-byte inline buffer spills into a pooled
  // 128-byte block; after warm-up the freelist serves every spill, so the
  // steady state stays malloc-free even for overflow callbacks.
  EventQueue q;
  std::uint64_t sink = 0;
  std::uint64_t seq = 0;
  support::Rng rng(0xB10C);
  double now = 0.0;
  struct Fat {
    std::uint64_t words[12];  // 96 bytes: overflow, but within one block
  };
  const auto churn = [&](std::size_t ops) {
    for (std::size_t i = 0; i < ops; ++i) {
      EventNode* ev = q.pop();
      ASSERT_NE(ev, nullptr);
      now = ev->t;
      ev->fn();
      q.recycle(ev);
      Fat fat{};
      fat.words[0] = seq;
      q.push(now + rng.uniform(0.0, 10.0), 0, seq++, 0,
             [&sink, fat]() { sink += fat.words[0]; });
    }
  };
  // Stationary prefill horizon (see the inline test above for why). The
  // smaller population needs proportionally more warm-up laps for every
  // bucket vector to see its long-run occupancy maximum.
  for (int i = 0; i < 5000; ++i) {
    q.push(rng.uniform(0.0, 10.0), 0, seq++, 0, [&sink]() { ++sink; });
  }
  churn(80000);

  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  churn(20000);
  const std::uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "warm overflow callbacks must come from the thread-local block pool";
}

}  // namespace
}  // namespace ftbb::sim
