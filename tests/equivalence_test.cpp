// Cross-backend equivalence: the decentralized protocol, the centralized
// manager/worker baseline, and the DIB baseline are different algorithms
// with different fault-tolerance machinery, but on the same instance they
// must agree on one thing — the optimal objective — even while a lossy,
// crash-laden FaultPlan is running. (Work counts, makespans, and message
// traffic legitimately differ; the optimum is the invariant.)
//
// Cross-substrate equivalence: the same ScenarioSpec also runs on the
// thread-backed rt runtime — real threads, wall-clock fault deadlines, the
// FaultDriver interpreting the identical compiled schedule — and must land
// on the same optimum as the simulated backends for every named plan in the
// corpus.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace ftbb::sim {
namespace {

constexpr Backend kBackends[] = {Backend::kFtbb, Backend::kCentral,
                                 Backend::kDib};

ScenarioSpec adversarial_spec(WorkloadKind kind, std::uint32_t size,
                              std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "equivalence";
  spec.seed = seed;
  spec.workers = 4;
  spec.time_limit = 300.0;
  spec.workload.kind = kind;
  spec.workload.size = size;
  spec.workload.seed = seed;
  spec.workload.cost_mean = 2e-3;
  spec.tune_for_small_problems();
  // The shared adversity: steady 8% loss, a mid-run crash, and a burst of
  // heavy loss on one link.
  spec.faults.loss(0.0, 1e9, 0.08);
  spec.faults.crash(2, 0.06);
  spec.faults.link_loss(0, 1, 0.1, 0.4, 0.5);
  return spec;
}

void expect_equivalent(WorkloadKind kind, std::uint32_t size,
                       std::uint64_t seed) {
  double solution = 0.0;
  bool first = true;
  for (const Backend backend : kBackends) {
    ScenarioSpec spec = adversarial_spec(kind, size, seed);
    spec.backend = backend;
    const ScenarioReport report = ScenarioRunner::run(spec);
    ASSERT_TRUE(report.completed) << report.to_string();
    ASSERT_TRUE(report.solution_found) << report.to_string();
    ASSERT_TRUE(report.optimum_known);
    EXPECT_TRUE(report.optimum_matched) << report.to_string();
    if (first) {
      solution = report.solution;
      first = false;
    } else {
      EXPECT_DOUBLE_EQ(report.solution, solution)
          << to_string(backend) << " disagrees: " << report.to_string();
    }
  }
}

TEST(Equivalence, KnapsackUnderLossyPlan) {
  expect_equivalent(WorkloadKind::kKnapsack, 12, 7);
  expect_equivalent(WorkloadKind::kKnapsack, 14, 8);
}

TEST(Equivalence, VertexCoverUnderLossyPlan) {
  expect_equivalent(WorkloadKind::kVertexCover, 10, 9);
  expect_equivalent(WorkloadKind::kVertexCover, 12, 10);
}

TEST(Equivalence, NumberPartitionUnderLossyPlan) {
  expect_equivalent(WorkloadKind::kNumberPartition, 10, 11);
}

TEST(Equivalence, SyntheticTreeUnderLossyPlan) {
  expect_equivalent(WorkloadKind::kSyntheticTree, 401, 12);
}

TEST(Equivalence, ShiftyUnderLossyPlan) {
  expect_equivalent(WorkloadKind::kShifty, 12, 13);
}

TEST(Equivalence, MaxSatUnderLossyPlan) {
  expect_equivalent(WorkloadKind::kMaxSat, 12, 14);
  expect_equivalent(WorkloadKind::kMaxSat, 14, 15);
}

TEST(Equivalence, TspUnderLossyPlan) {
  // n = 8 keeps the per-backend runs fast; n = 9 (36 edges) pushes live
  // codes past PathCode's inline buffer, so the heap-mode representation is
  // exercised across every backend's wire and table path too.
  expect_equivalent(WorkloadKind::kTsp, 8, 16);
  expect_equivalent(WorkloadKind::kTsp, 9, 17);
}

// ---------------------------------------------------------------------------
// Cross-substrate corpus agreement: every named FaultPlan replays on the rt
// backend through the same ScenarioRunner entry point, and rt agrees with
// the simulated backends on the optimum.
// ---------------------------------------------------------------------------

struct CorpusCase {
  const char* name;
  std::uint32_t workers;
  FaultPlan plan;
};

std::vector<CorpusCase> corpus() {
  std::vector<CorpusCase> cases;
  cases.push_back({"flaky-link", 4, FaultPlan::flaky_link(0, 2, 0.02, 0.5, 0.6, 0.06)});
  cases.push_back({"rolling-restart", 4,
                   FaultPlan::rolling_restart(1, 3, 0.05, 0.08, 0.1)});
  cases.push_back({"flapping-partition", 4,
                   FaultPlan::flapping_partition(3, 0.04, 0.06, 0.05)});
  cases.push_back({"adversarial-churn", 2,
                   FaultPlan::adversarial_churn(2, 3, 0.05, 0.05)});
  cases.push_back({"cascading-storm", 4,
                   FaultPlan::cascading_storm(1, 3, 0.05, 0.08, 0.12)});
  cases.push_back({"asymmetric-partition", 4,
                   FaultPlan::asymmetric_partition(1, 3, 0.04, 0.07, 0.05)});
  return cases;
}

TEST(Equivalence, CorpusPlansAgreeAcrossSubstrates) {
  constexpr Backend kSubstrates[] = {Backend::kFtbb, Backend::kCentral,
                                     Backend::kDib, Backend::kRt};
  for (const CorpusCase& c : corpus()) {
    double solution = 0.0;
    bool first = true;
    for (const Backend backend : kSubstrates) {
      ScenarioSpec spec;
      spec.name = std::string("corpus-") + c.name;
      spec.backend = backend;
      spec.seed = 97;
      spec.workers = c.workers;
      spec.time_limit = 300.0;
      spec.rt_wall_timeout = 60.0;
      spec.workload.kind = WorkloadKind::kKnapsack;
      spec.workload.size = 14;
      spec.workload.seed = 97;
      spec.workload.cost_mean = 2e-3;
      spec.tune_for_small_problems();
      spec.faults = c.plan;
      const ScenarioReport report = ScenarioRunner::run(spec);
      ASSERT_TRUE(report.completed) << c.name << "\n" << report.to_string();
      ASSERT_TRUE(report.solution_found) << c.name << "\n" << report.to_string();
      EXPECT_TRUE(report.optimum_matched) << c.name << "\n" << report.to_string();
      if (first) {
        solution = report.solution;
        first = false;
      } else {
        EXPECT_DOUBLE_EQ(report.solution, solution)
            << to_string(backend) << " disagrees on " << c.name << ": "
            << report.to_string();
      }
    }
  }
}

}  // namespace
}  // namespace ftbb::sim
