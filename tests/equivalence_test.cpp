// Cross-backend equivalence: the decentralized protocol, the centralized
// manager/worker baseline, and the DIB baseline are different algorithms
// with different fault-tolerance machinery, but on the same instance they
// must agree on one thing — the optimal objective — even while a lossy,
// crash-laden FaultPlan is running. (Work counts, makespans, and message
// traffic legitimately differ; the optimum is the invariant.)
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace ftbb::sim {
namespace {

constexpr Backend kBackends[] = {Backend::kFtbb, Backend::kCentral,
                                 Backend::kDib};

ScenarioSpec adversarial_spec(WorkloadKind kind, std::uint32_t size,
                              std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "equivalence";
  spec.seed = seed;
  spec.workers = 4;
  spec.time_limit = 300.0;
  spec.workload.kind = kind;
  spec.workload.size = size;
  spec.workload.seed = seed;
  spec.workload.cost_mean = 2e-3;
  spec.tune_for_small_problems();
  // The shared adversity: steady 8% loss, a mid-run crash, and a burst of
  // heavy loss on one link.
  spec.faults.loss(0.0, 1e9, 0.08);
  spec.faults.crash(2, 0.06);
  spec.faults.link_loss(0, 1, 0.1, 0.4, 0.5);
  return spec;
}

void expect_equivalent(WorkloadKind kind, std::uint32_t size,
                       std::uint64_t seed) {
  double solution = 0.0;
  bool first = true;
  for (const Backend backend : kBackends) {
    ScenarioSpec spec = adversarial_spec(kind, size, seed);
    spec.backend = backend;
    const ScenarioReport report = ScenarioRunner::run(spec);
    ASSERT_TRUE(report.completed) << report.to_string();
    ASSERT_TRUE(report.solution_found) << report.to_string();
    ASSERT_TRUE(report.optimum_known);
    EXPECT_TRUE(report.optimum_matched) << report.to_string();
    if (first) {
      solution = report.solution;
      first = false;
    } else {
      EXPECT_DOUBLE_EQ(report.solution, solution)
          << to_string(backend) << " disagrees: " << report.to_string();
    }
  }
}

TEST(Equivalence, KnapsackUnderLossyPlan) {
  expect_equivalent(WorkloadKind::kKnapsack, 12, 7);
  expect_equivalent(WorkloadKind::kKnapsack, 14, 8);
}

TEST(Equivalence, VertexCoverUnderLossyPlan) {
  expect_equivalent(WorkloadKind::kVertexCover, 10, 9);
  expect_equivalent(WorkloadKind::kVertexCover, 12, 10);
}

TEST(Equivalence, NumberPartitionUnderLossyPlan) {
  expect_equivalent(WorkloadKind::kNumberPartition, 10, 11);
}

TEST(Equivalence, SyntheticTreeUnderLossyPlan) {
  expect_equivalent(WorkloadKind::kSyntheticTree, 401, 12);
}

}  // namespace
}  // namespace ftbb::sim
