// End-to-end tests of the decentralized fault-tolerant B&B in the simulator.
//
// The paper's headline guarantee (Sections 5.5, 7): the loss of up to all
// but one resource does not affect the quality of the solution, and the
// computation still terminates correctly — also under message loss and
// temporary partitions. These tests assert exactly that, across seeds and
// failure schedules.
#include <gtest/gtest.h>

#include "bnb/basic_tree.hpp"
#include "bnb/knapsack.hpp"
#include "bnb/sequential.hpp"
#include "sim/cluster.hpp"

namespace ftbb::sim {
namespace {

using bnb::BasicTree;
using bnb::RandomTreeConfig;
using bnb::TreeProblem;

/// Small tree + tight protocol timings so virtual runs stay fast.
core::WorkerConfig fast_worker_config() {
  core::WorkerConfig w;
  w.report_batch = 4;
  w.report_flush_interval = 0.05;
  w.report_fanout = 2;
  w.table_gossip_interval = 0.2;
  w.work_request_timeout = 0.02;
  w.idle_backoff = 0.005;
  w.initial_stagger = 0.002;
  w.attempts_before_recovery = 3;
  return w;
}

BasicTree test_tree(std::uint64_t seed, std::uint64_t nodes = 1001,
                    double cost_mean = 2e-3) {
  RandomTreeConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  cfg.cost_mean = cost_mean;
  cfg.feasible_leaf_fraction = 0.3;
  return BasicTree::random(cfg);
}

ClusterConfig base_config(std::uint32_t workers, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.workers = workers;
  cfg.worker = fast_worker_config();
  cfg.seed = seed;
  cfg.time_limit = 300.0;
  cfg.storage_sample_interval = 0.05;
  return cfg;
}

void expect_solved(const ClusterResult& res, double optimal) {
  EXPECT_TRUE(res.all_live_halted);
  EXPECT_FALSE(res.hit_time_limit);
  EXPECT_FALSE(res.hit_event_limit);
  ASSERT_TRUE(res.solution_found);
  EXPECT_DOUBLE_EQ(res.solution, optimal);
}

TEST(Cluster, SingleWorkerSolvesAlone) {
  const BasicTree tree = test_tree(1, 301);
  TreeProblem problem(&tree);
  const ClusterResult res = SimCluster::run(problem, base_config(1, 1));
  expect_solved(res, tree.optimal_value());
  EXPECT_EQ(res.redundant_expansions, 0u);
}

TEST(Cluster, FourWorkersSolveTreeProblem) {
  const BasicTree tree = test_tree(2);
  TreeProblem problem(&tree);
  const ClusterResult res = SimCluster::run(problem, base_config(4, 2));
  expect_solved(res, tree.optimal_value());
  // Work spread: most workers expanded something (with elimination the
  // effective tree can be too small to reach everyone before it is done).
  int active = 0;
  for (const auto& w : res.workers) active += w.expanded > 0 ? 1 : 0;
  EXPECT_GE(active, 3);
}

TEST(Cluster, EveryLiveWorkerDetectsTermination) {
  const BasicTree tree = test_tree(3);
  TreeProblem problem(&tree);
  const ClusterResult res = SimCluster::run(problem, base_config(5, 3));
  ASSERT_TRUE(res.all_live_halted);
  for (const auto& w : res.workers) EXPECT_GE(w.halted_at, 0.0);
}

TEST(Cluster, DistributedKnapsackMatchesDp) {
  const auto inst = bnb::KnapsackInstance::strongly_correlated(16, 50, 0.5, 7);
  bnb::NodeCostModel cost;
  cost.mean = 1e-3;
  bnb::KnapsackModel model(inst, cost);
  ASSERT_TRUE(model.known_optimal().has_value());
  const ClusterResult res = SimCluster::run(model, base_config(4, 7));
  expect_solved(res, *model.known_optimal());
}

TEST(Cluster, DeterministicForSeed) {
  const BasicTree tree = test_tree(4);
  TreeProblem problem(&tree);
  const ClusterResult a = SimCluster::run(problem, base_config(4, 11));
  const ClusterResult b = SimCluster::run(problem, base_config(4, 11));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_expanded, b.total_expanded);
  EXPECT_EQ(a.net.messages_sent, b.net.messages_sent);
  EXPECT_EQ(a.net.bytes_sent, b.net.bytes_sent);
}

TEST(Cluster, SpeedupOverOneWorker) {
  const BasicTree tree = test_tree(5, 2001);
  TreeProblem problem(&tree, /*honor_bounds=*/false);  // fixed work => clean speedup
  const ClusterResult one = SimCluster::run(problem, base_config(1, 5));
  const ClusterResult eight = SimCluster::run(problem, base_config(8, 5));
  ASSERT_TRUE(one.all_live_halted);
  ASSERT_TRUE(eight.all_live_halted);
  EXPECT_LT(eight.makespan, one.makespan / 2.0);
}

TEST(Cluster, SequentialAgreesWithDistributed) {
  const BasicTree tree = test_tree(6);
  TreeProblem problem(&tree);
  const bnb::SeqResult seq = bnb::solve_sequential(problem);
  const ClusterResult res = SimCluster::run(problem, base_config(3, 6));
  expect_solved(res, seq.best_value);
}

TEST(Cluster, ReportsAreCompressed) {
  const BasicTree tree = test_tree(7, 2001);
  TreeProblem problem(&tree, /*honor_bounds=*/false);
  const ClusterResult res = SimCluster::run(problem, base_config(4, 7));
  ASSERT_TRUE(res.all_live_halted);
  // Code compression: fewer codes cross the wire than completions occur.
  EXPECT_LT(res.total_report_codes, res.total_completions);
}

TEST(Cluster, LargerReportBatchesCompressBetter) {
  // Section 5.3.2: "the compression rate is better when processors are
  // sufficiently loaded" — i.e. when more completions accumulate per report,
  // sibling merges collapse taller completed subtrees.
  const BasicTree tree = test_tree(7, 2001);
  TreeProblem problem(&tree, /*honor_bounds=*/false);
  ClusterConfig small_batch = base_config(4, 7);
  small_batch.worker.report_batch = 2;
  ClusterConfig large_batch = base_config(4, 7);
  large_batch.worker.report_batch = 64;
  large_batch.worker.report_flush_interval = 10.0;  // let batches fill
  const ClusterResult a = SimCluster::run(problem, small_batch);
  const ClusterResult b = SimCluster::run(problem, large_batch);
  ASSERT_TRUE(a.all_live_halted);
  ASSERT_TRUE(b.all_live_halted);
  const double ratio_small =
      static_cast<double>(a.total_report_codes) / static_cast<double>(a.total_completions);
  const double ratio_large =
      static_cast<double>(b.total_report_codes) / static_cast<double>(b.total_completions);
  EXPECT_LT(ratio_large, ratio_small);
  EXPECT_LT(ratio_large, 0.5);
}

TEST(Cluster, StorageIsMeasured) {
  const BasicTree tree = test_tree(8);
  TreeProblem problem(&tree);
  const ClusterResult res = SimCluster::run(problem, base_config(4, 8));
  EXPECT_GT(res.peak_table_bytes_total, 0u);
  EXPECT_GE(res.peak_table_bytes_total, res.peak_table_bytes_unique);
}

// ---------------------------------------------------------------------------
// Fault tolerance
// ---------------------------------------------------------------------------

TEST(Cluster, SurvivesCrashOfHalfTheWorkers) {
  const BasicTree tree = test_tree(9);
  TreeProblem problem(&tree);
  // Baseline run to find the failure-free makespan.
  const ClusterResult baseline = SimCluster::run(problem, base_config(4, 9));
  ASSERT_TRUE(baseline.all_live_halted);
  ClusterConfig cfg = base_config(4, 9);
  cfg.crashes = {{1, baseline.makespan * 0.4}, {3, baseline.makespan * 0.6}};
  const ClusterResult res = SimCluster::run(problem, cfg);
  expect_solved(res, tree.optimal_value());
  EXPECT_TRUE(res.crashed[1]);
  EXPECT_TRUE(res.crashed[3]);
  EXPECT_FALSE(res.crashed[0]);
  EXPECT_GE(res.makespan, baseline.makespan);  // recovery costs time, never correctness
}

TEST(Cluster, CrashedWorkerRejoinsAsFreshIncarnationAndHalts) {
  const BasicTree tree = test_tree(9);
  TreeProblem problem(&tree);
  const ClusterResult baseline = SimCluster::run(problem, base_config(4, 9));
  ASSERT_TRUE(baseline.all_live_halted);
  ClusterConfig cfg = base_config(4, 9);
  cfg.crashes = {{1, baseline.makespan * 0.3}};
  cfg.rejoins = {{1, baseline.makespan * 0.6}};
  const ClusterResult res = SimCluster::run(problem, cfg);
  expect_solved(res, tree.optimal_value());
  // The revived worker ends the run live and halted, with the exact optimum
  // (every live worker that detects termination holds the global optimum).
  EXPECT_FALSE(res.crashed[1]);
  EXPECT_DOUBLE_EQ(res.incumbents[1], tree.optimal_value());
  // Its reported stats fold in the crashed incarnation's spent time.
  EXPECT_GT(res.workers[1].busy_total(), 0.0);
}

TEST(Cluster, RejoinAimedAtLiveWorkerIsIgnored) {
  const BasicTree tree = test_tree(9, 301);
  TreeProblem problem(&tree);
  ClusterConfig cfg = base_config(3, 9);
  // The crash is scheduled far past termination, so it never happens; the
  // rejoin must then be a no-op rather than double-starting the worker.
  cfg.crashes = {{1, 200.0}};
  cfg.rejoins = {{1, 250.0}};
  const ClusterResult res = SimCluster::run(problem, cfg);
  expect_solved(res, tree.optimal_value());
  EXPECT_FALSE(res.crashed[1]);
}

TEST(Cluster, Figure6AllButOneCrashNearTheEnd) {
  // The paper's Figure 6: two of three processors crash at ~85% of the
  // execution; the survivor recovers the lost work and terminates.
  const BasicTree tree = test_tree(10);
  TreeProblem problem(&tree);
  const ClusterResult baseline = SimCluster::run(problem, base_config(3, 10));
  ASSERT_TRUE(baseline.all_live_halted);
  ClusterConfig cfg = base_config(3, 10);
  const double when = baseline.makespan * 0.85;
  cfg.crashes = {{1, when}, {2, when}};
  const ClusterResult res = SimCluster::run(problem, cfg);
  expect_solved(res, tree.optimal_value());
  // The survivor had to redo lost work.
  EXPECT_GT(res.workers[0].recoveries + res.redundant_expansions, 0u);
}

TEST(Cluster, SurvivesRootHolderCrashBeforeSharing) {
  const BasicTree tree = test_tree(11);
  TreeProblem problem(&tree);
  ClusterConfig cfg = base_config(3, 11);
  cfg.crashes = {{0, 1e-4}};  // root holder dies almost immediately
  const ClusterResult res = SimCluster::run(problem, cfg);
  expect_solved(res, tree.optimal_value());
  // Someone recovered the root problem from an empty table.
  std::uint64_t recoveries = 0;
  for (const auto& w : res.workers) recoveries += w.recoveries;
  EXPECT_GT(recoveries, 0u);
}

TEST(Cluster, SurvivesMessageLoss) {
  const BasicTree tree = test_tree(12);
  TreeProblem problem(&tree);
  ClusterConfig cfg = base_config(4, 12);
  cfg.net.loss_prob = 0.2;
  const ClusterResult res = SimCluster::run(problem, cfg);
  expect_solved(res, tree.optimal_value());
  EXPECT_GT(res.net.messages_lost, 0u);
}

TEST(Cluster, SurvivesTemporaryPartition) {
  const BasicTree tree = test_tree(13);
  TreeProblem problem(&tree);
  const ClusterResult baseline = SimCluster::run(problem, base_config(4, 13));
  ASSERT_TRUE(baseline.all_live_halted);
  ClusterConfig cfg = base_config(4, 13);
  Partition p;
  p.t0 = baseline.makespan * 0.2;
  p.t1 = baseline.makespan * 0.6;
  p.group_of = {0, 0, 1, 1};
  cfg.partitions = {p};
  const ClusterResult res = SimCluster::run(problem, cfg);
  expect_solved(res, tree.optimal_value());
}

TEST(Cluster, SurvivesCrashesAndLossTogether) {
  const BasicTree tree = test_tree(14);
  TreeProblem problem(&tree);
  const ClusterResult baseline = SimCluster::run(problem, base_config(5, 14));
  ASSERT_TRUE(baseline.all_live_halted);
  ClusterConfig cfg = base_config(5, 14);
  cfg.net.loss_prob = 0.1;
  cfg.crashes = {{2, baseline.makespan * 0.3}, {4, baseline.makespan * 0.5}};
  const ClusterResult res = SimCluster::run(problem, cfg);
  expect_solved(res, tree.optimal_value());
}

TEST(Cluster, EliminationStillCorrectUnderCrashes) {
  // With bounds honored, pruning interacts with recovery; the optimum must
  // still be exact.
  const auto inst = bnb::KnapsackInstance::strongly_correlated(15, 50, 0.5, 4);
  bnb::NodeCostModel cost;
  cost.mean = 1e-3;
  bnb::KnapsackModel model(inst, cost);
  const ClusterResult baseline = SimCluster::run(model, base_config(4, 15));
  ASSERT_TRUE(baseline.all_live_halted);
  ClusterConfig cfg = base_config(4, 15);
  cfg.crashes = {{1, baseline.makespan * 0.5}, {2, baseline.makespan * 0.7}};
  const ClusterResult res = SimCluster::run(model, cfg);
  expect_solved(res, *model.known_optimal());
}

/// Property sweep: random crash schedules leaving at least one survivor
/// always terminate with the exact optimum.
class CrashSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashSweepTest, AnyCrashScheduleWithASurvivorIsCorrect) {
  const std::uint64_t seed = GetParam();
  const BasicTree tree = test_tree(100 + seed, 601);
  TreeProblem problem(&tree);
  const std::uint32_t workers = 3 + static_cast<std::uint32_t>(seed % 4);  // 3..6
  const ClusterResult baseline = SimCluster::run(problem, base_config(workers, seed));
  ASSERT_TRUE(baseline.all_live_halted);

  support::Rng rng(seed * 977 + 5);
  ClusterConfig cfg = base_config(workers, seed);
  // Kill a random subset (possibly all but one) at random times.
  const auto victims = rng.sample_without_replacement(
      workers, 1 + rng.pick(workers - 1));
  for (const std::size_t v : victims) {
    cfg.crashes.push_back(
        {static_cast<core::NodeId>(v),
         baseline.makespan * rng.uniform(0.05, 1.1)});
  }
  const ClusterResult res = SimCluster::run(problem, cfg);
  expect_solved(res, tree.optimal_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashSweepTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));


// ---------------------------------------------------------------------------
// Dynamic membership (paper Section 4: dynamically available resources)
// ---------------------------------------------------------------------------

TEST(Cluster, LateJoinersParticipateAndTerminate) {
  const BasicTree tree = test_tree(20, 2001);
  TreeProblem problem(&tree, /*honor_bounds=*/false);
  const ClusterResult baseline = SimCluster::run(problem, base_config(2, 20));
  ASSERT_TRUE(baseline.all_live_halted);
  // Six workers join in waves while two work from the start.
  ClusterConfig cfg = base_config(8, 20);
  cfg.join_times = {0.0, 0.0,
                    baseline.makespan * 0.1, baseline.makespan * 0.1,
                    baseline.makespan * 0.2, baseline.makespan * 0.2,
                    baseline.makespan * 0.3, baseline.makespan * 0.3};
  const ClusterResult res = SimCluster::run(problem, cfg);
  expect_solved(res, tree.optimal_value());
  // Late capacity speeds the run up vs two workers alone.
  EXPECT_LT(res.makespan, baseline.makespan);
  // Every joiner contributed.
  int active = 0;
  for (const auto& w : res.workers) active += w.expanded > 0 ? 1 : 0;
  EXPECT_GE(active, 6);
}

TEST(Cluster, JoinersPlusCrashesStillExact) {
  const BasicTree tree = test_tree(21, 1001);
  TreeProblem problem(&tree);
  const ClusterResult baseline = SimCluster::run(problem, base_config(3, 21));
  ASSERT_TRUE(baseline.all_live_halted);
  ClusterConfig cfg = base_config(6, 21);
  cfg.join_times = {0.0, 0.0, 0.0,
                    baseline.makespan * 0.2, baseline.makespan * 0.3,
                    baseline.makespan * 0.4};
  cfg.crashes = {{1, baseline.makespan * 0.5}, {4, baseline.makespan * 0.6}};
  const ClusterResult res = SimCluster::run(problem, cfg);
  expect_solved(res, tree.optimal_value());
}

TEST(Cluster, WorkerCrashingBeforeJoiningIsIgnored) {
  const BasicTree tree = test_tree(22, 601);
  TreeProblem problem(&tree);
  ClusterConfig cfg = base_config(3, 22);
  cfg.join_times = {0.0, 0.0, 1e8};  // worker 2 would join far in the future
  cfg.crashes = {{2, 0.001}};        // ...but dies first
  cfg.time_limit = 1e7;
  const ClusterResult res = SimCluster::run(problem, cfg);
  expect_solved(res, tree.optimal_value());
}

// ---------------------------------------------------------------------------
// Adaptive timeouts (paper Section 7 future work)
// ---------------------------------------------------------------------------

TEST(Cluster, AdaptiveTimeoutsPreventSpuriousRecoveryOnCoarseNodes) {
  // Coarse nodes + eager fixed timeouts: busy peers look dead and whole
  // regions get duplicated. The adaptive scheme stretches its patience to
  // the observed node cost.
  BasicTree tree = test_tree(23, 601, /*cost_mean=*/0.5);
  TreeProblem problem(&tree, /*honor_bounds=*/false);
  ClusterConfig eager = base_config(4, 23);
  eager.worker.attempts_before_recovery = 1;
  eager.worker.work_request_timeout = 0.02;  // << node cost: busy peers
                                             // cannot answer before the
                                             // requester gives up
  eager.time_limit = 3e4;
  ClusterConfig adaptive = eager;
  adaptive.worker.adaptive_timeouts = true;
  const ClusterResult fixed_res = SimCluster::run(problem, eager);
  const ClusterResult adaptive_res = SimCluster::run(problem, adaptive);
  ASSERT_TRUE(fixed_res.all_live_halted);
  ASSERT_TRUE(adaptive_res.all_live_halted);
  EXPECT_DOUBLE_EQ(adaptive_res.solution, tree.optimal_value());
  // The stall gate keeps both runs from duplicating work, but the fixed
  // configuration keeps suspecting busy peers (request timeouts fire on
  // every coarse expansion); the adaptive one stretches its patience.
  // (Almost all timeouts in this small scenario happen during ramp-up,
  // before any node cost has been observed, so the counts only need to not
  // regress; the precise stretching contract is tested at the worker level
  // in worker_test.cpp.)
  std::uint64_t fixed_timeouts = 0;
  std::uint64_t adaptive_timeouts = 0;
  for (const auto& w : fixed_res.workers) fixed_timeouts += w.request_timeouts;
  for (const auto& w : adaptive_res.workers) adaptive_timeouts += w.request_timeouts;
  EXPECT_LE(adaptive_timeouts, fixed_timeouts);
  // Small endgame duplication is possible; ramp-up scale blowups are not.
  EXPECT_LT(adaptive_res.redundant_expansions, 50u);
}

TEST(Cluster, AdaptiveTimeoutsStillRecoverFromRealCrashes) {
  const BasicTree tree = test_tree(24, 601);
  TreeProblem problem(&tree);
  const ClusterResult baseline = SimCluster::run(problem, base_config(4, 24));
  ASSERT_TRUE(baseline.all_live_halted);
  ClusterConfig cfg = base_config(4, 24);
  cfg.worker.adaptive_timeouts = true;
  cfg.crashes = {{1, baseline.makespan * 0.4}, {2, baseline.makespan * 0.4}};
  const ClusterResult res = SimCluster::run(problem, cfg);
  expect_solved(res, tree.optimal_value());
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(Cluster, TraceRecordsActivityAndDeath) {
  const BasicTree tree = test_tree(16, 301);
  TreeProblem problem(&tree);
  const ClusterResult baseline = SimCluster::run(problem, base_config(3, 16));
  ASSERT_TRUE(baseline.all_live_halted);
  ClusterConfig cfg = base_config(3, 16);
  cfg.record_trace = true;
  cfg.crashes = {{2, baseline.makespan * 0.5}};
  const ClusterResult res = SimCluster::run(problem, cfg);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_FALSE(res.timeline.empty());
  bool saw_bb = false;
  bool saw_dead = false;
  for (const auto& iv : res.timeline.intervals()) {
    saw_bb |= iv.activity == trace::Activity::kBB;
    saw_dead |= iv.activity == trace::Activity::kDead;
  }
  EXPECT_TRUE(saw_bb);
  EXPECT_TRUE(saw_dead);
  const std::string chart = res.timeline.render_ascii(3, 80);
  EXPECT_NE(chart.find("P0"), std::string::npos);
  EXPECT_NE(chart.find('X'), std::string::npos);
}

TEST(Cluster, ShardedExecutorMatchesSequentialBitForBit) {
  // Every observable of ClusterResult — per-worker stats, the redundant-cost
  // double, storage peaks, network counters, the activity timeline — must be
  // byte-equal between the sequential kernel and sharded runs, under a
  // schedule exercising crash, rejoin, partition, and loss at once.
  const BasicTree tree = test_tree(97);
  TreeProblem problem(&tree);
  ClusterConfig cfg = base_config(6, 97);
  cfg.record_trace = true;
  cfg.net.loss_prob = 0.05;
  cfg.crashes = {{1, 0.05}};
  cfg.rejoins = {{1, 0.2}};
  cfg.partitions = {Partition{0.08, 0.15, {0, 0, 0, 1, 1, 1}}};
  cfg.sim_threads = 1;
  const ClusterResult seq = SimCluster::run(problem, cfg);
  ASSERT_TRUE(seq.all_live_halted);
  for (const std::uint32_t threads : {2u, 4u}) {
    cfg.sim_threads = threads;
    const ClusterResult par = SimCluster::run(problem, cfg);
    EXPECT_EQ(seq.solution, par.solution);
    EXPECT_EQ(seq.makespan, par.makespan);
    EXPECT_EQ(seq.first_detection, par.first_detection);
    EXPECT_EQ(seq.total_expanded, par.total_expanded);
    EXPECT_EQ(seq.unique_expanded, par.unique_expanded);
    EXPECT_EQ(seq.redundant_expansions, par.redundant_expansions);
    EXPECT_EQ(seq.redundant_cost, par.redundant_cost);  // exact, not NEAR
    EXPECT_EQ(seq.total_completions, par.total_completions);
    EXPECT_EQ(seq.peak_table_bytes_total, par.peak_table_bytes_total);
    EXPECT_EQ(seq.peak_table_bytes_unique, par.peak_table_bytes_unique);
    EXPECT_EQ(seq.final_table_bytes_total, par.final_table_bytes_total);
    EXPECT_EQ(seq.net.messages_sent, par.net.messages_sent);
    EXPECT_EQ(seq.net.messages_delivered, par.net.messages_delivered);
    EXPECT_EQ(seq.net.messages_lost, par.net.messages_lost);
    EXPECT_EQ(seq.net.bytes_sent, par.net.bytes_sent);
    ASSERT_EQ(seq.workers.size(), par.workers.size());
    for (std::size_t w = 0; w < seq.workers.size(); ++w) {
      for (int k = 0; k < core::kCostKinds; ++k) {
        EXPECT_EQ(seq.workers[w].time[k], par.workers[w].time[k])
            << "worker " << w << " kind " << k << " threads " << threads;
      }
      EXPECT_EQ(seq.workers[w].expanded, par.workers[w].expanded);
      EXPECT_EQ(seq.workers[w].msgs_sent, par.workers[w].msgs_sent);
      EXPECT_EQ(seq.workers[w].halted_at, par.workers[w].halted_at);
      EXPECT_EQ(seq.incumbents[w], par.incumbents[w]);
      EXPECT_EQ(seq.crashed[w], par.crashed[w]);
    }
    const auto& a = seq.timeline.intervals();
    const auto& b = par.timeline.intervals();
    ASSERT_EQ(a.size(), b.size()) << "threads " << threads;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].proc, b[i].proc);
      EXPECT_EQ(a[i].t0, b[i].t0);
      EXPECT_EQ(a[i].t1, b[i].t1);
      EXPECT_EQ(a[i].activity, b[i].activity);
    }
  }
}

}  // namespace
}  // namespace ftbb::sim
