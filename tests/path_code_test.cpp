#include <gtest/gtest.h>

#include <set>

#include "core/path_code.hpp"
#include "support/bytes.hpp"

namespace ftbb::core {
namespace {

TEST(PathCode, RootProperties) {
  const PathCode root = PathCode::root();
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.depth(), 0u);
  EXPECT_EQ(root.to_string(), "()");
}

TEST(PathCode, ChildParentInverse) {
  const PathCode root = PathCode::root();
  const PathCode c = root.child(3, true).child(7, false);
  EXPECT_EQ(c.depth(), 2u);
  EXPECT_EQ(c.parent().parent(), root);
  EXPECT_EQ(c.parent(), root.child(3, true));
}

TEST(PathCode, SiblingFlipsLastBit) {
  const PathCode c = PathCode::root().child(1, false).child(2, true);
  const PathCode s = c.sibling();
  EXPECT_EQ(s.depth(), c.depth());
  EXPECT_EQ(s.parent(), c.parent());
  EXPECT_NE(s, c);
  EXPECT_EQ(s.sibling(), c);
  EXPECT_EQ(s.last().bit, 0);
}

TEST(PathCode, PaperNotation) {
  // Figure 1: (<x1,0>,<x2,1>)
  const PathCode c = PathCode::root().child(1, false).child(2, true);
  EXPECT_EQ(c.to_string(), "(<x1,0>,<x2,1>)");
}

TEST(PathCode, ContainsIsReflexiveAndAncestral) {
  const PathCode a = PathCode::root().child(1, false);
  const PathCode b = a.child(2, true).child(5, false);
  EXPECT_TRUE(PathCode::root().contains(b));
  EXPECT_TRUE(a.contains(a));
  EXPECT_TRUE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
  EXPECT_TRUE(a.is_ancestor_of(b));
  EXPECT_FALSE(a.is_ancestor_of(a));
}

TEST(PathCode, SiblingsDontContainEachOther) {
  const PathCode a = PathCode::root().child(1, false);
  EXPECT_FALSE(a.contains(a.sibling()));
  EXPECT_FALSE(a.sibling().contains(a));
}

TEST(PathCode, PrefixProducesAncestors) {
  const PathCode c =
      PathCode::root().child(1, true).child(2, false).child(3, true);
  EXPECT_EQ(c.prefix(0), PathCode::root());
  EXPECT_EQ(c.prefix(3), c);
  EXPECT_TRUE(c.prefix(2).is_ancestor_of(c));
}

TEST(PathCode, OrderingIsLexicographic) {
  const PathCode root = PathCode::root();
  const PathCode l = root.child(1, false);
  const PathCode r = root.child(1, true);
  const PathCode ll = l.child(2, false);
  EXPECT_LT(root, l);
  EXPECT_LT(l, ll);
  EXPECT_LT(ll, r);  // descending into the left subtree precedes the right
}

TEST(PathCode, EncodeDecodeRoundTrip) {
  std::vector<PathCode> cases = {PathCode::root()};
  PathCode deep = PathCode::root();
  for (std::uint32_t i = 0; i < 40; ++i) {
    deep = deep.child(i * 3 + 1, (i % 2) != 0);
    cases.push_back(deep);
  }
  cases.push_back(PathCode::root().child(1000000, true));
  for (const PathCode& c : cases) {
    support::ByteWriter w;
    c.encode(w);
    EXPECT_EQ(w.size(), c.encoded_size()) << c.to_string();
    support::ByteReader r(w.data());
    EXPECT_EQ(PathCode::decode(r), c);
    EXPECT_TRUE(r.done());
  }
}

TEST(PathCode, EncodedSizeGrowsWithDepth) {
  PathCode c = PathCode::root();
  std::size_t prev = c.encoded_size();
  for (std::uint32_t i = 0; i < 10; ++i) {
    c = c.child(i, false);
    EXPECT_GT(c.encoded_size(), prev);
    prev = c.encoded_size();
  }
}

TEST(PathCode, SmallVarsEncodeOneBytePerLevel) {
  // Variables < 64 pack with their bit into a single byte.
  PathCode c = PathCode::root();
  for (std::uint32_t i = 0; i < 20; ++i) c = c.child(i, true);
  EXPECT_EQ(c.encoded_size(), 1 + 20u);
}

TEST(PathCode, HashDistinguishesCodes) {
  std::set<std::size_t> hashes;
  PathCode c = PathCode::root();
  hashes.insert(c.hash());
  for (std::uint32_t i = 0; i < 200; ++i) {
    c = c.child(i % 17, (i % 3) == 0);
    hashes.insert(c.hash());
    hashes.insert(c.sibling().hash());
  }
  // All distinct codes should hash distinctly here (no collisions among 401).
  EXPECT_GT(hashes.size(), 395u);
}

TEST(PathCode, HashMatchesEquality) {
  const PathCode a = PathCode::root().child(4, true).child(9, false);
  const PathCode b = PathCode::root().child(4, true).child(9, false);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(PathCodeDeath, ParentOfRootAborts) {
  ASSERT_DEATH((void)PathCode::root().parent(), "root code has no parent");
}

TEST(PathCodeDeath, SiblingOfRootAborts) {
  ASSERT_DEATH((void)PathCode::root().sibling(), "root code has no sibling");
}

}  // namespace
}  // namespace ftbb::core
