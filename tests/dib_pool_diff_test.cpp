// Differential proof that the indexed DibPool is observationally identical
// to the seed linear pool it replaced (src/dib/dib.cpp's std::vector<Task>
// with O(n) scans). The reference below preserves the seed logic verbatim —
// the first-index-wins deepest scan of pop_task, the strict-decrease
// shallowest scan of the donation pick, the stable left-to-right elimination
// sweep — and randomized mixed operation streams assert operation-for-
// operation identity: same popped tasks, same donation choices, same
// elimination victims in the same visit order.
#include <gtest/gtest.h>

#include <vector>

#include "dib/dib_pool.hpp"
#include "support/rng.hpp"

namespace ftbb::dib {
namespace {

using core::PathCode;

bool same_task(const Task& a, const Task& b) {
  return a.sub.code == b.sub.code && a.sub.bound == b.sub.bound &&
         a.job == b.job;
}

/// The seed implementation, verbatim (vector layout evolves by push_back,
/// swap-with-back removal, and stable compaction).
class ReferencePool {
 public:
  void push(Task t) { pool_.push_back(std::move(t)); }
  [[nodiscard]] bool empty() const { return pool_.empty(); }
  [[nodiscard]] std::size_t size() const { return pool_.size(); }

  Task pop_best() {
    std::size_t best_i = 0;
    for (std::size_t i = 1; i < pool_.size(); ++i) {
      const auto& a = pool_[i].sub;
      const auto& b = pool_[best_i].sub;
      if (a.code.depth() > b.code.depth() ||
          (a.code.depth() == b.code.depth() && a.code < b.code)) {
        best_i = i;
      }
    }
    return remove_at(best_i);
  }

  Task take_shallowest() {
    std::size_t best_i = 0;
    for (std::size_t i = 1; i < pool_.size(); ++i) {
      if (pool_[i].sub.code.depth() < pool_[best_i].sub.code.depth()) {
        best_i = i;
      }
    }
    return remove_at(best_i);
  }

  void prune_at_least(double threshold,
                      const std::function<void(const Task&)>& on_victim) {
    std::size_t write = 0;
    for (std::size_t read = 0; read < pool_.size(); ++read) {
      if (pool_[read].sub.bound >= threshold) {
        on_victim(pool_[read]);
      } else {
        if (write != read) pool_[write] = std::move(pool_[read]);
        ++write;
      }
    }
    pool_.resize(write);
  }

  void clear() { pool_.clear(); }

 private:
  Task remove_at(std::size_t i) {
    Task t = std::move(pool_[i]);
    pool_[i] = std::move(pool_.back());
    pool_.pop_back();
    return t;
  }

  std::vector<Task> pool_;
};

/// Random code whose depth and branches come from the stream; sibling codes
/// at equal depth and occasional duplicates exercise every tie-break.
PathCode random_code(support::Rng& rng) {
  PathCode code = PathCode::root();
  const std::size_t depth = rng.pick(10);
  for (std::size_t d = 0; d < depth; ++d) {
    code = code.child(static_cast<std::uint32_t>(rng.pick(4)), rng.chance(0.5));
  }
  return code;
}

Task random_task(support::Rng& rng) {
  Task t;
  t.sub.code = random_code(rng);
  t.sub.bound = static_cast<double>(rng.pick(50));  // coarse: bound collisions
  t.job = static_cast<std::uint32_t>(rng.pick(6));
  return t;
}

void run_stream(std::uint64_t seed, std::size_t ops) {
  support::Rng rng(seed);
  DibPool indexed;
  ReferencePool reference;

  for (std::size_t op = 0; op < ops; ++op) {
    ASSERT_EQ(indexed.size(), reference.size());
    const double dice = rng.uniform();
    if (indexed.empty() || dice < 0.45) {
      // Burst pushes keep the pool populated enough for interesting scans.
      const std::size_t burst = 1 + rng.pick(4);
      for (std::size_t i = 0; i < burst; ++i) {
        Task t = random_task(rng);
        indexed.push(t);
        reference.push(t);
      }
    } else if (dice < 0.70) {
      const Task a = indexed.pop_best();
      const Task b = reference.pop_best();
      EXPECT_TRUE(same_task(a, b))
          << "pop diverged at op " << op << " seed " << seed;
    } else if (dice < 0.82) {
      const Task a = indexed.take_shallowest();
      const Task b = reference.take_shallowest();
      EXPECT_TRUE(same_task(a, b))
          << "donation pick diverged at op " << op << " seed " << seed;
    } else if (dice < 0.97) {
      const double threshold = static_cast<double>(rng.pick(50));
      std::vector<Task> victims_a;
      std::vector<Task> victims_b;
      indexed.prune_at_least(
          threshold, [&](const Task& t) { victims_a.push_back(t); });
      reference.prune_at_least(
          threshold, [&](const Task& t) { victims_b.push_back(t); });
      ASSERT_EQ(victims_a.size(), victims_b.size())
          << "victim count diverged at op " << op << " seed " << seed;
      for (std::size_t i = 0; i < victims_a.size(); ++i) {
        EXPECT_TRUE(same_task(victims_a[i], victims_b[i]))
            << "victim order diverged at op " << op << " index " << i
            << " seed " << seed;
      }
    } else {
      indexed.clear();
      reference.clear();
    }
  }
  // Drain both pools; pop order must agree to the last task.
  while (!indexed.empty()) {
    const Task a = indexed.pop_best();
    const Task b = reference.pop_best();
    EXPECT_TRUE(same_task(a, b)) << "drain diverged, seed " << seed;
  }
  EXPECT_TRUE(reference.empty());
}

TEST(DibPoolDiff, RandomizedStreamsMatchSeedBehavior) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL, 101ULL, 999ULL}) {
    run_stream(seed, 2000);
  }
}

TEST(DibPoolDiff, DuplicateTasksResolveLikeTheSeedScan) {
  // Exact duplicates (same code, bound, job) — the rarest tie class; the
  // seed scans kept the first array index, and the indexed pool must too,
  // including after swap-with-back removals have permuted the array.
  support::Rng rng(5);
  DibPool indexed;
  ReferencePool reference;
  Task dup = random_task(rng);
  for (int i = 0; i < 6; ++i) {
    indexed.push(dup);
    reference.push(dup);
    Task other = random_task(rng);
    indexed.push(other);
    reference.push(other);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(same_task(indexed.pop_best(), reference.pop_best()));
    EXPECT_TRUE(same_task(indexed.take_shallowest(), reference.take_shallowest()));
  }
  while (!indexed.empty()) {
    EXPECT_TRUE(same_task(indexed.pop_best(), reference.pop_best()));
  }
}

TEST(DibPoolDiff, NoVictimPruneIsANoOp) {
  support::Rng rng(9);
  DibPool pool;
  for (int i = 0; i < 100; ++i) pool.push(random_task(rng));
  std::size_t victims = 0;
  pool.prune_at_least(1e9, [&](const Task&) { ++victims; });
  EXPECT_EQ(victims, 0u);
  EXPECT_EQ(pool.size(), 100u);
}

}  // namespace
}  // namespace ftbb::dib
