#include <gtest/gtest.h>

#include <set>

#include "trace/timeline.hpp"

namespace ftbb::trace {
namespace {

TEST(Timeline, MergesAdjacentSameActivity) {
  Timeline t;
  t.add(0, 0.0, 1.0, Activity::kBB);
  t.add(0, 1.0, 2.0, Activity::kBB);
  ASSERT_EQ(t.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(t.intervals()[0].t1, 2.0);
}

TEST(Timeline, KeepsDistinctActivities) {
  Timeline t;
  t.add(0, 0.0, 1.0, Activity::kBB);
  t.add(0, 1.0, 2.0, Activity::kComm);
  EXPECT_EQ(t.intervals().size(), 2u);
}

TEST(Timeline, SeparatesProcesses) {
  Timeline t;
  t.add(0, 0.0, 1.0, Activity::kBB);
  t.add(1, 1.0, 2.0, Activity::kBB);
  EXPECT_EQ(t.intervals().size(), 2u);
}

TEST(Timeline, IgnoresEmptyIntervals) {
  Timeline t;
  t.add(0, 1.0, 1.0, Activity::kBB);
  t.add(0, 2.0, 1.0, Activity::kBB);
  EXPECT_TRUE(t.empty());
}

TEST(Timeline, EndTime) {
  Timeline t;
  EXPECT_DOUBLE_EQ(t.end_time(), 0.0);
  t.add(2, 0.5, 4.25, Activity::kIdle);
  t.add(0, 0.0, 1.0, Activity::kBB);
  EXPECT_DOUBLE_EQ(t.end_time(), 4.25);
}

TEST(Timeline, AsciiChartHasRowPerProcess) {
  Timeline t;
  t.add(0, 0.0, 1.0, Activity::kBB);
  t.add(1, 0.0, 0.5, Activity::kLB);
  t.add(1, 0.5, 1.0, Activity::kDead);
  const std::string chart = t.render_ascii(2, 40);
  EXPECT_NE(chart.find("P0"), std::string::npos);
  EXPECT_NE(chart.find("P1"), std::string::npos);
  EXPECT_NE(chart.find('B'), std::string::npos);
  EXPECT_NE(chart.find('X'), std::string::npos);
  EXPECT_NE(chart.find("legend"), std::string::npos);
}

TEST(Timeline, AsciiDominantActivityWins) {
  Timeline t;
  // Bucket width 1.0 with width=1: BB dominates 0.9 vs idle 0.1.
  t.add(0, 0.0, 0.9, Activity::kBB);
  t.add(0, 0.9, 1.0, Activity::kIdle);
  const std::string chart = t.render_ascii(1, 1);
  EXPECT_NE(chart.find("|B|"), std::string::npos);
}

TEST(Timeline, CsvFormat) {
  Timeline t;
  t.add(1, 0.0, 0.5, Activity::kComm);
  t.add(0, 0.25, 1.0, Activity::kBB);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("proc,t0,t1,activity"), std::string::npos);
  EXPECT_NE(csv.find("1,0.000000,0.500000,comm"), std::string::npos);
  // Sorted by process.
  EXPECT_LT(csv.find(",bb"), csv.find(",comm"));
}

TEST(Timeline, GlyphsAreUnique) {
  std::set<char> glyphs;
  for (int a = 0; a < kActivityCount; ++a) {
    glyphs.insert(glyph(static_cast<Activity>(a)));
  }
  EXPECT_EQ(glyphs.size(), static_cast<std::size_t>(kActivityCount));
}

}  // namespace
}  // namespace ftbb::trace
