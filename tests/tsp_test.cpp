// Tests of the symmetric-TSP model (bnb/tsp.hpp): the branch-and-bound
// search must land exactly on the optimum the constructor pinned by brute
// enumeration, leaf codes must replay to valid tours, and — the reason this
// workload exists — its codes must genuinely cross PathCode's inline buffer
// into heap mode, exercising the deep-code regime end to end.
#include <gtest/gtest.h>

#include "bnb/sequential.hpp"
#include "bnb/tsp.hpp"
#include "core/path_code.hpp"

namespace ftbb::bnb {
namespace {

TEST(Tsp, SequentialSearchMatchesEnumeratedOptimum) {
  for (const std::uint32_t n : {5u, 6u, 7u, 8u}) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      TspOptions opts;
      opts.cities = n;
      const TspProblem model(seed, opts);
      ASSERT_TRUE(model.known_optimal().has_value());
      const SeqResult res = solve_sequential(model);
      EXPECT_TRUE(res.completed);
      EXPECT_DOUBLE_EQ(res.best_value, *model.known_optimal())
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Tsp, AllSelectRulesFindTheOptimum) {
  TspOptions opts;
  opts.cities = 7;
  const TspProblem model(5, opts);
  for (const SelectRule rule : {SelectRule::kBestFirst, SelectRule::kDepthFirst,
                                SelectRule::kBreadthFirst}) {
    SeqOptions opt;
    opt.rule = rule;
    const SeqResult res = solve_sequential(model, opt);
    EXPECT_TRUE(res.completed) << to_string(rule);
    EXPECT_DOUBLE_EQ(res.best_value, *model.known_optimal()) << to_string(rule);
  }
}

TEST(Tsp, BestCodeIsAFeasibleLeafTour) {
  TspOptions opts;
  opts.cities = 8;
  const TspProblem model(11, opts);
  const SeqResult res = solve_sequential(model);
  const NodeEval leaf = model.eval(res.best_code);
  EXPECT_TRUE(leaf.feasible_leaf);
  EXPECT_DOUBLE_EQ(leaf.value, res.best_value);
  // The leaf fires as soon as `cities` edges are in, so the code never needs
  // to decide the full edge list.
  EXPECT_LE(res.best_code.depth(), model.edge_count());
  EXPECT_GE(res.best_code.depth(), std::size_t{model.cities()});
}

TEST(Tsp, DeepCodesCrossTheInlineBuffer) {
  // n = 10 decides up to 45 edges — past the 32 inline words — so this is
  // the workload whose live codes routinely run in PathCode's heap mode.
  TspOptions opts;
  opts.cities = 10;
  const TspProblem model(7, opts);
  EXPECT_EQ(model.edge_count(), 45u);
  EXPECT_GT(model.edge_count(), std::size_t{core::PathCode::kInlineWords});
  const SeqResult res = solve_sequential(model);
  EXPECT_TRUE(res.completed);
  EXPECT_DOUBLE_EQ(res.best_value, *model.known_optimal());
}

TEST(Tsp, PureFunctionOfSeed) {
  const TspProblem a(9);
  const TspProblem b(9);
  EXPECT_DOUBLE_EQ(*a.known_optimal(), *b.known_optimal());
  EXPECT_EQ(a.name(), b.name());
  const TspProblem c(10);
  EXPECT_NE(*a.known_optimal(), *c.known_optimal());
}

}  // namespace
}  // namespace ftbb::bnb
