// Bounded-time randomized chaos soak on the thread-backed runtime.
//
// A seeded generator builds a random FaultSchedule — membership churn,
// worker bounces (crash + revive), symmetric and asymmetric partition
// windows, background loss — and replays it through the FaultDriver against
// real threads. The schedule is deterministic per seed; the execution is
// not (thread scheduling), which is the point of a soak: protocol
// correctness must hold under whichever interleaving the OS produces.
//
// Assertions: the run terminates inside the wall cap, every live worker
// agrees on the exact optimum, and incarnation hygiene holds — every worker
// thread ever spawned (including every churned/bounced incarnation) was
// joined before the result existed. Under ASan/TSan this doubles as a leak
// and race soak of the whole rt fault plane.
#include <gtest/gtest.h>

#include "bnb/basic_tree.hpp"
#include "fault/schedule.hpp"
#include "rt/runtime.hpp"
#include "sim/fault_plan.hpp"
#include "support/rng.hpp"

namespace ftbb::rt {
namespace {

using bnb::BasicTree;
using bnb::RandomTreeConfig;
using bnb::TreeProblem;

/// A random adversity schedule over ~0.35 wall seconds: every fault kind the
/// runtime supports, at randomized times and victims (node 0 seeds the
/// computation and is bounced last if at all — DIB-style root pinning is NOT
/// required here, but a dead seed with no revive would leave nothing to
/// assert, so victims come from [1, workers)).
fault::FaultSchedule random_schedule(std::uint64_t seed, std::uint32_t workers) {
  support::Rng rng(seed);
  sim::FaultPlan plan;

  // Churn: one or two late arrivals extend the population.
  const auto arrivals = static_cast<std::uint32_t>(1 + rng.pick(2));
  plan.churn(workers, arrivals, 0.03 + rng.uniform(0.0, 0.04), 0.04);

  // Bounces: every victim comes back, so the optimum stays assertable even
  // when the schedule happens to hit every non-seed worker.
  const std::size_t bounces = 1 + rng.pick(3);
  for (std::size_t i = 0; i < bounces; ++i) {
    const auto node = static_cast<std::uint32_t>(1 + rng.pick(workers - 1));
    const double down = 0.02 + rng.uniform(0.0, 0.15);
    plan.bounce(node, down, down + 0.05 + rng.uniform(0.0, 0.08));
  }

  // Partitions: a symmetric flap and an asymmetric minority cut.
  if (rng.chance(0.8)) {
    const double t0 = 0.02 + rng.uniform(0.0, 0.1);
    plan.split_halves(t0, t0 + 0.04 + rng.uniform(0.0, 0.04));
  }
  if (rng.chance(0.8)) {
    const double t0 = 0.02 + rng.uniform(0.0, 0.15);
    plan.isolate(static_cast<std::uint32_t>(rng.pick(workers + arrivals)), 1,
                 t0, t0 + 0.03 + rng.uniform(0.0, 0.05));
  }

  // Background loss over the whole episode.
  plan.loss(0.0, 0.35, 0.03 + rng.uniform(0.0, 0.07));

  return fault::FaultSchedule::compile(plan, workers);
}

TEST(RtChaos, RandomizedChurnSoakFindsOptimumAndReapsEveryIncarnation) {
  RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = 601;
  tree_cfg.seed = 13;
  tree_cfg.cost_mean = 1e-4;  // ~60 ms of total virtual work
  const BasicTree tree = BasicTree::random(tree_cfg);
  TreeProblem problem(&tree);

  for (const std::uint64_t seed : {11ULL, 23ULL, 47ULL}) {
    RtConfig cfg;
    cfg.workers = 4;
    cfg.seed = seed;
    cfg.wall_timeout = 45.0;
    cfg.worker.report_batch = 4;
    cfg.worker.report_flush_interval = 0.02;
    cfg.worker.table_gossip_interval = 0.05;
    cfg.worker.work_request_timeout = 0.01;
    cfg.worker.idle_backoff = 0.004;
    cfg.worker.initial_stagger = 0.002;
    cfg.net.loss_prob = 0.02;
    cfg.faults = random_schedule(seed * 77 + 5, cfg.workers);

    const RtResult res = Cluster::run(problem, cfg);

    EXPECT_FALSE(res.timed_out) << "seed " << seed;
    ASSERT_TRUE(res.all_live_halted) << "seed " << seed;
    EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value()) << "seed " << seed;

    // Incarnation hygiene: every spawned thread was joined, every member of
    // the extended population (initial + churn) got at least one
    // incarnation, and every bounce cost exactly one extra.
    EXPECT_EQ(res.reaped, res.incarnations) << "seed " << seed;
    EXPECT_EQ(res.incarnations_per_worker.size(), cfg.faults.population);
    std::uint32_t expected = 0;
    for (std::uint32_t node = 0; node < cfg.faults.population; ++node) {
      // A member has one incarnation per distinct entry (join or revive);
      // crashes that landed after its halt spawn nothing. At minimum it
      // joined once.
      EXPECT_GE(res.incarnations_per_worker[node], 1u)
          << "seed " << seed << " node " << node;
      expected += res.incarnations_per_worker[node];
    }
    EXPECT_EQ(res.incarnations, expected);
  }
}

TEST(RtChaos, LongPartitionWithLossStillConverges) {
  RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = 401;
  tree_cfg.seed = 14;
  tree_cfg.cost_mean = 1e-4;
  const BasicTree tree = BasicTree::random(tree_cfg);
  TreeProblem problem(&tree);

  RtConfig cfg;
  cfg.workers = 4;
  cfg.seed = 3;
  cfg.wall_timeout = 45.0;
  cfg.worker.report_batch = 4;
  cfg.worker.report_flush_interval = 0.02;
  cfg.worker.table_gossip_interval = 0.05;
  cfg.worker.work_request_timeout = 0.01;
  cfg.worker.idle_backoff = 0.004;

  sim::FaultPlan plan;
  plan.split_halves(0.01, 0.15);
  plan.loss(0.0, 0.3, 0.15);
  plan.bounce(2, 0.05, 0.2);
  cfg.faults = fault::FaultSchedule::compile(plan, cfg.workers);

  const RtResult res = Cluster::run(problem, cfg);
  EXPECT_FALSE(res.timed_out);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
  EXPECT_EQ(res.reaped, res.incarnations);
  EXPECT_GT(res.net.messages_partitioned + res.net.messages_lost, 0u);
}

}  // namespace
}  // namespace ftbb::rt
