#include <gtest/gtest.h>

#include "sim/network.hpp"

namespace ftbb::sim {
namespace {

TEST(Network, LatencyFollowsLinearModel) {
  // Paper model: 1.5 + 0.005 * L ms.
  Kernel k;
  NetConfig cfg;
  cfg.latency_fixed = 1.5e-3;
  cfg.latency_per_byte = 5e-6;
  Network net(&k, cfg, support::Rng(1), 4);
  double arrival = -1.0;
  net.send(0, 1, 100, 0.0, [&] { arrival = k.now(); });
  k.run();
  EXPECT_NEAR(arrival, 1.5e-3 + 100 * 5e-6, 1e-12);
}

TEST(Network, DepartureTimeShiftsArrival) {
  Kernel k;
  Network net(&k, NetConfig{}, support::Rng(1), 4);
  k.at(2.0, [&] {
    net.send(0, 1, 0, 3.5, [] {});  // sender was busy until 3.5
  });
  double arrival = -1.0;
  k.at(0.0, [&] {});
  // Re-send with a capture we can observe.
  Kernel k2;
  Network net2(&k2, NetConfig{}, support::Rng(1), 4);
  net2.send(0, 1, 0, 3.5, [&] { arrival = k2.now(); });
  k2.run();
  EXPECT_NEAR(arrival, 3.5 + 1.5e-3, 1e-12);
}

TEST(Network, JitterBoundsLatency) {
  Kernel k;
  NetConfig cfg;
  cfg.jitter_frac = 0.5;
  Network net(&k, cfg, support::Rng(7), 4);
  std::vector<double> arrivals;
  for (int i = 0; i < 200; ++i) {
    net.send(0, 1, 0, 0.0, [&] { arrivals.push_back(k.now()); });
  }
  k.run();
  ASSERT_EQ(arrivals.size(), 200u);
  for (const double a : arrivals) {
    EXPECT_GE(a, cfg.latency_fixed * 0.5 - 1e-12);
    EXPECT_LE(a, cfg.latency_fixed * 1.5 + 1e-12);
  }
}

TEST(Network, LossProbabilityOneDropsEverything) {
  Kernel k;
  NetConfig cfg;
  cfg.loss_prob = 1.0;
  Network net(&k, cfg, support::Rng(5), 4);
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(net.send(0, 1, 10, 0.0, [&] { ++delivered; }));
  }
  k.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().messages_lost, 50u);
  EXPECT_EQ(net.stats().messages_delivered, 0u);
}

TEST(Network, LossRateIsApproximatelyHonored) {
  Kernel k;
  NetConfig cfg;
  cfg.loss_prob = 0.25;
  Network net(&k, cfg, support::Rng(11), 4);
  int delivered = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) net.send(0, 1, 1, 0.0, [&] { ++delivered; });
  k.run();
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.75, 0.02);
}

TEST(Network, PartitionBlocksCrossGroupOnly) {
  Kernel k;
  Network net(&k, NetConfig{}, support::Rng(1), 4);
  net.add_partition(Partition{1.0, 2.0, {0, 0, 1}});  // nodes 0,1 vs node 2
  int delivered = 0;
  // During the window: 0->1 passes, 0->2 blocked.
  EXPECT_TRUE(net.send(0, 1, 0, 1.5, [&] { ++delivered; }));
  EXPECT_FALSE(net.send(0, 2, 0, 1.5, [&] { ++delivered; }));
  // Outside the window both pass.
  EXPECT_TRUE(net.send(0, 2, 0, 2.5, [&] { ++delivered; }));
  EXPECT_TRUE(net.send(0, 2, 0, 0.5, [&] { ++delivered; }));
  k.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(net.stats().messages_partitioned, 1u);
}

TEST(Network, LossRuleAppliesOnlyInsideItsWindow) {
  Kernel k;
  NetConfig cfg;
  cfg.loss_rules.push_back(LossRule{1.0, 2.0, 1.0});  // everything, 100%
  Network net(&k, cfg, support::Rng(3), 4);
  int delivered = 0;
  EXPECT_TRUE(net.send(0, 1, 0, 0.5, [&] { ++delivered; }));   // before
  EXPECT_FALSE(net.send(0, 1, 0, 1.5, [&] { ++delivered; }));  // inside
  EXPECT_TRUE(net.send(0, 1, 0, 2.5, [&] { ++delivered; }));   // after
  k.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.stats().messages_lost, 1u);
}

TEST(Network, PerLinkLossRuleSparesOtherLinks) {
  Kernel k;
  NetConfig cfg;
  cfg.loss_rules.push_back(LossRule{0.0, 10.0, 1.0, /*from=*/0, /*to=*/1});
  Network net(&k, cfg, support::Rng(3), 4);
  int delivered = 0;
  EXPECT_FALSE(net.send(0, 1, 0, 1.0, [&] { ++delivered; }));  // the bad link
  EXPECT_TRUE(net.send(1, 0, 0, 1.0, [&] { ++delivered; }));   // reverse is fine
  EXPECT_TRUE(net.send(0, 2, 0, 1.0, [&] { ++delivered; }));   // other target
  k.run();
  EXPECT_EQ(delivered, 2);
}

TEST(Network, OverlappingLossSourcesCombineIndependently) {
  Kernel k;
  NetConfig cfg;
  cfg.loss_prob = 0.5;
  cfg.loss_rules.push_back(LossRule{0.0, 10.0, 0.5});
  Network net(&k, cfg, support::Rng(17), 4);
  int delivered = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) net.send(0, 1, 1, 1.0, [&] { ++delivered; });
  k.run();
  // Survival = (1-0.5)*(1-0.5) = 0.25.
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.25, 0.02);
}

// ---------------------------------------------------------------------------
// Hierarchical topology: tier selection, floors, and the per-pair lookahead
// helper the sharded executor derives its channel windows from.
// ---------------------------------------------------------------------------

NetConfig hierarchical_config() {
  NetConfig cfg;
  cfg.topology.nodes_per_rack = 4;
  cfg.topology.racks_per_campus = 2;
  return cfg;  // default tiers: rack 100us, campus 1.5ms, WAN 30ms
}

TEST(Network, HierarchicalTiersOrderPairFloors) {
  const NetConfig cfg = hierarchical_config();
  // Nodes 0-3 share rack 0; 0-7 share campus 0; node 8 is another campus.
  const double rack = Network::min_latency(cfg, 0, 1);
  const double campus = Network::min_latency(cfg, 0, 4);
  const double wan = Network::min_latency(cfg, 0, 8);
  EXPECT_LT(rack, campus);
  EXPECT_LT(campus, wan);
  EXPECT_NEAR(rack, 100e-6, 1e-12);
  EXPECT_NEAR(campus, 1.5e-3, 1e-12);
  EXPECT_NEAR(wan, 30e-3, 1e-12);
  // The global conservative lookahead is the smallest pair floor, and every
  // pair floor dominates it (symmetrically — coordinates are undirected).
  EXPECT_DOUBLE_EQ(Network::min_latency(cfg), rack);
  for (std::uint32_t a = 0; a < 12; ++a) {
    for (std::uint32_t b = 0; b < 12; ++b) {
      EXPECT_GE(Network::min_latency(cfg, a, b), Network::min_latency(cfg));
      EXPECT_DOUBLE_EQ(Network::min_latency(cfg, a, b),
                       Network::min_latency(cfg, b, a));
    }
  }
}

TEST(Network, TierSelectionDeliversAtTierModel) {
  const NetConfig cfg = hierarchical_config();
  Kernel k;
  Network net(&k, cfg, support::Rng(1), 12);
  double rack_arrival = -1.0;
  double campus_arrival = -1.0;
  double wan_arrival = -1.0;
  net.send(0, 3, 100, 0.0, [&] { rack_arrival = k.now(); });
  net.send(0, 5, 100, 0.0, [&] { campus_arrival = k.now(); });
  net.send(0, 9, 100, 0.0, [&] { wan_arrival = k.now(); });
  k.run();
  EXPECT_NEAR(rack_arrival, 100e-6 + 100 * 2e-7, 1e-12);
  EXPECT_NEAR(campus_arrival, 1.5e-3 + 100 * 5e-6, 1e-12);
  EXPECT_NEAR(wan_arrival, 30e-3 + 100 * 1e-5, 1e-12);
}

TEST(Network, TierJitterShrinksTheFloorAndBoundsArrivals) {
  NetConfig cfg = hierarchical_config();
  cfg.topology.rack.jitter_frac = 0.5;
  // The guaranteed floor is the worst-case jitter draw...
  EXPECT_NEAR(Network::min_latency(cfg, 0, 1), 100e-6 * 0.5, 1e-12);
  // ...and campus/WAN pairs (no jitter configured) keep their full floors.
  EXPECT_NEAR(Network::min_latency(cfg, 0, 4), 1.5e-3, 1e-12);
  Kernel k;
  Network net(&k, cfg, support::Rng(17), 8);
  std::vector<double> arrivals;
  for (int i = 0; i < 200; ++i) {
    net.send(0, 1, 0, 0.0, [&] { arrivals.push_back(k.now()); });
  }
  k.run();
  ASSERT_EQ(arrivals.size(), 200u);
  for (const double a : arrivals) {
    EXPECT_GE(a, 100e-6 * 0.5 - 1e-12);
    EXPECT_LE(a, 100e-6 * 1.5 + 1e-12);
  }
}

TEST(Network, FlatDefaultIsASinglePairClass) {
  const NetConfig flat;  // nodes_per_rack = 0: the historical network
  EXPECT_FALSE(flat.topology.hierarchical());
  for (std::uint32_t a = 0; a < 6; ++a) {
    for (std::uint32_t b = 0; b < 6; ++b) {
      EXPECT_DOUBLE_EQ(Network::min_latency(flat, a, b),
                       Network::min_latency(flat));
    }
  }
  EXPECT_NEAR(Network::min_latency(flat), 1.5e-3, 1e-12);
}

TEST(Network, StatsCountBytes) {
  Kernel k;
  Network net(&k, NetConfig{}, support::Rng(1), 4);
  net.send(0, 1, 100, 0.0, [] {});
  net.send(1, 0, 50, 0.0, [] {});
  k.run();
  EXPECT_EQ(net.stats().messages_sent, 2u);
  EXPECT_EQ(net.stats().bytes_sent, 150u);
  EXPECT_EQ(net.stats().bytes_delivered, 150u);
  EXPECT_EQ(net.stats().messages_delivered, 2u);
}

}  // namespace
}  // namespace ftbb::sim
