#include <gtest/gtest.h>

#include "bnb/basic_tree.hpp"
#include "bnb/knapsack.hpp"
#include "bnb/sequential.hpp"
#include "bnb/vertex_cover.hpp"

namespace ftbb::bnb {
namespace {

TEST(Sequential, AllSelectRulesFindTheOptimum) {
  const auto inst = KnapsackInstance::strongly_correlated(14, 50, 0.5, 2);
  KnapsackModel model(inst);
  ASSERT_TRUE(model.known_optimal().has_value());
  for (const SelectRule rule :
       {SelectRule::kBestFirst, SelectRule::kDepthFirst, SelectRule::kBreadthFirst}) {
    SeqOptions opt;
    opt.rule = rule;
    const SeqResult res = solve_sequential(model, opt);
    EXPECT_DOUBLE_EQ(res.best_value, *model.known_optimal()) << to_string(rule);
    EXPECT_TRUE(res.completed);
  }
}

TEST(Sequential, EliminationReducesExpansions) {
  const auto inst = KnapsackInstance::strongly_correlated(13, 50, 0.5, 6);
  KnapsackModel model(inst);
  SeqOptions with;
  SeqOptions without;
  without.enable_elimination = false;
  const SeqResult pruned = solve_sequential(model, with);
  const SeqResult full = solve_sequential(model, without);
  EXPECT_LT(pruned.expanded, full.expanded);
  EXPECT_DOUBLE_EQ(pruned.best_value, full.best_value);
  EXPECT_GT(pruned.eliminated, 0u);
}

TEST(Sequential, BestFirstExpandsNoMoreThanDepthFirst) {
  // Best-first is optimal in nodes expanded among admissible orders for a
  // fixed incumbent discovery sequence; in practice it should not lose to
  // depth-first on these instances. (Not a theorem — a regression guard on
  // the selection implementation.)
  const auto inst = KnapsackInstance::strongly_correlated(14, 50, 0.5, 8);
  KnapsackModel model(inst);
  SeqOptions best;
  best.rule = SelectRule::kBestFirst;
  SeqOptions breadth;
  breadth.rule = SelectRule::kBreadthFirst;
  EXPECT_LE(solve_sequential(model, best).expanded,
            solve_sequential(model, breadth).expanded * 2);
}

TEST(Sequential, MaxExpansionsStopsEarly) {
  const auto inst = KnapsackInstance::strongly_correlated(20, 100, 0.5, 1);
  KnapsackModel model(inst);
  SeqOptions opt;
  opt.max_expansions = 10;
  const SeqResult res = solve_sequential(model, opt);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.expanded, 10u);
}

TEST(Sequential, TotalCostSumsExpandedNodes) {
  RandomTreeConfig cfg;
  cfg.target_nodes = 101;
  cfg.seed = 4;
  const BasicTree tree = BasicTree::random(cfg);
  TreeProblem exhaustive(&tree, /*honor_bounds=*/false);
  const SeqResult res = solve_sequential(exhaustive);
  EXPECT_EQ(res.expanded, tree.size());
  EXPECT_NEAR(res.total_cost, tree.total_cost(), 1e-9);
}

TEST(Sequential, CountsLeafKinds) {
  RandomTreeConfig cfg;
  cfg.target_nodes = 201;
  cfg.seed = 10;
  cfg.feasible_leaf_fraction = 0.5;
  const BasicTree tree = BasicTree::random(cfg);
  TreeProblem exhaustive(&tree, /*honor_bounds=*/false);
  const SeqResult res = solve_sequential(exhaustive);
  EXPECT_EQ(res.feasible_leaves + res.dead_ends, tree.leaf_count());
  EXPECT_GT(res.feasible_leaves, 0u);
}

TEST(Sequential, BestCodeIsAFeasibleLeaf) {
  const auto inst = KnapsackInstance::strongly_correlated(12, 40, 0.5, 3);
  KnapsackModel model(inst);
  const SeqResult res = solve_sequential(model);
  const NodeEval leaf = model.eval(res.best_code);
  EXPECT_TRUE(leaf.feasible_leaf);
  EXPECT_DOUBLE_EQ(leaf.value, res.best_value);
}

TEST(Sequential, VertexCoverAgreesAcrossRules) {
  VertexCoverModel model(Graph::gnp(13, 0.4, 21));
  SeqOptions depth;
  depth.rule = SelectRule::kDepthFirst;
  const double a = solve_sequential(model).best_value;
  const double b = solve_sequential(model, depth).best_value;
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace ftbb::bnb
