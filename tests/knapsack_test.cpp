#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bnb/basic_tree.hpp"
#include "bnb/knapsack.hpp"
#include "bnb/sequential.hpp"

namespace ftbb::bnb {
namespace {

using core::PathCode;

TEST(KnapsackInstance, GeneratorsProduceValidInstances) {
  const auto u = KnapsackInstance::random_uncorrelated(20, 100, 0.5, 1);
  EXPECT_EQ(u.items(), 20u);
  EXPECT_GT(u.capacity, 0);
  const auto s = KnapsackInstance::strongly_correlated(20, 100, 0.5, 1);
  for (std::size_t i = 0; i < s.items(); ++i) {
    EXPECT_EQ(s.profit[i], s.weight[i] + 10);
  }
}

TEST(KnapsackInstance, GeneratorsAreDeterministic) {
  const auto a = KnapsackInstance::random_uncorrelated(10, 50, 0.4, 7);
  const auto b = KnapsackInstance::random_uncorrelated(10, 50, 0.4, 7);
  EXPECT_EQ(a.weight, b.weight);
  EXPECT_EQ(a.profit, b.profit);
  EXPECT_EQ(a.capacity, b.capacity);
}

TEST(KnapsackInstance, DpOptimalKnownCase) {
  KnapsackInstance inst;
  inst.weight = {3, 4, 5};
  inst.profit = {4, 5, 6};
  inst.capacity = 7;
  EXPECT_EQ(inst.dp_optimal_profit(), 9);  // items 0 and 1
}

TEST(KnapsackModel, RootBoundIsAdmissible) {
  // The fractional bound can never be worse (greater) than the optimum.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = KnapsackInstance::random_uncorrelated(15, 60, 0.5, seed);
    KnapsackModel model(inst);
    ASSERT_TRUE(model.known_optimal().has_value());
    EXPECT_LE(model.root_bound(), *model.known_optimal());
  }
}

TEST(KnapsackModel, EvalIsDeterministic) {
  KnapsackModel model(KnapsackInstance::strongly_correlated(12, 50, 0.5, 3));
  const NodeEval a = model.eval(PathCode::root());
  const NodeEval b = model.eval(PathCode::root());
  EXPECT_EQ(a.cost, b.cost);
  ASSERT_EQ(a.children.size(), b.children.size());
  for (std::size_t i = 0; i < a.children.size(); ++i) {
    EXPECT_EQ(a.children[i].var, b.children[i].var);
    EXPECT_EQ(a.children[i].bound, b.children[i].bound);
  }
}

TEST(KnapsackModel, ChildrenBranchOnOneVariable) {
  KnapsackModel model(KnapsackInstance::strongly_correlated(12, 50, 0.5, 3));
  const NodeEval root = model.eval(PathCode::root());
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].var, root.children[1].var);
  EXPECT_NE(root.children[0].bit, root.children[1].bit);
}

TEST(KnapsackModel, ChildBoundsNeverImproveOnParent) {
  // Fixing a variable can only restrict the relaxation.
  KnapsackModel model(KnapsackInstance::strongly_correlated(14, 50, 0.5, 5));
  const double root_bound = model.root_bound();
  const NodeEval root = model.eval(PathCode::root());
  for (const ChildOut& c : root.children) {
    EXPECT_GE(c.bound, root_bound - 1e-9);
  }
}

TEST(KnapsackModel, VariableOrderVariesAcrossSubtrees) {
  // The paper requires codes to carry condition variables because branching
  // order differs between subtrees (Section 5.3.1); verify our model
  // exhibits that: somewhere in the full tree, two nodes at the same depth
  // branch on different variables. (Uncorrelated instances have
  // non-monotone weights in density order, so the first-fitting-item rule
  // skips different items in different subtrees; strongly correlated ones
  // are weight-sorted and never diverge.)
  const auto inst = KnapsackInstance::random_uncorrelated(14, 40, 0.3, 11);
  KnapsackModel model(inst);
  const BasicTree tree = BasicTree::record(model, 500000);
  std::map<std::size_t, std::set<std::uint32_t>> vars_by_depth;
  // BFS carrying depth.
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const TreeNode& n = tree.node(static_cast<std::size_t>(idx));
    if (n.is_leaf()) continue;
    vars_by_depth[depth].insert(n.var);
    stack.emplace_back(n.child[0], depth + 1);
    stack.emplace_back(n.child[1], depth + 1);
  }
  bool diverged = false;
  for (const auto& [depth, vars] : vars_by_depth) diverged |= vars.size() > 1;
  EXPECT_TRUE(diverged);
}

TEST(KnapsackModel, BoundOfMatchesChildBound) {
  KnapsackModel model(KnapsackInstance::strongly_correlated(12, 50, 0.5, 9));
  const NodeEval root = model.eval(PathCode::root());
  for (const ChildOut& c : root.children) {
    const PathCode code = PathCode::root().child(c.var, c.bit != 0);
    EXPECT_NEAR(model.bound_of(code), c.bound, 1e-12);
  }
}

TEST(KnapsackModel, CostModelMeanIsRespected) {
  NodeCostModel cost;
  cost.mean = 0.02;
  cost.cv = 0.3;
  cost.seed = 5;
  KnapsackModel model(KnapsackInstance::strongly_correlated(18, 50, 0.5, 4), cost);
  // Sample costs over many nodes.
  double sum = 0.0;
  int n = 0;
  PathCode code = PathCode::root();
  for (int i = 0; i < 200; ++i) {
    const NodeEval e = model.eval(code);
    sum += e.cost;
    ++n;
    if (e.children.empty()) break;
    code = code.child(e.children[0].var, (i % 2) == 0);
  }
  EXPECT_GT(n, 10);
  EXPECT_NEAR(sum / n, 0.02, 0.01);
}

TEST(KnapsackModel, ZeroCvCostIsConstant) {
  NodeCostModel cost;
  cost.mean = 0.5;
  cost.cv = 0.0;
  KnapsackModel model(KnapsackInstance::random_uncorrelated(8, 30, 0.5, 2), cost);
  EXPECT_DOUBLE_EQ(model.eval(PathCode::root()).cost, 0.5);
}

class KnapsackSolveTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackSolveTest, SequentialMatchesDp) {
  const std::uint64_t seed = GetParam();
  const auto inst = KnapsackInstance::strongly_correlated(16, 50, 0.5, seed);
  KnapsackModel model(inst);
  ASSERT_TRUE(model.known_optimal().has_value());
  const SeqResult res = solve_sequential(model);
  EXPECT_TRUE(res.completed);
  EXPECT_TRUE(res.found_feasible);
  EXPECT_DOUBLE_EQ(res.best_value, *model.known_optimal());
}

TEST_P(KnapsackSolveTest, UncorrelatedMatchesDp) {
  const std::uint64_t seed = GetParam();
  const auto inst = KnapsackInstance::random_uncorrelated(18, 80, 0.45, seed);
  KnapsackModel model(inst);
  ASSERT_TRUE(model.known_optimal().has_value());
  const SeqResult res = solve_sequential(model);
  EXPECT_DOUBLE_EQ(res.best_value, *model.known_optimal());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackSolveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ftbb::bnb
