#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/bytes.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace ftbb::support {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng master(7);
  Rng s1 = master.split(1);
  Rng s2 = master.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += s1.next() == s2.next() ? 1 : 0;
  EXPECT_LT(same, 3);
  // Splitting is a pure function of (state, id).
  Rng s1b = master.split(1);
  EXPECT_EQ(s1b.next(), Rng(7).split(1).next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(42);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalMeanCv) {
  Rng rng(17);
  Accumulator acc;
  for (int i = 0; i < 300000; ++i) acc.add(rng.lognormal_mean_cv(0.01, 0.3));
  EXPECT_NEAR(acc.mean(), 0.01, 0.0005);
  EXPECT_NEAR(acc.stddev() / acc.mean(), 0.3, 0.02);
  // cv = 0 degenerates to the constant.
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(5.0, 0.0), 5.0);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(19);
  for (std::size_t n : {1u, 5u, 100u}) {
    for (std::size_t k = 0; k <= n; k += std::max<std::size_t>(1, n / 3)) {
      const auto sample = rng.sample_without_replacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<std::size_t> seen(sample.begin(), sample.end());
      EXPECT_EQ(seen.size(), k);
      for (const std::size_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(Rng, SampleCoversAllElements) {
  Rng rng(23);
  const auto sample = rng.sample_without_replacement(8, 8);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Bytes, VarintRoundTrip) {
  ByteWriter w;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 16383, 16384,
                                  (1ULL << 32), ~0ULL};
  for (const auto v : values) w.varint(v);
  ByteReader r(w.data());
  for (const auto v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, SignedVarintRoundTrip) {
  ByteWriter w;
  const std::int64_t values[] = {0, -1, 1, -64, 63, -12345678, 12345678,
                                 INT64_MIN, INT64_MAX};
  for (const auto v : values) w.svarint(v);
  ByteReader r(w.data());
  for (const auto v : values) EXPECT_EQ(r.svarint(), v);
}

TEST(Bytes, DoubleRoundTrip) {
  ByteWriter w;
  const double values[] = {0.0, -0.0, 1.5, -3.25e30, 1e-300,
                           std::numeric_limits<double>::infinity()};
  for (const auto v : values) w.f64(v);
  ByteReader r(w.data());
  for (const auto v : values) EXPECT_EQ(r.f64(), v);
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.str("");
  w.str("hello");
  w.str(std::string(1000, 'x'));
  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
}

TEST(Bytes, VarintSizeMatchesEncoding) {
  for (const std::uint64_t v : {0ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, ~0ULL}) {
    ByteWriter w;
    w.varint(v);
    EXPECT_EQ(varint_size(v), w.size()) << v;
  }
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, MergeMatchesCombined) {
  Accumulator a;
  Accumulator b;
  Accumulator all;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(0, 10);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(5.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h({1.0, 2.0, 4.0});
  for (double v = 0.25; v < 5.0; v += 0.5) h.add(v);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_GT(h.quantile(0.5), 1.0);
  EXPECT_LE(h.quantile(0.0), h.quantile(1.0));
}

TEST(TextTable, RendersAligned) {
  TextTable t({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22.5"});
  const std::string out = t.render();
  // Column widths: "alpha" (5) and "value" (5).
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.1234, 1), "12.3%");
}

}  // namespace
}  // namespace ftbb::support
