// Cluster-level tests of the v1 wire frames: protocol outcomes are
// unchanged by the encoding, delta-coded reports genuinely shrink the
// traffic, and a revived worker restarts its delta stream from a
// self-contained report instead of chaining to a dead incarnation's base.
#include <gtest/gtest.h>

#include "bnb/basic_tree.hpp"
#include "rt/runtime.hpp"
#include "sim/cluster.hpp"

namespace ftbb::sim {
namespace {

using bnb::BasicTree;
using bnb::RandomTreeConfig;
using bnb::TreeProblem;

core::WorkerConfig fast_worker_config() {
  core::WorkerConfig w;
  w.report_batch = 4;
  w.report_flush_interval = 0.05;
  w.report_fanout = 2;
  w.table_gossip_interval = 0.2;
  w.work_request_timeout = 0.02;
  w.idle_backoff = 0.005;
  w.initial_stagger = 0.002;
  w.attempts_before_recovery = 3;
  return w;
}

BasicTree test_tree(std::uint64_t seed, std::uint64_t nodes = 1001) {
  RandomTreeConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  cfg.cost_mean = 2e-3;
  cfg.feasible_leaf_fraction = 0.3;
  return BasicTree::random(cfg);
}

ClusterConfig base_config(std::uint32_t workers, std::uint64_t seed,
                          core::FrameVersion wire) {
  ClusterConfig cfg;
  cfg.workers = workers;
  cfg.worker = fast_worker_config();
  cfg.seed = seed;
  cfg.time_limit = 300.0;
  cfg.wire = wire;
  return cfg;
}

TEST(Wire, V1AgreesWithLegacyOnTheOptimum) {
  const BasicTree tree = test_tree(11, 2001);
  TreeProblem problem(&tree);
  const ClusterResult legacy = SimCluster::run(
      problem, base_config(4, 11, core::FrameVersion::kLegacy));
  const ClusterResult v1 =
      SimCluster::run(problem, base_config(4, 11, core::FrameVersion::kV1));
  ASSERT_TRUE(legacy.all_live_halted);
  ASSERT_TRUE(v1.all_live_halted);
  ASSERT_TRUE(legacy.solution_found);
  ASSERT_TRUE(v1.solution_found);
  EXPECT_DOUBLE_EQ(legacy.solution, tree.optimal_value());
  EXPECT_DOUBLE_EQ(v1.solution, tree.optimal_value());
}

TEST(Wire, LegacyFramesPriceIdenticalToFlatEncoding) {
  const BasicTree tree = test_tree(12);
  TreeProblem problem(&tree);
  const ClusterResult res = SimCluster::run(
      problem, base_config(4, 12, core::FrameVersion::kLegacy));
  ASSERT_TRUE(res.all_live_halted);
  // kLegacy is byte-identical to the seed encoding: the frame bytes ARE the
  // flat bytes (this is what keeps the pinned golden fingerprints valid),
  // and no frame carries a delta chain.
  EXPECT_EQ(res.wire.frame_bytes, res.wire.flat_bytes);
  EXPECT_EQ(res.wire.delta_reports, 0u);
  EXPECT_EQ(res.wire.self_contained_reports, 0u);
  EXPECT_EQ(res.wire.frame_bytes, res.net.bytes_sent);
}

TEST(Wire, V1ShrinksReportTraffic) {
  // Exhaustive walk with full batches — the E6 load regime where delta
  // coding pays; a near-empty report stream would be dominated by the
  // 3-byte frame header plus the shipped base.
  const BasicTree tree = test_tree(13, 4001);
  TreeProblem problem(&tree, /*honor_bounds=*/false);
  ClusterConfig cfg = base_config(4, 13, core::FrameVersion::kV1);
  cfg.worker.report_batch = 16;
  cfg.worker.report_flush_interval = 5.0;
  cfg.worker.compress_against_table = true;
  const ClusterResult res = SimCluster::run(problem, cfg);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_GT(res.wire.report_frames, 0u);
  // Delta-coded report frames undercut the same traffic priced flat.
  EXPECT_LT(res.wire.report_frame_bytes, res.wire.report_flat_bytes);
  EXPECT_GT(res.wire.delta_reports, 0u);
  // The network charged exactly the framed bytes.
  EXPECT_EQ(res.wire.frame_bytes, res.net.bytes_sent);
}

TEST(Wire, RevivedWorkerRestartsItsDeltaStream) {
  // Crash worker 1 mid-report-stream, revive it, and require the revived
  // incarnation to open a *second* delta stream: its first post-revive
  // report must be self-contained (wire sequence 0), never chained to the
  // dead incarnation's last batch.
  const BasicTree tree = test_tree(14, 8001);
  TreeProblem problem(&tree, /*honor_bounds=*/false);
  ClusterConfig cfg = base_config(4, 14, core::FrameVersion::kV1);
  const ClusterResult baseline = SimCluster::run(problem, cfg);
  ASSERT_TRUE(baseline.all_live_halted);

  // Crash after the first reports have flushed, revive with plenty of the
  // exhaustive walk left so the fresh incarnation reacquires work and
  // reports again.
  cfg.crashes = {{1, baseline.makespan * 0.25}};
  cfg.rejoins = {{1, baseline.makespan * 0.35}};
  const ClusterResult res = SimCluster::run(problem, cfg);
  ASSERT_TRUE(res.all_live_halted);
  ASSERT_TRUE(res.solution_found);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());

  ASSERT_EQ(res.report_streams_per_worker.size(), 4u);
  // Both incarnations of worker 1 reported: two streams opened.
  EXPECT_EQ(res.report_streams_per_worker[1], 2u);
  for (const core::NodeId node : {0u, 2u, 3u}) {
    EXPECT_EQ(res.report_streams_per_worker[node], 1u);
  }
  // Every opened stream leads with a self-contained report (fanned out to
  // >= 1 peer), and steady-state batches are deltas.
  std::uint32_t streams = 0;
  for (const std::uint32_t s : res.report_streams_per_worker) streams += s;
  EXPECT_GE(res.wire.self_contained_reports, streams);
  EXPECT_GT(res.wire.delta_reports, 0u);
}

TEST(Wire, RtRevivedWorkerRestartsItsDeltaStream) {
  // Same property on the thread-backed runtime, where v1 frames are
  // actually encoded and decoded on delivery: a bounced worker's fresh
  // incarnation restarts the chain, and no frame ever fails to decode.
  RandomTreeConfig tree_cfg;
  tree_cfg.target_nodes = 4001;
  tree_cfg.seed = 8;
  tree_cfg.cost_mean = 1e-4;
  const BasicTree tree = BasicTree::random(tree_cfg);
  TreeProblem problem(&tree);

  rt::RtConfig cfg;
  cfg.workers = 4;
  cfg.seed = 8;
  cfg.wall_timeout = 90.0;
  cfg.worker.report_batch = 4;
  cfg.worker.report_flush_interval = 0.02;
  cfg.worker.table_gossip_interval = 0.05;
  cfg.worker.work_request_timeout = 0.01;
  cfg.worker.idle_backoff = 0.004;
  cfg.worker.initial_stagger = 0.002;
  cfg.faults.crashes = {{1, 0.02}};
  cfg.faults.revives = {{1, 0.12}};

  const rt::RtResult res = rt::Cluster::run(problem, cfg);
  EXPECT_FALSE(res.timed_out);
  ASSERT_TRUE(res.all_live_halted);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
  EXPECT_EQ(res.net.decode_errors, 0u);
  ASSERT_EQ(res.report_streams_per_worker.size(), 4u);
  ASSERT_EQ(res.incarnations_per_worker.size(), 4u);
  EXPECT_GE(res.incarnations_per_worker[1], 2u);
  for (std::size_t node = 0; node < 4; ++node) {
    // A stream needs an incarnation; timing decides whether every
    // incarnation got far enough to report, so only the bound is exact.
    EXPECT_LE(res.report_streams_per_worker[node],
              res.incarnations_per_worker[node]);
  }
  // Somebody reported under v1 frames and every frame decoded.
  std::uint32_t streams = 0;
  for (const std::uint32_t s : res.report_streams_per_worker) streams += s;
  EXPECT_GT(streams, 0u);
}

}  // namespace
}  // namespace ftbb::sim
