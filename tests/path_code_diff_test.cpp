// Differential test: the packed small-buffer PathCode against the verbatim
// seed vector<Branch> implementation (bench/legacy_path_code.hpp).
//
// Every golden ScenarioReport fingerprint depends on code ordering, equality,
// hash values and wire bytes, so the packed rewrite must be value-identical —
// not merely "equivalent" but the same strong ordering through every
// tie-break, the same FNV hash including the final length mix, and the same
// varint bytes. The tests drive both implementations with identical randomized
// derivation streams (child/parent/sibling/prefix walks) across depth regimes
// chosen to cross the inline->heap spill boundary (kInlineWords) in both
// directions, and assert op-for-op identity on every observable.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bench/legacy_path_code.hpp"
#include "core/path_code.hpp"
#include "support/rng.hpp"

namespace ftbb::core {
namespace {

using bench::LegacyPathCode;

/// One mirrored code: the implementation under test and the seed oracle,
/// always derived through the same operations.
struct Pair {
  PathCode packed;
  LegacyPathCode legacy;
};

void expect_same(const Pair& p, const char* what) {
  ASSERT_EQ(p.packed.depth(), p.legacy.depth()) << what;
  EXPECT_EQ(p.packed.is_root(), p.legacy.is_root()) << what;
  for (std::size_t i = 0; i < p.legacy.depth(); ++i) {
    EXPECT_EQ(p.packed.step(i), p.legacy.step(i)) << what << " step " << i;
    EXPECT_EQ(p.packed.var(i), p.legacy.step(i).var) << what;
    EXPECT_EQ(p.packed.bit(i), p.legacy.step(i).bit) << what;
  }
  EXPECT_EQ(p.packed.hash(), p.legacy.hash()) << what;
  EXPECT_EQ(p.packed.to_string(), p.legacy.to_string()) << what;
  EXPECT_EQ(p.packed.encoded_size(), p.legacy.encoded_size()) << what;
  support::ByteWriter wp;
  support::ByteWriter wl;
  p.packed.encode(wp);
  p.legacy.encode(wl);
  EXPECT_EQ(wp.data(), wl.data()) << what << " (wire bytes)";
  // Round-trip through the packed decoder from legacy-produced bytes.
  support::ByteReader r(wl.data());
  const PathCode decoded = PathCode::decode(r);
  EXPECT_TRUE(r.ok()) << what;
  EXPECT_EQ(decoded, p.packed) << what << " (decode round-trip)";
  EXPECT_EQ(decoded.hash(), p.packed.hash()) << what << " (decoded hash)";
}

/// Applies the same random derivation `steps` times to a mirrored pair,
/// checking identity after every operation. `max_var` scales the variable
/// draw; `deepen_bias` (out of 4) controls how often the walk descends, so
/// callers can pin the walk near a chosen depth regime.
void random_walk(std::uint64_t seed, int steps, std::uint32_t max_var,
                 int deepen_bias) {
  support::Rng rng(seed);
  Pair cur;
  std::vector<Pair> pool;  // snapshots for cross-code comparisons
  for (int s = 0; s < steps; ++s) {
    const std::uint64_t op = rng.next() % 4;
    if (op < static_cast<std::uint64_t>(deepen_bias) || cur.packed.is_root()) {
      const auto var = static_cast<std::uint32_t>(rng.next() % max_var);
      const bool bit = (rng.next() & 1) != 0;
      cur = Pair{cur.packed.child(var, bit), cur.legacy.child(var, bit)};
    } else if (op == 3 && !cur.packed.is_root()) {
      cur = Pair{cur.packed.parent(), cur.legacy.parent()};
    } else {
      cur = Pair{cur.packed.sibling(), cur.legacy.sibling()};
    }
    expect_same(cur, "walk");
    if (s % 7 == 0) {
      const std::size_t n = rng.next() % (cur.packed.depth() + 1);
      const Pair pre{cur.packed.prefix(n), cur.legacy.prefix(n)};
      expect_same(pre, "prefix");
      pool.push_back(pre);
    }
    pool.push_back(cur);
    // Pairwise relations: ordering, equality, containment must agree with
    // the oracle for every snapshot pair seen so far (capped for runtime).
    const std::size_t m = pool.size() > 24 ? 24 : pool.size();
    for (std::size_t i = pool.size() - m; i < pool.size(); ++i) {
      const Pair& a = pool[i];
      EXPECT_EQ(a.packed == cur.packed, a.legacy == cur.legacy);
      EXPECT_EQ(a.packed < cur.packed, a.legacy < cur.legacy);
      EXPECT_EQ(a.packed <=> cur.packed, a.legacy <=> cur.legacy);
      EXPECT_EQ(a.packed.contains(cur.packed), a.legacy.contains(cur.legacy));
      EXPECT_EQ(cur.packed.contains(a.packed), cur.legacy.contains(a.legacy));
      EXPECT_EQ(a.packed.is_ancestor_of(cur.packed),
                a.legacy.is_ancestor_of(cur.legacy));
    }
  }
}

TEST(PathCodeDiff, ShallowRegimeStaysInline) {
  // Bias toward parent/sibling keeps the walk at depths well inside
  // kInlineWords; vars span the single-byte varint range.
  random_walk(/*seed=*/101, /*steps=*/400, /*max_var=*/50, /*deepen_bias=*/2);
}

TEST(PathCodeDiff, SpillBoundaryRegime) {
  // A descend-heavy walk oscillating right around kInlineWords: codes cross
  // inline->heap on child() and heap->inline on parent() repeatedly.
  support::Rng rng(202);
  Pair cur;
  for (std::uint32_t d = 0; d < PathCode::kInlineWords - 1; ++d) {
    cur = Pair{cur.packed.child(d, d % 2 != 0), cur.legacy.child(d, d % 2 != 0)};
  }
  for (int s = 0; s < 600; ++s) {
    if ((rng.next() & 1) != 0 ||
        cur.packed.depth() < PathCode::kInlineWords - 2) {
      const auto var = static_cast<std::uint32_t>(rng.next() % 1000);
      cur = Pair{cur.packed.child(var, (s & 1) != 0),
                 cur.legacy.child(var, (s & 1) != 0)};
    } else {
      cur = Pair{cur.packed.parent(), cur.legacy.parent()};
    }
    expect_same(cur, "spill boundary");
    const Pair sib{cur.packed.sibling(), cur.legacy.sibling()};
    expect_same(sib, "spill sibling");
    EXPECT_EQ(sib.packed < cur.packed, sib.legacy < cur.legacy);
  }
}

TEST(PathCodeDiff, DeepRegime) {
  random_walk(/*seed=*/303, /*steps=*/300, /*max_var=*/100000,
              /*deepen_bias=*/3);
}

TEST(PathCodeDiff, VeryDeepRegime512) {
  // Straight descent to depth 512 (far past the inline buffer, multiple
  // geometric regrowths), then checks along the way back up.
  support::Rng rng(404);
  Pair cur;
  std::vector<Pair> trail;
  for (int d = 0; d < 512; ++d) {
    const auto var = static_cast<std::uint32_t>(rng.next() % 3000000);
    const bool bit = (rng.next() & 1) != 0;
    cur = Pair{cur.packed.child(var, bit), cur.legacy.child(var, bit)};
    if (d % 64 == 0) trail.push_back(cur);
  }
  expect_same(cur, "depth 512");
  for (const Pair& t : trail) {
    EXPECT_TRUE(t.legacy.contains(cur.legacy));
    EXPECT_TRUE(t.packed.contains(cur.packed));
    EXPECT_EQ(t.packed < cur.packed, t.legacy < cur.legacy);
  }
  while (!cur.packed.is_root()) {
    cur = Pair{cur.packed.parent(), cur.legacy.parent()};
    if (cur.packed.depth() % 37 == 0) expect_same(cur, "ascent");
  }
  expect_same(cur, "back at root");
}

TEST(PathCodeDiff, LargeVariableIndices) {
  // Multi-byte varints: vars up to the packed representation's kMaxVar.
  const std::uint32_t vars[] = {0,        1,         63,         64,
                                8191,     8192,      1000000,    (1u << 24),
                                (1u << 30), PathCode::kMaxVar};
  Pair cur;
  for (const std::uint32_t v : vars) {
    cur = Pair{cur.packed.child(v, v % 2 != 0), cur.legacy.child(v, v % 2 != 0)};
    expect_same(cur, "large vars");
  }
}

TEST(PathCodeDiff, HashMatchesOnEveryPrefix) {
  // The packed hash is maintained incrementally (and inverted by parent());
  // pin it against the oracle's from-scratch walk at every depth 0..300.
  support::Rng rng(505);
  Pair cur;
  EXPECT_EQ(cur.packed.hash(), cur.legacy.hash());
  for (int d = 0; d < 300; ++d) {
    const auto var = static_cast<std::uint32_t>(rng.next() % 1000000);
    const bool bit = (rng.next() & 1) != 0;
    cur = Pair{cur.packed.child(var, bit), cur.legacy.child(var, bit)};
    EXPECT_EQ(cur.packed.hash(), cur.legacy.hash()) << "depth " << d + 1;
    EXPECT_EQ(cur.packed.sibling().hash(), cur.legacy.sibling().hash());
  }
}

TEST(PathCodeDiff, MutatingEditorMatchesDerivedCodes) {
  // push_step/pop_step (the scratch-path enumeration API) against the
  // oracle's child()/parent() — same codes, same hashes, same bytes.
  support::Rng rng(606);
  PathCode scratch;
  LegacyPathCode oracle;
  for (int s = 0; s < 500; ++s) {
    if ((rng.next() % 3) != 0 || oracle.is_root()) {
      const auto var = static_cast<std::uint32_t>(rng.next() % 4096);
      const bool bit = (rng.next() & 1) != 0;
      scratch.push_step(var, bit);
      oracle = oracle.child(var, bit);
    } else {
      scratch.pop_step();
      oracle = oracle.parent();
    }
    expect_same(Pair{scratch, oracle}, "editor");
  }
}

TEST(PathCodeDiff, VectorCtorAndViewRoundTrip) {
  support::Rng rng(707);
  for (int n : {0, 1, 9, 10, 11, 40, 300}) {
    std::vector<Branch> steps;
    for (int i = 0; i < n; ++i) {
      steps.push_back(Branch{static_cast<std::uint32_t>(rng.next() % 100000),
                             static_cast<std::uint8_t>(rng.next() & 1)});
    }
    const Pair p{PathCode(steps), LegacyPathCode(steps)};
    expect_same(p, "vector ctor");
    const PathCode via_view{p.packed.view()};
    EXPECT_EQ(via_view, p.packed);
    EXPECT_EQ(via_view.hash(), p.legacy.hash());
  }
}

}  // namespace
}  // namespace ftbb::core
