// Unit tests of the backend-agnostic fault plane: FaultSchedule::compile
// (population resolution, join-time validation, partition materialization),
// remapped() (the centralized baseline's network-id shift), and FaultDriver
// (capability-call order, the pending-injection gate, horizon-abandoned
// joins) against a recording fake backend and a manual clock.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/driver.hpp"
#include "fault/schedule.hpp"
#include "sim/fault_plan.hpp"

namespace ftbb::fault {
namespace {

using sim::FaultPlan;

/// Records every capability call as a readable line.
class RecordingBackend final : public IFaultBackend {
 public:
  void crash(std::uint32_t node) override { log("crash " + std::to_string(node)); }
  void revive(std::uint32_t node) override { log("revive " + std::to_string(node)); }
  void join(std::uint32_t node) override { log("join " + std::to_string(node)); }
  void abandon_join(std::uint32_t node) override {
    log("abandon " + std::to_string(node));
  }
  void set_partition(const sim::Partition& partition) override {
    log("partition " + std::to_string(partition.group_of.size()));
  }
  void set_loss_rule(const sim::LossRule& rule) override {
    log("loss " + std::to_string(rule.from) + "->" + std::to_string(rule.to));
  }

  std::vector<std::string> calls;

 private:
  void log(std::string line) { calls.push_back(std::move(line)); }
};

/// Queues scheduled closures; the test fires them by hand, in deadline
/// order, like any real clock would.
class ManualClock final : public IFaultClock {
 public:
  void call_at(double at, sim::Callback fn) override {
    pending.push_back({at, std::move(fn)});
  }

  void fire_all_due(double until) {
    // Stable by scheduling order within equal times, like the kernel.
    for (bool fired = true; fired;) {
      fired = false;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (pending[i].at <= until) {
          auto fn = std::move(pending[i].fn);
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
          fn();
          fired = true;
          break;
        }
      }
    }
  }

  struct Item {
    double at;
    sim::Callback fn;
  };
  std::vector<Item> pending;
};

TEST(FaultSchedule, CompileResolvesPopulationAndJoins) {
  FaultPlan plan;
  plan.churn(4, 2, 0.1, 0.05);  // nodes 4 and 5 arrive late
  plan.crash(5, 0.3);
  plan.split_halves(0.2, 0.4);
  const FaultSchedule schedule = FaultSchedule::compile(plan, 4);
  EXPECT_EQ(schedule.population, 6u);
  ASSERT_EQ(schedule.join_times.size(), 6u);
  EXPECT_EQ(schedule.join_times[0], 0.0);
  EXPECT_DOUBLE_EQ(schedule.join_times[4], 0.1);
  EXPECT_DOUBLE_EQ(schedule.join_times[5], 0.15);
  ASSERT_EQ(schedule.partitions.size(), 1u);
  EXPECT_EQ(schedule.partitions[0].group_of.size(), 6u);  // materialized
  ASSERT_EQ(schedule.crashes.size(), 1u);
  EXPECT_EQ(schedule.crashes[0].node, 5u);
  EXPECT_FALSE(schedule.timeline.empty());
}

TEST(FaultSchedule, RemappedShiftsNetworkIdsButNotJoinTimes) {
  FaultPlan plan;
  plan.crash(1, 0.1).rejoin(1, 0.2);
  plan.link_loss(0, 2, 0.0, 1.0, 0.5);
  plan.loss(0.0, 1.0, 0.1);  // any-node rule must stay any-node
  plan.partition(0.1, 0.2, {0, 1, 1});
  plan.churn(3, 1, 0.05, 0.0);
  const FaultSchedule schedule = FaultSchedule::compile(plan, 3);
  const FaultSchedule shifted = schedule.remapped(1);

  EXPECT_EQ(shifted.crashes[0].node, 2u);
  EXPECT_EQ(shifted.revives[0].node, 2u);
  EXPECT_EQ(shifted.loss_rules[0].from, 1);
  EXPECT_EQ(shifted.loss_rules[0].to, 3);
  EXPECT_EQ(shifted.loss_rules[1].from, sim::LossRule::kAnyNode);
  EXPECT_EQ(shifted.loss_rules[1].to, sim::LossRule::kAnyNode);
  // The infrastructure node shares protocol node 0's partition group.
  EXPECT_EQ(shifted.partitions[0].group_of, (std::vector<int>{0, 0, 1, 1}));
  // join_times stay per-protocol-member.
  EXPECT_EQ(shifted.join_times, schedule.join_times);
}

TEST(FaultDriver, ArmsInCanonicalOrderAndGatesOnPendingInjections) {
  FaultPlan plan;
  plan.bounce(1, 0.1, 0.3);
  plan.loss(0.0, 1.0, 0.1);
  plan.partition(0.1, 0.2, {0, 1, 1});
  const FaultSchedule schedule = FaultSchedule::compile(plan, 3);

  RecordingBackend backend;
  ManualClock clock;
  FaultDriver driver(schedule, &backend, &clock);
  driver.arm(100.0);

  // Static windows install immediately, rules before partitions.
  ASSERT_GE(backend.calls.size(), 2u);
  EXPECT_EQ(backend.calls[0], "loss -1->-1");
  EXPECT_EQ(backend.calls[1], "partition 3");

  // 1 crash + 1 revive + 3 joins pending.
  EXPECT_EQ(driver.pending_injections(), 5u);

  std::uint32_t fires = 0;
  driver.set_fire_listener([&fires] { ++fires; });

  clock.fire_all_due(0.0);  // the three t=0 joins
  EXPECT_EQ(driver.pending_injections(), 2u);
  EXPECT_EQ(fires, 3u);
  EXPECT_EQ(backend.calls[2], "join 0");
  EXPECT_EQ(backend.calls[3], "join 1");
  EXPECT_EQ(backend.calls[4], "join 2");

  clock.fire_all_due(0.1);  // the crash
  EXPECT_EQ(driver.pending_injections(), 1u);
  EXPECT_EQ(backend.calls.back(), "crash 1");

  clock.fire_all_due(1.0);  // the revive
  EXPECT_EQ(driver.pending_injections(), 0u);
  EXPECT_EQ(backend.calls.back(), "revive 1");
  EXPECT_EQ(fires, 5u);
}

TEST(FaultDriver, JoinsBeyondTheHorizonAreAbandonedNotScheduled) {
  FaultPlan plan;
  plan.churn(2, 2, 50.0, 100.0);  // node 2 at t=50, node 3 at t=150
  const FaultSchedule schedule = FaultSchedule::compile(plan, 2);

  RecordingBackend backend;
  ManualClock clock;
  FaultDriver driver(schedule, &backend, &clock);
  driver.arm(100.0);

  // Nodes 0, 1 (t=0) and 2 (t=50) schedule; node 3 (t=150) is abandoned.
  EXPECT_EQ(driver.pending_injections(), 3u);
  ASSERT_FALSE(backend.calls.empty());
  EXPECT_EQ(backend.calls.back(), "abandon 3");
  clock.fire_all_due(100.0);
  EXPECT_EQ(driver.pending_injections(), 0u);
}

TEST(FaultDriverDeath, OutOfRangeNodeAborts) {
  FaultSchedule schedule;
  schedule.population = 2;
  schedule.crashes.push_back(CrashAt{5, 0.1});
  RecordingBackend backend;
  ManualClock clock;
  FaultDriver driver(schedule, &backend, &clock);
  EXPECT_DEATH(driver.arm(1.0), "");
}

}  // namespace
}  // namespace ftbb::fault
