// Tests of the DIB baseline — including the failure semantics the paper
// contrasts against (Section 5.5): DIB survives non-root failures by donor
// redo, but the root of the responsibility hierarchy is a single point of
// failure.
#include <gtest/gtest.h>

#include "bnb/basic_tree.hpp"
#include "dib/dib.hpp"

namespace ftbb::dib {
namespace {

using bnb::BasicTree;
using bnb::RandomTreeConfig;
using bnb::TreeProblem;

BasicTree test_tree(std::uint64_t seed, std::uint64_t nodes = 601) {
  RandomTreeConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  cfg.cost_mean = 2e-3;
  return BasicTree::random(cfg);
}

DibConfig fast_config() {
  DibConfig cfg;
  cfg.work_request_timeout = 0.02;
  cfg.request_backoff = 0.01;
  cfg.audit_interval = 0.1;
  cfg.donation_timeout = 2.0;  // > any healthy donation's lifetime here
  return cfg;
}

TEST(Dib, SolvesWithoutFailures) {
  const BasicTree tree = test_tree(1);
  TreeProblem problem(&tree);
  const DibResult res =
      DibSim::run(problem, 4, fast_config(), {}, {}, 120.0, 1);
  EXPECT_TRUE(res.completed);
  ASSERT_TRUE(res.solution_found);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
}

TEST(Dib, WorkSpreadsAcrossMachines) {
  const BasicTree tree = test_tree(2, 1001);
  TreeProblem problem(&tree, /*honor_bounds=*/false);
  const DibResult res =
      DibSim::run(problem, 4, fast_config(), {}, {}, 120.0, 2);
  ASSERT_TRUE(res.completed);
  for (const std::uint64_t expanded : res.expanded_per_machine) {
    EXPECT_GT(expanded, 0u);
  }
  EXPECT_GT(res.donations, 0u);
}

TEST(Dib, SingleMachineWorks) {
  const BasicTree tree = test_tree(3, 301);
  TreeProblem problem(&tree);
  const DibResult res =
      DibSim::run(problem, 1, fast_config(), {}, {}, 120.0, 3);
  EXPECT_TRUE(res.completed);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
}

TEST(Dib, DeterministicForSeed) {
  const BasicTree tree = test_tree(4);
  TreeProblem problem(&tree);
  const DibResult a = DibSim::run(problem, 3, fast_config(), {}, {}, 120.0, 7);
  const DibResult b = DibSim::run(problem, 3, fast_config(), {}, {}, 120.0, 7);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_expanded, b.total_expanded);
}

TEST(Dib, SurvivesNonRootFailureByDonorRedo) {
  // honor_bounds=false keeps every machine busy for the whole run, so the
  // victim is guaranteed to hold donated-but-unfinished work when it dies.
  const BasicTree tree = test_tree(5, 1001);
  TreeProblem problem(&tree, /*honor_bounds=*/false);
  const DibResult baseline =
      DibSim::run(problem, 4, fast_config(), {}, {}, 120.0, 5);
  ASSERT_TRUE(baseline.completed);
  const DibResult res = DibSim::run(problem, 4, fast_config(), {},
                                    {{2, baseline.makespan * 0.5}}, 240.0, 5);
  EXPECT_TRUE(res.completed);
  EXPECT_DOUBLE_EQ(res.solution, tree.optimal_value());
  // The donor redid work: either explicit redos or duplicated expansions.
  EXPECT_GT(res.donation_redos + res.redundant_expansions, 0u);
}

TEST(Dib, RootFailureIsFatal) {
  // The paper's criticism: DIB "imposes the need for a reliable or
  // duplicated node for the root of this hierarchy". Killing machine 0
  // prevents the computation from ever concluding.
  const BasicTree tree = test_tree(6, 301);
  TreeProblem problem(&tree);
  const DibResult baseline =
      DibSim::run(problem, 3, fast_config(), {}, {}, 120.0, 6);
  ASSERT_TRUE(baseline.completed);
  const DibResult res = DibSim::run(problem, 3, fast_config(), {},
                                    {{0, baseline.makespan * 0.3}}, 20.0, 6);
  EXPECT_FALSE(res.completed);
}

TEST(Dib, FailureAmplification) {
  // Killing a middle machine loses the bookkeeping for problems it donated
  // onward; its donor redoes the whole job including parts third machines
  // already finished — redundancy beyond the victim's own unfinished work.
  const BasicTree tree = test_tree(7, 1001);
  TreeProblem problem(&tree, /*honor_bounds=*/false);
  const DibResult baseline =
      DibSim::run(problem, 5, fast_config(), {}, {}, 240.0, 8);
  ASSERT_TRUE(baseline.completed);
  const DibResult res = DibSim::run(problem, 5, fast_config(), {},
                                    {{1, baseline.makespan * 0.5}}, 480.0, 8);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.total_expanded, baseline.total_expanded);
}

}  // namespace
}  // namespace ftbb::dib
