#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bnb/basic_tree.hpp"
#include "bnb/knapsack.hpp"
#include "bnb/sequential.hpp"

namespace ftbb::bnb {
namespace {

using core::PathCode;

BasicTree small_random(std::uint64_t seed, std::uint64_t nodes = 201) {
  RandomTreeConfig cfg;
  cfg.target_nodes = nodes;
  cfg.seed = seed;
  return BasicTree::random(cfg);
}

TEST(RandomTree, IsFullBinaryWithOddSize) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const BasicTree t = small_random(seed);
    EXPECT_EQ(t.size() % 2, 1u);
    std::size_t leaves = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const TreeNode& n = t.node(i);
      if (n.is_leaf()) {
        ++leaves;
        EXPECT_EQ(n.child[0], -1);
        EXPECT_EQ(n.child[1], -1);
      } else {
        EXPECT_GE(n.child[0], 0);
        EXPECT_GE(n.child[1], 0);
      }
    }
    EXPECT_EQ(leaves, (t.size() + 1) / 2);
    EXPECT_EQ(t.leaf_count(), leaves);
  }
}

TEST(RandomTree, TargetSizeIsRespected) {
  RandomTreeConfig cfg;
  cfg.target_nodes = 1000;  // even: rounded up
  cfg.seed = 3;
  EXPECT_EQ(BasicTree::random(cfg).size(), 1001u);
  cfg.target_nodes = 777;
  EXPECT_EQ(BasicTree::random(cfg).size(), 777u);
}

TEST(RandomTree, AlwaysHasAFeasibleLeaf) {
  RandomTreeConfig cfg;
  cfg.target_nodes = 101;
  cfg.feasible_leaf_fraction = 0.0;  // generator must still force one
  cfg.seed = 9;
  const BasicTree t = BasicTree::random(cfg);
  EXPECT_LT(t.optimal_value(), kInfinity);
}

TEST(RandomTree, BoundsAreMonotoneDown) {
  const BasicTree t = small_random(4);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const TreeNode& n = t.node(i);
    if (n.is_leaf()) continue;
    for (const auto c : n.child) {
      EXPECT_GE(t.node(static_cast<std::size_t>(c)).bound, n.bound);
    }
  }
}

TEST(RandomTree, FeasibleValuesRespectBounds) {
  const BasicTree t = small_random(6);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const TreeNode& n = t.node(i);
    if (n.feasible) {
      EXPECT_GE(n.value, n.bound);
    }
  }
}

TEST(RandomTree, DeterministicForSeed) {
  const BasicTree a = small_random(12);
  const BasicTree b = small_random(12);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.node(i).bound, b.node(i).bound);
    EXPECT_EQ(a.node(i).cost, b.node(i).cost);
    EXPECT_EQ(a.node(i).var, b.node(i).var);
  }
}

TEST(RandomTree, DepthBiasDeepensTrees) {
  RandomTreeConfig shallow;
  shallow.target_nodes = 2001;
  shallow.depth_bias = 0.0;
  shallow.seed = 5;
  RandomTreeConfig deep = shallow;
  deep.depth_bias = 0.95;
  EXPECT_GT(BasicTree::random(deep).max_depth(),
            BasicTree::random(shallow).max_depth());
}

TEST(RandomTree, CostMeanApproximatelyHonored) {
  RandomTreeConfig cfg;
  cfg.target_nodes = 20001;
  cfg.cost_mean = 0.01;
  cfg.cost_cv = 0.3;
  cfg.seed = 8;
  const BasicTree t = BasicTree::random(cfg);
  EXPECT_NEAR(t.total_cost() / static_cast<double>(t.size()), 0.01, 0.001);
}

TEST(BasicTree, ScaleCosts) {
  BasicTree t = small_random(3);
  const double before = t.total_cost();
  t.scale_costs(2.5);
  EXPECT_NEAR(t.total_cost(), before * 2.5, 1e-9);
}

TEST(BasicTree, ResolveWalksCodes) {
  const BasicTree t = small_random(7);
  // Walk to a left-most leaf and resolve its code.
  PathCode code = PathCode::root();
  std::int32_t idx = 0;
  while (!t.node(static_cast<std::size_t>(idx)).is_leaf()) {
    const TreeNode& n = t.node(static_cast<std::size_t>(idx));
    code = code.child(n.var, false);
    idx = n.child[0];
  }
  EXPECT_EQ(t.resolve(code), idx);
  EXPECT_EQ(t.resolve(PathCode::root()), 0);
}

TEST(BasicTree, EncodeDecodeRoundTrip) {
  const BasicTree t = small_random(10);
  support::ByteWriter w;
  t.encode(w);
  support::ByteReader r(w.data());
  const BasicTree u = BasicTree::decode(r);
  ASSERT_EQ(u.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(u.node(i).bound, t.node(i).bound);
    EXPECT_EQ(u.node(i).cost, t.node(i).cost);
    EXPECT_EQ(u.node(i).feasible, t.node(i).feasible);
    EXPECT_EQ(u.node(i).var, t.node(i).var);
    EXPECT_EQ(u.node(i).child[0], t.node(i).child[0]);
  }
  EXPECT_DOUBLE_EQ(u.optimal_value(), t.optimal_value());
}

TEST(BasicTree, SaveLoadRoundTrip) {
  const BasicTree t = small_random(11);
  const std::string path = ::testing::TempDir() + "/ftbb_tree_test.bin";
  t.save(path);
  const BasicTree u = BasicTree::load(path);
  EXPECT_EQ(u.size(), t.size());
  EXPECT_DOUBLE_EQ(u.optimal_value(), t.optimal_value());
  std::remove(path.c_str());
}

TEST(BasicTree, RecordedKnapsackTreeMatchesLiveModel) {
  // Recording (no elimination) then solving the recorded tree must find the
  // same optimum as solving the live model directly.
  const auto inst = KnapsackInstance::strongly_correlated(12, 40, 0.5, 3);
  KnapsackModel live(inst);
  const BasicTree recorded = BasicTree::record(live, 200000);
  TreeProblem replay(&recorded);
  ASSERT_TRUE(live.known_optimal().has_value());
  EXPECT_DOUBLE_EQ(recorded.optimal_value(), *live.known_optimal());
  const SeqResult via_tree = solve_sequential(replay);
  EXPECT_DOUBLE_EQ(via_tree.best_value, *live.known_optimal());
}

TEST(BasicTree, RecordedTreePrunesLikeLive) {
  const auto inst = KnapsackInstance::strongly_correlated(12, 40, 0.5, 5);
  KnapsackModel live(inst);
  const BasicTree recorded = BasicTree::record(live, 200000);
  TreeProblem replay(&recorded);
  const SeqResult live_run = solve_sequential(live);
  const SeqResult tree_run = solve_sequential(replay);
  // Same algorithm, same bounds -> identical search.
  EXPECT_EQ(tree_run.expanded, live_run.expanded);
  EXPECT_DOUBLE_EQ(tree_run.best_value, live_run.best_value);
}

TEST(TreeProblem, HonorBoundsFalseDisablesElimination) {
  const BasicTree t = small_random(101);
  TreeProblem prunable(&t, /*honor_bounds=*/true);
  TreeProblem exhaustive(&t, /*honor_bounds=*/false);
  const SeqResult pruned = solve_sequential(prunable);
  const SeqResult full = solve_sequential(exhaustive);
  // Without elimination every node is expanded (paper's random-tree mode).
  EXPECT_EQ(full.expanded, t.size());
  EXPECT_LE(pruned.expanded, full.expanded);
  // Both find the same optimum.
  EXPECT_DOUBLE_EQ(pruned.best_value, full.best_value);
  EXPECT_DOUBLE_EQ(full.best_value, t.optimal_value());
}

TEST(TreeProblem, EvalMatchesRecordedNodes) {
  const BasicTree t = small_random(15);
  TreeProblem p(&t);
  const NodeEval root = p.eval(PathCode::root());
  EXPECT_DOUBLE_EQ(root.cost, t.root().cost);
  if (!t.root().is_leaf()) {
    ASSERT_EQ(root.children.size(), 2u);
    EXPECT_EQ(root.children[0].var, t.root().var);
    EXPECT_DOUBLE_EQ(root.children[0].bound,
                     t.node(static_cast<std::size_t>(t.root().child[0])).bound);
  }
}

TEST(TreeProblemDeath, ResolveRejectsForeignCodes) {
  const BasicTree t = small_random(2);
  // A code whose variable does not match the recorded branching variable.
  const std::uint32_t wrong_var = t.root().var + 1000;
  ASSERT_DEATH((void)t.resolve(PathCode::root().child(wrong_var, false)),
               "variable mismatch");
}

}  // namespace
}  // namespace ftbb::bnb
