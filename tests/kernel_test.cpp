#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/scenario.hpp"

namespace ftbb::sim {
namespace {

TEST(Kernel, DispatchesInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.at(3.0, [&] { order.push_back(3); });
  k.at(1.0, [&] { order.push_back(1); });
  k.at(2.0, [&] { order.push_back(2); });
  const auto res = k.run();
  EXPECT_TRUE(res.drained);
  EXPECT_EQ(res.events, 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Kernel, TiesBreakByInsertionOrder) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    k.at(1.0, [&order, i] { order.push_back(i); });
  }
  k.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Kernel, NowAdvancesToEventTime) {
  Kernel k;
  double seen = -1.0;
  k.at(5.5, [&] { seen = k.now(); });
  k.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(k.now(), 5.5);
}

TEST(Kernel, HandlersCanScheduleMore) {
  Kernel k;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) k.after(1.0, chain);
  };
  k.after(1.0, chain);
  const auto res = k.run();
  EXPECT_TRUE(res.drained);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(k.now(), 5.0);
}

TEST(Kernel, ZeroDelaySameTimeRunsAfterCurrent) {
  Kernel k;
  std::vector<int> order;
  k.at(1.0, [&] {
    order.push_back(1);
    k.after(0.0, [&] { order.push_back(2); });
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Kernel, TimeLimitStopsBeforeEvent) {
  Kernel k;
  int fired = 0;
  k.at(1.0, [&] { ++fired; });
  k.at(10.0, [&] { ++fired; });
  const auto res = k.run(5.0);
  EXPECT_TRUE(res.hit_time_limit);
  EXPECT_FALSE(res.drained);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.queued(), 1u);
}

TEST(Kernel, EventLimitStops) {
  Kernel k;
  std::function<void()> forever = [&] { k.after(1.0, forever); };
  k.after(1.0, forever);
  const auto res = k.run(1e18, 100);
  EXPECT_TRUE(res.hit_event_limit);
  EXPECT_EQ(res.events, 100u);
}

TEST(KernelDeath, SchedulingIntoThePastAborts) {
  Kernel k;
  k.at(5.0, [&] { k.at(1.0, [] {}); });
  ASSERT_DEATH(k.run(), "scheduling into the past");
}

TEST(Kernel, TimeLimitAdvancesClockSoCallersCanResume) {
  Kernel k;
  std::vector<double> fired;
  k.at(1.0, [&] { fired.push_back(1.0); });
  k.at(10.0, [&] { fired.push_back(10.0); });
  const auto res = k.run(5.0);
  EXPECT_TRUE(res.hit_time_limit);
  EXPECT_DOUBLE_EQ(k.now(), 5.0);
  // Scheduling between the limit and the queued tail is legal now, and a
  // second run() picks up where the first stopped.
  k.at(6.0, [&] { fired.push_back(6.0); });
  const auto res2 = k.run();
  EXPECT_TRUE(res2.drained);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 6.0, 10.0}));
}

// ---------------------------------------------------------------------------
// Sharded executor: canonical order must be invisible to the thread count
// ---------------------------------------------------------------------------

/// Runs an 8-node message mesh where every hop lands on the *same* virtual
/// timestamp on every node (t = 1 + k * lookahead) — the densest possible
/// same-time cross-shard tie storm — and returns each node's observation
/// log. Each log entry is (time, sender), appended by the owning node only.
std::vector<std::vector<std::pair<double, int>>> run_mesh(std::uint32_t threads) {
  constexpr std::uint32_t kNodes = 8;
  constexpr double kHop = 0.5;
  constexpr int kMaxHops = 6;
  ExecutorConfig cfg;
  cfg.threads = threads;
  cfg.nodes = kNodes;
  cfg.lookahead = kHop;
  Kernel k(cfg);
  std::vector<std::vector<std::pair<double, int>>> log(kNodes);
  std::function<void(std::uint32_t, int, int)> deliver =
      [&](std::uint32_t node, int from, int hops) {
        log[node].emplace_back(k.now(), from);
        if (hops >= kMaxHops) return;
        const double next = k.now() + kHop;
        for (const std::uint32_t step : {1u, 3u}) {
          const std::uint32_t to = (node + step) % kNodes;
          k.at(next, static_cast<OwnerId>(to),
               [&deliver, to, node, hops] {
                 deliver(to, static_cast<int>(node), hops + 1);
               });
        }
      };
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    k.at(1.0, static_cast<OwnerId>(n), [&deliver, n] { deliver(n, -1, 0); });
  }
  const auto res = k.run();
  EXPECT_TRUE(res.drained);
  return log;
}

TEST(ShardedKernel, DenseSameTimestampCrossShardEventsMatchSequential) {
  const auto sequential = run_mesh(1);
  EXPECT_EQ(sequential, run_mesh(2));
  EXPECT_EQ(sequential, run_mesh(4));
  EXPECT_EQ(sequential, run_mesh(8));  // one node per shard
}

/// End-to-end: the same scenario spec must fingerprint identically on the
/// sequential kernel and on 2- and 4-way sharded kernels, on every backend.
TEST(ShardedKernel, ScenarioFingerprintsMatchSequentialOnAllBackends) {
  for (const Backend backend :
       {Backend::kFtbb, Backend::kCentral, Backend::kDib}) {
    ScenarioSpec spec;
    spec.name = "executor-equality";
    spec.backend = backend;
    spec.workers = 4;
    spec.seed = 77;
    spec.time_limit = 300.0;
    spec.workload.kind = WorkloadKind::kSyntheticTree;
    spec.workload.size = 601;
    spec.workload.seed = 77;
    spec.workload.cost_mean = 2e-3;
    spec.tune_for_small_problems();
    // The churn joins land on the exact timestamps of the crash (t=0.05) and
    // the partition start (t=0.1): on central/dib, late joins are node-owned
    // events stamped by the control context, so this pins the barrier's
    // stamp-order execution of same-time control-stamped events.
    spec.faults.bounce(1, 0.05, 0.25)
        .split_halves(0.1, 0.2)
        .loss(0.0, 1e9, 0.05)
        .churn(4, 2, 0.05, 0.05);
    spec.sim_threads = 1;
    const ScenarioReport sequential = ScenarioRunner::run(spec);
    EXPECT_TRUE(sequential.completed) << sequential.to_string();
    for (const std::uint32_t threads : {2u, 4u}) {
      spec.sim_threads = threads;
      const ScenarioReport sharded = ScenarioRunner::run(spec);
      EXPECT_EQ(sequential.fingerprint(), sharded.fingerprint())
          << "backend " << to_string(backend) << " threads " << threads << "\n"
          << sequential.to_string() << sharded.to_string();
    }
  }
}

}  // namespace
}  // namespace ftbb::sim
